// Interactive HTL shell — the "user friendly ... interface for specifying
// the temporal queries" the paper's conclusion calls for, in terminal form.
//
//   $ ./example_htl_shell                # interactive
//   $ echo "man_woman() ..." | ./example_htl_shell   # scripted
//
// Commands:
//   :videos              list loaded videos
//   :levels <video>      show a video's levels
//   :level <n>           set the evaluation level (default: deepest)
//   :k <n>               set the number of results (default 10)
//   :explain <query>     show the evaluation plan without running it
//   :save <path>         save the current store's first video
//   :load <path>         load a video file into the store
//   :help                this text
//   :quit                exit
// Anything else is parsed as an HTL query and evaluated across all videos.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "engine/plan.h"
#include "engine/retrieval.h"
#include "htl/classifier.h"
#include "storage/serialization.h"
#include "util/string_util.h"
#include "workload/casablanca.h"

namespace {

using namespace htl;

void PrintHelp() {
  std::printf(
      "commands: :videos :levels <v> :level <n> :k <n> :explain <q> :save <p> "
      ":load <p> :help :quit\nanything else runs as an HTL query, e.g.\n"
      "  exists x, y (present(x) and holds_gun(x) and eventually fires_at(x, y))\n"
      "  man_woman() and eventually moving_train()   # named predicates need facts\n");
}

}  // namespace

int main() {
  MetadataStore store;
  store.AddVideo(casablanca::MakeVideo());
  Retriever retriever(&store);

  int level = 2;
  int64_t k = 10;
  std::printf("HTL shell — %lld video(s) loaded. :help for commands.\n",
              static_cast<long long>(store.num_videos()));

  std::string line;
  while (true) {
    std::printf("htl> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string input = std::string(StripWhitespace(line));
    if (input.empty()) continue;

    if (input == ":quit" || input == ":q") break;
    if (input == ":help") {
      PrintHelp();
      continue;
    }
    if (input == ":videos") {
      for (MetadataStore::VideoId v = 1; v <= store.num_videos(); ++v) {
        std::printf("  #%lld  %s (%d levels)\n", static_cast<long long>(v),
                    store.Video(v).Title().c_str(), store.Video(v).num_levels());
      }
      continue;
    }
    if (StartsWith(input, ":levels")) {
      std::istringstream is(input.substr(7));
      int64_t v = 1;
      is >> v;
      if (v < 1 || v > store.num_videos()) {
        std::printf("  no such video\n");
        continue;
      }
      const VideoTree& video = store.Video(v);
      for (int l = 1; l <= video.num_levels(); ++l) {
        std::string name;
        for (const auto& [n, lv] : video.level_names()) {
          if (lv == l) name = StrCat(" (", n, ")");
        }
        std::printf("  level %d%s: %lld segments\n", l, name.c_str(),
                    static_cast<long long>(video.NumSegments(l)));
      }
      continue;
    }
    if (StartsWith(input, ":level ")) {
      level = std::atoi(input.c_str() + 7);
      std::printf("  evaluation level = %d\n", level);
      continue;
    }
    if (StartsWith(input, ":k ")) {
      k = std::atoll(input.c_str() + 3);
      std::printf("  k = %lld\n", static_cast<long long>(k));
      continue;
    }
    if (StartsWith(input, ":explain ")) {
      auto f = retriever.Prepare(input.substr(9));
      if (!f.ok()) {
        std::printf("  %s\n", f.status().ToString().c_str());
        continue;
      }
      auto plan = ExplainPlan(store.Video(1), level, *f.value());
      std::printf("%s", plan.ok() ? plan.value().c_str()
                                  : (plan.status().ToString() + "\n").c_str());
      continue;
    }
    if (StartsWith(input, ":save ")) {
      Status s = SaveVideo(store.Video(1), input.substr(6));
      std::printf("  %s\n", s.ok() ? "saved" : s.ToString().c_str());
      continue;
    }
    if (StartsWith(input, ":load ")) {
      auto v = LoadVideo(input.substr(6));
      if (!v.ok()) {
        std::printf("  %s\n", v.status().ToString().c_str());
        continue;
      }
      auto id = store.AddVideo(std::move(v).value());
      std::printf("  loaded as video #%lld\n", static_cast<long long>(id));
      continue;
    }
    if (StartsWith(input, ":")) {
      std::printf("  unknown command; :help\n");
      continue;
    }

    // An HTL query.
    auto f = retriever.Prepare(input);
    if (!f.ok()) {
      std::printf("  %s\n", f.status().ToString().c_str());
      continue;
    }
    std::printf("  class: %s\n",
                std::string(FormulaClassName(Classify(*f.value()))).c_str());
    auto hits = retriever.TopSegments(*f.value(), level, k);
    if (!hits.ok()) {
      std::printf("  %s\n", hits.status().ToString().c_str());
      continue;
    }
    if (hits.value().empty()) {
      std::printf("  no matching segments\n");
      continue;
    }
    std::printf("  %-6s %-8s %-12s %s\n", "video", "segment", "similarity", "frac");
    for (const SegmentHit& h : hits.value()) {
      std::printf("  %-6lld %-8lld %-12.4f %.2f\n", static_cast<long long>(h.video),
                  static_cast<long long>(h.segment), h.sim.actual, h.sim.fraction());
    }
  }
  std::printf("\n");
  return 0;
}
