// CI smoke test for the telemetry plane: exports a Chrome trace from a
// local profiled query, then starts a server, drives a slow-threshold
// query through it, and scrapes every admin verb over the wire — writing
// each answer to a JSON file (telemetry_*.json in the working directory)
// that the CI job round-trips through `python -m json.tool`. Exits
// non-zero on any deviation so the job gates on it.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "engine/retrieval.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "util/rng.h"
#include "workload/video_gen.h"

namespace {

bool WriteFile(const char* path, const std::string& body) {
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) {
    std::printf("FAIL: cannot open %s for writing\n", path);
    return false;
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    std::printf("FAIL: short write to %s\n", path);
    return false;
  }
  std::printf("wrote %s (%zu bytes)\n", path, body.size());
  return true;
}

}  // namespace

int main() {
  using namespace htl;
  using namespace htl::net;

  obs::MetricsRegistry::Instance().SetEnabled(true);

  MetadataStore store;
  Rng rng(20260808);
  for (int i = 0; i < 4; ++i) {
    VideoGenOptions vopts;
    vopts.min_branching = 2;
    vopts.max_branching = 3;
    store.AddVideo(GenerateVideo(rng, vopts));
  }
  constexpr const char* kQuery =
      "exists x (type(x) = 'person') until exists y (type(y) = 'train')";
  constexpr int kLevel = 3;  // Generated videos carry facts on the shot level.

  // 1. Local profiled query -> Chrome trace export (no server involved):
  // the EXPLAIN profile of one retrieval, openable in Perfetto / chrome://tracing.
  {
    Retriever retriever(&store);
    auto result = retriever.TopSegmentsProfiled(kQuery, kLevel, 10);
    if (!result.ok()) {
      std::printf("FAIL: local profiled query: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    const std::string trace = obs::ProfileToChromeTrace(result->report.profile);
    if (trace.find("stage.execute") == std::string::npos) {
      std::printf("FAIL: local trace carries no stage.execute span\n");
      return 1;
    }
    if (!WriteFile("telemetry_trace_local.json", trace)) return 1;
  }

  // 2. Server + admin plane: every request takes >= 1us, so a 1us slow
  // threshold makes the demo query land in the slowlog with its profile.
  ServerOptions options;
  options.worker_threads = 2;
  options.query_log.slow_threshold_us = 1;
  QueryServer server(&store, options);
  if (Status started = server.Start(); !started.ok()) {
    std::printf("FAIL: server start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("query port 127.0.0.1:%u, admin port 127.0.0.1:%u\n",
              server.port(), server.admin_port());

  {
    ClientOptions copts;
    copts.port = server.port();
    const QueryClient client(copts);
    QueryRequest request;
    request.query_text = kQuery;
    request.level = kLevel;
    request.k = 5;
    request.deadline_ms = 10'000;
    auto response = client.Query(request);
    if (!response.ok() || !response->ok()) {
      std::printf("FAIL: query over the wire: %s\n",
                  response.ok() ? response->message.c_str()
                                : response.status().ToString().c_str());
      return 1;
    }
    std::printf("query: %zu hits\n", response->hits.size());
  }

  // 3. Scrape every admin verb and persist the answers.
  {
    ClientOptions copts;
    copts.port = server.admin_port();
    const AdminClient admin(copts);

    auto metrics = admin.Fetch(AdminVerb::kMetricsJson);
    if (!metrics.ok() ||
        metrics->find("net.request.latency_us") == std::string::npos) {
      std::printf("FAIL: metrics scrape missing the request histogram\n");
      return 1;
    }
    if (!WriteFile("telemetry_metrics.json", *metrics)) return 1;

    auto healthz = admin.Fetch(AdminVerb::kHealthz);
    if (!healthz.ok() ||
        healthz->find("\"state\": \"accepting\"") == std::string::npos ||
        healthz->find("\"healthy\": true") == std::string::npos) {
      std::printf("FAIL: healthz scrape: %s\n",
                  healthz.ok() ? healthz->c_str()
                               : healthz.status().ToString().c_str());
      return 1;
    }
    if (!WriteFile("telemetry_healthz.json", *healthz)) return 1;

    // The wide event lands just after the response is written; a scrape
    // racing it retries (each Fetch is its own round-trip).
    Result<std::string> slowlog = admin.Fetch(AdminVerb::kSlowlog);
    for (int attempt = 0;
         attempt < 100 &&
         (!slowlog.ok() ||
          slowlog->find("\"has_profile\": true") == std::string::npos);
         ++attempt) {
      slowlog = admin.Fetch(AdminVerb::kSlowlog);
    }
    if (!slowlog.ok() ||
        slowlog->find("\"has_profile\": true") == std::string::npos) {
      std::printf("FAIL: slowlog did not retain the slow query's profile\n");
      return 1;
    }
    if (!WriteFile("telemetry_slowlog.json", *slowlog)) return 1;

    // arg 0 = the newest retained profile: the query we just ran.
    auto trace = admin.Fetch(AdminVerb::kTrace, 0);
    if (!trace.ok() || trace->find("stage.execute") == std::string::npos) {
      std::printf("FAIL: slowlog trace export missing stage spans\n");
      return 1;
    }
    if (!WriteFile("telemetry_trace_slow.json", *trace)) return 1;
  }

  // Optional linger so external scrapers (tools/htlstat.py) can poll the
  // live admin port before the drain; off by default so CI stays fast.
  if (const char* env = std::getenv("HTL_TELEMETRY_DEMO_LINGER_MS");
      env != nullptr) {
    const long linger_ms = std::strtol(env, nullptr, 10);
    if (linger_ms > 0) {
      std::printf("lingering %ld ms for external scrapers\n", linger_ms);
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
    }
  }

  if (Status drained = server.Shutdown(); !drained.ok()) {
    std::printf("FAIL: drain: %s\n", drained.ToString().c_str());
    return 1;
  }
  std::printf("telemetry smoke: all checks passed\n");
  return 0;
}
