// The paper's section 2.1 motivating scenario: a Gulf-war news video
// arranged hierarchically (video -> sub-plots -> scenes -> shots), queried
// with level modal operators — the *extended conjunctive* class.
//
// Demonstrates: VideoBuilder for deep hierarchies, named levels, browsing
// queries at the root, and at-X-level / at-next-level operators.

#include <cstdio>

#include "engine/direct_engine.h"
#include "htl/binder.h"
#include "htl/parser.h"
#include "htl/classifier.h"
#include "model/video_builder.h"
#include "sim/topk.h"

int main() {
  using namespace htl;

  // Object ids.
  constexpr ObjectId kBomber = 1;
  constexpr ObjectId kFighter = 2;
  constexpr ObjectId kTank = 3;

  VideoBuilder b;
  b.Meta(b.root()).SetAttribute("title", "Gulf War Report");
  b.Meta(b.root()).SetAttribute("type", "news");

  // Sub-plot 1: bombing of Iraqi positions.
  auto bombing = b.AddChild(b.root());
  b.Meta(bombing).SetAttribute("topic", "bombing");
  //   Scene 1.1: bombing command centers — shots: takeoff, strike, return.
  auto cmd = b.AddChild(bombing);
  b.Meta(cmd).SetAttribute("target", "command-centers");
  auto takeoff = b.AddChild(cmd);
  auto strike = b.AddChild(cmd);
  auto ret = b.AddChild(cmd);
  b.Meta(takeoff).AddObject({kBomber, {{"type", AttrValue("airplane")}, {"height", AttrValue(int64_t{0})}}});
  b.Meta(takeoff).AddFact({"taking_off", {kBomber}});
  b.Meta(strike).AddObject({kBomber, {{"type", AttrValue("airplane")}, {"height", AttrValue(int64_t{900})}}});
  b.Meta(strike).AddFact({"dropping_bombs", {kBomber}});
  b.Meta(ret).AddObject({kBomber, {{"type", AttrValue("airplane")}, {"height", AttrValue(int64_t{1200})}}});
  //   Scene 1.2: bombing airfields — two shots.
  auto airfields = b.AddChild(bombing);
  b.Meta(airfields).SetAttribute("target", "airfields");
  auto s21 = b.AddChild(airfields);
  auto s22 = b.AddChild(airfields);
  b.Meta(s21).AddObject({kFighter, {{"type", AttrValue("airplane")}, {"height", AttrValue(int64_t{500})}}});
  b.Meta(s22).AddObject({kFighter, {{"type", AttrValue("airplane")}, {"height", AttrValue(int64_t{800})}}});
  b.Meta(s22).AddFact({"dropping_bombs", {kFighter}});

  // Sub-plot 2: ground engagement.
  auto ground = b.AddChild(b.root());
  b.Meta(ground).SetAttribute("topic", "ground-war");
  auto advance = b.AddChild(ground);
  b.Meta(advance).SetAttribute("target", "desert");
  auto g1 = b.AddChild(advance);
  auto g2 = b.AddChild(advance);
  b.Meta(g1).AddObject({kTank, {{"type", AttrValue("tank")}}});
  b.Meta(g2).AddObject({kTank, {{"type", AttrValue("tank")}}});
  b.Meta(g2).AddFact({"firing", {kTank}});

  b.NameLevel("plot", 2);
  b.NameLevel("scene", 3);
  b.NameLevel("shot", 4);

  auto built = std::move(b).Build();
  if (!built.ok()) {
    std::printf("build error: %s\n", built.status().ToString().c_str());
    return 1;
  }
  VideoTree video = std::move(built).value();
  std::printf("hierarchy: %d levels, %lld plots, %lld scenes, %lld shots\n\n",
              video.num_levels(), static_cast<long long>(video.NumSegments(2)),
              static_cast<long long>(video.NumSegments(3)),
              static_cast<long long>(video.NumSegments(4)));

  DirectEngine engine(&video);
  auto run = [&](const char* text, int level) {
    auto parsed = ParseFormula(text);
    if (!parsed.ok() || !Bind(parsed.value().get()).ok()) {
      std::printf("  query error for %s\n", text);
      return;
    }
    std::printf("query [%s], class %s:\n", text,
                std::string(FormulaClassName(Classify(*parsed.value()))).c_str());
    auto list = engine.EvaluateList(level, *parsed.value());
    if (!list.ok()) {
      std::printf("  error: %s\n", list.status().ToString().c_str());
      return;
    }
    for (const RankedEntry& row : RankedEntries(list.value())) {
      std::printf("  segments [%lld..%lld] at level %d: similarity %.2f / %.2f\n",
                  static_cast<long long>(row.entry.range.begin),
                  static_cast<long long>(row.entry.range.end), level, row.entry.actual,
                  row.max);
    }
    if (list.value().empty()) std::printf("  (no matching segments)\n");
    std::printf("\n");
  };

  // 1. Temporal query at the shot level: a plane takes off and later drops
  //    bombs (the paper's formula (A) shape).
  run("exists p (taking_off(p) and type(p) = 'airplane') until "
      "exists p (dropping_bombs(p))",
      4);

  // 2. Freeze quantifier (formula (C)): the same plane appears higher later.
  run("exists z (present(z) and type(z) = 'airplane' and "
      "[h <- height(z)] eventually (present(z) and height(z) > h))",
      4);

  // 3. Extended conjunctive: scenes whose shot sequence eventually shows a
  //    firing tank.
  run("at-next-level(eventually exists t (firing(t) and type(t) = 'tank'))", 3);

  // 4. Browsing at the plot level, then drilling into its first scene's
  //    first shot with nested level operators.
  run("topic = 'bombing' and at-shot-level(exists p (taking_off(p)))", 2);

  return 0;
}
