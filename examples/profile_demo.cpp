// EXPLAIN for retrieval: run the paper's Casablanca query through the
// profiled entry point and print the per-stage / per-video / per-operator
// profile, then re-run it with a fault injected into the picture layer to
// show how the profile names the tripped fault point and the skipped video.

#include <cstdio>

#include "engine/retrieval.h"
#include "obs/metrics.h"
#include "util/fault_point.h"
#include "workload/casablanca.h"

int main() {
  using namespace htl;

  MetadataStore store;
  store.AddVideo(casablanca::MakeVideo());
  store.AddVideo(casablanca::MakeVideo());
  Retriever retriever(&store);

  // Armed metrics: process-wide counters accumulate alongside the trace.
  obs::MetricsRegistry::Instance().SetEnabled(true);

  // Query 1: { Man-Woman and { eventually Moving-Train } }.
  FormulaPtr query = casablanca::Query1Full();

  auto result = retriever.TopSegmentsProfiled(*query, 2, 5);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("top segments for Casablanca Query 1:\n");
  for (const SegmentHit& hit : result.value().hits) {
    std::printf("  video %lld shot %lld  sim %.0f\n",
                static_cast<long long>(hit.video),
                static_cast<long long>(hit.segment), hit.sim.actual);
  }
  std::printf("\n%s\n", result.value().report.ToString().c_str());
  std::printf("\n%s\n", result.value().report.profile.ToText().c_str());

  // Same query with the picture layer faulting once: the report shows the
  // skipped video and the profile records the fault trip on its span.
  FaultSpec spec;
  spec.code = StatusCode::kInternal;
  spec.fire_on_hit = 1;
  spec.sticky = false;  // Fire once: video 1 is skipped, video 2 survives.
  FaultRegistry::Instance().Enable("picture.query", spec);
  Retriever faulted(&store);
  auto degraded = faulted.TopSegmentsProfiled(*query, 2, 5);
  FaultRegistry::Instance().DisableAll();
  if (!degraded.ok()) {
    std::printf("error: %s\n", degraded.status().ToString().c_str());
    return 1;
  }
  std::printf("---- with an injected picture fault ----\n\n%s\n\n%s\n",
              degraded.value().report.ToString().c_str(),
              degraded.value().report.profile.ToText().c_str());

  // Process-wide metrics accumulated across both runs.
  std::printf("---- metrics snapshot ----\n%s",
              obs::MetricsRegistry::Instance().Snapshot().ToText().c_str());
  return 0;
}
