// The paper's formula (C) on a synthetic surveillance feed: find sequences
// that start with a picture containing an airplane followed by a picture in
// which the *same* plane appears at a higher altitude — the freeze
// quantifier [h <- height(z)] capturing an attribute value in one segment
// and comparing it in later segments.
//
// Also demonstrates the ranked retrieval of the k best segments and how the
// similarity drops for partial matches.

#include <cstdio>

#include "engine/direct_engine.h"
#include "engine/reference_engine.h"
#include "htl/binder.h"
#include "htl/parser.h"
#include "sim/topk.h"

int main() {
  using namespace htl;

  // Twelve frames; two planes with different altitude profiles and a bird.
  VideoTree video = VideoTree::Flat(12);
  video.MutableMeta(1, 1).SetAttribute("title", "Runway Camera");
  auto frame = [&](SegmentId s) -> SegmentMeta& { return video.MutableMeta(2, s); };

  // Plane 1 climbs: 100, 200, 400 at frames 1-3, then leaves.
  const int64_t climb[] = {100, 200, 400};
  for (SegmentId s = 1; s <= 3; ++s) {
    frame(s).AddObject({1,
                        {{"type", AttrValue("airplane")},
                         {"height", AttrValue(climb[s - 1])}}});
  }
  // Plane 2 descends: 900, 600, 300 at frames 5-7 (matches present+type but
  // never "higher later": a partial match).
  const int64_t descend[] = {900, 600, 300};
  for (SegmentId s = 5; s <= 7; ++s) {
    frame(s).AddObject({2,
                        {{"type", AttrValue("airplane")},
                         {"height", AttrValue(descend[s - 5])}}});
  }
  // A bird at constant height in frames 9-10 (wrong type).
  for (SegmentId s = 9; s <= 10; ++s) {
    frame(s).AddObject({3,
                        {{"type", AttrValue("bird")}, {"height", AttrValue(int64_t{50})}}});
  }

  const char* text =
      "exists z (present(z) and type(z) = 'airplane' and "
      "[h <- height(z)] eventually (present(z) and height(z) > h))";
  auto parsed = ParseFormula(text);
  if (!parsed.ok() || !Bind(parsed.value().get()).ok()) {
    std::printf("query error\n");
    return 1;
  }
  std::printf("formula (C): %s\n\n", parsed.value()->ToString().c_str());

  DirectEngine engine(&video);
  auto list = engine.EvaluateList(2, *parsed.value());
  if (!list.ok()) {
    std::printf("error: %s\n", list.status().ToString().c_str());
    return 1;
  }

  std::printf("%-7s %-11s %s\n", "frame", "similarity", "explanation");
  for (const RankedSegment& hit : TopKSegments(list.value(), 12)) {
    const char* why = hit.sim.fraction() >= 1.0
                          ? "airplane climbs afterwards (exact match)"
                          : "airplane present but never higher (partial)";
    std::printf("%-7lld %-11.2f %s\n", static_cast<long long>(hit.id), hit.sim.actual,
                why);
  }

  // Cross-check against the brute-force reference semantics.
  ReferenceEngine reference(&video);
  auto ref = reference.EvaluateList(2, *parsed.value());
  std::printf("\nreference engine agrees: %s\n",
              ref.ok() && ref.value() == list.value() ? "yes" : "NO");
  return 0;
}
