// CI smoke test for the query service: starts a server on a loopback
// ephemeral port, runs the happy path (HTL segments over the wire), an
// injected-fault path (engine.table_join tripping per video, surfaced as a
// degraded partial response), and a graceful drain — exiting non-zero on
// any deviation so the CI job gates on it.

#include <cstdio>

#include "engine/retrieval.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "util/fault_point.h"
#include "util/rng.h"
#include "workload/video_gen.h"

int main() {
  using namespace htl;
  using namespace htl::net;

  MetadataStore store;
  Rng rng(20260808);
  for (int i = 0; i < 4; ++i) {
    VideoGenOptions vopts;
    vopts.min_branching = 2;
    vopts.max_branching = 3;
    store.AddVideo(GenerateVideo(rng, vopts));
  }

  ServerOptions options;
  options.worker_threads = 2;
  QueryServer server(&store, options);
  if (Status started = server.Start(); !started.ok()) {
    std::printf("FAIL: server start: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("server listening on 127.0.0.1:%u\n", server.port());

  ClientOptions copts;
  copts.port = server.port();
  const QueryClient client(copts);

  QueryRequest request;
  request.query_text =
      "exists x (type(x) = 'person') until exists y (type(y) = 'train')";
  request.level = 3;  // Generated videos carry facts on the shot level.
  request.k = 5;
  request.deadline_ms = 10'000;

  // 1. Happy path: a complete ranked response.
  {
    auto response = client.Query(request);
    if (!response.ok() || !response->ok() || response->partial()) {
      std::printf("FAIL: happy path: %s\n",
                  response.ok() ? response->message.c_str()
                                : response.status().ToString().c_str());
      return 1;
    }
    std::printf("happy path: %zu hits, %lld videos evaluated\n",
                response->hits.size(),
                static_cast<long long>(response->videos_evaluated));
  }

  // 2. Fault path: every table join trips, so every video is skipped and
  // the response must come back partial with the skip count intact —
  // not as a dropped connection or an internal crash.
  {
    FaultSpec spec;
    spec.code = StatusCode::kInternal;
    spec.fire_on_hit = 0;  // Every hit.
    spec.sticky = true;
    FaultRegistry::Instance().Enable("engine.table_join", spec);
    auto response = client.Query(request);
    FaultRegistry::Instance().DisableAll();
    if (!response.ok() || !response->ok() || !response->partial() ||
        response->videos_failed == 0) {
      std::printf("FAIL: fault path did not surface as a partial response\n");
      return 1;
    }
    std::printf("fault path: partial response, %lld/%lld videos skipped\n",
                static_cast<long long>(response->videos_failed),
                static_cast<long long>(response->videos_evaluated +
                                       response->videos_failed));
  }

  // 3. Drain: shutdown must complete cleanly with nothing in flight.
  if (Status drained = server.Shutdown(); !drained.ok()) {
    std::printf("FAIL: drain: %s\n", drained.ToString().c_str());
    return 1;
  }
  if (server.in_flight() != 0 || server.running()) {
    std::printf("FAIL: sessions leaked through drain\n");
    return 1;
  }
  std::printf("drain: clean\n");

  // 4. Post-drain: connections are refused, a clean retryable error.
  {
    auto response = client.QueryOnce(request);
    if (response.ok() || !response.status().IsUnavailable()) {
      std::printf("FAIL: post-drain connect should be Unavailable\n");
      return 1;
    }
  }
  std::printf("query server smoke: all checks passed\n");
  return 0;
}
