// The complete figure-1 pipeline on synthetic raw footage: frame features
// and anonymous detections go in; cut detection segments the clip into
// shots; the tracker assigns the paper's universal object ids; spatial
// facts are derived from bounding boxes; and the resulting hierarchical
// meta-data is queried with HTL at both the shot and the frame level.

#include <cstdio>

#include "analyzer/pipeline.h"
#include "engine/direct_engine.h"
#include "engine/plan.h"
#include "htl/binder.h"
#include "htl/parser.h"
#include "sim/topk.h"
#include "util/rng.h"
#include "workload/footage_gen.h"

int main() {
  using namespace htl;

  // 1. "Decode" synthetic footage: 6 scenes, 1-3 moving objects each.
  Rng rng(2026);
  FootageOptions fopts;
  fopts.num_scenes = 6;
  fopts.min_objects = 2;
  fopts.max_objects = 3;
  Footage footage = GenerateFootage(rng, fopts);
  std::printf("footage: %zu frames, %zu true scene starts\n", footage.frames.size(),
              footage.scene_starts.size());

  // 2. Run the analyzer.
  auto analyzed = AnalyzeVideo(footage.frames);
  if (!analyzed.ok()) {
    std::printf("analyzer error: %s\n", analyzed.status().ToString().c_str());
    return 1;
  }
  VideoTree video = std::move(analyzed).value();
  std::printf("analyzer: %lld shots over %lld frames\n",
              static_cast<long long>(video.NumSegments(2)),
              static_cast<long long>(video.NumSegments(3)));
  int recovered = 0;
  for (int64_t start : footage.scene_starts) {
    for (SegmentId s = 1; s <= video.NumSegments(2); ++s) {
      if (video.Meta(2, s).Attribute("first_frame").AsInt() == start + 1) ++recovered;
    }
  }
  std::printf("ground-truth scene starts recovered as shots: %d/%zu\n\n", recovered,
              footage.scene_starts.size());

  // 3. Query the result.
  DirectEngine engine(&video);
  auto run = [&](const char* text, int level) {
    auto f = ParseFormula(text);
    if (!f.ok() || !Bind(f.value().get()).ok()) {
      std::printf("query error for %s\n", text);
      return;
    }
    auto plan = ExplainPlan(video, level, *f.value());
    if (plan.ok()) std::printf("%s", plan.value().c_str());
    auto list = engine.EvaluateList(level, *f.value());
    if (!list.ok()) {
      std::printf("  error: %s\n\n", list.status().ToString().c_str());
      return;
    }
    auto top = TopKSegments(list.value(), 3);
    for (const RankedSegment& hit : top) {
      std::printf("  -> segment %lld  similarity %.2f/%.2f\n",
                  static_cast<long long>(hit.id), hit.sim.actual, hit.sim.max);
    }
    if (top.empty()) std::printf("  -> no matches\n");
    std::printf("\n");
  };

  // Shots whose frames eventually show one tracked object left of another.
  run("at-next-level(eventually exists a, b (left_of(a, b)))", 2);
  // Frames where a person overlaps a train (tracked ids + derived facts).
  run("exists p, t (type(p) = 'person' and type(t) = 'train' and overlaps(p, t))", 3);
  // Temporal identity at the frame level: the same object persists.
  run("exists o (present(o) and next present(o))", 3);
  return 0;
}
