// The paper's section 4.1 walk-through: "The Making of Casablanca",
// segmented into 50 shots, queried with
//
//   Query 1: { Man-Woman and { eventually Moving-Train } }
//
// Reproduces Tables 1-4 through both systems (direct algorithms and the
// SQL translation) and prints them side by side with the paper's values.

#include <cstdio>

#include "engine/direct_engine.h"
#include "htl/binder.h"
#include "picture/picture_system.h"
#include "sim/topk.h"
#include "sql/sql_system.h"
#include "workload/casablanca.h"

namespace {

void PrintTable(const char* title, const htl::SimilarityList& list) {
  std::printf("%s\n", title);
  std::printf("  %-9s %-7s %s\n", "Start-id", "End-id", "Similarity-value");
  for (const htl::RankedEntry& row : htl::RankedEntries(list)) {
    std::printf("  %-9lld %-7lld %.6f\n", static_cast<long long>(row.entry.range.begin),
                static_cast<long long>(row.entry.range.end), row.entry.actual);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace htl;

  VideoTree video = casablanca::MakeVideo();
  std::printf("video: %s (%lld shots after cut detection)\n\n", video.Title().c_str(),
              static_cast<long long>(video.NumSegments(2)));

  // --- Atomic predicates through the picture retrieval system -------------
  PictureSystem pictures(&video);
  AtomicFormula moving_train =
      ExtractAtomic(*casablanca::MovingTrainAtomic()).value();
  AtomicFormula man_woman = ExtractAtomic(*casablanca::ManWomanAtomic()).value();
  SimilarityList t1 = pictures.QueryClosed(2, moving_train).value();
  SimilarityList t2 = pictures.QueryClosed(2, man_woman).value();
  PrintTable("Table 1. Moving-Train", t1);
  PrintTable("Table 2. Man-Woman", t2);

  // --- Query 1 through the direct engine -----------------------------------
  DirectEngine engine(&video);
  FormulaPtr ev = MakeEventually(casablanca::MovingTrainAtomic());
  if (!Bind(ev.get()).ok()) return 1;
  PrintTable("Table 3. Result of eventually operation in Query 1",
             engine.EvaluateList(2, *ev).value());

  FormulaPtr query1 = casablanca::Query1Full();
  if (!Bind(query1.get()).ok()) return 1;
  SimilarityList direct_result = engine.EvaluateList(2, *query1).value();
  PrintTable("Table 4. Final result of Query 1 (direct method)", direct_result);

  // --- The same query through the SQL-based system -------------------------
  sql::SqlSystem sys;
  SimilarityList sql_result =
      sys.Evaluate(*casablanca::Query1Named(),
                   {{"man_woman", t2}, {"moving_train", t1}}, casablanca::kNumShots)
          .value();
  std::printf("SQL-based system result %s the direct method.\n",
              sql_result == direct_result ? "matches" : "DIFFERS FROM");

  const bool matches_paper =
      RankedEntries(direct_result).size() == 8 &&
      std::abs(direct_result.ActualAt(1) - 12.382) < 1e-9 &&
      std::abs(direct_result.ActualAt(6) - 11.047) < 1e-9 &&
      std::abs(direct_result.ActualAt(47) - 6.26) < 1e-9;
  std::printf("paper's Table 4 values reproduced: %s\n", matches_paper ? "yes" : "NO");
  return matches_paper ? 0 : 1;
}
