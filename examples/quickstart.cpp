// Quickstart: annotate a tiny video, pose an HTL query, retrieve the best
// matching segments.
//
//   $ ./example_quickstart
//
// Walks through the whole public API surface: building meta-data, parsing
// and binding a query, classifying it, and running similarity retrieval.

#include <cstdio>

#include "engine/retrieval.h"
#include "htl/classifier.h"
#include "model/video.h"
#include "util/string_util.h"

int main() {
  using namespace htl;

  // 1. Build a flat video: one root and six shots, with meta-data.
  //    Shots show a rider (object 7) approaching; in shot 4 he draws a gun;
  //    in shot 5 he fires at the sheriff (object 9).
  VideoTree video = VideoTree::Flat(6);
  video.MutableMeta(1, 1).SetAttribute("title", "Quickstart Western");
  video.MutableMeta(1, 1).SetAttribute("type", "western");
  auto shot = [&](SegmentId s) -> SegmentMeta& { return video.MutableMeta(2, s); };
  for (SegmentId s = 2; s <= 6; ++s) {
    ObjectAppearance rider;
    rider.id = 7;
    rider.attributes["type"] = AttrValue("person");
    rider.attributes["name"] = AttrValue("bandit");
    shot(s).AddObject(std::move(rider));
  }
  for (SegmentId s = 4; s <= 6; ++s) {
    ObjectAppearance sheriff;
    sheriff.id = 9;
    sheriff.attributes["type"] = AttrValue("person");
    sheriff.attributes["name"] = AttrValue("sheriff");
    shot(s).AddObject(std::move(sheriff));
  }
  shot(4).AddFact({"holds_gun", {7}});
  shot(5).AddFact({"holds_gun", {7}});
  shot(5).AddFact({"fires_at", {7, 9}});

  MetadataStore store;
  store.AddVideo(std::move(video));

  // 2. Pose an HTL query: a bandit holding a gun, later firing at someone.
  const std::string query =
      "exists x, y (present(x) and present(y) and holds_gun(x) "
      "and eventually fires_at(x, y))";

  Retriever retriever(&store);
  auto prepared = retriever.Prepare(query);
  if (!prepared.ok()) {
    std::printf("query error: %s\n", prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("query:  %s\n", prepared.value()->ToString().c_str());
  std::printf("class:  %s\n",
              std::string(FormulaClassName(Classify(*prepared.value()))).c_str());

  // 3. Retrieve the top 5 shots across the store.
  auto hits = retriever.TopSegments(*prepared.value(), /*level=*/2, /*k=*/5);
  if (!hits.ok()) {
    std::printf("retrieval error: %s\n", hits.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%-6s %-8s %-10s %s\n", "video", "segment", "similarity", "fraction");
  for (const SegmentHit& hit : hits.value()) {
    std::printf("%-6lld %-8lld %-10.3f %.0f%%\n", static_cast<long long>(hit.video),
                static_cast<long long>(hit.segment), hit.sim.actual,
                100 * hit.sim.fraction());
  }

  // 4. Browsing query at the whole-video level.
  auto videos = retriever.TopVideos("type = 'western'", 3);
  std::printf("\nwesterns in the store: %zu\n", videos.value().size());
  return 0;
}
