#include "htl/ast.h"

#include <gtest/gtest.h>

#include "htl/binder.h"
#include "htl/parser.h"
#include "testing/helpers.h"

namespace htl {
namespace {

FormulaPtr Parse(std::string_view text) {
  auto r = ParseFormula(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(AstTest, FreeObjectVarsInOccurrenceOrder) {
  FormulaPtr f = Parse("present(a) and fires_at(b, a) and type(c) = 'x'");
  EXPECT_EQ(FreeObjectVars(*f), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(AstTest, ExistsBindsVars) {
  FormulaPtr f = Parse("exists a (present(a) and present(b))");
  EXPECT_EQ(FreeObjectVars(*f), std::vector<std::string>{"b"});
}

TEST(AstTest, FreezeTermObjectVarIsFree) {
  FormulaPtr f = Parse("[h <- height(z)] true");
  EXPECT_EQ(FreeObjectVars(*f), std::vector<std::string>{"z"});
}

TEST(AstTest, FreeAttrVars) {
  // An unfrozen bare name resolves to a segment attribute, so a free
  // attribute variable only arises from explicit construction.
  FormulaPtr f = MakeCompare(AttrTerm::AttrOf("height", "z"), CompareOp::kGt,
                             AttrTerm::Variable("h"));
  EXPECT_EQ(FreeAttrVars(*f), std::vector<std::string>{"h"});
  // And the binder rejects it: attribute variables must be frozen.
  EXPECT_FALSE(Bind(f.get(), BindOptions{.require_closed = false}).ok());
}

TEST(AstTest, FreezeBindsAttrVar) {
  FormulaPtr f = Parse("exists z ([h <- height(z)] (height(z) > h))");
  ASSERT_OK(Bind(f.get()));
  EXPECT_TRUE(FreeAttrVars(*f).empty());
}

TEST(AstTest, IsNonTemporal) {
  EXPECT_TRUE(IsNonTemporal(*Parse("present(x) and type(x) = 'a'")));
  EXPECT_TRUE(IsNonTemporal(*Parse("exists x (present(x))")));
  EXPECT_FALSE(IsNonTemporal(*Parse("next present(x)")));
  EXPECT_FALSE(IsNonTemporal(*Parse("eventually present(x)")));
  EXPECT_FALSE(IsNonTemporal(*Parse("present(x) until present(y)")));
  EXPECT_FALSE(IsNonTemporal(*Parse("at-next-level(present(x))")));
}

TEST(AstTest, MaxSimilaritySumsWeightsThroughAnd) {
  EXPECT_EQ(MaxSimilarity(*Parse("present(x) @ 2 and present(y) @ 3")), 5.0);
}

TEST(AstTest, MaxSimilarityOfUntilIsRhs) {
  EXPECT_EQ(MaxSimilarity(*Parse("present(x) @ 2 until present(y) @ 3")), 3.0);
}

TEST(AstTest, MaxSimilarityThroughUnaries) {
  EXPECT_EQ(MaxSimilarity(*Parse("next present(x) @ 2")), 2.0);
  EXPECT_EQ(MaxSimilarity(*Parse("eventually present(x) @ 2")), 2.0);
  EXPECT_EQ(MaxSimilarity(*Parse("not present(x) @ 2")), 2.0);
  EXPECT_EQ(MaxSimilarity(*Parse("exists x (present(x) @ 2)")), 2.0);
  EXPECT_EQ(MaxSimilarity(*Parse("at-next-level(present(x) @ 2)")), 2.0);
}

TEST(AstTest, MaxSimilarityOfOrIsMax) {
  EXPECT_EQ(MaxSimilarity(*Parse("present(x) @ 2 or present(y) @ 3")), 3.0);
}

TEST(AstTest, MaxSimilarityOfConstants) {
  EXPECT_EQ(MaxSimilarity(*Parse("true")), 1.0);
  EXPECT_EQ(MaxSimilarity(*Parse("false")), 1.0);
}

TEST(AstTest, CloneIsDeep) {
  FormulaPtr f = Parse("exists x (present(x) and eventually present(x))");
  FormulaPtr g = f->Clone();
  // Mutate the clone; the original must not change.
  g->vars[0] = "zzz";
  EXPECT_EQ(f->vars[0], "x");
  EXPECT_NE(f->left.get(), g->left.get());
}

TEST(AstTest, ToStringForms) {
  EXPECT_EQ(Parse("present(x)")->ToString(), "present(x)");
  EXPECT_EQ(Parse("present(x) @ 2")->ToString(), "present(x) @ 2");
  EXPECT_EQ(Parse("a() and b()")->ToString(), "(a() and b())");
  EXPECT_EQ(Parse("at-level-3(true)")->ToString(), "at-level-3 (true)");
  EXPECT_EQ(Parse("[h <- height(z)] true")->ToString(), "[h <- height(z)] (true)");
}

TEST(AstTest, CompareOpNames) {
  EXPECT_EQ(CompareOpName(CompareOp::kEq), "=");
  EXPECT_EQ(CompareOpName(CompareOp::kNe), "!=");
  EXPECT_EQ(CompareOpName(CompareOp::kLt), "<");
  EXPECT_EQ(CompareOpName(CompareOp::kLe), "<=");
  EXPECT_EQ(CompareOpName(CompareOp::kGt), ">");
  EXPECT_EQ(CompareOpName(CompareOp::kGe), ">=");
}

}  // namespace
}  // namespace htl
