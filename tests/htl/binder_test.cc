#include "htl/binder.h"

#include <gtest/gtest.h>

#include "htl/parser.h"
#include "testing/helpers.h"

namespace htl {
namespace {

Status BindText(std::string_view text, BindOptions options = {}) {
  auto r = ParseFormula(text);
  if (!r.ok()) return r.status();
  return Bind(r.value().get(), options);
}

TEST(BinderTest, ClosedFormulaBinds) {
  EXPECT_OK(BindText("exists x (present(x))"));
  EXPECT_OK(BindText("exists x, y (fires_at(x, y))"));
  EXPECT_OK(BindText("type = 'western'"));
}

TEST(BinderTest, UnboundObjectVariableRejected) {
  Status s = BindText("present(x)");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(BinderTest, FreeVariablesAllowedWhenNotRequired) {
  BindOptions open;
  open.require_closed = false;
  EXPECT_OK(BindText("present(x)", open));
  EXPECT_OK(BindText("fires_at(x, y)", open));
}

TEST(BinderTest, RebindingRejected) {
  EXPECT_FALSE(BindText("exists x (exists x (present(x)))").ok());
  EXPECT_FALSE(
      BindText("exists h ([h <- height(h)] present(h))").ok());
}

TEST(BinderTest, AttrVarUsedAsObjectRejected) {
  Status s = BindText("exists z ([h <- height(z)] present(h))");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(BinderTest, ObjectVarInComparisonRejected) {
  Status s = BindText("exists x (x = 5)");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(BinderTest, BareNameResolvesToAttrVariableWhenFrozen) {
  auto r = ParseFormula("exists z ([h <- height(z)] eventually height(z) > h)");
  ASSERT_OK(r.status());
  FormulaPtr f = std::move(r).value();
  ASSERT_OK(Bind(f.get()));
  // Find the comparison; its rhs must now be kVariable.
  const Formula* node = f.get();
  while (node->kind != FormulaKind::kConstraint) node = node->left.get();
  EXPECT_EQ(node->constraint.rhs.kind, AttrTerm::Kind::kVariable);
  EXPECT_EQ(node->constraint.rhs.name, "h");
}

TEST(BinderTest, BareNameResolvesToSegmentAttributeOtherwise) {
  auto r = ParseFormula("duration > 5");
  ASSERT_OK(r.status());
  FormulaPtr f = std::move(r).value();
  ASSERT_OK(Bind(f.get()));
  EXPECT_EQ(f->constraint.lhs.kind, AttrTerm::Kind::kSegmentAttr);
}

TEST(BinderTest, FreezeOverUnboundObjectRejected) {
  Status s = BindText("[h <- height(z)] true");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(BinderTest, LevelNumberValidated) {
  EXPECT_FALSE(BindText("at-level-0(true)").ok());
  EXPECT_OK(BindText("at-level-2(true)"));
}

TEST(BinderTest, NullaryPredicateAllowed) {
  EXPECT_OK(BindText("man_woman() and eventually moving_train()"));
}

TEST(BinderTest, NullFormulaRejected) {
  EXPECT_FALSE(Bind(nullptr).ok());
}

TEST(BinderTest, PaperFormulasBind) {
  EXPECT_OK(
      BindText("exists x, y (present(x) and present(y) and name(x) = 'JohnWayne' and "
               "type(y) = 'bandit' and holds_gun(x) and holds_gun(y) and "
               "eventually (fires_at(x, y) and eventually on_floor(y)))"));
  EXPECT_OK(
      BindText("exists z (present(z) and type(z) = 'airplane' and "
               "[h <- height(z)] eventually (present(z) and height(z) > h))"));
  EXPECT_OK(BindText("type = 'western' and at-frame-level(exists x (present(x)))"));
}

}  // namespace
}  // namespace htl
