#include "htl/parser.h"

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace htl {
namespace {

FormulaPtr MustParse(std::string_view text) {
  auto r = ParseFormula(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << text;
  return r.ok() ? std::move(r).value() : nullptr;
}

TEST(ParserTest, TrueAndFalse) {
  EXPECT_EQ(MustParse("true")->kind, FormulaKind::kTrue);
  EXPECT_EQ(MustParse("false")->kind, FormulaKind::kFalse);
}

TEST(ParserTest, Present) {
  FormulaPtr f = MustParse("present(x)");
  ASSERT_EQ(f->kind, FormulaKind::kConstraint);
  EXPECT_EQ(f->constraint.kind, Constraint::Kind::kPresent);
  EXPECT_EQ(f->constraint.object_var, "x");
  EXPECT_EQ(f->constraint.weight, 1.0);
}

TEST(ParserTest, WeightAnnotation) {
  FormulaPtr f = MustParse("present(x) @ 2.5");
  EXPECT_EQ(f->constraint.weight, 2.5);
}

TEST(ParserTest, Predicate) {
  FormulaPtr f = MustParse("fires_at(x, y)");
  ASSERT_EQ(f->kind, FormulaKind::kConstraint);
  EXPECT_EQ(f->constraint.kind, Constraint::Kind::kPredicate);
  EXPECT_EQ(f->constraint.pred_name, "fires_at");
  EXPECT_EQ(f->constraint.pred_args, (std::vector<std::string>{"x", "y"}));
}

TEST(ParserTest, NullaryPredicate) {
  FormulaPtr f = MustParse("man_woman()");
  ASSERT_EQ(f->kind, FormulaKind::kConstraint);
  EXPECT_EQ(f->constraint.pred_name, "man_woman");
  EXPECT_TRUE(f->constraint.pred_args.empty());
}

TEST(ParserTest, AttributeComparison) {
  FormulaPtr f = MustParse("type(x) = 'airplane'");
  ASSERT_EQ(f->kind, FormulaKind::kConstraint);
  const Constraint& c = f->constraint;
  EXPECT_EQ(c.kind, Constraint::Kind::kCompare);
  EXPECT_EQ(c.lhs.kind, AttrTerm::Kind::kAttrOfVar);
  EXPECT_EQ(c.lhs.name, "type");
  EXPECT_EQ(c.lhs.object_var, "x");
  EXPECT_EQ(c.op, CompareOp::kEq);
  EXPECT_EQ(c.rhs.literal, AttrValue("airplane"));
}

TEST(ParserTest, SegmentAttributeComparison) {
  FormulaPtr f = MustParse("type = 'western'");
  const Constraint& c = f->constraint;
  EXPECT_EQ(c.lhs.kind, AttrTerm::Kind::kName);  // Binder resolves later.
  EXPECT_EQ(c.lhs.name, "type");
}

TEST(ParserTest, AllComparisonOps) {
  EXPECT_EQ(MustParse("height(x) < 5")->constraint.op, CompareOp::kLt);
  EXPECT_EQ(MustParse("height(x) <= 5")->constraint.op, CompareOp::kLe);
  EXPECT_EQ(MustParse("height(x) > 5")->constraint.op, CompareOp::kGt);
  EXPECT_EQ(MustParse("height(x) >= 5")->constraint.op, CompareOp::kGe);
  EXPECT_EQ(MustParse("height(x) != 5")->constraint.op, CompareOp::kNe);
}

TEST(ParserTest, AndOrPrecedence) {
  // and binds tighter than or.
  FormulaPtr f = MustParse("a() or b() and c()");
  ASSERT_EQ(f->kind, FormulaKind::kOr);
  EXPECT_EQ(f->left->kind, FormulaKind::kConstraint);
  EXPECT_EQ(f->right->kind, FormulaKind::kAnd);
}

TEST(ParserTest, UntilBindsLoosest) {
  FormulaPtr f = MustParse("a() and b() until c()");
  ASSERT_EQ(f->kind, FormulaKind::kUntil);
  EXPECT_EQ(f->left->kind, FormulaKind::kAnd);
}

TEST(ParserTest, UntilIsRightAssociative) {
  FormulaPtr f = MustParse("a() until b() until c()");
  ASSERT_EQ(f->kind, FormulaKind::kUntil);
  EXPECT_EQ(f->left->kind, FormulaKind::kConstraint);
  EXPECT_EQ(f->right->kind, FormulaKind::kUntil);
}

TEST(ParserTest, UnaryOperators) {
  EXPECT_EQ(MustParse("not a()")->kind, FormulaKind::kNot);
  EXPECT_EQ(MustParse("next a()")->kind, FormulaKind::kNext);
  EXPECT_EQ(MustParse("eventually a()")->kind, FormulaKind::kEventually);
}

TEST(ParserTest, PaperFormulaA) {
  // M1 and next (M2 until M3), asserted at the shot level.
  FormulaPtr f = MustParse("at-shot-level(m1() and next (m2() until m3()))");
  ASSERT_EQ(f->kind, FormulaKind::kLevel);
  EXPECT_EQ(f->level.kind, LevelSpec::Kind::kNamed);
  EXPECT_EQ(f->level.name, "shot");
  ASSERT_EQ(f->left->kind, FormulaKind::kAnd);
  EXPECT_EQ(f->left->right->kind, FormulaKind::kNext);
  EXPECT_EQ(f->left->right->left->kind, FormulaKind::kUntil);
}

TEST(ParserTest, PaperFormulaB) {
  FormulaPtr f = MustParse(
      "exists x, y (present(x) and present(y) and name(x) = 'JohnWayne' and "
      "type(y) = 'bandit' and holds_gun(x) and holds_gun(y) and "
      "eventually (fires_at(x, y) and eventually on_floor(y)))");
  ASSERT_EQ(f->kind, FormulaKind::kExists);
  EXPECT_EQ(f->vars, (std::vector<std::string>{"x", "y"}));
}

TEST(ParserTest, PaperFormulaCFreeze) {
  FormulaPtr f = MustParse(
      "exists z (present(z) and type(z) = 'airplane' and "
      "[h <- height(z)] eventually (present(z) and height(z) > h))");
  ASSERT_EQ(f->kind, FormulaKind::kExists);
  const Formula* freeze = f->left.get();
  // Walk to the freeze node (right side of the and-chain).
  while (freeze->kind == FormulaKind::kAnd) freeze = freeze->right.get();
  ASSERT_EQ(freeze->kind, FormulaKind::kFreeze);
  EXPECT_EQ(freeze->freeze_var, "h");
  EXPECT_EQ(freeze->freeze_term.kind, AttrTerm::Kind::kAttrOfVar);
  EXPECT_EQ(freeze->freeze_term.name, "height");
  EXPECT_EQ(freeze->freeze_term.object_var, "z");
  EXPECT_EQ(freeze->left->kind, FormulaKind::kEventually);
}

TEST(ParserTest, LevelOperators) {
  EXPECT_EQ(MustParse("at-next-level(true)")->level.kind, LevelSpec::Kind::kNextLevel);
  FormulaPtr abs = MustParse("at-level-3(true)");
  EXPECT_EQ(abs->level.kind, LevelSpec::Kind::kAbsolute);
  EXPECT_EQ(abs->level.level, 3);
  FormulaPtr named = MustParse("at-frame-level(true)");
  EXPECT_EQ(named->level.kind, LevelSpec::Kind::kNamed);
  EXPECT_EQ(named->level.name, "frame");
}

TEST(ParserTest, FreezeOfSegmentAttribute) {
  FormulaPtr f = MustParse("[d <- duration] eventually duration > d");
  ASSERT_EQ(f->kind, FormulaKind::kFreeze);
  EXPECT_EQ(f->freeze_term.kind, AttrTerm::Kind::kSegmentAttr);
  EXPECT_EQ(f->freeze_term.name, "duration");
}

TEST(ParserTest, ParenthesesGroup) {
  FormulaPtr f = MustParse("(a() or b()) and c()");
  ASSERT_EQ(f->kind, FormulaKind::kAnd);
  EXPECT_EQ(f->left->kind, FormulaKind::kOr);
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* queries[] = {
      "present(x)",
      "(man_woman() and eventually (moving_train()))",
      "exists x, y (present(x) and fires_at(x, y))",
      "at-shot-level ((m1() until m2()))",
      "[h <- height(z)] (eventually (height(z) > h))",
  };
  for (const char* q : queries) {
    FormulaPtr f1 = MustParse(q);
    ASSERT_NE(f1, nullptr);
    FormulaPtr f2 = MustParse(f1->ToString());
    ASSERT_NE(f2, nullptr) << "failed to reparse: " << f1->ToString();
    EXPECT_EQ(f1->ToString(), f2->ToString());
  }
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseFormula("").ok());
  EXPECT_FALSE(ParseFormula("and").ok());
  EXPECT_FALSE(ParseFormula("present(").ok());
  EXPECT_FALSE(ParseFormula("present(x) extra").ok());
  EXPECT_FALSE(ParseFormula("exists (present(x))").ok());
  EXPECT_FALSE(ParseFormula("[h <- 5] present(x)").ok());  // Literal freeze.
  EXPECT_FALSE(ParseFormula("height(x) <").ok());
  EXPECT_FALSE(ParseFormula("at-level-2(").ok());
  EXPECT_FALSE(ParseFormula("present(x) @ 'w'").ok());  // Non-numeric weight.
}

TEST(ParserTest, ErrorsCarryParseErrorCode) {
  auto r = ParseFormula("present(x) garbage garbage");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, CloneProducesEqualTree) {
  FormulaPtr f = MustParse("exists x (present(x) and eventually type(x) = 'train')");
  FormulaPtr g = f->Clone();
  EXPECT_EQ(f->ToString(), g->ToString());
}

}  // namespace
}  // namespace htl
