#include "htl/lexer.h"

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace htl {
namespace {

std::vector<TokenKind> Kinds(const std::vector<Token>& toks) {
  std::vector<TokenKind> out;
  for (const Token& t : toks) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize(""));
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, Identifiers) {
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize("present x_1 _y"));
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "present");
  EXPECT_EQ(toks[1].text, "x_1");
  EXPECT_EQ(toks[2].text, "_y");
}

TEST(LexerTest, HyphenatedIdentifiers) {
  // at-next-level and at-level-3 lex as single identifiers.
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize("at-next-level at-level-3 at-shot-level"));
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "at-next-level");
  EXPECT_EQ(toks[1].text, "at-level-3");
  EXPECT_EQ(toks[2].text, "at-shot-level");
}

TEST(LexerTest, Numbers) {
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize("42 3.25 -7 -0.5"));
  EXPECT_EQ(toks[0].kind, TokenKind::kInt);
  EXPECT_EQ(toks[0].number.AsInt(), 42);
  EXPECT_EQ(toks[1].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[1].number.AsDouble(), 3.25);
  EXPECT_EQ(toks[2].number.AsInt(), -7);
  EXPECT_DOUBLE_EQ(toks[3].number.AsDouble(), -0.5);
}

TEST(LexerTest, Strings) {
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize("'JohnWayne' 'it''s'"));
  EXPECT_EQ(toks[0].kind, TokenKind::kString);
  EXPECT_EQ(toks[0].text, "JohnWayne");
  EXPECT_EQ(toks[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, OperatorsAndPunctuation) {
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize("( ) [ ] , @ <- = != < <= > >="));
  EXPECT_EQ(Kinds(toks),
            (std::vector<TokenKind>{
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kLBracket,
                TokenKind::kRBracket, TokenKind::kComma, TokenKind::kAt,
                TokenKind::kArrow, TokenKind::kEq, TokenKind::kNe, TokenKind::kLt,
                TokenKind::kLe, TokenKind::kGt, TokenKind::kGe, TokenKind::kEnd}));
}

TEST(LexerTest, ArrowVsLessThan) {
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize("h <- height(x) < 5"));
  EXPECT_EQ(toks[1].kind, TokenKind::kArrow);
  EXPECT_EQ(toks[6].kind, TokenKind::kLt);
}

TEST(LexerTest, CommentsAreSkipped) {
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize("a # comment to end\n b"));
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto r = Tokenize("a $ b");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, OffsetsPointIntoSource) {
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize("ab cd"));
  EXPECT_EQ(toks[0].offset, 0u);
  EXPECT_EQ(toks[1].offset, 3u);
}

TEST(LexerTest, MinusBetweenIdentifierAndNumberIsNegative) {
  // HTL has no arithmetic; '-3' after an identifier is a negative literal.
  ASSERT_OK_AND_ASSIGN(auto toks, Tokenize("height -3"));
  EXPECT_EQ(toks[0].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[1].kind, TokenKind::kInt);
  EXPECT_EQ(toks[1].number.AsInt(), -3);
}

}  // namespace
}  // namespace htl
