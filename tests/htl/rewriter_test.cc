#include "htl/rewriter.h"

#include <gtest/gtest.h>

#include "engine/direct_engine.h"
#include "engine/reference_engine.h"
#include "htl/binder.h"
#include "htl/parser.h"
#include "testing/helpers.h"
#include "util/rng.h"
#include "workload/formula_gen.h"
#include "workload/video_gen.h"

namespace htl {
namespace {

using testing::ListsEqual;

std::string Rewritten(std::string_view text) {
  auto r = ParseFormula(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return Rewrite(std::move(r).value())->ToString();
}

TEST(RewriterTest, CollapsesNestedEventually) {
  EXPECT_EQ(Rewritten("eventually eventually eventually m()"),
            "eventually (m())");
  EXPECT_EQ(LastRewriteCount(), 2);
}

TEST(RewriterTest, TrueUntilBecomesEventually) {
  EXPECT_EQ(Rewritten("true until m()"), "eventually (m())");
  // And chains with the eventually collapse.
  EXPECT_EQ(Rewritten("true until eventually m()"), "eventually (m())");
}

TEST(RewriterTest, FalseAbsorption) {
  EXPECT_EQ(Rewritten("next false"), "false");
  EXPECT_EQ(Rewritten("eventually false"), "false");
  EXPECT_EQ(Rewritten("m() until false"), "false");
  EXPECT_EQ(Rewritten("false until m()"), "m()");
}

TEST(RewriterTest, NegationRules) {
  EXPECT_EQ(Rewritten("not not m()"), "m()");
  EXPECT_EQ(Rewritten("not true"), "false");
  EXPECT_EQ(Rewritten("not false"), "true");
  EXPECT_EQ(Rewritten("not not not true"), "false");
}

TEST(RewriterTest, FlattensExistsChains) {
  EXPECT_EQ(Rewritten("exists x (exists y (fires_at(x, y)))"),
            "exists x, y (fires_at(x, y))");
}

TEST(RewriterTest, OrIdempotence) {
  EXPECT_EQ(Rewritten("m() or m()"), "m()");
  EXPECT_EQ(Rewritten("m() or n()"), "(m() or n())");  // Unchanged.
}

TEST(RewriterTest, DropsUnusedFreeze) {
  EXPECT_EQ(Rewritten("exists z ([h <- height(z)] present(z))"),
            "exists z (present(z))");
  // Used freeze variables stay.
  EXPECT_EQ(Rewritten("exists z ([h <- height(z)] eventually height(z) > h)"),
            "exists z ([h <- height(z)] (eventually (height(z) > h)))");
}

TEST(RewriterTest, DoesNotDropTrueConjuncts) {
  // `f and true` must stay: removing it would change the static max.
  EXPECT_EQ(Rewritten("m() and true"), "(m() and true)");
}

TEST(RewriterTest, IsIdempotent) {
  const char* cases[] = {
      "true until eventually (not not m())",
      "exists x (exists y (exists z (present(x))))",
      "eventually eventually (m() or m())",
  };
  for (const char* text : cases) {
    auto once = Rewrite(ParseFormula(text).value());
    auto twice = Rewrite(once->Clone());
    EXPECT_EQ(once->ToString(), twice->ToString()) << text;
    EXPECT_EQ(LastRewriteCount(), 0) << text;
  }
}

TEST(RewriterTest, PreservesMaxSimilarity) {
  const char* cases[] = {
      "true until m() @ 3",
      "eventually eventually m() @ 2",
      "not not (m() @ 5)",
      "m() @ 2 or m() @ 2",
  };
  for (const char* text : cases) {
    FormulaPtr original = ParseFormula(text).value();
    const double before = MaxSimilarity(*original);
    FormulaPtr after = Rewrite(std::move(original));
    EXPECT_EQ(MaxSimilarity(*after), before) << text;
  }
}

// The central property: rewriting never changes evaluation results.
class RewriterPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RewriterPropertyTest, RewrittenFormulaEvaluatesIdentically) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6151 + 2);
  VideoGenOptions vopts;
  vopts.levels = 2;
  vopts.min_branching = 6;
  vopts.max_branching = 10;
  VideoTree video = GenerateVideo(rng, vopts);
  ReferenceEngine reference(&video);
  DirectEngine direct(&video);

  FormulaGenOptions fopts;
  fopts.max_depth = 3;
  fopts.allow_or = true;
  for (int trial = 0; trial < 5; ++trial) {
    FormulaPtr f = GenerateFormula(rng, fopts);
    ASSERT_OK(Bind(f.get()));
    FormulaPtr g = Rewrite(f->Clone());
    ASSERT_OK_AND_ASSIGN(SimilarityList want, reference.EvaluateList(2, *f));
    ASSERT_OK_AND_ASSIGN(SimilarityList got_ref, reference.EvaluateList(2, *g));
    EXPECT_TRUE(ListsEqual(got_ref, want)) << f->ToString() << " vs " << g->ToString();
    ASSERT_OK_AND_ASSIGN(SimilarityList got_direct, direct.EvaluateList(2, *g));
    EXPECT_TRUE(ListsEqual(got_direct, want)) << g->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriterPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace htl
