#include "htl/classifier.h"

#include <gtest/gtest.h>

#include "htl/binder.h"
#include "htl/parser.h"
#include "testing/helpers.h"

namespace htl {
namespace {

FormulaClass ClassOf(std::string_view text) {
  auto r = ParseFormula(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  FormulaPtr f = std::move(r).value();
  Status s = Bind(f.get());
  EXPECT_TRUE(s.ok()) << s.ToString();
  return Classify(*f);
}

TEST(ClassifierTest, PaperFormulaAIsType1) {
  // (A): M1 and next (M2 until M3) — non-temporal formulas joined by
  // temporal operators and conjunction.
  EXPECT_EQ(ClassOf("m1() and next (m2() until m3())"), FormulaClass::kType1);
}

TEST(ClassifierTest, ExistsInsideNonTemporalLeavesType1) {
  // Existential quantifiers entirely inside non-temporal subformulas count
  // as part of the atomic formulas.
  EXPECT_EQ(ClassOf("exists x (present(x)) and eventually exists y (present(y))"),
            FormulaClass::kType1);
}

TEST(ClassifierTest, PaperFormulaBIsType2) {
  // (B): prenex exists over a temporal body, no freeze.
  EXPECT_EQ(ClassOf("exists x, y (present(x) and present(y) and "
                    "eventually (fires_at(x, y) and eventually present(y)))"),
            FormulaClass::kType2);
}

TEST(ClassifierTest, PaperFormulaCIsConjunctive) {
  // (C): freeze quantifier makes it conjunctive but not type (2).
  EXPECT_EQ(ClassOf("exists z (present(z) and type(z) = 'airplane' and "
                    "[h <- height(z)] eventually (present(z) and height(z) > h))"),
            FormulaClass::kConjunctive);
}

TEST(ClassifierTest, LevelOperatorMakesExtendedConjunctive) {
  EXPECT_EQ(ClassOf("type = 'western' and at-frame-level(exists x (present(x)))"),
            FormulaClass::kExtendedConjunctive);
}

TEST(ClassifierTest, NegationIsGeneral) {
  EXPECT_EQ(ClassOf("not m1()"), FormulaClass::kGeneral);
}

TEST(ClassifierTest, DisjunctionIsGeneral) {
  EXPECT_EQ(ClassOf("m1() or m2()"), FormulaClass::kGeneral);
}

TEST(ClassifierTest, FalseIsGeneral) {
  EXPECT_EQ(ClassOf("false"), FormulaClass::kGeneral);
}

TEST(ClassifierTest, NonPrenexExistsOverTemporalIsGeneral) {
  EXPECT_EQ(ClassOf("eventually exists x (present(x) and eventually present(x))"),
            FormulaClass::kGeneral);
}

TEST(ClassifierTest, PrenexChainStaysType2) {
  EXPECT_EQ(ClassOf("exists x (exists y (present(x) and eventually present(y)))"),
            FormulaClass::kType2);
}

TEST(ClassifierTest, TrueAloneIsType1) {
  EXPECT_EQ(ClassOf("true"), FormulaClass::kType1);
  EXPECT_EQ(ClassOf("true until m1()"), FormulaClass::kType1);
}

TEST(ClassifierTest, FreezeWithoutTemporalStillConjunctive) {
  EXPECT_EQ(ClassOf("exists z ([h <- height(z)] height(z) >= h)"),
            FormulaClass::kConjunctive);
}

TEST(ClassifierTest, ClassNamesAreStable) {
  EXPECT_EQ(FormulaClassName(FormulaClass::kType1), "type(1)");
  EXPECT_EQ(FormulaClassName(FormulaClass::kType2), "type(2)");
  EXPECT_EQ(FormulaClassName(FormulaClass::kConjunctive), "conjunctive");
  EXPECT_EQ(FormulaClassName(FormulaClass::kExtendedConjunctive),
            "extended-conjunctive");
  EXPECT_EQ(FormulaClassName(FormulaClass::kGeneral), "general");
}


TEST(ClassifierTest, LevelOperatorRestartsPrenexContext) {
  // The paper's flagship extended conjunctive example: formula (B) under
  // at-frame-level, conjoined with a browsing predicate.
  EXPECT_EQ(ClassOf("type = 'western' and at-frame-level("
                    "exists x, y (present(x) and holds_gun(x) and "
                    "eventually fires_at(x, y)))"),
            FormulaClass::kExtendedConjunctive);
  // But a non-prenex exists *inside* the level body is still general.
  EXPECT_EQ(ClassOf("at-frame-level(eventually exists x (present(x) and "
                    "eventually present(x)))"),
            FormulaClass::kGeneral);
}

}  // namespace
}  // namespace htl
