// Golden snapshots of vm::Disassemble() over representative formulas — one
// per supported class plus the option-sensitive variants (fuzzy and, cache
// keys). The listing pins everything the compiler bakes into a program:
// instruction stream, register typing, static maxima, CSE sharing, cache
// keys, constant pools, and level subprograms. An unintended compiler change
// shows up as a byte diff here before it can reach the differential battery.
//
// To regenerate after an intentional compiler change, run integration_tests
// with HTL_REGEN_GOLDEN=1 and --gtest_filter='GoldenProgramTest.*', then
// review the diff under tests/integration/golden/ (see CONTRIBUTING.md).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "htl/binder.h"
#include "htl/parser.h"
#include "testing/helpers.h"
#include "vm/bytecode.h"
#include "vm/compiler.h"
#include "workload/casablanca.h"

namespace htl {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(HTL_TEST_SRCDIR) + "/integration/golden/" + name;
}

void CompareToGolden(const std::string& name, const std::string& rendered) {
  const std::string path = GoldenPath(name);
  if (std::getenv("HTL_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with HTL_REGEN_GOLDEN=1)";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(rendered, want.str())
      << "program listing drifted from " << path
      << " — if intentional, regenerate with HTL_REGEN_GOLDEN=1 and review";
}

std::string CompileAndDisassemble(std::string_view text,
                                  QueryOptions options = {}) {
  auto parsed = ParseFormula(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  FormulaPtr f = std::move(parsed).value();
  Status bound = Bind(f.get());
  EXPECT_TRUE(bound.ok()) << bound.ToString();
  auto program = vm::Compile(*f, options);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  return vm::Disassemble(program.value());
}

TEST(GoldenProgramTest, Type1TemporalChain) {
  CompareToGolden("program_type1.txt",
                  CompileAndDisassemble(
                      "exists x (moving(x)) until "
                      "(exists y (armed(y)) and eventually exists x (moving(x)))"));
}

TEST(GoldenProgramTest, ConjunctiveWithFreeze) {
  CompareToGolden("program_conjunctive_freeze.txt",
                  CompileAndDisassemble(
                      "exists z (type(z) = 'person' and "
                      "[h <- type(z)] eventually (type(z) = h))"));
}

TEST(GoldenProgramTest, ExtendedConjunctiveWithLevelSubprogram) {
  CompareToGolden(
      "program_extended_level.txt",
      CompileAndDisassemble("exists x (moving(x)) and "
                            "at-next-level(eventually exists y (armed(y)))"));
}

TEST(GoldenProgramTest, GeneralWithClosedNegationAndSharedSubplan) {
  // The duplicated until-subtree must disassemble as one register with the
  // second occurrence marked may_skip (CSE via canonical fingerprints).
  CompareToGolden("program_general_cse.txt",
                  CompileAndDisassemble(
                      "not ((exists x (moving(x)) until exists y (armed(y))) or "
                      "(exists x (moving(x)) until exists y (armed(y))))"));
}

TEST(GoldenProgramTest, CasablancaQueryOne) {
  FormulaPtr f = casablanca::Query1Full();
  ASSERT_OK(Bind(f.get()));
  auto program = vm::Compile(*f, QueryOptions{});
  ASSERT_OK(program.status());
  CompareToGolden("program_casablanca_q1.txt", vm::Disassemble(program.value()));
}

TEST(GoldenProgramTest, OptionsChangeTheProgram) {
  // Fuzzy and-semantics flips the instruction flag; caching mints key pools.
  QueryOptions fuzzy;
  fuzzy.and_semantics = AndSemantics::kFuzzyMin;
  CompareToGolden("program_fuzzy_and.txt",
                  CompileAndDisassemble(
                      "exists x (moving(x)) and exists y (armed(y))", fuzzy));

  QueryOptions cached;
  cached.cache_mode = CacheMode::kReadWrite;
  CompareToGolden("program_cached_keys.txt",
                  CompileAndDisassemble(
                      "eventually (exists x (moving(x)) and exists y (armed(y)))",
                      cached));
}

}  // namespace
}  // namespace htl
