// End-to-end reproduction of section 4.1: the Casablanca example through
// every pipeline the paper describes — annotated meta-data -> picture
// retrieval -> similarity lists -> (direct | SQL) temporal evaluation ->
// ranked results. All four tables of the paper come out exactly.

#include <gtest/gtest.h>

#include "engine/direct_engine.h"
#include "engine/reference_engine.h"
#include "htl/binder.h"
#include "htl/classifier.h"
#include "picture/atomic.h"
#include "picture/picture_system.h"
#include "sim/topk.h"
#include "sql/sql_system.h"
#include "testing/helpers.h"
#include "workload/casablanca.h"

namespace htl {
namespace {

using testing::ListsNear;

TEST(CasablancaEndToEnd, DirectEngineReproducesTable4) {
  VideoTree v = casablanca::MakeVideo();
  DirectEngine engine(&v);
  FormulaPtr q = casablanca::Query1Full();
  ASSERT_OK(Bind(q.get()));
  ASSERT_OK_AND_ASSIGN(SimilarityList result, engine.EvaluateList(2, *q));
  EXPECT_TRUE(ListsNear(result, casablanca::Query1ResultTable()));
}

TEST(CasablancaEndToEnd, ReferenceEngineAgrees) {
  VideoTree v = casablanca::MakeVideo();
  ReferenceEngine engine(&v);
  FormulaPtr q = casablanca::Query1Full();
  ASSERT_OK(Bind(q.get()));
  ASSERT_OK_AND_ASSIGN(SimilarityList result, engine.EvaluateList(2, *q));
  EXPECT_TRUE(ListsNear(result, casablanca::Query1ResultTable()));
}

TEST(CasablancaEndToEnd, IntermediateEventuallyMatchesTable3) {
  VideoTree v = casablanca::MakeVideo();
  DirectEngine engine(&v);
  FormulaPtr q = MakeEventually(casablanca::MovingTrainAtomic());
  ASSERT_OK(Bind(q.get()));
  ASSERT_OK_AND_ASSIGN(SimilarityList result, engine.EvaluateList(2, *q));
  EXPECT_TRUE(ListsNear(result, casablanca::EventuallyMovingTrainTable()));
}

TEST(CasablancaEndToEnd, SqlSystemFedFromPictureSystemMatchesTable4) {
  // The paper's second system: atomic similarity tables computed by the
  // picture retrieval system are loaded as relations; the temporal part
  // runs as generated SQL. "Both approaches produced identical final
  // values as well as identical intermediate similarity tables."
  VideoTree v = casablanca::MakeVideo();
  PictureSystem pictures(&v);
  FormulaPtr mw = casablanca::ManWomanAtomic();
  FormulaPtr mt = casablanca::MovingTrainAtomic();
  ASSERT_OK_AND_ASSIGN(AtomicFormula mw_atomic, ExtractAtomic(*mw));
  ASSERT_OK_AND_ASSIGN(AtomicFormula mt_atomic, ExtractAtomic(*mt));
  ASSERT_OK_AND_ASSIGN(SimilarityList mw_list, pictures.QueryClosed(2, mw_atomic));
  ASSERT_OK_AND_ASSIGN(SimilarityList mt_list, pictures.QueryClosed(2, mt_atomic));

  FormulaPtr q = casablanca::Query1Named();
  sql::SqlSystem sys;
  ASSERT_OK_AND_ASSIGN(
      SimilarityList sql_result,
      sys.Evaluate(*q, {{"man_woman", mw_list}, {"moving_train", mt_list}},
                   casablanca::kNumShots));
  EXPECT_TRUE(ListsNear(sql_result, casablanca::Query1ResultTable()));

  // And it matches the direct engine bit-for-bit on the same inputs.
  ASSERT_OK_AND_ASSIGN(
      SimilarityList direct_result,
      EvaluateWithLists(*q, {{"man_woman", mw_list}, {"moving_train", mt_list}}));
  EXPECT_EQ(sql_result, direct_result);
}

TEST(CasablancaEndToEnd, RankedOutputMatchesPaperOrdering) {
  VideoTree v = casablanca::MakeVideo();
  DirectEngine engine(&v);
  FormulaPtr q = casablanca::Query1Full();
  ASSERT_OK(Bind(q.get()));
  ASSERT_OK_AND_ASSIGN(SimilarityList result, engine.EvaluateList(2, *q));
  auto ranked = RankedEntries(result);
  // Table 4's printed row order: starts 1, 6, 8, 5, 7, 9, 47, 10.
  std::vector<SegmentId> starts;
  for (const auto& r : ranked) starts.push_back(r.entry.range.begin);
  EXPECT_EQ(starts, (std::vector<SegmentId>{1, 6, 8, 5, 7, 9, 47, 10}));
}

TEST(CasablancaEndToEnd, ClassifiedAsType1) {
  FormulaPtr q = casablanca::Query1Full();
  ASSERT_OK(Bind(q.get()));
  EXPECT_EQ(Classify(*q), FormulaClass::kType1);
}

}  // namespace
}  // namespace htl
