// Golden snapshots of QueryProfile::ToText() for the three cache-lookup
// outcomes on the Casablanca workload: a cold miss (lookup + execute +
// fill), a warm hit (lookup short-circuits the whole execute stage), and an
// invalidated-epoch lookup (the stale entry is evicted and the query
// recomputes and refills). Timings are normalized away; everything else —
// span structure, units, row/interval/table counts, cache notes — is pinned
// byte for byte.
//
// To regenerate after an intentional profile change, run integration_tests
// with HTL_REGEN_GOLDEN=1 and --gtest_filter='GoldenProfileTest.*', then
// review the diff under tests/integration/golden/ (see CONTRIBUTING.md).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "engine/retrieval.h"
#include "model/video.h"
#include "testing/helpers.h"
#include "workload/casablanca.h"

namespace htl {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(HTL_TEST_SRCDIR) + "/integration/golden/" + name;
}

// Every span timing renders as snprintf("%9.3f ms") — 9 fixed chars before
// " ms". Replace them with a stable placeholder so the snapshot only pins
// structure and counts, never wall time.
std::string NormalizeTimings(std::string text) {
  const std::string marker = " ms";
  size_t pos = 0;
  while ((pos = text.find(marker, pos)) != std::string::npos) {
    if (pos >= 9) text.replace(pos - 9, 9, "    #.###");
    pos += marker.size();
  }
  return text;
}

void CompareToGolden(const std::string& name, const std::string& rendered) {
  const std::string normalized = NormalizeTimings(rendered);
  const std::string path = GoldenPath(name);
  if (std::getenv("HTL_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << normalized;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with HTL_REGEN_GOLDEN=1)";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(normalized, want.str())
      << "profile drifted from " << path
      << " — if intentional, regenerate with HTL_REGEN_GOLDEN=1 and review";
}

TEST(GoldenProfileTest, MissHitAndStaleLookupProfiles) {
  MetadataStore store;
  store.AddVideo(casablanca::MakeVideo());

  QueryOptions options;
  options.parallelism = 1;
  options.cache_mode = CacheMode::kReadWrite;
  Retriever r(&store, options);
  FormulaPtr query = casablanca::Query1Full();

  // Cold: lookup misses, the query executes, the result is stored.
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval miss, r.TopSegmentsProfiled(*query, 2, 8));
  ASSERT_TRUE(miss.report.complete());
  CompareToGolden("profile_cache_miss.txt", miss.report.profile.ToText());

  // Warm: the lookup hits and the execute stage never happens.
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval hit, r.TopSegmentsProfiled(*query, 2, 8));
  CompareToGolden("profile_cache_hit.txt", hit.report.profile.ToText());
  ASSERT_EQ(hit.hits.size(), miss.hits.size());
  for (size_t i = 0; i < hit.hits.size(); ++i) {
    EXPECT_EQ(hit.hits[i].sim, miss.hits[i].sim);
  }

  // Invalidated: the store mutated since the fill, so the warm entry is
  // stale — lazily evicted, recomputed, refilled at the new epoch.
  store.BumpEpoch();
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval stale, r.TopSegmentsProfiled(*query, 2, 8));
  CompareToGolden("profile_cache_stale.txt", stale.report.profile.ToText());
  for (size_t i = 0; i < stale.hits.size(); ++i) {
    EXPECT_EQ(stale.hits[i].sim, miss.hits[i].sim);
  }
}

}  // namespace
}  // namespace htl
