// Whole-system integration: synthetic footage -> analyzer -> persisted to
// disk -> reloaded -> indexed -> queried through the retrieval façade, with
// the SQL baseline cross-checking the temporal evaluation — every box of
// the paper's figure 1 plus the storage layer, in one flow.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "analyzer/pipeline.h"
#include "engine/direct_engine.h"
#include "engine/retrieval.h"
#include "htl/binder.h"
#include "htl/parser.h"
#include "picture/atomic.h"
#include "picture/picture_system.h"
#include "sql/sql_system.h"
#include "storage/serialization.h"
#include "testing/helpers.h"
#include "util/rng.h"
#include "workload/footage_gen.h"
#include "workload/western.h"

namespace htl {
namespace {

TEST(FullPipelineTest, FootageToRankedResultsThroughDisk) {
  // 1. Analyze raw footage.
  Rng rng(404);
  FootageOptions fopts;
  fopts.num_scenes = 5;
  fopts.min_objects = 2;
  fopts.max_objects = 3;
  Footage footage = GenerateFootage(rng, fopts);
  ASSERT_OK_AND_ASSIGN(VideoTree analyzed, AnalyzeVideo(footage.frames));

  // 2. Persist and reload.
  const std::string path = ::testing::TempDir() + "/htl_pipeline_video.txt";
  ASSERT_OK(SaveVideo(analyzed, path));
  ASSERT_OK_AND_ASSIGN(VideoTree reloaded, LoadVideo(path));
  std::remove(path.c_str());

  // 3. Retrieve through the façade (store of one reloaded video).
  MetadataStore store;
  store.AddVideo(std::move(reloaded));
  Retriever retriever(&store);
  ASSERT_OK_AND_ASSIGN(
      auto hits,
      retriever.TopSegmentsAtNamedLevel(
          "exists o (present(o) and next present(o))", "frame", 5));
  EXPECT_FALSE(hits.empty());

  // 4. Results over the reloaded video match the pre-save evaluation.
  DirectEngine original(&analyzed);
  auto q = retriever.Prepare("exists o (present(o) and next present(o))");
  ASSERT_OK(q.status());
  ASSERT_OK_AND_ASSIGN(SimilarityList want,
                       original.EvaluateList(analyzed.num_levels(), *q.value()));
  DirectEngine roundtripped(&store.Video(1));
  ASSERT_OK_AND_ASSIGN(SimilarityList got,
                       roundtripped.EvaluateList(analyzed.num_levels(), *q.value()));
  EXPECT_EQ(got, want);
}

TEST(FullPipelineTest, PictureTablesThroughSqlMatchDirect) {
  // The western movie's formula (A) pieces extracted by the picture system
  // and evaluated by both the direct list algebra and the SQL baseline.
  VideoTree v = western::MakeVideo();
  PictureSystem pictures(&v);
  struct Piece {
    const char* name;
    const char* text;
  };
  const Piece pieces[] = {
      {"m1", "exists p (type(p) = 'airplane' and on_ground(p))"},
      {"m2", "exists p (type(p) = 'airplane' and in_air(p))"},
      {"m3", "exists p (type(p) = 'airplane' and shot_down(p))"},
  };
  std::map<std::string, SimilarityList> inputs;
  for (const Piece& p : pieces) {
    auto parsed = ParseFormula(p.text);
    ASSERT_OK(parsed.status());
    ASSERT_OK_AND_ASSIGN(AtomicFormula atomic, ExtractAtomic(*parsed.value()));
    ASSERT_OK_AND_ASSIGN(SimilarityList list, pictures.QueryClosed(3, atomic));
    inputs.emplace(p.name, std::move(list));
  }
  auto skeleton = ParseFormula("m1() and next (m2() until m3())");
  ASSERT_OK(skeleton.status());

  ASSERT_OK_AND_ASSIGN(SimilarityList direct,
                       EvaluateWithLists(*skeleton.value(), inputs));
  sql::SqlSystem sys;
  ASSERT_OK_AND_ASSIGN(SimilarityList via_sql,
                       sys.Evaluate(*skeleton.value(), inputs, v.NumSegments(3)));
  EXPECT_EQ(direct, via_sql);

  // And both equal the full end-to-end evaluation of formula (A).
  DirectEngine engine(&v);
  FormulaPtr a = western::FormulaA();
  ASSERT_OK(Bind(a.get()));
  ASSERT_OK_AND_ASSIGN(SimilarityList full, engine.EvaluateList(3, *a));
  EXPECT_EQ(direct, full);
}

TEST(FullPipelineTest, StoreSerializationPreservesRetrievalResults) {
  MetadataStore store;
  store.AddVideo(western::MakeVideo());
  {
    Rng rng(77);
    FootageOptions fopts;
    fopts.num_scenes = 3;
    Footage footage = GenerateFootage(rng, fopts);
    auto analyzed = AnalyzeVideo(footage.frames);
    ASSERT_OK(analyzed.status());
    store.AddVideo(std::move(analyzed).value());
  }
  std::stringstream buf;
  WriteStore(store, buf);
  ASSERT_OK_AND_ASSIGN(MetadataStore reloaded, ReadStore(buf));

  Retriever before(&store);
  Retriever after(&reloaded);
  const char* query = "exists o (present(o)) until duration >= 999";  // Mixed hit/miss.
  ASSERT_OK_AND_ASSIGN(auto hits_before,
                       before.TopSegmentsAtNamedLevel(query, "frame", 8));
  ASSERT_OK_AND_ASSIGN(auto hits_after,
                       after.TopSegmentsAtNamedLevel(query, "frame", 8));
  ASSERT_EQ(hits_before.size(), hits_after.size());
  for (size_t i = 0; i < hits_before.size(); ++i) {
    EXPECT_EQ(hits_before[i].video, hits_after[i].video);
    EXPECT_EQ(hits_before[i].segment, hits_after[i].segment);
    EXPECT_EQ(hits_before[i].sim, hits_after[i].sim);
  }
}

}  // namespace
}  // namespace htl
