#include <gtest/gtest.h>

#include "analyzer/cut_detection.h"
#include "analyzer/pipeline.h"
#include "analyzer/tracker.h"
#include "engine/direct_engine.h"
#include "htl/binder.h"
#include "htl/parser.h"
#include "testing/helpers.h"
#include "workload/footage_gen.h"

namespace htl {
namespace {

FrameFeatures Hist(std::initializer_list<double> values) {
  FrameFeatures f;
  f.histogram = values;
  return f;
}

// ---------------------------------------------------------------------------
// Cut detection.

TEST(CutDetectionTest, HistogramDistance) {
  EXPECT_EQ(HistogramDistance(Hist({1, 0}), Hist({0, 1})), 2.0);
  EXPECT_EQ(HistogramDistance(Hist({0.5, 0.5}), Hist({0.5, 0.5})), 0.0);
  // Size mismatch treated as zero padding.
  EXPECT_EQ(HistogramDistance(Hist({1}), Hist({1, 0.5})), 0.5);
}

TEST(CutDetectionTest, FindsSharpTransitions) {
  std::vector<FrameFeatures> frames = {
      Hist({1, 0}), Hist({1, 0}), Hist({1, 0}),
      Hist({0, 1}), Hist({0, 1}),  // Cut at index 3.
      Hist({1, 0}), Hist({1, 0}),  // Cut at index 5.
  };
  ASSERT_OK_AND_ASSIGN(auto cuts, DetectCuts(frames));
  EXPECT_EQ(cuts, (std::vector<int64_t>{0, 3, 5}));
}

TEST(CutDetectionTest, NoCutsWithinSmoothScene) {
  std::vector<FrameFeatures> frames(10, Hist({0.5, 0.5}));
  ASSERT_OK_AND_ASSIGN(auto cuts, DetectCuts(frames));
  EXPECT_EQ(cuts, std::vector<int64_t>{0});
}

TEST(CutDetectionTest, MinShotLengthDebounces) {
  std::vector<FrameFeatures> frames = {
      Hist({1, 0}), Hist({0, 1}), Hist({1, 0}), Hist({0, 1}),
  };
  CutDetectorOptions opts;
  opts.min_shot_length = 2;
  ASSERT_OK_AND_ASSIGN(auto cuts, DetectCuts(frames, opts));
  EXPECT_EQ(cuts, (std::vector<int64_t>{0, 2}));
}

TEST(CutDetectionTest, EmptyAndErrors) {
  ASSERT_OK_AND_ASSIGN(auto cuts, DetectCuts({}));
  EXPECT_TRUE(cuts.empty());
  std::vector<FrameFeatures> bad = {Hist({1, 0}), Hist({1, 0, 0})};
  EXPECT_FALSE(DetectCuts(bad).ok());
  CutDetectorOptions opts;
  opts.min_shot_length = 0;
  EXPECT_FALSE(DetectCuts(bad, opts).ok());
}

TEST(CutDetectionTest, KeyFrameIsMedoid) {
  std::vector<FrameFeatures> frames = {
      Hist({1, 0}), Hist({0.5, 0.5}), Hist({0.6, 0.4}), Hist({0, 1}),
  };
  // Frame 1 or 2 minimize the summed distance; frame 2 (0.6/0.4) has
  // cost |0.8|+|0.2|+|1.2| vs frame 1: |1|+|0.2|+|1|; frame1=2.2, frame2=2.2?
  ASSERT_OK_AND_ASSIGN(int64_t key, SelectKeyFrame(frames, 0, 4));
  EXPECT_TRUE(key == 1 || key == 2);
  EXPECT_FALSE(SelectKeyFrame(frames, 2, 2).ok());
  EXPECT_FALSE(SelectKeyFrame(frames, 0, 9).ok());
}

// ---------------------------------------------------------------------------
// Tracker.

Detection Det(double x, double y, const char* label) {
  return Detection{BoundingBox{x, y, 10, 10}, label};
}

TEST(TrackerTest, IouBasics) {
  EXPECT_DOUBLE_EQ(Iou(BoundingBox{0, 0, 10, 10}, BoundingBox{0, 0, 10, 10}), 1.0);
  EXPECT_DOUBLE_EQ(Iou(BoundingBox{0, 0, 10, 10}, BoundingBox{20, 0, 10, 10}), 0.0);
  EXPECT_NEAR(Iou(BoundingBox{0, 0, 10, 10}, BoundingBox{5, 0, 10, 10}),
              50.0 / 150.0, 1e-12);
}

TEST(TrackerTest, StableIdsAcrossSmoothMotion) {
  std::vector<std::vector<Detection>> frames = {
      {Det(0, 0, "person"), Det(100, 0, "train")},
      {Det(2, 1, "person"), Det(98, 0, "train")},
      {Det(4, 2, "person"), Det(96, 0, "train")},
  };
  ASSERT_OK_AND_ASSIGN(auto tracked, TrackObjects(frames));
  ASSERT_EQ(tracked.size(), 3u);
  const ObjectId person = tracked[0][0].id;
  const ObjectId train = tracked[0][1].id;
  EXPECT_NE(person, train);
  for (const auto& frame : tracked) {
    EXPECT_EQ(frame[0].id, person);
    EXPECT_EQ(frame[1].id, train);
  }
}

TEST(TrackerTest, LabelGateSplitsTracks) {
  std::vector<std::vector<Detection>> frames = {
      {Det(0, 0, "person")},
      {Det(0, 0, "train")},  // Same box, different label: new id.
  };
  ASSERT_OK_AND_ASSIGN(auto tracked, TrackObjects(frames));
  EXPECT_NE(tracked[0][0].id, tracked[1][0].id);
}

TEST(TrackerTest, DisappearanceEndsTrack) {
  std::vector<std::vector<Detection>> frames = {
      {Det(0, 0, "person")},
      {},  // Gone for one frame; max_gap = 0.
      {Det(0, 0, "person")},
  };
  ASSERT_OK_AND_ASSIGN(auto tracked, TrackObjects(frames));
  EXPECT_NE(tracked[0][0].id, tracked[2][0].id);
  // With max_gap = 1 the id survives the gap.
  TrackerOptions opts;
  opts.max_gap = 1;
  ASSERT_OK_AND_ASSIGN(auto patient, TrackObjects(frames, opts));
  EXPECT_EQ(patient[0][0].id, patient[2][0].id);
}

TEST(TrackerTest, JumpBeyondIouGateStartsNewTrack) {
  std::vector<std::vector<Detection>> frames = {
      {Det(0, 0, "person")},
      {Det(200, 200, "person")},
  };
  ASSERT_OK_AND_ASSIGN(auto tracked, TrackObjects(frames));
  EXPECT_NE(tracked[0][0].id, tracked[1][0].id);
}

TEST(TrackerTest, GreedyPicksBestIouFirst) {
  std::vector<std::vector<Detection>> frames = {
      {Det(0, 0, "person"), Det(8, 0, "person")},
      {Det(1, 0, "person"), Det(7, 0, "person")},
  };
  ASSERT_OK_AND_ASSIGN(auto tracked, TrackObjects(frames));
  EXPECT_EQ(tracked[1][0].id, tracked[0][0].id);
  EXPECT_EQ(tracked[1][1].id, tracked[0][1].id);
}

TEST(TrackerTest, OptionValidation) {
  EXPECT_FALSE(TrackObjects({}, TrackerOptions{.min_iou = -1}).ok());
  EXPECT_FALSE(TrackObjects({}, TrackerOptions{.max_gap = -2}).ok());
}

// ---------------------------------------------------------------------------
// Full pipeline.

TEST(AnalyzerPipelineTest, BuildsThreeLevelVideo) {
  Rng rng(7);
  FootageOptions opts;
  opts.num_scenes = 4;
  Footage footage = GenerateFootage(rng, opts);
  ASSERT_OK_AND_ASSIGN(VideoTree video, AnalyzeVideo(footage.frames));
  EXPECT_EQ(video.num_levels(), 3);
  EXPECT_EQ(video.LevelByName("shot").value(), 2);
  EXPECT_EQ(video.LevelByName("frame").value(), 3);
  EXPECT_EQ(video.NumSegments(3), static_cast<int64_t>(footage.frames.size()));
}

TEST(AnalyzerPipelineTest, RecoversInjectedSceneBoundaries) {
  Rng rng(11);
  FootageOptions opts;
  opts.num_scenes = 6;
  Footage footage = GenerateFootage(rng, opts);
  ASSERT_OK_AND_ASSIGN(auto cuts, DetectCuts([&] {
                         std::vector<FrameFeatures> f;
                         for (const RawFrame& r : footage.frames) {
                           f.push_back(r.features);
                         }
                         return f;
                       }()));
  // Generated scenes have sharply different histograms, so the detector
  // must recover the ground truth starts (rarely, two random scenes are
  // close — allow missing at most one boundary).
  int found = 0;
  for (int64_t start : footage.scene_starts) {
    found += std::count(cuts.begin(), cuts.end(), start) > 0;
  }
  EXPECT_GE(found, static_cast<int>(footage.scene_starts.size()) - 1);
}

TEST(AnalyzerPipelineTest, ShotsCarryKeyFrameMetadata) {
  Rng rng(13);
  Footage footage = GenerateFootage(rng, FootageOptions{});
  ASSERT_OK_AND_ASSIGN(VideoTree video, AnalyzeVideo(footage.frames));
  for (SegmentId s = 1; s <= video.NumSegments(2); ++s) {
    const SegmentMeta& meta = video.Meta(2, s);
    EXPECT_TRUE(meta.Attribute("key_frame").is_int());
    EXPECT_TRUE(meta.Attribute("num_frames").is_int());
    const Interval frames = video.Children(2, s);
    EXPECT_EQ(meta.Attribute("num_frames").AsInt(), frames.size());
  }
}

TEST(AnalyzerPipelineTest, AnalyzedVideoIsQueryable) {
  Rng rng(17);
  FootageOptions opts;
  opts.num_scenes = 4;
  opts.min_objects = 2;
  opts.max_objects = 3;
  Footage footage = GenerateFootage(rng, opts);
  ASSERT_OK_AND_ASSIGN(VideoTree video, AnalyzeVideo(footage.frames));
  DirectEngine engine(&video);
  // A query spanning the analyzer's whole output: shots whose frame
  // sequence eventually shows two objects side by side.
  auto q = ParseFormula(
      "at-next-level(eventually exists a, b (left_of(a, b)))");
  ASSERT_OK(q.status());
  ASSERT_OK(Bind(q.value().get()));
  EXPECT_OK(engine.EvaluateList(2, *q.value()).status());
  // And the tracked ids satisfy temporal identity: some object present in
  // a frame and still present later.
  auto q2 = ParseFormula("exists o (present(o) and eventually present(o))");
  ASSERT_OK(q2.status());
  ASSERT_OK(Bind(q2.value().get()));
  ASSERT_OK_AND_ASSIGN(SimilarityList list, engine.EvaluateList(3, *q2.value()));
  EXPECT_GT(list.CoveredIds(), 0);
}

TEST(AnalyzerPipelineTest, EmptyFramesRejected) {
  EXPECT_EQ(AnalyzeVideo({}).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace htl
