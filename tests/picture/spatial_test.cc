#include "picture/spatial.h"

#include <gtest/gtest.h>

#include "engine/direct_engine.h"
#include "htl/binder.h"
#include "htl/parser.h"
#include "testing/helpers.h"

namespace htl {
namespace {

using testing::L;
using testing::ListsEqual;

BoundingBox Box(double x, double y, double w, double h) { return {x, y, w, h}; }

TEST(BoundingBoxTest, Accessors) {
  BoundingBox b = Box(10, 20, 30, 40);
  EXPECT_EQ(b.right(), 40);
  EXPECT_EQ(b.bottom(), 60);
  EXPECT_EQ(b.area(), 1200);
  EXPECT_TRUE(b.Valid());
  EXPECT_FALSE(Box(0, 0, 0, 5).Valid());
  EXPECT_FALSE(Box(0, 0, 5, -1).Valid());
}

TEST(SpatialRelationTest, Directional) {
  BoundingBox a = Box(0, 0, 10, 10);
  BoundingBox b = Box(20, 0, 10, 10);
  EXPECT_TRUE(HoldsBetween(a, b, SpatialRelation::kLeftOf));
  EXPECT_TRUE(HoldsBetween(b, a, SpatialRelation::kRightOf));
  EXPECT_FALSE(HoldsBetween(b, a, SpatialRelation::kLeftOf));
  BoundingBox up = Box(0, 0, 10, 5);
  BoundingBox down = Box(0, 10, 10, 5);
  EXPECT_TRUE(HoldsBetween(up, down, SpatialRelation::kAbove));
  EXPECT_TRUE(HoldsBetween(down, up, SpatialRelation::kBelow));
}

TEST(SpatialRelationTest, TouchingIsNotStrictlyBeside) {
  BoundingBox a = Box(0, 0, 10, 10);
  BoundingBox b = Box(10, 0, 10, 10);  // Shares an edge.
  EXPECT_FALSE(HoldsBetween(a, b, SpatialRelation::kLeftOf));
  EXPECT_FALSE(HoldsBetween(a, b, SpatialRelation::kOverlaps));  // No interior overlap.
}

TEST(SpatialRelationTest, OverlapsIsSymmetricInteriorIntersection) {
  BoundingBox a = Box(0, 0, 10, 10);
  BoundingBox b = Box(5, 5, 10, 10);
  EXPECT_TRUE(HoldsBetween(a, b, SpatialRelation::kOverlaps));
  EXPECT_TRUE(HoldsBetween(b, a, SpatialRelation::kOverlaps));
  EXPECT_FALSE(HoldsBetween(a, Box(50, 50, 5, 5), SpatialRelation::kOverlaps));
}

TEST(SpatialRelationTest, InsideAndContains) {
  BoundingBox outer = Box(0, 0, 100, 100);
  BoundingBox inner = Box(10, 10, 20, 20);
  EXPECT_TRUE(HoldsBetween(inner, outer, SpatialRelation::kInside));
  EXPECT_TRUE(HoldsBetween(outer, inner, SpatialRelation::kContains));
  EXPECT_FALSE(HoldsBetween(outer, inner, SpatialRelation::kInside));
  // A box is not inside itself (proper containment).
  EXPECT_FALSE(HoldsBetween(outer, outer, SpatialRelation::kInside));
}

TEST(SpatialRelationTest, ComposeDirectionalTransitivity) {
  EXPECT_EQ(Compose(SpatialRelation::kLeftOf, SpatialRelation::kLeftOf),
            SpatialRelation::kLeftOf);
  EXPECT_EQ(Compose(SpatialRelation::kAbove, SpatialRelation::kAbove),
            SpatialRelation::kAbove);
  EXPECT_EQ(Compose(SpatialRelation::kInside, SpatialRelation::kInside),
            SpatialRelation::kInside);
  EXPECT_EQ(Compose(SpatialRelation::kInside, SpatialRelation::kLeftOf),
            SpatialRelation::kLeftOf);
  EXPECT_EQ(Compose(SpatialRelation::kLeftOf, SpatialRelation::kAbove), std::nullopt);
  EXPECT_EQ(Compose(SpatialRelation::kOverlaps, SpatialRelation::kOverlaps),
            std::nullopt);
}

TEST(SpatialRelationTest, ComposeIsSoundOnConcreteBoxes) {
  // Whenever Compose says a R c follows from a R1 b, b R2 c, it must hold.
  const BoundingBox boxes[] = {Box(0, 0, 5, 5), Box(10, 2, 5, 5), Box(20, 4, 5, 5),
                               Box(1, 1, 2, 2), Box(0, 20, 5, 5)};
  constexpr SpatialRelation kAll[] = {
      SpatialRelation::kLeftOf,   SpatialRelation::kRightOf, SpatialRelation::kAbove,
      SpatialRelation::kBelow,    SpatialRelation::kOverlaps, SpatialRelation::kInside,
      SpatialRelation::kContains,
  };
  for (const auto& a : boxes) {
    for (const auto& b : boxes) {
      for (const auto& c : boxes) {
        for (SpatialRelation r1 : kAll) {
          for (SpatialRelation r2 : kAll) {
            auto implied = Compose(r1, r2);
            if (!implied.has_value()) continue;
            if (HoldsBetween(a, b, r1) && HoldsBetween(b, c, r2)) {
              EXPECT_TRUE(HoldsBetween(a, c, *implied))
                  << a.ToString() << " " << SpatialRelationName(r1) << " "
                  << b.ToString() << " " << SpatialRelationName(r2) << " "
                  << c.ToString();
            }
          }
        }
      }
    }
  }
}

TEST(SpatialFactsTest, BoxAttributesRoundTrip) {
  ObjectAppearance obj;
  obj.id = 1;
  SetBox(&obj, Box(1, 2, 3, 4));
  auto box = BoxOf(obj);
  ASSERT_TRUE(box.has_value());
  EXPECT_EQ(*box, Box(1, 2, 3, 4));
}

TEST(SpatialFactsTest, BoxOfRejectsMissingOrInvalid) {
  ObjectAppearance obj;
  obj.id = 1;
  EXPECT_FALSE(BoxOf(obj).has_value());
  SetBox(&obj, Box(0, 0, 0, 5));  // Invalid width.
  EXPECT_FALSE(BoxOf(obj).has_value());
}

TEST(SpatialFactsTest, DeriveAddsPairwiseFacts) {
  SegmentMeta meta;
  ObjectAppearance a;
  a.id = 1;
  SetBox(&a, Box(0, 0, 10, 10));
  ObjectAppearance b;
  b.id = 2;
  SetBox(&b, Box(20, 0, 10, 10));
  meta.AddObject(a);
  meta.AddObject(b);
  const int added = DeriveSpatialFacts(&meta);
  EXPECT_EQ(added, 2);  // left_of(1,2) and right_of(2,1).
  EXPECT_TRUE(meta.HasFact({"left_of", {1, 2}}));
  EXPECT_TRUE(meta.HasFact({"right_of", {2, 1}}));
  // Idempotent.
  EXPECT_EQ(DeriveSpatialFacts(&meta), 0);
}

TEST(SpatialFactsTest, ObjectsWithoutBoxesIgnored) {
  SegmentMeta meta;
  meta.AddObject({1, {}});
  ObjectAppearance b;
  b.id = 2;
  SetBox(&b, Box(0, 0, 5, 5));
  meta.AddObject(b);
  EXPECT_EQ(DeriveSpatialFacts(&meta), 0);
}

TEST(SpatialFactsTest, SpatialPredicatesInHtlQueries) {
  // The paper's John-Wayne-shoots-a-bandit scene, spatially: the gunman on
  // the left, the bandit on the right, later the bandit on the floor
  // (below the gunman).
  VideoTree v = VideoTree::Flat(3);
  auto add = [&](SegmentId s, ObjectId id, BoundingBox box) {
    ObjectAppearance obj;
    obj.id = id;
    obj.attributes["type"] = AttrValue(id == 1 ? "gunman" : "bandit");
    SetBox(&obj, box);
    v.MutableMeta(2, s).AddObject(std::move(obj));
  };
  add(1, 1, Box(0, 0, 10, 30));
  add(1, 2, Box(50, 0, 10, 30));
  add(2, 1, Box(0, 0, 10, 30));
  add(2, 2, Box(30, 0, 10, 30));
  add(3, 1, Box(0, 0, 10, 30));
  add(3, 2, Box(5, 50, 30, 10));  // On the floor: below the gunman.
  for (SegmentId s = 1; s <= 3; ++s) DeriveSpatialFacts(&v.MutableMeta(2, s));

  DirectEngine engine(&v);
  auto q = ParseFormula(
      "exists g, b (type(g) = 'gunman' and type(b) = 'bandit' and "
      "left_of(g, b) and eventually below(b, g))");
  ASSERT_OK(q.status());
  ASSERT_OK(Bind(q.value().get()));
  ASSERT_OK_AND_ASSIGN(SimilarityList list, engine.EvaluateList(2, *q.value()));
  // All 4 constraints satisfiable from shots 1 and 2 (left_of holds there,
  // below(b, g) eventually at shot 3); at shot 3 left_of no longer holds.
  EXPECT_TRUE(ListsEqual(list, L({{1, 2, 4.0}, {3, 3, 3.0}}, 4.0)));
}

}  // namespace
}  // namespace htl
