#include "picture/picture_system.h"

#include <gtest/gtest.h>

#include "htl/binder.h"
#include "htl/parser.h"
#include "testing/helpers.h"
#include "workload/casablanca.h"

namespace htl {
namespace {

using testing::L;
using testing::ListsEqual;
using testing::ListsNear;

AtomicFormula Atomic(std::string_view text) {
  auto parsed = ParseFormula(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto atomic = ExtractAtomic(*parsed.value());
  EXPECT_TRUE(atomic.ok()) << atomic.status().ToString();
  return std::move(atomic).value();
}

// A small 6-segment video with airplanes and people.
VideoTree MakeTestVideo() {
  VideoTree v = VideoTree::Flat(6);
  auto seg = [&](SegmentId s) -> SegmentMeta& { return v.MutableMeta(2, s); };
  // Object 1: airplane with rising height in segments 1-3.
  for (SegmentId s = 1; s <= 3; ++s) {
    ObjectAppearance plane;
    plane.id = 1;
    plane.attributes["type"] = AttrValue("airplane");
    plane.attributes["height"] = AttrValue(int64_t{s * 10});
    seg(s).AddObject(std::move(plane));
  }
  // Object 2: person in segments 2-5, holds a gun in 4.
  for (SegmentId s = 2; s <= 5; ++s) {
    ObjectAppearance person;
    person.id = 2;
    person.attributes["type"] = AttrValue("person");
    seg(s).AddObject(std::move(person));
  }
  seg(4).AddFact({"holds_gun", {2}});
  // Segment attribute on all segments.
  for (SegmentId s = 1; s <= 6; ++s) {
    seg(s).SetAttribute("duration", AttrValue(int64_t{s}));
  }
  return v;
}

TEST(PictureSystemTest, ClosedTypeQuery) {
  VideoTree v = MakeTestVideo();
  PictureSystem ps(&v);
  ASSERT_OK_AND_ASSIGN(
      SimilarityList list,
      ps.QueryClosed(2, Atomic("exists a (type(a) = 'airplane' @ 2)")));
  EXPECT_TRUE(ListsEqual(list, L({{1, 3, 2.0}}, 2.0)));
}

TEST(PictureSystemTest, PartialMatchScoresSatisfiedSubset) {
  VideoTree v = MakeTestVideo();
  PictureSystem ps(&v);
  // Person present @1 + holds gun @2: segments 2,3,5 score 1; segment 4
  // scores 3.
  ASSERT_OK_AND_ASSIGN(
      SimilarityList list,
      ps.QueryClosed(2,
                     Atomic("exists p (type(p) = 'person' @ 1 and holds_gun(p) @ 2)")));
  EXPECT_TRUE(ListsEqual(list, L({{2, 3, 1.0}, {4, 4, 3.0}, {5, 5, 1.0}}, 3.0)));
}

TEST(PictureSystemTest, FreeVariableTableHasRowPerBinding) {
  VideoTree v = MakeTestVideo();
  PictureSystem ps(&v);
  ASSERT_OK_AND_ASSIGN(SimilarityTable t, ps.Query(2, Atomic("present(q) @ 1")));
  ASSERT_EQ(t.object_vars(), std::vector<std::string>{"q"});
  // Rows: q=1 -> [1,3], q=2 -> [2,5]. No wildcard row (a present(q)
  // constraint can never hold for an absent binding).
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.rows()[0].objects[0], 1);
  EXPECT_TRUE(ListsEqual(t.rows()[0].list, L({{1, 3, 1.0}}, 1.0)));
  EXPECT_EQ(t.rows()[1].objects[0], 2);
  EXPECT_TRUE(ListsEqual(t.rows()[1].list, L({{2, 5, 1.0}}, 1.0)));
}

TEST(PictureSystemTest, SegmentAttributeQueryScansAllSegments) {
  VideoTree v = MakeTestVideo();
  PictureSystem ps(&v);
  ASSERT_OK_AND_ASSIGN(SimilarityList list, ps.QueryClosed(2, Atomic("duration >= 5")));
  EXPECT_TRUE(ListsEqual(list, L({{5, 6, 1.0}}, 1.0)));
}

TEST(PictureSystemTest, MixedVarFreeAndVarConstraints) {
  VideoTree v = MakeTestVideo();
  PictureSystem ps(&v);
  // duration >= 3 (var-free) + person present: partial matches everywhere.
  ASSERT_OK_AND_ASSIGN(
      SimilarityList list,
      ps.QueryClosed(2, Atomic("exists p (duration >= 3 @ 1 and type(p) = 'person' @ 2)")));
  EXPECT_TRUE(ListsEqual(
      list, L({{2, 2, 2.0}, {3, 5, 3.0}, {6, 6, 1.0}}, 3.0)));
}

TEST(PictureSystemTest, AttrVarRangesProduceRows) {
  VideoTree v = MakeTestVideo();
  PictureSystem ps(&v);
  // height(a) > h: per segment, one row keyed by h-range (-inf, height@s).
  AtomicFormula atomic;
  {
    auto parsed = ParseFormula("exists a (type(a) = 'airplane' @ 1)");
    ASSERT_OK(parsed.status());
  }
  // Build by hand: type(a)='airplane' @1 and height(a) > h @2, a free.
  Constraint type_c;
  type_c.kind = Constraint::Kind::kCompare;
  type_c.lhs = AttrTerm::AttrOf("type", "a");
  type_c.op = CompareOp::kEq;
  type_c.rhs = AttrTerm::Literal(AttrValue("airplane"));
  type_c.weight = 1.0;
  Constraint h_c;
  h_c.kind = Constraint::Kind::kCompare;
  h_c.lhs = AttrTerm::AttrOf("height", "a");
  h_c.op = CompareOp::kGt;
  h_c.rhs = AttrTerm::Variable("h");
  h_c.weight = 2.0;
  atomic.constraints = {type_c, h_c};

  ASSERT_OK_AND_ASSIGN(SimilarityTable t, ps.Query(2, atomic));
  EXPECT_EQ(t.attr_vars(), std::vector<std::string>{"h"});
  // Three rows for a=1 with ranges (-inf,10), (-inf,20), (-inf,30).
  int rows_for_plane = 0;
  for (const auto& row : t.rows()) {
    if (row.objects[0] == 1) {
      ++rows_for_plane;
      EXPECT_EQ(row.list.max(), 3.0);
    }
  }
  EXPECT_EQ(rows_for_plane, 3);
}

TEST(PictureSystemTest, HardAttrVarConstraintGatesWholeAtomic) {
  VideoTree v = MakeTestVideo();
  PictureSystem ps(&v);
  // For segments where the airplane is absent, height(a) is null: the
  // attribute-variable constraint is unsatisfiable there, so even the type
  // constraint's weight is not awarded (hard-gating).
  Constraint h_c;
  h_c.kind = Constraint::Kind::kCompare;
  h_c.lhs = AttrTerm::AttrOf("height", "a");
  h_c.op = CompareOp::kGt;
  h_c.rhs = AttrTerm::Variable("h");
  Constraint dur_c;
  dur_c.kind = Constraint::Kind::kCompare;
  dur_c.lhs = AttrTerm::SegmentAttr("duration");
  dur_c.op = CompareOp::kGe;
  dur_c.rhs = AttrTerm::Literal(AttrValue(int64_t{1}));
  AtomicFormula atomic;
  atomic.constraints = {dur_c, h_c};
  ASSERT_OK_AND_ASSIGN(SimilarityTable t, ps.Query(2, atomic));
  for (const auto& row : t.rows()) {
    if (row.objects[0] == 1) {
      // Only segments 1-3 (where the plane exists) may appear.
      EXPECT_EQ(row.list.ActualAt(4), 0.0);
      EXPECT_EQ(row.list.ActualAt(5), 0.0);
      EXPECT_EQ(row.list.ActualAt(6), 0.0);
    }
  }
}

TEST(PictureSystemTest, BindingExplosionGuard) {
  VideoTree v = MakeTestVideo();
  PictureOptions opts;
  opts.max_bindings = 2;
  PictureSystem ps(&v, opts);
  auto r = ps.Query(2, Atomic("exists a, b (present(a) and present(b))"));
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PictureSystemTest, QueryClosedRejectsFreeVariables) {
  VideoTree v = MakeTestVideo();
  PictureSystem ps(&v);
  EXPECT_FALSE(ps.QueryClosed(2, Atomic("present(q)")).ok());
}

TEST(PictureSystemTest, LevelOutOfRange) {
  VideoTree v = MakeTestVideo();
  PictureSystem ps(&v);
  EXPECT_EQ(ps.Query(7, Atomic("present(q)")).status().code(), StatusCode::kOutOfRange);
}

TEST(PictureSystemTest, ValueTableForObjectAttribute) {
  VideoTree v = MakeTestVideo();
  PictureSystem ps(&v);
  ASSERT_OK_AND_ASSIGN(ValueTable vt, ps.Values(2, AttrTerm::AttrOf("height", "a")));
  EXPECT_EQ(vt.object_vars(), std::vector<std::string>{"a"});
  // Object 1 has three distinct heights, one row each.
  EXPECT_EQ(vt.num_rows(), 3);
  for (const auto& row : vt.rows()) {
    EXPECT_EQ(row.objects[0], 1);
    ASSERT_EQ(row.where.size(), 1u);
  }
}

TEST(PictureSystemTest, ValueTableForSegmentAttribute) {
  VideoTree v = MakeTestVideo();
  PictureSystem ps(&v);
  ASSERT_OK_AND_ASSIGN(ValueTable vt, ps.Values(2, AttrTerm::SegmentAttr("duration")));
  EXPECT_TRUE(vt.object_vars().empty());
  EXPECT_EQ(vt.num_rows(), 6);  // Six distinct duration values.
}

TEST(PictureSystemTest, ValueTableGroupsEqualRuns) {
  VideoTree v = VideoTree::Flat(4);
  for (SegmentId s = 1; s <= 4; ++s) {
    v.MutableMeta(2, s).SetAttribute("d", AttrValue(int64_t{s <= 2 ? 7 : 9}));
  }
  PictureSystem ps(&v);
  ASSERT_OK_AND_ASSIGN(ValueTable vt, ps.Values(2, AttrTerm::SegmentAttr("d")));
  ASSERT_EQ(vt.num_rows(), 2);
  EXPECT_EQ(vt.rows()[0].where[0], (Interval{1, 2}));
  EXPECT_EQ(vt.rows()[1].where[0], (Interval{3, 4}));
}

TEST(PictureSystemTest, ValuesRejectsLiteralTerm) {
  VideoTree v = MakeTestVideo();
  PictureSystem ps(&v);
  EXPECT_FALSE(ps.Values(2, AttrTerm::Literal(AttrValue(int64_t{5}))).ok());
}

// ---------------------------------------------------------------------------
// The Casablanca atomic queries reproduce the paper's Tables 1 and 2.

TEST(PictureSystemTest, CasablancaTable1MovingTrain) {
  VideoTree v = casablanca::MakeVideo();
  PictureSystem ps(&v);
  FormulaPtr atomic_f = casablanca::MovingTrainAtomic();
  ASSERT_OK_AND_ASSIGN(AtomicFormula atomic, ExtractAtomic(*atomic_f));
  ASSERT_OK_AND_ASSIGN(SimilarityList list, ps.QueryClosed(2, atomic));
  EXPECT_TRUE(ListsNear(list, casablanca::MovingTrainTable()));
}

TEST(PictureSystemTest, CasablancaTable2ManWoman) {
  VideoTree v = casablanca::MakeVideo();
  PictureSystem ps(&v);
  FormulaPtr atomic_f = casablanca::ManWomanAtomic();
  ASSERT_OK_AND_ASSIGN(AtomicFormula atomic, ExtractAtomic(*atomic_f));
  ASSERT_OK_AND_ASSIGN(SimilarityList list, ps.QueryClosed(2, atomic));
  EXPECT_TRUE(ListsNear(list, casablanca::ManWomanTable()));
}

// ---------------------------------------------------------------------------
// LevelIndex

TEST(LevelIndexTest, PostingsAndLookups) {
  VideoTree v = MakeTestVideo();
  LevelIndex index(v, 2);
  EXPECT_EQ(index.num_segments(), 6);
  EXPECT_EQ(index.all_objects(), (std::vector<ObjectId>{1, 2}));
  EXPECT_EQ(index.Posting(1), (std::vector<SegmentId>{1, 2, 3}));
  EXPECT_EQ(index.Posting(2), (std::vector<SegmentId>{2, 3, 4, 5}));
  EXPECT_TRUE(index.Posting(99).empty());
}

TEST(LevelIndexTest, AttrValueIndex) {
  VideoTree v = MakeTestVideo();
  LevelIndex index(v, 2);
  EXPECT_EQ(index.ObjectsWithAttrValue("type", AttrValue("airplane")),
            std::vector<ObjectId>{1});
  EXPECT_EQ(index.ObjectsWithAttrValue("type", AttrValue("person")),
            std::vector<ObjectId>{2});
  EXPECT_TRUE(index.ObjectsWithAttrValue("type", AttrValue("horse")).empty());
}

TEST(LevelIndexTest, FactPositionIndex) {
  VideoTree v = MakeTestVideo();
  LevelIndex index(v, 2);
  EXPECT_EQ(index.ObjectsInFactPosition("holds_gun", 0), std::vector<ObjectId>{2});
  EXPECT_TRUE(index.ObjectsInFactPosition("holds_gun", 1).empty());
  EXPECT_TRUE(index.ObjectsInFactPosition("nope", 0).empty());
}

TEST(LevelIndexTest, SegmentAttrIndex) {
  VideoTree v = MakeTestVideo();
  LevelIndex index(v, 2);
  EXPECT_EQ(index.SegmentsWithAttrValue("duration", AttrValue(int64_t{3})),
            std::vector<SegmentId>{3});
}

}  // namespace
}  // namespace htl
