#include "picture/atomic.h"

#include <gtest/gtest.h>

#include "htl/parser.h"
#include "testing/helpers.h"

namespace htl {
namespace {

FormulaPtr Parse(std::string_view text) {
  auto r = ParseFormula(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(AtomicTest, ExtractsConjunction) {
  FormulaPtr f = Parse("present(x) @ 2 and type(x) = 'a' and holds_gun(x)");
  ASSERT_OK_AND_ASSIGN(AtomicFormula a, ExtractAtomic(*f));
  EXPECT_EQ(a.constraints.size(), 3u);
  EXPECT_TRUE(a.exists_vars.empty());
  EXPECT_EQ(a.MaxWeight(), 4.0);
  EXPECT_EQ(a.FreeObjectVars(), std::vector<std::string>{"x"});
}

TEST(AtomicTest, ExtractsLocalExists) {
  FormulaPtr f = Parse("exists x, y (present(x) and fires_at(x, y))");
  ASSERT_OK_AND_ASSIGN(AtomicFormula a, ExtractAtomic(*f));
  EXPECT_EQ(a.exists_vars, (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(a.FreeObjectVars().empty());
  EXPECT_EQ(a.AllObjectVars(), (std::vector<std::string>{"x", "y"}));
}

TEST(AtomicTest, NestedExistsMerges) {
  FormulaPtr f = Parse("exists x (present(x) and exists y (fires_at(x, y)))");
  ASSERT_OK_AND_ASSIGN(AtomicFormula a, ExtractAtomic(*f));
  EXPECT_EQ(a.exists_vars, (std::vector<std::string>{"x", "y"}));
}

TEST(AtomicTest, FreeAttrVarsFromComparisons) {
  FormulaPtr f = MakeAnd(MakePresent("z"),
                         MakeCompare(AttrTerm::AttrOf("height", "z"), CompareOp::kGt,
                                     AttrTerm::Variable("h")));
  ASSERT_OK_AND_ASSIGN(AtomicFormula a, ExtractAtomic(*f));
  EXPECT_EQ(a.FreeAttrVars(), std::vector<std::string>{"h"});
}

TEST(AtomicTest, RejectsTemporal) {
  EXPECT_FALSE(ExtractAtomic(*Parse("eventually present(x)")).ok());
  EXPECT_FALSE(ExtractAtomic(*Parse("present(x) until present(y)")).ok());
  EXPECT_FALSE(ExtractAtomic(*Parse("next present(x)")).ok());
}

TEST(AtomicTest, RejectsOtherOperators) {
  EXPECT_FALSE(ExtractAtomic(*Parse("not present(x)")).ok());
  EXPECT_FALSE(ExtractAtomic(*Parse("present(x) or present(y)")).ok());
  EXPECT_FALSE(ExtractAtomic(*Parse("true")).ok());
  EXPECT_FALSE(ExtractAtomic(*Parse("[h <- height(z)] present(z)")).ok());
  EXPECT_FALSE(ExtractAtomic(*Parse("at-next-level(present(x))")).ok());
}

TEST(AtomicTest, IsAtomicShapeMatchesExtract) {
  EXPECT_TRUE(IsAtomicShape(*Parse("present(x)")));
  EXPECT_TRUE(IsAtomicShape(*Parse("exists x (present(x) and holds_gun(x))")));
  EXPECT_FALSE(IsAtomicShape(*Parse("eventually present(x)")));
  EXPECT_FALSE(IsAtomicShape(*Parse("present(x) and eventually present(x)")));
}

TEST(AtomicTest, ToStringReadable) {
  FormulaPtr f = Parse("exists x (present(x) and moving(x))");
  ASSERT_OK_AND_ASSIGN(AtomicFormula a, ExtractAtomic(*f));
  EXPECT_EQ(a.ToString(), "exists x (present(x) and moving(x))");
}

}  // namespace
}  // namespace htl
