#include "picture/constraint_eval.h"

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace htl {
namespace {

SegmentMeta MakeMeta() {
  SegmentMeta meta;
  meta.SetAttribute("type", AttrValue("western"));
  meta.SetAttribute("duration", AttrValue(int64_t{42}));
  ObjectAppearance plane;
  plane.id = 1;
  plane.attributes["type"] = AttrValue("airplane");
  plane.attributes["height"] = AttrValue(int64_t{10});
  meta.AddObject(std::move(plane));
  ObjectAppearance person;
  person.id = 2;
  person.attributes["type"] = AttrValue("person");
  person.attributes["name"] = AttrValue("JohnWayne");
  meta.AddObject(std::move(person));
  meta.AddFact({"holds_gun", {2}});
  meta.AddFact({"fires_at", {2, 1}});
  return meta;
}

EvalEnv Env() {
  EvalEnv env;
  env.objects["x"] = 1;
  env.objects["y"] = 2;
  return env;
}

TEST(EvalTermTest, Literal) {
  EXPECT_EQ(EvalTerm(AttrTerm::Literal(AttrValue(int64_t{5})), MakeMeta(), {}),
            AttrValue(int64_t{5}));
}

TEST(EvalTermTest, SegmentAttr) {
  EXPECT_EQ(EvalTerm(AttrTerm::SegmentAttr("type"), MakeMeta(), {}),
            AttrValue("western"));
  EXPECT_TRUE(EvalTerm(AttrTerm::SegmentAttr("missing"), MakeMeta(), {}).is_null());
}

TEST(EvalTermTest, AttrOfVar) {
  SegmentMeta meta = MakeMeta();
  EXPECT_EQ(EvalTerm(AttrTerm::AttrOf("height", "x"), meta, Env()),
            AttrValue(int64_t{10}));
  // Unbound variable and absent object give null.
  EXPECT_TRUE(EvalTerm(AttrTerm::AttrOf("height", "zz"), meta, Env()).is_null());
  EvalEnv env;
  env.objects["x"] = 99;  // Not in the segment.
  EXPECT_TRUE(EvalTerm(AttrTerm::AttrOf("height", "x"), meta, env).is_null());
}

TEST(EvalTermTest, AttrVariable) {
  EvalEnv env;
  env.attrs["h"] = AttrValue(int64_t{7});
  EXPECT_EQ(EvalTerm(AttrTerm::Variable("h"), MakeMeta(), env), AttrValue(int64_t{7}));
  EXPECT_TRUE(EvalTerm(AttrTerm::Variable("q"), MakeMeta(), env).is_null());
}

TEST(CompareTest, NullNeverSatisfies) {
  EXPECT_FALSE(Compare(AttrValue(), CompareOp::kEq, AttrValue()));
  EXPECT_FALSE(Compare(AttrValue(int64_t{1}), CompareOp::kNe, AttrValue()));
}

TEST(CompareTest, AllOps) {
  AttrValue a(int64_t{3}), b(int64_t{5});
  EXPECT_TRUE(Compare(a, CompareOp::kLt, b));
  EXPECT_TRUE(Compare(a, CompareOp::kLe, b));
  EXPECT_TRUE(Compare(a, CompareOp::kLe, a));
  EXPECT_TRUE(Compare(b, CompareOp::kGt, a));
  EXPECT_TRUE(Compare(b, CompareOp::kGe, b));
  EXPECT_TRUE(Compare(a, CompareOp::kEq, a));
  EXPECT_TRUE(Compare(a, CompareOp::kNe, b));
  EXPECT_FALSE(Compare(a, CompareOp::kGt, b));
}

TEST(ConstraintSatisfiedTest, Present) {
  Constraint c;
  c.kind = Constraint::Kind::kPresent;
  c.object_var = "x";
  EXPECT_TRUE(ConstraintSatisfied(c, MakeMeta(), Env()));
  EvalEnv env;
  env.objects["x"] = 99;
  EXPECT_FALSE(ConstraintSatisfied(c, MakeMeta(), env));
  EXPECT_FALSE(ConstraintSatisfied(c, MakeMeta(), {}));  // Unbound.
}

TEST(ConstraintSatisfiedTest, Predicate) {
  Constraint c;
  c.kind = Constraint::Kind::kPredicate;
  c.pred_name = "fires_at";
  c.pred_args = {"y", "x"};
  EXPECT_TRUE(ConstraintSatisfied(c, MakeMeta(), Env()));
  c.pred_args = {"x", "y"};  // Wrong order.
  EXPECT_FALSE(ConstraintSatisfied(c, MakeMeta(), Env()));
}

TEST(ConstraintSatisfiedTest, CompareAttrOfVar) {
  Constraint c;
  c.kind = Constraint::Kind::kCompare;
  c.lhs = AttrTerm::AttrOf("name", "y");
  c.op = CompareOp::kEq;
  c.rhs = AttrTerm::Literal(AttrValue("JohnWayne"));
  EXPECT_TRUE(ConstraintSatisfied(c, MakeMeta(), Env()));
}

TEST(ComparisonAttrVarTest, DetectsVariableSide) {
  Constraint c;
  c.kind = Constraint::Kind::kCompare;
  c.lhs = AttrTerm::Variable("h");
  c.op = CompareOp::kLt;
  c.rhs = AttrTerm::Literal(AttrValue(int64_t{5}));
  ASSERT_OK_AND_ASSIGN(std::string var, ComparisonAttrVar(c));
  EXPECT_EQ(var, "h");
  c.lhs = AttrTerm::Literal(AttrValue(int64_t{5}));
  c.rhs = AttrTerm::Variable("g");
  ASSERT_OK_AND_ASSIGN(var, ComparisonAttrVar(c));
  EXPECT_EQ(var, "g");
}

TEST(ComparisonAttrVarTest, RejectsTwoVariables) {
  Constraint c;
  c.kind = Constraint::Kind::kCompare;
  c.lhs = AttrTerm::Variable("a");
  c.rhs = AttrTerm::Variable("b");
  EXPECT_EQ(ComparisonAttrVar(c).status().code(), StatusCode::kUnimplemented);
}

TEST(CompareToRangeTest, VarOnLeft) {
  // h < height(x) where height(x) = 10  ->  h in (-inf, 10).
  Constraint c;
  c.kind = Constraint::Kind::kCompare;
  c.lhs = AttrTerm::Variable("h");
  c.op = CompareOp::kLt;
  c.rhs = AttrTerm::AttrOf("height", "x");
  ASSERT_OK_AND_ASSIGN(AttrVarRange r, CompareToRange(c, MakeMeta(), Env()));
  EXPECT_EQ(r.var, "h");
  EXPECT_TRUE(r.range.Contains(AttrValue(int64_t{9})));
  EXPECT_FALSE(r.range.Contains(AttrValue(int64_t{10})));
}

TEST(CompareToRangeTest, VarOnRightInvertsOp) {
  // height(x) > h with height(x)=10  ->  h < 10.
  Constraint c;
  c.kind = Constraint::Kind::kCompare;
  c.lhs = AttrTerm::AttrOf("height", "x");
  c.op = CompareOp::kGt;
  c.rhs = AttrTerm::Variable("h");
  ASSERT_OK_AND_ASSIGN(AttrVarRange r, CompareToRange(c, MakeMeta(), Env()));
  EXPECT_TRUE(r.range.Contains(AttrValue(int64_t{9})));
  EXPECT_FALSE(r.range.Contains(AttrValue(int64_t{10})));
}

TEST(CompareToRangeTest, EqualityMakesPoint) {
  Constraint c;
  c.kind = Constraint::Kind::kCompare;
  c.lhs = AttrTerm::Variable("h");
  c.op = CompareOp::kEq;
  c.rhs = AttrTerm::AttrOf("height", "x");
  ASSERT_OK_AND_ASSIGN(AttrVarRange r, CompareToRange(c, MakeMeta(), Env()));
  EXPECT_TRUE(r.range.Contains(AttrValue(int64_t{10})));
  EXPECT_FALSE(r.range.Contains(AttrValue(int64_t{11})));
}

TEST(CompareToRangeTest, NullValueMakesEmptyRange) {
  Constraint c;
  c.kind = Constraint::Kind::kCompare;
  c.lhs = AttrTerm::Variable("h");
  c.op = CompareOp::kLt;
  c.rhs = AttrTerm::AttrOf("missing_attr", "x");
  ASSERT_OK_AND_ASSIGN(AttrVarRange r, CompareToRange(c, MakeMeta(), Env()));
  EXPECT_TRUE(r.range.IsEmpty());
}

TEST(CompareToRangeTest, NotEqualUnsupported) {
  Constraint c;
  c.kind = Constraint::Kind::kCompare;
  c.lhs = AttrTerm::Variable("h");
  c.op = CompareOp::kNe;
  c.rhs = AttrTerm::Literal(AttrValue(int64_t{5}));
  EXPECT_EQ(CompareToRange(c, MakeMeta(), {}).status().code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace htl
