#include "sim/topk.h"

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace htl {
namespace {

using testing::L;

TEST(TopKTest, ReturnsHighestValuesFirst) {
  SimilarityList list = L({{1, 2, 1.0}, {5, 5, 9.0}, {8, 9, 4.0}}, 10.0);
  auto top = TopKSegments(list, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 5);
  EXPECT_EQ(top[0].sim.actual, 9.0);
  EXPECT_EQ(top[1].id, 8);
  EXPECT_EQ(top[2].id, 9);
}

TEST(TopKTest, ExpandsIntervalsById) {
  SimilarityList list = L({{10, 14, 3.0}}, 5.0);
  auto top = TopKSegments(list, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 10);
  EXPECT_EQ(top[1].id, 11);
  EXPECT_EQ(top[2].id, 12);
}

TEST(TopKTest, FewerThanKWhenListSmall) {
  SimilarityList list = L({{1, 1, 2.0}}, 5.0);
  EXPECT_EQ(TopKSegments(list, 10).size(), 1u);
}

TEST(TopKTest, ZeroOrNegativeKIsEmpty) {
  SimilarityList list = L({{1, 5, 2.0}}, 5.0);
  EXPECT_TRUE(TopKSegments(list, 0).empty());
  EXPECT_TRUE(TopKSegments(list, -3).empty());
}

TEST(TopKTest, TiesBreakByAscendingId) {
  SimilarityList list = L({{7, 7, 2.0}, {9, 9, 2.0}}, 5.0);
  auto top = TopKSegments(list, 2);
  EXPECT_EQ(top[0].id, 7);
  EXPECT_EQ(top[1].id, 9);
}

TEST(TopKTest, EmptyListYieldsNothing) {
  EXPECT_TRUE(TopKSegments(SimilarityList(5.0), 3).empty());
}

TEST(RankedEntriesTest, SortsByDescendingActual) {
  // The paper's Table 4 ordering: rows sorted by similarity, ties by id.
  SimilarityList list = L(
      {
          {1, 4, 12.382},
          {5, 5, 9.787},
          {6, 6, 11.047},
          {7, 7, 9.787},
          {8, 8, 11.047},
          {9, 9, 9.787},
          {10, 44, 1.26},
          {47, 49, 6.26},
      },
      16.047);
  auto ranked = RankedEntries(list);
  ASSERT_EQ(ranked.size(), 8u);
  EXPECT_EQ(ranked[0].entry.range, (Interval{1, 4}));
  EXPECT_EQ(ranked[1].entry.range, (Interval{6, 6}));
  EXPECT_EQ(ranked[2].entry.range, (Interval{8, 8}));
  EXPECT_EQ(ranked[3].entry.range, (Interval{5, 5}));
  EXPECT_EQ(ranked[4].entry.range, (Interval{7, 7}));
  EXPECT_EQ(ranked[5].entry.range, (Interval{9, 9}));
  EXPECT_EQ(ranked[6].entry.range, (Interval{47, 49}));
  EXPECT_EQ(ranked[7].entry.range, (Interval{10, 44}));
}

TEST(RankedEntriesTest, EmptyList) {
  EXPECT_TRUE(RankedEntries(SimilarityList(1.0)).empty());
}

}  // namespace
}  // namespace htl
