#include "sim/value_range.h"

#include <gtest/gtest.h>

namespace htl {
namespace {

TEST(ValueRangeTest, AllContainsEverything) {
  ValueRange all = ValueRange::All();
  EXPECT_FALSE(all.IsEmpty());
  EXPECT_TRUE(all.Contains(AttrValue(int64_t{5})));
  EXPECT_TRUE(all.Contains(AttrValue(-3.5)));
  EXPECT_TRUE(all.Contains(AttrValue("abc")));
  EXPECT_TRUE(all.Contains(AttrValue()));  // Even null: no bounds.
}

TEST(ValueRangeTest, EmptyContainsNothing) {
  ValueRange empty = ValueRange::Empty();
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_FALSE(empty.Contains(AttrValue(int64_t{0})));
  EXPECT_FALSE(empty.Contains(AttrValue(int64_t{1})));
}

TEST(ValueRangeTest, ExactlyMatchesOnlyThatValue) {
  ValueRange r = ValueRange::Exactly(AttrValue(int64_t{7}));
  EXPECT_TRUE(r.Contains(AttrValue(int64_t{7})));
  EXPECT_TRUE(r.Contains(AttrValue(7.0)));  // Numeric equality across kinds.
  EXPECT_FALSE(r.Contains(AttrValue(int64_t{8})));
  EXPECT_FALSE(r.Contains(AttrValue()));
  EXPECT_FALSE(r.IsEmpty());
}

TEST(ValueRangeTest, ExactlyStringValue) {
  ValueRange r = ValueRange::Exactly(AttrValue("western"));
  EXPECT_TRUE(r.Contains(AttrValue("western")));
  EXPECT_FALSE(r.Contains(AttrValue("eastern")));
  EXPECT_FALSE(r.Contains(AttrValue(int64_t{1})));
}

TEST(ValueRangeTest, LessThanIsOpen) {
  ValueRange r = ValueRange::LessThan(AttrValue(int64_t{5}));
  EXPECT_TRUE(r.Contains(AttrValue(int64_t{4})));
  EXPECT_FALSE(r.Contains(AttrValue(int64_t{5})));
}

TEST(ValueRangeTest, AtMostIsClosed) {
  ValueRange r = ValueRange::AtMost(AttrValue(int64_t{5}));
  EXPECT_TRUE(r.Contains(AttrValue(int64_t{5})));
  EXPECT_FALSE(r.Contains(AttrValue(int64_t{6})));
}

TEST(ValueRangeTest, GreaterThanIsOpen) {
  ValueRange r = ValueRange::GreaterThan(AttrValue(int64_t{5}));
  EXPECT_FALSE(r.Contains(AttrValue(int64_t{5})));
  EXPECT_TRUE(r.Contains(AttrValue(int64_t{6})));
}

TEST(ValueRangeTest, AtLeastIsClosed) {
  ValueRange r = ValueRange::AtLeast(AttrValue(int64_t{5}));
  EXPECT_TRUE(r.Contains(AttrValue(int64_t{5})));
  EXPECT_FALSE(r.Contains(AttrValue(int64_t{4})));
}

TEST(ValueRangeTest, IntersectBounds) {
  ValueRange r = ValueRange::AtLeast(AttrValue(int64_t{3}))
                     .Intersect(ValueRange::LessThan(AttrValue(int64_t{7})));
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_FALSE(r.Contains(AttrValue(int64_t{2})));
  EXPECT_TRUE(r.Contains(AttrValue(int64_t{3})));
  EXPECT_TRUE(r.Contains(AttrValue(int64_t{6})));
  EXPECT_FALSE(r.Contains(AttrValue(int64_t{7})));
}

TEST(ValueRangeTest, IntersectTightensToStricterBound) {
  // [5, inf) ∩ (5, inf) = (5, inf).
  ValueRange r = ValueRange::AtLeast(AttrValue(int64_t{5}))
                     .Intersect(ValueRange::GreaterThan(AttrValue(int64_t{5})));
  EXPECT_FALSE(r.Contains(AttrValue(int64_t{5})));
  EXPECT_TRUE(r.Contains(AttrValue(int64_t{6})));
}

TEST(ValueRangeTest, DisjointIntersectionIsEmpty) {
  ValueRange r = ValueRange::AtMost(AttrValue(int64_t{3}))
                     .Intersect(ValueRange::AtLeast(AttrValue(int64_t{5})));
  EXPECT_TRUE(r.IsEmpty());
}

TEST(ValueRangeTest, TouchingOpenBoundsAreEmpty) {
  // (5, inf) ∩ (-inf, 5) and [5,5] with one open side.
  ValueRange r = ValueRange::GreaterThan(AttrValue(int64_t{5}))
                     .Intersect(ValueRange::LessThan(AttrValue(int64_t{5})));
  EXPECT_TRUE(r.IsEmpty());
  ValueRange half = ValueRange::GreaterThan(AttrValue(int64_t{5}))
                        .Intersect(ValueRange::AtMost(AttrValue(int64_t{5})));
  EXPECT_TRUE(half.IsEmpty());
}

TEST(ValueRangeTest, TouchingClosedBoundsArePoint) {
  ValueRange r = ValueRange::AtLeast(AttrValue(int64_t{5}))
                     .Intersect(ValueRange::AtMost(AttrValue(int64_t{5})));
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE(r.Contains(AttrValue(int64_t{5})));
}

TEST(ValueRangeTest, EqualityAndToString) {
  EXPECT_EQ(ValueRange::Exactly(AttrValue(int64_t{3})),
            ValueRange::Exactly(AttrValue(int64_t{3})));
  EXPECT_FALSE(ValueRange::Exactly(AttrValue(int64_t{3})) ==
               ValueRange::AtLeast(AttrValue(int64_t{3})));
  EXPECT_EQ(ValueRange::All().ToString(), "(-inf,+inf)");
  EXPECT_EQ(ValueRange::Exactly(AttrValue(int64_t{3})).ToString(), "[3,3]");
  EXPECT_EQ(ValueRange::LessThan(AttrValue(int64_t{2})).ToString(), "(-inf,2)");
}

TEST(ValueRangeTest, DoubleBounds) {
  ValueRange r = ValueRange::GreaterThan(AttrValue(2.5));
  EXPECT_TRUE(r.Contains(AttrValue(int64_t{3})));
  EXPECT_FALSE(r.Contains(AttrValue(2.5)));
}

TEST(ValueRangeTest, StringOrderingBounds) {
  ValueRange r = ValueRange::AtLeast(AttrValue("m"));
  EXPECT_TRUE(r.Contains(AttrValue("zebra")));
  EXPECT_FALSE(r.Contains(AttrValue("apple")));
  // Numeric values never satisfy string bounds.
  EXPECT_FALSE(r.Contains(AttrValue(int64_t{5})));
}

}  // namespace
}  // namespace htl
