#include "sim/list_ops.h"

#include <gtest/gtest.h>

#include "sim/table_ops.h"
#include "testing/helpers.h"

namespace htl {
namespace {

using testing::L;
using testing::ListsEqual;

// ---------------------------------------------------------------------------
// AndMerge (section 3.1, f = g AND h)

TEST(AndMergeTest, DisjointListsKeepBothSides) {
  SimilarityList out = AndMerge(L({{1, 3, 2.0}}, 5.0), L({{5, 6, 1.0}}, 4.0));
  EXPECT_TRUE(ListsEqual(out, L({{1, 3, 2.0}, {5, 6, 1.0}}, 9.0)));
}

TEST(AndMergeTest, OverlapSums) {
  SimilarityList out = AndMerge(L({{1, 10, 2.0}}, 5.0), L({{5, 15, 3.0}}, 5.0));
  EXPECT_TRUE(
      ListsEqual(out, L({{1, 4, 2.0}, {5, 10, 5.0}, {11, 15, 3.0}}, 10.0)));
}

TEST(AndMergeTest, MaxIsSumOfMaxes) {
  EXPECT_EQ(AndMerge(SimilarityList(3.0), SimilarityList(4.0)).max(), 7.0);
}

TEST(AndMergeTest, EmptyRightKeepsLeftValues) {
  SimilarityList out = AndMerge(L({{2, 4, 1.5}}, 3.0), SimilarityList(4.0));
  EXPECT_TRUE(ListsEqual(out, L({{2, 4, 1.5}}, 7.0)));
}

TEST(AndMergeTest, IdenticalIntervalsMergeIntoOne) {
  SimilarityList out = AndMerge(L({{1, 5, 1.0}}, 2.0), L({{1, 5, 2.0}}, 3.0));
  EXPECT_TRUE(ListsEqual(out, L({{1, 5, 3.0}}, 5.0)));
}

TEST(AndMergeTest, PaperExampleQuery1) {
  // Table 4 = Table 2 AND Table 3 (the Casablanca final merge shape).
  SimilarityList man_woman =
      L({{1, 4, 2.595}, {6, 6, 1.26}, {8, 8, 1.26}, {10, 44, 1.26}, {47, 49, 6.26}},
        6.26);
  SimilarityList ev_train = L({{1, 9, 9.787}}, 9.787);
  SimilarityList out = AndMerge(man_woman, ev_train);
  EXPECT_TRUE(ListsEqual(out, L(
                                  {
                                      {1, 4, 2.595 + 9.787},
                                      {5, 5, 9.787},
                                      {6, 6, 1.26 + 9.787},
                                      {7, 7, 9.787},
                                      {8, 8, 1.26 + 9.787},
                                      {9, 9, 9.787},
                                      {10, 44, 1.26},
                                      {47, 49, 6.26},
                                  },
                                  6.26 + 9.787)));
}

TEST(AndMergeTest, AdjacentFragmentsWithEqualSumsCanonicalize) {
  // [1,2]:1 + [3,4]:2 vs [1,2]:2 + [3,4]:1 -> constant 3 across [1,4].
  SimilarityList a = L({{1, 2, 1.0}, {3, 4, 2.0}}, 2.0);
  SimilarityList b = L({{1, 2, 2.0}, {3, 4, 1.0}}, 2.0);
  EXPECT_TRUE(ListsEqual(AndMerge(a, b), L({{1, 4, 3.0}}, 4.0)));
}

// ---------------------------------------------------------------------------
// OrMerge

TEST(OrMergeTest, TakesPointwiseMax) {
  SimilarityList out = OrMerge(L({{1, 10, 2.0}}, 5.0), L({{5, 15, 3.0}}, 5.0));
  EXPECT_TRUE(ListsEqual(out, L({{1, 4, 2.0}, {5, 15, 3.0}}, 5.0)));
}

TEST(OrMergeTest, MaxIsMaxOfMaxes) {
  EXPECT_EQ(OrMerge(SimilarityList(3.0), SimilarityList(4.0)).max(), 4.0);
}

TEST(OrMergeTest, EmptySideIsIdentity) {
  SimilarityList a = L({{1, 3, 2.0}}, 5.0);
  EXPECT_TRUE(ListsEqual(OrMerge(a, SimilarityList(5.0)), a));
  EXPECT_TRUE(ListsEqual(OrMerge(SimilarityList(5.0), a), a));
}

// ---------------------------------------------------------------------------
// NextShift (section 3.1, f = next g)

TEST(NextShiftTest, ShiftsIntervalsDownByOne) {
  EXPECT_TRUE(ListsEqual(NextShift(L({{5, 9, 2.0}}, 3.0)), L({{4, 8, 2.0}}, 3.0)));
}

TEST(NextShiftTest, DropsIdZero) {
  EXPECT_TRUE(ListsEqual(NextShift(L({{1, 3, 2.0}}, 3.0)), L({{1, 2, 2.0}}, 3.0)));
}

TEST(NextShiftTest, SingleIdOneVanishes) {
  EXPECT_TRUE(NextShift(L({{1, 1, 2.0}}, 3.0)).empty());
}

TEST(NextShiftTest, PreservesMax) {
  EXPECT_EQ(NextShift(L({{3, 4, 1.0}}, 7.0)).max(), 7.0);
}

TEST(NextShiftTest, DoubleShiftComposes) {
  SimilarityList once = NextShift(L({{10, 12, 1.0}}, 2.0));
  EXPECT_TRUE(ListsEqual(NextShift(once), L({{8, 10, 1.0}}, 2.0)));
}

// ---------------------------------------------------------------------------
// ThresholdSupport

TEST(ThresholdSupportTest, FiltersBelowThresholdAndCoalesces) {
  SimilarityList g = L({{1, 3, 2.0}, {4, 6, 10.0}, {7, 9, 9.0}, {20, 21, 1.0}}, 10.0);
  std::vector<Interval> support = ThresholdSupport(g, 0.5);
  ASSERT_EQ(support.size(), 1u);
  EXPECT_EQ(support[0], (Interval{4, 9}));
}

TEST(ThresholdSupportTest, ZeroThresholdKeepsAllEntries) {
  SimilarityList g = L({{1, 3, 0.1}, {5, 6, 0.2}}, 10.0);
  std::vector<Interval> support = ThresholdSupport(g, 0.0);
  ASSERT_EQ(support.size(), 2u);
}

TEST(ThresholdSupportTest, ExactThresholdIsKept) {
  SimilarityList g = L({{1, 3, 5.0}}, 10.0);
  EXPECT_EQ(ThresholdSupport(g, 0.5).size(), 1u);
  EXPECT_EQ(ThresholdSupport(g, 0.5001).size(), 0u);
}

// ---------------------------------------------------------------------------
// UntilMerge — including the paper's worked example (figure 2).

TEST(UntilMergeTest, PaperFigure2Example) {
  // L1 (g): [25,100], [200,250] after thresholding (values irrelevant).
  SimilarityList g = L({{25, 100, 20.0}, {200, 250, 20.0}}, 20.0);
  // L2 (h): ([10 50],10) ([55 60],15) ([90 110],12) ([125 175],10), max 20.
  SimilarityList h =
      L({{10, 50, 10.0}, {55, 60, 15.0}, {90, 110, 12.0}, {125, 175, 10.0}}, 20.0);
  SimilarityList out = UntilMerge(g, h, 0.5);
  // Paper output: ([10 24],10) ([25 60],15) ([61 110],12) ([125 175],10).
  EXPECT_TRUE(ListsEqual(
      out, L({{10, 24, 10.0}, {25, 60, 15.0}, {61, 110, 12.0}, {125, 175, 10.0}}, 20.0)));
}

TEST(UntilMergeTest, HAloneSatisfiesWithoutG) {
  SimilarityList out = UntilMerge(SimilarityList(10.0), L({{5, 7, 3.0}}, 4.0), 0.5);
  EXPECT_TRUE(ListsEqual(out, L({{5, 7, 3.0}}, 4.0)));
}

TEST(UntilMergeTest, EmptyHYieldsEmpty) {
  SimilarityList out = UntilMerge(L({{1, 100, 10.0}}, 10.0), SimilarityList(4.0), 0.5);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(out.max(), 4.0);
}

TEST(UntilMergeTest, GBelowThresholdDoesNotExtend) {
  SimilarityList g = L({{1, 10, 2.0}}, 10.0);  // fraction 0.2 < 0.5
  SimilarityList h = L({{10, 10, 5.0}}, 5.0);
  SimilarityList out = UntilMerge(g, h, 0.5);
  EXPECT_TRUE(ListsEqual(out, L({{10, 10, 5.0}}, 5.0)));
}

TEST(UntilMergeTest, GExtendsBackwardsThroughRun) {
  SimilarityList g = L({{1, 9, 8.0}}, 10.0);
  SimilarityList h = L({{10, 10, 5.0}}, 5.0);
  // g holds on [1,9]; h at 10, reachable from any start in [1,10].
  SimilarityList out = UntilMerge(g, h, 0.5);
  EXPECT_TRUE(ListsEqual(out, L({{1, 10, 5.0}}, 5.0)));
}

TEST(UntilMergeTest, GapInGBreaksReach) {
  SimilarityList g = L({{1, 3, 8.0}, {5, 9, 8.0}}, 10.0);
  SimilarityList h = L({{10, 10, 5.0}}, 5.0);
  SimilarityList out = UntilMerge(g, h, 0.5);
  // Segment 4 has no g, so ids 1-3 cannot reach h at 10; ids 5-10 can.
  EXPECT_TRUE(ListsEqual(out, L({{5, 10, 5.0}}, 5.0)));
}

TEST(UntilMergeTest, AdjacentGEntriesActAsOneRun) {
  // Two g entries with different values but adjacent intervals coalesce.
  SimilarityList g = L({{1, 3, 8.0}, {4, 9, 9.0}}, 10.0);
  SimilarityList h = L({{10, 10, 5.0}}, 5.0);
  SimilarityList out = UntilMerge(g, h, 0.5);
  EXPECT_TRUE(ListsEqual(out, L({{1, 10, 5.0}}, 5.0)));
}

TEST(UntilMergeTest, TakesMaxOverReachableH) {
  SimilarityList g = L({{1, 20, 10.0}}, 10.0);
  SimilarityList h = L({{5, 5, 2.0}, {10, 10, 7.0}, {15, 15, 4.0}}, 10.0);
  SimilarityList out = UntilMerge(g, h, 0.5);
  // From ids <= 10 the best reachable h is 7; from 11..15 it's 4.
  EXPECT_TRUE(ListsEqual(out, L({{1, 10, 7.0}, {11, 15, 4.0}}, 10.0)));
}

TEST(UntilMergeTest, HInsideGRunTakesSuffixMax) {
  SimilarityList g = L({{1, 10, 10.0}}, 10.0);
  SimilarityList h = L({{3, 4, 6.0}, {8, 8, 2.0}}, 10.0);
  SimilarityList out = UntilMerge(g, h, 0.5);
  EXPECT_TRUE(ListsEqual(out, L({{1, 4, 6.0}, {5, 8, 2.0}}, 10.0)));
}

TEST(UntilMergeTest, OutputMaxIsHMax) {
  EXPECT_EQ(UntilMerge(L({{1, 2, 1.0}}, 1.0), L({{1, 2, 1.0}}, 7.0), 0.5).max(), 7.0);
}

TEST(UntilMergeTest, HJustAfterRunEndIsReachable) {
  // u'' may be the segment immediately after the g-run (g holds on
  // [u, u''-1] only).
  SimilarityList g = L({{1, 5, 10.0}}, 10.0);
  SimilarityList h = L({{6, 6, 3.0}}, 5.0);
  SimilarityList out = UntilMerge(g, h, 0.5);
  EXPECT_TRUE(ListsEqual(out, L({{1, 6, 3.0}}, 5.0)));
}

// ---------------------------------------------------------------------------
// Eventually

TEST(EventuallyTest, SuffixMax) {
  SimilarityList h = L({{5, 6, 2.0}, {10, 10, 7.0}, {20, 22, 4.0}}, 10.0);
  SimilarityList out = Eventually(h);
  EXPECT_TRUE(ListsEqual(out, L({{1, 10, 7.0}, {11, 22, 4.0}}, 10.0)));
}

TEST(EventuallyTest, PaperTable3) {
  // eventually Moving-Train with Moving-Train = {[9,9]: 9.787}.
  SimilarityList out = Eventually(L({{9, 9, 9.787}}, 9.787));
  EXPECT_TRUE(ListsEqual(out, L({{1, 9, 9.787}}, 9.787)));
}

TEST(EventuallyTest, EmptyStaysEmpty) {
  EXPECT_TRUE(Eventually(SimilarityList(3.0)).empty());
}

TEST(EventuallyTest, CrossesGaps) {
  SimilarityList out = Eventually(L({{100, 100, 1.0}}, 1.0));
  EXPECT_TRUE(ListsEqual(out, L({{1, 100, 1.0}}, 1.0)));
}

TEST(EventuallyTest, IsIdempotent) {
  SimilarityList h = L({{5, 6, 2.0}, {10, 10, 7.0}}, 10.0);
  SimilarityList once = Eventually(h);
  EXPECT_TRUE(ListsEqual(Eventually(once), once));
}

// ---------------------------------------------------------------------------
// MultiMax

TEST(MultiMaxTest, EmptyInputIsEmptyList) {
  SimilarityList out = MultiMax({});
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(out.max(), 0.0);
}

TEST(MultiMaxTest, SingleListPassesThrough) {
  SimilarityList a = L({{1, 2, 1.0}}, 2.0);
  EXPECT_TRUE(ListsEqual(MultiMax({a}), a));
}

TEST(MultiMaxTest, ThreeListsTakePointwiseMax) {
  SimilarityList out = MultiMax({
      L({{1, 10, 1.0}}, 5.0),
      L({{3, 6, 4.0}}, 5.0),
      L({{5, 12, 2.0}}, 5.0),
  });
  EXPECT_TRUE(
      ListsEqual(out, L({{1, 2, 1.0}, {3, 6, 4.0}, {7, 12, 2.0}}, 5.0)));
}

TEST(MultiMaxTest, ManyListsStressAgainstPairwise) {
  std::vector<SimilarityList> lists;
  for (int i = 0; i < 17; ++i) {
    lists.push_back(L({{i + 1, i + 10, static_cast<double>(i + 1)}}, 20.0));
  }
  SimilarityList tournament = MultiMax(lists);
  SimilarityList sequential(20.0);
  for (const auto& l : lists) sequential = OrMerge(sequential, l);
  EXPECT_TRUE(ListsEqual(tournament, sequential));
}

// ---------------------------------------------------------------------------
// ClipToIntervals (table_ops helper used by the freeze join)

TEST(ClipToIntervalsTest, KeepsOnlyCoveredParts) {
  SimilarityList a = L({{1, 10, 2.0}, {20, 30, 3.0}}, 5.0);
  SimilarityList out = ClipToIntervals(a, {{Interval{5, 8}}, {Interval{25, 40}}});
  EXPECT_TRUE(ListsEqual(out, L({{5, 8, 2.0}, {25, 30, 3.0}}, 5.0)));
}


// ---------------------------------------------------------------------------
// Complement (closed-negation extension)

TEST(ComplementTest, InvertsOverBounds) {
  SimilarityList g = L({{3, 5, 2.0}}, 5.0);
  SimilarityList out = Complement(g, Interval{1, 8});
  EXPECT_TRUE(ListsEqual(out, L({{1, 2, 5.0}, {3, 5, 3.0}, {6, 8, 5.0}}, 5.0)));
}

TEST(ComplementTest, FullValueEntriesVanish) {
  SimilarityList g = L({{2, 4, 5.0}}, 5.0);
  SimilarityList out = Complement(g, Interval{1, 6});
  EXPECT_TRUE(ListsEqual(out, L({{1, 1, 5.0}, {5, 6, 5.0}}, 5.0)));
}

TEST(ComplementTest, EmptyInputBecomesSaturated) {
  SimilarityList out = Complement(SimilarityList(3.0), Interval{2, 4});
  EXPECT_TRUE(ListsEqual(out, L({{2, 4, 3.0}}, 3.0)));
}

TEST(ComplementTest, EmptyBoundsYieldEmpty) {
  SimilarityList g = L({{1, 3, 1.0}}, 2.0);
  EXPECT_TRUE(Complement(g, Interval{5, 4}).empty());
}

TEST(ComplementTest, IsAnInvolution) {
  SimilarityList g = L({{2, 4, 1.0}, {7, 9, 3.0}}, 4.0);
  const Interval bounds{1, 12};
  EXPECT_TRUE(ListsEqual(Complement(Complement(g, bounds), bounds),
                         OrMerge(g, SimilarityList(4.0)).Clip(bounds)));
}

TEST(ComplementTest, EntriesOutsideBoundsClipped) {
  SimilarityList g = L({{1, 10, 1.0}}, 2.0);
  SimilarityList out = Complement(g, Interval{4, 6});
  EXPECT_TRUE(ListsEqual(out, L({{4, 6, 1.0}}, 2.0)));
}

}  // namespace
}  // namespace htl
