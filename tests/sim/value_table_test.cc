#include "sim/value_table.h"

#include <gtest/gtest.h>

#include "sim/similarity.h"
#include "testing/helpers.h"

namespace htl {
namespace {

TEST(ValueTableTest, SchemaAndRows) {
  ValueTable vt({"x"});
  EXPECT_EQ(vt.object_vars(), std::vector<std::string>{"x"});
  EXPECT_EQ(vt.num_rows(), 0);
  vt.AddRow({{7}, AttrValue(int64_t{3}), {Interval{1, 4}}});
  vt.AddRow({{7}, AttrValue(int64_t{5}), {Interval{5, 9}, Interval{12, 12}}});
  EXPECT_EQ(vt.num_rows(), 2);
  EXPECT_EQ(vt.rows()[1].where.size(), 2u);
}

TEST(ValueTableTest, EmptyWhereRowsDropped) {
  ValueTable vt({"x"});
  vt.AddRow({{7}, AttrValue(int64_t{3}), {}});
  EXPECT_EQ(vt.num_rows(), 0);
}

TEST(ValueTableTest, ToStringIsReadable) {
  ValueTable vt({"x"});
  vt.AddRow({{7}, AttrValue(int64_t{3}), {Interval{1, 4}}});
  const std::string text = vt.ToString();
  EXPECT_NE(text.find("values objects=(x)"), std::string::npos);
  EXPECT_NE(text.find("(7) = 3 @ [1,4]"), std::string::npos);
}

TEST(ValueTableTest, NoVariableTable) {
  ValueTable vt{std::vector<std::string>{}};
  vt.AddRow({{}, AttrValue("western"), {Interval{1, 50}}});
  EXPECT_EQ(vt.num_rows(), 1);
  EXPECT_EQ(vt.rows()[0].value, AttrValue("western"));
}

TEST(SimTest, ToStringShowsPair) {
  EXPECT_EQ((Sim{2.5, 10.0}).ToString(), "(2.5/10)");
  EXPECT_EQ((Sim{}).ToString(), "(0/0)");
}

TEST(SimTest, FractionHandlesZeroMax) {
  EXPECT_EQ((Sim{0.0, 0.0}).fraction(), 0.0);
  EXPECT_DOUBLE_EQ((Sim{1.0, 4.0}).fraction(), 0.25);
}

TEST(SimTest, Equality) {
  EXPECT_EQ((Sim{1, 2}), (Sim{1, 2}));
  EXPECT_FALSE((Sim{1, 2}) == (Sim{1, 3}));
}

}  // namespace
}  // namespace htl
