#include "sim/sim_list.h"

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace htl {
namespace {

using testing::L;
using testing::ListsEqual;

TEST(SimilarityListTest, EmptyListHasNoEntries) {
  SimilarityList list(5.0);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.length(), 0);
  EXPECT_EQ(list.max(), 5.0);
  EXPECT_EQ(list.ActualAt(1), 0.0);
  EXPECT_EQ(list.CoveredIds(), 0);
}

TEST(SimilarityListTest, FromEntriesKeepsSortedDisjointEntries) {
  SimilarityList list = L({{1, 4, 2.0}, {6, 8, 3.0}}, 5.0);
  ASSERT_EQ(list.length(), 2);
  EXPECT_EQ(list.entries()[0].range, (Interval{1, 4}));
  EXPECT_EQ(list.entries()[1].range, (Interval{6, 8}));
  EXPECT_EQ(list.CoveredIds(), 7);
}

TEST(SimilarityListTest, FromEntriesDropsZeroEntries) {
  ASSERT_OK_AND_ASSIGN(
      SimilarityList list,
      SimilarityList::FromEntries({{Interval{1, 2}, 0.0}, {Interval{4, 5}, 1.0}}, 5.0));
  EXPECT_EQ(list.length(), 1);
  EXPECT_EQ(list.entries()[0].range, (Interval{4, 5}));
}

TEST(SimilarityListTest, FromEntriesMergesAdjacentEqualRuns) {
  ASSERT_OK_AND_ASSIGN(
      SimilarityList list,
      SimilarityList::FromEntries({{Interval{1, 3}, 2.0}, {Interval{4, 6}, 2.0}}, 5.0));
  EXPECT_TRUE(ListsEqual(list, L({{1, 6, 2.0}}, 5.0)));
}

TEST(SimilarityListTest, FromEntriesDoesNotMergeDifferentValues) {
  SimilarityList list = L({{1, 3, 2.0}, {4, 6, 3.0}}, 5.0);
  EXPECT_EQ(list.length(), 2);
}

TEST(SimilarityListTest, FromEntriesRejectsOverlap) {
  auto r = SimilarityList::FromEntries({{Interval{1, 5}, 1.0}, {Interval{5, 9}, 1.0}}, 5.0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SimilarityListTest, FromEntriesRejectsUnsorted) {
  auto r = SimilarityList::FromEntries({{Interval{6, 9}, 1.0}, {Interval{1, 2}, 1.0}}, 5.0);
  EXPECT_FALSE(r.ok());
}

TEST(SimilarityListTest, FromEntriesRejectsEmptyInterval) {
  auto r = SimilarityList::FromEntries({{Interval{5, 4}, 1.0}}, 5.0);
  EXPECT_FALSE(r.ok());
}

TEST(SimilarityListTest, FromEntriesRejectsActualAboveMax) {
  auto r = SimilarityList::FromEntries({{Interval{1, 2}, 6.0}}, 5.0);
  EXPECT_FALSE(r.ok());
}

TEST(SimilarityListTest, FromEntriesRejectsNegativeMax) {
  auto r = SimilarityList::FromEntries({}, -1.0);
  EXPECT_FALSE(r.ok());
}

TEST(SimilarityListTest, ActualAtReturnsValueInsideIntervals) {
  SimilarityList list = L({{2, 4, 1.5}, {7, 7, 3.0}}, 5.0);
  EXPECT_EQ(list.ActualAt(1), 0.0);
  EXPECT_EQ(list.ActualAt(2), 1.5);
  EXPECT_EQ(list.ActualAt(3), 1.5);
  EXPECT_EQ(list.ActualAt(4), 1.5);
  EXPECT_EQ(list.ActualAt(5), 0.0);
  EXPECT_EQ(list.ActualAt(7), 3.0);
  EXPECT_EQ(list.ActualAt(100), 0.0);
}

TEST(SimilarityListTest, ValueAtCarriesMax) {
  SimilarityList list = L({{1, 1, 2.0}}, 8.0);
  Sim s = list.ValueAt(1);
  EXPECT_EQ(s.actual, 2.0);
  EXPECT_EQ(s.max, 8.0);
  EXPECT_DOUBLE_EQ(s.fraction(), 0.25);
}

TEST(SimilarityListTest, FractionOfZeroMaxIsZero) {
  Sim s{0.0, 0.0};
  EXPECT_EQ(s.fraction(), 0.0);
}

TEST(SimilarityListTest, FromDenseBuildsRuns) {
  SimilarityList list = SimilarityList::FromDense({0, 2, 2, 0, 3}, 5.0);
  EXPECT_TRUE(ListsEqual(list, L({{2, 3, 2.0}, {5, 5, 3.0}}, 5.0)));
}

TEST(SimilarityListTest, FromDenseWithOffset) {
  SimilarityList list = SimilarityList::FromDense({1, 1}, 5.0, 10);
  EXPECT_TRUE(ListsEqual(list, L({{10, 11, 1.0}}, 5.0)));
}

TEST(SimilarityListTest, FromDenseAllZeroIsEmpty) {
  SimilarityList list = SimilarityList::FromDense({0, 0, 0}, 5.0);
  EXPECT_TRUE(list.empty());
}

TEST(SimilarityListTest, ClipKeepsIntersection) {
  SimilarityList list = L({{1, 10, 1.0}, {20, 30, 2.0}}, 5.0);
  EXPECT_TRUE(ListsEqual(list.Clip(Interval{5, 25}),
                         L({{5, 10, 1.0}, {20, 25, 2.0}}, 5.0)));
}

TEST(SimilarityListTest, ClipToEmptyBoundsIsEmpty) {
  SimilarityList list = L({{1, 10, 1.0}}, 5.0);
  EXPECT_TRUE(list.Clip(Interval{11, 20}).empty());
}

TEST(SimilarityListTest, ClipPreservesMax) {
  SimilarityList list = L({{1, 10, 1.0}}, 5.0);
  EXPECT_EQ(list.Clip(Interval{2, 3}).max(), 5.0);
}

TEST(SimilarityListTest, WithMaxReplacesMax) {
  SimilarityList list = L({{1, 2, 1.0}}, 5.0);
  EXPECT_EQ(list.WithMax(9.0).max(), 9.0);
  EXPECT_EQ(list.WithMax(9.0).entries(), list.entries());
}

TEST(SimilarityListTest, EqualityComparesEntriesAndMax) {
  EXPECT_EQ(L({{1, 2, 1.0}}, 5.0), L({{1, 2, 1.0}}, 5.0));
  EXPECT_FALSE(L({{1, 2, 1.0}}, 5.0) == L({{1, 2, 1.0}}, 6.0));
  EXPECT_FALSE(L({{1, 2, 1.0}}, 5.0) == L({{1, 3, 1.0}}, 5.0));
}

TEST(SimilarityListTest, ToStringIsReadable) {
  EXPECT_EQ(L({{10, 24, 10.0}}, 20.0).ToString(), "{[10,24]:10} max=20");
}

}  // namespace
}  // namespace htl
