#include "sim/table_ops.h"

#include <gtest/gtest.h>

#include "sim/list_ops.h"
#include "testing/helpers.h"

namespace htl {
namespace {

using testing::L;
using testing::ListsEqual;

SimilarityTable::Row MakeRow(std::vector<ObjectId> objects, SimilarityList list,
                             std::vector<ValueRange> ranges = {}) {
  SimilarityTable::Row r;
  r.objects = std::move(objects);
  r.ranges = std::move(ranges);
  r.list = std::move(list);
  return r;
}

// ---------------------------------------------------------------------------
// JoinTables

TEST(JoinTablesTest, EquiJoinOnCommonVariable) {
  SimilarityTable t1({"x"}, {});
  t1.AddRow(MakeRow({1}, L({{1, 5, 2.0}}, 3.0)));
  t1.AddRow(MakeRow({2}, L({{1, 5, 1.0}}, 3.0)));
  SimilarityTable t2({"x"}, {});
  t2.AddRow(MakeRow({1}, L({{3, 8, 4.0}}, 5.0)));

  SimilarityTable out = JoinTables(t1, 3.0, t2, 5.0, TableCombine::kAnd, 0.5);
  ASSERT_EQ(out.object_vars(), std::vector<std::string>{"x"});
  // Rows: combined (x=1), one-sided (x=1 from t1 — dominated but present is
  // allowed to be pruned by dedup only when keys equal; here keys equal so
  // they merge), one-sided (x=2), one-sided (x=1 from t2, same key merges).
  double best_at_4_x1 = 0;
  for (const auto& row : out.rows()) {
    if (row.objects[0] == 1) best_at_4_x1 = std::max(best_at_4_x1, row.list.ActualAt(4));
  }
  EXPECT_EQ(best_at_4_x1, 6.0);  // 2 + 4 where both overlap.
}

TEST(JoinTablesTest, UnmatchedRowsSurviveWithPartialScore) {
  SimilarityTable t1({"x"}, {});
  t1.AddRow(MakeRow({7}, L({{1, 2, 2.0}}, 3.0)));
  SimilarityTable t2({"x"}, {});  // Empty.

  SimilarityTable out = JoinTables(t1, 3.0, t2, 5.0, TableCombine::kAnd, 0.5);
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_EQ(out.rows()[0].objects[0], 7);
  EXPECT_TRUE(ListsEqual(out.rows()[0].list, L({{1, 2, 2.0}}, 8.0)));
}

TEST(JoinTablesTest, DisjointVariablesCrossJoin) {
  SimilarityTable t1({"x"}, {});
  t1.AddRow(MakeRow({1}, L({{1, 4, 1.0}}, 2.0)));
  SimilarityTable t2({"y"}, {});
  t2.AddRow(MakeRow({9}, L({{3, 6, 2.0}}, 2.0)));

  SimilarityTable out = JoinTables(t1, 2.0, t2, 2.0, TableCombine::kAnd, 0.5);
  EXPECT_EQ(out.object_vars(), (std::vector<std::string>{"x", "y"}));
  // Combined row (1, 9) must exist with summed overlap.
  bool found = false;
  for (const auto& row : out.rows()) {
    if (row.objects[0] == 1 && row.objects[1] == 9) {
      found = true;
      EXPECT_EQ(row.list.ActualAt(3), 3.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(JoinTablesTest, UntilKeepsRhsOnlyRows) {
  SimilarityTable g({"x"}, {});  // g empty: until still holds where h holds.
  SimilarityTable h({"x"}, {});
  h.AddRow(MakeRow({1}, L({{5, 7, 3.0}}, 4.0)));

  SimilarityTable out = JoinTables(g, 2.0, h, 4.0, TableCombine::kUntil, 0.5);
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_TRUE(ListsEqual(out.rows()[0].list, L({{5, 7, 3.0}}, 4.0)));
}

TEST(JoinTablesTest, UntilDropsLhsOnlyRows) {
  SimilarityTable g({"x"}, {});
  g.AddRow(MakeRow({1}, L({{1, 9, 2.0}}, 2.0)));
  SimilarityTable h({"x"}, {});  // Empty h: until never satisfied.

  SimilarityTable out = JoinTables(g, 2.0, h, 4.0, TableCombine::kUntil, 0.5);
  EXPECT_EQ(out.num_rows(), 0);
}

TEST(JoinTablesTest, WildcardMatchesAnyBinding) {
  SimilarityTable t1({"x"}, {});
  t1.AddRow(MakeRow({SimilarityTable::kAnyObject}, L({{1, 4, 1.5}}, 2.0)));
  SimilarityTable t2({"x"}, {});
  t2.AddRow(MakeRow({3}, L({{2, 6, 2.5}}, 3.0)));

  SimilarityTable out = JoinTables(t1, 2.0, t2, 3.0, TableCombine::kAnd, 0.5);
  // The combined row must bind x=3 (concrete wins over wildcard).
  bool found = false;
  for (const auto& row : out.rows()) {
    if (row.objects[0] == 3 && row.list.ActualAt(3) == 4.0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(JoinTablesTest, RangeColumnsIntersect) {
  SimilarityTable t1({}, {"h"});
  t1.AddRow(MakeRow({}, L({{1, 9, 1.0}}, 1.0),
                    {ValueRange::AtMost(AttrValue(int64_t{10}))}));
  SimilarityTable t2({}, {"h"});
  t2.AddRow(MakeRow({}, L({{1, 9, 1.0}}, 1.0),
                    {ValueRange::AtLeast(AttrValue(int64_t{5}))}));

  SimilarityTable out = JoinTables(t1, 1.0, t2, 1.0, TableCombine::kAnd, 0.5);
  // Expect a combined row with range [5,10] and value 2, plus the two
  // one-sided partial rows with their original ranges and value 1.
  bool combined = false, left_only = false, right_only = false;
  for (const auto& row : out.rows()) {
    const ValueRange& r = row.ranges[0];
    if (r.Contains(AttrValue(int64_t{7})) && row.list.ActualAt(5) == 2.0) combined = true;
    if (r.Contains(AttrValue(int64_t{2})) && row.list.ActualAt(5) == 1.0) left_only = true;
    if (r.Contains(AttrValue(int64_t{99})) && row.list.ActualAt(5) == 1.0) {
      right_only = true;
    }
  }
  EXPECT_TRUE(combined);
  EXPECT_TRUE(left_only);
  EXPECT_TRUE(right_only);
}

TEST(JoinTablesTest, DedupMergesIdenticalKeys) {
  SimilarityTable t1({"x"}, {});
  t1.AddRow(MakeRow({1}, L({{1, 3, 2.0}}, 2.0)));
  SimilarityTable t2({"x"}, {});

  // Joining against empty t2 twice should still produce a single x=1 row.
  SimilarityTable out = JoinTables(t1, 2.0, t2, 0.0, TableCombine::kAnd, 0.5);
  EXPECT_EQ(out.num_rows(), 1);
}

// ---------------------------------------------------------------------------
// CollapseExists

TEST(CollapseExistsTest, MaxMergesRowsOverQuantifiedVariable) {
  SimilarityTable t({"x"}, {});
  t.AddRow(MakeRow({1}, L({{1, 5, 2.0}}, 4.0)));
  t.AddRow(MakeRow({2}, L({{3, 8, 3.0}}, 4.0)));

  SimilarityTable out = CollapseExists(t, {"x"});
  EXPECT_TRUE(out.object_vars().empty());
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_TRUE(ListsEqual(out.rows()[0].list,
                         L({{1, 2, 2.0}, {3, 8, 3.0}}, 4.0)));
}

TEST(CollapseExistsTest, KeepsOtherColumns) {
  SimilarityTable t({"x", "y"}, {});
  t.AddRow(MakeRow({1, 9}, L({{1, 2, 1.0}}, 2.0)));
  t.AddRow(MakeRow({2, 9}, L({{2, 3, 2.0}}, 2.0)));
  t.AddRow(MakeRow({1, 8}, L({{5, 5, 1.0}}, 2.0)));

  SimilarityTable out = CollapseExists(t, {"x"});
  EXPECT_EQ(out.object_vars(), std::vector<std::string>{"y"});
  EXPECT_EQ(out.num_rows(), 2);  // y=9 merged, y=8 separate.
}

TEST(CollapseExistsTest, UnknownVariableIsNoOp) {
  SimilarityTable t({"x"}, {});
  t.AddRow(MakeRow({1}, L({{1, 2, 1.0}}, 2.0)));
  SimilarityTable out = CollapseExists(t, {"zzz"});
  EXPECT_EQ(out.object_vars(), std::vector<std::string>{"x"});
  EXPECT_EQ(out.num_rows(), 1);
}

// ---------------------------------------------------------------------------
// FreezeJoin

ValueTable MakeHeightValues() {
  // height(x): object 1 has height 3 on [1,4] and 7 on [5,9]; object 2 has
  // height 5 on [2,6].
  ValueTable vt({"x"});
  vt.AddRow({{1}, AttrValue(int64_t{3}), {Interval{1, 4}}});
  vt.AddRow({{1}, AttrValue(int64_t{7}), {Interval{5, 9}}});
  vt.AddRow({{2}, AttrValue(int64_t{5}), {Interval{2, 6}}});
  return vt;
}

TEST(FreezeJoinTest, SelectsRowsByValueInRange) {
  SimilarityTable t({"x"}, {"h"});
  // Row valid for h < 6, any segment in [1,9].
  t.AddRow(MakeRow({1}, L({{1, 9, 2.0}}, 2.0),
                   {ValueRange::LessThan(AttrValue(int64_t{6}))}));

  SimilarityTable out = FreezeJoin(t, "h", MakeHeightValues());
  EXPECT_TRUE(out.attr_vars().empty());
  // Only height value 3 (object 1) lies in (-inf, 6) for x=1; the list is
  // clipped to where height==3, i.e. [1,4].
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_EQ(out.rows()[0].objects[0], 1);
  EXPECT_TRUE(ListsEqual(out.rows()[0].list, L({{1, 4, 2.0}}, 2.0)));
}

TEST(FreezeJoinTest, MultipleMatchingValuesMaxMerge) {
  SimilarityTable t({"x"}, {"h"});
  t.AddRow(MakeRow({1}, L({{1, 9, 2.0}}, 2.0), {ValueRange::All()
                                                    .Intersect(ValueRange::AtLeast(
                                                        AttrValue(int64_t{0})))}));

  SimilarityTable out = FreezeJoin(t, "h", MakeHeightValues());
  // Both height values of object 1 match [0, inf): clip to [1,4] ∪ [5,9],
  // dedup merges them into one row covering [1,9].
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_TRUE(ListsEqual(out.rows()[0].list, L({{1, 9, 2.0}}, 2.0)));
}

TEST(FreezeJoinTest, UnconstrainedRangePassesThrough) {
  SimilarityTable t({"x"}, {"h"});
  t.AddRow(MakeRow({1}, L({{1, 20, 2.0}}, 2.0), {ValueRange::All()}));

  SimilarityTable out = FreezeJoin(t, "h", MakeHeightValues());
  // h unconstrained: the value of the attribute is irrelevant, including
  // segments where it is undefined (ids 10-20).
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_TRUE(ListsEqual(out.rows()[0].list, L({{1, 20, 2.0}}, 2.0)));
}

TEST(FreezeJoinTest, MissingColumnIsNoOp) {
  SimilarityTable t({"x"}, {});
  t.AddRow(MakeRow({1}, L({{1, 2, 1.0}}, 1.0)));
  SimilarityTable out = FreezeJoin(t, "h", MakeHeightValues());
  EXPECT_EQ(out.num_rows(), 1);
}

TEST(FreezeJoinTest, ObjectBindingsMustBeCompatible) {
  SimilarityTable t({"x"}, {"h"});
  t.AddRow(MakeRow({2}, L({{1, 9, 1.0}}, 1.0),
                   {ValueRange::Exactly(AttrValue(int64_t{3}))}));
  SimilarityTable out = FreezeJoin(t, "h", MakeHeightValues());
  // Object 2 never has height 3.
  EXPECT_EQ(out.num_rows(), 0);
}

TEST(FreezeJoinTest, SegmentAttributeValueTable) {
  // Value table with no object variables (segment attribute).
  ValueTable vt{std::vector<std::string>{}};
  vt.AddRow({{}, AttrValue(int64_t{10}), {Interval{1, 3}}});
  vt.AddRow({{}, AttrValue(int64_t{20}), {Interval{4, 6}}});

  SimilarityTable t({}, {"d"});
  t.AddRow(MakeRow({}, L({{1, 6, 1.0}}, 1.0),
                   {ValueRange::GreaterThan(AttrValue(int64_t{15}))}));
  SimilarityTable out = FreezeJoin(t, "d", vt);
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_TRUE(ListsEqual(out.rows()[0].list, L({{4, 6, 1.0}}, 1.0)));
}

// ---------------------------------------------------------------------------
// MapLists

TEST(MapListsTest, AppliesFunctionAndDropsEmpties) {
  SimilarityTable t({"x"}, {});
  t.AddRow(MakeRow({1}, L({{1, 1, 1.0}}, 2.0)));
  t.AddRow(MakeRow({2}, L({{5, 9, 1.0}}, 2.0)));

  SimilarityTable out =
      MapLists(t, [](const SimilarityList& l) { return NextShift(l); });
  // Row x=1 shifts [1,1] into nothing and is dropped.
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_EQ(out.rows()[0].objects[0], 2);
  EXPECT_TRUE(ListsEqual(out.rows()[0].list, L({{4, 8, 1.0}}, 2.0)));
}

// ---------------------------------------------------------------------------
// SimilarityTable basics

TEST(SimilarityTableTest, FromListAndToListRoundTrip) {
  SimilarityList list = L({{1, 4, 2.0}}, 5.0);
  SimilarityTable t = SimilarityTable::FromList(list);
  EXPECT_EQ(t.num_rows(), 1);
  EXPECT_TRUE(ListsEqual(t.ToList(5.0), list));
}

TEST(SimilarityTableTest, EmptyListMakesEmptyTable) {
  SimilarityTable t = SimilarityTable::FromList(SimilarityList(5.0));
  EXPECT_EQ(t.num_rows(), 0);
  EXPECT_EQ(t.ToList(5.0).max(), 5.0);
}

TEST(SimilarityTableTest, AddRowDropsEmptyLists) {
  SimilarityTable t({"x"}, {});
  t.AddRow(MakeRow({1}, SimilarityList(5.0)));
  EXPECT_EQ(t.num_rows(), 0);
}

TEST(SimilarityTableTest, ColumnLookup) {
  SimilarityTable t({"x", "y"}, {"h"});
  EXPECT_EQ(t.ObjectColumn("x"), 0);
  EXPECT_EQ(t.ObjectColumn("y"), 1);
  EXPECT_EQ(t.ObjectColumn("z"), -1);
  EXPECT_EQ(t.AttrColumn("h"), 0);
  EXPECT_EQ(t.AttrColumn("x"), -1);
}

TEST(SimilarityTableTest, MaxSimFallsBackWhenEmpty) {
  SimilarityTable t({"x"}, {});
  EXPECT_EQ(t.MaxSim(7.0), 7.0);
  t.AddRow(MakeRow({1}, L({{1, 1, 1.0}}, 3.0)));
  EXPECT_EQ(t.MaxSim(7.0), 3.0);
}

}  // namespace
}  // namespace htl
