// End-to-end checks of the paper's running example (sections 2.1-2.4): the
// western movie, formulas (A) and (B), and the browsing query, with
// hand-computed expected similarity values.

#include <gtest/gtest.h>

#include "engine/direct_engine.h"
#include "engine/reference_engine.h"
#include "htl/binder.h"
#include "htl/classifier.h"
#include "htl/parser.h"
#include "sim/topk.h"
#include "testing/helpers.h"
#include "workload/western.h"

namespace htl {
namespace {

using testing::L;
using testing::ListsEqual;

TEST(WesternTest, VideoShape) {
  VideoTree v = western::MakeVideo();
  EXPECT_EQ(v.num_levels(), 3);
  EXPECT_EQ(v.NumSegments(2), 4);
  EXPECT_EQ(v.NumSegments(3), 12);
  EXPECT_EQ(v.Title(), "Rio Lobo");
  EXPECT_EQ(v.LevelByName("frame").value(), 3);
}

TEST(WesternTest, FormulaBClassifiesAsType2) {
  FormulaPtr f = western::FormulaB();
  ASSERT_OK(Bind(f.get()));
  EXPECT_EQ(Classify(*f), FormulaClass::kType2);
  EXPECT_EQ(MaxSimilarity(*f), 11.0);
}

TEST(WesternTest, FormulaBValuesAtFrameLevel) {
  VideoTree v = western::MakeVideo();
  DirectEngine engine(&v);
  FormulaPtr f = western::FormulaB();
  ASSERT_OK(Bind(f.get()));
  ASSERT_OK_AND_ASSIGN(SimilarityList list, engine.EvaluateList(3, *f));
  // Hand-derived: the shooting starts at frame 4 (exact match 11/11);
  // earlier frames see only the future (5 via the (JohnWayne, bandit)
  // binding); frame 5 has partial P1 (9). The tail values come from
  // *degenerate* partial bindings — at frame 6 the pair (bandit, bandit)
  // scores 3 + 4 = 7, and during the ride-off (7-9) the pair
  // (JohnWayne, JohnWayne) scores 3 + 3 = 6 — the price of pure
  // weighted-sum partial matching (the fuzzy-min alternative suppresses
  // these; see fuzzy_semantics_test.cc).
  EXPECT_TRUE(ListsEqual(
      list, L({{1, 3, 5.0}, {4, 4, 11.0}, {5, 5, 9.0}, {6, 6, 7.0}, {7, 9, 6.0}},
              11.0)));
  // The best frame is the start of the shooting, with an exact match.
  auto top = TopKSegments(list, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 4);
  EXPECT_DOUBLE_EQ(top[0].sim.fraction(), 1.0);
}

TEST(WesternTest, FormulaBEnginesAgree) {
  VideoTree v = western::MakeVideo();
  FormulaPtr f = western::FormulaB();
  ASSERT_OK(Bind(f.get()));
  DirectEngine direct(&v);
  ReferenceEngine reference(&v);
  ASSERT_OK_AND_ASSIGN(SimilarityList got, direct.EvaluateList(3, *f));
  ASSERT_OK_AND_ASSIGN(SimilarityList want, reference.EvaluateList(3, *f));
  EXPECT_TRUE(ListsEqual(got, want));
}

TEST(WesternTest, FormulaAClassifiesAsType1) {
  FormulaPtr f = western::FormulaA();
  ASSERT_OK(Bind(f.get()));
  EXPECT_EQ(Classify(*f), FormulaClass::kType1);
  EXPECT_EQ(MaxSimilarity(*f), 4.0);
}

TEST(WesternTest, FormulaAValuesAtFrameLevel) {
  VideoTree v = western::MakeVideo();
  DirectEngine engine(&v);
  FormulaPtr f = western::FormulaA();
  ASSERT_OK(Bind(f.get()));
  ASSERT_OK_AND_ASSIGN(SimilarityList list, engine.EvaluateList(3, *f));
  // Frame 1: planes on the ground (2) + next(in-air until shot-down) (2).
  EXPECT_TRUE(ListsEqual(list, L({{1, 1, 4.0}, {2, 2, 3.0}, {3, 3, 1.0}}, 4.0)));
}

TEST(WesternTest, BrowsingQueryAtRoot) {
  VideoTree v = western::MakeVideo();
  DirectEngine engine(&v);
  FormulaPtr f = western::BrowsingQuery();
  ASSERT_OK(Bind(f.get()));
  EXPECT_EQ(Classify(*f), FormulaClass::kExtendedConjunctive);
  ASSERT_OK_AND_ASSIGN(Sim sim, engine.EvaluateVideo(*f));
  // type='western' (1) + formula (B) at the first frame (5) out of 12.
  EXPECT_DOUBLE_EQ(sim.actual, 6.0);
  EXPECT_DOUBLE_EQ(sim.max, 12.0);
  // Reference agrees.
  ReferenceEngine reference(&v);
  ASSERT_OK_AND_ASSIGN(Sim ref, reference.EvaluateVideo(*f));
  EXPECT_EQ(sim, ref);
}

TEST(WesternTest, SceneLevelTemporalQuery) {
  // The section 2.3 example shape: a scene depicting the shooting, later
  // followed by a scene with John Wayne (riding off).
  VideoTree v = western::MakeVideo();
  DirectEngine engine(&v);
  ReferenceEngine reference(&v);
  auto parsed = ParseFormula(
      "at-next-level(eventually exists a, b (fires_at(a, b))) and eventually "
      "at-next-level(exists x (name(x) = 'JohnWayne'))");
  ASSERT_OK(parsed.status());
  FormulaPtr f = std::move(parsed).value();
  ASSERT_OK(Bind(f.get()));
  ASSERT_OK_AND_ASSIGN(SimilarityList got, engine.EvaluateList(2, *f));
  // Scene 2's frames contain the firing (1); a later scene starting with
  // John Wayne exists from scenes 1-3 (scene 3's first frame has him).
  // Scene-by-scene: s1: 0+1, s2: 1+1, s3: 0+1, s4: 0+0.
  EXPECT_TRUE(ListsEqual(got, L({{1, 1, 1.0}, {2, 2, 2.0}, {3, 3, 1.0}}, 2.0)));
  ASSERT_OK_AND_ASSIGN(SimilarityList want, reference.EvaluateList(2, *f));
  EXPECT_TRUE(ListsEqual(got, want));
}

}  // namespace
}  // namespace htl
