#include <gtest/gtest.h>

#include <cmath>

#include "htl/binder.h"
#include "htl/classifier.h"
#include "testing/helpers.h"
#include "workload/casablanca.h"
#include "workload/formula_gen.h"
#include "workload/random_lists.h"
#include "workload/video_gen.h"

namespace htl {
namespace {

using testing::ListsEqual;

// ---------------------------------------------------------------------------
// Casablanca data (paper tables transcription consistency).

TEST(CasablancaTest, Table1Shape) {
  SimilarityList t1 = casablanca::MovingTrainTable();
  ASSERT_EQ(t1.length(), 1);
  EXPECT_EQ(t1.entries()[0].range, (Interval{9, 9}));
  EXPECT_NEAR(t1.entries()[0].actual, 9.787, 1e-9);
  EXPECT_NEAR(t1.max(), 9.787, 1e-9);
}

TEST(CasablancaTest, Table2Shape) {
  SimilarityList t2 = casablanca::ManWomanTable();
  ASSERT_EQ(t2.length(), 5);
  EXPECT_EQ(t2.entries()[0].range, (Interval{1, 4}));
  EXPECT_NEAR(t2.entries()[0].actual, 2.595, 1e-9);
  EXPECT_EQ(t2.entries()[4].range, (Interval{47, 49}));
  EXPECT_NEAR(t2.entries()[4].actual, 6.26, 1e-9);
}

TEST(CasablancaTest, Table3IsEventuallyOfTable1) {
  SimilarityList t3 = casablanca::EventuallyMovingTrainTable();
  ASSERT_EQ(t3.length(), 1);
  EXPECT_EQ(t3.entries()[0].range, (Interval{1, 9}));
}

TEST(CasablancaTest, Table4HasEightRows) {
  SimilarityList t4 = casablanca::Query1ResultTable();
  EXPECT_EQ(t4.length(), 8);
  // The paper's printed similarity values.
  EXPECT_NEAR(t4.ActualAt(1), 12.382, 1e-9);
  EXPECT_NEAR(t4.ActualAt(6), 11.047, 1e-9);
  EXPECT_NEAR(t4.ActualAt(5), 9.787, 1e-9);
  EXPECT_NEAR(t4.ActualAt(20), 1.26, 1e-9);
  EXPECT_NEAR(t4.ActualAt(48), 6.26, 1e-9);
  EXPECT_EQ(t4.ActualAt(45), 0.0);
  EXPECT_EQ(t4.ActualAt(50), 0.0);
}

TEST(CasablancaTest, VideoHas50Shots) {
  VideoTree v = casablanca::MakeVideo();
  EXPECT_EQ(v.num_levels(), 2);
  EXPECT_EQ(v.NumSegments(2), 50);
  EXPECT_EQ(v.Title(), "The Making of Casablanca");
  EXPECT_EQ(v.LevelByName("shot").value(), 2);
}

TEST(CasablancaTest, FormulasBindAndClassify) {
  FormulaPtr named = casablanca::Query1Named();
  ASSERT_OK(Bind(named.get()));
  EXPECT_EQ(Classify(*named), FormulaClass::kType1);
  FormulaPtr full = casablanca::Query1Full();
  ASSERT_OK(Bind(full.get()));
  EXPECT_EQ(Classify(*full), FormulaClass::kType1);
}

// ---------------------------------------------------------------------------
// Random list generator (section 4.2 workload).

TEST(RandomListsTest, DeterministicForSeed) {
  RandomListOptions opts;
  opts.num_segments = 1000;
  Rng r1(5), r2(5);
  EXPECT_TRUE(ListsEqual(GenerateRandomList(r1, opts), GenerateRandomList(r2, opts)));
}

TEST(RandomListsTest, StaysInBounds) {
  RandomListOptions opts;
  opts.num_segments = 5000;
  Rng rng(7);
  SimilarityList list = GenerateRandomList(rng, opts);
  ASSERT_GT(list.length(), 0);
  EXPECT_GE(list.entries().front().range.begin, 1);
  EXPECT_LE(list.entries().back().range.end, opts.num_segments);
  for (const SimEntry& e : list.entries()) {
    EXPECT_GT(e.actual, 0.0);
    EXPECT_LE(e.actual, opts.max_sim);
  }
}

TEST(RandomListsTest, CoverageNearTarget) {
  RandomListOptions opts;
  opts.num_segments = 100'000;
  opts.coverage = 0.1;
  Rng rng(11);
  SimilarityList list = GenerateRandomList(rng, opts);
  const double coverage =
      static_cast<double>(list.CoveredIds()) / static_cast<double>(opts.num_segments);
  EXPECT_GT(coverage, 0.07);
  EXPECT_LT(coverage, 0.13);
}

TEST(RandomListsTest, EntriesAreSeparatedByGaps) {
  RandomListOptions opts;
  opts.num_segments = 10'000;
  Rng rng(13);
  SimilarityList list = GenerateRandomList(rng, opts);
  for (int64_t i = 1; i < list.length(); ++i) {
    EXPECT_GT(list.entries()[static_cast<size_t>(i)].range.begin,
              list.entries()[static_cast<size_t>(i - 1)].range.end + 1);
  }
}

TEST(RandomListsTest, ValuesAreSixteenthQuantized) {
  RandomListOptions opts;
  opts.num_segments = 2000;
  Rng rng(17);
  SimilarityList list = GenerateRandomList(rng, opts);
  for (const SimEntry& e : list.entries()) {
    const double ticks = e.actual * 16.0;
    EXPECT_EQ(ticks, std::floor(ticks));
  }
}

// ---------------------------------------------------------------------------
// Video generator.

TEST(VideoGenTest, RespectsShape) {
  VideoGenOptions opts;
  opts.levels = 3;
  opts.min_branching = 2;
  opts.max_branching = 3;
  Rng rng(3);
  VideoTree v = GenerateVideo(rng, opts);
  EXPECT_EQ(v.num_levels(), 3);
  EXPECT_GE(v.NumSegments(2), 2);
  EXPECT_LE(v.NumSegments(2), 3);
  EXPECT_GE(v.NumSegments(3), 4);
  EXPECT_LE(v.NumSegments(3), 9);
}

TEST(VideoGenTest, DeterministicForSeed) {
  VideoGenOptions opts;
  Rng r1(9), r2(9);
  VideoTree a = GenerateVideo(r1, opts);
  VideoTree b = GenerateVideo(r2, opts);
  ASSERT_EQ(a.NumSegments(a.num_levels()), b.NumSegments(b.num_levels()));
  for (SegmentId s = 1; s <= a.NumSegments(a.num_levels()); ++s) {
    EXPECT_EQ(a.Meta(a.num_levels(), s).objects().size(),
              b.Meta(b.num_levels(), s).objects().size());
  }
}

TEST(VideoGenTest, LeavesAreAnnotated) {
  VideoGenOptions opts;
  opts.levels = 2;
  opts.object_density = 1.0;
  Rng rng(21);
  VideoTree v = GenerateVideo(rng, opts);
  for (SegmentId s = 1; s <= v.NumSegments(2); ++s) {
    EXPECT_EQ(v.Meta(2, s).objects().size(), static_cast<size_t>(opts.num_objects));
    EXPECT_FALSE(v.Meta(2, s).Attribute("duration").is_null());
  }
}

TEST(VideoGenTest, LevelNamesAssigned) {
  VideoGenOptions opts;
  opts.levels = 4;
  Rng rng(23);
  VideoTree v = GenerateVideo(rng, opts);
  EXPECT_EQ(v.LevelByName("frame").value(), 4);
  EXPECT_EQ(v.LevelByName("shot").value(), 3);
  EXPECT_EQ(v.LevelByName("scene").value(), 2);
}

// ---------------------------------------------------------------------------
// Formula generator.

TEST(FormulaGenTest, GeneratesBindableFormulas) {
  FormulaGenOptions opts;
  Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    FormulaPtr f = GenerateFormula(rng, opts);
    ASSERT_NE(f, nullptr);
    Status s = Bind(f.get());
    EXPECT_TRUE(s.ok()) << s.ToString() << " for " << f->ToString();
  }
}

TEST(FormulaGenTest, RespectsToggles) {
  FormulaGenOptions opts;
  opts.allow_or = false;
  opts.allow_not = false;
  Rng rng(37);
  for (int i = 0; i < 50; ++i) {
    FormulaPtr f = GenerateFormula(rng, opts);
    std::string text = f->ToString();
    EXPECT_EQ(text.find(" or "), std::string::npos);
    EXPECT_EQ(text.find("not ("), std::string::npos);
  }
}

TEST(FormulaGenTest, DeterministicForSeed) {
  FormulaGenOptions opts;
  Rng r1(41), r2(41);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(GenerateFormula(r1, opts)->ToString(), GenerateFormula(r2, opts)->ToString());
  }
}

}  // namespace
}  // namespace htl
