#ifndef HTL_TESTS_TESTING_HELPERS_H_
#define HTL_TESTS_TESTING_HELPERS_H_

#include <gtest/gtest.h>

#include <initializer_list>

#include "sim/sim_list.h"
#include "util/result.h"
#include "util/string_util.h"

namespace htl::testing {

/// Shorthand literal: L({{1, 4, 2.5}, {6, 6, 1.0}}, 10) builds a list with
/// entries [1,4]:2.5 and [6,6]:1.0, max 10.
struct EntrySpec {
  SegmentId begin;
  SegmentId end;
  double actual;
};

inline SimilarityList L(std::initializer_list<EntrySpec> specs, double max) {
  std::vector<SimEntry> entries;
  for (const EntrySpec& s : specs) {
    entries.push_back(SimEntry{Interval{s.begin, s.end}, s.actual});
  }
  return SimilarityList::FromEntriesOrDie(std::move(entries), max);
}

/// Exact equality with a readable failure message.
inline ::testing::AssertionResult ListsEqual(const SimilarityList& got,
                                             const SimilarityList& want) {
  if (got == want) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "\n  got:  " << got.ToString() << "\n  want: " << want.ToString();
}

/// Pointwise near-equality (tolerance on actuals and max), entry structure
/// ignored — compares the functions id -> value over both lists' support.
inline ::testing::AssertionResult ListsNear(const SimilarityList& got,
                                            const SimilarityList& want,
                                            double tol = 1e-9) {
  auto fail = [&](const std::string& why) {
    return ::testing::AssertionFailure() << why << "\n  got:  " << got.ToString()
                                         << "\n  want: " << want.ToString();
  };
  if (std::abs(got.max() - want.max()) > tol) return fail("max differs");
  std::vector<SegmentId> points;
  for (const SimEntry& e : got.entries()) {
    points.push_back(e.range.begin);
    points.push_back(e.range.end);
  }
  for (const SimEntry& e : want.entries()) {
    points.push_back(e.range.begin);
    points.push_back(e.range.end);
  }
  for (SegmentId p : points) {
    for (SegmentId q : {p - 1, p, p + 1}) {
      if (q < 1) continue;
      if (std::abs(got.ActualAt(q) - want.ActualAt(q)) > tol) {
        return fail(StrCat("value differs at id ", q, ": got ", got.ActualAt(q),
                           ", want ", want.ActualAt(q)));
      }
    }
  }
  return ::testing::AssertionSuccess();
}

inline std::string ErrorText(const Status& s) { return s.ToString(); }
template <typename T>
std::string ErrorText(const Result<T>& r) {
  return r.status().ToString();
}

/// Unwraps a Result in a test, failing fatally on error. Usage:
///   ASSERT_OK_AND_ASSIGN(auto list, engine.EvaluateList(2, *f));
#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                               \
  ASSERT_OK_AND_ASSIGN_IMPL_(                                          \
      HTL_RESULT_CONCAT_(htl_test_tmp_, __LINE__), lhs, rexpr)
#define ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, rexpr)                    \
  auto tmp = (rexpr);                                                  \
  ASSERT_TRUE(tmp.ok()) << ::htl::testing::ErrorText(tmp);             \
  lhs = std::move(tmp).value()

#define EXPECT_OK(expr)                                                       \
  do {                                                                        \
    const auto& htl_status_like_ = (expr);                                    \
    EXPECT_TRUE(htl_status_like_.ok())                                        \
        << ::htl::testing::ErrorText(htl_status_like_);                       \
  } while (0)

#define ASSERT_OK(expr)                                                       \
  do {                                                                        \
    const auto& htl_status_like_ = (expr);                                    \
    ASSERT_TRUE(htl_status_like_.ok())                                        \
        << ::htl::testing::ErrorText(htl_status_like_);                       \
  } while (0)

}  // namespace htl::testing

#endif  // HTL_TESTS_TESTING_HELPERS_H_
