#include "util/parse.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace htl {
namespace {

TEST(ParseInt64Test, ParsesDecimalIntegers) {
  int64_t v = -1;
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &v));
  EXPECT_EQ(v, INT64_MIN);
  EXPECT_TRUE(ParseInt64("+42", &v));
  EXPECT_EQ(v, 42);
}

TEST(ParseInt64Test, RejectsJunkWholeTextAndOverflow) {
  int64_t v = 123;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64(" 12", &v));
  EXPECT_FALSE(ParseInt64("12 ", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("+", &v));
  EXPECT_FALSE(ParseInt64("+-3", &v));
  EXPECT_FALSE(ParseInt64("9223372036854775808", &v));  // INT64_MAX + 1.
  EXPECT_EQ(v, 123) << "failed parse must leave *out untouched";
}

TEST(ParseInt32Test, EnforcesInt32Range) {
  int32_t v = 7;
  EXPECT_TRUE(ParseInt32("2147483647", &v));
  EXPECT_EQ(v, INT32_MAX);
  EXPECT_FALSE(ParseInt32("2147483648", &v));
  EXPECT_EQ(v, INT32_MAX);
}

TEST(ParseDoubleTest, ParsesFloatsIncludingExponents) {
  double d = -1;
  EXPECT_TRUE(ParseDouble("2.5", &d));
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_TRUE(ParseDouble("-0.125", &d));
  EXPECT_DOUBLE_EQ(d, -0.125);
  EXPECT_TRUE(ParseDouble("1e3", &d));
  EXPECT_DOUBLE_EQ(d, 1000.0);
  EXPECT_TRUE(ParseDouble("17", &d));
  EXPECT_DOUBLE_EQ(d, 17.0);
  EXPECT_TRUE(ParseDouble("+3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
}

TEST(ParseDoubleTest, RejectsJunkAndPartialText) {
  double d = 4.0;
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble("1.5garbage", &d));
  EXPECT_FALSE(ParseDouble("nanx", &d));
  EXPECT_FALSE(ParseDouble("--1", &d));
  EXPECT_EQ(d, 4.0);
}

// The seventeen-significant-digit round trip used by the text serialization
// format (storage/serialization.cc) must be exact.
TEST(ParseDoubleTest, RoundTripsSerializationPrecision) {
  const double values[] = {9.787, 1.26, 12.382, 0.1, 1.0 / 3.0};
  for (double want : values) {
    char buf[64];
    snprintf(buf, sizeof buf, "%.17g", want);
    double got = 0;
    ASSERT_TRUE(ParseDouble(buf, &got));
    EXPECT_EQ(got, want);
  }
}

}  // namespace
}  // namespace htl
