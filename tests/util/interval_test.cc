#include "util/interval.h"

#include <gtest/gtest.h>

namespace htl {
namespace {

TEST(IntervalTest, DefaultIsEmpty) {
  Interval iv;
  EXPECT_TRUE(iv.empty());
  EXPECT_EQ(iv.size(), 0);
}

TEST(IntervalTest, SizeAndContains) {
  Interval iv{3, 7};
  EXPECT_FALSE(iv.empty());
  EXPECT_EQ(iv.size(), 5);
  EXPECT_TRUE(iv.Contains(3));
  EXPECT_TRUE(iv.Contains(7));
  EXPECT_FALSE(iv.Contains(2));
  EXPECT_FALSE(iv.Contains(8));
}

TEST(IntervalTest, SingletonInterval) {
  Interval iv{5, 5};
  EXPECT_EQ(iv.size(), 1);
  EXPECT_TRUE(iv.Contains(5));
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE((Interval{1, 5}).Overlaps(Interval{5, 9}));
  EXPECT_TRUE((Interval{1, 9}).Overlaps(Interval{3, 4}));
  EXPECT_FALSE((Interval{1, 4}).Overlaps(Interval{5, 9}));
  EXPECT_FALSE((Interval{1, 4}).Overlaps(Interval{5, 4}));  // Empty other.
}

TEST(IntervalTest, Adjacent) {
  EXPECT_TRUE((Interval{1, 4}).Adjacent(Interval{5, 9}));
  EXPECT_FALSE((Interval{1, 4}).Adjacent(Interval{6, 9}));
  EXPECT_FALSE((Interval{1, 4}).Adjacent(Interval{4, 9}));
}

TEST(IntervalTest, Intersect) {
  EXPECT_EQ((Interval{1, 6}).Intersect(Interval{4, 9}), (Interval{4, 6}));
  EXPECT_TRUE((Interval{1, 3}).Intersect(Interval{5, 9}).empty());
  EXPECT_EQ((Interval{1, 9}).Intersect(Interval{1, 9}), (Interval{1, 9}));
}

TEST(IntervalTest, ToString) {
  EXPECT_EQ((Interval{2, 4}).ToString(), "[2,4]");
  EXPECT_EQ(Interval{}.ToString(), "[]");
}

TEST(IsDisjointSortedTest, AcceptsValidSequences) {
  EXPECT_TRUE(IsDisjointSorted({}));
  EXPECT_TRUE(IsDisjointSorted({{1, 4}}));
  EXPECT_TRUE(IsDisjointSorted({{1, 4}, {5, 5}, {9, 20}}));
}

TEST(IsDisjointSortedTest, RejectsOverlapUnsortedEmpty) {
  EXPECT_FALSE(IsDisjointSorted({{1, 4}, {4, 6}}));
  EXPECT_FALSE(IsDisjointSorted({{5, 6}, {1, 2}}));
  EXPECT_FALSE(IsDisjointSorted({{4, 3}}));
}

TEST(CoalesceAdjacentTest, MergesTouchingRuns) {
  auto out = CoalesceAdjacent({{1, 3}, {4, 6}, {8, 9}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Interval{1, 6}));
  EXPECT_EQ(out[1], (Interval{8, 9}));
}

TEST(CoalesceAdjacentTest, ChainsOfAdjacency) {
  auto out = CoalesceAdjacent({{1, 1}, {2, 2}, {3, 3}, {4, 4}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Interval{1, 4}));
}

TEST(TotalCoveredTest, SumsSizes) {
  EXPECT_EQ(TotalCovered({}), 0);
  EXPECT_EQ(TotalCovered({{1, 4}, {6, 6}}), 5);
}

}  // namespace
}  // namespace htl
