#include "util/string_util.h"

#include <gtest/gtest.h>

namespace htl {
namespace {

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat(42), "42");
}

TEST(StrSplitTest, SplitsAndKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  abc \t\n"), "abc");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("a b"), "a b");
}

TEST(AsciiToLowerTest, LowersOnlyAscii) {
  EXPECT_EQ(AsciiToLower("AbC123"), "abc123");
  EXPECT_EQ(AsciiToLower(""), "");
}

TEST(StartsWithTest, PrefixChecks) {
  EXPECT_TRUE(StartsWith("at-next-level", "at-"));
  EXPECT_FALSE(StartsWith("at", "at-"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin(std::vector<std::string>{"a", "b"}, ", "), "a, b");
  EXPECT_EQ(StrJoin(std::vector<int>{1, 2, 3}, "-"), "1-2-3");
  EXPECT_EQ(StrJoin(std::vector<int>{}, ","), "");
}

TEST(FormatFixedTest, FixedDecimals) {
  EXPECT_EQ(FormatFixed(9.787, 3), "9.787");
  EXPECT_EQ(FormatFixed(12.382, 6), "12.382000");
  EXPECT_EQ(FormatFixed(2.0, 2), "2.00");
}

}  // namespace
}  // namespace htl
