#include "util/fault_point.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "testing/helpers.h"
#include "util/status.h"

namespace htl {
namespace {

// Each test leaves the process-wide registry disarmed; the fixture enforces
// it even when an assertion fails mid-test.
class FaultRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Instance().DisableAll(); }
  void TearDown() override { FaultRegistry::Instance().DisableAll(); }
};

// A function shaped like the production call sites: plants a known point and
// otherwise succeeds.
Status Probe() {
  HTL_FAULT_POINT("sql.scan");
  return Status::OK();
}

TEST_F(FaultRegistryTest, DisarmedByDefaultAndProbeSucceeds) {
  EXPECT_FALSE(FaultRegistry::Armed());
  EXPECT_OK(Probe());
}

TEST_F(FaultRegistryTest, KnownPointsAreSortedAndNonEmpty) {
  const auto& points = FaultRegistry::KnownPoints();
  ASSERT_FALSE(points.empty());
  EXPECT_TRUE(std::is_sorted(points.begin(), points.end()));
  // Naming convention: every point is "area.seam".
  for (std::string_view p : points) {
    EXPECT_NE(p.find('.'), std::string_view::npos) << p;
  }
}

TEST_F(FaultRegistryTest, EnabledPointFiresWithCodeAndName) {
  FaultRegistry::Instance().Enable("sql.scan", FaultSpec{});
  EXPECT_TRUE(FaultRegistry::Armed());
  Status s = Probe();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("sql.scan"), std::string::npos) << s.ToString();
}

TEST_F(FaultRegistryTest, SpecCodeIsPropagated) {
  FaultSpec spec;
  spec.code = StatusCode::kResourceExhausted;
  FaultRegistry::Instance().Enable("sql.scan", spec);
  EXPECT_EQ(Probe().code(), StatusCode::kResourceExhausted);
}

TEST_F(FaultRegistryTest, StickyCountedTriggerFiresFromNthHit) {
  FaultSpec spec;
  spec.fire_on_hit = 3;
  spec.sticky = true;
  FaultRegistry::Instance().Enable("sql.scan", spec);
  EXPECT_OK(Probe());
  EXPECT_OK(Probe());
  EXPECT_FALSE(Probe().ok());  // Hit 3 fires...
  EXPECT_FALSE(Probe().ok());  // ...and stays fired.
}

TEST_F(FaultRegistryTest, OneShotCountedTriggerFiresExactlyOnce) {
  FaultSpec spec;
  spec.fire_on_hit = 2;
  spec.sticky = false;
  FaultRegistry::Instance().Enable("sql.scan", spec);
  EXPECT_OK(Probe());
  EXPECT_FALSE(Probe().ok());
  EXPECT_OK(Probe());
  EXPECT_OK(Probe());
}

TEST_F(FaultRegistryTest, DisableStopsFiringAndDisarms) {
  FaultRegistry::Instance().Enable("sql.scan", FaultSpec{});
  EXPECT_FALSE(Probe().ok());
  FaultRegistry::Instance().Disable("sql.scan");
  EXPECT_FALSE(FaultRegistry::Armed());
  EXPECT_OK(Probe());
}

TEST_F(FaultRegistryTest, ReEnableResetsHitCounter) {
  FaultSpec spec;
  spec.fire_on_hit = 2;
  spec.sticky = false;
  FaultRegistry::Instance().Enable("sql.scan", spec);
  EXPECT_OK(Probe());
  FaultRegistry::Instance().Enable("sql.scan", spec);  // Counter back to 0.
  EXPECT_OK(Probe());
  EXPECT_FALSE(Probe().ok());
}

TEST_F(FaultRegistryTest, ProbabilisticTriggerIsDeterministicUnderSeed) {
  FaultSpec spec;
  spec.probability = 0.5;
  auto run = [&spec]() {
    FaultRegistry::Instance().Seed(42);
    FaultRegistry::Instance().Enable("sql.scan", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!Probe().ok());
    return fired;
  };
  std::vector<bool> first = run();
  std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  // At rate 0.5 over 64 trials, both outcomes occur (probability of a
  // degenerate run is 2^-63; the fixed seed makes this fully repeatable).
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST_F(FaultRegistryTest, TraceCountsHitsWithoutFiring) {
  FaultRegistry::Instance().StartTrace();
  EXPECT_TRUE(FaultRegistry::Armed());  // Tracing arms the macro gate.
  EXPECT_OK(Probe());
  EXPECT_OK(Probe());
  auto hits = FaultRegistry::Instance().TraceHits();
  EXPECT_EQ(hits["sql.scan"], 2);
}

TEST_F(FaultRegistryTest, ArmedPointsStillFireWhileTracing) {
  FaultRegistry::Instance().StartTrace();
  FaultRegistry::Instance().Enable("sql.scan", FaultSpec{});
  EXPECT_FALSE(Probe().ok());
  EXPECT_EQ(FaultRegistry::Instance().TraceHits()["sql.scan"], 1);
}

TEST_F(FaultRegistryTest, DisableAllClearsTraceAndPoints) {
  FaultRegistry::Instance().StartTrace();
  FaultRegistry::Instance().Enable("sql.scan", FaultSpec{});
  EXPECT_FALSE(Probe().ok());
  FaultRegistry::Instance().DisableAll();
  EXPECT_FALSE(FaultRegistry::Armed());
  EXPECT_TRUE(FaultRegistry::Instance().TraceHits().empty());
  EXPECT_OK(Probe());
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST_F(FaultRegistryTest, UnknownPointNameIsRejectedInDebug) {
  FaultRegistry::Instance().StartTrace();  // Arm so Hit() is reached.
  EXPECT_DEATH((void)FaultRegistry::Instance().Hit("no.such_point"),
               "missing from FaultRegistry::KnownPoints");
  FaultRegistry::Instance().DisableAll();
}
#endif

}  // namespace
}  // namespace htl
