#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace htl {
namespace {

using std::chrono::milliseconds;

/// A reusable gate: tasks block in Wait() until the test calls Open().
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(ThreadPoolTest, DefaultsResolveToPositiveSizes) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1);
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultParallelism());
  EXPECT_GE(pool.queue_capacity(), 16);
  EXPECT_EQ(pool.queue_depth(), 0);
}

TEST(ThreadPoolTest, RunsEveryScheduledTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(ThreadPool::Options{4, 0});
    for (int i = 0; i < 100; ++i) {
      pool.Schedule([&ran] { ran.fetch_add(1); });
    }
  }  // Destructor drains, then joins.
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedTasks) {
  // One worker, deep queue: destruction starts with most tasks still queued
  // and every one of them must still run (drain-on-shutdown contract).
  std::atomic<int> ran{0};
  {
    ThreadPool pool(ThreadPool::Options{1, 64});
    for (int i = 0; i < 50; ++i) {
      pool.Schedule([&ran] {
        std::this_thread::sleep_for(milliseconds(1));
        ran.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, DestructionWhileTasksAreBusyJoinsCleanly) {
  std::atomic<int> ran{0};
  Gate gate;
  {
    ThreadPool pool(ThreadPool::Options{2, 0});
    for (int i = 0; i < 2; ++i) {
      pool.Schedule([&] {
        gate.Wait();
        ran.fetch_add(1);
      });
    }
    // Both workers are (about to be) parked inside a task; destruction must
    // wait for them rather than tearing down under their feet.
    gate.Open();
  }
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, BoundedQueueAppliesBackpressure) {
  ThreadPool pool(ThreadPool::Options{1, 2});
  Gate gate;
  pool.Schedule([&gate] { gate.Wait(); });  // Occupies the only worker.
  pool.Schedule([] {});                     // Queue slot 1.
  pool.Schedule([] {});                     // Queue slot 2: queue now full.
  EXPECT_EQ(pool.queue_depth(), 2);

  std::atomic<bool> third_accepted{false};
  std::thread producer([&] {
    pool.Schedule([] {});  // Must block until the worker drains a slot.
    third_accepted.store(true);
  });
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_FALSE(third_accepted.load()) << "Schedule did not block on a full queue";

  gate.Open();
  producer.join();
  EXPECT_TRUE(third_accepted.load());
}

TEST(ThreadPoolTest, ScheduleFromInsideATask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(ThreadPool::Options{2, 0});
    pool.Schedule([&] {
      ran.fetch_add(1);
      pool.Schedule([&ran] { ran.fetch_add(1); });
    });
    // Self-scheduling tasks must quiesce before destruction (Schedule during
    // shutdown is a checked error), so wait for the chain to finish here.
    while (ran.load() < 2) std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, ManyProducersOneConsumerCountsExactly) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(ThreadPool::Options{1, 4});
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&pool, &ran] {
        for (int i = 0; i < 25; ++i) {
          pool.Schedule([&ran] { ran.fetch_add(1); });
        }
      });
    }
    for (std::thread& t : producers) t.join();
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(ThreadPool::Options{4, 0});
  std::vector<std::atomic<int>> counts(100);
  Status s = ParallelFor(&pool, 100, [&counts](int64_t i) {
    counts[static_cast<size_t>(i)].fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  for (const std::atomic<int>& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsSeriallyInOrder) {
  std::vector<int64_t> order;
  Status s = ParallelFor(nullptr, 10, [&order](int64_t i) {
    order.push_back(i);  // Safe: serial fallback runs on this thread only.
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  ASSERT_EQ(order.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ParallelForTest, EmptyAndSingletonRanges) {
  ThreadPool pool(ThreadPool::Options{2, 0});
  int ran = 0;
  EXPECT_TRUE(ParallelFor(&pool, 0, [&](int64_t) {
                ++ran;
                return Status::OK();
              }).ok());
  EXPECT_EQ(ran, 0);
  // n == 1 runs inline on the caller (single-threaded, no pool hop).
  std::thread::id caller = std::this_thread::get_id();
  EXPECT_TRUE(ParallelFor(&pool, 1, [&](int64_t) {
                EXPECT_EQ(std::this_thread::get_id(), caller);
                ++ran;
                return Status::OK();
              }).ok());
  EXPECT_EQ(ran, 1);
}

TEST(ParallelForTest, PropagatesTheError) {
  ThreadPool pool(ThreadPool::Options{4, 0});
  Status s = ParallelFor(&pool, 64, [](int64_t i) {
    if (i == 17) return Status::Internal("iteration 17 failed");
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "iteration 17 failed");
}

TEST(ParallelForTest, ReturnsLowestIndexErrorWhenSeveralFail) {
  ThreadPool pool(ThreadPool::Options{4, 0});
  // Every iteration fails with its own message; whatever subset actually
  // runs before the abort, the reported error is the lowest-index one of
  // the failures that occurred — and index 0 always runs.
  Status s = ParallelFor(&pool, 32, [](int64_t i) {
    if (i == 0) return Status::Internal("iteration 0 failed");
    return Status::FailedPrecondition("later iteration failed");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "iteration 0 failed");
}

TEST(ParallelForTest, AbortSkipsUnstartedIterations) {
  ThreadPool pool(ThreadPool::Options{2, 0});
  std::atomic<int64_t> started{0};
  const int64_t n = 100000;
  Status s = ParallelFor(&pool, n, [&started](int64_t) {
    started.fetch_add(1);
    return Status::Internal("fail fast");
  });
  EXPECT_FALSE(s.ok());
  // The first failure aborts the claim loop; only iterations already
  // claimed by the (at most 3) drivers can still run.
  EXPECT_LT(started.load(), n);
}

// Satellite: pool saturation telemetry. The process-wide cells
// pool.queue_depth / pool.workers_busy / pool.task_wait_us are only written
// when metrics are enabled (tasks are stamped at enqueue time), and the
// gauges must return to zero once the pool drains.
class ThreadPoolMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
    depth_ = reg.GetGauge("pool.queue_depth");
    busy_ = reg.GetGauge("pool.workers_busy");
    wait_ = reg.GetHistogram("pool.task_wait_us",
                             obs::Histogram::ExponentialBounds(10, 2.0, 18));
    depth_->Reset();
    busy_->Reset();
    wait_->Reset();
    reg.SetEnabled(true);
  }
  void TearDown() override {
    obs::MetricsRegistry::Instance().SetEnabled(false);
  }

  obs::Gauge* depth_ = nullptr;
  obs::Gauge* busy_ = nullptr;
  obs::Histogram* wait_ = nullptr;
};

TEST_F(ThreadPoolMetricsTest, GaugesTrackSaturationAndReturnToZero) {
  Gate gate;
  std::atomic<int> parked{0};
  {
    ThreadPool pool(ThreadPool::Options{2, 8});
    for (int i = 0; i < 2; ++i) {
      pool.Schedule([&] {
        parked.fetch_add(1);
        gate.Wait();
      });
    }
    while (parked.load() < 2) std::this_thread::yield();
    EXPECT_EQ(busy_->Value(), 2);  // Both workers inside tasks.

    pool.Schedule([] {});
    pool.Schedule([] {});
    EXPECT_EQ(depth_->Value(), 2);  // Two tasks waiting behind the blockers.
    EXPECT_EQ(pool.queue_depth(), 2);

    gate.Open();
  }  // Destructor drains and joins.
  EXPECT_EQ(busy_->Value(), 0);
  EXPECT_EQ(depth_->Value(), 0);
  // All four tasks were stamped and measured.
  EXPECT_EQ(wait_->Snap().count, 4);
}

TEST_F(ThreadPoolMetricsTest, DisabledRegistryRecordsNothing) {
  obs::MetricsRegistry::Instance().SetEnabled(false);
  {
    ThreadPool pool(ThreadPool::Options{2, 0});
    for (int i = 0; i < 8; ++i) pool.Schedule([] {});
  }
  EXPECT_EQ(wait_->Snap().count, 0);
  EXPECT_EQ(busy_->Value(), 0);
  EXPECT_EQ(depth_->Value(), 0);
}

TEST(ParallelForTest, SerialFallbackStopsAtFirstError) {
  int64_t last_started = -1;
  Status s = ParallelFor(nullptr, 100, [&last_started](int64_t i) {
    last_started = i;
    if (i == 3) return Status::Internal("stop");
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(last_started, 3);
}

}  // namespace
}  // namespace htl
