#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace htl {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const int64_t v = rng.UniformInt(-5, 11);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 11);
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleRangeScales) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble(10.0, 20.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LT(v, 20.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 10'000; ++i) heads += rng.Bernoulli(0.5);
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(23);
  int64_t counts[10] = {};
  for (int i = 0; i < 100'000; ++i) ++counts[rng.UniformInt(0, 9)];
  for (int64_t c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

}  // namespace
}  // namespace htl
