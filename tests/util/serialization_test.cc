#include "storage/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "model/video_builder.h"
#include "testing/helpers.h"
#include "util/rng.h"
#include "workload/casablanca.h"
#include "workload/random_lists.h"
#include "workload/video_gen.h"

namespace htl {
namespace {

using testing::L;
using testing::ListsEqual;

SimilarityList RoundTripList(const SimilarityList& list) {
  std::stringstream buf;
  WriteSimilarityList(list, buf);
  auto back = ReadSimilarityList(buf);
  EXPECT_TRUE(back.ok()) << back.status().ToString();
  return back.ok() ? std::move(back).value() : SimilarityList();
}

TEST(SimListSerializationTest, RoundTripSimple) {
  SimilarityList list = L({{1, 4, 2.5}, {9, 9, 0.125}}, 10.0);
  EXPECT_TRUE(ListsEqual(RoundTripList(list), list));
}

TEST(SimListSerializationTest, RoundTripEmpty) {
  SimilarityList list(7.0);
  SimilarityList back = RoundTripList(list);
  EXPECT_TRUE(back.empty());
  EXPECT_EQ(back.max(), 7.0);
}

TEST(SimListSerializationTest, RoundTripPreservesDoublesExactly) {
  // Awkward doubles (non-representable decimals) must survive bit-exactly.
  SimilarityList list = L({{1, 1, 9.787}, {2, 2, 2.595}, {3, 3, 1.0 / 3.0}}, 9.787);
  SimilarityList back = RoundTripList(list);
  EXPECT_EQ(back, list);  // Exact equality, not near.
}

TEST(SimListSerializationTest, RoundTripRandomLists) {
  Rng rng(3);
  RandomListOptions opts;
  opts.num_segments = 5000;
  for (int i = 0; i < 10; ++i) {
    SimilarityList list = GenerateRandomList(rng, opts);
    EXPECT_TRUE(ListsEqual(RoundTripList(list), list));
  }
}

TEST(SimListSerializationTest, Errors) {
  auto parse = [](const std::string& text) {
    std::stringstream buf(text);
    return ReadSimilarityList(buf).status();
  };
  EXPECT_EQ(parse("").code(), StatusCode::kParseError);
  EXPECT_EQ(parse("wrong-magic 1\n").code(), StatusCode::kParseError);
  EXPECT_EQ(parse("htl-simlist 1\nmax 5\n").code(), StatusCode::kParseError);  // No end.
  EXPECT_EQ(parse("htl-simlist 1\nentry 1 2 3\nend\n").code(),
            StatusCode::kParseError);  // No max.
  EXPECT_EQ(parse("htl-simlist 1\nmax 5\nentry x y z\nend\n").code(),
            StatusCode::kParseError);
  EXPECT_EQ(parse("htl-simlist 1\nmax 5\nbogus\nend\n").code(),
            StatusCode::kParseError);
  // Overlapping entries are rejected by the list invariant.
  EXPECT_FALSE(parse("htl-simlist 1\nmax 5\nentry 1 5 1\nentry 3 9 1\nend\n").ok());
}

VideoTree RoundTripVideo(const VideoTree& video) {
  std::stringstream buf;
  WriteVideo(video, buf);
  auto back = ReadVideo(buf);
  EXPECT_TRUE(back.ok()) << back.status().ToString();
  return back.ok() ? std::move(back).value() : VideoTree::Flat(0);
}

void ExpectVideosEqual(const VideoTree& a, const VideoTree& b) {
  ASSERT_EQ(a.num_levels(), b.num_levels());
  EXPECT_EQ(a.level_names(), b.level_names());
  for (int level = 1; level <= a.num_levels(); ++level) {
    ASSERT_EQ(a.NumSegments(level), b.NumSegments(level)) << "level " << level;
    for (SegmentId id = 1; id <= a.NumSegments(level); ++id) {
      EXPECT_EQ(a.Children(level, id), b.Children(level, id));
      const SegmentMeta& ma = a.Meta(level, id);
      const SegmentMeta& mb = b.Meta(level, id);
      EXPECT_EQ(ma.attributes(), mb.attributes());
      ASSERT_EQ(ma.objects().size(), mb.objects().size());
      for (size_t i = 0; i < ma.objects().size(); ++i) {
        EXPECT_EQ(ma.objects()[i].id, mb.objects()[i].id);
        EXPECT_EQ(ma.objects()[i].attributes, mb.objects()[i].attributes);
      }
      EXPECT_EQ(ma.facts(), mb.facts());
    }
  }
}

TEST(VideoSerializationTest, RoundTripFlatVideo) {
  VideoTree v = VideoTree::Flat(5);
  v.MutableMeta(1, 1).SetAttribute("title", AttrValue("T with spaces"));
  v.MutableMeta(2, 3).AddObject({7, {{"type", AttrValue("person")}}});
  v.MutableMeta(2, 3).AddFact({"holds_gun", {7}});
  ASSERT_OK(v.NameLevel("shot", 2));
  ExpectVideosEqual(v, RoundTripVideo(v));
}

TEST(VideoSerializationTest, RoundTripDeepVideo) {
  VideoBuilder b;
  auto s1 = b.AddChild(b.root());
  auto s2 = b.AddChild(b.root());
  b.AddChildren(s1, 3);
  b.AddChildren(s2, 2);
  b.NameLevel("scene", 2);
  b.NameLevel("shot", 3);
  auto built = std::move(b).Build();
  ASSERT_OK(built.status());
  ExpectVideosEqual(built.value(), RoundTripVideo(built.value()));
}

TEST(VideoSerializationTest, RoundTripCasablanca) {
  VideoTree v = casablanca::MakeVideo();
  ExpectVideosEqual(v, RoundTripVideo(v));
}

TEST(VideoSerializationTest, RoundTripGeneratedVideos) {
  Rng rng(11);
  VideoGenOptions opts;
  opts.levels = 3;
  for (int i = 0; i < 5; ++i) {
    VideoTree v = GenerateVideo(rng, opts);
    ExpectVideosEqual(v, RoundTripVideo(v));
  }
}

TEST(VideoSerializationTest, EscapedStringsSurvive) {
  VideoTree v = VideoTree::Flat(1);
  v.MutableMeta(1, 1).SetAttribute("weird name", AttrValue("line\nbreak \\slash"));
  ExpectVideosEqual(v, RoundTripVideo(v));
}

TEST(VideoSerializationTest, Errors) {
  auto parse = [](const std::string& text) {
    std::stringstream buf(text);
    return ReadVideo(buf).status();
  };
  EXPECT_EQ(parse("").code(), StatusCode::kParseError);
  EXPECT_EQ(parse("htl-video 1\n").code(), StatusCode::kParseError);
  EXPECT_EQ(parse("htl-video 1\nlevels 0\nend\n").code(), StatusCode::kParseError);
  EXPECT_EQ(parse("htl-video 1\nlevels 1\nattr a i1\nend\n").code(),
            StatusCode::kParseError);  // attr before segment.
  EXPECT_EQ(parse("htl-video 1\nlevels 1\nsegment 1 2 0\nend\n").code(),
            StatusCode::kParseError);  // Root id must be 1.
  EXPECT_EQ(parse("htl-video 1\nlevels 1\nsegment 1 1 2\nend\n").code(),
            StatusCode::kParseError);  // Children below last level.
  EXPECT_EQ(parse("htl-video 1\nlevels 2\nsegment 2 1 0\nend\n").code(),
            StatusCode::kParseError);  // Child before parent declared it.
}

TEST(FileIoTest, SaveAndLoadRoundTrip) {
  const std::string dir = ::testing::TempDir();
  const std::string list_path = dir + "/htl_test_list.txt";
  const std::string video_path = dir + "/htl_test_video.txt";

  SimilarityList list = L({{2, 8, 1.5}}, 4.0);
  ASSERT_OK(SaveSimilarityList(list, list_path));
  ASSERT_OK_AND_ASSIGN(SimilarityList list_back, LoadSimilarityList(list_path));
  EXPECT_TRUE(ListsEqual(list_back, list));

  VideoTree v = casablanca::MakeVideo();
  ASSERT_OK(SaveVideo(v, video_path));
  ASSERT_OK_AND_ASSIGN(VideoTree v_back, LoadVideo(video_path));
  ExpectVideosEqual(v, v_back);

  std::remove(list_path.c_str());
  std::remove(video_path.c_str());
}

TEST(FileIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadSimilarityList("/nonexistent/path/x.txt").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(LoadVideo("/nonexistent/path/x.txt").status().code(),
            StatusCode::kNotFound);
}


TEST(StoreSerializationTest, RoundTripMultipleVideos) {
  MetadataStore store;
  store.AddVideo(casablanca::MakeVideo());
  VideoTree small = VideoTree::Flat(2);
  small.MutableMeta(1, 1).SetAttribute("title", AttrValue("Short"));
  store.AddVideo(std::move(small));

  std::stringstream buf;
  WriteStore(store, buf);
  auto back = ReadStore(buf);
  ASSERT_OK(back.status());
  ASSERT_EQ(back.value().num_videos(), 2);
  ExpectVideosEqual(store.Video(1), back.value().Video(1));
  ExpectVideosEqual(store.Video(2), back.value().Video(2));
}

TEST(StoreSerializationTest, EmptyStoreRoundTrips) {
  MetadataStore store;
  std::stringstream buf;
  WriteStore(store, buf);
  auto back = ReadStore(buf);
  ASSERT_OK(back.status());
  EXPECT_EQ(back.value().num_videos(), 0);
}

TEST(StoreSerializationTest, Errors) {
  auto parse = [](const std::string& text) {
    std::stringstream buf(text);
    return ReadStore(buf).status();
  };
  EXPECT_EQ(parse("").code(), StatusCode::kParseError);
  EXPECT_EQ(parse("htl-store 1\n").code(), StatusCode::kParseError);
  EXPECT_EQ(parse("htl-store 1\nvideos -1\n").code(), StatusCode::kParseError);
  EXPECT_EQ(parse("htl-store 1\nvideos 1\n").code(),
            StatusCode::kParseError);  // Missing video block.
}

TEST(StoreSerializationTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/htl_test_store.txt";
  MetadataStore store;
  store.AddVideo(casablanca::MakeVideo());
  ASSERT_OK(SaveStore(store, path));
  ASSERT_OK_AND_ASSIGN(MetadataStore back, LoadStore(path));
  EXPECT_EQ(back.num_videos(), 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace htl
