#include "util/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <type_traits>
#include <utility>

#include "util/logging.h"
#include "util/result.h"

namespace htl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceTheirCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
}

TEST(StatusTest, ExecutionCodesRenderTheirName) {
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(), "DeadlineExceeded: late");
  EXPECT_EQ(Status::Cancelled("stop").ToString(), "Cancelled: stop");
  EXPECT_EQ(Status::ResourceExhausted("rows").ToString(), "ResourceExhausted: rows");
}

TEST(StatusTest, ExecutionPredicatesMatchOnlyTheirCode) {
  const Status deadline = Status::DeadlineExceeded("x");
  const Status cancelled = Status::Cancelled("x");
  const Status exhausted = Status::ResourceExhausted("x");
  const Status other = Status::Internal("x");

  EXPECT_TRUE(deadline.IsDeadlineExceeded());
  EXPECT_FALSE(deadline.IsCancelled());
  EXPECT_FALSE(deadline.IsResourceExhausted());

  EXPECT_TRUE(cancelled.IsCancelled());
  EXPECT_FALSE(cancelled.IsDeadlineExceeded());

  EXPECT_TRUE(exhausted.IsResourceExhausted());
  EXPECT_FALSE(exhausted.IsQueryAbort())
      << "a blown budget is a per-unit fault, not a query-wide abort";

  EXPECT_TRUE(deadline.IsQueryAbort());
  EXPECT_TRUE(cancelled.IsQueryAbort());
  EXPECT_FALSE(other.IsQueryAbort());
  EXPECT_FALSE(Status::OK().IsQueryAbort());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, OkWithMessageNormalizes) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  HTL_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 3;
  EXPECT_EQ(r.value_or(7), 3);
}

Result<int> Doubler(Result<int> in) {
  HTL_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  EXPECT_EQ(Doubler(Status::Internal("boom")).status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Status AlwaysFails() { return Status::Internal("expected"); }

// IgnoreError is the one sanctioned way to drop a [[nodiscard]] Status;
// without it this call would fail to compile under -Werror=unused-result.
TEST(NodiscardTest, IgnoreErrorDiscardsExplicitly) {
  AlwaysFails().IgnoreError();
  Result<int> r = Status::NotFound("gone");
  r.IgnoreError();
  static_assert(
      !std::is_convertible_v<Status, int>,
      "Status must stay an opaque value type, not decay to a success flag");
}

TEST(CheckOkTest, PassesOnOkStatusAndResult) {
  HTL_CHECK_OK(Status::OK());
  HTL_CHECK_OK(Result<int>(3));
  HTL_DCHECK_OK(Status::OK());
}

TEST(CheckOkDeathTest, AbortsWithStatusMessage) {
  EXPECT_DEATH(HTL_CHECK_OK(AlwaysFails()), "Internal: expected");
}

#ifndef NDEBUG
TEST(DcheckDeathTest, ActiveInDebugBuilds) {
  static_assert(HTL_DCHECK_IS_ON(), "Debug builds must enable HTL_DCHECK");
  EXPECT_DEATH(HTL_DCHECK(1 == 2) << "impossible", "Check failed");
  EXPECT_DEATH(HTL_DCHECK_OK(AlwaysFails()), "Internal: expected");
}
#else
TEST(DcheckTest, CompiledOutInReleaseAndDoesNotEvaluate) {
  static_assert(!HTL_DCHECK_IS_ON(), "Release builds must disable HTL_DCHECK");
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return true;
  };
  HTL_DCHECK(count()) << "never printed";
  HTL_DCHECK_OK(AlwaysFails());  // Not evaluated, must not abort.
  EXPECT_EQ(evaluations, 0) << "disabled HTL_DCHECK must not evaluate its condition";
}
#endif

}  // namespace
}  // namespace htl
