#include "util/mutex.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_annotations.h"

namespace htl {
namespace {

TEST(MutexTest, LockUnlockRoundTrip) {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
  // Usable again after a full cycle.
  mu.Lock();
  mu.Unlock();
}

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  // Branch on TryLock directly: the thread-safety analysis only tracks a
  // try-acquire result through an immediate branch condition, not through
  // testing::AssertionResult.
  if (!mu.TryLock()) {
    FAIL() << "TryLock on an uncontended mutex must succeed";
  }
  // Held by this thread: another thread's TryLock must fail.
  bool other_acquired = false;
  std::thread prober([&] {
    if (mu.TryLock()) {
      other_acquired = true;
      mu.Unlock();
    }
  });
  prober.join();
  EXPECT_FALSE(other_acquired);
  mu.Unlock();
  if (!mu.TryLock()) {
    FAIL() << "TryLock must succeed again after Unlock";
  }
  mu.Unlock();
}

TEST(MutexLockTest, MutualExclusionAcrossThreads) {
  struct Shared {
    Mutex mu;
    int64_t counter HTL_GUARDED_BY(mu) = 0;
  } shared;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&shared.mu);
        ++shared.counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(&shared.mu);
  EXPECT_EQ(shared.counter, int64_t{kThreads} * kIncrements);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  struct Shared {
    Mutex mu;
    CondVar cv;
    bool ready HTL_GUARDED_BY(mu) = false;
    bool consumed HTL_GUARDED_BY(mu) = false;
  } shared;
  std::thread consumer([&shared] {
    MutexLock lock(&shared.mu);
    while (!shared.ready) shared.cv.Wait(shared.mu);
    shared.consumed = true;
    shared.cv.NotifyAll();
  });
  {
    MutexLock lock(&shared.mu);
    shared.ready = true;
  }
  shared.cv.NotifyAll();
  {
    MutexLock lock(&shared.mu);
    while (!shared.consumed) shared.cv.Wait(shared.mu);
    EXPECT_TRUE(shared.consumed);
  }
  consumer.join();
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  // Nobody notifies: the timed wait must come back (timeout or a spurious
  // wake) rather than park forever, with the mutex re-held either way.
  const auto status = cv.WaitFor(mu, std::chrono::milliseconds(5));
  (void)status;  // Advisory: spurious wakeups make the value unreliable.
}

}  // namespace
}  // namespace htl
