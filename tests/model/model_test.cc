#include <gtest/gtest.h>

#include "model/segment.h"
#include "model/value.h"
#include "model/video.h"
#include "model/video_builder.h"
#include "testing/helpers.h"

namespace htl {
namespace {

// ---------------------------------------------------------------------------
// AttrValue

TEST(AttrValueTest, Kinds) {
  EXPECT_TRUE(AttrValue().is_null());
  EXPECT_TRUE(AttrValue(int64_t{3}).is_int());
  EXPECT_TRUE(AttrValue(2.5).is_double());
  EXPECT_TRUE(AttrValue("x").is_string());
  EXPECT_TRUE(AttrValue(int64_t{3}).is_numeric());
  EXPECT_TRUE(AttrValue(2.5).is_numeric());
  EXPECT_FALSE(AttrValue("x").is_numeric());
}

TEST(AttrValueTest, NumericEqualityAcrossKinds) {
  EXPECT_EQ(AttrValue(int64_t{3}), AttrValue(3.0));
  EXPECT_FALSE(AttrValue(int64_t{3}) == AttrValue(3.5));
}

TEST(AttrValueTest, NullEqualsOnlyNull) {
  EXPECT_EQ(AttrValue(), AttrValue());
  EXPECT_FALSE(AttrValue() == AttrValue(int64_t{0}));
}

TEST(AttrValueTest, StringsCompareByContent) {
  EXPECT_EQ(AttrValue("abc"), AttrValue("abc"));
  EXPECT_FALSE(AttrValue("abc") == AttrValue("abd"));
  EXPECT_TRUE(AttrValue("abc").LessThan(AttrValue("abd")));
}

TEST(AttrValueTest, LessThanMixedKindsIsFalse) {
  EXPECT_FALSE(AttrValue("5").LessThan(AttrValue(int64_t{6})));
  EXPECT_FALSE(AttrValue().LessThan(AttrValue(int64_t{6})));
}

TEST(AttrValueTest, ToString) {
  EXPECT_EQ(AttrValue().ToString(), "null");
  EXPECT_EQ(AttrValue(int64_t{5}).ToString(), "5");
  EXPECT_EQ(AttrValue("abc").ToString(), "'abc'");
}

// ---------------------------------------------------------------------------
// SegmentMeta

TEST(SegmentMetaTest, AttributesDefaultNull) {
  SegmentMeta meta;
  EXPECT_TRUE(meta.Attribute("missing").is_null());
  meta.SetAttribute("type", AttrValue("western"));
  EXPECT_EQ(meta.Attribute("type"), AttrValue("western"));
}

TEST(SegmentMetaTest, ObjectsSortedAndMerged) {
  SegmentMeta meta;
  meta.AddObject({5, {{"type", AttrValue("person")}}});
  meta.AddObject({2, {}});
  meta.AddObject({5, {{"height", AttrValue(int64_t{3})}}});  // Merge into id 5.
  ASSERT_EQ(meta.objects().size(), 2u);
  EXPECT_EQ(meta.objects()[0].id, 2);
  EXPECT_EQ(meta.objects()[1].id, 5);
  EXPECT_EQ(meta.objects()[1].Attribute("type"), AttrValue("person"));
  EXPECT_EQ(meta.objects()[1].Attribute("height"), AttrValue(int64_t{3}));
}

TEST(SegmentMetaTest, HasObjectAndFind) {
  SegmentMeta meta;
  meta.AddObject({7, {}});
  EXPECT_TRUE(meta.HasObject(7));
  EXPECT_FALSE(meta.HasObject(8));
  EXPECT_NE(meta.FindObject(7), nullptr);
  EXPECT_EQ(meta.FindObject(8), nullptr);
}

TEST(SegmentMetaTest, FactsDedupAndLookup) {
  SegmentMeta meta;
  meta.AddFact({"fires_at", {1, 2}});
  meta.AddFact({"fires_at", {1, 2}});  // Duplicate.
  meta.AddFact({"fires_at", {2, 1}});
  EXPECT_EQ(meta.facts().size(), 2u);
  EXPECT_TRUE(meta.HasFact({"fires_at", {1, 2}}));
  EXPECT_TRUE(meta.HasFact({"fires_at", {2, 1}}));
  EXPECT_FALSE(meta.HasFact({"fires_at", {1, 3}}));
  EXPECT_FALSE(meta.HasFact({"other", {1, 2}}));
}

TEST(SegmentMetaTest, ObjectAttributeDefaultsNull) {
  ObjectAppearance obj{3, {}};
  EXPECT_TRUE(obj.Attribute("height").is_null());
}

// ---------------------------------------------------------------------------
// VideoTree (flat)

TEST(VideoTreeTest, FlatVideoShape) {
  VideoTree v = VideoTree::Flat(5);
  EXPECT_EQ(v.num_levels(), 2);
  EXPECT_EQ(v.NumSegments(1), 1);
  EXPECT_EQ(v.NumSegments(2), 5);
  EXPECT_EQ(v.Children(1, 1), (Interval{1, 5}));
  EXPECT_EQ(v.Parent(2, 3), 1);
  EXPECT_TRUE(v.Children(2, 3).empty());
}

TEST(VideoTreeTest, FlatZeroChildren) {
  VideoTree v = VideoTree::Flat(0);
  EXPECT_EQ(v.num_levels(), 1);
  EXPECT_TRUE(v.Children(1, 1).empty());
}

TEST(VideoTreeTest, DescendantsAtSameLevelIsSelf) {
  VideoTree v = VideoTree::Flat(5);
  EXPECT_EQ(v.DescendantsAtLevel(2, 3, 2), (Interval{3, 3}));
}

TEST(VideoTreeTest, LevelNames) {
  VideoTree v = VideoTree::Flat(5);
  ASSERT_OK(v.NameLevel("shot", 2));
  ASSERT_OK_AND_ASSIGN(int level, v.LevelByName("shot"));
  EXPECT_EQ(level, 2);
  EXPECT_FALSE(v.LevelByName("scene").ok());
  EXPECT_FALSE(v.NameLevel("bad", 9).ok());
}

TEST(VideoTreeTest, TitleFromRootAttribute) {
  VideoTree v = VideoTree::Flat(1);
  EXPECT_EQ(v.Title(), "");
  v.MutableMeta(1, 1).SetAttribute("title", AttrValue("Casablanca"));
  EXPECT_EQ(v.Title(), "Casablanca");
}

// ---------------------------------------------------------------------------
// VideoBuilder (deep trees)

TEST(VideoBuilderTest, BuildsThreeLevels) {
  VideoBuilder b;
  auto s1 = b.AddChild(b.root());
  auto s2 = b.AddChild(b.root());
  b.AddChildren(s1, 3);
  b.AddChildren(s2, 2);
  ASSERT_OK_AND_ASSIGN(VideoTree v, std::move(b).Build());
  EXPECT_EQ(v.num_levels(), 3);
  EXPECT_EQ(v.NumSegments(2), 2);
  EXPECT_EQ(v.NumSegments(3), 5);
  EXPECT_EQ(v.Children(2, 1), (Interval{1, 3}));
  EXPECT_EQ(v.Children(2, 2), (Interval{4, 5}));
  EXPECT_EQ(v.Parent(3, 4), 2);
  EXPECT_EQ(v.DescendantsAtLevel(1, 1, 3), (Interval{1, 5}));
}

TEST(VideoBuilderTest, MetaSurvivesBuild) {
  VideoBuilder b;
  b.Meta(b.root()).SetAttribute("title", AttrValue("T"));
  auto c = b.AddChild(b.root());
  b.Meta(c).SetAttribute("type", AttrValue("scene"));
  ASSERT_OK_AND_ASSIGN(VideoTree v, std::move(b).Build());
  EXPECT_EQ(v.Meta(1, 1).Attribute("title"), AttrValue("T"));
  EXPECT_EQ(v.Meta(2, 1).Attribute("type"), AttrValue("scene"));
}

TEST(VideoBuilderTest, RejectsUnevenLeafDepth) {
  VideoBuilder b;
  auto s1 = b.AddChild(b.root());
  b.AddChild(b.root());  // Leaf at level 2.
  b.AddChild(s1);        // Leaf at level 3.
  auto result = std::move(b).Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(VideoBuilderTest, LevelNamesRegisteredAtBuild) {
  VideoBuilder b;
  auto s = b.AddChild(b.root());
  b.AddChild(s);
  b.NameLevel("scene", 2);
  b.NameLevel("frame", 3);
  ASSERT_OK_AND_ASSIGN(VideoTree v, std::move(b).Build());
  EXPECT_EQ(v.LevelByName("scene").value(), 2);
  EXPECT_EQ(v.LevelByName("frame").value(), 3);
}

TEST(VideoBuilderTest, SiblingOrderPreserved) {
  VideoBuilder b;
  auto a = b.AddChild(b.root());
  auto c = b.AddChild(b.root());
  b.Meta(a).SetAttribute("n", AttrValue(int64_t{1}));
  b.Meta(c).SetAttribute("n", AttrValue(int64_t{2}));
  ASSERT_OK_AND_ASSIGN(VideoTree v, std::move(b).Build());
  EXPECT_EQ(v.Meta(2, 1).Attribute("n"), AttrValue(int64_t{1}));
  EXPECT_EQ(v.Meta(2, 2).Attribute("n"), AttrValue(int64_t{2}));
}

// ---------------------------------------------------------------------------
// MetadataStore

TEST(MetadataStoreTest, AddAndFetchVideos) {
  MetadataStore store;
  EXPECT_EQ(store.num_videos(), 0);
  auto id1 = store.AddVideo(VideoTree::Flat(3));
  auto id2 = store.AddVideo(VideoTree::Flat(7));
  EXPECT_EQ(id1, 1);
  EXPECT_EQ(id2, 2);
  EXPECT_EQ(store.Video(1).NumSegments(2), 3);
  EXPECT_EQ(store.Video(2).NumSegments(2), 7);
  store.MutableVideo(1).MutableMeta(1, 1).SetAttribute("title", AttrValue("A"));
  EXPECT_EQ(store.Video(1).Title(), "A");
}

}  // namespace
}  // namespace htl
