// Transport primitives: deadlines actually expire, peers that vanish
// surface as Unavailable, and cross-thread socket shutdown unsticks a
// blocked reader (the drain path's lever).

#include "net/socket.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "testing/helpers.h"
#include "util/thread_pool.h"

namespace htl::net {
namespace {

struct ListenerFixture {
  Socket listener;
  uint16_t port = 0;
};

ListenerFixture MakeListener() {
  ListenerFixture fx;
  auto listener = ListenOnLoopback(0, 8);
  EXPECT_TRUE(listener.ok()) << listener.status().ToString();
  fx.listener = std::move(*listener);
  auto port = LocalPort(fx.listener);
  EXPECT_TRUE(port.ok()) << port.status().ToString();
  fx.port = *port;
  return fx;
}

TEST(NetSocket, ConnectAcceptRoundTripsBytes) {
  ListenerFixture fx = MakeListener();
  auto client = Connect("127.0.0.1", fx.port, DeadlineAfterMs(1000));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto server = Accept(fx.listener, DeadlineAfterMs(1000));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  const std::string message = "similarity";
  ASSERT_OK(WriteFull(*client, message.data(), message.size(),
                      DeadlineAfterMs(1000)));
  std::string got(message.size(), '\0');
  ASSERT_OK(ReadFull(*server, got.data(), got.size(), DeadlineAfterMs(1000)));
  EXPECT_EQ(got, message);
}

TEST(NetSocket, AcceptTimesOutWithoutConnection) {
  ListenerFixture fx = MakeListener();
  auto conn = Accept(fx.listener, DeadlineAfterMs(30));
  ASSERT_FALSE(conn.ok());
  EXPECT_TRUE(conn.status().IsDeadlineExceeded()) << conn.status().ToString();
}

TEST(NetSocket, ReadTimesOutOnSilentPeer) {
  // The slow-loris shape: a peer that connects and then sends nothing.
  ListenerFixture fx = MakeListener();
  auto client = Connect("127.0.0.1", fx.port, DeadlineAfterMs(1000));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto server = Accept(fx.listener, DeadlineAfterMs(1000));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  char buf[16];
  const Status read = ReadFull(*server, buf, sizeof(buf), DeadlineAfterMs(50));
  EXPECT_TRUE(read.IsDeadlineExceeded()) << read.ToString();
}

TEST(NetSocket, ReadReportsPeerCloseAsUnavailable) {
  ListenerFixture fx = MakeListener();
  auto client = Connect("127.0.0.1", fx.port, DeadlineAfterMs(1000));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto server = Accept(fx.listener, DeadlineAfterMs(1000));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  client->Close();
  char buf[4];
  const Status read = ReadFull(*server, buf, sizeof(buf), DeadlineAfterMs(1000));
  EXPECT_TRUE(read.IsUnavailable()) << read.ToString();
}

TEST(NetSocket, TornMessageReportsBytesSeen) {
  ListenerFixture fx = MakeListener();
  auto client = Connect("127.0.0.1", fx.port, DeadlineAfterMs(1000));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto server = Accept(fx.listener, DeadlineAfterMs(1000));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  ASSERT_OK(WriteFull(*client, "ab", 2, DeadlineAfterMs(1000)));
  client->Close();

  char buf[8];
  size_t seen = 0;
  const Status read =
      ReadFull(*server, buf, sizeof(buf), DeadlineAfterMs(1000), &seen);
  EXPECT_TRUE(read.IsUnavailable()) << read.ToString();
  EXPECT_EQ(seen, 2u);
}

TEST(NetSocket, ConnectToClosedPortIsUnavailable) {
  // Bind a port, learn it, close it — connecting afterwards must be the
  // retryable refusal, not a hang or an Internal error.
  uint16_t dead_port = 0;
  {
    ListenerFixture fx = MakeListener();
    dead_port = fx.port;
  }
  auto conn = Connect("127.0.0.1", dead_port, DeadlineAfterMs(1000));
  ASSERT_FALSE(conn.ok());
  EXPECT_TRUE(conn.status().IsUnavailable()) << conn.status().ToString();
}

TEST(NetSocket, ConnectRejectsHostnames) {
  auto conn = Connect("not-an-ip", 80, DeadlineAfterMs(50));
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetSocket, ShutdownUnsticksBlockedReader) {
  // The drain path's contract: ShutdownBoth() from another thread wakes a
  // reader parked in poll and its read fails cleanly instead of waiting out
  // the full deadline.
  ListenerFixture fx = MakeListener();
  auto client = Connect("127.0.0.1", fx.port, DeadlineAfterMs(1000));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto accepted = Accept(fx.listener, DeadlineAfterMs(1000));
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  auto server = std::make_shared<Socket>(std::move(*accepted));

  Status read_status = Status::OK();
  {
    ThreadPool pool(ThreadPool::Options{.num_threads = 1});
    pool.Schedule([server, &read_status] {
      char buf[4];
      read_status =
          ReadFull(*server, buf, sizeof(buf), DeadlineAfterMs(10'000));
    });
    server->ShutdownBoth();
  }  // Pool destructor joins the reader; a stuck read would hang here.
  EXPECT_FALSE(read_status.ok());
  EXPECT_FALSE(read_status.IsDeadlineExceeded()) << read_status.ToString();
}

}  // namespace
}  // namespace htl::net
