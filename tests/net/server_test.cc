// End-to-end QueryServer robustness: happy paths for both systems, deadline
// mapping, malformed/oversized/slow-loris transport abuse, soft/hard
// watermark shedding, injected net.* and engine faults over the wire, the
// client retry policy, and graceful drain under load.

#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/retrieval.h"
#include "model/video.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "sim/sim_list.h"
#include "testing/helpers.h"
#include "util/fault_point.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/random_lists.h"
#include "workload/video_gen.h"

namespace htl::net {
namespace {

constexpr const char* kQuery =
    "exists x (type(x) = 'person') until exists y (type(y) = 'train')";
// Type-2 query whose quantified conjunction goes through the direct
// engine's table joins — the shape that trips `engine.table_join` and
// charges rows against shed budgets.
constexpr const char* kJoinQuery =
    "exists x (present(x) and moving(x) and eventually armed(x))";
constexpr const char* kSqlQuery = "p0() until eventually p1()";
constexpr int64_t kSqlN = 200;

// The generated videos carry their facts on the shot level; levels above it
// are structural only, so queries are asked at the leaf level.
constexpr int kLevel = 3;

MetadataStore MakeStore(int num_videos) {
  MetadataStore store;
  Rng rng(20260808);
  for (int i = 0; i < num_videos; ++i) {
    VideoGenOptions vopts;
    vopts.min_branching = 2;
    vopts.max_branching = 3;
    store.AddVideo(GenerateVideo(rng, vopts));
  }
  return store;
}

std::map<std::string, SimilarityList> MakeSqlInputs() {
  Rng rng(4242);
  RandomListOptions lopts;
  lopts.num_segments = kSqlN;
  lopts.coverage = 0.25;
  std::map<std::string, SimilarityList> inputs;
  inputs["p0"] = GenerateRandomList(rng, lopts);
  inputs["p1"] = GenerateRandomList(rng, lopts);
  return inputs;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Instance().DisableAll(); }
  void TearDown() override {
    FaultRegistry::Instance().DisableAll();
    if (server_ != nullptr && server_->running()) {
      EXPECT_OK(server_->Shutdown());
    }
  }

  /// Starts a server over a `num_videos`-video store with `options`
  /// (port/listener fields overwritten).
  void StartServer(ServerOptions options, int num_videos = 6) {
    store_ = MakeStore(num_videos);
    options.port = 0;
    server_ = std::make_unique<QueryServer>(&store_, options);
    ASSERT_OK(server_->Start());
  }

  QueryClient MakeClient(int max_attempts = 1) {
    ClientOptions copts;
    copts.port = server_->port();
    copts.max_attempts = max_attempts;
    copts.backoff_initial_ms = 1;
    copts.backoff_max_ms = 4;
    return QueryClient(copts);
  }

  /// Writes raw `bytes` to a fresh connection and decodes one framed
  /// response (the transport-abuse tests speak bytes, not QueryRequests).
  Result<QueryResponse> RawExchange(const std::string& bytes) {
    HTL_ASSIGN_OR_RETURN(
        const Socket conn,
        Connect("127.0.0.1", server_->port(), DeadlineAfterMs(2000)));
    HTL_RETURN_IF_ERROR(
        WriteFull(conn, bytes.data(), bytes.size(), DeadlineAfterMs(2000)));
    uint8_t header[kFrameHeaderBytes];
    HTL_RETURN_IF_ERROR(
        ReadFull(conn, header, sizeof(header), DeadlineAfterMs(2000)));
    HTL_ASSIGN_OR_RETURN(const uint32_t body_len,
                         CheckFrameHeader(header, kDefaultMaxFrameBytes));
    std::string body(body_len, '\0');
    HTL_RETURN_IF_ERROR(
        ReadFull(conn, body.data(), body.size(), DeadlineAfterMs(2000)));
    return DecodeResponse(body);
  }

  /// Opens a connection that sends nothing — admitted by the server, it
  /// occupies an in-flight slot until the read deadline. The watermark
  /// tests park several of these to push the server into each band.
  Result<Socket> OpenIdleConnection() {
    return Connect("127.0.0.1", server_->port(), DeadlineAfterMs(2000));
  }

  /// Waits until the server reports at least `n` sessions in flight.
  void AwaitInFlight(int64_t n) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server_->in_flight() < n &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(server_->in_flight(), n);
  }

  MetadataStore store_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(ServerTest, HtlSegmentsMatchesLocalRetriever) {
  StartServer(ServerOptions{});
  QueryRequest request;
  request.kind = QueryKind::kHtlSegments;
  request.level = kLevel;
  request.k = 10;
  request.query_text = kQuery;
  ASSERT_OK_AND_ASSIGN(QueryResponse response, MakeClient().Query(request));
  ASSERT_TRUE(response.ok()) << response.message;
  EXPECT_FALSE(response.degraded());
  EXPECT_FALSE(response.partial());
  EXPECT_EQ(response.videos_failed, 0);
  EXPECT_EQ(response.videos_evaluated, store_.num_videos());

  // The wire hits are exactly the local Retriever's ranked hits.
  Retriever local(&store_);
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, local.Prepare(kQuery));
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval want,
                       local.TopSegmentsWithReport(*f, kLevel, 10));
  ASSERT_EQ(response.hits.size(), want.hits.size());
  for (size_t i = 0; i < want.hits.size(); ++i) {
    EXPECT_EQ(response.hits[i].video, want.hits[i].video) << "hit " << i;
    EXPECT_EQ(response.hits[i].segment, want.hits[i].segment) << "hit " << i;
    EXPECT_EQ(response.hits[i].actual, want.hits[i].sim.actual) << "hit " << i;
    EXPECT_EQ(response.hits[i].max, want.hits[i].sim.max) << "hit " << i;
  }
}

TEST_F(ServerTest, HtlVideosMatchesLocalRetriever) {
  StartServer(ServerOptions{});
  QueryRequest request;
  request.kind = QueryKind::kHtlVideos;
  request.k = 4;
  request.query_text = "eventually exists x (moving(x))";
  ASSERT_OK_AND_ASSIGN(QueryResponse response, MakeClient().Query(request));
  ASSERT_TRUE(response.ok()) << response.message;

  Retriever local(&store_);
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, local.Prepare(request.query_text));
  ASSERT_OK_AND_ASSIGN(VideoRetrieval want, local.TopVideosWithReport(*f, 4));
  ASSERT_EQ(response.hits.size(), want.hits.size());
  for (size_t i = 0; i < want.hits.size(); ++i) {
    EXPECT_EQ(response.hits[i].video, want.hits[i].video) << "hit " << i;
    EXPECT_EQ(response.hits[i].actual, want.hits[i].sim.actual) << "hit " << i;
  }
}

TEST_F(ServerTest, SqlKindEvaluatesConfiguredInputs) {
  ServerOptions options;
  options.sql_inputs = MakeSqlInputs();
  options.sql_n = kSqlN;
  StartServer(options);

  QueryRequest request;
  request.kind = QueryKind::kSql;
  request.k = 5;
  request.query_text = kSqlQuery;
  ASSERT_OK_AND_ASSIGN(QueryResponse response, MakeClient().Query(request));
  ASSERT_TRUE(response.ok()) << response.message;
  EXPECT_FALSE(response.hits.empty());
  for (const WireHit& hit : response.hits) {
    EXPECT_EQ(hit.video, 0);  // SQL hits address the input relations.
    EXPECT_GT(hit.segment, 0);
    EXPECT_LE(hit.segment, kSqlN);
  }
}

TEST_F(ServerTest, SqlKindWithoutInputsIsUnimplemented) {
  StartServer(ServerOptions{});
  QueryRequest request;
  request.kind = QueryKind::kSql;
  request.query_text = kSqlQuery;
  ASSERT_OK_AND_ASSIGN(QueryResponse response, MakeClient().Query(request));
  EXPECT_EQ(response.status, WireStatus::kWireUnimplemented);
}

TEST_F(ServerTest, ParseErrorComesBackOverTheWire) {
  StartServer(ServerOptions{});
  QueryRequest request;
  request.query_text = "exists x ((((";
  ASSERT_OK_AND_ASSIGN(QueryResponse response, MakeClient().Query(request));
  EXPECT_FALSE(response.ok());
  EXPECT_FALSE(response.message.empty());
}

TEST_F(ServerTest, WantProfileAttachesExplainText) {
  StartServer(ServerOptions{});
  QueryRequest request;
  request.level = kLevel;
  request.query_text = kQuery;
  request.flags = kFlagWantProfile;
  ASSERT_OK_AND_ASSIGN(QueryResponse response, MakeClient().Query(request));
  ASSERT_TRUE(response.ok()) << response.message;
  EXPECT_FALSE(response.message.empty());
}

TEST_F(ServerTest, CacheAndParallelismOptionsAreStable) {
  StartServer(ServerOptions{});
  QueryRequest request;
  request.level = kLevel;
  request.query_text = kQuery;

  ASSERT_OK_AND_ASSIGN(QueryResponse plain, MakeClient().Query(request));
  ASSERT_TRUE(plain.ok()) << plain.message;

  request.use_cache = true;
  ASSERT_OK_AND_ASSIGN(QueryResponse cached1, MakeClient().Query(request));
  ASSERT_OK_AND_ASSIGN(QueryResponse cached2, MakeClient().Query(request));
  request.use_cache = false;
  request.parallelism = 1;
  ASSERT_OK_AND_ASSIGN(QueryResponse serial, MakeClient().Query(request));

  for (const QueryResponse* other : {&cached1, &cached2, &serial}) {
    ASSERT_TRUE(other->ok()) << other->message;
    ASSERT_EQ(other->hits.size(), plain.hits.size());
    for (size_t i = 0; i < plain.hits.size(); ++i) {
      EXPECT_EQ(other->hits[i].video, plain.hits[i].video);
      EXPECT_EQ(other->hits[i].segment, plain.hits[i].segment);
      EXPECT_EQ(other->hits[i].actual, plain.hits[i].actual);
    }
  }
}

TEST_F(ServerTest, ExpiredDefaultDeadlineSurfacesOverTheWire) {
  // default_deadline_ms = 0 maps to an already-expired ExecContext
  // (SetTimeoutMs clamp contract), so every request that relies on the
  // server default must come back kWireDeadlineExceeded — the deterministic
  // proof that deadline_ms really lands on the evaluation context.
  ServerOptions options;
  options.default_deadline_ms = 0;
  StartServer(options);

  QueryRequest request;
  request.level = kLevel;
  request.query_text = kQuery;
  request.deadline_ms = 0;  // "Use the server default" — which is expired.
  ASSERT_OK_AND_ASSIGN(QueryResponse expired, MakeClient().Query(request));
  EXPECT_EQ(expired.status, WireStatus::kWireDeadlineExceeded)
      << expired.message;

  // A generous explicit deadline on the same server succeeds: the request
  // budget, not the server default, is what ran.
  request.deadline_ms = 30'000;
  ASSERT_OK_AND_ASSIGN(QueryResponse fine, MakeClient().Query(request));
  EXPECT_TRUE(fine.ok()) << fine.message;
}

TEST_F(ServerTest, MalformedBodyGetsWellFormedErrorResponse) {
  StartServer(ServerOptions{});
  ASSERT_OK_AND_ASSIGN(const std::string framed,
                       FrameMessage("not a request", kDefaultMaxFrameBytes));
  ASSERT_OK_AND_ASSIGN(QueryResponse response, RawExchange(framed));
  EXPECT_FALSE(response.ok());
  EXPECT_FALSE(response.message.empty());
}

TEST_F(ServerTest, BadMagicGetsErrorResponseAndClose) {
  StartServer(ServerOptions{});
  ASSERT_OK_AND_ASSIGN(QueryResponse response,
                       RawExchange("XXXXXXXXtrailing"));
  EXPECT_EQ(response.status, WireStatus::kWireInvalidArgument);
}

TEST_F(ServerTest, OversizedFrameIsRefusedBeforeAllocation) {
  ServerOptions options;
  options.max_frame_bytes = 1024;
  StartServer(options);
  // Valid magic, length far past the server's cap, no body behind it.
  ASSERT_OK_AND_ASSIGN(std::string framed,
                       FrameMessage("x", kDefaultMaxFrameBytes));
  const uint32_t huge = 64u << 20;
  std::memcpy(framed.data() + 4, &huge, sizeof(huge));
  framed.resize(kFrameHeaderBytes);
  ASSERT_OK_AND_ASSIGN(QueryResponse response, RawExchange(framed));
  EXPECT_EQ(response.status, WireStatus::kWireResourceExhausted);
}

TEST_F(ServerTest, SlowLorisIsDroppedAtReadDeadline) {
  ServerOptions options;
  options.read_timeout_ms = 100;
  StartServer(options);

  ASSERT_OK_AND_ASSIGN(
      const Socket conn,
      Connect("127.0.0.1", server_->port(), DeadlineAfterMs(2000)));
  // Half a header, then silence.
  ASSERT_OK(WriteFull(conn, "HTLQ", 4, DeadlineAfterMs(1000)));
  char buf[1];
  const Status read = ReadFull(conn, buf, sizeof(buf), DeadlineAfterMs(5000));
  // The server hung up on us (no response frame) — and promptly.
  EXPECT_TRUE(read.IsUnavailable()) << read.ToString();
  // The slot was released: a normal request right after succeeds.
  QueryRequest request;
  request.level = kLevel;
  request.query_text = kQuery;
  ASSERT_OK_AND_ASSIGN(QueryResponse response, MakeClient().Query(request));
  EXPECT_TRUE(response.ok()) << response.message;
}

TEST_F(ServerTest, SoftWatermarkShedsToDegradedPartialResults) {
  ServerOptions options;
  options.worker_threads = 4;
  options.soft_watermark = 1;
  options.hard_watermark = 16;
  options.read_timeout_ms = 10'000;  // Keep the parked sessions parked.
  options.shed_budgets = ExecBudgets{.max_rows = 1};  // Shed hard: all fail.
  StartServer(options);

  ASSERT_OK_AND_ASSIGN(const Socket idle1, OpenIdleConnection());
  ASSERT_OK_AND_ASSIGN(const Socket idle2, OpenIdleConnection());
  AwaitInFlight(2);

  QueryRequest request;
  request.level = kLevel;
  request.query_text = kQuery;
  ASSERT_OK_AND_ASSIGN(QueryResponse response,
                       MakeClient().QueryOnce(request));
  ASSERT_TRUE(response.ok()) << response.message;
  EXPECT_TRUE(response.degraded());
  // With a 1-row budget videos blow ResourceExhausted and are skipped: the
  // response is a truthful partial top-k, not an error.
  EXPECT_TRUE(response.partial());
  EXPECT_GT(response.videos_failed, 0);
  EXPECT_EQ(response.videos_failed + response.videos_evaluated,
            store_.num_videos());
  EXPECT_FALSE(response.message.empty());
}

TEST_F(ServerTest, ShedSqlBudgetExhaustionMapsToOverloaded) {
  // SQL statements have no per-video skip path: when the shed budgets fail
  // the whole statement with ResourceExhausted, the server must report the
  // retryable Overloaded refusal (the failure is the server's shedding, not
  // the request — un-shed requests run with unlimited budgets).
  ServerOptions options;
  options.worker_threads = 4;
  options.soft_watermark = 1;
  options.hard_watermark = 16;
  options.read_timeout_ms = 10'000;
  options.shed_budgets = ExecBudgets{.max_rows = 1};
  options.sql_inputs = MakeSqlInputs();
  options.sql_n = kSqlN;
  StartServer(options);

  ASSERT_OK_AND_ASSIGN(const Socket idle1, OpenIdleConnection());
  ASSERT_OK_AND_ASSIGN(const Socket idle2, OpenIdleConnection());
  AwaitInFlight(2);

  QueryRequest request;
  request.kind = QueryKind::kSql;
  request.query_text = kSqlQuery;
  ASSERT_OK_AND_ASSIGN(QueryResponse response,
                       MakeClient().QueryOnce(request));
  EXPECT_EQ(response.status, WireStatus::kWireOverloaded) << response.message;
  EXPECT_TRUE(response.degraded());
}

TEST_F(ServerTest, HardWatermarkRefusesWithOverloaded) {
  ServerOptions options;
  options.worker_threads = 2;
  options.soft_watermark = 1;
  options.hard_watermark = 2;
  options.read_timeout_ms = 10'000;
  StartServer(options);

  ASSERT_OK_AND_ASSIGN(const Socket idle1, OpenIdleConnection());
  ASSERT_OK_AND_ASSIGN(const Socket idle2, OpenIdleConnection());
  AwaitInFlight(2);

  QueryRequest request;
  request.level = kLevel;
  request.query_text = kQuery;
  ASSERT_OK_AND_ASSIGN(QueryResponse response,
                       MakeClient().QueryOnce(request));
  EXPECT_EQ(response.status, WireStatus::kWireOverloaded)
      << response.message;
  EXPECT_FALSE(response.message.empty());
}

TEST_F(ServerTest, NetSessionFaultBecomesWellFormedErrorResponse) {
  StartServer(ServerOptions{});
  FaultRegistry::Instance().Enable(
      "net.session", FaultSpec{.code = StatusCode::kInternal});
  QueryRequest request;
  request.query_text = kQuery;
  ASSERT_OK_AND_ASSIGN(QueryResponse response,
                       MakeClient().QueryOnce(request));
  EXPECT_EQ(response.status, WireStatus::kWireInternal);
  EXPECT_FALSE(response.message.empty());
}

TEST_F(ServerTest, NetReadFrameFaultDropsConnectionCleanly) {
  StartServer(ServerOptions{});
  FaultRegistry::Instance().Enable(
      "net.read_frame", FaultSpec{.code = StatusCode::kInternal});
  QueryRequest request;
  request.query_text = kQuery;
  auto response = MakeClient().QueryOnce(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsUnavailable())
      << response.status().ToString();

  // Disarm: the server survived and serves normally again.
  FaultRegistry::Instance().DisableAll();
  ASSERT_OK_AND_ASSIGN(QueryResponse ok_response,
                       MakeClient().QueryOnce(request));
  EXPECT_TRUE(ok_response.ok()) << ok_response.message;
}

TEST_F(ServerTest, NetWriteFrameFaultDropsResponseCleanly) {
  StartServer(ServerOptions{});
  FaultRegistry::Instance().Enable(
      "net.write_frame", FaultSpec{.code = StatusCode::kInternal});
  QueryRequest request;
  request.query_text = kQuery;
  auto response = MakeClient().QueryOnce(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsUnavailable())
      << response.status().ToString();
}

TEST_F(ServerTest, NetAcceptFaultDropsConnectionAndKeepsServing) {
  StartServer(ServerOptions{});
  FaultRegistry::Instance().Enable(
      "net.accept",
      FaultSpec{.code = StatusCode::kInternal, .fire_on_hit = 1, .sticky = false});
  QueryRequest request;
  request.query_text = kQuery;
  auto dropped = MakeClient().QueryOnce(request);
  EXPECT_FALSE(dropped.ok());
  // Fault fired once; the next connection is served.
  ASSERT_OK_AND_ASSIGN(QueryResponse response,
                       MakeClient().QueryOnce(request));
  EXPECT_TRUE(response.ok()) << response.message;
}

// Satellite: a fault injected at engine.table_join must surface over the
// wire as a *degraded* (partial) response with the skipped-video counts
// intact — the RetrievalReport contract does not stop at the process edge.
TEST_F(ServerTest, EngineFaultSurfacesAsPartialResponseOverWire) {
  StartServer(ServerOptions{});
  FaultRegistry::Instance().Enable(
      "engine.table_join", FaultSpec{.code = StatusCode::kInternal});

  QueryRequest request;
  request.level = kLevel;
  request.query_text = kJoinQuery;  // Table joins in every video.
  ASSERT_OK_AND_ASSIGN(QueryResponse response, MakeClient().Query(request));
  ASSERT_TRUE(response.ok()) << response.message;
  EXPECT_TRUE(response.partial());
  EXPECT_GT(response.videos_failed, 0);

  // The wire counts are exactly what a local run under the same sticky
  // fault reports — skipped-video truth survives the process edge.
  Retriever local(&store_);
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, local.Prepare(kJoinQuery));
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval want,
                       local.TopSegmentsWithReport(*f, kLevel, 10));
  EXPECT_EQ(response.videos_failed, want.report.videos_failed);
  EXPECT_EQ(response.videos_evaluated, want.report.videos_evaluated);
  EXPECT_EQ(response.hits.size(), want.hits.size());
  // The summary names the failure so operators can tell shed from broken.
  EXPECT_FALSE(response.message.empty());
}

TEST_F(ServerTest, StartTwiceIsFailedPrecondition) {
  StartServer(ServerOptions{});
  const Status again = server_->Start();
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServerTest, ShutdownIsIdempotent) {
  StartServer(ServerOptions{});
  ASSERT_OK(server_->Shutdown());
  EXPECT_FALSE(server_->running());
  ASSERT_OK(server_->Shutdown());
}

TEST_F(ServerTest, DrainUnderLoadFinishesInFlightAndRefusesNew) {
  ServerOptions options;
  options.worker_threads = 4;
  options.hard_watermark = 64;
  options.default_deadline_ms = 5000;
  options.drain_deadline_ms = 3000;
  StartServer(options, /*num_videos=*/8);
  const uint16_t port = server_->port();

  // Client load: fire requests as fast as they complete, from 4 threads,
  // while the main thread shuts the server down. Every outcome must be
  // well-formed: a decoded response or a clean transport error.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> ok_count{0};
  std::atomic<int64_t> refused_count{0};
  std::atomic<int64_t> transport_count{0};
  std::atomic<int64_t> malformed_count{0};
  {
    ThreadPool clients(ThreadPool::Options{.num_threads = 4});
    for (int t = 0; t < 4; ++t) {
      clients.Schedule([&, t] {
        ClientOptions copts;
        copts.port = port;
        copts.max_attempts = 1;
        const QueryClient client(copts);
        QueryRequest request;
        request.level = kLevel;
        request.k = 5;
        request.query_text = kQuery;
        request.parallelism = 1;
        request.use_cache = (t % 2 == 0);
        while (!stop.load(std::memory_order_acquire)) {
          auto response = client.QueryOnce(request);
          if (response.ok()) {
            if (response->ok() || response->partial()) {
              ok_count.fetch_add(1, std::memory_order_relaxed);
            } else if (response->status == WireStatus::kWireOverloaded) {
              refused_count.fetch_add(1, std::memory_order_relaxed);
            } else {
              malformed_count.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (response.status().IsUnavailable() ||
                     response.status().IsDeadlineExceeded()) {
            transport_count.fetch_add(1, std::memory_order_relaxed);
          } else {
            malformed_count.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }

    // Let load build, then drain while requests are in the air.
    while (ok_count.load(std::memory_order_relaxed) < 8) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const Status drained = server_->Shutdown();
    stop.store(true, std::memory_order_release);
    EXPECT_OK(drained);
  }  // Client pool joins here.

  EXPECT_EQ(server_->in_flight(), 0);
  EXPECT_FALSE(server_->running());
  EXPECT_GE(ok_count.load(), 8);
  EXPECT_EQ(malformed_count.load(), 0)
      << "torn frames or unexpected statuses during drain";
}

class ClientRetryTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Instance().DisableAll(); }
  void TearDown() override { FaultRegistry::Instance().DisableAll(); }
};

TEST_F(ClientRetryTest, BackoffScheduleIsCappedExponential) {
  ClientOptions options;
  options.backoff_initial_ms = 10;
  options.backoff_max_ms = 50;
  options.backoff_multiplier = 2.0;
  EXPECT_EQ(QueryClient::BackoffDelayMs(options, 0), 0);
  EXPECT_EQ(QueryClient::BackoffDelayMs(options, 1), 10);
  EXPECT_EQ(QueryClient::BackoffDelayMs(options, 2), 20);
  EXPECT_EQ(QueryClient::BackoffDelayMs(options, 3), 40);
  EXPECT_EQ(QueryClient::BackoffDelayMs(options, 4), 50);   // Capped.
  EXPECT_EQ(QueryClient::BackoffDelayMs(options, 60), 50);  // Stays capped.

  ClientOptions no_backoff;
  no_backoff.backoff_initial_ms = 0;
  EXPECT_EQ(QueryClient::BackoffDelayMs(no_backoff, 3), 0);
}

TEST_F(ClientRetryTest, RetriesTransportUnavailableExactlyMaxAttempts) {
  // A server whose write path always faults: every attempt reaches the
  // server (the frame is read) and then the connection drops. The trace
  // counts net.read_frame hits == attempts.
  MetadataStore store = MakeStore(2);
  QueryServer server(&store, ServerOptions{});
  ASSERT_OK(server.Start());
  FaultRegistry::Instance().Enable(
      "net.write_frame", FaultSpec{.code = StatusCode::kInternal});
  FaultRegistry::Instance().StartTrace();

  ClientOptions copts;
  copts.port = server.port();
  copts.max_attempts = 3;
  copts.backoff_initial_ms = 1;
  copts.backoff_max_ms = 2;
  const QueryClient client(copts);
  QueryRequest request;
  request.query_text = kQuery;
  auto response = client.Query(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsUnavailable())
      << response.status().ToString();
  EXPECT_EQ(FaultRegistry::Instance().TraceHits()["net.write_frame"], 3);

  FaultRegistry::Instance().DisableAll();
  ASSERT_OK(server.Shutdown());
}

TEST_F(ClientRetryTest, NeverRetriesDeadlineExceeded) {
  // A listener that accepts nothing: the client's read times out. One
  // connection lands in the backlog; a retry would enqueue a second.
  auto listener = ListenOnLoopback(0, 8);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  ASSERT_OK_AND_ASSIGN(const uint16_t port, LocalPort(*listener));

  ClientOptions copts;
  copts.port = port;
  copts.max_attempts = 5;
  copts.io_timeout_ms = 100;
  copts.backoff_initial_ms = 1;
  const QueryClient client(copts);
  QueryRequest request;
  request.query_text = kQuery;
  auto response = client.Query(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsDeadlineExceeded())
      << response.status().ToString();

  // Exactly one connection was attempted: the first accept succeeds, the
  // second finds an empty backlog.
  auto first = Accept(*listener, DeadlineAfterMs(1000));
  EXPECT_TRUE(first.ok()) << first.status().ToString();
  auto second = Accept(*listener, DeadlineAfterMs(100));
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsDeadlineExceeded());
}

TEST_F(ClientRetryTest, FinalOverloadedResponseIsReturnedVerbatim) {
  // Hard watermark 1 + a parked session: every attempt is refused; after
  // max_attempts the client hands back the server's refusal, not a
  // synthetic error.
  MetadataStore store = MakeStore(2);
  ServerOptions options;
  options.worker_threads = 1;
  options.soft_watermark = 1;
  options.hard_watermark = 1;
  options.read_timeout_ms = 10'000;
  QueryServer server(&store, options);
  ASSERT_OK(server.Start());

  ASSERT_OK_AND_ASSIGN(
      const Socket idle,
      Connect("127.0.0.1", server.port(), DeadlineAfterMs(2000)));
  const auto park_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.in_flight() < 1 &&
         std::chrono::steady_clock::now() < park_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.in_flight(), 1);

  ClientOptions copts;
  copts.port = server.port();
  copts.max_attempts = 3;
  copts.backoff_initial_ms = 1;
  const QueryClient client(copts);
  QueryRequest request;
  request.query_text = kQuery;
  ASSERT_OK_AND_ASSIGN(QueryResponse response, client.Query(request));
  EXPECT_EQ(response.status, WireStatus::kWireOverloaded);

  ASSERT_OK(server.Shutdown());
}

}  // namespace
}  // namespace htl::net
