// Hostile-input property suite: random, truncated, and overlong byte
// strings fed through the frame decoder and both text parsers (HTL and
// SQL) must produce a clean non-OK Status — never a crash, hang, over-read,
// or undefined behaviour. CI runs this binary under ASan/UBSan, which turns
// "never over-reads" from a hope into a checked property.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <string_view>

#include "htl/parser.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "sql/parser.h"
#include "util/rng.h"

namespace htl::net {
namespace {

std::string RandomBytes(Rng& rng, size_t len) {
  std::string bytes(len, '\0');
  for (char& c : bytes) {
    c = static_cast<char>(rng.UniformInt(0, 255));
  }
  return bytes;
}

// Flip `flips` random bytes of `body` in place.
void Corrupt(Rng& rng, std::string& body, int flips) {
  if (body.empty()) return;
  for (int i = 0; i < flips; ++i) {
    const auto pos =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(body.size()) - 1));
    body[pos] = static_cast<char>(rng.UniformInt(0, 255));
  }
}

// Every decoder under test, applied to one byte string. The assertions are
// only "returns" and "no sanitizer report" — a decode that *succeeds* on
// garbage is fine as long as it read only in bounds.
void FeedAllDecoders(std::string_view bytes) {
  DecodeRequest(bytes).IgnoreError();
  DecodeResponse(bytes).IgnoreError();
  DecodeAdminRequest(bytes).IgnoreError();
  DecodeAdminResponse(bytes).IgnoreError();
  if (bytes.size() >= kFrameHeaderBytes) {
    uint8_t header[kFrameHeaderBytes];
    std::memcpy(header, bytes.data(), sizeof(header));
    CheckFrameHeader(header, kDefaultMaxFrameBytes).IgnoreError();
  }
  ParseFormula(bytes).IgnoreError();
  sql::ParseStatement(bytes).IgnoreError();
}

TEST(NetHostileInput, RandomBytesNeverCrashDecoders) {
  Rng rng(0xB0B0'CAFE);
  for (int round = 0; round < 2000; ++round) {
    const auto len = static_cast<size_t>(rng.UniformInt(0, 256));
    FeedAllDecoders(RandomBytes(rng, len));
  }
}

TEST(NetHostileInput, TruncatedValidFramesFailCleanly) {
  QueryRequest request;
  request.query_text = "exists x (type(x) = 'person') until moving(x)";
  const std::string body = EncodeRequest(request);
  for (size_t len = 0; len < body.size(); ++len) {
    auto decoded = DecodeRequest(std::string_view(body).substr(0, len));
    EXPECT_FALSE(decoded.ok());
  }

  QueryResponse response;
  response.hits.push_back(WireHit{1, 2, 3.0, 4.0});
  response.message = "note";
  const std::string resp_body = EncodeResponse(response);
  for (size_t len = 0; len < resp_body.size(); ++len) {
    auto decoded = DecodeResponse(std::string_view(resp_body).substr(0, len));
    EXPECT_FALSE(decoded.ok());
  }
}

TEST(NetHostileInput, TruncatedAdminFramesFailCleanly) {
  AdminRequest request;
  request.verb = AdminVerb::kSlowlog;
  request.arg = 64;
  const std::string body = EncodeAdminRequest(request);
  for (size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(DecodeAdminRequest(std::string_view(body).substr(0, len)).ok());
  }

  AdminResponse response;
  response.body = "{\"state\": \"accepting\"}";
  const std::string resp_body = EncodeAdminResponse(response);
  for (size_t len = 0; len < resp_body.size(); ++len) {
    EXPECT_FALSE(
        DecodeAdminResponse(std::string_view(resp_body).substr(0, len)).ok());
  }
}

TEST(NetHostileInput, OverlongValidFramesFailCleanly) {
  Rng rng(0xDEAD'F00D);
  QueryRequest request;
  request.query_text = "eventually moving(x)";
  std::string body = EncodeRequest(request);
  for (int extra = 1; extra <= 64; extra *= 2) {
    std::string overlong = body + RandomBytes(rng, static_cast<size_t>(extra));
    EXPECT_FALSE(DecodeRequest(overlong).ok())
        << extra << " trailing bytes accepted";
  }
}

TEST(NetHostileInput, CorruptedValidFramesNeverCrash) {
  Rng rng(0x5EED'5EED);
  QueryRequest request;
  request.k = 100;
  request.deadline_ms = 50;
  request.query_text = "exists z (present(z) and armed(z))";
  const std::string clean = EncodeRequest(request);
  for (int round = 0; round < 2000; ++round) {
    std::string corrupted = clean;
    Corrupt(rng, corrupted, static_cast<int>(rng.UniformInt(1, 8)));
    FeedAllDecoders(corrupted);
  }
}

TEST(NetHostileInput, RandomTextNeverCrashesParsers) {
  // Printable-ish garbage exercises deeper parser paths than raw bytes
  // (more tokens survive the lexer).
  Rng rng(0x7E57'7E57);
  const std::string_view alphabet =
      "abcxyz0189 ()[]<>='\"“”\\;.,-+*/\t\n_~!?%&|^";
  for (int round = 0; round < 2000; ++round) {
    const auto len = static_cast<size_t>(rng.UniformInt(0, 128));
    std::string text(len, ' ');
    for (char& c : text) {
      c = alphabet[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(alphabet.size()) - 1))];
    }
    ParseFormula(text).IgnoreError();
    sql::ParseStatement(text).IgnoreError();
  }
}

TEST(NetHostileInput, DeeplyNestedTextFailsWithoutOverflow) {
  // A parser without a depth guard would recurse ~100k frames deep here.
  const std::string deep(100'000, '(');
  ParseFormula(deep).IgnoreError();
  sql::ParseStatement("SELECT " + deep).IgnoreError();
}

}  // namespace
}  // namespace htl::net
