// Wire framing and codec: round-trips are lossless, headers are validated
// before any allocation, and every malformed body decodes to a clean error.

#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "net/protocol.h"
#include "testing/helpers.h"
#include "util/status.h"

namespace htl::net {
namespace {

using ::htl::testing::ErrorText;

QueryRequest SampleRequest() {
  QueryRequest request;
  request.kind = QueryKind::kHtlSegments;
  request.level = 2;
  request.k = 7;
  request.deadline_ms = 250;
  request.use_cache = true;
  request.parallelism = 1;
  request.flags = kFlagWantProfile;
  request.query_text = "exists x (type(x) = 'person')";
  return request;
}

TEST(NetFrame, RequestRoundTrip) {
  const QueryRequest request = SampleRequest();
  const std::string body = EncodeRequest(request);
  auto decoded = DecodeRequest(body);
  ASSERT_TRUE(decoded.ok()) << ErrorText(decoded);
  EXPECT_EQ(decoded->kind, request.kind);
  EXPECT_EQ(decoded->level, request.level);
  EXPECT_EQ(decoded->k, request.k);
  EXPECT_EQ(decoded->deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded->use_cache, request.use_cache);
  EXPECT_EQ(decoded->parallelism, request.parallelism);
  EXPECT_EQ(decoded->flags, request.flags);
  EXPECT_EQ(decoded->query_text, request.query_text);
}

TEST(NetFrame, ResponseRoundTrip) {
  QueryResponse response;
  response.status = WireStatus::kWireOk;
  response.flags = kFlagDegraded | kFlagPartial;
  response.videos_evaluated = 9;
  response.videos_failed = 3;
  response.hits.push_back(WireHit{4, 17, 2.5, 20.0});
  response.hits.push_back(WireHit{1, 3, 0.5, 20.0});
  response.message = "3 videos skipped";

  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << ErrorText(decoded);
  EXPECT_EQ(decoded->status, response.status);
  EXPECT_EQ(decoded->flags, response.flags);
  EXPECT_TRUE(decoded->degraded());
  EXPECT_TRUE(decoded->partial());
  EXPECT_EQ(decoded->videos_evaluated, 9);
  EXPECT_EQ(decoded->videos_failed, 3);
  ASSERT_EQ(decoded->hits.size(), 2u);
  EXPECT_EQ(decoded->hits[0].video, 4);
  EXPECT_EQ(decoded->hits[0].segment, 17);
  EXPECT_EQ(decoded->hits[0].actual, 2.5);
  EXPECT_EQ(decoded->hits[0].max, 20.0);
  EXPECT_EQ(decoded->message, response.message);
}

TEST(NetFrame, DecodeRejectsWrongVersion) {
  std::string body = EncodeRequest(SampleRequest());
  body[0] = static_cast<char>(kProtocolVersion + 1);
  auto decoded = DecodeRequest(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetFrame, DecodeRejectsUnknownKind) {
  std::string body = EncodeRequest(SampleRequest());
  body[1] = static_cast<char>(200);
  EXPECT_FALSE(DecodeRequest(body).ok());
}

TEST(NetFrame, DecodeRejectsTruncationAtEveryLength) {
  const std::string body = EncodeRequest(SampleRequest());
  for (size_t len = 0; len < body.size(); ++len) {
    auto decoded = DecodeRequest(std::string_view(body).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
  }
}

TEST(NetFrame, DecodeRejectsTrailingGarbage) {
  std::string body = EncodeRequest(SampleRequest());
  body.push_back('\0');
  EXPECT_FALSE(DecodeRequest(body).ok());

  QueryResponse response;
  std::string resp_body = EncodeResponse(response);
  resp_body += "xx";
  EXPECT_FALSE(DecodeResponse(resp_body).ok());
}

TEST(NetFrame, DecodeResponseRejectsHostileHitCount) {
  // A response body claiming 2^31 hits with no hit bytes behind the claim
  // must fail the arithmetic check, not attempt the allocation.
  QueryResponse response;
  std::string body = EncodeResponse(response);
  // num_hits is the u32 after version(1) + status(1) + flags(1) + two i64s.
  const size_t num_hits_off = 3 + 8 + 8;
  const uint32_t hostile = 0x80000000u;
  std::memcpy(body.data() + num_hits_off, &hostile, sizeof(hostile));
  auto decoded = DecodeResponse(body);
  ASSERT_FALSE(decoded.ok());
}

TEST(NetFrame, FrameMessageRoundTripsThroughHeaderCheck) {
  const std::string body = EncodeRequest(SampleRequest());
  auto framed = FrameMessage(body, kDefaultMaxFrameBytes);
  ASSERT_TRUE(framed.ok()) << ErrorText(framed);
  ASSERT_EQ(framed->size(), kFrameHeaderBytes + body.size());

  uint8_t header[kFrameHeaderBytes];
  std::memcpy(header, framed->data(), sizeof(header));
  auto body_len = CheckFrameHeader(header, kDefaultMaxFrameBytes);
  ASSERT_TRUE(body_len.ok()) << ErrorText(body_len);
  EXPECT_EQ(*body_len, body.size());
  EXPECT_EQ(framed->substr(kFrameHeaderBytes), body);
}

TEST(NetFrame, FrameMessageRejectsOversizedBody) {
  const std::string big(1025, 'q');
  auto framed = FrameMessage(big, 1024);
  ASSERT_FALSE(framed.ok());
  EXPECT_EQ(framed.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetFrame, CheckFrameHeaderRejectsBadMagic) {
  uint8_t header[kFrameHeaderBytes] = {'B', 'A', 'D', '!', 0, 0, 0, 0};
  auto body_len = CheckFrameHeader(header, kDefaultMaxFrameBytes);
  ASSERT_FALSE(body_len.ok());
  EXPECT_EQ(body_len.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetFrame, CheckFrameHeaderRejectsOversizedLength) {
  // Valid magic, length just past the cap: the memory-bomb rejection.
  auto framed = FrameMessage("x", kDefaultMaxFrameBytes);
  ASSERT_TRUE(framed.ok()) << ErrorText(framed);
  uint8_t header[kFrameHeaderBytes];
  std::memcpy(header, framed->data(), sizeof(header));
  const uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(header + 4, &huge, sizeof(huge));
  auto body_len = CheckFrameHeader(header, kDefaultMaxFrameBytes);
  ASSERT_FALSE(body_len.ok());
  EXPECT_EQ(body_len.status().code(), StatusCode::kResourceExhausted);
}

TEST(NetFrame, WireStatusMapsUnavailableToOverloaded) {
  EXPECT_EQ(WireStatusFromCode(StatusCode::kUnavailable),
            WireStatus::kWireOverloaded);
  const Status back = StatusFromWire(WireStatus::kWireOverloaded, "shed");
  EXPECT_TRUE(back.IsUnavailable());
}

TEST(NetFrame, EmptyQueryTextRoundTrips) {
  QueryRequest request;
  request.query_text.clear();
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << ErrorText(decoded);
  EXPECT_TRUE(decoded->query_text.empty());
}

}  // namespace
}  // namespace htl::net
