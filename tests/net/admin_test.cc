// End-to-end telemetry plane: every admin verb over the wire, wide events
// for every request outcome (including undecodable frames), slowlog profile
// retention and Chrome-trace export, admin availability while the query port
// sheds and while the server drains, the stall watchdog's healthz verdict,
// net.admin.* fault injection, and garbage bytes on the admin port.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "net/client.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "testing/helpers.h"
#include "util/fault_point.h"
#include "util/rng.h"
#include "workload/video_gen.h"

namespace htl::net {
namespace {

constexpr const char* kQuery =
    "exists x (type(x) = 'person') until exists y (type(y) = 'train')";
constexpr int kLevel = 3;

MetadataStore MakeStore(int num_videos) {
  MetadataStore store;
  Rng rng(20260808);
  for (int i = 0; i < num_videos; ++i) {
    VideoGenOptions vopts;
    vopts.min_branching = 2;
    vopts.max_branching = 3;
    store.AddVideo(GenerateVideo(rng, vopts));
  }
  return store;
}

class AdminServerTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Instance().DisableAll(); }
  void TearDown() override {
    FaultRegistry::Instance().DisableAll();
    if (server_ != nullptr && server_->running()) {
      EXPECT_OK(server_->Shutdown());
    }
  }

  void StartServer(ServerOptions options, int num_videos = 6) {
    store_ = MakeStore(num_videos);
    options.port = 0;
    options.admin_port = 0;
    server_ = std::make_unique<QueryServer>(&store_, options);
    ASSERT_OK(server_->Start());
    ASSERT_NE(server_->admin_port(), 0);
    ASSERT_NE(server_->admin_port(), server_->port());
  }

  QueryClient MakeQueryClient() {
    ClientOptions copts;
    copts.port = server_->port();
    copts.max_attempts = 1;
    return QueryClient(copts);
  }

  AdminClient MakeAdminClient() {
    ClientOptions copts;
    copts.port = server_->admin_port();
    return AdminClient(copts);
  }

  /// An admitted query-port connection that sends nothing: occupies an
  /// in-flight slot until its read deadline (the overload/watchdog tests).
  Result<Socket> OpenIdleConnection() {
    return Connect("127.0.0.1", server_->port(), DeadlineAfterMs(2000));
  }

  /// The wide event lands *after* the response is written (the client can
  /// observe the response first), so log assertions poll briefly.
  void AwaitWideEvents(uint64_t n) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server_->query_log().total_recorded() < n &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(server_->query_log().total_recorded(), n);
  }

  void AwaitInFlight(int64_t n) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server_->in_flight() < n &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(server_->in_flight(), n);
  }

  /// Writes raw `bytes` to the admin port and decodes one framed
  /// AdminResponse (the transport-abuse tests speak bytes, not verbs).
  Result<AdminResponse> RawAdminExchange(const std::string& bytes) {
    HTL_ASSIGN_OR_RETURN(
        const Socket conn,
        Connect("127.0.0.1", server_->admin_port(), DeadlineAfterMs(2000)));
    HTL_RETURN_IF_ERROR(
        WriteFull(conn, bytes.data(), bytes.size(), DeadlineAfterMs(2000)));
    uint8_t header[kFrameHeaderBytes];
    HTL_RETURN_IF_ERROR(
        ReadFull(conn, header, sizeof(header), DeadlineAfterMs(2000)));
    HTL_ASSIGN_OR_RETURN(const uint32_t body_len,
                         CheckFrameHeader(header, kDefaultMaxFrameBytes));
    std::string body(body_len, '\0');
    HTL_RETURN_IF_ERROR(
        ReadFull(conn, body.data(), body.size(), DeadlineAfterMs(2000)));
    return DecodeAdminResponse(body);
  }

  MetadataStore store_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(AdminServerTest, ServesEveryVerbOnAFreshServer) {
  StartServer(ServerOptions{});
  const AdminClient admin = MakeAdminClient();

  ASSERT_OK_AND_ASSIGN(const std::string text,
                       admin.Fetch(AdminVerb::kMetricsText));
  EXPECT_NE(text.find("net.admin.requests"), std::string::npos) << text;
  EXPECT_NE(text.find("net.request.latency_us"), std::string::npos);

  ASSERT_OK_AND_ASSIGN(const std::string json,
                       admin.Fetch(AdminVerb::kMetricsJson));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);

  ASSERT_OK_AND_ASSIGN(const std::string healthz,
                       admin.Fetch(AdminVerb::kHealthz));
  EXPECT_NE(healthz.find("\"state\": \"accepting\""), std::string::npos)
      << healthz;
  EXPECT_NE(healthz.find("\"healthy\": true"), std::string::npos);
  EXPECT_NE(healthz.find("\"in_flight\": 0"), std::string::npos);
  EXPECT_NE(healthz.find("\"uptime_s\": "), std::string::npos);

  ASSERT_OK_AND_ASSIGN(const std::string slowlog,
                       admin.Fetch(AdminVerb::kSlowlog));
  EXPECT_NE(slowlog.find("\"count\": 0"), std::string::npos) << slowlog;

  // No query has run, so no profile is retained: trace is a clean error.
  auto trace = admin.Fetch(AdminVerb::kTrace);
  EXPECT_FALSE(trace.ok());
}

TEST_F(AdminServerTest, SlowQueryLandsInSlowlogWithExportableTrace) {
  ServerOptions options;
  // Any real request takes >= 1us, so this threshold makes every request
  // "slow" — a deterministic injected slow query.
  options.query_log.slow_threshold_us = 1;
  StartServer(options);

  QueryRequest request;
  request.level = kLevel;
  request.k = 10;
  request.query_text = kQuery;
  ASSERT_OK_AND_ASSIGN(QueryResponse response,
                       MakeQueryClient().QueryOnce(request));
  ASSERT_TRUE(response.ok()) << response.message;

  // The wide event recorded every field of the request's life.
  AwaitWideEvents(1);
  ASSERT_EQ(server_->query_log().total_recorded(), 1u);
  ASSERT_GE(server_->query_log().retained_profiles(), 1u);
  const auto tail = server_->query_log().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  const obs::QueryLogRecord& record = tail[0].record;
  EXPECT_EQ(record.query, kQuery);
  EXPECT_NE(record.fingerprint, 0u);
  EXPECT_EQ(record.kind, 0);  // kHtlSegments.
  EXPECT_EQ(record.wire_status, 0);
  EXPECT_EQ(record.level, kLevel);
  EXPECT_EQ(record.k, 10);
  EXPECT_EQ(record.deadline_ms, 1000);  // Server default applied.
  EXPECT_GT(record.total_us, 0);
  EXPECT_GE(record.total_us,
            record.decode_us + record.execute_us + record.encode_us);
  EXPECT_EQ(record.videos_evaluated, 6);
  EXPECT_EQ(record.videos_failed, 0);
  EXPECT_FALSE(record.formula_class.empty());  // stage.classify note.
  ASSERT_NE(tail[0].profile, nullptr);
  EXPECT_NE(tail[0].profile->Find("stage.execute"), nullptr);

  const AdminClient admin = MakeAdminClient();
  ASSERT_OK_AND_ASSIGN(const std::string slowlog,
                       admin.Fetch(AdminVerb::kSlowlog));
  EXPECT_NE(slowlog.find("\"count\": 1"), std::string::npos) << slowlog;
  EXPECT_NE(slowlog.find("\"has_profile\": true"), std::string::npos);
  EXPECT_NE(slowlog.find("person"), std::string::npos);

  // arg 0 = newest retained profile; the export is a Chrome trace with the
  // engine's stage spans in it.
  ASSERT_OK_AND_ASSIGN(const std::string trace,
                       admin.Fetch(AdminVerb::kTrace, 0));
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"stage.execute\""), std::string::npos)
      << trace;
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);

  // The same export by explicit record id.
  ASSERT_OK_AND_ASSIGN(
      const std::string by_id,
      admin.Fetch(AdminVerb::kTrace, static_cast<int64_t>(record.id)));
  EXPECT_EQ(by_id, trace);

  // A record id that never existed is a clean NotFound, not a crash.
  EXPECT_FALSE(admin.Fetch(AdminVerb::kTrace, 999'999).ok());
}

TEST_F(AdminServerTest, FastQueriesRecordWideEventsWithoutRetainingProfiles) {
  ServerOptions options;
  options.query_log.slow_threshold_us = -1;  // Never retain.
  StartServer(options);
  QueryRequest request;
  request.level = kLevel;
  request.query_text = kQuery;
  ASSERT_OK_AND_ASSIGN(QueryResponse response,
                       MakeQueryClient().QueryOnce(request));
  ASSERT_TRUE(response.ok()) << response.message;
  AwaitWideEvents(1);
  EXPECT_EQ(server_->query_log().total_recorded(), 1u);
  EXPECT_EQ(server_->query_log().retained_profiles(), 0u);
  EXPECT_FALSE(MakeAdminClient().Fetch(AdminVerb::kTrace).ok());
}

TEST_F(AdminServerTest, UndecodableFrameStillLandsAWideEvent) {
  StartServer(ServerOptions{});
  // A well-formed frame whose body is garbage: the server answers a
  // well-formed error AND the request appears in the query log with the
  // undecodable marker — no request escapes the wide-event record.
  ASSERT_OK_AND_ASSIGN(const std::string framed,
                       FrameMessage("not a request", kDefaultMaxFrameBytes));
  ASSERT_OK_AND_ASSIGN(
      const Socket conn,
      Connect("127.0.0.1", server_->port(), DeadlineAfterMs(2000)));
  ASSERT_OK(WriteFull(conn, framed.data(), framed.size(),
                      DeadlineAfterMs(2000)));
  uint8_t header[kFrameHeaderBytes];
  ASSERT_OK(ReadFull(conn, header, sizeof(header), DeadlineAfterMs(2000)));

  AwaitWideEvents(1);
  const auto tail = server_->query_log().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].record.kind, 0xFF);      // Never decoded.
  EXPECT_NE(tail[0].record.wire_status, 0);  // And not OK.
  EXPECT_GT(tail[0].record.total_us, 0);
}

TEST_F(AdminServerTest, AdminAnswersWhileQueryPortSheds) {
  ServerOptions options;
  options.worker_threads = 2;
  options.soft_watermark = 1;
  options.hard_watermark = 2;
  options.read_timeout_ms = 10'000;
  StartServer(options);

  // Park the query port at its hard watermark: new query connections are
  // refused outright.
  ASSERT_OK_AND_ASSIGN(const Socket idle1, OpenIdleConnection());
  ASSERT_OK_AND_ASSIGN(const Socket idle2, OpenIdleConnection());
  AwaitInFlight(2);

  QueryRequest request;
  request.level = kLevel;
  request.query_text = kQuery;
  ASSERT_OK_AND_ASSIGN(QueryResponse refused,
                       MakeQueryClient().QueryOnce(request));
  EXPECT_EQ(refused.status, WireStatus::kWireOverloaded);

  // The telemetry plane is exempt from admission control: metrics and
  // healthz answer while the query port sheds, and healthz names the state.
  const AdminClient admin = MakeAdminClient();
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(const std::string healthz,
                         admin.Fetch(AdminVerb::kHealthz));
    EXPECT_NE(healthz.find("\"state\": \"shedding\""), std::string::npos)
        << healthz;
    EXPECT_NE(healthz.find("\"in_flight\": 2"), std::string::npos);
    ASSERT_OK_AND_ASSIGN(const std::string text,
                         admin.Fetch(AdminVerb::kMetricsText));
    EXPECT_NE(text.find("net.admin.requests"), std::string::npos);
  }
}

TEST_F(AdminServerTest, HealthzReportsDrainingDuringShutdown) {
  ServerOptions options;
  options.read_timeout_ms = 10'000;
  options.drain_deadline_ms = 2000;
  StartServer(options);
  // A parked session keeps the drain in its "natural drain" phase long
  // enough to scrape healthz mid-shutdown.
  std::optional<Socket> idle;
  {
    ASSERT_OK_AND_ASSIGN(Socket conn, OpenIdleConnection());
    idle.emplace(std::move(conn));
  }
  AwaitInFlight(1);

  std::thread shutdown([&] { EXPECT_OK(server_->Shutdown()); });
  const AdminClient admin = MakeAdminClient();
  bool saw_draining = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1500);
  while (!saw_draining && std::chrono::steady_clock::now() < deadline) {
    auto healthz = admin.Fetch(AdminVerb::kHealthz);
    if (healthz.ok() &&
        healthz->find("\"state\": \"draining\"") != std::string::npos) {
      saw_draining = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  shutdown.join();
  EXPECT_TRUE(saw_draining)
      << "admin plane never reported draining during shutdown";
  // Phase 5 retired the admin listener: the telemetry plane is gone only
  // after the drain completed.
  EXPECT_FALSE(server_->running());
  EXPECT_FALSE(admin.Fetch(AdminVerb::kHealthz).ok());
}

TEST_F(AdminServerTest, WatchdogFlagsStalledSessionAndHealsOnitsEnd) {
  ServerOptions options;
  options.read_timeout_ms = 5000;
  options.watchdog_stall_ms = 50;  // Everything parked >50ms is a stall.
  StartServer(options);
  const AdminClient admin = MakeAdminClient();

  std::optional<Socket> idle;
  {
    ASSERT_OK_AND_ASSIGN(Socket conn, OpenIdleConnection());
    idle.emplace(std::move(conn));
  }
  AwaitInFlight(1);

  // The watchdog rides the admin accept tick, so the flag lands within a
  // tick or two of the bound.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_->stalled_sessions() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(server_->stalled_sessions(), 0);
  ASSERT_OK_AND_ASSIGN(std::string healthz, admin.Fetch(AdminVerb::kHealthz));
  EXPECT_NE(healthz.find("\"healthy\": false"), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("\"stalled_sessions\": 1"), std::string::npos);

  // Closing the stalled client ends its session; healthz heals.
  idle.reset();
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_->stalled_sessions() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->stalled_sessions(), 0);
  ASSERT_OK_AND_ASSIGN(healthz, admin.Fetch(AdminVerb::kHealthz));
  EXPECT_NE(healthz.find("\"healthy\": true"), std::string::npos) << healthz;

  // The stall was counted durably even though the gauge healed.
  EXPECT_GE(
      obs::MetricsRegistry::Instance().GetCounter("net.watchdog.stalls")
          ->Value(),
      1);
}

TEST_F(AdminServerTest, AdminFaultPointsDropConnectionsAndKeepServing) {
  StartServer(ServerOptions{});
  const AdminClient admin = MakeAdminClient();

  for (const char* point :
       {"net.admin.accept", "net.admin.read_frame", "net.admin.write_frame"}) {
    FaultRegistry::Instance().Enable(
        point, FaultSpec{.code = StatusCode::kInternal, .fire_on_hit = 1,
                         .sticky = false});
    EXPECT_FALSE(admin.Fetch(AdminVerb::kHealthz).ok())
        << point << " did not drop the exchange";
    // Fault fired once; the plane keeps serving.
    ASSERT_OK_AND_ASSIGN(const std::string healthz,
                         admin.Fetch(AdminVerb::kHealthz));
    EXPECT_NE(healthz.find("\"state\": \"accepting\""), std::string::npos);
    FaultRegistry::Instance().DisableAll();
  }
}

TEST_F(AdminServerTest, GarbageOnTheAdminPortFailsCleanly) {
  StartServer(ServerOptions{});

  // Valid frame, garbage body: a well-formed error response.
  ASSERT_OK_AND_ASSIGN(const std::string framed,
                       FrameMessage("\xde\xad\xbe\xef", kDefaultMaxFrameBytes));
  ASSERT_OK_AND_ASSIGN(AdminResponse response, RawAdminExchange(framed));
  EXPECT_FALSE(response.ok());
  EXPECT_FALSE(response.body.empty());

  // Garbage header (bad magic): a well-formed error response too — the
  // transport still worked, so the peer learns *why* it was rejected.
  ASSERT_OK_AND_ASSIGN(AdminResponse bad_magic,
                       RawAdminExchange("no magic here, just junk bytes"));
  EXPECT_FALSE(bad_magic.ok());

  // Unknown verb byte inside a valid frame: rejected by the decoder.
  AdminRequest request;
  request.verb = AdminVerb::kHealthz;
  std::string body = EncodeAdminRequest(request);
  body[1] = '\x7F';  // Corrupt the verb field.
  ASSERT_OK_AND_ASSIGN(const std::string bad_verb,
                       FrameMessage(body, kDefaultMaxFrameBytes));
  ASSERT_OK_AND_ASSIGN(response, RawAdminExchange(bad_verb));
  EXPECT_FALSE(response.ok());

  // And the plane still serves after all of that.
  ASSERT_OK_AND_ASSIGN(const std::string healthz,
                       MakeAdminClient().Fetch(AdminVerb::kHealthz));
  EXPECT_NE(healthz.find("\"healthy\": true"), std::string::npos);
  EXPECT_GE(
      obs::MetricsRegistry::Instance().GetCounter("net.admin.errors")->Value(),
      3);
}

}  // namespace
}  // namespace htl::net
