// Control case for the negative-compile harness: uses the same wrappers and
// annotations as the *_fail.cc cases but locks correctly, so it must compile
// under -Wthread-safety -Werror=thread-safety. If this case breaks, the
// harness itself (flags, include path, wrapper headers) is broken and the
// FAIL cases prove nothing.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() HTL_EXCLUDES(mu_) {
    htl::MutexLock lock(&mu_);
    ++value_;
  }

  int ValueLocked() const HTL_REQUIRES(mu_) { return value_; }

  int Read() HTL_EXCLUDES(mu_) {
    htl::MutexLock lock(&mu_);
    return ValueLocked();
  }

 private:
  mutable htl::Mutex mu_;
  int value_ HTL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Read();
}
