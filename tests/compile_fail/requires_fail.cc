// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety: calls an
// HTL_REQUIRES(mu_) method without holding the capability. Companion to
// guarded_member_fail.cc — this one proves call-contract checking is armed,
// not just member-access checking.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  int ValueLocked() const HTL_REQUIRES(mu_) { return value_; }

  int Read() {
    return ValueLocked();  // BUG: mu_ not held -> -Wthread-safety error.
  }

 private:
  mutable htl::Mutex mu_;
  int value_ HTL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.Read();
}
