# Script-mode driver for one negative-compile case (see CMakeLists.txt here).
#
# Inputs (all -D):
#   CHECK_SCRIPT_COMPILER  clang++ to invoke
#   CHECK_SCRIPT_INCLUDE   repo src/ include root
#   CHECK_SCRIPT_WORKDIR   scratch dir for the object file
#   CHECK_SCRIPT_SOURCE    the .cc under test
#   CHECK_SCRIPT_EXPECT    SUCCEED | FAIL
#
# FAIL cases must not merely fail — the diagnostic must come from the
# thread-safety analysis ("-Wthread-safety" appears in Clang's output),
# so an unrelated compile error (typo, missing header) cannot masquerade
# as the analysis firing.

foreach(var COMPILER INCLUDE WORKDIR SOURCE EXPECT)
  if(NOT DEFINED CHECK_SCRIPT_${var})
    message(FATAL_ERROR "compile_fail_check.cmake: missing CHECK_SCRIPT_${var}")
  endif()
endforeach()

get_filename_component(case_name "${CHECK_SCRIPT_SOURCE}" NAME_WE)
set(obj "${CHECK_SCRIPT_WORKDIR}/${case_name}.o")

execute_process(
  COMMAND "${CHECK_SCRIPT_COMPILER}"
    -std=c++20 -c "${CHECK_SCRIPT_SOURCE}" -o "${obj}"
    -I "${CHECK_SCRIPT_INCLUDE}"
    -Wthread-safety -Werror=thread-safety
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)
set(diag "${out}${err}")

if(CHECK_SCRIPT_EXPECT STREQUAL "SUCCEED")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "control case ${case_name} failed to compile (rc=${rc}) — the harness "
      "flags or include paths are broken:\n${diag}")
  endif()
elseif(CHECK_SCRIPT_EXPECT STREQUAL "FAIL")
  if(rc EQUAL 0)
    message(FATAL_ERROR
      "${case_name} compiled cleanly — the thread-safety analysis is NOT "
      "armed (expected a -Wthread-safety error)")
  endif()
  if(NOT diag MATCHES "thread-safety")
    message(FATAL_ERROR
      "${case_name} failed for the wrong reason (no thread-safety "
      "diagnostic in the output):\n${diag}")
  endif()
else()
  message(FATAL_ERROR "CHECK_SCRIPT_EXPECT must be SUCCEED or FAIL, "
                      "got '${CHECK_SCRIPT_EXPECT}'")
endif()
