// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety: acquires a
// Mutex directly and returns without releasing it. Proves the acquire /
// release bookkeeping on htl::Mutex::Lock / Unlock is armed — the scenario
// the MutexLock RAII wrapper exists to make impossible.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

htl::Mutex g_mu;
int g_value HTL_GUARDED_BY(g_mu) = 0;

int LeakyRead() {
  g_mu.Lock();
  return g_value;  // BUG: returns with g_mu held -> -Wthread-safety error.
}

}  // namespace

int main() { return LeakyRead(); }
