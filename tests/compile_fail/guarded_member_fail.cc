// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety: writes an
// HTL_GUARDED_BY member without holding its mutex. If this compiles, the
// analysis is disarmed (wrong flags, or the annotation macros expanded to
// nothing) — tests/compile_fail/CMakeLists.txt turns that into a test
// failure.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // BUG: no lock held -> -Wthread-safety error expected here.
  }

 private:
  htl::Mutex mu_;
  int value_ HTL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
