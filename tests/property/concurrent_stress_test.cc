// Randomized concurrent stress over one shared Retriever: query threads
// issue a mix of strict, report-carrying, and profiled retrievals (some
// under deadlines or mid-flight cancellation) while a churn thread hammers
// the metrics registry with Snapshot()/ResetAll(). The assertions are
// weak on purpose — no crash, no hang, every Status a sanctioned one, every
// report internally consistent — because the real oracle is TSan: this test
// runs under the tsan preset (CI job `tsan`) where any data race in the
// pool, the retriever's engine cache, or the obs layer is a hard failure.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "engine/exec_context.h"
#include "engine/retrieval.h"
#include "model/video.h"
#include "obs/metrics.h"
#include "testing/helpers.h"
#include "util/fault_point.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/video_gen.h"

namespace htl {
namespace {

bool IsSanctioned(const Status& s) {
  return s.ok() || s.code() == StatusCode::kDeadlineExceeded ||
         s.code() == StatusCode::kCancelled;
}

void ExpectConsistent(const RetrievalReport& report, int64_t num_videos) {
  EXPECT_LE(report.videos_evaluated + report.videos_failed, num_videos);
  EXPECT_EQ(report.failures.size(), static_cast<size_t>(report.videos_failed));
  EXPECT_LE(report.videos_degraded, report.videos_evaluated);
}

TEST(ConcurrentStressTest, MixedQueriesAgainstOneRetrieverWithMetricsChurn) {
  FaultRegistry::Instance().DisableAll();
  MetadataStore store;
  Rng corpus_rng(424242);
  for (int i = 0; i < 8; ++i) {
    VideoGenOptions vopts;
    vopts.levels = 3;
    vopts.min_branching = 2;
    vopts.max_branching = 3;
    store.AddVideo(GenerateVideo(corpus_rng, vopts));
  }

  ThreadPool pool(ThreadPool::Options{4, 0});
  QueryOptions options;
  options.parallelism = 4;
  options.thread_pool = &pool;
  // Every evaluation runs the interpreter AND the bytecode VM and
  // cross-checks them bit for bit — under TSan this also races two
  // executors over the shared per-engine caches.
  options.engine_mode = EngineMode::kDifferential;
  Retriever retriever(&store, options);  // ONE retriever, shared by all threads.

  ASSERT_OK_AND_ASSIGN(
      FormulaPtr query,
      retriever.Prepare(
          "exists x (present(x) and moving(x) and eventually armed(x))"));

  constexpr int kQueryThreads = 4;
  constexpr int kRoundsPerThread = 12;
  std::atomic<bool> stop_churn{false};
  std::atomic<int> failures{0};

  std::thread churn([&] {
    while (!stop_churn.load(std::memory_order_relaxed)) {
      obs::MetricsRegistry::Instance().Snapshot();
      obs::MetricsRegistry::Instance().ResetAll();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kQueryThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 7919 + 13);
      for (int round = 0; round < kRoundsPerThread; ++round) {
        const int64_t pick = rng.UniformInt(0, 4);
        if (pick == 0) {
          auto r = retriever.TopSegmentsWithReport(*query, 3, 5);
          if (!IsSanctioned(r.status())) failures.fetch_add(1);
          if (r.ok()) ExpectConsistent(r.value().report, store.num_videos());
        } else if (pick == 1) {
          auto r = retriever.TopVideosWithReport(*query, 5);
          if (!IsSanctioned(r.status())) failures.fetch_add(1);
          if (r.ok()) ExpectConsistent(r.value().report, store.num_videos());
        } else if (pick == 2) {
          // Profiled: each query thread owns its trace; worker sub-traces
          // are stitched back on this thread only.
          auto r = retriever.TopSegmentsProfiled(*query, 3, 5);
          if (!IsSanctioned(r.status())) failures.fetch_add(1);
          if (r.ok()) ExpectConsistent(r.value().report, store.num_videos());
        } else if (pick == 3) {
          // A deadline that expires mid-flight on some runs.
          ExecContext ctx;
          ctx.SetTimeout(std::chrono::microseconds(rng.UniformInt(0, 200)));
          auto r = retriever.TopSegmentsWithReport(*query, 3, 5, &ctx);
          if (!IsSanctioned(r.status())) failures.fetch_add(1);
        } else {
          // Cancellation raced from a sibling thread against the run.
          ExecContext ctx;
          std::thread canceller([&ctx] { ctx.Cancel(); });
          auto r = retriever.TopSegmentsWithReport(*query, 3, 5, &ctx);
          canceller.join();
          if (!IsSanctioned(r.status())) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop_churn.store(true, std::memory_order_relaxed);
  churn.join();

  EXPECT_EQ(failures.load(), 0) << "a concurrent query returned an unsanctioned status";

  // The retriever still answers correctly after the storm.
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval after,
                       retriever.TopSegmentsWithReport(*query, 3, 5));
  EXPECT_TRUE(after.report.complete()) << after.report.ToString();
}

TEST(ConcurrentStressTest, ShardedPrunedRetrievalUnderFaultAndEpochChurn) {
  // The scale-out path under fire: a sharded, pruning Retriever shared by
  // racing query threads while a churn thread (a) arms and disarms the
  // engine.shard_dispatch and engine.bound_compute fault points mid-flight,
  // (b) bumps the store epoch so the per-video VideoStats and engine caches
  // rebuild under contention, and a sibling thread races Cancel() against
  // some runs. TSan is the oracle for the shared prune floor (the CAS-max
  // atomic), the stats cache's two-lock discipline, and the fault registry;
  // in debug builds the HTL_DCHECK inside PruneFloor::Publish additionally
  // asserts the floor never moves backwards.
  FaultRegistry::Instance().DisableAll();
  MetadataStore store;
  Rng corpus_rng(515151);
  CorpusGenOptions corpus;
  corpus.num_videos = 12;
  corpus.video.levels = 2;
  corpus.video.min_branching = 3;
  corpus.video.max_branching = 5;
  corpus.selective_fraction = 0.3;
  corpus.size_skew = 0.25;
  corpus.seed = 515151;
  GenerateCorpus(corpus, &store);

  ThreadPool pool(ThreadPool::Options{4, 0});
  QueryOptions options;
  options.parallelism = 4;
  options.num_shards = 4;
  options.prune = true;
  options.thread_pool = &pool;
  Retriever retriever(&store, options);  // ONE retriever, shared by all threads.

  ASSERT_OK_AND_ASSIGN(
      FormulaPtr query,
      retriever.Prepare("exists x (type(x) = 'zeppelin' and rare_event(x))"));
  ASSERT_OK_AND_ASSIGN(FormulaPtr broad,
                       retriever.Prepare("exists x (moving(x))"));

  constexpr int kQueryThreads = 4;
  constexpr int kRoundsPerThread = 10;
  std::atomic<bool> stop_churn{false};
  std::atomic<int> failures{0};

  std::thread churn([&] {
    Rng rng(771);
    while (!stop_churn.load(std::memory_order_relaxed)) {
      FaultSpec spec;
      spec.probability = 0.3;
      FaultRegistry::Instance().Enable("engine.shard_dispatch", spec);
      FaultRegistry::Instance().Enable("engine.bound_compute", spec);
      std::this_thread::yield();
      store.BumpEpoch();  // Invalidate every cached engine and VideoStats.
      std::this_thread::yield();
      FaultRegistry::Instance().DisableAll();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kQueryThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 104729 + 7);
      for (int round = 0; round < kRoundsPerThread; ++round) {
        const Formula& f = rng.Bernoulli(0.5) ? *query : *broad;
        const int64_t pick = rng.UniformInt(0, 2);
        if (pick == 0) {
          auto r = retriever.TopSegmentsWithReport(f, 2, 3);
          if (!IsSanctioned(r.status())) failures.fetch_add(1);
          if (r.ok()) {
            const RetrievalReport& report = r.value().report;
            ExpectConsistent(report, store.num_videos());
            // Pruning must stay truthful even under churn: the counter
            // matches the skip list and no video is double-counted.
            EXPECT_EQ(report.videos_pruned,
                      static_cast<int64_t>(report.pruned_videos.size()));
            EXPECT_LE(report.videos_evaluated + report.videos_failed +
                          report.videos_pruned,
                      store.num_videos());
          }
        } else if (pick == 1) {
          auto r = retriever.TopVideosWithReport(f, 3);
          if (!IsSanctioned(r.status())) failures.fetch_add(1);
          if (r.ok()) ExpectConsistent(r.value().report, store.num_videos());
        } else {
          ExecContext ctx;
          std::thread canceller([&ctx] { ctx.Cancel(); });
          auto r = retriever.TopSegmentsWithReport(f, 2, 3, &ctx);
          canceller.join();
          if (!IsSanctioned(r.status())) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop_churn.store(true, std::memory_order_relaxed);
  churn.join();
  FaultRegistry::Instance().DisableAll();

  EXPECT_EQ(failures.load(), 0) << "a concurrent query returned an unsanctioned status";

  // Fault-free, churn-free epilogue: the shared retriever still produces a
  // complete, correctly pruned answer.
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval after,
                       retriever.TopSegmentsWithReport(*query, 2, 3));
  EXPECT_TRUE(after.report.complete()) << after.report.ToString();
  QueryOptions plain;
  plain.parallelism = 1;
  Retriever reference(&store, plain);
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval want,
                       reference.TopSegmentsWithReport(*query, 2, 3));
  ASSERT_EQ(after.hits.size(), want.hits.size());
  for (size_t i = 0; i < want.hits.size(); ++i) {
    EXPECT_EQ(after.hits[i].video, want.hits[i].video);
    EXPECT_EQ(after.hits[i].segment, want.hits[i].segment);
    EXPECT_TRUE(after.hits[i].sim == want.hits[i].sim);
  }
}

TEST(ConcurrentStressTest, ConcurrentStrictQueriesShareEngineCache) {
  // Strict Top* calls racing over the same cold Retriever: the per-video
  // engine cache is created under contention and every thread must see the
  // same exact answers as a lone serial run.
  FaultRegistry::Instance().DisableAll();
  MetadataStore store;
  Rng corpus_rng(99173);
  for (int i = 0; i < 6; ++i) {
    VideoGenOptions vopts;
    vopts.levels = 2;
    vopts.min_branching = 4;
    vopts.max_branching = 8;
    store.AddVideo(GenerateVideo(corpus_rng, vopts));
  }
  QueryOptions serial_options;
  serial_options.parallelism = 1;
  Retriever reference(&store, serial_options);
  ASSERT_OK_AND_ASSIGN(
      FormulaPtr query,
      reference.Prepare("exists x (type(x) = 'person') until exists y (moving(y))"));
  ASSERT_OK_AND_ASSIGN(std::vector<SegmentHit> want,
                       reference.TopSegments(*query, 2, 6));

  ThreadPool pool(ThreadPool::Options{2, 0});
  QueryOptions options;
  options.parallelism = 2;
  options.thread_pool = &pool;
  Retriever shared(&store, options);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 8; ++round) {
        auto got = shared.TopSegments(*query, 2, 6);
        if (!got.ok() || got.value().size() != want.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < want.size(); ++i) {
          if (!(got.value()[i].video == want[i].video &&
                got.value()[i].segment == want[i].segment &&
                got.value()[i].sim == want[i].sim)) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace htl
