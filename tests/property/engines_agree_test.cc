// The central correctness property of the reproduction: on random videos
// and random (extended-)conjunctive formulas, the optimized similarity-list
// engine of section 3 computes exactly the similarity semantics of section
// 2.5 as realized by the brute-force reference evaluator.

#include <gtest/gtest.h>

#include "engine/direct_engine.h"
#include "engine/reference_engine.h"
#include "htl/binder.h"
#include "testing/helpers.h"
#include "util/rng.h"
#include "workload/formula_gen.h"
#include "workload/video_gen.h"

namespace htl {
namespace {

using testing::ListsNear;

void CompareEnginesOnSeed(uint64_t seed, bool allow_or, bool allow_level,
                          int video_levels, bool allow_closed_not = false) {
  Rng rng(seed);
  VideoGenOptions vopts;
  vopts.levels = video_levels;
  vopts.min_branching = video_levels == 2 ? 6 : 2;
  vopts.max_branching = video_levels == 2 ? 12 : 4;
  vopts.num_objects = 4;
  VideoTree video = GenerateVideo(rng, vopts);

  FormulaGenOptions fopts;
  fopts.max_depth = 3;
  fopts.allow_or = allow_or;
  fopts.allow_level = allow_level;
  fopts.allow_closed_not = allow_closed_not;
  fopts.max_levels = video.num_levels();

  DirectEngine direct(&video);
  ReferenceEngine reference(&video);
  for (int trial = 0; trial < 8; ++trial) {
    FormulaPtr f = GenerateFormula(rng, fopts);
    Status bound = Bind(f.get());
    ASSERT_TRUE(bound.ok()) << bound.ToString() << "\n" << f->ToString();
    // Evaluate at the leaf level (or below the level operator's source).
    const int level = allow_level ? 2 : video.num_levels();
    auto got = direct.EvaluateList(level, *f);
    auto want = reference.EvaluateList(level, *f);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString() << "\nformula: " << f->ToString();
    EXPECT_TRUE(ListsNear(got.value(), want.value(), 1e-9))
        << "seed " << seed << " formula: " << f->ToString();
  }
}

class EnginesAgreeTest : public ::testing::TestWithParam<int> {};

TEST_P(EnginesAgreeTest, FlatVideoConjunctive) {
  CompareEnginesOnSeed(static_cast<uint64_t>(GetParam()), /*allow_or=*/false,
                       /*allow_level=*/false, /*video_levels=*/2);
}

TEST_P(EnginesAgreeTest, FlatVideoWithOrExtension) {
  CompareEnginesOnSeed(static_cast<uint64_t>(GetParam()) + 500, /*allow_or=*/true,
                       /*allow_level=*/false, /*video_levels=*/2);
}

TEST_P(EnginesAgreeTest, DeepVideoExtendedConjunctive) {
  CompareEnginesOnSeed(static_cast<uint64_t>(GetParam()) + 1000, /*allow_or=*/false,
                       /*allow_level=*/true, /*video_levels=*/3);
}

TEST_P(EnginesAgreeTest, FlatVideoWithClosedNegation) {
  CompareEnginesOnSeed(static_cast<uint64_t>(GetParam()) + 1500, /*allow_or=*/true,
                       /*allow_level=*/false, /*video_levels=*/2,
                       /*allow_closed_not=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginesAgreeTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace htl
