// Parity of the two systems of section 4: the direct list algebra and the
// SQL translation must produce identical similarity lists for random
// type (1) formulas on random inputs ("Both approaches produced identical
// final values as well as identical intermediate similarity tables").

#include <gtest/gtest.h>

#include "engine/direct_engine.h"
#include "sql/sql_system.h"
#include "testing/helpers.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/random_lists.h"

namespace htl {
namespace {

using testing::ListsEqual;

constexpr int64_t kN = 200;

// Random type (1) formula over predicates p0..p3 (plus `or` extension).
FormulaPtr RandomType1(Rng& rng, int depth) {
  if (depth <= 0) {
    return MakePredicate(StrCat("p", rng.UniformInt(0, 3)), {});
  }
  switch (rng.UniformInt(0, 5)) {
    case 0:
      return MakeAnd(RandomType1(rng, depth - 1), RandomType1(rng, depth - 1));
    case 1:
      return MakeUntil(RandomType1(rng, depth - 1), RandomType1(rng, depth - 1));
    case 2:
      return MakeEventually(RandomType1(rng, depth - 1));
    case 3:
      return MakeNext(RandomType1(rng, depth - 1));
    case 4:
      return MakeOr(RandomType1(rng, depth - 1), RandomType1(rng, depth - 1));
    default:
      return MakePredicate(StrCat("p", rng.UniformInt(0, 3)), {});
  }
}

class SqlParityTest : public ::testing::TestWithParam<int> {};

TEST_P(SqlParityTest, SqlMatchesDirectOnRandomFormulas) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 13);
  RandomListOptions lopts;
  lopts.num_segments = kN;
  lopts.coverage = 0.25;
  lopts.mean_run = 3;
  lopts.max_sim = 16.0;

  std::map<std::string, SimilarityList> inputs;
  for (int i = 0; i < 4; ++i) {
    inputs[StrCat("p", i)] = GenerateRandomList(rng, lopts);
  }
  sql::SqlSystem sys;
  for (int trial = 0; trial < 4; ++trial) {
    FormulaPtr f = RandomType1(rng, 3);
    auto direct = EvaluateWithLists(*f, inputs);
    ASSERT_OK(direct.status());
    auto via_sql = sys.Evaluate(*f, inputs, kN);
    ASSERT_OK(via_sql.status());
    EXPECT_TRUE(ListsEqual(via_sql.value(), direct.value()))
        << "formula: " << f->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlParityTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace htl
