// Randomized concurrent stress over one shared caching Retriever: query
// threads hammer a deliberately tiny cache (constant eviction) while a
// mutator thread grows and rewrites the store (epoch bumps) and siblings
// race cancellations. Store mutations hold a writer lock — the store's
// documented contract is that mutations are serialized against in-flight
// queries; the epoch protects cached state *across* that point, not racing
// writes. The oracle is twofold: TSan (this suite runs under the tsan CI
// preset) and cold-cache recomputation spot-checks — a sampled query's
// answer is recomputed on a throwaway cache-off retriever under the same
// reader lock and must match bit for bit.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/exec_context.h"
#include "engine/query_cache.h"
#include "engine/retrieval.h"
#include "model/video.h"
#include "testing/helpers.h"
#include "util/fault_point.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/video_gen.h"

namespace htl {
namespace {

bool IsSanctioned(const Status& s) {
  return s.ok() || s.code() == StatusCode::kDeadlineExceeded ||
         s.code() == StatusCode::kCancelled;
}

// Bit-exact comparison, tallied into a counter (threads must not ASSERT).
bool SameResults(const SegmentRetrieval& a, const SegmentRetrieval& b) {
  if (a.hits.size() != b.hits.size()) return false;
  for (size_t i = 0; i < a.hits.size(); ++i) {
    if (a.hits[i].video != b.hits[i].video ||
        a.hits[i].segment != b.hits[i].segment ||
        !(a.hits[i].sim == b.hits[i].sim)) {
      return false;
    }
  }
  return a.report.videos_evaluated == b.report.videos_evaluated &&
         a.report.videos_failed == b.report.videos_failed;
}

const char* const kStressQueries[] = {
    "exists x (type(x) = 'person') until exists y (type(y) = 'train')",
    "exists x (present(x) and moving(x) and eventually armed(x))",
    "exists z (present(z) and [h <- height(z)] eventually (height(z) > h))",
    "exists x (type(x) = 'horse') and at-next-level(exists y (moving(y)))",
};

TEST(CacheStressTest, RandomizedQueriesMutationsAndCancels) {
  FaultRegistry::Instance().DisableAll();
  MetadataStore store;
  Rng corpus_rng(515253);
  VideoGenOptions vopts;
  vopts.levels = 3;
  vopts.min_branching = 2;
  vopts.max_branching = 3;
  for (int i = 0; i < 8; ++i) store.AddVideo(GenerateVideo(corpus_rng, vopts));

  ThreadPool pool(ThreadPool::Options{4, 0});
  QueryOptions options;
  options.parallelism = 2;
  options.thread_pool = &pool;
  options.cache_mode = CacheMode::kReadWrite;
  options.result_cache_bytes = 4096;  // Tiny: eviction fires constantly.
  options.list_cache_bytes = 2048;
  options.cache_shards = 2;
  Retriever shared(&store, options);  // ONE caching retriever for all threads.

  std::vector<FormulaPtr> queries;
  for (const char* text : kStressQueries) {
    auto q = shared.Prepare(text);
    ASSERT_OK(q.status());
    queries.push_back(std::move(q).value());
  }

  // Readers = queries, writer = mutations (the store's serialization
  // contract); the epoch then invalidates warm entries across writes.
  std::shared_mutex store_mu;
  std::atomic<bool> stop_mutator{false};
  std::atomic<int> unsanctioned{0};
  std::atomic<int> mismatches{0};
  std::atomic<int> spot_checks{0};

  std::thread mutator([&] {
    Rng rng(86420);
    while (!stop_mutator.load(std::memory_order_relaxed)) {
      {
        std::unique_lock<std::shared_mutex> lock(store_mu);
        if (rng.UniformInt(0, 1) == 0 && store.num_videos() < 12) {
          store.AddVideo(GenerateVideo(rng, vopts));
        } else {
          const MetadataStore::VideoId victim =
              1 + rng.UniformInt(0, store.num_videos() - 1);
          store.MutableVideo(victim) = GenerateVideo(rng, vopts);
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  constexpr int kQueryThreads = 4;
  constexpr int kRoundsPerThread = 12;
  std::vector<std::thread> workers;
  for (int t = 0; t < kQueryThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 104729 + 7);
      for (int round = 0; round < kRoundsPerThread; ++round) {
        const Formula& q = *queries[rng.UniformInt(0, 3)];
        const int64_t pick = rng.UniformInt(0, 3);
        if (pick == 3) {
          // Raced cancel: sanctioned failure or a valid answer, never a
          // poisoned cache (later rounds re-verify against cold).
          ExecContext ctx;
          std::thread canceller([&ctx] { ctx.Cancel(); });
          std::shared_lock<std::shared_mutex> lock(store_mu);
          auto r = shared.TopSegmentsWithReport(q, 2, 6, &ctx);
          lock.unlock();
          canceller.join();
          if (!IsSanctioned(r.status())) unsanctioned.fetch_add(1);
        } else if (pick == 2) {
          ExecContext ctx;
          ctx.SetTimeout(std::chrono::microseconds(rng.UniformInt(0, 500)));
          std::shared_lock<std::shared_mutex> lock(store_mu);
          auto r = shared.TopSegmentsWithReport(q, 2, 6, &ctx);
          if (!IsSanctioned(r.status())) unsanctioned.fetch_add(1);
        } else {
          // Plain query; every other one is spot-checked against a cold
          // cache-off recomputation under the same reader lock (the store
          // cannot move, so the answers must be bit-identical).
          std::shared_lock<std::shared_mutex> lock(store_mu);
          auto r = shared.TopSegmentsWithReport(q, 2, 6);
          if (!IsSanctioned(r.status())) unsanctioned.fetch_add(1);
          if (r.ok() && pick == 0) {
            Retriever cold(&store, QueryOptions{});
            auto want = cold.TopSegmentsWithReport(q, 2, 6);
            if (!want.ok() || !SameResults(want.value(), r.value())) {
              mismatches.fetch_add(1);
            }
            spot_checks.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop_mutator.store(true, std::memory_order_relaxed);
  mutator.join();

  EXPECT_EQ(unsanctioned.load(), 0) << "a query returned an unsanctioned status";
  EXPECT_EQ(mismatches.load(), 0) << "a cached answer diverged from cold recompute";
  EXPECT_GT(spot_checks.load(), 0) << "stress mix never exercised the oracle";

  // The storm is over: the cache still serves exact answers.
  for (const FormulaPtr& q : queries) {
    Retriever cold(&store, QueryOptions{});
    ASSERT_OK_AND_ASSIGN(SegmentRetrieval want, cold.TopSegmentsWithReport(*q, 2, 6));
    ASSERT_OK_AND_ASSIGN(SegmentRetrieval got, shared.TopSegmentsWithReport(*q, 2, 6));
    EXPECT_TRUE(SameResults(want, got));
  }
  const cache::CacheStats stats = shared.caches()->result_stats();
  EXPECT_GT(stats.hits + stats.misses, 0) << stats.ToString();
}

// The single-flight stampede: N threads fire the identical query at a cold
// cache simultaneously. Exactly one fill happens; every other thread is
// accounted for as either a waiter served by the leader's flight or a plain
// hit (it arrived after the fill) — and all N answers are bit-identical.
TEST(CacheStressTest, SingleFlightStampedeComputesOnce) {
  FaultRegistry::Instance().DisableAll();
  MetadataStore store;
  Rng corpus_rng(31337);
  VideoGenOptions vopts;
  vopts.levels = 3;
  vopts.min_branching = 3;
  vopts.max_branching = 5;
  for (int i = 0; i < 6; ++i) store.AddVideo(GenerateVideo(corpus_rng, vopts));

  Retriever cold(&store, QueryOptions{});
  ASSERT_OK_AND_ASSIGN(FormulaPtr query, cold.Prepare(kStressQueries[1]));
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval want, cold.TopSegmentsWithReport(*query, 2, 6));
  ASSERT_TRUE(want.report.complete());

  QueryOptions options;
  options.cache_mode = CacheMode::kReadWrite;
  options.parallelism = 1;
  Retriever shared(&store, options);

  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load(std::memory_order_relaxed) < kThreads) std::this_thread::yield();
      auto r = shared.TopSegmentsWithReport(*query, 2, 6);
      if (!r.ok() || !SameResults(want, r.value())) mismatches.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  const cache::CacheStats stats = shared.caches()->result_stats();
  EXPECT_EQ(stats.fills, 1) << stats.ToString();
  // Leader aside, each thread is either a flight waiter or a post-fill hit.
  EXPECT_EQ(stats.hits + stats.shared_waits, kThreads - 1) << stats.ToString();
  EXPECT_EQ(stats.entries, 1) << stats.ToString();
}

// A leader whose own deadline kills the compute must not poison the cache
// or fail its waiters: healthy threads retry the flight, one of them
// becomes the new leader, and everyone healthy gets the exact answer.
TEST(CacheStressTest, FailedLeaderDoesNotPoisonWaiters) {
  FaultRegistry::Instance().DisableAll();
  MetadataStore store;
  Rng corpus_rng(8642);
  VideoGenOptions vopts;
  vopts.levels = 3;
  vopts.min_branching = 2;
  vopts.max_branching = 4;
  for (int i = 0; i < 6; ++i) store.AddVideo(GenerateVideo(corpus_rng, vopts));

  Retriever cold(&store, QueryOptions{});
  ASSERT_OK_AND_ASSIGN(FormulaPtr query, cold.Prepare(kStressQueries[0]));
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval want, cold.TopSegmentsWithReport(*query, 2, 6));

  QueryOptions options;
  options.cache_mode = CacheMode::kReadWrite;
  options.parallelism = 1;
  Retriever shared(&store, options);

  constexpr int kDoomed = 2;   // Expired deadlines: may grab leadership and fail.
  constexpr int kHealthy = 4;
  std::atomic<int> ready{0};
  std::atomic<int> unsanctioned{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kDoomed + kHealthy; ++t) {
    const bool doomed = t < kDoomed;
    threads.emplace_back([&, doomed] {
      ready.fetch_add(1);
      while (ready.load(std::memory_order_relaxed) < kDoomed + kHealthy) {
        std::this_thread::yield();
      }
      ExecContext ctx;
      if (doomed) ctx.SetTimeout(std::chrono::milliseconds(0));
      auto r = shared.TopSegmentsWithReport(*query, 2, 6, &ctx);
      if (doomed) {
        // Either it lost the race to a healthy fill (a valid hit) or its
        // deadline fired; both are sanctioned, wrong answers are not.
        if (!IsSanctioned(r.status())) unsanctioned.fetch_add(1);
        if (r.ok() && !SameResults(want, r.value())) mismatches.fetch_add(1);
      } else if (!r.ok() || !SameResults(want, r.value())) {
        mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(unsanctioned.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // Whatever the leadership interleaving, the cache holds at most the one
  // correct entry — never a doomed leader's residue.
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval after, shared.TopSegmentsWithReport(*query, 2, 6));
  EXPECT_TRUE(SameResults(want, after));
  EXPECT_LE(shared.caches()->result_stats().entries, 1);
}

}  // namespace
}  // namespace htl
