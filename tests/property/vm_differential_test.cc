// The differential proof behind QueryOptions::engine_mode = kVm: on random
// videos and random formulas from all four supported classes, the bytecode
// VM (src/vm/) reproduces the tree-walk interpreter bit for bit — result
// lists, error statuses, operator trace spans, and ExecContext budget
// charges — serial and parallel, cached and uncached, strict and degraded
// (injected faults, blown budgets). Any divergence is shrunk to a minimal
// failing subformula before it is reported.

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cache/sim_list_cache.h"
#include "engine/direct_engine.h"
#include "engine/exec_context.h"
#include "engine/retrieval.h"
#include "htl/binder.h"
#include "htl/classifier.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "testing/helpers.h"
#include "util/fault_point.h"
#include "util/rng.h"
#include "workload/formula_gen.h"
#include "workload/video_gen.h"

namespace htl {
namespace {

// ---------------------------------------------------------------------------
// One engine run and everything observable about it.

struct RunConfig {
  QueryOptions options;          // engine_mode is overridden per run.
  ExecBudgets budgets;           // Defaults to unlimited.
  int level = 2;
  int runs = 1;                  // >1 exercises warm engine-local caches.
  bool with_list_cache = false;  // Fresh per-engine cross-query cache.
  std::string fault_point;       // Non-empty arms the registry per engine.
  FaultSpec fault_spec;
  uint64_t fault_seed = 1;
};

struct Observed {
  std::vector<Result<SimilarityList>> results;  // One per run.
  EngineStats stats;
  ExecContext::UnitUsage usage;  // After the final run.
  std::string profile;           // Normalized span tree (no timings).
};

void RenderNode(const obs::QueryProfile::Node& n, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(n.name);
  if (n.unit >= 0) out->append(" unit=" + std::to_string(n.unit));
  out->append(" rows=" + std::to_string(n.stats.rows));
  out->append(" intervals=" + std::to_string(n.stats.intervals));
  out->append(" tables=" + std::to_string(n.stats.tables));
  if (!n.note.empty()) out->append(" note=" + n.note);
  out->push_back('\n');
  for (const obs::QueryProfile::Node& c : n.children) RenderNode(c, depth + 1, out);
}

// Span structure, operator counts, notes and fault trips — everything the
// profile pins except wall time.
std::string RenderProfile(const obs::QueryProfile& p) {
  std::string out;
  for (const obs::QueryProfile::Node& n : p.roots) RenderNode(n, 0, &out);
  for (const obs::QueryProfile::FaultTrip& t : p.fault_trips) {
    out += "fault " + t.point + ": " + t.status + "\n";
  }
  return out;
}

Observed RunEngine(EngineMode mode, const VideoTree& video, const Formula& f,
                   const RunConfig& cfg) {
  Observed seen;
  QueryOptions options = cfg.options;
  options.engine_mode = mode;
  DirectEngine engine(&video, options);
  // Per-engine cache: both executors face the same cold/warm sequence.
  std::optional<cache::SimListCache> list_cache;
  if (cfg.with_list_cache) {
    list_cache.emplace(cache::CacheConfig{options.list_cache_bytes,
                                          options.cache_shards});
    engine.set_list_cache(&*list_cache, /*video_id=*/7);
    engine.set_cache_epoch(3);
  }
  ExecContext exec;
  exec.mutable_budgets() = cfg.budgets;
  obs::QueryTrace trace;
  exec.set_trace(&trace);
  engine.set_exec_context(&exec);
  // Identical fault countdowns for both executors: re-seed and re-arm
  // immediately before each engine's runs.
  if (!cfg.fault_point.empty()) {
    FaultRegistry::Instance().DisableAll();
    FaultRegistry::Instance().Seed(cfg.fault_seed);
    FaultRegistry::Instance().Enable(cfg.fault_point, cfg.fault_spec);
  }
  {
    obs::ScopedTraceAttach attach(&trace);  // Fault trips land in the trace.
    for (int run = 0; run < cfg.runs; ++run) {
      exec.BeginUnit();  // Budgets bound each run, like the retriever.
      seen.results.push_back(engine.EvaluateList(cfg.level, f));
    }
  }
  if (!cfg.fault_point.empty()) FaultRegistry::Instance().DisableAll();
  seen.usage = exec.unit_usage();
  seen.stats = engine.stats();
  seen.profile = RenderProfile(trace.Finish());
  return seen;
}

// ---------------------------------------------------------------------------
// The parity surface: results, statuses, spans, budget charges, counters.

std::string DescribeRun(const Result<SimilarityList>& r) {
  if (!r.ok()) return "status{" + r.status().ToString() + "}";
  return "list{" + r.value().ToString() + "}";
}

::testing::AssertionResult SameObservations(const Observed& interp,
                                            const Observed& vm) {
  if (interp.results.size() != vm.results.size()) {
    return ::testing::AssertionFailure() << "run-count mismatch";
  }
  bool any_error = false;
  for (size_t i = 0; i < interp.results.size(); ++i) {
    const Result<SimilarityList>& a = interp.results[i];
    const Result<SimilarityList>& b = vm.results[i];
    if (a.ok() != b.ok() || (a.ok() && !(a.value() == b.value())) ||
        (!a.ok() && !(a.status() == b.status()))) {
      return ::testing::AssertionFailure()
             << "run " << i << " diverged:\n  interpreter: " << DescribeRun(a)
             << "\n  vm:          " << DescribeRun(b);
    }
    if (!a.ok()) any_error = true;
  }
  if (!(interp.usage == vm.usage)) {
    return ::testing::AssertionFailure()
           << "budget charges diverged: interpreter rows=" << interp.usage.rows
           << " tables=" << interp.usage.tables << " depth=" << interp.usage.depth
           << " vs vm rows=" << vm.usage.rows << " tables=" << vm.usage.tables
           << " depth=" << vm.usage.depth;
  }
  if (interp.profile != vm.profile) {
    return ::testing::AssertionFailure()
           << "trace spans diverged:\n--- interpreter ---\n" << interp.profile
           << "--- vm ---\n" << vm.profile;
  }
  // Counters compare only when every run succeeded: the interpreter counts
  // an exists collapse *before* evaluating its child, the VM after (its
  // bytecode is post-order), so an error inside the child legitimately
  // leaves the two counters one apart. On success the totals are equal.
  if (!any_error) {
    const EngineStats& a = interp.stats;
    const EngineStats& b = vm.stats;
    if (a.atomic_queries != b.atomic_queries ||
        a.atomic_cache_hits != b.atomic_cache_hits ||
        a.table_joins != b.table_joins ||
        a.exists_collapses != b.exists_collapses ||
        a.freeze_joins != b.freeze_joins ||
        a.level_evaluations != b.level_evaluations) {
      return ::testing::AssertionFailure()
             << "EngineStats diverged: interpreter {" << a.atomic_queries << ","
             << a.atomic_cache_hits << "," << a.table_joins << ","
             << a.exists_collapses << "," << a.freeze_joins << ","
             << a.level_evaluations << "} vs vm {" << b.atomic_queries << ","
             << b.atomic_cache_hits << "," << b.table_joins << ","
             << b.exists_collapses << "," << b.freeze_joins << ","
             << b.level_evaluations << "}";
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Shrinking: walk down to the smallest closed subformula that still
// diverges, so a failure names a minimal reproducer, not a depth-4 monster.

using FailPred = std::function<bool(const Formula&)>;

const Formula* ShrinkToMinimal(const Formula* f, const FailPred& diverges) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (const Formula* child : {f->left.get(), f->right.get()}) {
      if (child == nullptr) continue;
      if (!FreeObjectVars(*child).empty() || !FreeAttrVars(*child).empty()) {
        continue;  // Open subtrees are not evaluable on their own.
      }
      if (diverges(*child)) {
        f = child;
        shrunk = true;
        break;
      }
    }
  }
  return f;
}

struct ClassCoverage {
  int counts[5] = {0, 0, 0, 0, 0};
  void Count(FormulaClass c) { ++counts[static_cast<int>(c)]; }
};

// Runs the differential comparison for one generated formula; on divergence,
// shrinks and fails with the minimal formula.
void ExpectEnginesIdentical(const VideoTree& video, const Formula& f,
                            const RunConfig& cfg, uint64_t seed) {
  auto diverges = [&](const Formula& g) {
    return !SameObservations(RunEngine(EngineMode::kInterpret, video, g, cfg),
                             RunEngine(EngineMode::kVm, video, g, cfg));
  };
  Observed interp = RunEngine(EngineMode::kInterpret, video, f, cfg);
  Observed vm = RunEngine(EngineMode::kVm, video, f, cfg);
  ::testing::AssertionResult same = SameObservations(interp, vm);
  if (same) return;
  const Formula* minimal = ShrinkToMinimal(&f, diverges);
  ADD_FAILURE() << same.message() << "\nseed " << seed << "\nformula: "
                << f.ToString() << "\nminimal reproducer: " << minimal->ToString();
}

// One generated (video, formula) pair per seed. Returns the formula's class
// so callers can assert coverage.
FormulaClass DifferentialTrial(uint64_t seed, const FormulaGenOptions& fopts_in,
                               int video_levels, const RunConfig& cfg_in) {
  Rng rng(seed);
  VideoGenOptions vopts;
  vopts.levels = video_levels;
  vopts.min_branching = video_levels == 2 ? 5 : 2;
  vopts.max_branching = video_levels == 2 ? 10 : 4;
  vopts.num_objects = 4;
  VideoTree video = GenerateVideo(rng, vopts);

  FormulaGenOptions fopts = fopts_in;
  fopts.max_levels = video.num_levels();
  FormulaPtr f = GenerateFormula(rng, fopts);
  Status bound = Bind(f.get());
  EXPECT_TRUE(bound.ok()) << bound.ToString() << "\n" << f->ToString();

  RunConfig cfg = cfg_in;
  cfg.level = fopts.allow_level ? 2 : video.num_levels();
  ExpectEnginesIdentical(video, *f, cfg, seed);
  return Classify(*f);
}

// The four generator shapes that together cover every supported class.
FormulaGenOptions ShapeType1() {
  FormulaGenOptions o;
  o.allow_exists = false;
  o.allow_freeze = false;
  return o;
}
FormulaGenOptions ShapeConjunctive() { return FormulaGenOptions{}; }
FormulaGenOptions ShapeExtended() {
  FormulaGenOptions o;
  o.allow_level = true;
  return o;
}
FormulaGenOptions ShapeGeneral() {
  FormulaGenOptions o;
  o.allow_or = true;
  o.allow_closed_not = true;
  return o;
}

void SweepAllShapes(uint64_t seed_base, const RunConfig& cfg, int trials) {
  ClassCoverage coverage;
  auto covered = [&] {
    return coverage.counts[static_cast<int>(FormulaClass::kType1)] > 0 &&
           coverage.counts[static_cast<int>(FormulaClass::kType2)] +
                   coverage.counts[static_cast<int>(FormulaClass::kConjunctive)] >
               0 &&
           coverage.counts[static_cast<int>(FormulaClass::kExtendedConjunctive)] > 0 &&
           coverage.counts[static_cast<int>(FormulaClass::kGeneral)] > 0;
  };
  // The configured trial count always runs; short sweeps then top up with
  // further seeded rounds until every class has appeared (the generator is
  // random, so a couple of rounds need not hit e.g. kExtendedConjunctive).
  constexpr int kMaxTopUpRounds = 24;
  for (int round = 0; round < trials + kMaxTopUpRounds; ++round) {
    if (round >= trials && covered()) break;
    const uint64_t seed = seed_base + static_cast<uint64_t>(round);
    coverage.Count(DifferentialTrial(seed, ShapeType1(), 2, cfg));
    coverage.Count(DifferentialTrial(seed + 100, ShapeConjunctive(), 2, cfg));
    coverage.Count(DifferentialTrial(seed + 200, ShapeExtended(), 3, cfg));
    coverage.Count(DifferentialTrial(seed + 300, ShapeGeneral(), 2, cfg));
  }
  // All four supported classes (and the general extension) must have been
  // exercised — a generator regression would otherwise hollow out the proof.
  EXPECT_GT(coverage.counts[static_cast<int>(FormulaClass::kType1)], 0);
  EXPECT_GT(coverage.counts[static_cast<int>(FormulaClass::kType2)] +
                coverage.counts[static_cast<int>(FormulaClass::kConjunctive)],
            0);
  EXPECT_GT(coverage.counts[static_cast<int>(FormulaClass::kExtendedConjunctive)], 0);
  EXPECT_GT(coverage.counts[static_cast<int>(FormulaClass::kGeneral)], 0);
}

// ---------------------------------------------------------------------------
// The battery.

TEST(VmDifferentialTest, SerialUncachedAllClasses) {
  RunConfig cfg;
  SweepAllShapes(/*seed_base=*/1, cfg, /*trials=*/6);
}

TEST(VmDifferentialTest, FuzzyAndSemanticsAndUntilThreshold) {
  RunConfig cfg;
  cfg.options.and_semantics = AndSemantics::kFuzzyMin;
  cfg.options.until_threshold = 0.3;
  SweepAllShapes(/*seed_base=*/40, cfg, /*trials=*/4);
}

TEST(VmDifferentialTest, WarmEngineCachesSecondRun) {
  // Two runs through each engine: the second is served by the per-engine
  // atomic/value caches, which both executors share by construction.
  RunConfig cfg;
  cfg.runs = 2;
  SweepAllShapes(/*seed_base=*/80, cfg, /*trials=*/3);
}

TEST(VmDifferentialTest, CrossQueryListCacheColdAndWarm) {
  RunConfig cfg;
  cfg.options.cache_mode = CacheMode::kReadWrite;
  cfg.with_list_cache = true;
  cfg.runs = 2;  // Cold fill, then warm probe hits.
  SweepAllShapes(/*seed_base=*/120, cfg, /*trials=*/3);
}

TEST(VmDifferentialTest, BlownBudgetsProduceIdenticalStatuses) {
  for (int variant = 0; variant < 3; ++variant) {
    RunConfig cfg;
    if (variant == 0) cfg.budgets.max_rows = 40;
    if (variant == 1) cfg.budgets.max_tables = 3;
    if (variant == 2) cfg.budgets.max_depth = 3;
    SCOPED_TRACE(variant);
    SweepAllShapes(/*seed_base=*/160 + static_cast<uint64_t>(variant) * 1000, cfg,
                   /*trials=*/3);
  }
}

TEST(VmDifferentialTest, InjectedFaultsSurfaceIdentically) {
  for (const char* point :
       {"engine.table_join", "picture.query", "engine.value_table"}) {
    RunConfig cfg;
    cfg.fault_point = point;
    cfg.fault_spec.fire_on_hit = 2;  // Past the first hit: mid-evaluation.
    cfg.fault_spec.sticky = true;
    SCOPED_TRACE(point);
    SweepAllShapes(/*seed_base=*/250, cfg, /*trials=*/2);
  }
}

TEST(VmDifferentialTest, ProbabilisticFaultsWithSharedSeed) {
  RunConfig cfg;
  cfg.fault_point = "picture.query";
  cfg.fault_spec.probability = 0.5;
  cfg.fault_seed = 11;  // Re-seeded per engine: identical fault draws.
  SweepAllShapes(/*seed_base=*/300, cfg, /*trials=*/2);
}

TEST(VmDifferentialTest, DegradedCacheSeamsStayIdentical) {
  for (const char* point : {"cache.lookup", "cache.fill"}) {
    RunConfig cfg;
    cfg.options.cache_mode = CacheMode::kReadWrite;
    cfg.with_list_cache = true;
    cfg.runs = 2;
    cfg.fault_point = point;
    SCOPED_TRACE(point);
    SweepAllShapes(/*seed_base=*/350, cfg, /*trials=*/2);
  }
}

TEST(VmDifferentialTest, EvaluateVideoAgreesBitForBit) {
  for (uint64_t seed = 400; seed < 408; ++seed) {
    Rng rng(seed);
    VideoGenOptions vopts;
    vopts.levels = 2;
    VideoTree video = GenerateVideo(rng, vopts);
    FormulaPtr f = GenerateFormula(rng, FormulaGenOptions{});
    ASSERT_OK(Bind(f.get()));
    QueryOptions interp_opts;
    interp_opts.engine_mode = EngineMode::kInterpret;
    QueryOptions vm_opts;
    vm_opts.engine_mode = EngineMode::kVm;
    DirectEngine interp(&video, interp_opts);
    DirectEngine vm(&video, vm_opts);
    Result<Sim> a = interp.EvaluateVideo(*f);
    Result<Sim> b = vm.EvaluateVideo(*f);
    ASSERT_EQ(a.ok(), b.ok()) << f->ToString();
    if (a.ok()) {
      EXPECT_TRUE(a.value() == b.value())
          << "seed " << seed << " formula: " << f->ToString();
    } else {
      EXPECT_TRUE(a.status() == b.status()) << f->ToString();
    }
  }
}

TEST(VmDifferentialTest, DifferentialModeIsGreenAndCatchesNothing) {
  // engine_mode=kDifferential re-proves the equivalence inside the engine on
  // every call; over the sweep it must never trip its Internal divergence
  // check, and must return the interpreter's (== VM's) answer.
  for (uint64_t seed = 500; seed < 506; ++seed) {
    Rng rng(seed);
    VideoGenOptions vopts;
    vopts.levels = 2;
    VideoTree video = GenerateVideo(rng, vopts);
    FormulaPtr f = GenerateFormula(rng, FormulaGenOptions{});
    ASSERT_OK(Bind(f.get()));
    QueryOptions diff_opts;
    diff_opts.engine_mode = EngineMode::kDifferential;
    DirectEngine diff(&video, diff_opts);
    DirectEngine plain(&video);  // Default mode: the VM.
    Result<SimilarityList> got = diff.EvaluateList(video.num_levels(), *f);
    Result<SimilarityList> want = plain.EvaluateList(video.num_levels(), *f);
    ASSERT_EQ(got.ok(), want.ok())
        << got.status().ToString() << " formula: " << f->ToString();
    if (got.ok()) {
      EXPECT_TRUE(got.value() == want.value()) << f->ToString();
    }
  }
}

// Retriever-level: the VM under the full parallel retrieval path (worker
// pool, per-video engines, ranking) returns exactly the serial
// interpreter's hits.
TEST(VmDifferentialTest, ParallelVmRetrievalMatchesSerialInterpreter) {
  Rng rng(777);
  MetadataStore store;
  VideoGenOptions vopts;
  vopts.levels = 2;
  for (int v = 0; v < 4; ++v) store.AddVideo(GenerateVideo(rng, vopts));

  FormulaGenOptions fopts;
  for (int trial = 0; trial < 4; ++trial) {
    FormulaPtr f = GenerateFormula(rng, fopts);
    ASSERT_OK(Bind(f.get()));

    QueryOptions serial_interp;
    serial_interp.parallelism = 1;
    serial_interp.engine_mode = EngineMode::kInterpret;
    QueryOptions parallel_vm;
    parallel_vm.parallelism = 4;
    parallel_vm.engine_mode = EngineMode::kVm;

    Retriever a(&store, serial_interp);
    Retriever b(&store, parallel_vm);
    auto want = a.TopSegmentsWithReport(*f, 2, 16);
    auto got = b.TopSegmentsWithReport(*f, 2, 16);
    ASSERT_EQ(want.ok(), got.ok()) << f->ToString();
    if (!want.ok()) continue;
    ASSERT_EQ(got->hits.size(), want->hits.size()) << f->ToString();
    for (size_t i = 0; i < got->hits.size(); ++i) {
      EXPECT_EQ(got->hits[i].video, want->hits[i].video) << f->ToString();
      EXPECT_EQ(got->hits[i].segment, want->hits[i].segment);
      EXPECT_EQ(got->hits[i].sim, want->hits[i].sim);
    }
  }
}

}  // namespace
}  // namespace htl
