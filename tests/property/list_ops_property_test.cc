// Property tests: the interval-run-encoded operator algebra of section 3.1
// must agree with brute-force dense evaluation of the section 2.5 semantics
// on randomly generated lists, and must satisfy the obvious algebraic laws.

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/list_ops.h"
#include "testing/helpers.h"
#include "util/rng.h"
#include "workload/random_lists.h"

namespace htl {
namespace {

using testing::ListsEqual;

constexpr int64_t kN = 300;  // Sequence length for dense cross-checks.
constexpr double kTau = 0.5;

SimilarityList RandomList(Rng& rng) {
  RandomListOptions opts;
  opts.num_segments = kN;
  opts.coverage = 0.3;
  opts.mean_run = 3;
  opts.max_sim = 8.0;
  return GenerateRandomList(rng, opts);
}

std::vector<double> Dense(const SimilarityList& list) {
  std::vector<double> out(static_cast<size_t>(kN) + 1, 0.0);
  for (const SimEntry& e : list.entries()) {
    for (SegmentId i = e.range.begin; i <= e.range.end && i <= kN; ++i) {
      out[static_cast<size_t>(i)] = e.actual;
    }
  }
  return out;
}

// Checks structural invariants: sorted, disjoint, positive, canonical.
void CheckInvariants(const SimilarityList& list) {
  SegmentId prev_end = 0;
  double prev_val = -1;
  bool prev_adjacent = false;
  for (const SimEntry& e : list.entries()) {
    ASSERT_FALSE(e.range.empty());
    ASSERT_GT(e.range.begin, prev_end);
    ASSERT_GT(e.actual, 0.0);
    ASSERT_LE(e.actual, list.max() + 1e-12);
    if (prev_adjacent && prev_end + 1 == e.range.begin) {
      ASSERT_NE(e.actual, prev_val) << "adjacent equal runs must merge";
    }
    prev_adjacent = true;
    prev_end = e.range.end;
    prev_val = e.actual;
  }
}

class ListOpsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ListOpsPropertyTest, AndMatchesDenseSum) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  SimilarityList a = RandomList(rng), b = RandomList(rng);
  SimilarityList out = AndMerge(a, b);
  CheckInvariants(out);
  auto da = Dense(a), db = Dense(b), dout = Dense(out);
  for (int64_t i = 1; i <= kN; ++i) {
    EXPECT_DOUBLE_EQ(dout[static_cast<size_t>(i)],
                     da[static_cast<size_t>(i)] + db[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(out.max(), a.max() + b.max());
}

TEST_P(ListOpsPropertyTest, AndIsCommutative) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  SimilarityList a = RandomList(rng), b = RandomList(rng);
  EXPECT_TRUE(ListsEqual(AndMerge(a, b), AndMerge(b, a)));
}

TEST_P(ListOpsPropertyTest, OrMatchesDenseMax) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 2000);
  SimilarityList a = RandomList(rng), b = RandomList(rng);
  SimilarityList out = OrMerge(a, b);
  CheckInvariants(out);
  auto da = Dense(a), db = Dense(b), dout = Dense(out);
  for (int64_t i = 1; i <= kN; ++i) {
    EXPECT_DOUBLE_EQ(dout[static_cast<size_t>(i)],
                     std::max(da[static_cast<size_t>(i)], db[static_cast<size_t>(i)]));
  }
}

TEST_P(ListOpsPropertyTest, OrIsIdempotentAndCommutative) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 3000);
  SimilarityList a = RandomList(rng), b = RandomList(rng);
  EXPECT_TRUE(ListsEqual(OrMerge(a, a), a));
  EXPECT_TRUE(ListsEqual(OrMerge(a, b), OrMerge(b, a)));
}

TEST_P(ListOpsPropertyTest, NextMatchesDenseShift) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 4000);
  SimilarityList a = RandomList(rng);
  SimilarityList out = NextShift(a);
  CheckInvariants(out);
  auto da = Dense(a), dout = Dense(out);
  for (int64_t i = 1; i < kN; ++i) {
    EXPECT_DOUBLE_EQ(dout[static_cast<size_t>(i)], da[static_cast<size_t>(i + 1)]);
  }
}

TEST_P(ListOpsPropertyTest, UntilMatchesDenseRecurrence) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 5000);
  SimilarityList g = RandomList(rng), h = RandomList(rng);
  SimilarityList out = UntilMerge(g, h, kTau);
  CheckInvariants(out);
  auto dg = Dense(g), dh = Dense(h), dout = Dense(out);
  // f(u) = max(h(u), [g(u)/gmax >= tau] * f(u+1)), computed right-to-left.
  std::vector<double> want(static_cast<size_t>(kN) + 2, 0.0);
  for (int64_t u = kN; u >= 1; --u) {
    const bool gok = dg[static_cast<size_t>(u)] / g.max() + 1e-12 >= kTau;
    want[static_cast<size_t>(u)] =
        std::max(dh[static_cast<size_t>(u)], gok ? want[static_cast<size_t>(u + 1)] : 0.0);
  }
  for (int64_t u = 1; u <= kN; ++u) {
    EXPECT_DOUBLE_EQ(dout[static_cast<size_t>(u)], want[static_cast<size_t>(u)]) << u;
  }
  EXPECT_EQ(out.max(), h.max());
}

TEST_P(ListOpsPropertyTest, EventuallyMatchesDenseSuffixMax) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 6000);
  SimilarityList h = RandomList(rng);
  SimilarityList out = Eventually(h);
  CheckInvariants(out);
  auto dh = Dense(h), dout = Dense(out);
  double running = 0;
  for (int64_t u = kN; u >= 1; --u) {
    running = std::max(running, dh[static_cast<size_t>(u)]);
    EXPECT_DOUBLE_EQ(dout[static_cast<size_t>(u)], running);
  }
}

TEST_P(ListOpsPropertyTest, EventuallyIsUntilWithSaturatedG) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 7000);
  SimilarityList h = RandomList(rng);
  // true until h with g saturated over the whole axis.
  SimilarityList g =
      SimilarityList::FromEntriesOrDie({SimEntry{Interval{1, kN}, 1.0}}, 1.0);
  SimilarityList via_until = UntilMerge(g, h, kTau);
  // Eventually may extend below id 1? No: ids start at 1. It may extend the
  // carry below h's first entry; until does the same within g's support.
  EXPECT_TRUE(ListsEqual(via_until, Eventually(h).Clip(Interval{1, kN})));
}

TEST_P(ListOpsPropertyTest, MultiMaxEqualsFoldedOr) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 8000);
  std::vector<SimilarityList> lists;
  const int m = 1 + GetParam() % 7;
  double max = 0;
  for (int i = 0; i < m; ++i) {
    lists.push_back(RandomList(rng));
    max = std::max(max, lists.back().max());
  }
  SimilarityList folded(max);
  for (const auto& l : lists) folded = OrMerge(folded, l);
  EXPECT_TRUE(ListsEqual(MultiMax(lists), folded));
}

TEST_P(ListOpsPropertyTest, UntilMonotoneInH) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 9000);
  SimilarityList g = RandomList(rng), h = RandomList(rng);
  // Dropping an entry of h can only lower the result.
  if (h.length() < 2) return;
  std::vector<SimEntry> reduced(h.entries().begin(), h.entries().end() - 1);
  SimilarityList h2 = SimilarityList::FromEntriesOrDie(reduced, h.max());
  auto full = Dense(UntilMerge(g, h, kTau));
  auto less = Dense(UntilMerge(g, h2, kTau));
  for (int64_t u = 1; u <= kN; ++u) {
    EXPECT_LE(less[static_cast<size_t>(u)], full[static_cast<size_t>(u)] + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListOpsPropertyTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace htl
