// Contract between the classifier and the engines: every formula the
// classifier places below kGeneral MUST evaluate on the direct engine
// (no Unimplemented), and classification itself must be stable under
// rewriting (normalization can only keep or lower the class).

#include <gtest/gtest.h>

#include "engine/direct_engine.h"
#include "htl/binder.h"
#include "htl/classifier.h"
#include "htl/rewriter.h"
#include "testing/helpers.h"
#include "util/rng.h"
#include "workload/formula_gen.h"
#include "workload/video_gen.h"

namespace htl {
namespace {

int Rank(FormulaClass c) {
  switch (c) {
    case FormulaClass::kType1:
      return 0;
    case FormulaClass::kType2:
      return 1;
    case FormulaClass::kConjunctive:
      return 2;
    case FormulaClass::kExtendedConjunctive:
      return 3;
    case FormulaClass::kGeneral:
      return 4;
  }
  return 5;
}

class ClassifierContractTest : public ::testing::TestWithParam<int> {};

TEST_P(ClassifierContractTest, SubGeneralClassesAlwaysRunOnDirectEngine) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 50021 + 9);
  VideoGenOptions vopts;
  vopts.levels = 3;
  vopts.min_branching = 2;
  vopts.max_branching = 4;
  VideoTree video = GenerateVideo(rng, vopts);
  DirectEngine engine(&video);

  FormulaGenOptions fopts;
  fopts.max_depth = 3;
  fopts.allow_level = true;
  fopts.allow_or = true;
  fopts.allow_closed_not = true;
  fopts.max_levels = video.num_levels();
  for (int trial = 0; trial < 10; ++trial) {
    FormulaPtr f = GenerateFormula(rng, fopts);
    ASSERT_OK(Bind(f.get()));
    const FormulaClass cls = Classify(*f);
    auto result = engine.EvaluateList(1, *f);
    if (cls != FormulaClass::kGeneral) {
      EXPECT_OK(result.status());
    } else if (!result.ok()) {
      // General formulas may be refused, but only with Unimplemented —
      // never a crash or a misleading error code.
      EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented)
          << f->ToString();
    }
  }
}

TEST_P(ClassifierContractTest, RewritingNeverRaisesTheClass) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7321 + 77);
  FormulaGenOptions fopts;
  fopts.max_depth = 3;
  fopts.allow_or = true;
  fopts.allow_closed_not = true;
  for (int trial = 0; trial < 10; ++trial) {
    FormulaPtr f = GenerateFormula(rng, fopts);
    ASSERT_OK(Bind(f.get()));
    const int before = Rank(Classify(*f));
    FormulaPtr g = Rewrite(f->Clone());
    EXPECT_LE(Rank(Classify(*g)), before) << f->ToString() << "\n-> " << g->ToString();
  }
}

TEST_P(ClassifierContractTest, ClassMatchesPaperHierarchy) {
  // Every class below general is also a member of the classes above it in
  // the paper's chain — verified structurally: stripping the construct that
  // forced the class must lower it.
  Rng rng(static_cast<uint64_t>(GetParam()) * 17 + 3);
  FormulaGenOptions fopts;
  fopts.max_depth = 2;
  for (int trial = 0; trial < 10; ++trial) {
    FormulaPtr body = GenerateFormula(rng, fopts);
    ASSERT_OK(Bind(body.get()));
    if (Classify(*body) == FormulaClass::kGeneral) continue;
    // Wrapping in a level operator can only move within {<=extended}.
    FormulaPtr wrapped = MakeAtNextLevel(body->Clone());
    ASSERT_OK(Bind(wrapped.get()));
    const FormulaClass cls = Classify(*wrapped);
    EXPECT_TRUE(cls == FormulaClass::kExtendedConjunctive ||
                cls == FormulaClass::kGeneral)
        << wrapped->ToString();
    EXPECT_NE(cls, FormulaClass::kGeneral) << wrapped->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifierContractTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace htl
