// The safety half of bound-based pruning (htl/bound.h), checked directly:
// on randomized corpora and formulas from every supported class,
// UpperBoundFraction must dominate the true best fractional similarity of
// every video — `bound >= best - kBoundSlack`. If the bound ever dipped
// below the truth, the retriever could prune a video that belongs in the
// top k; the differential battery (prune_differential_test.cc) would catch
// the symptom, this test names the broken derivation rule. Violations are
// shrunk to a minimal closed subformula before reporting.
//
// The oracle for "true best" is the engine itself: an exhaustive unpruned
// retrieval (k covering every segment) grouped by video. The reverse
// direction — bounds being *tight* — is deliberately not asserted (a bound
// of 1 everywhere is sound, just useless); bench/bench_scale.cc gates
// usefulness instead. One directed check keeps the derivation from rotting
// into that trivial bound: corpus videos without the planted rare marker
// must get a zero bound for a query on the marker.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "engine/retrieval.h"
#include "htl/binder.h"
#include "htl/bound.h"
#include "model/video.h"
#include "model/video_stats.h"
#include "testing/helpers.h"
#include "util/rng.h"
#include "workload/formula_gen.h"
#include "workload/video_gen.h"

namespace htl {
namespace {

// Evaluates `f` exhaustively (no pruning, k larger than any corpus's
// segment count) and returns each video's best attained fraction. Videos
// with no scored segments are absent (best 0). Failed videos are recorded
// so the caller can skip them — their truth is unknown.
std::map<MetadataStore::VideoId, double> TrueBestFractions(
    const MetadataStore& store, const Formula& f, int level, bool fuzzy_and,
    std::set<MetadataStore::VideoId>* failed) {
  QueryOptions options;
  options.parallelism = 1;
  options.and_semantics = fuzzy_and ? AndSemantics::kFuzzyMin : AndSemantics::kSum;
  Retriever r(&store, options);
  constexpr int64_t kExhaustiveK = 1'000'000;
  Result<SegmentRetrieval> out = r.TopSegmentsWithReport(f, level, kExhaustiveK);
  HTL_CHECK(out.ok()) << out.status().ToString();
  for (const RetrievalReport::VideoFailure& vf : out.value().report.failures) {
    failed->insert(vf.video);
  }
  std::map<MetadataStore::VideoId, double> best;
  for (const SegmentHit& hit : out.value().hits) {
    double& b = best[hit.video];
    b = std::max(b, hit.sim.fraction());
  }
  return best;
}

// True when `f`'s bound under-shoots some video's true best fraction; used
// both as the failure test and as the shrinking predicate.
bool Violates(const MetadataStore& store, int64_t num_videos, const Formula& f,
              int level, bool fuzzy_and, std::string* detail) {
  std::set<MetadataStore::VideoId> failed;
  const std::map<MetadataStore::VideoId, double> best =
      TrueBestFractions(store, f, level, fuzzy_and, &failed);
  BoundOptions options;
  options.fuzzy_and = fuzzy_and;
  for (MetadataStore::VideoId v = 1; v <= num_videos; ++v) {
    if (failed.count(v) != 0) continue;
    const VideoTree& tree = store.Video(v);
    const VideoStats stats = VideoStats::Build(tree);
    const double ub = UpperBoundFraction(f, tree, stats, level, options);
    if (ub < 0.0 || ub > 1.0) {
      if (detail != nullptr) {
        *detail = "bound " + std::to_string(ub) + " outside [0, 1] for video " +
                  std::to_string(v);
      }
      return true;
    }
    const auto it = best.find(v);
    const double truth = it == best.end() ? 0.0 : it->second;
    if (ub < truth - kBoundSlack) {
      if (detail != nullptr) {
        *detail = "video " + std::to_string(v) + ": bound " + std::to_string(ub) +
                  " < true best fraction " + std::to_string(truth);
      }
      return true;
    }
  }
  return false;
}

// Walks down to the smallest closed subformula that still violates.
const Formula* ShrinkToMinimal(const Formula* f,
                               const std::function<bool(const Formula&)>& bad) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (const Formula* child : {f->left.get(), f->right.get()}) {
      if (child == nullptr) continue;
      if (!FreeObjectVars(*child).empty() || !FreeAttrVars(*child).empty()) {
        continue;  // Open subtrees are not evaluable on their own.
      }
      if (bad(*child)) {
        f = child;
        shrunk = true;
        break;
      }
    }
  }
  return f;
}

// One randomized trial: a small skewed corpus, one generated formula,
// soundness asserted for every video.
void SoundnessTrial(uint64_t seed, const FormulaGenOptions& fopts_in,
                    int video_levels, bool fuzzy_and) {
  Rng rng(seed);
  MetadataStore store;
  CorpusGenOptions corpus;
  corpus.num_videos = 10;
  corpus.video.levels = video_levels;
  corpus.video.min_branching = video_levels == 2 ? 3 : 2;
  corpus.video.max_branching = video_levels == 2 ? 6 : 3;
  corpus.video.num_objects = 4;
  corpus.selective_fraction = 0.3;
  corpus.size_skew = 0.25;
  corpus.seed = seed * 6271 + 5;
  GenerateCorpus(corpus, &store);

  FormulaGenOptions fopts = fopts_in;
  fopts.max_levels = store.Video(1).num_levels();
  FormulaPtr f = GenerateFormula(rng, fopts);
  ASSERT_OK(Bind(f.get()));
  const int level = fopts.allow_level ? 2 : store.Video(1).num_levels();

  std::string detail;
  if (!Violates(store, corpus.num_videos, *f, level, fuzzy_and, &detail)) return;
  const Formula* minimal = ShrinkToMinimal(
      f.get(), [&](const Formula& g) {
        return Violates(store, corpus.num_videos, g, level, fuzzy_and, nullptr);
      });
  std::string minimal_detail;
  Violates(store, corpus.num_videos, *minimal, level, fuzzy_and, &minimal_detail);
  ADD_FAILURE() << "bound under-shoots the truth: " << detail << "\nseed " << seed
                << "\nformula: " << f->ToString()
                << "\nminimal reproducer: " << minimal->ToString() << " ("
                << minimal_detail << ")";
}

TEST(BoundSoundnessTest, ExtendedConjunctiveFormulas) {
  FormulaGenOptions fopts;  // exists + freeze on by default.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SoundnessTrial(seed, fopts, /*video_levels=*/2, /*fuzzy_and=*/false);
  }
}

TEST(BoundSoundnessTest, TemporalOnlyFormulas) {
  // No quantifiers: the until/next/eventually recursion carries the weight.
  FormulaGenOptions fopts;
  fopts.allow_exists = false;
  fopts.allow_freeze = false;
  for (uint64_t seed = 30; seed <= 41; ++seed) {
    SoundnessTrial(seed, fopts, /*video_levels=*/2, /*fuzzy_and=*/false);
  }
}

TEST(BoundSoundnessTest, LevelOperatorsOnDeepVideos) {
  FormulaGenOptions fopts;
  fopts.allow_level = true;
  for (uint64_t seed = 60; seed <= 69; ++seed) {
    SoundnessTrial(seed, fopts, /*video_levels=*/3, /*fuzzy_and=*/false);
  }
}

TEST(BoundSoundnessTest, GeneralFormulasWithNegation) {
  // kNot widens to 1, so these can only fail if a rule *around* a negation
  // under-combines; both the closed-list complement and fully general
  // negation (reference engine) run here.
  FormulaGenOptions fopts;
  fopts.allow_or = true;
  fopts.allow_not = true;
  fopts.allow_closed_not = true;
  for (uint64_t seed = 90; seed <= 101; ++seed) {
    SoundnessTrial(seed, fopts, /*video_levels=*/2, /*fuzzy_and=*/false);
  }
}

TEST(BoundSoundnessTest, FuzzyMinConjunctions) {
  // min-combining is the easiest rule to get unsound (min of bounds must
  // dominate min of truths); fuzzy negation rides along via allow_not.
  FormulaGenOptions fopts;
  fopts.allow_or = true;
  fopts.allow_not = true;
  for (uint64_t seed = 120; seed <= 131; ++seed) {
    SoundnessTrial(seed, fopts, /*video_levels=*/2, /*fuzzy_and=*/true);
  }
}

// Directed edge cases the generator reaches only rarely: until's bound
// reads the right operand, freeze binds an attribute variable (which the
// derivation must widen, not drop).
TEST(BoundSoundnessTest, UntilAndFreezeEdgeCases) {
  MetadataStore store;
  CorpusGenOptions corpus;
  corpus.num_videos = 8;
  corpus.video.levels = 2;
  corpus.selective_fraction = 0.4;
  corpus.seed = 7;
  GenerateCorpus(corpus, &store);

  QueryOptions options;
  options.parallelism = 1;
  Retriever r(&store, options);
  const char* texts[] = {
      "exists x (moving(x) until armed(x))",
      "exists x ((type(x) = 'person') until (type(x) = 'zeppelin'))",
      "[d <- duration] exists x (height(x) <= d)",
      "[d <- duration] exists x ((height(x) = d) until moving(x))",
  };
  for (const char* text : texts) {
    SCOPED_TRACE(text);
    Result<FormulaPtr> f = r.Prepare(text);
    ASSERT_OK(f.status());
    std::string detail;
    EXPECT_FALSE(Violates(store, corpus.num_videos, *f.value(), 2,
                          /*fuzzy_and=*/false, &detail))
        << detail;
  }
}

// Anti-rot check: the derivation must stay useful, not just sound. A query
// on the planted rare markers gets a zero bound on every unmarked video
// (their stats cannot satisfy either atomic constraint).
TEST(BoundSoundnessTest, RareMarkerQueryBoundsUnmarkedVideosAtZero) {
  MetadataStore store;
  CorpusGenOptions corpus;
  corpus.num_videos = 20;
  corpus.video.levels = 2;
  corpus.selective_fraction = 0.25;
  corpus.seed = 21;
  const std::vector<MetadataStore::VideoId> marked = GenerateCorpus(corpus, &store);
  ASSERT_FALSE(marked.empty());
  const std::set<MetadataStore::VideoId> marked_set(marked.begin(), marked.end());

  QueryOptions options;
  Retriever r(&store, options);
  Result<FormulaPtr> f =
      r.Prepare("exists x (type(x) = 'zeppelin' and rare_event(x))");
  ASSERT_OK(f.status());
  for (MetadataStore::VideoId v = 1; v <= corpus.num_videos; ++v) {
    const VideoTree& tree = store.Video(v);
    const VideoStats stats = VideoStats::Build(tree);
    const double ub = UpperBoundFraction(*f.value(), tree, stats, 2);
    if (marked_set.count(v) != 0) {
      EXPECT_GT(ub, 0.0) << "marked video " << v;
    } else {
      EXPECT_EQ(ub, 0.0) << "unmarked video " << v;
    }
  }
}

}  // namespace
}  // namespace htl
