// Parameterized sweeps over the system knobs the paper leaves open: the
// until threshold tau and the hierarchy shape for level operators. The
// engines must agree for every setting.

#include <gtest/gtest.h>

#include "engine/direct_engine.h"
#include "engine/reference_engine.h"
#include "htl/binder.h"
#include "htl/parser.h"
#include "testing/helpers.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/formula_gen.h"
#include "workload/video_gen.h"

namespace htl {
namespace {

using testing::ListsNear;

// ---------------------------------------------------------------------------
// tau sweep: until semantics parameterized by the threshold.

class ThresholdSweepTest : public ::testing::TestWithParam<int> {
 protected:
  double Tau() const { return static_cast<double>(GetParam()) / 10.0; }
};

TEST_P(ThresholdSweepTest, EnginesAgreeAtThisThreshold) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 5);
  VideoGenOptions vopts;
  vopts.levels = 2;
  vopts.min_branching = 8;
  vopts.max_branching = 12;
  VideoTree video = GenerateVideo(rng, vopts);

  QueryOptions options;
  options.until_threshold = Tau();
  DirectEngine direct(&video, options);
  ReferenceEngine reference(&video, options);

  FormulaGenOptions fopts;
  fopts.max_depth = 3;
  for (int trial = 0; trial < 5; ++trial) {
    FormulaPtr f = GenerateFormula(rng, fopts);
    ASSERT_OK(Bind(f.get()));
    ASSERT_OK_AND_ASSIGN(SimilarityList got, direct.EvaluateList(2, *f));
    ASSERT_OK_AND_ASSIGN(SimilarityList want, reference.EvaluateList(2, *f));
    EXPECT_TRUE(ListsNear(got, want, 1e-9))
        << "tau=" << Tau() << " formula: " << f->ToString();
  }
}

TEST_P(ThresholdSweepTest, HigherThresholdNeverImprovesUntil) {
  // Monotonicity: raising tau can only remove chains, never add value.
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 99);
  VideoGenOptions vopts;
  vopts.levels = 2;
  vopts.min_branching = 10;
  vopts.max_branching = 14;
  VideoTree video = GenerateVideo(rng, vopts);
  auto f = ParseFormula(
      "exists p (type(p) = 'person' @ 2 and duration >= 20) until duration >= 80");
  ASSERT_OK(f.status());
  ASSERT_OK(Bind(f.value().get()));

  QueryOptions low;
  low.until_threshold = Tau();
  QueryOptions high;
  high.until_threshold = std::min(1.0, Tau() + 0.3);
  DirectEngine el(&video, low), eh(&video, high);
  ASSERT_OK_AND_ASSIGN(SimilarityList loose, el.EvaluateList(2, *f.value()));
  ASSERT_OK_AND_ASSIGN(SimilarityList tight, eh.EvaluateList(2, *f.value()));
  for (SegmentId id = 1; id <= video.NumSegments(2); ++id) {
    EXPECT_LE(tight.ActualAt(id), loose.ActualAt(id) + 1e-12) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Tau, ThresholdSweepTest, ::testing::Values(1, 3, 5, 7, 9, 10));

// ---------------------------------------------------------------------------
// Absolute level operators on deeper hierarchies.

class DeepLevelTest : public ::testing::TestWithParam<int> {};

TEST_P(DeepLevelTest, AbsoluteLevelOperatorsAgree) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 271 + 17);
  VideoGenOptions vopts;
  vopts.levels = 4;
  vopts.min_branching = 2;
  vopts.max_branching = 3;
  VideoTree video = GenerateVideo(rng, vopts);
  DirectEngine direct(&video);
  ReferenceEngine reference(&video);

  const std::string queries[] = {
      "at-level-3(eventually exists p (present(p)))",
      "at-level-4(duration >= 40)",
      "at-next-level(at-next-level(exists p (present(p))))",
      StrCat("at-level-2(true) and at-level-4(eventually duration >= ",
             30 + GetParam(), ")"),
  };
  for (const std::string& q : queries) {
    auto f = ParseFormula(q);
    ASSERT_OK(f.status());
    ASSERT_OK(Bind(f.value().get()));
    ASSERT_OK_AND_ASSIGN(SimilarityList got, direct.EvaluateList(1, *f.value()));
    ASSERT_OK_AND_ASSIGN(SimilarityList want, reference.EvaluateList(1, *f.value()));
    EXPECT_TRUE(ListsNear(got, want, 1e-9)) << q;
  }
}

TEST_P(DeepLevelTest, SceneLevelEvaluationAgrees) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 613 + 23);
  VideoGenOptions vopts;
  vopts.levels = 4;
  vopts.min_branching = 2;
  vopts.max_branching = 3;
  VideoTree video = GenerateVideo(rng, vopts);
  DirectEngine direct(&video);
  ReferenceEngine reference(&video);
  // Temporal operators over the scene sequence, with frame-level hops.
  auto f = ParseFormula(
      "at-frame-level(exists p (present(p))) until at-shot-level(duration >= 50)");
  ASSERT_OK(f.status());
  ASSERT_OK(Bind(f.value().get()));
  ASSERT_OK_AND_ASSIGN(SimilarityList got, direct.EvaluateList(2, *f.value()));
  ASSERT_OK_AND_ASSIGN(SimilarityList want, reference.EvaluateList(2, *f.value()));
  EXPECT_TRUE(ListsNear(got, want, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepLevelTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace htl
