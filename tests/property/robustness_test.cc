// Failure-injection and fuzz-style robustness tests: malformed inputs must
// produce Status errors — never crashes, hangs, or silent wrong answers.

#include <gtest/gtest.h>

#include "engine/direct_engine.h"
#include "htl/binder.h"
#include "htl/lexer.h"
#include "htl/parser.h"
#include "sql/parser.h"
#include "sql/sql_system.h"
#include "testing/helpers.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace htl {
namespace {

// ---------------------------------------------------------------------------
// HTL parser fuzz: random token soup never crashes.

class HtlParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(HtlParserFuzzTest, RandomTokenSoupNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 1);
  const char* vocab[] = {"and",   "or",      "not",   "next",  "until",
                         "eventually", "exists", "present", "true",  "false",
                         "(",     ")",       "[",     "]",     ",",
                         "<-",    "=",       "<",     ">",     "<=",
                         ">=",    "!=",      "@",     "x",     "y",
                         "height", "type",   "'str'", "3",     "2.5",
                         "at-next-level", "at-shot-level", "at-level-2"};
  for (int trial = 0; trial < 50; ++trial) {
    std::string text;
    const int len = static_cast<int>(rng.UniformInt(1, 25));
    for (int i = 0; i < len; ++i) {
      text += vocab[rng.UniformInt(0, std::size(vocab) - 1)];
      text += ' ';
    }
    auto r = ParseFormula(text);  // Must terminate and not crash.
    if (r.ok()) {
      // Whatever parses must print and re-parse.
      auto again = ParseFormula(r.value()->ToString());
      EXPECT_TRUE(again.ok()) << r.value()->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HtlParserFuzzTest, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// SQL parser fuzz.

class SqlParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SqlParserFuzzTest, RandomTokenSoupNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 40503u + 7);
  const char* vocab[] = {"SELECT", "FROM",  "WHERE", "GROUP",  "BY",    "ORDER",
                         "LIMIT",  "JOIN",  "LEFT",  "ON",     "AND",   "OR",
                         "NOT",    "NULL",  "IS",    "COUNT",  "MAX",   "(",
                         ")",      ",",     "*",     "+",      "-",     "=",
                         "<",      ">",     "t",     "a",      "b",     "'s'",
                         "1",      "2.5",   ";",     "BETWEEN", "IN",   "DISTINCT"};
  for (int trial = 0; trial < 50; ++trial) {
    std::string text;
    const int len = static_cast<int>(rng.UniformInt(1, 25));
    for (int i = 0; i < len; ++i) {
      text += vocab[rng.UniformInt(0, std::size(vocab) - 1)];
      text += ' ';
    }
    (void)sql::ParseScript(text);  // Must terminate and not crash.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlParserFuzzTest, ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Lexer edge cases.

TEST(LexerEdgeTest, LongInputsAndOddStrings) {
  std::string many_parens(10'000, '(');
  EXPECT_OK(Tokenize(many_parens).status());
  // Built via append (not operator+) to dodge GCC 12's bogus -Wrestrict
  // warning on `"lit" + std::string(...)` (PR105329).
  std::string quoted("'");
  quoted.append(10'000, 'a');
  EXPECT_FALSE(Tokenize(quoted).ok());
  quoted.push_back('\'');
  EXPECT_OK(Tokenize(quoted).status());
  EXPECT_OK(Tokenize("a-b-c-d-e-f-g-h").status());
  EXPECT_OK(Tokenize("# only a comment").status());
}

TEST(ParserEdgeTest, DeepNestingParses) {
  std::string text;
  constexpr int kDepth = 200;
  for (int i = 0; i < kDepth; ++i) text += "next (";
  text += "true";
  for (int i = 0; i < kDepth; ++i) text += ")";
  auto r = ParseFormula(text);
  ASSERT_OK(r.status());
  EXPECT_EQ(MaxSimilarity(*r.value()), 1.0);
}

TEST(ParserEdgeTest, DeepNestingEvaluates) {
  VideoTree v = VideoTree::Flat(4);
  std::string text;
  constexpr int kDepth = 100;
  for (int i = 0; i < kDepth; ++i) text += "eventually (";
  text += "true";
  for (int i = 0; i < kDepth; ++i) text += ")";
  auto f = ParseFormula(text);
  ASSERT_OK(f.status());
  ASSERT_OK(Bind(f.value().get()));
  DirectEngine e(&v);
  auto list = e.EvaluateList(2, *f.value());
  ASSERT_OK(list.status());
  EXPECT_EQ(list.value().ActualAt(1), 1.0);
}

// Adversarial nesting: unbounded recursion in the recursive-descent parsers
// would overflow the stack (and abort under ASan) long before the lexer or
// grammar rejects the input. Both parsers bound their depth and return
// ParseError instead.

TEST(ParserEdgeTest, ExcessiveHtlParenNestingIsRejected) {
  std::string text(5'000, '(');
  text += "true";
  text.append(5'000, ')');
  auto r = ParseFormula(text);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("nesting too deep"), std::string::npos)
      << r.status().ToString();
}

TEST(ParserEdgeTest, ExcessiveHtlOperatorNestingIsRejected) {
  std::string text;
  constexpr int kDepth = 5'000;
  for (int i = 0; i < kDepth; ++i) text += "next (";
  text += "true";
  text.append(kDepth, ')');
  EXPECT_EQ(ParseFormula(text).status().code(), StatusCode::kParseError);
}

TEST(ParserEdgeTest, UnclosedParenSoupIsRejectedNotCrashing) {
  // No closers at all: the parser must fail cleanly at the depth bound (or
  // at end of input), never run away.
  std::string text(20'000, '(');
  EXPECT_FALSE(ParseFormula(text).ok());
}

TEST(SqlParserEdgeTest, ModerateExprNestingParses) {
  std::string text = "SELECT * FROM t WHERE ";
  constexpr int kDepth = 40;
  text.append(kDepth, '(');
  text += "1 = 1";
  text.append(kDepth, ')');
  text += ";";
  EXPECT_OK(sql::ParseScript(text).status());
}

TEST(SqlParserEdgeTest, ExcessiveExprParenNestingIsRejected) {
  std::string text = "SELECT * FROM t WHERE ";
  constexpr int kDepth = 5'000;
  text.append(kDepth, '(');
  text += "1 = 1";
  text.append(kDepth, ')');
  text += ";";
  auto r = sql::ParseScript(text);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("nesting too deep"), std::string::npos)
      << r.status().ToString();
}

TEST(SqlParserEdgeTest, ExcessiveUnaryChainsAreRejected) {
  std::string nots = "SELECT * FROM t WHERE ";
  for (int i = 0; i < 5'000; ++i) nots += "NOT ";
  nots += "1 = 1;";
  EXPECT_EQ(sql::ParseScript(nots).status().code(), StatusCode::kParseError);

  std::string minuses = "SELECT ";
  minuses.append(5'000, '-');
  minuses += "1;";
  EXPECT_EQ(sql::ParseScript(minuses).status().code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// Engine-facing failure injection.

TEST(EngineRobustnessTest, EmptyVideoLevels) {
  VideoTree v = VideoTree::Flat(0);  // Root only.
  DirectEngine e(&v);
  auto f = ParseFormula("true");
  ASSERT_OK(f.status());
  ASSERT_OK_AND_ASSIGN(SimilarityList list, e.EvaluateList(1, *f.value()));
  EXPECT_EQ(list.ActualAt(1), 1.0);
  EXPECT_EQ(e.EvaluateList(2, *f.value()).status().code(), StatusCode::kOutOfRange);
}

TEST(EngineRobustnessTest, HugeWeightsDoNotOverflowInvariants) {
  VideoTree v = VideoTree::Flat(3);
  v.MutableMeta(2, 2).SetAttribute("d", AttrValue(int64_t{1}));
  DirectEngine e(&v);
  auto f = ParseFormula("d = 1 @ 1000000000 and true");
  ASSERT_OK(f.status());
  ASSERT_OK(Bind(f.value().get()));
  ASSERT_OK_AND_ASSIGN(SimilarityList list, e.EvaluateList(2, *f.value()));
  EXPECT_EQ(list.max(), 1000000001.0);
  EXPECT_EQ(list.ActualAt(2), 1000000001.0);
}

TEST(EngineRobustnessTest, ManyDistinctAtomicsOneQuery) {
  VideoTree v = VideoTree::Flat(10);
  for (SegmentId s = 1; s <= 10; ++s) {
    v.MutableMeta(2, s).SetAttribute("d", AttrValue(s));
  }
  std::string text = "d >= 1";
  for (int i = 2; i <= 40; ++i) text = StrCat(text, " and d >= ", i % 10);
  auto f = ParseFormula(text);
  ASSERT_OK(f.status());
  ASSERT_OK(Bind(f.value().get()));
  DirectEngine e(&v);
  EXPECT_OK(e.EvaluateList(2, *f.value()).status());
}

TEST(SqlRobustnessTest, RerunningTranslationIsIdempotent) {
  auto f = ParseFormula("p() until q()");
  ASSERT_OK(f.status());
  std::map<std::string, SimilarityList> inputs = {
      {"p", SimilarityList::FromEntriesOrDie({{Interval{1, 5}, 2.0}}, 2.0)},
      {"q", SimilarityList::FromEntriesOrDie({{Interval{6, 6}, 1.0}}, 2.0)},
  };
  sql::SqlSystem sys;
  ASSERT_OK_AND_ASSIGN(auto first, sys.Evaluate(*f.value(), inputs, 10));
  ASSERT_OK_AND_ASSIGN(auto second, sys.Evaluate(*f.value(), inputs, 10));
  EXPECT_EQ(first, second);
}

TEST(SqlRobustnessTest, MismatchedDomainSizeStillSound) {
  // n smaller than the lists' ids: expansion simply clips to the domain.
  auto f = ParseFormula("p()");
  ASSERT_OK(f.status());
  std::map<std::string, SimilarityList> inputs = {
      {"p", SimilarityList::FromEntriesOrDie({{Interval{1, 100}, 2.0}}, 2.0)},
  };
  sql::SqlSystem sys;
  ASSERT_OK_AND_ASSIGN(auto out, sys.Evaluate(*f.value(), inputs, 10));
  EXPECT_EQ(out.CoveredIds(), 10);
}

}  // namespace
}  // namespace htl
