// Property tests for the machine-checked invariants of the interval-coded
// similarity structures (section 3.1) and the segment tree (section 2.1):
// canonical form is a fixed point of normalization, FromEntries round-trips,
// and random operator sequences preserve CheckInvariants().

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "model/video_builder.h"
#include "sim/list_ops.h"
#include "sim/sim_table.h"
#include "testing/helpers.h"
#include "util/rng.h"
#include "workload/casablanca.h"
#include "workload/random_lists.h"
#include "workload/video_gen.h"

namespace htl {
namespace {

using testing::L;
using testing::ListsEqual;

constexpr int64_t kN = 200;

SimilarityList RandomList(Rng& rng) {
  RandomListOptions opts;
  opts.num_segments = kN;
  opts.coverage = 0.4;
  opts.mean_run = 3;
  opts.max_sim = 8.0;
  return GenerateRandomList(rng, opts);
}

class InvariantsPropertyTest : public ::testing::TestWithParam<int> {};

// Normalization is idempotent: feeding a canonical list's own entries back
// through FromEntries reproduces it exactly (no further merging/dropping).
TEST_P(InvariantsPropertyTest, NormalizationIsIdempotent) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  SimilarityList list = RandomList(rng);
  ASSERT_OK(list.CheckInvariants());
  ASSERT_OK_AND_ASSIGN(SimilarityList again,
                       SimilarityList::FromEntries(list.entries(), list.max()));
  EXPECT_TRUE(ListsEqual(again, list));
}

// FromEntries round-trips: sorted disjoint input with splittable runs
// canonicalizes to the same pointwise function and satisfies the checker.
TEST_P(InvariantsPropertyTest, FromEntriesRoundTripsSplitRuns) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  SimilarityList list = RandomList(rng);
  // Split every multi-id run into two pieces with the same value; the
  // canonicalizer must stitch them back together.
  std::vector<SimEntry> split;
  for (const SimEntry& e : list.entries()) {
    if (e.range.size() >= 2) {
      const SegmentId mid = e.range.begin + (e.range.end - e.range.begin) / 2;
      split.push_back(SimEntry{Interval{e.range.begin, mid}, e.actual});
      split.push_back(SimEntry{Interval{mid + 1, e.range.end}, e.actual});
    } else {
      split.push_back(e);
    }
  }
  ASSERT_OK_AND_ASSIGN(SimilarityList rebuilt,
                       SimilarityList::FromEntries(std::move(split), list.max()));
  EXPECT_TRUE(ListsEqual(rebuilt, list));
  EXPECT_OK(rebuilt.CheckInvariants());
}

// Random And/Or/Until/Next/Eventually/Complement/Clip sequences keep every
// intermediate result canonical.
TEST_P(InvariantsPropertyTest, RandomOpSequencesPreserveInvariants) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 200);
  SimilarityList acc = RandomList(rng);
  for (int step = 0; step < 24; ++step) {
    SimilarityList other = RandomList(rng);
    switch (rng.UniformInt(0, 6)) {
      case 0:
        acc = AndMerge(acc, other);
        break;
      case 1:
        acc = OrMerge(acc, other);
        break;
      case 2:
        acc = UntilMerge(acc, other, 0.5);
        break;
      case 3:
        acc = NextShift(acc);
        break;
      case 4:
        acc = Eventually(acc);
        break;
      case 5:
        acc = Complement(acc, Interval{1, kN});
        break;
      default:
        acc = acc.Clip(Interval{rng.UniformInt(1, kN / 2),
                                rng.UniformInt(kN / 2 + 1, kN)});
        break;
    }
    SCOPED_TRACE(StrCat("after step ", step, ": ", acc.ToString()));
    ASSERT_OK(acc.CheckInvariants());
    ASSERT_OK(SimilarityTable::FromList(acc).CheckInvariants());
  }
}

TEST(InvariantsTest, CheckerAcceptsCanonicalLiterals) {
  EXPECT_OK(SimilarityList().CheckInvariants());
  EXPECT_OK(L({}, 5).CheckInvariants());
  EXPECT_OK(L({{1, 4, 2.5}, {5, 6, 1.0}, {9, 9, 2.5}}, 10).CheckInvariants());
}

// The one table invariant AddRow cannot enforce locally: all rows must share
// the formula's static max. CheckInvariants has to catch the mismatch.
TEST(InvariantsTest, TableCheckerRejectsMixedMax) {
  SimilarityTable table;
  table.AddRow(SimilarityTable::Row{{}, {}, L({{1, 3, 1.0}}, 5)});
  ASSERT_OK(table.CheckInvariants());
  table.AddRow(SimilarityTable::Row{{}, {}, L({{4, 6, 1.0}}, 7)});
  const Status bad = table.CheckInvariants();
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInternal);
}

TEST(InvariantsTest, FlatAndBuiltVideosAreWellFormed) {
  EXPECT_OK(VideoTree::Flat(0).CheckInvariants());
  EXPECT_OK(VideoTree::Flat(12).CheckInvariants());
  EXPECT_OK(casablanca::MakeVideo().CheckInvariants());

  VideoBuilder b;
  VideoBuilder::Handle scene1 = b.AddChild(b.root());
  VideoBuilder::Handle scene2 = b.AddChild(b.root());
  b.AddChildren(scene1, 3);
  b.AddChildren(scene2, 2);
  ASSERT_OK_AND_ASSIGN(VideoTree video, std::move(b).Build());
  EXPECT_OK(video.CheckInvariants());
}

TEST_P(InvariantsPropertyTest, GeneratedVideosAreWellFormed) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 300);
  VideoGenOptions opts;
  VideoTree video = GenerateVideo(rng, opts);
  EXPECT_OK(video.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantsPropertyTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace htl
