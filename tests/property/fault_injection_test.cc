// Fault-injection tests over the Casablanca workload: every fault point
// planted in the library is provably reached by the workload, and arming any
// of them yields a clean Status plus a truthful RetrievalReport — never a
// crash, a hang, or silently wrong top-k results.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "engine/query_cache.h"
#include "engine/retrieval.h"
#include "model/video.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "sql/sql_system.h"
#include "testing/helpers.h"
#include "util/fault_point.h"
#include "workload/casablanca.h"

namespace htl {
namespace {

// A freeze query over the Casablanca annotation (value table of type(z)):
// exercises the direct engine's value-table seam on the same video.
constexpr const char* kFreezeQuery =
    "exists z (type(z) = 'person' and [h <- type(z)] eventually (type(z) = h))";

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Instance().DisableAll();
    store_.AddVideo(casablanca::MakeVideo());
    store_.AddVideo(casablanca::MakeVideo());  // Second copy: the healthy video.
  }
  void TearDown() override { FaultRegistry::Instance().DisableAll(); }

  // Runs the retrieval side of the workload: Query 1 end-to-end plus the
  // freeze query. A fresh Retriever each run (caches would otherwise mask
  // fault points on repeat runs). Pinned to serial execution: the counted
  // fault specs below (fire_on_hit = 1) trip on the globally first hit,
  // which is only a deterministic video under the serial evaluation order —
  // parallel fault coverage lives in tests/engine/parallel_retrieval_test.
  static QueryOptions SerialOptions() {
    QueryOptions options;
    options.parallelism = 1;
    return options;
  }

  static Result<SegmentRetrieval> RunRetrieval(MetadataStore* store) {
    Retriever r(store, SerialOptions());
    FormulaPtr q = casablanca::Query1Full();
    return r.TopSegmentsWithReport(*q, 2, 8);
  }

  // Serial + result/list caching on: the configuration that reaches the
  // cache.lookup / cache.fill seams.
  static QueryOptions CachedOptions() {
    QueryOptions options;
    options.parallelism = 1;
    options.cache_mode = CacheMode::kReadWrite;
    return options;
  }

  static Result<SegmentRetrieval> RunCached(Retriever& r) {
    FormulaPtr q = casablanca::Query1Full();
    return r.TopSegmentsWithReport(*q, 2, 8);
  }

  static void ExpectSameHits(const SegmentRetrieval& got,
                             const SegmentRetrieval& want) {
    ASSERT_EQ(got.hits.size(), want.hits.size());
    for (size_t i = 0; i < got.hits.size(); ++i) {
      EXPECT_EQ(got.hits[i].video, want.hits[i].video) << i;
      EXPECT_EQ(got.hits[i].segment, want.hits[i].segment) << i;
      EXPECT_EQ(got.hits[i].sim.actual, want.hits[i].sim.actual) << i;
      EXPECT_EQ(got.hits[i].sim.fraction(), want.hits[i].sim.fraction()) << i;
    }
  }

  static Result<SegmentRetrieval> RunFreeze(MetadataStore* store) {
    Retriever r(store, SerialOptions());
    return r.TopSegmentsWithReport(kFreezeQuery, 2, 8);
  }

  // Runs the SQL-translation side of the workload.
  static Result<SimilarityList> RunSql() {
    FormulaPtr q = casablanca::Query1Named();
    sql::SqlSystem sys;
    return sys.Evaluate(*q, casablanca::NamedInputs(), casablanca::kNumShots);
  }

  MetadataStore store_;
};

TEST_F(FaultInjectionTest, WorkloadReachesEveryKnownFaultPoint) {
  FaultRegistry::Instance().StartTrace();
  ASSERT_OK(RunRetrieval(&store_).status());
  ASSERT_OK(RunFreeze(&store_).status());
  ASSERT_OK(RunSql().status());
  // Twice through one caching retriever: the first run fills, the second
  // probes — together they reach cache.lookup and cache.fill.
  Retriever cached(&store_, CachedOptions());
  ASSERT_OK(RunCached(cached).status());
  ASSERT_OK(RunCached(cached).status());
  // A pruned, sharded run: shard 0 evaluates video 1 and publishes the
  // top-1 floor, so shard 1 derives video 2's bound — together reaching
  // engine.shard_dispatch (checked per shard) and engine.bound_compute.
  {
    QueryOptions options = SerialOptions();
    options.prune = true;
    options.num_shards = 2;
    Retriever r(&store_, options);
    FormulaPtr q = casablanca::Query1Full();
    ASSERT_OK(r.TopSegmentsWithReport(*q, 2, 1).status());
  }
  // One loopback round-trip through the query service reaches the four
  // net.* seams (accept, session, read_frame, write_frame); one admin
  // scrape reaches the three net.admin.* seams on the telemetry listener.
  {
    net::QueryServer server(&store_, net::ServerOptions{});
    ASSERT_OK(server.Start());
    net::ClientOptions copts;
    copts.port = server.port();
    net::QueryRequest request;
    request.kind = net::QueryKind::kHtlSegments;
    request.level = 2;
    request.k = 8;
    request.query_text = "exists x (moving(x))";
    ASSERT_OK_AND_ASSIGN(net::QueryResponse response,
                         net::QueryClient(copts).QueryOnce(request));
    ASSERT_EQ(response.status, net::WireStatus::kWireOk);
    net::ClientOptions aopts;
    aopts.port = server.admin_port();
    ASSERT_OK(net::AdminClient(aopts).Fetch(net::AdminVerb::kHealthz).status());
    ASSERT_OK(server.Shutdown());
  }
  std::map<std::string, int64_t> hits = FaultRegistry::Instance().TraceHits();
  for (std::string_view point : FaultRegistry::KnownPoints()) {
    auto it = hits.find(std::string(point));
    ASSERT_NE(it, hits.end()) << "workload never reached fault point " << point;
    EXPECT_GT(it->second, 0) << point;
  }
}

// The headline degradation property: a fault in one video is isolated — the
// call still returns ranked results over the healthy video, and the report
// names the failed video and the injected error.
TEST_F(FaultInjectionTest, SingleVideoFaultYieldsPartialResultsAndTruthfulReport) {
  for (std::string_view point :
       {std::string_view("picture.query"), std::string_view("engine.table_join")}) {
    SCOPED_TRACE(std::string(point));
    FaultSpec spec;
    spec.fire_on_hit = 1;
    spec.sticky = false;  // Only the very first hit (inside video 1) fires.
    FaultRegistry::Instance().Enable(point, spec);
    ASSERT_OK_AND_ASSIGN(SegmentRetrieval out, RunRetrieval(&store_));
    FaultRegistry::Instance().DisableAll();

    EXPECT_EQ(out.report.videos_failed, 1) << out.report.ToString();
    EXPECT_EQ(out.report.videos_evaluated, 1);
    EXPECT_FALSE(out.report.complete());
    ASSERT_EQ(out.report.failures.size(), 1u);
    EXPECT_EQ(out.report.failures[0].video, 1);
    EXPECT_EQ(out.report.failures[0].status.code(), StatusCode::kInternal);
    EXPECT_NE(out.report.failures[0].status.message().find(point), std::string::npos)
        << "report must name the faulted seam: "
        << out.report.failures[0].status.ToString();

    // The partial result is the healthy video's exact answer (paper Table 4:
    // shots 1-4 lead with actual 12.382).
    ASSERT_GE(out.hits.size(), 1u);
    for (const SegmentHit& h : out.hits) EXPECT_EQ(h.video, 2);
    EXPECT_EQ(out.hits[0].segment, 1);
    EXPECT_NEAR(out.hits[0].sim.actual, 12.382, 1e-9);
  }
}

TEST_F(FaultInjectionTest, ValueTableFaultIsIsolatedPerVideo) {
  FaultSpec spec;
  spec.fire_on_hit = 1;
  spec.sticky = false;
  FaultRegistry::Instance().Enable("engine.value_table", spec);
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval out, RunFreeze(&store_));
  EXPECT_EQ(out.report.videos_failed, 1) << out.report.ToString();
  EXPECT_EQ(out.report.videos_evaluated, 1);
  ASSERT_EQ(out.report.failures.size(), 1u);
  EXPECT_EQ(out.report.failures[0].video, 1);
  for (const SegmentHit& h : out.hits) EXPECT_EQ(h.video, 2);
}

// Every point firing on every hit: the whole store fails, the call still
// returns OK with an empty-but-truthful result (no crash, no hang).
TEST_F(FaultInjectionTest, AllVideosFaultingStillReturnsCleanEmptyResult) {
  for (std::string_view point : FaultRegistry::KnownPoints()) {
    if (point == "sql.scan") continue;  // SQL path asserted separately below.
    SCOPED_TRACE(std::string(point));
    FaultRegistry::Instance().Enable(point, FaultSpec{});
    Result<SegmentRetrieval> retrieval = RunRetrieval(&store_);
    Result<SegmentRetrieval> freeze = RunFreeze(&store_);
    FaultRegistry::Instance().DisableAll();
    for (const Result<SegmentRetrieval>* r : {&retrieval, &freeze}) {
      ASSERT_OK(r->status());
      const SegmentRetrieval& out = r->value();
      // Either the point was on this query's path (both videos failed) or it
      // was not (both evaluated) — the report must never claim otherwise.
      EXPECT_EQ(out.report.videos_failed + out.report.videos_evaluated, 2);
      EXPECT_EQ(out.report.failures.size(),
                static_cast<size_t>(out.report.videos_failed));
      if (out.report.videos_failed == 2) EXPECT_TRUE(out.hits.empty());
    }
  }
}

TEST_F(FaultInjectionTest, SqlScanFaultSurfacesAsCleanStatus) {
  FaultRegistry::Instance().Enable("sql.scan", FaultSpec{});
  Status s = RunSql().status();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("sql.scan"), std::string::npos) << s.ToString();
  // Disarmed again, the same system works and the answer is exact.
  FaultRegistry::Instance().DisableAll();
  ASSERT_OK_AND_ASSIGN(SimilarityList out, RunSql());
  EXPECT_TRUE(out == casablanca::Query1ResultTable());
}

// The strict (report-free) API keeps its historical contract: the first
// injected per-video error fails the call with that error.
TEST_F(FaultInjectionTest, StrictApiSurfacesInjectedError) {
  FaultSpec spec;
  spec.code = StatusCode::kFailedPrecondition;
  FaultRegistry::Instance().Enable("picture.query", spec);
  Retriever r(&store_);
  FormulaPtr q = casablanca::Query1Full();
  Status s = r.TopSegments(*q, 2, 8).status();
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
}

// Probabilistic injection at the busiest seam: whatever subset of videos
// fails, the report stays consistent with the hits (no crash, no lie).
TEST_F(FaultInjectionTest, ProbabilisticFaultsKeepReportConsistent) {
  FaultSpec spec;
  spec.probability = 0.3;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    FaultRegistry::Instance().Seed(seed);
    FaultRegistry::Instance().Enable("picture.query", spec);
    ASSERT_OK_AND_ASSIGN(SegmentRetrieval out, RunRetrieval(&store_));
    FaultRegistry::Instance().DisableAll();
    EXPECT_EQ(out.report.videos_failed + out.report.videos_evaluated, 2);
    EXPECT_EQ(out.report.failures.size(),
              static_cast<size_t>(out.report.videos_failed));
    for (const SegmentHit& h : out.hits) {
      for (const RetrievalReport::VideoFailure& f : out.report.failures) {
        EXPECT_NE(h.video, f.video) << "hit from a video reported as failed";
      }
    }
  }
}

// A fill fault must degrade to cache-bypass recomputation: every run still
// returns the exact cold answer, reports complete, and nothing is ever
// stored (no poisoned entries to serve later).
TEST_F(FaultInjectionTest, CacheFillFaultDegradesToBypassRecompute) {
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval cold, RunRetrieval(&store_));
  FaultRegistry::Instance().Enable("cache.fill", FaultSpec{});  // Every hit.
  Retriever r(&store_, CachedOptions());
  for (int run = 0; run < 3; ++run) {
    SCOPED_TRACE(run);
    ASSERT_OK_AND_ASSIGN(SegmentRetrieval out, RunCached(r));
    ExpectSameHits(out, cold);
    EXPECT_TRUE(out.report.complete()) << out.report.ToString();
  }
  FaultRegistry::Instance().DisableAll();
  EXPECT_EQ(r.caches()->result_stats().entries, 0)
      << "a faulted fill stored an entry";
  EXPECT_EQ(r.caches()->list_stats().entries, 0);
}

// A lookup fault bypasses the cache (even a warm one) and recomputes; the
// answer stays exact either way.
TEST_F(FaultInjectionTest, CacheLookupFaultBypassesButKeepsAnswersExact) {
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval cold, RunRetrieval(&store_));
  Retriever r(&store_, CachedOptions());
  ASSERT_OK(RunCached(r).status());  // Warm the cache while disarmed.
  EXPECT_GT(r.caches()->result_stats().entries, 0);
  FaultRegistry::Instance().Enable("cache.lookup", FaultSpec{});
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval out, RunCached(r));
  FaultRegistry::Instance().DisableAll();
  ExpectSameHits(out, cold);
  EXPECT_TRUE(out.report.complete()) << out.report.ToString();
}

// A partial (faulted) evaluation must never be cached: the next healthy run
// through the same retriever recomputes and returns the complete answer —
// the cache cannot launder a degraded result into a complete-looking one.
TEST_F(FaultInjectionTest, PartialResultsAreNeverCached) {
  Retriever r(&store_, CachedOptions());
  FaultSpec spec;
  spec.fire_on_hit = 1;
  spec.sticky = false;  // Only video 1's first hit fires.
  FaultRegistry::Instance().Enable("picture.query", spec);
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval partial, RunCached(r));
  FaultRegistry::Instance().DisableAll();
  EXPECT_EQ(partial.report.videos_failed, 1) << partial.report.ToString();
  EXPECT_EQ(r.caches()->result_stats().entries, 0)
      << "partial result was cached";

  ASSERT_OK_AND_ASSIGN(SegmentRetrieval healed, RunCached(r));
  EXPECT_TRUE(healed.report.complete()) << healed.report.ToString();
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval cold, RunRetrieval(&store_));
  ExpectSameHits(healed, cold);
}

// A faulted shard dispatch degrades to a truthful partial report: the lost
// shard's range is named in shard_failures, the healthy shard's videos still
// contribute their exact hits, and complete() turns false — never a crash or
// a silently missing range.
TEST_F(FaultInjectionTest, ShardDispatchFaultYieldsTruthfulPartialReport) {
  FaultSpec spec;
  spec.fire_on_hit = 1;
  spec.sticky = false;  // Only shard 0's dispatch fails.
  FaultRegistry::Instance().Enable("engine.shard_dispatch", spec);
  QueryOptions options = SerialOptions();
  options.num_shards = 2;
  Retriever r(&store_, options);
  FormulaPtr q = casablanca::Query1Full();
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval out, r.TopSegmentsWithReport(*q, 2, 8));
  FaultRegistry::Instance().DisableAll();

  EXPECT_FALSE(out.report.complete());
  ASSERT_EQ(out.report.shard_failures.size(), 1u) << out.report.ToString();
  EXPECT_EQ(out.report.shard_failures[0].shard, 0);
  EXPECT_EQ(out.report.shard_failures[0].first_video, 1);
  EXPECT_EQ(out.report.shard_failures[0].last_video, 1);
  EXPECT_NE(out.report.shard_failures[0].status.message().find("engine.shard_dispatch"),
            std::string::npos)
      << "report must name the faulted seam: "
      << out.report.shard_failures[0].status.ToString();
  EXPECT_EQ(out.report.videos_evaluated, 1);  // Only shard 1's video ran.
  EXPECT_EQ(out.report.videos_failed, 0);
  // The partial result is the healthy shard's exact answer (paper Table 4).
  ASSERT_GE(out.hits.size(), 1u);
  for (const SegmentHit& h : out.hits) EXPECT_EQ(h.video, 2);
  EXPECT_EQ(out.hits[0].segment, 1);
  EXPECT_NEAR(out.hits[0].sim.actual, 12.382, 1e-9);
}

// A faulted bound derivation must degrade to plain unpruned evaluation:
// every video evaluates, nothing is pruned, and the answer equals the
// unpruned run bit for bit.
TEST_F(FaultInjectionTest, BoundComputeFaultFallsBackToUnprunedEvaluation) {
  Retriever plain(&store_, SerialOptions());
  FormulaPtr q = casablanca::Query1Full();
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval cold, plain.TopSegmentsWithReport(*q, 2, 1));
  FaultRegistry::Instance().Enable("engine.bound_compute", FaultSpec{});  // Every hit.
  QueryOptions options = SerialOptions();
  options.prune = true;
  Retriever r(&store_, options);
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval out, r.TopSegmentsWithReport(*q, 2, 1));
  FaultRegistry::Instance().DisableAll();

  EXPECT_TRUE(out.report.complete()) << out.report.ToString();
  EXPECT_EQ(out.report.videos_pruned, 0);
  EXPECT_TRUE(out.report.pruned_videos.empty());
  EXPECT_EQ(out.report.videos_evaluated, 2);
  ExpectSameHits(out, cold);
}

}  // namespace
}  // namespace htl
