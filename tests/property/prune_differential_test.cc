// The differential proof behind QueryOptions::prune and num_shards: on
// random corpora and random formulas from all four supported classes,
// bound-based top-k pruning and sharded scatter-gather retrieval reproduce
// the plain path bit for bit — ranked hits, call statuses, failure lists —
// serial and parallel, across shard counts, both engine modes, cached and
// uncached, strict and degraded (pruning-invariant injected faults, blown
// per-video budgets). The reports must also stay truthful: every video is
// accounted for exactly once (evaluated, failed, or pruned), pruned videos
// never appear in the top k, and a pruned run never fails or degrades a
// video the unpruned run did not. Any divergence is shrunk to a minimal
// failing subformula before it is reported.
//
// Faults injected here must be pruning-invariant (their trigger count must
// not depend on how many videos evaluate): engine.bound_compute is only hit
// by the pruned arm and degrades it to plain evaluation; engine.shard_dispatch
// is hit once per shard regardless of pruning (serial runs only — under a
// pool the first-hit shard is racy). Count-dependent points like
// engine.table_join would fire on different videos in the two arms and are
// exercised by tests/property/fault_injection_test.cc instead.

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "engine/exec_context.h"
#include "engine/retrieval.h"
#include "htl/binder.h"
#include "htl/classifier.h"
#include "model/video.h"
#include "testing/helpers.h"
#include "util/fault_point.h"
#include "util/rng.h"
#include "workload/formula_gen.h"
#include "workload/video_gen.h"

namespace htl {
namespace {

// ---------------------------------------------------------------------------
// One retrieval run and everything observable about it.

struct RunConfig {
  int parallelism = 1;
  int num_shards = 1;
  EngineMode engine_mode = EngineMode::kVm;
  CacheMode cache_mode = CacheMode::kOff;
  AndSemantics and_semantics = AndSemantics::kSum;
  int runs = 1;  // >1 exercises the result cache (cold fill, warm probe).
  int64_t k = 8;
  ExecBudgets budgets;       // Defaults to unlimited.
  std::string fault_point;   // Non-empty arms the registry per arm.
  FaultSpec fault_spec;
  uint64_t fault_seed = 1;
};

struct Outcome {
  Status status;  // The call's own status (aborts, never per-video faults).
  std::vector<SegmentHit> hits;
  RetrievalReport report;
};

std::vector<Outcome> RunArm(const MetadataStore& store, const Formula& f, int level,
                            const RunConfig& cfg, bool prune) {
  QueryOptions options;
  options.parallelism = cfg.parallelism;
  options.num_shards = cfg.num_shards;
  options.engine_mode = cfg.engine_mode;
  options.cache_mode = cfg.cache_mode;
  options.and_semantics = cfg.and_semantics;
  options.prune = prune;
  Retriever r(&store, options);
  // Identical fault countdowns for both arms: re-seed and re-arm
  // immediately before each arm's runs.
  if (!cfg.fault_point.empty()) {
    FaultRegistry::Instance().DisableAll();
    FaultRegistry::Instance().Seed(cfg.fault_seed);
    FaultRegistry::Instance().Enable(cfg.fault_point, cfg.fault_spec);
  }
  std::vector<Outcome> outcomes;
  for (int run = 0; run < cfg.runs; ++run) {
    ExecContext ctx;
    ctx.mutable_budgets() = cfg.budgets;
    Result<SegmentRetrieval> out = r.TopSegmentsWithReport(f, level, cfg.k, &ctx);
    Outcome o;
    o.status = out.status();
    if (out.ok()) {
      o.hits = std::move(out.value().hits);
      o.report = std::move(out.value().report);
    }
    outcomes.push_back(std::move(o));
  }
  if (!cfg.fault_point.empty()) FaultRegistry::Instance().DisableAll();
  return outcomes;
}

// ---------------------------------------------------------------------------
// The parity surface: hits, statuses, and a truthful, conservative report.

std::string DescribeHits(const std::vector<SegmentHit>& hits) {
  std::string out;
  for (const SegmentHit& h : hits) {
    out += "  video " + std::to_string(h.video) + " segment " +
           std::to_string(h.segment) + " actual " + std::to_string(h.sim.actual) +
           " / " + std::to_string(h.sim.max) + "\n";
  }
  return out.empty() ? "  (none)\n" : out;
}

::testing::AssertionResult SameOutcome(const Outcome& off, const Outcome& on) {
  if (!(off.status == on.status)) {
    return ::testing::AssertionFailure()
           << "call status diverged: unpruned " << off.status.ToString()
           << " vs pruned " << on.status.ToString();
  }
  if (!off.status.ok()) return ::testing::AssertionSuccess();

  // Ranked output must be bitwise identical.
  if (off.hits.size() != on.hits.size()) {
    return ::testing::AssertionFailure()
           << "hit count diverged: unpruned " << off.hits.size() << " vs pruned "
           << on.hits.size() << "\nunpruned:\n" << DescribeHits(off.hits)
           << "pruned:\n" << DescribeHits(on.hits);
  }
  for (size_t i = 0; i < off.hits.size(); ++i) {
    const SegmentHit& a = off.hits[i];
    const SegmentHit& b = on.hits[i];
    if (a.video != b.video || a.segment != b.segment || !(a.sim == b.sim)) {
      return ::testing::AssertionFailure()
             << "hit " << i << " diverged\nunpruned:\n" << DescribeHits(off.hits)
             << "pruned:\n" << DescribeHits(on.hits);
    }
  }

  // The unpruned arm must not report pruning; the pruned arm's counters must
  // agree with its own skip list.
  if (off.report.videos_pruned != 0 || !off.report.pruned_videos.empty()) {
    return ::testing::AssertionFailure() << "unpruned run claims pruned videos";
  }
  if (on.report.videos_pruned !=
      static_cast<int64_t>(on.report.pruned_videos.size())) {
    return ::testing::AssertionFailure()
           << "pruned count " << on.report.videos_pruned << " != skip list size "
           << on.report.pruned_videos.size();
  }

  // Conservation: every video the unpruned run accounted for is evaluated,
  // failed, or pruned in the pruned run — none invented, none lost.
  if (on.report.videos_evaluated + on.report.videos_failed +
          on.report.videos_pruned !=
      off.report.videos_evaluated + off.report.videos_failed) {
    return ::testing::AssertionFailure()
           << "video accounting diverged: pruned run {evaluated "
           << on.report.videos_evaluated << ", failed " << on.report.videos_failed
           << ", pruned " << on.report.videos_pruned << "} vs unpruned {evaluated "
           << off.report.videos_evaluated << ", failed " << off.report.videos_failed
           << "}";
  }

  // A pruned video was never evaluated, so the pruned run can only fail or
  // degrade a subset of what the unpruned run did.
  if (on.report.videos_degraded > off.report.videos_degraded) {
    return ::testing::AssertionFailure()
           << "pruned run degraded more videos (" << on.report.videos_degraded
           << ") than the unpruned run (" << off.report.videos_degraded << ")";
  }
  std::set<MetadataStore::VideoId> off_failed;
  for (const RetrievalReport::VideoFailure& f : off.report.failures) {
    off_failed.insert(f.video);
  }
  for (const RetrievalReport::VideoFailure& f : on.report.failures) {
    if (off_failed.count(f.video) == 0) {
      return ::testing::AssertionFailure()
             << "pruned run failed video " << f.video
             << " which the unpruned run did not";
    }
  }

  // Soundness: a pruned video must be provably irrelevant — outside the top
  // k and outside the failure list.
  std::set<MetadataStore::VideoId> pruned(on.report.pruned_videos.begin(),
                                          on.report.pruned_videos.end());
  for (const SegmentHit& h : on.hits) {
    if (pruned.count(h.video) != 0) {
      return ::testing::AssertionFailure()
             << "pruned video " << h.video << " appears in the top-k";
    }
  }
  for (const RetrievalReport::VideoFailure& f : on.report.failures) {
    if (pruned.count(f.video) != 0) {
      return ::testing::AssertionFailure()
             << "video " << f.video << " reported both pruned and failed";
    }
  }

  // Shard losses must match exactly: shard index, range, and status code.
  if (off.report.shard_failures.size() != on.report.shard_failures.size()) {
    return ::testing::AssertionFailure() << "shard failure counts diverged";
  }
  for (size_t i = 0; i < off.report.shard_failures.size(); ++i) {
    const RetrievalReport::ShardFailure& a = off.report.shard_failures[i];
    const RetrievalReport::ShardFailure& b = on.report.shard_failures[i];
    if (a.shard != b.shard || a.first_video != b.first_video ||
        a.last_video != b.last_video || a.status.code() != b.status.code()) {
      return ::testing::AssertionFailure() << "shard failure " << i << " diverged";
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult SameArms(const std::vector<Outcome>& off,
                                    const std::vector<Outcome>& on) {
  if (off.size() != on.size()) {
    return ::testing::AssertionFailure() << "run-count mismatch";
  }
  for (size_t i = 0; i < off.size(); ++i) {
    ::testing::AssertionResult same = SameOutcome(off[i], on[i]);
    if (!same) return ::testing::AssertionFailure() << "run " << i << ": "
                                                    << same.message();
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Shrinking: walk down to the smallest closed subformula that still
// diverges, so a failure names a minimal reproducer.

using FailPred = std::function<bool(const Formula&)>;

const Formula* ShrinkToMinimal(const Formula* f, const FailPred& diverges) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (const Formula* child : {f->left.get(), f->right.get()}) {
      if (child == nullptr) continue;
      if (!FreeObjectVars(*child).empty() || !FreeAttrVars(*child).empty()) {
        continue;  // Open subtrees are not evaluable on their own.
      }
      if (diverges(*child)) {
        f = child;
        shrunk = true;
        break;
      }
    }
  }
  return f;
}

// Runs the pruned-vs-unpruned comparison for one formula; on divergence,
// shrinks and fails with the minimal formula.
void ExpectPruningInvisible(const MetadataStore& store, const Formula& f, int level,
                            const RunConfig& cfg, uint64_t seed) {
  auto diverges = [&](const Formula& g) {
    return !SameArms(RunArm(store, g, level, cfg, /*prune=*/false),
                     RunArm(store, g, level, cfg, /*prune=*/true));
  };
  std::vector<Outcome> off = RunArm(store, f, level, cfg, /*prune=*/false);
  std::vector<Outcome> on = RunArm(store, f, level, cfg, /*prune=*/true);
  ::testing::AssertionResult same = SameArms(off, on);
  if (same) return;
  const Formula* minimal = ShrinkToMinimal(&f, diverges);
  ADD_FAILURE() << same.message() << "\nseed " << seed << "\nformula: "
                << f.ToString() << "\nminimal reproducer: " << minimal->ToString();
}

// ---------------------------------------------------------------------------
// Corpus and formula generation, with class-coverage accounting.

struct ClassCoverage {
  int counts[5] = {0, 0, 0, 0, 0};
  void Count(FormulaClass c) { ++counts[static_cast<int>(c)]; }
};

// One generated (corpus, formula) pair per seed: a small skewed corpus with
// planted selective markers (so bounds actually separate videos) plus a
// random formula of the requested shape.
FormulaClass PruneTrial(uint64_t seed, const FormulaGenOptions& fopts_in,
                        int video_levels, const RunConfig& cfg) {
  Rng rng(seed);
  MetadataStore store;
  CorpusGenOptions corpus;
  corpus.num_videos = 14;
  corpus.video.levels = video_levels;
  corpus.video.min_branching = video_levels == 2 ? 3 : 2;
  corpus.video.max_branching = video_levels == 2 ? 6 : 3;
  corpus.video.num_objects = 4;
  corpus.selective_fraction = 0.3;
  corpus.size_skew = 0.25;
  corpus.seed = seed * 7919 + 13;
  GenerateCorpus(corpus, &store);

  FormulaGenOptions fopts = fopts_in;
  fopts.max_levels = store.Video(1).num_levels();
  FormulaPtr f = GenerateFormula(rng, fopts);
  Status bound = Bind(f.get());
  EXPECT_TRUE(bound.ok()) << bound.ToString() << "\n" << f->ToString();

  const int level = fopts.allow_level ? 2 : store.Video(1).num_levels();
  ExpectPruningInvisible(store, *f, level, cfg, seed);
  return Classify(*f);
}

// The four generator shapes that together cover every supported class.
FormulaGenOptions ShapeType1() {
  FormulaGenOptions o;
  o.allow_exists = false;
  o.allow_freeze = false;
  return o;
}
FormulaGenOptions ShapeConjunctive() { return FormulaGenOptions{}; }
FormulaGenOptions ShapeExtended() {
  FormulaGenOptions o;
  o.allow_level = true;
  return o;
}
FormulaGenOptions ShapeGeneral() {
  FormulaGenOptions o;
  o.allow_or = true;
  o.allow_closed_not = true;
  return o;
}

void SweepAllShapes(uint64_t seed_base, const RunConfig& cfg, int trials) {
  ClassCoverage coverage;
  auto covered = [&] {
    return coverage.counts[static_cast<int>(FormulaClass::kType1)] > 0 &&
           coverage.counts[static_cast<int>(FormulaClass::kType2)] +
                   coverage.counts[static_cast<int>(FormulaClass::kConjunctive)] >
               0 &&
           coverage.counts[static_cast<int>(FormulaClass::kExtendedConjunctive)] > 0 &&
           coverage.counts[static_cast<int>(FormulaClass::kGeneral)] > 0;
  };
  constexpr int kMaxTopUpRounds = 64;
  for (int round = 0; round < trials + kMaxTopUpRounds; ++round) {
    if (round >= trials && covered()) break;
    const uint64_t seed = seed_base + static_cast<uint64_t>(round);
    coverage.Count(PruneTrial(seed, ShapeType1(), 2, cfg));
    coverage.Count(PruneTrial(seed + 100, ShapeConjunctive(), 2, cfg));
    coverage.Count(PruneTrial(seed + 200, ShapeExtended(), 3, cfg));
    coverage.Count(PruneTrial(seed + 300, ShapeGeneral(), 2, cfg));
  }
  // All four supported classes must have been exercised — a generator
  // regression would otherwise hollow out the proof.
  EXPECT_GT(coverage.counts[static_cast<int>(FormulaClass::kType1)], 0);
  EXPECT_GT(coverage.counts[static_cast<int>(FormulaClass::kType2)] +
                coverage.counts[static_cast<int>(FormulaClass::kConjunctive)],
            0);
  EXPECT_GT(coverage.counts[static_cast<int>(FormulaClass::kExtendedConjunctive)], 0);
  EXPECT_GT(coverage.counts[static_cast<int>(FormulaClass::kGeneral)], 0);
}

// ---------------------------------------------------------------------------
// The battery.

TEST(PruneDifferentialTest, SerialUnshardedAllClasses) {
  RunConfig cfg;
  SweepAllShapes(/*seed_base=*/1, cfg, /*trials=*/5);
}

TEST(PruneDifferentialTest, ShardCountsPreserveOutput) {
  for (int shards : {2, 8}) {
    RunConfig cfg;
    cfg.num_shards = shards;
    SCOPED_TRACE(shards);
    SweepAllShapes(/*seed_base=*/40 + static_cast<uint64_t>(shards) * 1000, cfg,
                   /*trials=*/3);
  }
}

TEST(PruneDifferentialTest, ParallelShardedMatchesSerialUnpruned) {
  RunConfig cfg;
  cfg.parallelism = 4;
  cfg.num_shards = 8;
  SweepAllShapes(/*seed_base=*/80, cfg, /*trials=*/3);
}

TEST(PruneDifferentialTest, InterpreterEngineAgreesToo) {
  RunConfig cfg;
  cfg.engine_mode = EngineMode::kInterpret;
  cfg.num_shards = 2;
  SweepAllShapes(/*seed_base=*/120, cfg, /*trials=*/3);
}

TEST(PruneDifferentialTest, FuzzyMinAndSemantics) {
  RunConfig cfg;
  cfg.and_semantics = AndSemantics::kFuzzyMin;
  SweepAllShapes(/*seed_base=*/160, cfg, /*trials=*/3);
}

TEST(PruneDifferentialTest, SmallKTieBreaksSurvivePruning) {
  // k = 1 maximizes the floor (and so the pruning rate); ties at the floor
  // must still evaluate, or id tie-breaks would silently change.
  for (int64_t k : {1, 3}) {
    RunConfig cfg;
    cfg.k = k;
    SCOPED_TRACE(k);
    SweepAllShapes(/*seed_base=*/200 + static_cast<uint64_t>(k) * 1000, cfg,
                   /*trials=*/3);
  }
}

TEST(PruneDifferentialTest, CachedColdAndWarmRuns) {
  RunConfig cfg;
  cfg.cache_mode = CacheMode::kReadWrite;
  cfg.runs = 2;  // Cold fill, then warm probe — both compared run by run.
  SweepAllShapes(/*seed_base=*/240, cfg, /*trials=*/3);
}

TEST(PruneDifferentialTest, BlownPerVideoBudgetsStayIdentical) {
  // Budget exhaustion is deterministic per video, so it is pruning-invariant:
  // a video that blows its budget does so in both arms (unless pruned, which
  // the subset checks allow).
  for (int variant = 0; variant < 2; ++variant) {
    RunConfig cfg;
    if (variant == 0) cfg.budgets.max_rows = 60;
    if (variant == 1) cfg.budgets.max_tables = 4;
    SCOPED_TRACE(variant);
    SweepAllShapes(/*seed_base=*/280 + static_cast<uint64_t>(variant) * 1000, cfg,
                   /*trials=*/2);
  }
}

TEST(PruneDifferentialTest, BoundComputeFaultsDegradeInvisibly) {
  // The bound seam only exists in the pruned arm; killing it must leave the
  // pruned arm exactly equal to the unpruned one (just with nothing pruned).
  for (int variant = 0; variant < 2; ++variant) {
    RunConfig cfg;
    cfg.fault_point = "engine.bound_compute";
    if (variant == 0) {
      cfg.fault_spec = FaultSpec{};  // Every hit.
    } else {
      cfg.fault_spec.probability = 0.5;
      cfg.fault_seed = 11;
    }
    SCOPED_TRACE(variant);
    SweepAllShapes(/*seed_base=*/320 + static_cast<uint64_t>(variant) * 1000, cfg,
                   /*trials=*/2);
  }
}

TEST(PruneDifferentialTest, ShardDispatchFaultsLoseTheSameRangeInBothArms) {
  // Dispatch is hit exactly once per shard regardless of pruning, so a
  // counted spec kills the same shard in both arms; serial keeps the hit
  // order deterministic.
  RunConfig cfg;
  cfg.num_shards = 4;
  cfg.fault_point = "engine.shard_dispatch";
  cfg.fault_spec.fire_on_hit = 2;  // The second shard of each run.
  cfg.fault_spec.sticky = false;
  SweepAllShapes(/*seed_base=*/400, cfg, /*trials=*/2);
}

// The strict (report-free) API: fault-free, pruning must preserve the exact
// hits and the OK status. (Faulting strict runs are out of scope by design:
// pruning may legitimately skip the very video whose failure the strict
// contract would surface, turning a failed call into a successful one.)
TEST(PruneDifferentialTest, StrictApiFaultFreeParity) {
  for (uint64_t seed = 440; seed < 444; ++seed) {
    Rng rng(seed);
    MetadataStore store;
    CorpusGenOptions corpus;
    corpus.num_videos = 12;
    corpus.video.levels = 2;
    corpus.selective_fraction = 0.4;
    corpus.seed = seed;
    GenerateCorpus(corpus, &store);
    FormulaPtr f = GenerateFormula(rng, FormulaGenOptions{});
    ASSERT_OK(Bind(f.get()));

    QueryOptions plain;
    plain.parallelism = 1;
    QueryOptions pruned = plain;
    pruned.prune = true;
    pruned.num_shards = 2;
    Retriever a(&store, plain);
    Retriever b(&store, pruned);
    Result<std::vector<SegmentHit>> want = a.TopSegments(*f, 2, 4);
    Result<std::vector<SegmentHit>> got = b.TopSegments(*f, 2, 4);
    ASSERT_EQ(want.ok(), got.ok()) << f->ToString();
    if (!want.ok()) {
      EXPECT_TRUE(want.status() == got.status()) << f->ToString();
      continue;
    }
    ASSERT_EQ(got.value().size(), want.value().size()) << f->ToString();
    for (size_t i = 0; i < got.value().size(); ++i) {
      EXPECT_EQ(got.value()[i].video, want.value()[i].video) << f->ToString();
      EXPECT_EQ(got.value()[i].segment, want.value()[i].segment);
      EXPECT_TRUE(got.value()[i].sim == want.value()[i].sim);
    }
  }
}

// Whole-video retrieval prunes at the root: same parity surface.
TEST(PruneDifferentialTest, TopVideosParityAcrossShardsAndPruning) {
  for (uint64_t seed = 480; seed < 484; ++seed) {
    Rng rng(seed);
    MetadataStore store;
    CorpusGenOptions corpus;
    corpus.num_videos = 12;
    corpus.video.levels = 2;
    corpus.selective_fraction = 0.4;
    corpus.seed = seed;
    GenerateCorpus(corpus, &store);
    FormulaPtr f = GenerateFormula(rng, FormulaGenOptions{});
    ASSERT_OK(Bind(f.get()));

    QueryOptions plain;
    plain.parallelism = 1;
    Retriever a(&store, plain);
    Result<VideoRetrieval> want = a.TopVideosWithReport(*f, 3);
    for (int shards : {1, 2, 8}) {
      SCOPED_TRACE(shards);
      QueryOptions pruned = plain;
      pruned.prune = true;
      pruned.num_shards = shards;
      Retriever b(&store, pruned);
      Result<VideoRetrieval> got = b.TopVideosWithReport(*f, 3);
      ASSERT_EQ(want.ok(), got.ok()) << f->ToString();
      if (!want.ok()) continue;
      ASSERT_EQ(got->hits.size(), want->hits.size()) << f->ToString();
      for (size_t i = 0; i < got->hits.size(); ++i) {
        EXPECT_EQ(got->hits[i].video, want->hits[i].video) << f->ToString();
        EXPECT_TRUE(got->hits[i].sim == want->hits[i].sim);
      }
      std::set<MetadataStore::VideoId> pruned_ids(got->report.pruned_videos.begin(),
                                                  got->report.pruned_videos.end());
      for (const VideoHit& h : got->hits) EXPECT_EQ(pruned_ids.count(h.video), 0u);
      EXPECT_EQ(got->report.videos_evaluated + got->report.videos_failed +
                    got->report.videos_pruned,
                want->report.videos_evaluated + want->report.videos_failed);
    }
  }
}

}  // namespace
}  // namespace htl
