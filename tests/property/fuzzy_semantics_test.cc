// The alternative similarity function of section 5's future work
// (AndSemantics::kFuzzyMin): both engines must still agree, and the fuzzy
// conjunction must satisfy its defining properties.

#include <gtest/gtest.h>

#include "engine/direct_engine.h"
#include "engine/reference_engine.h"
#include "htl/binder.h"
#include "sim/list_ops.h"
#include "testing/helpers.h"
#include "util/rng.h"
#include "workload/formula_gen.h"
#include "workload/random_lists.h"
#include "workload/video_gen.h"

namespace htl {
namespace {

using testing::L;
using testing::ListsEqual;
using testing::ListsNear;

TEST(FuzzyMinMergeTest, TakesMinOfFractions) {
  SimilarityList g = L({{1, 10, 2.0}}, 4.0);   // fraction 0.5
  SimilarityList h = L({{5, 15, 3.0}}, 12.0);  // fraction 0.25
  SimilarityList out = FuzzyMinAndMerge(g, h);
  EXPECT_EQ(out.max(), 16.0);
  // Overlap [5,10]: min(0.5, 0.25) * 16 = 4. One-sided parts: min with 0 = 0.
  EXPECT_TRUE(ListsEqual(out, L({{5, 10, 4.0}}, 16.0)));
}

TEST(FuzzyMinMergeTest, ExactMatchesStayExact) {
  SimilarityList g = L({{1, 4, 4.0}}, 4.0);
  SimilarityList h = L({{1, 4, 12.0}}, 12.0);
  SimilarityList out = FuzzyMinAndMerge(g, h);
  EXPECT_TRUE(ListsEqual(out, L({{1, 4, 16.0}}, 16.0)));
}

TEST(FuzzyMinMergeTest, CommutativeAndIdempotentOnFractions) {
  Rng rng(5);
  RandomListOptions opts;
  opts.num_segments = 200;
  opts.coverage = 0.3;
  SimilarityList a = GenerateRandomList(rng, opts);
  SimilarityList b = GenerateRandomList(rng, opts);
  EXPECT_TRUE(ListsEqual(FuzzyMinAndMerge(a, b), FuzzyMinAndMerge(b, a)));
  // a fuzzy-and a keeps all fractions (doubled encoding).
  SimilarityList aa = FuzzyMinAndMerge(a, a);
  for (const SimEntry& e : a.entries()) {
    EXPECT_NEAR(aa.ValueAt(e.range.begin).fraction(), e.actual / a.max(), 1e-12);
  }
}

class FuzzyEnginesAgreeTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzyEnginesAgreeTest, DirectMatchesReferenceUnderFuzzyMin) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 131 + 7);
  VideoGenOptions vopts;
  vopts.levels = 2;
  vopts.min_branching = 6;
  vopts.max_branching = 12;
  vopts.num_objects = 4;
  VideoTree video = GenerateVideo(rng, vopts);

  QueryOptions options;
  options.and_semantics = AndSemantics::kFuzzyMin;
  DirectEngine direct(&video, options);
  ReferenceEngine reference(&video, options);

  FormulaGenOptions fopts;
  fopts.max_depth = 3;
  for (int trial = 0; trial < 6; ++trial) {
    FormulaPtr f = GenerateFormula(rng, fopts);
    ASSERT_OK(Bind(f.get()));
    auto got = direct.EvaluateList(2, *f);
    auto want = reference.EvaluateList(2, *f);
    ASSERT_OK(want.status());
    ASSERT_OK(got.status());
    EXPECT_TRUE(ListsNear(got.value(), want.value(), 1e-9))
        << "formula: " << f->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzyEnginesAgreeTest, ::testing::Range(0, 8));

TEST(FuzzySemanticsTest, ChangesRankingsAsExpected) {
  // Segment 1: strong g, no h (a one-sided partial match).
  // Segment 2: moderate g and h (a balanced full match).
  SimilarityList g = L({{1, 1, 9.0}, {2, 2, 4.0}}, 10.0);
  SimilarityList h = L({{2, 2, 4.0}}, 10.0);

  SimilarityList sum = AndMerge(g, h);
  EXPECT_EQ(sum.ActualAt(1), 9.0);  // Under sum the partial match ranks first...
  EXPECT_EQ(sum.ActualAt(2), 8.0);

  SimilarityList fuzzy = FuzzyMinAndMerge(g, h);
  EXPECT_EQ(fuzzy.ActualAt(1), 0.0);  // ...under fuzzy-min it scores zero,
  EXPECT_EQ(fuzzy.ActualAt(2), 8.0);  // and the balanced match wins.
}

}  // namespace
}  // namespace htl
