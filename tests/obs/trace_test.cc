// QueryTrace / TraceSpan tests: span nesting and timing, operator-stat
// accumulation, the null-trace no-op contract, the thread-local attach used
// by fault points, and profile rendering.

#include <gtest/gtest.h>

#include <string>

#include "obs/profile.h"
#include "obs/trace.h"
#include "util/fault_point.h"
#include "util/status.h"

namespace htl::obs {
namespace {

TEST(QueryTraceTest, SpansNestInLifoOrder) {
  QueryTrace trace;
  {
    TraceSpan outer(&trace, "stage.execute");
    {
      TraceSpan inner(&trace, "op.and_merge");
      inner.AddIntervals(3);
    }
    {
      TraceSpan inner(&trace, "op.until_merge");
      inner.AddIntervals(5);
    }
  }
  EXPECT_EQ(trace.num_spans(), 3);
  const QueryProfile profile = trace.Finish();
  ASSERT_EQ(profile.roots.size(), 1u);
  const QueryProfile::Node& root = profile.roots[0];
  EXPECT_EQ(root.name, "stage.execute");
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].name, "op.and_merge");
  EXPECT_EQ(root.children[0].stats.intervals, 3);
  EXPECT_EQ(root.children[1].name, "op.until_merge");
  EXPECT_EQ(root.children[1].stats.intervals, 5);
  // Span times are steady-clock deltas: non-negative, parent >= 0.
  EXPECT_GE(root.nanos, 0);
  EXPECT_GE(root.children[0].nanos, 0);
}

TEST(QueryTraceTest, StatsUnitAndNoteAccumulate) {
  QueryTrace trace;
  {
    TraceSpan span(&trace, "video");
    span.SetUnit(7);
    span.AddRows(10);
    span.AddRows(5);
    span.AddTables(2);
    span.SetNote("degraded");
    EXPECT_TRUE(span.active());
  }
  const QueryProfile profile = trace.Finish();
  ASSERT_EQ(profile.roots.size(), 1u);
  EXPECT_EQ(profile.roots[0].unit, 7);
  EXPECT_EQ(profile.roots[0].stats.rows, 15);
  EXPECT_EQ(profile.roots[0].stats.tables, 2);
  EXPECT_EQ(profile.roots[0].note, "degraded");
}

TEST(QueryTraceTest, NullTraceIsANoOp) {
  TraceSpan span(nullptr, "op.anything");
  EXPECT_FALSE(span.active());
  span.AddRows(5);  // Must not crash.
  span.SetNote("ignored");
}

TEST(QueryTraceTest, FinishClosesOpenSpansAndSpendsTheTrace) {
  QueryTrace trace;
  const QueryTrace::SpanId id = trace.BeginSpan("stage.execute");
  (void)id;  // Left open deliberately.
  const QueryProfile profile = trace.Finish();
  ASSERT_EQ(profile.roots.size(), 1u);
  EXPECT_GE(profile.roots[0].nanos, 0);
  // Spent: a second Finish yields an empty profile.
  EXPECT_TRUE(trace.Finish().empty());
  EXPECT_EQ(trace.num_spans(), 0);
}

TEST(QueryTraceTest, FindLocatesSpansDepthFirst) {
  QueryTrace trace;
  {
    TraceSpan a(&trace, "stage.execute");
    TraceSpan b(&trace, "video");
    b.SetUnit(1);
  }
  const QueryProfile profile = trace.Finish();
  ASSERT_NE(profile.Find("video"), nullptr);
  EXPECT_EQ(profile.Find("video")->unit, 1);
  EXPECT_EQ(profile.Find("no.such.span"), nullptr);
  EXPECT_NE(profile.TotalNanos(), -1);
}

TEST(QueryTraceTest, CurrentFollowsScopedAttach) {
  EXPECT_EQ(QueryTrace::Current(), nullptr);
  QueryTrace outer_trace;
  {
    ScopedTraceAttach outer(&outer_trace);
    EXPECT_EQ(QueryTrace::Current(), &outer_trace);
    QueryTrace inner_trace;
    {
      ScopedTraceAttach inner(&inner_trace);
      EXPECT_EQ(QueryTrace::Current(), &inner_trace);
    }
    EXPECT_EQ(QueryTrace::Current(), &outer_trace);
  }
  EXPECT_EQ(QueryTrace::Current(), nullptr);
}

TEST(QueryTraceTest, RecordFaultLandsInProfileAndAnnotatesOpenSpan) {
  QueryTrace trace;
  {
    TraceSpan span(&trace, "op.picture_query");
    trace.RecordFault("picture.query", Status::Internal("injected"));
  }
  const QueryProfile profile = trace.Finish();
  ASSERT_EQ(profile.fault_trips.size(), 1u);
  EXPECT_EQ(profile.fault_trips[0].point, "picture.query");
  EXPECT_NE(profile.fault_trips[0].status.find("injected"), std::string::npos);
  ASSERT_EQ(profile.roots.size(), 1u);
  EXPECT_NE(profile.roots[0].note.find("fault:picture.query"), std::string::npos);
}

// The integration seam satellite 2 relies on: an armed fault point fired
// under an attached trace records itself without any ExecContext in reach.
TEST(QueryTraceTest, FaultRegistryHitReportsIntoCurrentTrace) {
  FaultRegistry::Instance().DisableAll();
  FaultSpec spec;
  spec.code = StatusCode::kInternal;
  spec.fire_on_hit = 1;
  FaultRegistry::Instance().Enable("picture.query", spec);
  QueryTrace trace;
  {
    ScopedTraceAttach attach(&trace);
    const Status hit = FaultRegistry::Instance().Hit("picture.query");
    EXPECT_EQ(hit.code(), StatusCode::kInternal);
  }
  FaultRegistry::Instance().DisableAll();
  const QueryProfile profile = trace.Finish();
  ASSERT_EQ(profile.fault_trips.size(), 1u);
  EXPECT_EQ(profile.fault_trips[0].point, "picture.query");
}

TEST(QueryTraceTest, ToTextRendersTreeStatsAndFaults) {
  QueryTrace trace;
  {
    TraceSpan outer(&trace, "stage.execute");
    TraceSpan inner(&trace, "video");
    inner.SetUnit(3);
    inner.AddRows(12);
    trace.RecordFault("engine.table_join", Status::Internal("boom"));
  }
  const std::string text = trace.Finish().ToText();
  EXPECT_NE(text.find("query profile"), std::string::npos);
  EXPECT_NE(text.find("stage.execute"), std::string::npos);
  EXPECT_NE(text.find("video #3"), std::string::npos);
  EXPECT_NE(text.find("rows=12"), std::string::npos);
  EXPECT_NE(text.find("fault trip: engine.table_join"), std::string::npos);
}

}  // namespace
}  // namespace htl::obs
