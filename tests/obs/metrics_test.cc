// Metrics-registry tests: counter/gauge/histogram semantics, bucket
// boundaries, registry pointer stability, the enable gate, and the
// concurrency contracts (exact totals under concurrent increments; snapshots
// taken while writers run are coherent, never torn).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace htl::obs {
namespace {

// Every test runs against the process-wide registry, so isolate by prefixing
// metric names per test and restoring the disabled state.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Instance().SetEnabled(false); }
  void TearDown() override {
    MetricsRegistry::Instance().SetEnabled(false);
    MetricsRegistry::Instance().ResetAll();
  }
};

TEST_F(MetricsTest, CounterBasics) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST_F(MetricsTest, GaugeGoesUpAndDown) {
  Gauge g;
  g.Set(7);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 4);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST_F(MetricsTest, HistogramBucketBoundariesAreInclusive) {
  Histogram h({10, 100, 1000});
  // One observation per region: below first bound, exactly on each bound,
  // between bounds, and overflow.
  h.Observe(0);     // bucket 0 (<= 10)
  h.Observe(10);    // bucket 0 (inclusive upper bound)
  h.Observe(11);    // bucket 1
  h.Observe(100);   // bucket 1 (inclusive)
  h.Observe(101);   // bucket 2
  h.Observe(1000);  // bucket 2 (inclusive)
  h.Observe(1001);  // overflow bucket
  const Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 7);
  EXPECT_EQ(snap.sum, 0 + 10 + 11 + 100 + 101 + 1000 + 1001);
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2);
  EXPECT_EQ(snap.buckets[1], 2);
  EXPECT_EQ(snap.buckets[2], 2);
  EXPECT_EQ(snap.buckets[3], 1);
  h.Reset();
  EXPECT_EQ(h.Snap().count, 0);
}

TEST_F(MetricsTest, ExponentialBoundsAreStrictlyIncreasing) {
  const std::vector<int64_t> bounds = Histogram::ExponentialBounds(1, 1.1, 16);
  ASSERT_EQ(bounds.size(), 16u);
  EXPECT_EQ(bounds.front(), 1);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "at index " << i;
  }
}

TEST_F(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* a = reg.GetCounter("metrics_test.stable");
  Counter* b = reg.GetCounter("metrics_test.stable");
  EXPECT_EQ(a, b);
  Gauge* g1 = reg.GetGauge("metrics_test.gauge");
  Gauge* g2 = reg.GetGauge("metrics_test.gauge");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = reg.GetHistogram("metrics_test.hist", {1, 2, 3});
  Histogram* h2 = reg.GetHistogram("metrics_test.hist", {9});  // Bounds ignored.
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds().size(), 3u);
}

TEST_F(MetricsTest, EnableGateControlsMacro) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* c = reg.GetCounter("metrics_test.gated");
  c->Reset();
  HTL_OBS_COUNT("metrics_test.gated", 5);  // Disabled: no-op.
  EXPECT_EQ(c->Value(), 0);
  reg.SetEnabled(true);
  HTL_OBS_COUNT("metrics_test.gated", 5);
  HTL_OBS_COUNT("metrics_test.gated", 2);
  EXPECT_EQ(c->Value(), 7);
  reg.SetEnabled(false);
  HTL_OBS_COUNT("metrics_test.gated", 100);
  EXPECT_EQ(c->Value(), 7);
}

TEST_F(MetricsTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* c = reg.GetCounter("metrics_test.concurrent");
  c->Reset();
  Histogram* h = reg.GetHistogram("metrics_test.concurrent_hist",
                                  Histogram::ExponentialBounds(1, 2.0, 10));
  h->Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(t + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<int64_t>(kThreads) * kPerThread);
  const Histogram::Snapshot snap = h->Snap();
  EXPECT_EQ(snap.count, static_cast<int64_t>(kThreads) * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST_F(MetricsTest, SnapshotWhileWritingIsCoherent) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* c = reg.GetCounter("metrics_test.racing");
  c->Reset();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) c->Increment();
  });
  int64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const MetricsSnapshot snap = reg.Snapshot();
    bool found = false;
    for (const MetricsSnapshot::CounterRow& row : snap.counters) {
      if (row.name == "metrics_test.racing") {
        // Monotone, never torn, never negative.
        EXPECT_GE(row.value, last);
        last = row.value;
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GE(c->Value(), last);
}

TEST_F(MetricsTest, ResetAllZeroesButKeepsRegistrations) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* c = reg.GetCounter("metrics_test.reset");
  c->Add(9);
  reg.ResetAll();
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(reg.GetCounter("metrics_test.reset"), c);
}

TEST_F(MetricsTest, SnapshotSerializes) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.GetCounter("metrics_test.json_counter")->Add(3);
  reg.GetGauge("metrics_test.json_gauge")->Set(-4);
  reg.GetHistogram("metrics_test.json_hist", {5})->Observe(2);
  const MetricsSnapshot snap = reg.Snapshot();
  const std::string text = snap.ToText();
  EXPECT_NE(text.find("metrics_test.json_counter"), std::string::npos);
  EXPECT_NE(text.find("metrics_test.json_gauge"), std::string::npos);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics_test.json_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"metrics_test.json_gauge\": -4"), std::string::npos);
  EXPECT_NE(json.find("\"metrics_test.json_hist\""), std::string::npos);
}

int64_t SnapshotSeqIn(const MetricsSnapshot& snap) {
  for (const MetricsSnapshot::GaugeRow& row : snap.gauges) {
    if (row.name == kSnapshotSeqName) return row.value;
  }
  ADD_FAILURE() << "snapshot carries no " << kSnapshotSeqName;
  return -1;
}

TEST_F(MetricsTest, SnapshotSeqRidesEverySnapshotAndBumpsOnReset) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.GetGauge("metrics_test.seq_neighbour")->Set(1);
  const int64_t before = SnapshotSeqIn(reg.Snapshot());
  EXPECT_EQ(before, reg.snapshot_seq());
  reg.ResetAll();
  reg.ResetAll();
  EXPECT_EQ(SnapshotSeqIn(reg.Snapshot()), before + 2);
  // The synthetic gauge is NOT a registered gauge: it survives the very
  // reset it reports instead of being zeroed along with everything else.
  EXPECT_EQ(reg.snapshot_seq(), before + 2);

  // It is spliced into the sorted gauge listing, not bolted on the end.
  const MetricsSnapshot snap = reg.Snapshot();
  for (size_t i = 1; i < snap.gauges.size(); ++i) {
    EXPECT_LE(snap.gauges[i - 1].name, snap.gauges[i].name) << "at " << i;
  }
}

TEST_F(MetricsTest, ConcurrentResetAndSnapshotObeySeqContract) {
  // The documented poller contract: a snapshot is never torn, and a counter
  // may only appear to move backwards across two scrapes when
  // obs.snapshot_seq changed in between (ResetAll ran). Hammer reset,
  // write, and snapshot concurrently and check exactly that.
  MetricsRegistry& reg = MetricsRegistry::Instance();
  Counter* c = reg.GetCounter("metrics_test.seq_race");
  c->Reset();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) c->Increment();
  });
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_relaxed)) reg.ResetAll();
  });

  int64_t last_value = 0;
  int64_t last_seq = -1;
  for (int i = 0; i < 500; ++i) {
    const MetricsSnapshot snap = reg.Snapshot();
    const int64_t seq = SnapshotSeqIn(snap);
    ASSERT_GE(seq, last_seq) << "reset sequence must be monotone";
    int64_t value = -1;
    for (const MetricsSnapshot::CounterRow& row : snap.counters) {
      if (row.name == "metrics_test.seq_race") value = row.value;
    }
    ASSERT_GE(value, 0) << "counter missing or torn";
    if (seq == last_seq && value < last_value) {
      ADD_FAILURE() << "counter moved backwards (" << last_value << " -> "
                    << value << ") without a seq change at scrape " << i;
    }
    last_value = value;
    last_seq = seq;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  resetter.join();
}

}  // namespace
}  // namespace htl::obs
