// Chrome trace_event export: structural shape of the JSON, synthesized
// timestamps (children stack inside parents, siblings offset by duration),
// fault-trip instant events, arg elision, and escaping of hostile span text.

#include "obs/trace_export.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/profile.h"

namespace htl::obs {
namespace {

QueryProfile::Node MakeNode(std::string name, int64_t nanos) {
  QueryProfile::Node node;
  node.name = std::move(name);
  node.nanos = nanos;
  return node;
}

// A whitespace-light structural check sufficient for our own emitter: every
// brace/bracket nests and every quote closes. (CI additionally round-trips
// exported traces through `python -m json.tool`.)
bool LooksLikeBalancedJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TEST(TraceExport, EmptyProfileIsValidAndEventless) {
  const std::string json = ProfileToChromeTrace(QueryProfile{});
  EXPECT_TRUE(LooksLikeBalancedJson(json)) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_EQ(json.find("\"ph\""), std::string::npos);
}

TEST(TraceExport, SynthesizesStackedTimestamps) {
  // root (5us) with children a (2us) then b (1us): a starts at the root's
  // ts, b starts where a ends. A second root starts where the first ends.
  QueryProfile profile;
  QueryProfile::Node root = MakeNode("stage.execute", 5000);
  root.children.push_back(MakeNode("op.a", 2000));
  root.children.push_back(MakeNode("op.b", 1000));
  profile.roots.push_back(std::move(root));
  profile.roots.push_back(MakeNode("stage.encode", 500));

  const std::string json = ProfileToChromeTrace(profile);
  EXPECT_TRUE(LooksLikeBalancedJson(json)) << json;
  EXPECT_NE(json.find("\"name\": \"stage.execute\", \"cat\": \"htl\", "
                      "\"ph\": \"X\", \"ts\": 0.000, \"dur\": 5.000"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\": \"op.a\", \"cat\": \"htl\", "
                      "\"ph\": \"X\", \"ts\": 0.000, \"dur\": 2.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"op.b\", \"cat\": \"htl\", "
                      "\"ph\": \"X\", \"ts\": 2.000, \"dur\": 1.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"stage.encode\", \"cat\": \"htl\", "
                      "\"ph\": \"X\", \"ts\": 5.000, \"dur\": 0.500"),
            std::string::npos);
}

TEST(TraceExport, ArgsCarryUnitStatsAndNoteOnlyWhenPresent) {
  QueryProfile profile;
  QueryProfile::Node bare = MakeNode("stage.parse", 100);
  profile.roots.push_back(std::move(bare));
  QueryProfile::Node video = MakeNode("video", 200);
  video.unit = 7;
  video.stats.rows = 12;
  video.stats.tables = 2;
  video.note = "hit";
  profile.roots.push_back(std::move(video));

  const std::string json = ProfileToChromeTrace(profile);
  // The bare span has no args object at all.
  const size_t parse_at = json.find("\"name\": \"stage.parse\"");
  const size_t parse_end = json.find("}", parse_at);
  ASSERT_NE(parse_at, std::string::npos);
  EXPECT_EQ(json.substr(parse_at, parse_end - parse_at).find("args"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"unit\": 7, \"rows\": 12, \"tables\": 2, "
                      "\"note\": \"hit\"}"),
            std::string::npos)
      << json;
}

TEST(TraceExport, FaultTripsBecomeInstantEventsAtTimelineEnd) {
  QueryProfile profile;
  profile.roots.push_back(MakeNode("stage.execute", 3000));
  profile.fault_trips.push_back(
      QueryProfile::FaultTrip{"net.write_frame", "UNAVAILABLE: injected"});

  const std::string json = ProfileToChromeTrace(profile);
  EXPECT_TRUE(LooksLikeBalancedJson(json)) << json;
  EXPECT_NE(json.find("\"name\": \"fault: net.write_frame\", "
                      "\"cat\": \"htl.fault\", \"ph\": \"i\", \"s\": \"t\", "
                      "\"ts\": 3.000"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"args\": {\"status\": \"UNAVAILABLE: injected\"}"),
            std::string::npos);
}

TEST(TraceExport, EscapesHostileNamesAndNotes) {
  QueryProfile profile;
  QueryProfile::Node node = MakeNode("evil\"span\\\n", 10);
  node.note = "quote\" backslash\\ newline\n tab\t ctrl\x01";
  profile.roots.push_back(std::move(node));
  profile.fault_trips.push_back(
      QueryProfile::FaultTrip{"point\"x", "status\"y\n"});

  const std::string json = ProfileToChromeTrace(profile);
  EXPECT_TRUE(LooksLikeBalancedJson(json)) << json;
  EXPECT_NE(json.find("\"evil\\\"span\\\\\\n\""), std::string::npos) << json;
  EXPECT_NE(json.find("quote\\\" backslash\\\\ newline\\n tab\\t"),
            std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("fault: point\\\"x"), std::string::npos);
}

TEST(TraceExport, PidAndTidAreConfigurable) {
  QueryProfile profile;
  profile.roots.push_back(MakeNode("s", 1000));
  ChromeTraceOptions options;
  options.pid = 42;
  options.tid = 9;
  const std::string json = ProfileToChromeTrace(profile, options);
  EXPECT_NE(json.find("\"pid\": 42, \"tid\": 9"), std::string::npos) << json;
}

}  // namespace
}  // namespace htl::obs
