// Wide-event query log: id assignment and newest-first tails, ring
// wraparound, threshold/sampled profile retention with its memory bound,
// query-text truncation, JSON rendering, and concurrent Record/Tail safety.

#include "obs/query_log.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/profile.h"
#include "util/thread_pool.h"

namespace htl::obs {
namespace {

QueryLogRecord MakeRecord(std::string query, int64_t total_us) {
  QueryLogRecord rec;
  rec.query = std::move(query);
  rec.total_us = total_us;
  rec.kind = 0;
  rec.wire_status = 0;
  return rec;
}

QueryProfile MakeProfile(const std::string& root_name) {
  QueryProfile profile;
  QueryProfile::Node root;
  root.name = root_name;
  root.nanos = 1'000'000;
  profile.roots.push_back(std::move(root));
  return profile;
}

TEST(QueryLog, AssignsMonotonicIdsAndTailsNewestFirst) {
  QueryLog log;
  EXPECT_EQ(log.total_recorded(), 0u);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.Tail(10).empty());

  EXPECT_EQ(log.Record(MakeRecord("q1", 10)), 1u);
  EXPECT_EQ(log.Record(MakeRecord("q2", 20)), 2u);
  EXPECT_EQ(log.Record(MakeRecord("q3", 30)), 3u);
  EXPECT_EQ(log.total_recorded(), 3u);
  EXPECT_EQ(log.size(), 3u);

  const std::vector<QueryLog::Entry> tail = log.Tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].record.id, 3u);
  EXPECT_EQ(tail[0].record.query, "q3");
  EXPECT_EQ(tail[1].record.id, 2u);
}

TEST(QueryLog, RingOverwritesOldestAtCapacity) {
  QueryLog::Options options;
  options.capacity = 4;
  options.slow_threshold_us = -1;  // No retention in this test.
  QueryLog log(options);
  for (int i = 1; i <= 10; ++i) {
    log.Record(MakeRecord("q" + std::to_string(i), i));
  }
  EXPECT_EQ(log.total_recorded(), 10u);
  EXPECT_EQ(log.size(), 4u);
  const std::vector<QueryLog::Entry> tail = log.Tail(100);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail[0].record.id, 10u);
  EXPECT_EQ(tail[3].record.id, 7u);  // 1..6 fell off.
}

TEST(QueryLog, ThresholdRetainsOnlySlowProfiles) {
  QueryLog::Options options;
  options.slow_threshold_us = 1000;
  QueryLog log(options);

  const uint64_t fast = log.Record(MakeRecord("fast", 999), MakeProfile("f"));
  const uint64_t slow = log.Record(MakeRecord("slow", 1000), MakeProfile("s"));
  EXPECT_EQ(log.retained_profiles(), 1u);
  EXPECT_EQ(log.ProfileFor(fast), nullptr);
  const std::shared_ptr<const QueryProfile> profile = log.ProfileFor(slow);
  ASSERT_NE(profile, nullptr);
  ASSERT_EQ(profile->roots.size(), 1u);
  EXPECT_EQ(profile->roots[0].name, "s");
  // id 0 = the newest record with a retained profile.
  EXPECT_EQ(log.ProfileFor(0), profile);
  // An empty profile is never retained, whatever the latency.
  log.Record(MakeRecord("slow-untraced", 5000));
  EXPECT_EQ(log.retained_profiles(), 1u);
}

TEST(QueryLog, ZeroThresholdRetainsEveryTracedRequest) {
  QueryLog::Options options;
  options.slow_threshold_us = 0;
  QueryLog log(options);
  log.Record(MakeRecord("a", 0), MakeProfile("a"));
  log.Record(MakeRecord("b", 1), MakeProfile("b"));
  EXPECT_EQ(log.retained_profiles(), 2u);
}

TEST(QueryLog, SamplingRetainsEveryNth) {
  QueryLog::Options options;
  options.slow_threshold_us = -1;  // Threshold off; sampling only.
  options.sample_every = 3;
  QueryLog log(options);
  for (int i = 1; i <= 9; ++i) {
    log.Record(MakeRecord("q", 1), MakeProfile("p" + std::to_string(i)));
  }
  EXPECT_EQ(log.retained_profiles(), 3u);  // ids 3, 6, 9.
  EXPECT_NE(log.ProfileFor(3), nullptr);
  EXPECT_EQ(log.ProfileFor(4), nullptr);
  EXPECT_NE(log.ProfileFor(9), nullptr);
}

TEST(QueryLog, RetainedProfileCapEvictsOldestProfile) {
  QueryLog::Options options;
  options.slow_threshold_us = 0;
  options.max_retained_profiles = 2;
  QueryLog log(options);
  log.Record(MakeRecord("a", 1), MakeProfile("a"));
  log.Record(MakeRecord("b", 1), MakeProfile("b"));
  log.Record(MakeRecord("c", 1), MakeProfile("c"));
  EXPECT_EQ(log.retained_profiles(), 2u);
  EXPECT_EQ(log.ProfileFor(1), nullptr);  // Oldest evicted; record remains.
  EXPECT_NE(log.ProfileFor(2), nullptr);
  EXPECT_NE(log.ProfileFor(3), nullptr);
  const std::vector<QueryLog::Entry> tail = log.Tail(3);
  EXPECT_EQ(tail[2].record.query, "a");  // The wide event itself survives.
}

TEST(QueryLog, WrapReleasesRetainedProfiles) {
  QueryLog::Options options;
  options.capacity = 2;
  options.slow_threshold_us = 0;
  options.max_retained_profiles = 16;
  QueryLog log(options);
  for (int i = 0; i < 6; ++i) {
    log.Record(MakeRecord("q", 1), MakeProfile("p"));
  }
  // Only the two ring slots can hold profiles; overwritten entries must
  // release theirs instead of leaking the count.
  EXPECT_EQ(log.retained_profiles(), 2u);
}

TEST(QueryLog, TruncatesQueryText) {
  QueryLog::Options options;
  options.max_query_bytes = 8;
  QueryLog log(options);
  log.Record(MakeRecord("0123456789abcdef", 1));
  EXPECT_EQ(log.Tail(1)[0].record.query, "01234567");
}

TEST(QueryLog, ToJsonCarriesTheWideEventAndEscapes) {
  QueryLog::Options options;
  options.slow_threshold_us = 0;  // Retain the profile: has_profile = true.
  QueryLog log(options);
  QueryLogRecord rec = MakeRecord("say \"hi\"\n", 1234);
  rec.fingerprint = 77;
  rec.kind = 2;
  rec.wire_status = 6;
  rec.degraded = true;
  rec.partial = true;
  rec.use_cache = true;
  rec.cache_hit = true;
  rec.formula_class = "type(2)";
  rec.level = 3;
  rec.k = 10;
  rec.deadline_ms = 500;
  rec.decode_us = 5;
  rec.execute_us = 1200;
  rec.encode_us = 7;
  rec.rows = 42;
  rec.tables = 4;
  rec.videos_evaluated = 6;
  rec.videos_failed = 1;
  log.Record(std::move(rec), MakeProfile("root"));

  const std::string json = log.ToJson(10);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"query\": \"say \\\"hi\\\"\\n\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"fingerprint\": 77"), std::string::npos);
  EXPECT_NE(json.find("\"wire_status\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(json.find("\"formula_class\": \"type(2)\""), std::string::npos);
  EXPECT_NE(json.find("\"execute_us\": 1200"), std::string::npos);
  EXPECT_NE(json.find("\"rows\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"has_profile\": true"), std::string::npos);
}

TEST(QueryLog, ProfileForRejectsFallenOffIds) {
  QueryLog::Options options;
  options.capacity = 2;
  options.slow_threshold_us = 0;
  QueryLog log(options);
  log.Record(MakeRecord("a", 1), MakeProfile("a"));
  log.Record(MakeRecord("b", 1), MakeProfile("b"));
  log.Record(MakeRecord("c", 1), MakeProfile("c"));
  EXPECT_EQ(log.ProfileFor(1), nullptr);    // Overwritten.
  EXPECT_EQ(log.ProfileFor(99), nullptr);   // Never existed.
  EXPECT_NE(log.ProfileFor(3), nullptr);
}

TEST(QueryLog, ConcurrentRecordAndTailAreSafe) {
  QueryLog::Options options;
  options.capacity = 64;
  options.slow_threshold_us = 0;
  options.max_retained_profiles = 8;
  QueryLog log(options);

  ThreadPool pool(ThreadPool::Options{.num_threads = 4});
  const Status status = ParallelFor(&pool, 8, [&](int64_t worker) -> Status {
    for (int i = 0; i < 500; ++i) {
      if (worker % 2 == 0) {
        log.Record(MakeRecord("w" + std::to_string(worker), i),
                   MakeProfile("p"));
      } else {
        const std::vector<QueryLog::Entry> tail = log.Tail(16);
        for (size_t j = 1; j < tail.size(); ++j) {
          // Newest-first and strictly descending even mid-write.
          if (tail[j - 1].record.id <= tail[j].record.id) {
            return Status::Internal("tail out of order");
          }
        }
        log.ToJson(4);
        log.ProfileFor(0);
      }
    }
    return Status::OK();
  });
  EXPECT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(log.total_recorded(), 4u * 500u);
}

}  // namespace
}  // namespace htl::obs
