#include "vm/arena.h"

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

// ASan-only checks mirror the detection in vm/arena.cc.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HTL_TEST_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define HTL_TEST_ASAN 1
#endif
#ifdef HTL_TEST_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace htl {
namespace vm {
namespace {

bool IsAligned(const void* p, size_t align) {
  return reinterpret_cast<uintptr_t>(p) % align == 0;
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena;
  // Offset the cursor so the next aligned request actually needs padding.
  (void)arena.AllocateBytes(1, 1);
  for (size_t align : {size_t{1}, size_t{2}, size_t{4}, size_t{8}, size_t{16}}) {
    void* p = arena.AllocateBytes(3, align);
    EXPECT_TRUE(IsAligned(p, align)) << "align=" << align;
    (void)arena.AllocateBytes(1, 1);  // Re-misalign for the next round.
  }
}

TEST(ArenaTest, ZeroByteRequestsGetDistinctPointers) {
  Arena arena;
  void* a = arena.AllocateBytes(0, 1);
  void* b = arena.AllocateBytes(0, 1);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
}

TEST(ArenaTest, GrowsAcrossChunks) {
  Arena arena(/*first_chunk_bytes=*/64);
  for (int i = 0; i < 100; ++i) {
    char* p = static_cast<char*>(arena.AllocateBytes(40, 8));
    std::memset(p, 0xAB, 40);  // Every byte must be writable.
  }
  EXPECT_GE(arena.num_chunks(), 2u);
  EXPECT_GE(arena.bytes_used(), 4000u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(ArenaTest, ResetReusesChunksWithoutNewReservation) {
  Arena arena(/*first_chunk_bytes=*/64);
  auto fill = [&] {
    for (int i = 0; i < 200; ++i) {
      char* p = static_cast<char*>(arena.AllocateBytes(48, 8));
      std::memset(p, 0xCD, 48);
    }
  };
  fill();
  const size_t reserved = arena.bytes_reserved();
  const size_t chunks = arena.num_chunks();
  for (int round = 0; round < 5; ++round) {
    arena.Reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    fill();
    // Steady state: the same chunk chain serves every execution.
    EXPECT_EQ(arena.bytes_reserved(), reserved) << "round " << round;
    EXPECT_EQ(arena.num_chunks(), chunks) << "round " << round;
  }
}

TEST(ArenaTest, LargeAllocationGetsDedicatedChunk) {
  Arena arena;
  const size_t before = arena.bytes_reserved();
  const size_t huge = Arena::kMaxChunkBytes + 4096;
  char* p = static_cast<char*>(arena.AllocateBytes(huge, 8));
  ASSERT_NE(p, nullptr);
  p[0] = 1;
  p[huge - 1] = 2;  // The whole request is addressable.
  // Exact-size fallback: reservation grew by roughly the request, not by a
  // doubled 2MB+ chunk.
  EXPECT_LE(arena.bytes_reserved() - before, huge + 64);
  // The doubling sequence is not poisoned: a small follow-up allocation
  // must not trigger another multi-megabyte chunk.
  const size_t after_large = arena.bytes_reserved();
  (void)arena.AllocateBytes(16, 8);
  EXPECT_LE(arena.bytes_reserved() - after_large, Arena::kMaxChunkBytes);
}

TEST(ArenaVecTest, PushReadBackAndTailErase) {
  Arena arena;
  ArenaVec<int> v(&arena, 4);
  for (int i = 0; i < 10; ++i) v.push_back(i);  // Forces a Grow().
  ASSERT_EQ(v.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i);
  EXPECT_EQ(v.back(), 9);
  v.erase(v.begin() + 7, v.end());
  ASSERT_EQ(v.size(), 7u);
  EXPECT_EQ(v.back(), 6);
}

TEST(ArenaVecTest, SurvivesRelocationAcrossChunkBoundary) {
  Arena arena(/*first_chunk_bytes=*/64);
  ArenaVec<uint64_t> v(&arena, 2);
  for (uint64_t i = 0; i < 1000; ++i) v.push_back(i * 3);
  for (uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i * 3);
}

#ifdef HTL_TEST_ASAN
TEST(ArenaAsanTest, FreshChunkTailIsPoisoned) {
  Arena arena(/*first_chunk_bytes=*/256);
  char* p = static_cast<char*>(arena.AllocateBytes(16, 8));
  EXPECT_FALSE(__asan_address_is_poisoned(p));
  EXPECT_FALSE(__asan_address_is_poisoned(p + 15));
  // Past the allocation, the chunk tail is unaddressable.
  EXPECT_TRUE(__asan_address_is_poisoned(p + 64));
}

TEST(ArenaAsanTest, ResetRepoisonsReclaimedSpace) {
  Arena arena(/*first_chunk_bytes=*/256);
  char* p = static_cast<char*>(arena.AllocateBytes(64, 8));
  std::memset(p, 0x5A, 64);
  EXPECT_FALSE(__asan_address_is_poisoned(p));
  arena.Reset();
  // A stale pointer into the previous execution now faults on access.
  EXPECT_TRUE(__asan_address_is_poisoned(p));
  // Reallocating unpoisons again.
  char* q = static_cast<char*>(arena.AllocateBytes(64, 8));
  EXPECT_FALSE(__asan_address_is_poisoned(q));
}
#endif  // HTL_TEST_ASAN

}  // namespace
}  // namespace vm
}  // namespace htl
