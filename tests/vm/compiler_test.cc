#include "vm/compiler.h"

#include <string>

#include <gtest/gtest.h>

#include "htl/binder.h"
#include "htl/classifier.h"
#include "htl/parser.h"
#include "testing/helpers.h"
#include "vm/bytecode.h"

namespace htl {
namespace vm {
namespace {

FormulaPtr Parse(std::string_view text) {
  auto r = ParseFormula(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  FormulaPtr f = std::move(r).value();
  Status s = Bind(f.get());
  EXPECT_TRUE(s.ok()) << s.ToString();
  return f;
}

Program MustCompile(std::string_view text, QueryOptions options = {}) {
  FormulaPtr f = Parse(text);
  auto p = Compile(*f, options);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << "\nformula: " << text;
  return std::move(p).value();
}

int CountOp(const Program& p, OpCode op) {
  int n = 0;
  for (const Instruction& ins : p.code) {
    if (ins.op == op) ++n;
  }
  return n;
}

TEST(CompilerTest, AtomicFormulaIsOneLoadBetweenEnterAndEmit) {
  Program p = MustCompile("exists x (moving(x))");
  // exists over an atomic subtree is itself atomic-shaped: one picture query.
  ASSERT_EQ(p.code.size(), 3u);
  EXPECT_EQ(p.code[0].op, OpCode::kEnter);
  EXPECT_EQ(p.code[1].op, OpCode::kLoadAtomic);
  EXPECT_EQ(p.code[2].op, OpCode::kEmit);
  ASSERT_EQ(p.atomics.size(), 1u);
  EXPECT_EQ(p.atomics[0].text, "exists x (moving(x))");
  // Closed formula: the root register is an arena list.
  EXPECT_TRUE(p.code[1].is_list());
  EXPECT_TRUE(p.registers[p.root_reg].is_list);
  EXPECT_EQ(p.formula_class, Classify(*Parse("exists x (moving(x))")));
}

TEST(CompilerTest, PostOrderMirrorsInterpreterRecursion) {
  Program p = MustCompile(
      "exists x (moving(x)) and eventually (exists y (armed(y)))");
  // Post-order: both operands complete before the join; every node is
  // framed by its own kEnter (the depth poll / probe site).
  EXPECT_EQ(CountOp(p, OpCode::kEnter), 4);  // and, lhs, eventually, rhs.
  EXPECT_EQ(CountOp(p, OpCode::kLoadAtomic), 2);
  EXPECT_EQ(CountOp(p, OpCode::kEventually), 1);
  EXPECT_EQ(CountOp(p, OpCode::kAndMerge), 1);
  EXPECT_EQ(p.code[p.code.size() - 1].op, OpCode::kEmit);
  const Instruction& join = p.code[p.code.size() - 2];
  EXPECT_EQ(join.op, OpCode::kAndMerge);
  EXPECT_EQ(join.dst, p.root_reg);
  // Static maxima are baked in for the join operands.
  EXPECT_GT(join.lhs_max, 0.0);
  EXPECT_GT(join.rhs_max, 0.0);
  EXPECT_EQ(join.static_max, join.lhs_max + join.rhs_max);
  EXPECT_EQ(p.root_max, join.static_max);
}

TEST(CompilerTest, FuzzySemanticsAreBakedIntoTheInstruction) {
  // The temporal operand keeps the conjunction from collapsing into a
  // single picture query, so a real kAndMerge is emitted.
  const char* text = "exists x (moving(x)) and eventually (exists y (armed(y)))";
  QueryOptions fuzzy;
  fuzzy.and_semantics = AndSemantics::kFuzzyMin;
  Program sum = MustCompile(text);
  Program min = MustCompile(text, fuzzy);
  auto flag_of_join = [](const Program& p) {
    for (const Instruction& ins : p.code) {
      if (ins.op == OpCode::kAndMerge) return ins.fuzzy();
    }
    ADD_FAILURE() << "no kAndMerge emitted";
    return false;
  };
  EXPECT_FALSE(flag_of_join(sum));
  EXPECT_TRUE(flag_of_join(min));
}

TEST(CompilerTest, FreeVariableSubtreesGetTableRegisters) {
  // `moving(x) until armed(x)` under one exists: the until keeps the body
  // from collapsing into one picture query, so its operands materialize as
  // tables carrying the free object variable x; the collapse closes it.
  Program p = MustCompile("exists x (moving(x) until armed(x))");
  EXPECT_TRUE(p.registers[p.root_reg].is_list);
  bool saw_table_register = false;
  for (const Instruction& ins : p.code) {
    if (ins.op == OpCode::kLoadAtomic && !ins.is_list()) saw_table_register = true;
  }
  EXPECT_TRUE(saw_table_register)
      << "operand registers under the quantifier must be tables";
  bool saw_table_until = false;
  for (const Instruction& ins : p.code) {
    if (ins.op == OpCode::kUntilMerge && !ins.is_list()) saw_table_until = true;
  }
  EXPECT_TRUE(saw_table_until);
  EXPECT_EQ(CountOp(p, OpCode::kExistsCollapse), 1);
}

TEST(CompilerTest, DuplicateClosedSubtreesShareARegister) {
  Program p = MustCompile(
      "(exists x (moving(x)) until exists y (armed(y))) and "
      "(exists x (moving(x)) until exists y (armed(y)))");
  // The two until-subtrees have equal canonical fingerprints: one register,
  // and the second occurrence is marked skippable.
  ASSERT_EQ(CountOp(p, OpCode::kUntilMerge), 2);
  const Instruction* first = nullptr;
  const Instruction* second = nullptr;
  for (const Instruction& ins : p.code) {
    if (ins.op != OpCode::kUntilMerge) continue;
    (first == nullptr ? first : second) = &ins;
  }
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->dst, second->dst);
  EXPECT_FALSE(first->may_skip());
  EXPECT_TRUE(second->may_skip());
}

TEST(CompilerTest, CommutedOperandsShareViaCanonicalFingerprint) {
  // Temporal lhs keeps each conjunction a real kAndMerge; and commutes
  // canonically, so the swapped duplicate shares the first one's register.
  Program p = MustCompile(
      "(eventually exists x (moving(x)) and exists y (armed(y))) or "
      "(exists y (armed(y)) and eventually exists x (moving(x)))");
  ASSERT_EQ(CountOp(p, OpCode::kAndMerge), 2);
  int may_skip = 0;
  for (const Instruction& ins : p.code) {
    if (ins.op == OpCode::kAndMerge && ins.may_skip()) ++may_skip;
  }
  EXPECT_EQ(may_skip, 1);
}

TEST(CompilerTest, CacheKeysOnlyWhenCachingIsOn) {
  const char* text = "eventually (exists x (moving(x)))";
  Program off = MustCompile(text);
  EXPECT_TRUE(off.keys.empty());
  for (const Instruction& ins : off.code) EXPECT_EQ(ins.key, -1);

  QueryOptions cached;
  cached.cache_mode = CacheMode::kReadWrite;
  Program on = MustCompile(text, cached);
  EXPECT_FALSE(on.keys.empty());
  // The atomic leaf is served by the per-engine atomic cache, never by the
  // cross-query list cache (the interpreter returns before its cache logic).
  for (const Instruction& ins : on.code) {
    if (ins.op == OpCode::kLoadAtomic) {
      EXPECT_EQ(ins.key, -1);
    }
  }
  bool eventually_keyed = false;
  for (size_t pc = 0; pc < on.code.size(); ++pc) {
    if (on.code[pc].op == OpCode::kEventually) {
      // Its kEnter carries the probe key and a skip target past the node.
      for (size_t e = 0; e < pc; ++e) {
        if (on.code[e].op == OpCode::kEnter &&
            static_cast<size_t>(on.code[e].skip_to) == pc + 1) {
          eventually_keyed = on.code[e].key >= 0;
        }
      }
    }
  }
  EXPECT_TRUE(eventually_keyed);
}

TEST(CompilerTest, LevelBodyCompilesToSubprogram) {
  Program p = MustCompile("at-next-level(exists x (moving(x)))");
  ASSERT_EQ(p.levels.size(), 1u);
  ASSERT_EQ(p.subprograms.size(), 1u);
  EXPECT_EQ(p.levels[0].subprogram, 0);
  EXPECT_GT(p.levels[0].body_max, 0.0);
  EXPECT_EQ(CountOp(p, OpCode::kLevelEval), 1);
  EXPECT_EQ(CountOp(p.subprograms[0], OpCode::kLoadAtomic), 1);
}

TEST(CompilerTest, FreezeAndNegateCompile) {
  Program p = MustCompile(
      "not (exists z (type(z) = 'person' and "
      "[h <- type(z)] eventually (type(z) = h)))");
  EXPECT_EQ(CountOp(p, OpCode::kNegate), 1);
  EXPECT_EQ(CountOp(p, OpCode::kFreezeJoin), 1);
  ASSERT_EQ(p.freezes.size(), 1u);
  EXPECT_EQ(p.freezes[0].var, "h");
}

TEST(CompilerTest, TrueAndFalseLoadConstants) {
  Program p = MustCompile("true until false");
  EXPECT_EQ(CountOp(p, OpCode::kLoadTrue), 1);
  EXPECT_EQ(CountOp(p, OpCode::kLoadFalse), 1);
  EXPECT_EQ(CountOp(p, OpCode::kUntilMerge), 1);
}

TEST(DisassembleTest, ListingIsDeterministicAndComplete) {
  const char* text =
      "(exists x (moving(x)) until exists y (armed(y))) and "
      "at-next-level(exists x (moving(x)))";
  Program p = MustCompile(text);
  const std::string listing = Disassemble(p);
  EXPECT_EQ(listing, Disassemble(p)) << "listing must be deterministic";
  // Every instruction pc appears, as do the pools and the subprogram.
  EXPECT_NE(listing.find("program: "), std::string::npos);
  EXPECT_NE(listing.find("root: r"), std::string::npos);
  EXPECT_NE(listing.find("until_merge"), std::string::npos);
  EXPECT_NE(listing.find("level_eval"), std::string::npos);
  EXPECT_NE(listing.find("subprogram 0:"), std::string::npos);
  EXPECT_NE(listing.find("atomic[0]: "), std::string::npos);
  // No raw pointers or addresses may leak into the listing.
  EXPECT_EQ(listing.find("0x"), std::string::npos);
}

}  // namespace
}  // namespace vm
}  // namespace htl
