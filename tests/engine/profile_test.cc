// EXPLAIN/profile surface tests on the Casablanca workload: the *Profiled
// entry points attach a QueryProfile whose stage spans, per-video spans and
// fault trips truthfully mirror the RetrievalReport, and profiling does not
// change the retrieved results.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/exec_context.h"
#include "engine/retrieval.h"
#include "model/video.h"
#include "obs/profile.h"
#include "testing/helpers.h"
#include "util/fault_point.h"
#include "workload/casablanca.h"

namespace htl {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Instance().DisableAll();
    store_.AddVideo(casablanca::MakeVideo());
    store_.AddVideo(casablanca::MakeVideo());
  }
  void TearDown() override { FaultRegistry::Instance().DisableAll(); }

  static std::vector<const obs::QueryProfile::Node*> VideoSpans(
      const obs::QueryProfile& profile) {
    std::vector<const obs::QueryProfile::Node*> out;
    const obs::QueryProfile::Node* execute = profile.Find("stage.execute");
    if (execute == nullptr) return out;
    for (const obs::QueryProfile::Node& child : execute->children) {
      if (child.name == "video") out.push_back(&child);
      // Parallel runs nest the video spans under per-worker spans, stitched
      // in chunk order — the flattened video order stays ascending.
      if (child.name == "worker") {
        for (const obs::QueryProfile::Node& sub : child.children) {
          if (sub.name == "video") out.push_back(&sub);
        }
      }
    }
    return out;
  }

  MetadataStore store_;
};

TEST_F(ProfileTest, ProfiledRunAttachesStageAndVideoSpans) {
  Retriever r(&store_);
  FormulaPtr q = casablanca::Query1Full();
  auto result = r.TopSegmentsProfiled(*q, 2, 8);
  ASSERT_OK(result.status());
  const obs::QueryProfile& profile = result.value().report.profile;
  ASSERT_FALSE(profile.empty());
  ASSERT_NE(profile.Find("stage.classify"), nullptr);
  ASSERT_NE(profile.Find("stage.execute"), nullptr);
  EXPECT_FALSE(profile.Find("stage.classify")->note.empty());
  // One per-video span per evaluated video, each carrying the video id and
  // the rows the ExecContext charged for it.
  const auto videos = VideoSpans(profile);
  ASSERT_EQ(static_cast<int64_t>(videos.size()),
            result.value().report.videos_evaluated);
  for (size_t i = 0; i < videos.size(); ++i) {
    EXPECT_EQ(videos[i]->unit, static_cast<int64_t>(i) + 1);
    EXPECT_GT(videos[i]->stats.rows, 0);
  }
  // Operator spans from the direct engine appear under the videos.
  EXPECT_NE(profile.Find("op.picture_query"), nullptr);
  // Rendered form mentions the stages.
  const std::string text = profile.ToText();
  EXPECT_NE(text.find("stage.execute"), std::string::npos);
  EXPECT_NE(text.find("video #1"), std::string::npos);
}

TEST_F(ProfileTest, TextOverloadProfilesFrontendStages) {
  Retriever r(&store_);
  auto result = r.TopSegmentsProfiled(
      "exists p (type(p) = 'person' and eventually present(p))", 2, 8);
  ASSERT_OK(result.status());
  const obs::QueryProfile& profile = result.value().report.profile;
  EXPECT_NE(profile.Find("stage.parse"), nullptr);
  EXPECT_NE(profile.Find("stage.bind"), nullptr);
  EXPECT_NE(profile.Find("stage.rewrite"), nullptr);
  EXPECT_NE(profile.Find("stage.classify"), nullptr);
  EXPECT_NE(profile.Find("stage.execute"), nullptr);
}

TEST_F(ProfileTest, ProfilingDoesNotChangeResults) {
  Retriever plain(&store_);
  Retriever profiled(&store_);
  FormulaPtr q = casablanca::Query1Full();
  auto unprofiled = plain.TopSegmentsWithReport(*q, 2, 8);
  auto with_profile = profiled.TopSegmentsProfiled(*q, 2, 8);
  ASSERT_OK(unprofiled.status());
  ASSERT_OK(with_profile.status());
  ASSERT_EQ(unprofiled.value().hits.size(), with_profile.value().hits.size());
  for (size_t i = 0; i < unprofiled.value().hits.size(); ++i) {
    EXPECT_EQ(unprofiled.value().hits[i].video, with_profile.value().hits[i].video);
    EXPECT_EQ(unprofiled.value().hits[i].segment,
              with_profile.value().hits[i].segment);
    EXPECT_EQ(unprofiled.value().hits[i].sim.actual,
              with_profile.value().hits[i].sim.actual);
  }
  EXPECT_EQ(unprofiled.value().report.videos_evaluated,
            with_profile.value().report.videos_evaluated);
}

TEST_F(ProfileTest, FaultedVideoSpansMatchReportFailures) {
  // Arm picture.query to fire on its first hit, sticky over video 1 only:
  // fresh Retriever, so video 1 faults and video 2 evaluates (its engine
  // re-queries and trips again — use non-sticky single fire instead).
  FaultSpec spec;
  spec.code = StatusCode::kInternal;
  spec.fire_on_hit = 1;
  spec.sticky = false;
  FaultRegistry::Instance().Enable("picture.query", spec);
  // Counted fault specs trip on the globally first hit, which is only a
  // deterministic video under the serial evaluation order.
  QueryOptions serial;
  serial.parallelism = 1;
  Retriever r(&store_, serial);
  FormulaPtr q = casablanca::Query1Full();
  auto result = r.TopSegmentsProfiled(*q, 2, 8);
  ASSERT_OK(result.status());
  const SegmentRetrieval& retrieval = result.value();
  ASSERT_EQ(retrieval.report.videos_failed, 1);
  ASSERT_EQ(retrieval.report.failures.size(), 1u);
  const obs::QueryProfile& profile = retrieval.report.profile;
  // The fault trip is surfaced by point name...
  ASSERT_FALSE(profile.fault_trips.empty());
  EXPECT_EQ(profile.fault_trips[0].point, "picture.query");
  // ...the report summary names it...
  EXPECT_NE(retrieval.report.ToString().find("fault trip picture.query"),
            std::string::npos);
  // ...and exactly the failed video's span carries a failure note.
  int failed_spans = 0;
  for (const obs::QueryProfile::Node* video : VideoSpans(profile)) {
    if (video->note.find("failed:") != std::string::npos) {
      ++failed_spans;
      EXPECT_EQ(video->unit, retrieval.report.failures[0].video);
      EXPECT_NE(video->note.find("injected fault"), std::string::npos);
    }
  }
  EXPECT_EQ(failed_spans, 1);
}

TEST_F(ProfileTest, CallerContextBudgetsApplyAndTraceIsRestored) {
  ExecContext ctx;
  ctx.mutable_budgets().max_rows = 1;  // Every video blows the row budget.
  obs::QueryTrace sentinel;
  ctx.set_trace(&sentinel);
  Retriever r(&store_);
  FormulaPtr q = casablanca::Query1Full();
  auto result = r.TopSegmentsProfiled(*q, 2, 8, &ctx);
  ASSERT_OK(result.status());
  EXPECT_EQ(result.value().report.videos_evaluated, 0);
  EXPECT_EQ(result.value().report.videos_failed, 2);
  // The caller's trace pointer is restored after the profiled run.
  EXPECT_EQ(ctx.trace(), &sentinel);
  // The per-video spans carry the failure notes.
  for (const obs::QueryProfile::Node* video :
       VideoSpans(result.value().report.profile)) {
    EXPECT_NE(video->note.find("failed:"), std::string::npos);
  }
}

TEST_F(ProfileTest, TopVideosProfiledAttachesProfile) {
  Retriever r(&store_);
  FormulaPtr q = casablanca::Query1Full();
  auto result = r.TopVideosProfiled(*q, 4);
  ASSERT_OK(result.status());
  const obs::QueryProfile& profile = result.value().report.profile;
  ASSERT_NE(profile.Find("stage.execute"), nullptr);
  EXPECT_EQ(static_cast<int64_t>(VideoSpans(profile).size()),
            result.value().report.videos_evaluated);
}

}  // namespace
}  // namespace htl
