#include "engine/exec_context.h"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <thread>

#include "engine/retrieval.h"
#include "model/video.h"
#include "sql/sql_system.h"
#include "testing/helpers.h"
#include "workload/casablanca.h"

namespace htl {
namespace {

using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// Unit behavior.

TEST(ExecContextTest, DefaultContextNeverFails) {
  ExecContext ctx;
  for (int i = 0; i < 1000; ++i) EXPECT_OK(ctx.Check());
  EXPECT_OK(ctx.ChargeRows(1 << 20));
  EXPECT_OK(ctx.ChargeTable());
  EXPECT_OK(ctx.EnterDepth());
  ctx.LeaveDepth();
}

TEST(ExecContextTest, ZeroTimeoutFailsTheVeryFirstPoll) {
  ExecContext ctx;
  ctx.SetTimeout(milliseconds(0));
  // The clock-read amortization must not delay an already-expired deadline.
  Status s = ctx.Check();
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
}

TEST(ExecContextTest, ExpiredDeadlineLatches) {
  ExecContext ctx;
  ctx.SetTimeout(milliseconds(-5));
  EXPECT_TRUE(ctx.Check().IsDeadlineExceeded());
  // Every later poll fails too, without waiting for the poll stride.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(ctx.Check().IsDeadlineExceeded());
}

TEST(ExecContextTest, FutureDeadlinePassesThenExpires) {
  ExecContext ctx;
  ctx.SetTimeout(milliseconds(20));
  EXPECT_OK(ctx.Check());
  std::this_thread::sleep_for(milliseconds(40));
  // Poll enough times to cross the amortization stride.
  Status last = Status::OK();
  for (int i = 0; i < 256 && last.ok(); ++i) last = ctx.Check();
  EXPECT_TRUE(last.IsDeadlineExceeded()) << last.ToString();
}

TEST(ExecContextTest, SetTimeoutMsZeroIsAlreadyExpired) {
  ExecContext ctx;
  ctx.SetTimeoutMs(0);
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_TRUE(ctx.Check().IsDeadlineExceeded());
}

TEST(ExecContextTest, SetTimeoutMsNegativeIsAlreadyExpired) {
  // Wire values are attacker-controlled: any negative budget, including the
  // most negative one (whose ms -> ns conversion would overflow if it were
  // attempted), must behave exactly like SetTimeout(0).
  for (int64_t ms : {int64_t{-1}, int64_t{-5000},
                     std::numeric_limits<int64_t>::min()}) {
    ExecContext ctx;
    ctx.SetTimeoutMs(ms);
    EXPECT_TRUE(ctx.Check().IsDeadlineExceeded()) << "timeout_ms = " << ms;
  }
}

TEST(ExecContextTest, SetTimeoutMsHugeClampsInsteadOfOverflowing) {
  // INT64_MAX milliseconds overflows int64 nanoseconds ~292x over; the
  // clamp must land the deadline in the future (24h), not wrap it into the
  // past.
  for (int64_t ms : {std::numeric_limits<int64_t>::max(),
                     ExecContext::kMaxTimeoutMs + 1}) {
    ExecContext ctx;
    ctx.SetTimeoutMs(ms);
    EXPECT_TRUE(ctx.has_deadline());
    EXPECT_OK(ctx.Check());
  }
}

TEST(ExecContextTest, SetTimeoutMsNormalValueBehavesLikeSetTimeout) {
  ExecContext ctx;
  ctx.SetTimeoutMs(20);
  EXPECT_OK(ctx.Check());
  std::this_thread::sleep_for(milliseconds(40));
  Status last = Status::OK();
  for (int i = 0; i < 256 && last.ok(); ++i) last = ctx.Check();
  EXPECT_TRUE(last.IsDeadlineExceeded()) << last.ToString();
}

TEST(ExecContextTest, SetTimeoutMsAtTheClampBoundaryIsNotExpired) {
  ExecContext ctx;
  ctx.SetTimeoutMs(ExecContext::kMaxTimeoutMs);
  EXPECT_OK(ctx.Check());
}

TEST(ExecContextTest, CancellationObservedAtNextPoll) {
  ExecContext ctx;
  EXPECT_OK(ctx.Check());
  ctx.Cancel();
  EXPECT_TRUE(ctx.cancelled());
  Status s = ctx.Check();
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  EXPECT_TRUE(s.IsQueryAbort());
}

// ---------------------------------------------------------------------------
// Child contexts (parallel workers).

TEST(ExecContextChildTest, NullParentYieldsPlainDefaultContext) {
  ExecContext child(static_cast<const ExecContext*>(nullptr));
  EXPECT_FALSE(child.has_deadline());
  EXPECT_FALSE(child.cancelled());
  EXPECT_OK(child.Check());
}

TEST(ExecContextChildTest, ChildCopiesBudgetsAndCountsItsOwnUnits) {
  ExecBudgets budgets;
  budgets.max_rows = 5;
  ExecContext parent(budgets);
  ASSERT_OK(parent.ChargeRows(3));

  ExecContext child(&parent);
  EXPECT_EQ(child.budgets().max_rows, 5);
  // Per-unit counters start fresh: the parent's 3 used rows do not carry
  // over (budgets bound each video independently, whichever worker runs it).
  EXPECT_EQ(child.rows_used(), 0);
  EXPECT_OK(child.ChargeRows(5));
  EXPECT_TRUE(child.ChargeRows(1).IsResourceExhausted());
  // The child's charging never touches the parent.
  EXPECT_EQ(parent.rows_used(), 3);
}

TEST(ExecContextChildTest, ChildObservesParentCancelSetBeforeSpawn) {
  // The fan-out ordering that matters in the retriever: a worker child
  // created *after* the group was cancelled must fail its very first poll.
  ExecContext parent;
  parent.Cancel();
  ExecContext child(&parent);
  EXPECT_TRUE(child.cancelled());
  Status s = child.Check();
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
}

TEST(ExecContextChildTest, ChildObservesParentCancelSetAfterSpawn) {
  ExecContext parent;
  ExecContext child(&parent);
  EXPECT_OK(child.Check());
  parent.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(child.Check().IsCancelled());
}

TEST(ExecContextChildTest, CancellingChildLeavesParentAndSiblingRunning) {
  ExecContext parent;
  ExecContext child_a(&parent);
  ExecContext child_b(&parent);
  child_a.Cancel();
  EXPECT_TRUE(child_a.Check().IsCancelled());
  EXPECT_FALSE(parent.cancelled());
  EXPECT_OK(parent.Check());
  EXPECT_OK(child_b.Check());
}

TEST(ExecContextChildTest, CancelChainsThroughTwoLevels) {
  // Retriever layering: caller ctx -> per-call group -> per-worker child.
  ExecContext caller;
  ExecContext group(&caller);
  ExecContext worker(&group);
  caller.Cancel();
  EXPECT_TRUE(worker.cancelled());
  // Cancelling only the group reaches workers but never the caller.
  ExecContext caller2;
  ExecContext group2(&caller2);
  ExecContext worker2(&group2);
  group2.Cancel();
  EXPECT_TRUE(worker2.cancelled());
  EXPECT_FALSE(caller2.cancelled());
}

TEST(ExecContextChildTest, ChildInheritsZeroTimeoutDeadline) {
  // 0ms (or negative) deadline semantics carry over: the parent's deadline
  // is copied as an absolute time point, so the child's first poll fails
  // exactly like SetTimeout(0) on the parent itself.
  ExecContext parent;
  parent.SetTimeout(milliseconds(0));
  ExecContext child(&parent);
  EXPECT_TRUE(child.has_deadline());
  Status s = child.Check();
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
}

TEST(ExecContextChildTest, ChildInheritsLatchedDeadline) {
  ExecContext parent;
  parent.SetTimeout(milliseconds(-5));
  EXPECT_TRUE(parent.Check().IsDeadlineExceeded());  // Latches.
  ExecContext child(&parent);
  EXPECT_TRUE(child.Check().IsDeadlineExceeded());
}

TEST(ExecContextChildTest, ChildSharesAbsoluteDeadlineNotTimeout) {
  ExecContext parent;
  parent.SetTimeout(milliseconds(30));
  std::this_thread::sleep_for(milliseconds(15));
  // A child created halfway through inherits the *remaining* ~15ms, not a
  // fresh 30ms window.
  ExecContext child(&parent);
  EXPECT_OK(child.Check());
  std::this_thread::sleep_for(milliseconds(30));
  Status last = Status::OK();
  for (int i = 0; i < 256 && last.ok(); ++i) last = child.Check();
  EXPECT_TRUE(last.IsDeadlineExceeded()) << last.ToString();
}

TEST(ExecContextTest, RowBudgetTripsAndResetsPerUnit) {
  ExecBudgets budgets;
  budgets.max_rows = 10;
  ExecContext ctx(budgets);
  EXPECT_OK(ctx.ChargeRows(6));
  EXPECT_OK(ctx.ChargeRows(4));
  Status s = ctx.ChargeRows(1);
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  ctx.BeginUnit();  // New video/statement: full allowance again.
  EXPECT_OK(ctx.ChargeRows(10));
  EXPECT_EQ(ctx.rows_used(), 10);
}

TEST(ExecContextTest, TableBudgetTrips) {
  ExecBudgets budgets;
  budgets.max_tables = 2;
  ExecContext ctx(budgets);
  EXPECT_OK(ctx.ChargeTable());
  EXPECT_OK(ctx.ChargeTable());
  EXPECT_TRUE(ctx.ChargeTable().IsResourceExhausted());
}

TEST(ExecContextTest, DepthBudgetTripsAndEnterIsBalancedOnFailure) {
  ExecBudgets budgets;
  budgets.max_depth = 2;
  ExecContext ctx(budgets);
  EXPECT_OK(ctx.EnterDepth());
  EXPECT_OK(ctx.EnterDepth());
  EXPECT_TRUE(ctx.EnterDepth().IsResourceExhausted());
  EXPECT_EQ(ctx.depth_used(), 2) << "failed EnterDepth must not leak depth";
  ctx.LeaveDepth();
  ctx.LeaveDepth();
  EXPECT_EQ(ctx.depth_used(), 0);
}

TEST(ExecContextTest, DepthScopeBalancesAndToleratesNull) {
  ExecBudgets budgets;
  budgets.max_depth = 1;
  ExecContext ctx(budgets);
  {
    DepthScope outer(&ctx);
    EXPECT_OK(outer.status());
    DepthScope inner(&ctx);
    EXPECT_TRUE(inner.status().IsResourceExhausted());
  }
  EXPECT_EQ(ctx.depth_used(), 0);
  DepthScope null_scope(nullptr);
  EXPECT_OK(null_scope.status());
}

Status PollViaMacro(ExecContext* ctx) {
  HTL_CHECK_EXEC(ctx);
  return Status::OK();
}

TEST(ExecContextTest, CheckExecMacroToleratesNullAndPropagates) {
  EXPECT_OK(PollViaMacro(nullptr));
  ExecContext ctx;
  ctx.Cancel();
  EXPECT_TRUE(PollViaMacro(&ctx).IsCancelled());
}

// ---------------------------------------------------------------------------
// End-to-end through the Retriever (the ISSUE acceptance case: a 0ms
// deadline returns DeadlineExceeded instead of hanging).

MetadataStore MakeCasablancaStore() {
  MetadataStore store;
  store.AddVideo(casablanca::MakeVideo());
  return store;
}

TEST(ExecContextRetrievalTest, ZeroDeadlineQueryReturnsDeadlineExceeded) {
  MetadataStore store = MakeCasablancaStore();
  Retriever r(&store);
  FormulaPtr q = casablanca::Query1Full();
  ExecContext ctx;
  ctx.SetTimeout(milliseconds(0));
  Status s = r.TopSegments(*q, 2, 4, &ctx).status();
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
}

TEST(ExecContextRetrievalTest, ZeroDeadlineAbortsWithReportVariantToo) {
  MetadataStore store = MakeCasablancaStore();
  Retriever r(&store);
  FormulaPtr q = casablanca::Query1Full();
  ExecContext ctx;
  ctx.SetTimeout(milliseconds(0));
  // Deadline expiry is a query-wide abort, not a per-video degradation.
  EXPECT_TRUE(r.TopSegmentsWithReport(*q, 2, 4, &ctx).status().IsDeadlineExceeded());
  ExecContext ctx2;
  ctx2.SetTimeout(milliseconds(0));
  EXPECT_TRUE(r.TopVideosWithReport(*q, 4, &ctx2).status().IsDeadlineExceeded());
}

TEST(ExecContextRetrievalTest, CancelledQueryReturnsCancelled) {
  MetadataStore store = MakeCasablancaStore();
  Retriever r(&store);
  FormulaPtr q = casablanca::Query1Full();
  ExecContext ctx;
  ctx.Cancel();
  EXPECT_TRUE(r.TopSegments(*q, 2, 4, &ctx).status().IsCancelled());
}

TEST(ExecContextRetrievalTest, UnlimitedContextMatchesNullContext) {
  MetadataStore store = MakeCasablancaStore();
  Retriever r(&store);
  FormulaPtr q = casablanca::Query1Full();
  ASSERT_OK_AND_ASSIGN(auto baseline, r.TopSegments(*q, 2, 4));
  ExecContext ctx;  // Default: no deadline, unlimited budgets.
  ASSERT_OK_AND_ASSIGN(auto limited, r.TopSegments(*q, 2, 4, &ctx));
  ASSERT_EQ(limited.size(), baseline.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(limited[i].video, baseline[i].video);
    EXPECT_EQ(limited[i].segment, baseline[i].segment);
    EXPECT_DOUBLE_EQ(limited[i].sim.actual, baseline[i].sim.actual);
  }
}

TEST(ExecContextRetrievalTest, BlownBudgetIsolatesPerVideoWithReport) {
  MetadataStore store = MakeCasablancaStore();
  Retriever r(&store);
  FormulaPtr q = casablanca::Query1Full();
  ExecBudgets budgets;
  budgets.max_tables = 0;  // Every table join is over budget.
  ExecContext ctx(budgets);
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval out, r.TopSegmentsWithReport(*q, 2, 4, &ctx));
  EXPECT_EQ(out.report.videos_failed, 1);
  EXPECT_FALSE(out.report.complete());
  ASSERT_EQ(out.report.failures.size(), 1u);
  EXPECT_EQ(out.report.failures[0].video, 1);
  EXPECT_TRUE(out.report.failures[0].status.IsResourceExhausted())
      << out.report.ToString();
  EXPECT_TRUE(out.hits.empty());
}

TEST(ExecContextRetrievalTest, BudgetsResetPerVideo) {
  // Two videos whose evaluation each materializes two tables (the atomic
  // "d = 1" plus the and-join): a per-query budget of two would fail the
  // second video, a per-video budget (reset via BeginUnit) admits both.
  MetadataStore store;
  for (int i = 0; i < 2; ++i) {
    VideoTree v = VideoTree::Flat(3);
    v.MutableMeta(2, 2).SetAttribute("d", AttrValue(int64_t{1}));
    store.AddVideo(std::move(v));
  }
  Retriever r(&store);
  ExecBudgets budgets;
  budgets.max_tables = 2;
  ExecContext ctx(budgets);
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval out,
                       r.TopSegmentsWithReport("d = 1 and true", 2, 10, &ctx));
  EXPECT_EQ(out.report.videos_evaluated, 2);
  EXPECT_EQ(out.report.videos_failed, 0) << out.report.ToString();
  // "true" admits every segment (3 per video) with a partial score.
  EXPECT_EQ(out.hits.size(), 6u);
}

TEST(ExecContextRetrievalTest, StrictApiSurfacesBudgetErrorOfSkippedVideo) {
  MetadataStore store = MakeCasablancaStore();
  Retriever r(&store);
  FormulaPtr q = casablanca::Query1Full();
  ExecBudgets budgets;
  budgets.max_tables = 0;
  ExecContext ctx(budgets);
  Status s = r.TopSegments(*q, 2, 4, &ctx).status();
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
}

// ---------------------------------------------------------------------------
// End-to-end through the SQL executor.

TEST(ExecContextSqlTest, ZeroDeadlineStatementReturnsDeadlineExceeded) {
  sql::SqlSystem sys;
  ExecContext ctx;
  ctx.SetTimeout(milliseconds(0));
  sys.executor().set_exec_context(&ctx);
  Status s = sys.executor().ExecuteSql("CREATE TABLE t (a);").status();
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
}

TEST(ExecContextSqlTest, RowBudgetBoundsMaterialization) {
  sql::SqlSystem sys;
  ASSERT_OK(sys.executor().ExecuteScript("CREATE TABLE t (a);"
                                         "INSERT INTO t VALUES (1), (2), (3);")
                .status());
  ExecBudgets budgets;
  budgets.max_rows = 2;
  ExecContext ctx(budgets);
  sys.executor().set_exec_context(&ctx);
  Status s = sys.executor().ExecuteSql("SELECT a FROM t;").status();
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
  // Budgets reset per statement: a query under budget still runs.
  ASSERT_OK_AND_ASSIGN(sql::Table out,
                       sys.executor().ExecuteSql("SELECT a FROM t WHERE a = 1;"));
  EXPECT_EQ(out.num_rows(), 1);
  sys.executor().set_exec_context(nullptr);
}

TEST(ExecContextSqlTest, CasablancaTranslationRunsUnderUnlimitedContext) {
  FormulaPtr q = casablanca::Query1Named();
  sql::SqlSystem sys;
  ExecContext ctx;
  sys.executor().set_exec_context(&ctx);
  ASSERT_OK_AND_ASSIGN(
      SimilarityList out,
      sys.Evaluate(*q, casablanca::NamedInputs(), casablanca::kNumShots));
  EXPECT_TRUE(out == casablanca::Query1ResultTable());
  sys.executor().set_exec_context(nullptr);
}

}  // namespace
}  // namespace htl
