#include "engine/reference_engine.h"

#include <gtest/gtest.h>

#include "htl/binder.h"
#include "htl/parser.h"
#include "model/video_builder.h"
#include "testing/helpers.h"

namespace htl {
namespace {

using testing::L;
using testing::ListsEqual;

FormulaPtr Parse(std::string_view text) {
  auto r = ParseFormula(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  FormulaPtr f = std::move(r).value();
  Status s = Bind(f.get());
  EXPECT_TRUE(s.ok()) << s.ToString();
  return f;
}

// Six segments: duration 1..6; object 1 (airplane, rising height) in 1-3;
// object 2 (person) in 2-5 with a gun in 4.
VideoTree MakeTestVideo() {
  VideoTree v = VideoTree::Flat(6);
  auto seg = [&](SegmentId s) -> SegmentMeta& { return v.MutableMeta(2, s); };
  for (SegmentId s = 1; s <= 3; ++s) {
    ObjectAppearance plane;
    plane.id = 1;
    plane.attributes["type"] = AttrValue("airplane");
    plane.attributes["height"] = AttrValue(int64_t{s * 10});
    seg(s).AddObject(std::move(plane));
  }
  for (SegmentId s = 2; s <= 5; ++s) {
    ObjectAppearance person;
    person.id = 2;
    person.attributes["type"] = AttrValue("person");
    seg(s).AddObject(std::move(person));
  }
  seg(4).AddFact({"holds_gun", {2}});
  for (SegmentId s = 1; s <= 6; ++s) {
    seg(s).SetAttribute("duration", AttrValue(int64_t{s}));
  }
  return v;
}

TEST(ReferenceEngineTest, ConstantTrueFalse) {
  VideoTree v = MakeTestVideo();
  ReferenceEngine e(&v);
  ASSERT_OK_AND_ASSIGN(SimilarityList t, e.EvaluateList(2, *Parse("true")));
  EXPECT_TRUE(ListsEqual(t, L({{1, 6, 1.0}}, 1.0)));
  ASSERT_OK_AND_ASSIGN(SimilarityList f, e.EvaluateList(2, *Parse("false")));
  EXPECT_TRUE(f.empty());
}

TEST(ReferenceEngineTest, AtomicWeightedPartialMatch) {
  VideoTree v = MakeTestVideo();
  ReferenceEngine e(&v);
  ASSERT_OK_AND_ASSIGN(
      SimilarityList list,
      e.EvaluateList(2, *Parse("exists p (type(p) = 'person' @ 1 and holds_gun(p) @ 2)")));
  EXPECT_TRUE(ListsEqual(list, L({{2, 3, 1.0}, {4, 4, 3.0}, {5, 5, 1.0}}, 3.0)));
}

TEST(ReferenceEngineTest, AndSums) {
  VideoTree v = MakeTestVideo();
  ReferenceEngine e(&v);
  ASSERT_OK_AND_ASSIGN(
      SimilarityList list,
      e.EvaluateList(2, *Parse("duration >= 3 @ 1 and eventually duration >= 6 @ 2")));
  // duration>=3 holds on 3..6 (weight 1); eventually duration>=6 holds
  // everywhere (weight 2 from segment 6 backwards).
  EXPECT_TRUE(ListsEqual(list, L({{1, 2, 2.0}, {3, 6, 3.0}}, 3.0)));
}

TEST(ReferenceEngineTest, NextShifts) {
  VideoTree v = MakeTestVideo();
  ReferenceEngine e(&v);
  ASSERT_OK_AND_ASSIGN(SimilarityList list,
                       e.EvaluateList(2, *Parse("next duration >= 6")));
  EXPECT_TRUE(ListsEqual(list, L({{5, 5, 1.0}}, 1.0)));
}

TEST(ReferenceEngineTest, NextAtEndIsZero) {
  VideoTree v = MakeTestVideo();
  ReferenceEngine e(&v);
  ASSERT_OK_AND_ASSIGN(SimilarityList list, e.EvaluateList(2, *Parse("next true")));
  EXPECT_TRUE(ListsEqual(list, L({{1, 5, 1.0}}, 1.0)));
}

TEST(ReferenceEngineTest, UntilThresholdSemantics) {
  VideoTree v = MakeTestVideo();
  QueryOptions opts;
  opts.until_threshold = 0.5;
  ReferenceEngine e(&v, opts);
  // g = duration <= 4 (holds 1-4); h = duration = 5.
  ASSERT_OK_AND_ASSIGN(SimilarityList list,
                       e.EvaluateList(2, *Parse("duration <= 4 until duration = 5")));
  EXPECT_TRUE(ListsEqual(list, L({{1, 5, 1.0}}, 1.0)));
}

TEST(ReferenceEngineTest, UntilBrokenChain) {
  VideoTree v = MakeTestVideo();
  ReferenceEngine e(&v);
  // g = duration != 3 fails at 3, so ids 1-2 cannot reach h at 5.
  ASSERT_OK_AND_ASSIGN(SimilarityList list,
                       e.EvaluateList(2, *Parse("duration != 3 until duration = 5")));
  EXPECT_TRUE(ListsEqual(list, L({{4, 5, 1.0}}, 1.0)));
}

TEST(ReferenceEngineTest, NotInvertsActual) {
  VideoTree v = MakeTestVideo();
  ReferenceEngine e(&v);
  ASSERT_OK_AND_ASSIGN(SimilarityList list,
                       e.EvaluateList(2, *Parse("not duration >= 3 @ 2")));
  EXPECT_TRUE(ListsEqual(list, L({{1, 2, 2.0}}, 2.0)));
}

TEST(ReferenceEngineTest, OrTakesMax) {
  VideoTree v = MakeTestVideo();
  ReferenceEngine e(&v);
  ASSERT_OK_AND_ASSIGN(
      SimilarityList list,
      e.EvaluateList(2, *Parse("duration <= 2 @ 3 or duration >= 2 @ 1")));
  EXPECT_TRUE(ListsEqual(list, L({{1, 2, 3.0}, {3, 6, 1.0}}, 3.0)));
}

TEST(ReferenceEngineTest, FreezeComparesAcrossTime) {
  VideoTree v = MakeTestVideo();
  ReferenceEngine e(&v);
  // Paper formula (C): airplane higher later.
  ASSERT_OK_AND_ASSIGN(
      SimilarityList list,
      e.EvaluateList(2, *Parse("exists z (type(z) = 'airplane' and "
                               "[h <- height(z)] eventually (height(z) > h @ 1))")));
  // Heights 10,20,30 at 1..3: from segment 1 or 2 a later higher height
  // exists (score 2); from 3 none (score 1: type matches, comparison
  // hard-fails... the freeze body at 3 finds no later higher height).
  EXPECT_TRUE(ListsEqual(list, L({{1, 2, 2.0}, {3, 3, 1.0}}, 2.0)));
}

TEST(ReferenceEngineTest, EvaluateVideoAtRoot) {
  VideoTree v = MakeTestVideo();
  v.MutableMeta(1, 1).SetAttribute("type", AttrValue("western"));
  ReferenceEngine e(&v);
  ASSERT_OK_AND_ASSIGN(Sim sim, e.EvaluateVideo(*Parse("type = 'western' @ 4")));
  EXPECT_EQ(sim.actual, 4.0);
  EXPECT_EQ(sim.max, 4.0);
}

TEST(ReferenceEngineTest, LevelOperatorReadsFirstChild) {
  // Three-level video: root -> 2 scenes -> (2, 3) shots.
  VideoBuilder b;
  auto s1 = b.AddChild(b.root());
  auto s2 = b.AddChild(b.root());
  auto sh1 = b.AddChild(s1);
  b.AddChild(s1);
  auto sh3 = b.AddChild(s2);
  b.AddChild(s2);
  b.AddChild(s2);
  b.Meta(sh1).SetAttribute("mark", AttrValue(int64_t{1}));
  b.Meta(sh3).SetAttribute("mark", AttrValue(int64_t{1}));
  b.NameLevel("shot", 3);
  auto built = std::move(b).Build();
  ASSERT_OK(built.status());
  VideoTree v = std::move(built).value();

  ReferenceEngine e(&v);
  // at-next-level(mark = 1) at scene level: true iff the scene's first shot
  // is marked. Both scenes' first shots are marked.
  ASSERT_OK_AND_ASSIGN(SimilarityList list,
                       e.EvaluateList(2, *Parse("at-next-level(mark = 1)")));
  EXPECT_TRUE(ListsEqual(list, L({{1, 2, 1.0}}, 1.0)));

  // From the root, at-shot-level sees the whole shot sequence; its first
  // element is shot 1.
  ASSERT_OK_AND_ASSIGN(Sim sim, e.EvaluateVideo(*Parse("at-shot-level(mark = 1)")));
  EXPECT_EQ(sim.actual, 1.0);
}

TEST(ReferenceEngineTest, AtNextLevelBelowLeavesIsZero) {
  VideoTree v = MakeTestVideo();
  ReferenceEngine e(&v);
  ASSERT_OK_AND_ASSIGN(SimilarityList list,
                       e.EvaluateList(2, *Parse("at-next-level(true)")));
  EXPECT_TRUE(list.empty());
}

TEST(ReferenceEngineTest, AbsoluteLevelUpwardRejected) {
  VideoTree v = MakeTestVideo();
  ReferenceEngine e(&v);
  EXPECT_FALSE(e.EvaluateList(2, *Parse("at-level-2(true)")).ok());
}

TEST(ReferenceEngineTest, ExistsOverTemporalBody) {
  VideoTree v = MakeTestVideo();
  ReferenceEngine e(&v);
  // The binding must stay fixed across time: person (2) present at 2 and
  // still present at 5 — airplane (1) never spans both.
  ASSERT_OK_AND_ASSIGN(
      SimilarityList list,
      e.EvaluateList(
          2, *Parse("exists o (present(o) and eventually (present(o) and duration = 5))")));
  EXPECT_TRUE(ListsEqual(list, L({{1, 1, 2.0}, {2, 5, 3.0}}, 3.0)));
}

TEST(ReferenceEngineTest, OutOfRangeLevel) {
  VideoTree v = MakeTestVideo();
  ReferenceEngine e(&v);
  EXPECT_EQ(e.EvaluateList(5, *Parse("true")).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace htl
