#include "engine/plan.h"

#include <gtest/gtest.h>

#include "htl/binder.h"
#include "htl/parser.h"
#include "testing/helpers.h"
#include "workload/casablanca.h"

namespace htl {
namespace {

FormulaPtr Parse(std::string_view text) {
  auto r = ParseFormula(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  FormulaPtr f = std::move(r).value();
  EXPECT_OK(Bind(f.get()));
  return f;
}

TEST(ExplainPlanTest, Query1Plan) {
  VideoTree v = casablanca::MakeVideo();
  FormulaPtr q = casablanca::Query1Full();
  ASSERT_OK(Bind(q.get()));
  ASSERT_OK_AND_ASSIGN(std::string plan, ExplainPlan(v, 2, *q));
  EXPECT_NE(plan.find("class type(1)"), std::string::npos);
  EXPECT_NE(plan.find("AndMerge join"), std::string::npos);
  EXPECT_NE(plan.find("suffix-max sweep"), std::string::npos);
  EXPECT_NE(plan.find("picture query"), std::string::npos);
  EXPECT_NE(plan.find("50 segments"), std::string::npos);
}

TEST(ExplainPlanTest, ShowsAtomicColumns) {
  VideoTree v = VideoTree::Flat(3);
  // Non-closed atomic under a prenex exists: the atomic carries column x.
  FormulaPtr q = Parse("exists x (present(x) and eventually present(x))");
  ASSERT_OK_AND_ASSIGN(std::string plan, ExplainPlan(v, 2, *q));
  EXPECT_NE(plan.find("m-way max collapse"), std::string::npos);
  EXPECT_NE(plan.find("columns=(x)"), std::string::npos);
}

TEST(ExplainPlanTest, FreezeAndUntilAndLevel) {
  VideoTree v = VideoTree::Flat(3);
  FormulaPtr q = Parse(
      "exists z (type(z) = 'airplane' and "
      "[h <- height(z)] (true until height(z) > h))");
  ASSERT_OK_AND_ASSIGN(std::string plan, ExplainPlan(v, 2, *q));
  EXPECT_NE(plan.find("value-table join"), std::string::npos);
  EXPECT_NE(plan.find("backward sweep"), std::string::npos);

  FormulaPtr lvl = Parse("at-next-level(true)");
  ASSERT_OK_AND_ASSIGN(std::string plan2, ExplainPlan(v, 1, *lvl));
  EXPECT_NE(plan2.find("per-parent subsequence"), std::string::npos);
}

TEST(ExplainPlanTest, NegationAndConstants) {
  VideoTree v = VideoTree::Flat(3);
  FormulaPtr q = Parse("not (false or true)");
  ASSERT_OK_AND_ASSIGN(std::string plan, ExplainPlan(v, 2, *q));
  EXPECT_NE(plan.find("list complement"), std::string::npos);
  EXPECT_NE(plan.find("constant list"), std::string::npos);
  EXPECT_NE(plan.find("empty list"), std::string::npos);
  EXPECT_NE(plan.find("class general"), std::string::npos);
}

TEST(ExplainPlanTest, OutOfRangeLevel) {
  VideoTree v = VideoTree::Flat(3);
  FormulaPtr q = Parse("true");
  EXPECT_EQ(ExplainPlan(v, 9, *q).status().code(), StatusCode::kOutOfRange);
}

TEST(ExplainPlanTest, TreeStructureIsIndented) {
  VideoTree v = VideoTree::Flat(3);
  FormulaPtr q = Parse("true and (true until true)");
  ASSERT_OK_AND_ASSIGN(std::string plan, ExplainPlan(v, 2, *q));
  EXPECT_NE(plan.find("├─"), std::string::npos);
  EXPECT_NE(plan.find("└─"), std::string::npos);
}

}  // namespace
}  // namespace htl
