#include "engine/retrieval.h"

#include <gtest/gtest.h>

#include "model/video_builder.h"
#include "testing/helpers.h"
#include "workload/casablanca.h"

namespace htl {
namespace {

// Store with two small videos: a western with John Wayne and a war film.
MetadataStore MakeStore() {
  MetadataStore store;
  {
    VideoTree v = VideoTree::Flat(4);
    v.MutableMeta(1, 1).SetAttribute("title", AttrValue("Rio Bravo"));
    v.MutableMeta(1, 1).SetAttribute("type", AttrValue("western"));
    for (SegmentId s = 1; s <= 4; ++s) {
      ObjectAppearance jw;
      jw.id = 11;
      jw.attributes["type"] = AttrValue("person");
      jw.attributes["name"] = AttrValue("JohnWayne");
      v.MutableMeta(2, s).AddObject(std::move(jw));
    }
    v.MutableMeta(2, 3).AddFact({"holds_gun", {11}});
    store.AddVideo(std::move(v));
  }
  {
    VideoTree v = VideoTree::Flat(3);
    v.MutableMeta(1, 1).SetAttribute("title", AttrValue("Desert War"));
    v.MutableMeta(1, 1).SetAttribute("type", AttrValue("war"));
    ObjectAppearance plane;
    plane.id = 21;
    plane.attributes["type"] = AttrValue("airplane");
    v.MutableMeta(2, 2).AddObject(std::move(plane));
    store.AddVideo(std::move(v));
  }
  return store;
}

TEST(RetrieverTest, PrepareParsesAndBinds) {
  MetadataStore store = MakeStore();
  Retriever r(&store);
  EXPECT_OK(r.Prepare("exists x (present(x))").status());
  EXPECT_FALSE(r.Prepare("present(x)").ok());     // Unbound.
  EXPECT_FALSE(r.Prepare("present(x").ok());      // Syntax.
}

TEST(RetrieverTest, TopVideosBrowsingQuery) {
  MetadataStore store = MakeStore();
  Retriever r(&store);
  ASSERT_OK_AND_ASSIGN(auto hits, r.TopVideos("type = 'western'", 10));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].video, 1);
  EXPECT_EQ(hits[0].sim.fraction(), 1.0);
}

TEST(RetrieverTest, TopVideosRanksByFraction) {
  MetadataStore store = MakeStore();
  Retriever r(&store);
  // Two constraints: the western matches both at the root? Only type
  // matches; both videos have titles. Use a query with partial matches.
  ASSERT_OK_AND_ASSIGN(auto hits,
                       r.TopVideos("type = 'western' and title = 'Desert War'", 10));
  ASSERT_EQ(hits.size(), 2u);
  // Both score 1/2; ties break by video id.
  EXPECT_EQ(hits[0].video, 1);
  EXPECT_EQ(hits[1].video, 2);
}

TEST(RetrieverTest, TopSegmentsAcrossVideos) {
  MetadataStore store = MakeStore();
  Retriever r(&store);
  ASSERT_OK_AND_ASSIGN(
      auto hits,
      r.TopSegments("exists p (present(p) @ 1 and holds_gun(p) @ 2)", 2, 3));
  ASSERT_GE(hits.size(), 3u);
  // Best: video 1 segment 3 (gun, 3/3). Then other segments at 1/3.
  EXPECT_EQ(hits[0].video, 1);
  EXPECT_EQ(hits[0].segment, 3);
  EXPECT_DOUBLE_EQ(hits[0].sim.fraction(), 1.0);
}

TEST(RetrieverTest, TopSegmentsHonorsK) {
  MetadataStore store = MakeStore();
  Retriever r(&store);
  ASSERT_OK_AND_ASSIGN(auto hits, r.TopSegments("exists p (present(p))", 2, 2));
  EXPECT_EQ(hits.size(), 2u);
}

TEST(RetrieverTest, GeneralClassFallsBackToReference) {
  MetadataStore store = MakeStore();
  Retriever r(&store);
  // Negation: only the reference engine handles it.
  ASSERT_OK_AND_ASSIGN(auto hits,
                       r.TopSegments("not exists p (present(p))", 2, 10));
  // Video 2 segments 1 and 3 have no objects (score 1); video 1 none.
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].video, 2);
}

TEST(RetrieverTest, LevelBeyondVideoDepthYieldsNothing) {
  MetadataStore store = MakeStore();
  Retriever r(&store);
  ASSERT_OK_AND_ASSIGN(auto hits, r.TopSegments("true", 5, 10));
  EXPECT_TRUE(hits.empty());
}

TEST(RetrieverTest, CasablancaTopShot) {
  MetadataStore store;
  store.AddVideo(casablanca::MakeVideo());
  Retriever r(&store);
  FormulaPtr q = casablanca::Query1Full();
  ASSERT_OK_AND_ASSIGN(auto hits, r.TopSegments(*q, 2, 4));
  ASSERT_EQ(hits.size(), 4u);
  // Paper Table 4: shots 1-4 score highest (12.382).
  EXPECT_EQ(hits[0].segment, 1);
  EXPECT_EQ(hits[1].segment, 2);
  EXPECT_EQ(hits[2].segment, 3);
  EXPECT_EQ(hits[3].segment, 4);
  EXPECT_NEAR(hits[0].sim.actual, 12.382, 1e-9);
}


TEST(RetrieverTest, NamedLevelRetrievalSkipsUnnamedVideos) {
  MetadataStore store;
  VideoTree named = VideoTree::Flat(3);
  named.MutableMeta(2, 2).SetAttribute("d", AttrValue(int64_t{1}));
  ASSERT_OK(named.NameLevel("shot", 2));
  store.AddVideo(std::move(named));
  VideoTree unnamed = VideoTree::Flat(3);
  unnamed.MutableMeta(2, 1).SetAttribute("d", AttrValue(int64_t{1}));
  store.AddVideo(std::move(unnamed));  // No "shot" level registered.

  Retriever r(&store);
  ASSERT_OK_AND_ASSIGN(auto hits, r.TopSegmentsAtNamedLevel("d = 1", "shot", 10));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].video, 1);
  EXPECT_EQ(hits[0].segment, 2);
}

TEST(RetrieverTest, NamedLevelMixesHeterogeneousDepths) {
  MetadataStore store;
  {
    VideoTree v = VideoTree::Flat(2);  // "shot" is level 2 here.
    v.MutableMeta(2, 1).SetAttribute("d", AttrValue(int64_t{1}));
    ASSERT_OK(v.NameLevel("shot", 2));
    store.AddVideo(std::move(v));
  }
  {
    // Three-level video where "shot" is level 3.
    VideoBuilder b;
    auto scene = b.AddChild(b.root());
    auto shot = b.AddChild(scene);
    b.Meta(shot).SetAttribute("d", AttrValue(int64_t{1}));
    b.NameLevel("shot", 3);
    auto built = std::move(b).Build();
    ASSERT_OK(built.status());
    store.AddVideo(std::move(built).value());
  }
  Retriever r(&store);
  ASSERT_OK_AND_ASSIGN(auto hits, r.TopSegmentsAtNamedLevel("d = 1", "shot", 10));
  EXPECT_EQ(hits.size(), 2u);
}

}  // namespace
}  // namespace htl
