// The caching determinism contract: with cache_mode on, every hit is
// *bit-identical* to what a cold (cache-off) retriever computes on the same
// store — across all four formula classes of section 3, repeated queries,
// interleaved store mutations (epoch bumps), worker counts, and eviction
// pressure from tiny byte budgets. The cache may only change latency, never
// a single output bit.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/query_cache.h"
#include "engine/retrieval.h"
#include "htl/classifier.h"
#include "htl/fingerprint.h"
#include "model/video.h"
#include "testing/helpers.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/video_gen.h"

namespace htl {
namespace {

// The four sub-general classes of section 3 over the generated-video
// vocabulary (same fixed set the parallel determinism suite pins down).
struct ClassedQuery {
  const char* text;
  FormulaClass expected_class;
};

const ClassedQuery kQueries[] = {
    {"exists x (type(x) = 'person') until exists y (type(y) = 'train')",
     FormulaClass::kType1},
    {"exists x (present(x) and moving(x) and eventually armed(x))",
     FormulaClass::kType2},
    {"exists z (present(z) and [h <- height(z)] eventually (height(z) > h))",
     FormulaClass::kConjunctive},
    {"exists x (type(x) = 'horse') and at-next-level(exists y (moving(y)))",
     FormulaClass::kExtendedConjunctive},
};

void ExpectSameSegmentResults(const SegmentRetrieval& want,
                              const SegmentRetrieval& got,
                              const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(want.hits.size(), got.hits.size());
  for (size_t i = 0; i < want.hits.size(); ++i) {
    EXPECT_EQ(want.hits[i].video, got.hits[i].video) << "hit " << i;
    EXPECT_EQ(want.hits[i].segment, got.hits[i].segment) << "hit " << i;
    // operator== compares doubles exactly: bit-identical, not near.
    EXPECT_EQ(want.hits[i].sim, got.hits[i].sim) << "hit " << i;
  }
  EXPECT_EQ(want.report.videos_evaluated, got.report.videos_evaluated);
  EXPECT_EQ(want.report.videos_failed, got.report.videos_failed);
  EXPECT_EQ(want.report.videos_degraded, got.report.videos_degraded);
}

void ExpectSameVideoResults(const VideoRetrieval& want, const VideoRetrieval& got,
                            const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(want.hits.size(), got.hits.size());
  for (size_t i = 0; i < want.hits.size(); ++i) {
    EXPECT_EQ(want.hits[i].video, got.hits[i].video) << "hit " << i;
    EXPECT_EQ(want.hits[i].sim, got.hits[i].sim) << "hit " << i;
  }
  EXPECT_EQ(want.report.videos_evaluated, got.report.videos_evaluated);
  EXPECT_EQ(want.report.videos_failed, got.report.videos_failed);
}

class CacheDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Same heterogeneous corpus as the parallel determinism suite: six
    // 3-level videos and three 2-level ones.
    Rng rng(20260806);
    for (int i = 0; i < 9; ++i) {
      VideoGenOptions vopts;
      vopts.levels = i % 3 == 2 ? 2 : 3;
      vopts.min_branching = 2;
      vopts.max_branching = 4;
      store_.AddVideo(GenerateVideo(rng, vopts));
    }
  }

  Retriever MakeCold() { return Retriever(&store_, QueryOptions{}); }

  Retriever MakeCached(CacheMode mode = CacheMode::kReadWrite,
                       int parallelism = 1) {
    QueryOptions options;
    options.cache_mode = mode;
    options.parallelism = parallelism;
    options.thread_pool = parallelism > 1 ? &pool_ : nullptr;
    return Retriever(&store_, options);
  }

  // The cold reference answer, recomputed from scratch on a throwaway
  // cache-off retriever (the historical code path, bit for bit).
  SegmentRetrieval ColdAnswer(const Formula& f, int level) {
    Retriever cold = MakeCold();
    Result<SegmentRetrieval> r = cold.TopSegmentsWithReport(f, level, 10);
    EXPECT_OK(r.status());
    return std::move(r).value();
  }

  MetadataStore store_;
  ThreadPool pool_{ThreadPool::Options{4, 0}};
};

// Repeated queries through one caching retriever: first run misses and
// fills, later runs hit — every run bit-identical to cold recomputation,
// for every formula class and level.
TEST_F(CacheDifferentialTest, WarmHitsMatchColdAcrossAllClasses) {
  Retriever cached = MakeCached();
  int64_t expected_hits = 0;
  int64_t expected_fills = 0;
  for (const ClassedQuery& q : kQueries) {
    ASSERT_OK_AND_ASSIGN(FormulaPtr f, cached.Prepare(q.text));
    ASSERT_EQ(Classify(*f), q.expected_class) << q.text;
    for (int level : {2, 3}) {
      SegmentRetrieval want = ColdAnswer(*f, level);
      // Complete answers fill once then hit; partial answers (some videos
      // lack the level or the next level) are never cached, so every run
      // recomputes.
      if (want.report.complete()) {
        expected_fills += 1;
        expected_hits += 2;
      }
      for (int run = 0; run < 3; ++run) {
        ASSERT_OK_AND_ASSIGN(SegmentRetrieval got,
                             cached.TopSegmentsWithReport(*f, level, 10));
        ExpectSameSegmentResults(want, got,
                                 std::string(q.text) + " level " +
                                     std::to_string(level) + " run " +
                                     std::to_string(run));
      }
    }
  }
  ASSERT_GT(expected_hits, 0) << "corpus produced no complete answers";
  const cache::CacheStats stats = cached.caches()->result_stats();
  EXPECT_EQ(stats.hits, expected_hits) << stats.ToString();
  EXPECT_EQ(stats.fills, expected_fills) << stats.ToString();
  EXPECT_EQ(stats.hits + stats.misses, 24) << stats.ToString();  // 4 x 2 x 3.
}

TEST_F(CacheDifferentialTest, TopVideosWarmHitsMatchCold) {
  Retriever cached = MakeCached();
  for (const ClassedQuery& q : kQueries) {
    ASSERT_OK_AND_ASSIGN(FormulaPtr f, cached.Prepare(q.text));
    Retriever cold = MakeCold();
    ASSERT_OK_AND_ASSIGN(VideoRetrieval want, cold.TopVideosWithReport(*f, 5));
    for (int run = 0; run < 2; ++run) {
      ASSERT_OK_AND_ASSIGN(VideoRetrieval got, cached.TopVideosWithReport(*f, 5));
      ExpectSameVideoResults(want, got,
                             std::string(q.text) + " run " + std::to_string(run));
    }
  }
  EXPECT_GT(cached.caches()->result_stats().hits, 0);
}

// Store mutations interleaved with queries: every AddVideo / MutableVideo
// bumps the epoch, so the warm cache must never serve a pre-mutation
// answer — each post-mutation query matches a from-scratch cold retriever
// on the mutated store.
TEST_F(CacheDifferentialTest, MutationsInvalidateWarmEntries) {
  Retriever cached = MakeCached();
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, cached.Prepare(kQueries[1].text));
  Rng rng(7);
  for (int round = 0; round < 4; ++round) {
    SCOPED_TRACE(round);
    // Warm (twice: the second run is a genuine hit at the current epoch).
    SegmentRetrieval want = ColdAnswer(*f, 2);
    for (int run = 0; run < 2; ++run) {
      ASSERT_OK_AND_ASSIGN(SegmentRetrieval got,
                           cached.TopSegmentsWithReport(*f, 2, 10));
      ExpectSameSegmentResults(want, got, "pre-mutation run " + std::to_string(run));
    }
    // Mutate: grow the store on even rounds, rewrite an existing video in
    // place on odd ones (both bump the epoch; the second also invalidates
    // the engines' VideoTree pointers).
    VideoGenOptions vopts;
    vopts.levels = 3;
    vopts.min_branching = 2;
    vopts.max_branching = 4;
    if (round % 2 == 0) {
      store_.AddVideo(GenerateVideo(rng, vopts));
    } else {
      store_.MutableVideo(1 + round % store_.num_videos()) =
          GenerateVideo(rng, vopts);
    }
    SegmentRetrieval after = ColdAnswer(*f, 2);
    ASSERT_OK_AND_ASSIGN(SegmentRetrieval got,
                         cached.TopSegmentsWithReport(*f, 2, 10));
    ExpectSameSegmentResults(after, got, "post-mutation");
  }
  // The post-mutation lookups found the warm-but-stale entries and evicted
  // them instead of serving them.
  EXPECT_GT(cached.caches()->result_stats().stale, 0)
      << cached.caches()->result_stats().ToString();
}

// The caching layers compose with parallel execution: for worker counts 1,
// 2 and 4, cold fills and warm hits both reproduce the serial cold answer.
TEST_F(CacheDifferentialTest, ParallelismSweepMatchesSerialCold) {
  for (const ClassedQuery& q : kQueries) {
    Retriever cold = MakeCold();
    ASSERT_OK_AND_ASSIGN(FormulaPtr f, cold.Prepare(q.text));
    ASSERT_OK_AND_ASSIGN(SegmentRetrieval want, cold.TopSegmentsWithReport(*f, 2, 10));
    for (int workers : {1, 2, 4}) {
      Retriever cached = MakeCached(CacheMode::kReadWrite, workers);
      for (int run = 0; run < 2; ++run) {
        ASSERT_OK_AND_ASSIGN(SegmentRetrieval got,
                             cached.TopSegmentsWithReport(*f, 2, 10));
        ExpectSameSegmentResults(want, got,
                                 std::string(q.text) + " workers " +
                                     std::to_string(workers) + " run " +
                                     std::to_string(run));
      }
      // A complete answer fills on run 0 and hits on run 1; a partial one
      // is never cached and recomputes both times.
      EXPECT_EQ(cached.caches()->result_stats().hits,
                want.report.complete() ? 1 : 0);
    }
  }
}

// Eviction pressure: byte budgets far too small for the working set force
// constant eviction; every answer still matches cold recomputation.
TEST_F(CacheDifferentialTest, TinyBudgetsEvictButNeverCorrupt) {
  QueryOptions options;
  options.cache_mode = CacheMode::kReadWrite;
  options.result_cache_bytes = 512;  // A couple of entries store-wide.
  options.list_cache_bytes = 256;
  options.cache_shards = 2;
  Retriever cached(&store_, options);
  std::vector<FormulaPtr> formulas;
  std::vector<SegmentRetrieval> want;
  for (const ClassedQuery& q : kQueries) {
    ASSERT_OK_AND_ASSIGN(FormulaPtr f, cached.Prepare(q.text));
    want.push_back(ColdAnswer(*f, 2));
    formulas.push_back(std::move(f));
  }
  // Round-robin so every fill evicts someone else's entry.
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < formulas.size(); ++i) {
      ASSERT_OK_AND_ASSIGN(SegmentRetrieval got,
                           cached.TopSegmentsWithReport(*formulas[i], 2, 10));
      ExpectSameSegmentResults(want[i], got,
                               "round " + std::to_string(round) + " query " +
                                   std::to_string(i));
    }
  }
  const cache::CacheStats stats = cached.caches()->result_stats();
  EXPECT_GT(stats.evictions, 0) << stats.ToString();
  EXPECT_LE(stats.bytes, options.result_cache_bytes) << stats.ToString();
}

// cache_mode = kRead probes but never stores: with nothing ever filled,
// every run recomputes and still matches cold.
TEST_F(CacheDifferentialTest, ReadModeNeverStores) {
  Retriever cached = MakeCached(CacheMode::kRead);
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, cached.Prepare(kQueries[0].text));
  SegmentRetrieval want = ColdAnswer(*f, 2);
  for (int run = 0; run < 2; ++run) {
    ASSERT_OK_AND_ASSIGN(SegmentRetrieval got,
                         cached.TopSegmentsWithReport(*f, 2, 10));
    ExpectSameSegmentResults(want, got, "run " + std::to_string(run));
  }
  const cache::CacheStats stats = cached.caches()->result_stats();
  EXPECT_EQ(stats.fills, 0) << stats.ToString();
  EXPECT_EQ(stats.entries, 0) << stats.ToString();
  EXPECT_EQ(stats.misses, 2) << stats.ToString();
}

// Commutative operand order canonicalizes into one cache key: `a and b`
// asked after `b and a` is a warm hit, and the answers are bit-identical
// (the canonical serializer proves why: IEEE min/+ at a single node are
// symmetric in their operands).
TEST_F(CacheDifferentialTest, CommutativeOperandOrderSharesOneEntry) {
  constexpr const char* kAB =
      "exists x (moving(x)) and exists y (type(y) = 'train')";
  constexpr const char* kBA =
      "exists y (type(y) = 'train') and exists x (moving(x))";
  Retriever cached = MakeCached();
  ASSERT_OK_AND_ASSIGN(FormulaPtr ab, cached.Prepare(kAB));
  ASSERT_OK_AND_ASSIGN(FormulaPtr ba, cached.Prepare(kBA));
  EXPECT_EQ(CanonicalFormulaKey(*ab), CanonicalFormulaKey(*ba));

  ASSERT_OK_AND_ASSIGN(SegmentRetrieval first,
                       cached.TopSegmentsWithReport(*ab, 2, 10));
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval second,
                       cached.TopSegmentsWithReport(*ba, 2, 10));
  ExpectSameSegmentResults(first, second, "swapped operands");
  const cache::CacheStats stats = cached.caches()->result_stats();
  EXPECT_EQ(stats.hits, 1) << stats.ToString();
  EXPECT_EQ(stats.entries, 1) << stats.ToString();
  // And the shared entry serves the cold answer, not merely *an* answer.
  ExpectSameSegmentResults(ColdAnswer(*ab, 2), second, "vs cold");
}

// The sub-formula (similarity-list) cache alone: EvaluateList through a
// caching retriever matches the cache-off list exactly for every video.
TEST_F(CacheDifferentialTest, EvaluateListMatchesColdPerVideo) {
  Retriever cached = MakeCached();
  Retriever cold = MakeCold();
  for (const ClassedQuery& q : kQueries) {
    ASSERT_OK_AND_ASSIGN(FormulaPtr f, cached.Prepare(q.text));
    for (MetadataStore::VideoId v = 1; v <= store_.num_videos(); ++v) {
      for (int run = 0; run < 2; ++run) {
        SCOPED_TRACE(std::string(q.text) + " video " + std::to_string(v) +
                     " run " + std::to_string(run));
        Result<SimilarityList> want = cold.EvaluateList(v, 2, *f);
        Result<SimilarityList> got = cached.EvaluateList(v, 2, *f);
        // Videos where the query cannot evaluate (e.g. no next level) must
        // fail identically, not differently, through the cache.
        ASSERT_EQ(want.ok(), got.ok()) << got.status().ToString();
        if (!want.ok()) {
          EXPECT_EQ(want.status().code(), got.status().code());
          continue;
        }
        EXPECT_TRUE(want.value() == got.value());
      }
    }
  }
}

}  // namespace
}  // namespace htl
