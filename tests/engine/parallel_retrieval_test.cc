// The parallel-execution determinism contract: for every entry point, every
// formula class the paper names, and every failure mode (injected faults,
// blown budgets, reference-engine degradation), a parallel run produces
// *bit-identical* hits and an identical report to the serial run — chunking
// and merge order are implementation detail, never observable output.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/exec_context.h"
#include "engine/retrieval.h"
#include "htl/classifier.h"
#include "model/video.h"
#include "obs/profile.h"
#include "testing/helpers.h"
#include "util/fault_point.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/video_gen.h"

namespace htl {
namespace {

// The four sub-general classes of section 3, as fixed queries over the
// generated-video vocabulary (types/facts from VideoGenOptions' defaults).
struct ClassedQuery {
  const char* text;
  FormulaClass expected_class;
};

const ClassedQuery kQueries[] = {
    {"exists x (type(x) = 'person') until exists y (type(y) = 'train')",
     FormulaClass::kType1},
    {"exists x (present(x) and moving(x) and eventually armed(x))",
     FormulaClass::kType2},
    {"exists z (present(z) and [h <- height(z)] eventually (height(z) > h))",
     FormulaClass::kConjunctive},
    {"exists x (type(x) = 'horse') and at-next-level(exists y (moving(y)))",
     FormulaClass::kExtendedConjunctive},
};

// Degrades to the reference engine: negation over a free variable is the
// construct the direct engine reports Unimplemented for.
constexpr const char* kDegradingQuery = "exists x (present(x) and not armed(x))";

void ExpectSameSegmentResults(const SegmentRetrieval& serial,
                              const SegmentRetrieval& parallel,
                              const std::string& context,
                              bool compare_failure_messages = true) {
  SCOPED_TRACE(context);
  ASSERT_EQ(serial.hits.size(), parallel.hits.size());
  for (size_t i = 0; i < serial.hits.size(); ++i) {
    EXPECT_EQ(serial.hits[i].video, parallel.hits[i].video) << "hit " << i;
    EXPECT_EQ(serial.hits[i].segment, parallel.hits[i].segment) << "hit " << i;
    // Bit-identical, not near: the parallel run executes the same per-video
    // arithmetic and only reorders the (commutative) merge.
    EXPECT_EQ(serial.hits[i].sim, parallel.hits[i].sim) << "hit " << i;
  }
  EXPECT_EQ(serial.report.videos_evaluated, parallel.report.videos_evaluated);
  EXPECT_EQ(serial.report.videos_failed, parallel.report.videos_failed);
  EXPECT_EQ(serial.report.videos_degraded, parallel.report.videos_degraded);
  ASSERT_EQ(serial.report.failures.size(), parallel.report.failures.size());
  for (size_t i = 0; i < serial.report.failures.size(); ++i) {
    EXPECT_EQ(serial.report.failures[i].video, parallel.report.failures[i].video);
    EXPECT_EQ(serial.report.failures[i].status.code(),
              parallel.report.failures[i].status.code());
    // Injected-fault messages embed the registry's global hit counter,
    // which accumulates across runs — callers comparing faulted runs skip
    // the message text and compare code + video only.
    if (compare_failure_messages) {
      EXPECT_EQ(serial.report.failures[i].status.message(),
                parallel.report.failures[i].status.message());
    }
  }
}

void ExpectSameVideoResults(const VideoRetrieval& serial,
                            const VideoRetrieval& parallel,
                            const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(serial.hits.size(), parallel.hits.size());
  for (size_t i = 0; i < serial.hits.size(); ++i) {
    EXPECT_EQ(serial.hits[i].video, parallel.hits[i].video) << "hit " << i;
    EXPECT_EQ(serial.hits[i].sim, parallel.hits[i].sim) << "hit " << i;
  }
  EXPECT_EQ(serial.report.videos_evaluated, parallel.report.videos_evaluated);
  EXPECT_EQ(serial.report.videos_failed, parallel.report.videos_failed);
  EXPECT_EQ(serial.report.videos_degraded, parallel.report.videos_degraded);
  ASSERT_EQ(serial.report.failures.size(), parallel.report.failures.size());
  for (size_t i = 0; i < serial.report.failures.size(); ++i) {
    EXPECT_EQ(serial.report.failures[i].video, parallel.report.failures[i].video);
    EXPECT_EQ(serial.report.failures[i].status.code(),
              parallel.report.failures[i].status.code());
  }
}

class ParallelRetrievalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Instance().DisableAll();
    // A heterogeneous randomized corpus: six 3-level videos (named levels
    // "scene"/"shot") and three 2-level ones (no named levels — exercises
    // the named-level skip path under chunking).
    Rng rng(20260806);
    for (int i = 0; i < 9; ++i) {
      VideoGenOptions vopts;
      vopts.levels = i % 3 == 2 ? 2 : 3;
      vopts.min_branching = 2;
      vopts.max_branching = 4;
      store_.AddVideo(GenerateVideo(rng, vopts));
    }
  }
  void TearDown() override { FaultRegistry::Instance().DisableAll(); }

  // One shared 8-thread pool: QueryOptions::parallelism picks the chunk
  // count per run, so pools never need resizing between sweeps.
  Retriever MakeRetriever(int parallelism) {
    QueryOptions options;
    options.parallelism = parallelism;
    options.thread_pool = &pool_;
    return Retriever(&store_, options);
  }

  MetadataStore store_;
  ThreadPool pool_{ThreadPool::Options{8, 0}};
};

TEST_F(ParallelRetrievalTest, AllFormulaClassesMatchSerialBitForBit) {
  for (const ClassedQuery& q : kQueries) {
    Retriever serial = MakeRetriever(1);
    ASSERT_OK_AND_ASSIGN(FormulaPtr f, serial.Prepare(q.text));
    ASSERT_EQ(Classify(*f), q.expected_class) << q.text;
    for (int level : {2, 3}) {
      ASSERT_OK_AND_ASSIGN(SegmentRetrieval want,
                           serial.TopSegmentsWithReport(*f, level, 10));
      for (int workers : {2, 4, 8}) {
        Retriever parallel = MakeRetriever(workers);
        ASSERT_OK_AND_ASSIGN(SegmentRetrieval got,
                             parallel.TopSegmentsWithReport(*f, level, 10));
        ExpectSameSegmentResults(want, got,
                                 std::string(q.text) + " level " +
                                     std::to_string(level) + " workers " +
                                     std::to_string(workers));
      }
    }
  }
}

TEST_F(ParallelRetrievalTest, TopVideosMatchesSerial) {
  for (const ClassedQuery& q : kQueries) {
    Retriever serial = MakeRetriever(1);
    ASSERT_OK_AND_ASSIGN(FormulaPtr f, serial.Prepare(q.text));
    ASSERT_OK_AND_ASSIGN(VideoRetrieval want, serial.TopVideosWithReport(*f, 5));
    for (int workers : {2, 4, 8}) {
      Retriever parallel = MakeRetriever(workers);
      ASSERT_OK_AND_ASSIGN(VideoRetrieval got, parallel.TopVideosWithReport(*f, 5));
      ExpectSameVideoResults(want, got,
                             std::string(q.text) + " workers " +
                                 std::to_string(workers));
    }
  }
}

TEST_F(ParallelRetrievalTest, NamedLevelSkipsMatchSerial) {
  // Three of the nine videos have no "shot" level and must be skipped
  // silently by every chunk exactly as the serial loop skips them.
  Retriever serial = MakeRetriever(1);
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, serial.Prepare(kQueries[0].text));
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval want,
                       serial.TopSegmentsAtNamedLevelWithReport(*f, "shot", 10));
  EXPECT_EQ(want.report.videos_evaluated, 6);
  for (int workers : {2, 4, 8}) {
    Retriever parallel = MakeRetriever(workers);
    ASSERT_OK_AND_ASSIGN(SegmentRetrieval got,
                         parallel.TopSegmentsAtNamedLevelWithReport(*f, "shot", 10));
    ExpectSameSegmentResults(want, got, "workers " + std::to_string(workers));
  }
}

TEST_F(ParallelRetrievalTest, DegradedVideosMatchSerial) {
  // Every video degrades to the reference engine (negation over a free
  // variable); the degradation decision and results must not depend on
  // which worker made them.
  Retriever serial = MakeRetriever(1);
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, serial.Prepare(kDegradingQuery));
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval want,
                       serial.TopSegmentsWithReport(*f, 2, 10));
  ASSERT_GT(want.report.videos_degraded, 0) << want.report.ToString();
  for (int workers : {2, 4, 8}) {
    Retriever parallel = MakeRetriever(workers);
    ASSERT_OK_AND_ASSIGN(SegmentRetrieval got,
                         parallel.TopSegmentsWithReport(*f, 2, 10));
    ExpectSameSegmentResults(want, got, "workers " + std::to_string(workers));
  }
}

TEST_F(ParallelRetrievalTest, EveryHitFaultProducesIdenticalDegradedRuns) {
  // An every-hit fault spec fires deterministically inside whichever video
  // reaches the seam, independent of evaluation order — exactly the class
  // of injection that is comparable across serial and parallel runs.
  Retriever serial = MakeRetriever(1);
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, serial.Prepare(kQueries[1].text));
  FaultRegistry::Instance().Enable("engine.table_join", FaultSpec{});
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval want,
                       serial.TopSegmentsWithReport(*f, 2, 10));
  for (int workers : {2, 4, 8}) {
    Retriever parallel = MakeRetriever(workers);
    ASSERT_OK_AND_ASSIGN(SegmentRetrieval got,
                         parallel.TopSegmentsWithReport(*f, 2, 10));
    ExpectSameSegmentResults(want, got, "workers " + std::to_string(workers),
                             /*compare_failure_messages=*/false);
  }
  FaultRegistry::Instance().DisableAll();
}

TEST_F(ParallelRetrievalTest, BudgetPartialTopKMatchesSerial) {
  // A tight per-video row budget fails the expensive videos and passes the
  // small ones — per-video state, so the partial top-k is deterministic and
  // must agree across worker counts.
  Retriever serial = MakeRetriever(1);
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, serial.Prepare(kQueries[0].text));
  // Probe each video's row cost on a throwaway retriever (engine caches
  // change the charge sequence, so the probe must not warm the retrievers
  // under test) and budget at the median: the expensive videos blow the
  // budget and the cheap ones pass — per-video state either way, hence
  // deterministic under any worker count.
  std::vector<int64_t> rows;
  {
    Retriever prober = MakeRetriever(1);
    for (MetadataStore::VideoId v = 1; v <= store_.num_videos(); ++v) {
      ExecContext probe;
      probe.BeginUnit();
      ASSERT_OK(prober.EvaluateList(v, 2, *f, &probe).status());
      rows.push_back(probe.rows_used());
    }
  }
  std::sort(rows.begin(), rows.end());
  const int64_t budget = std::max<int64_t>(1, rows[rows.size() / 2]);
  const auto run = [&f, budget](Retriever& r) {
    ExecContext ctx;
    ctx.mutable_budgets().max_rows = budget;
    return r.TopSegmentsWithReport(*f, 2, 10, &ctx);
  };
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval want, run(serial));
  ASSERT_GT(want.report.videos_failed, 0)
      << "budget chosen to fail at least one video; " << want.report.ToString();
  ASSERT_GT(want.report.videos_evaluated, 0)
      << "budget chosen to pass at least one video; " << want.report.ToString();
  for (int workers : {2, 4, 8}) {
    Retriever parallel = MakeRetriever(workers);
    ASSERT_OK_AND_ASSIGN(SegmentRetrieval got, run(parallel));
    ExpectSameSegmentResults(want, got, "workers " + std::to_string(workers));
  }
}

TEST_F(ParallelRetrievalTest, ProfiledRunsMatchAndStitchWorkerSpans) {
  Retriever serial = MakeRetriever(1);
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, serial.Prepare(kQueries[2].text));
  ASSERT_OK_AND_ASSIGN(SegmentRetrieval want, serial.TopSegmentsProfiled(*f, 2, 10));
  for (int workers : {2, 4, 8}) {
    Retriever parallel = MakeRetriever(workers);
    ASSERT_OK_AND_ASSIGN(SegmentRetrieval got,
                         parallel.TopSegmentsProfiled(*f, 2, 10));
    // The retrieved results and report counters agree (the profile itself
    // differs structurally: that is the point of the worker grouping).
    ASSERT_EQ(want.hits.size(), got.hits.size());
    for (size_t i = 0; i < want.hits.size(); ++i) {
      EXPECT_EQ(want.hits[i].video, got.hits[i].video);
      EXPECT_EQ(want.hits[i].segment, got.hits[i].segment);
      EXPECT_EQ(want.hits[i].sim, got.hits[i].sim);
    }
    EXPECT_EQ(want.report.videos_evaluated, got.report.videos_evaluated);

    // Worker spans sit under stage.execute, in chunk order, and the video
    // spans beneath them cover every video exactly once, ascending.
    const obs::QueryProfile::Node* execute = got.report.profile.Find("stage.execute");
    ASSERT_NE(execute, nullptr);
    std::vector<int64_t> video_units;
    int worker_spans = 0;
    for (const obs::QueryProfile::Node& child : execute->children) {
      if (child.name != "worker") continue;
      EXPECT_EQ(child.unit, worker_spans) << "worker spans stitched in chunk order";
      ++worker_spans;
      for (const obs::QueryProfile::Node& sub : child.children) {
        if (sub.name == "video") video_units.push_back(sub.unit);
      }
    }
    EXPECT_EQ(worker_spans, workers <= 9 ? workers : 9);
    ASSERT_EQ(video_units.size(), 9u);
    for (size_t i = 0; i < video_units.size(); ++i) {
      EXPECT_EQ(video_units[i], static_cast<int64_t>(i) + 1);
    }
  }
}

TEST_F(ParallelRetrievalTest, PreCancelledContextAbortsParallelRun) {
  Retriever parallel = MakeRetriever(4);
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, parallel.Prepare(kQueries[0].text));
  ExecContext ctx;
  ctx.Cancel();
  // Worker children observe a parent cancel set before they were spawned.
  Status s = parallel.TopSegmentsWithReport(*f, 2, 10, &ctx).status();
  EXPECT_EQ(s.code(), StatusCode::kCancelled) << s.ToString();
}

TEST_F(ParallelRetrievalTest, ExpiredDeadlineAbortsParallelRunWithRootCause) {
  Retriever parallel = MakeRetriever(4);
  ASSERT_OK_AND_ASSIGN(FormulaPtr f, parallel.Prepare(kQueries[0].text));
  ExecContext ctx;
  ctx.SetTimeout(std::chrono::milliseconds(0));
  // The fan-out cancels the sibling workers, but the reported status must
  // stay the root cause (DeadlineExceeded), not the induced Cancelled.
  Status s = parallel.TopSegmentsWithReport(*f, 2, 10, &ctx).status();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
}

}  // namespace
}  // namespace htl
