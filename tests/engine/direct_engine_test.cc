#include "engine/direct_engine.h"

#include <gtest/gtest.h>

#include "engine/reference_engine.h"
#include "htl/binder.h"
#include "htl/parser.h"
#include "model/video_builder.h"
#include "testing/helpers.h"
#include "workload/casablanca.h"

namespace htl {
namespace {

using testing::L;
using testing::ListsEqual;

FormulaPtr Parse(std::string_view text) {
  auto r = ParseFormula(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  FormulaPtr f = std::move(r).value();
  Status s = Bind(f.get());
  EXPECT_TRUE(s.ok()) << s.ToString();
  return f;
}

VideoTree MakeTestVideo() {
  VideoTree v = VideoTree::Flat(6);
  auto seg = [&](SegmentId s) -> SegmentMeta& { return v.MutableMeta(2, s); };
  for (SegmentId s = 1; s <= 3; ++s) {
    ObjectAppearance plane;
    plane.id = 1;
    plane.attributes["type"] = AttrValue("airplane");
    plane.attributes["height"] = AttrValue(int64_t{s * 10});
    seg(s).AddObject(std::move(plane));
  }
  for (SegmentId s = 2; s <= 5; ++s) {
    ObjectAppearance person;
    person.id = 2;
    person.attributes["type"] = AttrValue("person");
    seg(s).AddObject(std::move(person));
  }
  seg(4).AddFact({"holds_gun", {2}});
  for (SegmentId s = 1; s <= 6; ++s) {
    seg(s).SetAttribute("duration", AttrValue(int64_t{s}));
  }
  return v;
}

// Checks the direct engine against the reference engine for one query.
void ExpectAgreesWithReference(const VideoTree& v, std::string_view query) {
  FormulaPtr f = Parse(query);
  DirectEngine direct(const_cast<VideoTree*>(&v));
  ReferenceEngine reference(const_cast<VideoTree*>(&v));
  auto got = direct.EvaluateList(2, *f);
  auto want = reference.EvaluateList(2, *f);
  ASSERT_TRUE(got.ok()) << got.status().ToString() << " for " << query;
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  EXPECT_TRUE(ListsEqual(got.value(), want.value())) << "query: " << query;
}

TEST(DirectEngineTest, ConstantsAndAtomics) {
  VideoTree v = MakeTestVideo();
  DirectEngine e(&v);
  ASSERT_OK_AND_ASSIGN(SimilarityList t, e.EvaluateList(2, *Parse("true")));
  EXPECT_TRUE(ListsEqual(t, L({{1, 6, 1.0}}, 1.0)));
  ASSERT_OK_AND_ASSIGN(SimilarityList f, e.EvaluateList(2, *Parse("false")));
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.max(), 1.0);
}

TEST(DirectEngineTest, PaperQueryShapesAgreeWithReference) {
  VideoTree v = MakeTestVideo();
  ExpectAgreesWithReference(v, "duration >= 3");
  ExpectAgreesWithReference(v, "exists p (type(p) = 'person' @ 1 and holds_gun(p) @ 2)");
  ExpectAgreesWithReference(v, "duration >= 3 @ 1 and eventually duration >= 6 @ 2");
  ExpectAgreesWithReference(v, "next duration >= 6");
  ExpectAgreesWithReference(v, "duration <= 4 until duration = 5");
  ExpectAgreesWithReference(v, "duration != 3 until duration = 5");
  ExpectAgreesWithReference(v, "true until duration = 5");
  ExpectAgreesWithReference(v, "next next duration = 3");
  ExpectAgreesWithReference(v, "eventually (duration = 2 and next duration = 3)");
}

TEST(DirectEngineTest, ExistsOverTemporalAgrees) {
  VideoTree v = MakeTestVideo();
  ExpectAgreesWithReference(
      v, "exists o (present(o) and eventually (present(o) and duration = 5))");
  ExpectAgreesWithReference(
      v, "exists o (present(o) until (present(o) and holds_gun(o)))");
}

TEST(DirectEngineTest, FreezeAgrees) {
  VideoTree v = MakeTestVideo();
  ExpectAgreesWithReference(v,
                            "exists z (type(z) = 'airplane' and "
                            "[h <- height(z)] eventually (height(z) > h @ 1))");
  ExpectAgreesWithReference(v,
                            "exists z (type(z) = 'airplane' and "
                            "[h <- height(z)] next (height(z) = h))");
  ExpectAgreesWithReference(v, "[d <- duration] eventually (duration > d)");
}

TEST(DirectEngineTest, OrExtensionAgrees) {
  VideoTree v = MakeTestVideo();
  ExpectAgreesWithReference(v, "duration <= 2 @ 3 or duration >= 2 @ 1");
  ExpectAgreesWithReference(v, "(duration = 1 or duration = 6) and true");
}

TEST(DirectEngineTest, ClosedNegationAgrees) {
  VideoTree v = MakeTestVideo();
  ExpectAgreesWithReference(v, "not duration = 3");
  ExpectAgreesWithReference(v, "not (duration >= 2 @ 3 and duration <= 4)");
  ExpectAgreesWithReference(v, "eventually not exists p (present(p))");
  ExpectAgreesWithReference(v, "not eventually duration = 9");
  ExpectAgreesWithReference(v, "(not duration = 1) until duration = 5");
}

TEST(DirectEngineTest, NegationOverFreeVariablesIsUnimplemented) {
  VideoTree v = MakeTestVideo();
  DirectEngine e(&v);
  EXPECT_EQ(e.EvaluateList(2, *Parse("exists p (not present(p))")).status().code(),
            StatusCode::kUnimplemented);
}

TEST(DirectEngineTest, FreeVariableRejected) {
  VideoTree v = MakeTestVideo();
  DirectEngine e(&v);
  auto f = ParseFormula("present(x)");
  ASSERT_OK(f.status());
  EXPECT_EQ(e.EvaluateList(2, *f.value()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DirectEngineTest, LevelOperatorOnDeepVideo) {
  VideoBuilder b;
  auto s1 = b.AddChild(b.root());
  auto s2 = b.AddChild(b.root());
  auto sh1 = b.AddChild(s1);
  auto sh2 = b.AddChild(s1);
  auto sh3 = b.AddChild(s2);
  b.Meta(sh1).SetAttribute("mark", AttrValue(int64_t{1}));
  b.Meta(sh2).SetAttribute("mark", AttrValue(int64_t{2}));
  b.Meta(sh3).SetAttribute("mark", AttrValue(int64_t{2}));
  b.NameLevel("shot", 3);
  auto built = std::move(b).Build();
  ASSERT_OK(built.status());
  VideoTree v = std::move(built).value();

  DirectEngine direct(&v);
  ReferenceEngine reference(&v);
  for (const char* q : {"at-next-level(mark = 1)", "at-next-level(mark = 2)",
                        "at-next-level(eventually mark = 2)"}) {
    FormulaPtr f = Parse(q);
    ASSERT_OK_AND_ASSIGN(SimilarityList got, direct.EvaluateList(2, *f));
    ASSERT_OK_AND_ASSIGN(SimilarityList want, reference.EvaluateList(2, *f));
    EXPECT_TRUE(ListsEqual(got, want)) << q;
  }
  // Root-level query through two level hops.
  FormulaPtr root_q = Parse("at-shot-level(mark = 1)");
  ASSERT_OK_AND_ASSIGN(Sim got, direct.EvaluateVideo(*root_q));
  ASSERT_OK_AND_ASSIGN(Sim want, reference.EvaluateVideo(*root_q));
  EXPECT_EQ(got, want);
}

TEST(DirectEngineTest, LevelOperatorWithSharedVariable) {
  // exists binding shared across a level operator: the variable column
  // must thread through the per-parent evaluation.
  VideoBuilder b;
  auto s1 = b.AddChild(b.root());
  auto s2 = b.AddChild(b.root());
  auto sh1 = b.AddChild(s1);
  b.AddChild(s1);
  auto sh3 = b.AddChild(s2);
  b.Meta(sh1).AddObject({7, {{"type", AttrValue("person")}}});
  b.Meta(sh3).AddObject({8, {{"type", AttrValue("person")}}});
  auto built = std::move(b).Build();
  ASSERT_OK(built.status());
  VideoTree v = std::move(built).value();

  DirectEngine direct(&v);
  ReferenceEngine reference(&v);
  FormulaPtr f = Parse("at-next-level(exists p (present(p)))");
  ASSERT_OK_AND_ASSIGN(SimilarityList got, direct.EvaluateList(2, *f));
  ASSERT_OK_AND_ASSIGN(SimilarityList want, reference.EvaluateList(2, *f));
  EXPECT_TRUE(ListsEqual(got, want));
}

TEST(DirectEngineTest, EvaluateVideoBrowsingQuery) {
  VideoTree v = MakeTestVideo();
  v.MutableMeta(1, 1).SetAttribute("type", AttrValue("western"));
  v.MutableMeta(1, 1).SetAttribute("star", AttrValue("JohnWayne"));
  DirectEngine e(&v);
  ASSERT_OK_AND_ASSIGN(
      Sim sim, e.EvaluateVideo(*Parse("type = 'western' @ 2 and star = 'JohnWayne'")));
  EXPECT_EQ(sim.actual, 3.0);
  EXPECT_EQ(sim.max, 3.0);
}

TEST(DirectEngineTest, CacheIsTransparent) {
  VideoTree v = MakeTestVideo();
  DirectEngine e(&v);
  FormulaPtr f = Parse("eventually exists p (type(p) = 'person')");
  ASSERT_OK_AND_ASSIGN(SimilarityList first, e.EvaluateList(2, *f));
  ASSERT_OK_AND_ASSIGN(SimilarityList second, e.EvaluateList(2, *f));
  EXPECT_TRUE(ListsEqual(first, second));
  e.ClearCache();
  ASSERT_OK_AND_ASSIGN(SimilarityList third, e.EvaluateList(2, *f));
  EXPECT_TRUE(ListsEqual(first, third));
}

// ---------------------------------------------------------------------------
// EvaluateWithLists — the section 4.2 harness entry point.

TEST(EvaluateWithListsTest, CasablancaQuery1) {
  FormulaPtr q = casablanca::Query1Named();
  ASSERT_OK_AND_ASSIGN(SimilarityList result,
                       EvaluateWithLists(*q, casablanca::NamedInputs()));
  EXPECT_TRUE(ListsEqual(result, casablanca::Query1ResultTable()));
}

TEST(EvaluateWithListsTest, MissingInputIsNotFound) {
  FormulaPtr q = casablanca::Query1Named();
  EXPECT_EQ(EvaluateWithLists(*q, {}).status().code(), StatusCode::kNotFound);
}

TEST(EvaluateWithListsTest, NonPredicateLeafRejected) {
  FormulaPtr f = Parse("duration > 1");
  EXPECT_EQ(EvaluateWithLists(*f, {}).status().code(), StatusCode::kInvalidArgument);
}

TEST(EvaluateWithListsTest, NonType1Rejected) {
  auto f = ParseFormula("exists x (present(x) and eventually present(x))");
  ASSERT_OK(f.status());
  EXPECT_EQ(EvaluateWithLists(*f.value(), {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EvaluateWithListsTest, UntilAndNextCompose) {
  std::map<std::string, SimilarityList> inputs = {
      {"p1", L({{1, 10, 8.0}}, 10.0)},
      {"p2", L({{12, 12, 5.0}}, 5.0)},
  };
  FormulaPtr f = ParseFormula("next (p1() until p2())").value();
  ASSERT_OK_AND_ASSIGN(SimilarityList out, EvaluateWithLists(*f, inputs));
  // until: [1,11] reaches h at 12? g run [1,10], u''=11 reachable; h at 12
  // requires g at 11 — absent. So until = {[12,12]:5} ∪ nothing... g holds
  // 1-10 so from id 11 h at 12 is not reachable (g(11) fails); from id 10,
  // u''=11 has no h. Hence until = {[12,12]:5}; next shifts to 11.
  EXPECT_TRUE(ListsEqual(out, L({{11, 11, 5.0}}, 5.0)));
}


TEST(DirectEngineTest, StatsCountOperations) {
  VideoTree v = MakeTestVideo();
  DirectEngine e(&v);
  FormulaPtr f = Parse(
      "exists p (type(p) = 'person') and eventually exists p (type(p) = 'person')");
  ASSERT_OK(e.EvaluateList(2, *f).status());
  // Two occurrences of the same atomic: one picture query + one cache hit.
  EXPECT_EQ(e.stats().atomic_queries, 1);
  EXPECT_EQ(e.stats().atomic_cache_hits, 1);
  EXPECT_EQ(e.stats().table_joins, 1);

  // Re-evaluating hits the cache twice more.
  ASSERT_OK(e.EvaluateList(2, *f).status());
  EXPECT_EQ(e.stats().atomic_queries, 1);
  EXPECT_EQ(e.stats().atomic_cache_hits, 3);

  e.ResetStats();
  EXPECT_EQ(e.stats().atomic_cache_hits, 0);
}

TEST(DirectEngineTest, StatsCountFreezeAndExists) {
  VideoTree v = MakeTestVideo();
  DirectEngine e(&v);
  FormulaPtr f = Parse(
      "exists z (type(z) = 'airplane' and "
      "[h <- height(z)] eventually (height(z) > h))");
  ASSERT_OK(e.EvaluateList(2, *f).status());
  EXPECT_EQ(e.stats().exists_collapses, 1);
  EXPECT_EQ(e.stats().freeze_joins, 1);
}

}  // namespace
}  // namespace htl
