#include "sql/parser.h"

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace htl::sql {
namespace {

Statement MustParse(std::string_view text) {
  auto r = ParseStatement(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << text;
  return r.ok() ? std::move(r).value() : Statement{};
}

TEST(SqlParserTest, SimpleSelect) {
  Statement s = MustParse("SELECT a, b FROM t");
  EXPECT_EQ(s.kind, Statement::Kind::kSelect);
  ASSERT_EQ(s.select->items.size(), 2u);
  EXPECT_EQ(s.select->items[0].expr->column, "a");
  ASSERT_EQ(s.select->from.size(), 1u);
  EXPECT_EQ(s.select->from[0].table, "t");
  EXPECT_EQ(s.select->from[0].alias, "t");
}

TEST(SqlParserTest, SelectStar) {
  Statement s = MustParse("SELECT * FROM t");
  EXPECT_EQ(s.select->items[0].expr->kind, ExprKind::kStar);
}

TEST(SqlParserTest, Aliases) {
  Statement s = MustParse("SELECT a AS x, b y FROM t u");
  EXPECT_EQ(s.select->items[0].alias, "x");
  EXPECT_EQ(s.select->items[1].alias, "y");
  EXPECT_EQ(s.select->from[0].alias, "u");
}

TEST(SqlParserTest, QualifiedColumns) {
  Statement s = MustParse("SELECT t.a FROM t");
  EXPECT_EQ(s.select->items[0].expr->table_alias, "t");
  EXPECT_EQ(s.select->items[0].expr->column, "a");
}

TEST(SqlParserTest, JoinKinds) {
  Statement s = MustParse(
      "SELECT a.x FROM a JOIN b ON a.x = b.x LEFT JOIN c ON c.y = a.x, d");
  ASSERT_EQ(s.select->from.size(), 4u);
  EXPECT_EQ(s.select->from[1].join, JoinType::kInner);
  EXPECT_NE(s.select->from[1].on, nullptr);
  EXPECT_EQ(s.select->from[2].join, JoinType::kLeft);
  EXPECT_EQ(s.select->from[3].join, JoinType::kCross);
  EXPECT_EQ(s.select->from[3].on, nullptr);
}

TEST(SqlParserTest, WhereGroupHavingOrderLimit) {
  Statement s = MustParse(
      "SELECT id, MAX(act) AS act FROM t WHERE act >= 1.5 GROUP BY id "
      "HAVING MAX(act) > 2 ORDER BY id DESC LIMIT 10");
  EXPECT_NE(s.select->where, nullptr);
  EXPECT_EQ(s.select->group_by.size(), 1u);
  EXPECT_NE(s.select->having, nullptr);
  ASSERT_EQ(s.select->order_by.size(), 1u);
  EXPECT_TRUE(s.select->order_by[0].desc);
  EXPECT_EQ(s.select->limit, 10);
}

TEST(SqlParserTest, UnionAllChains) {
  Statement s = MustParse("SELECT a FROM t UNION ALL SELECT a FROM u UNION ALL SELECT a FROM v");
  ASSERT_NE(s.select->union_all, nullptr);
  ASSERT_NE(s.select->union_all->union_all, nullptr);
}

TEST(SqlParserTest, ExpressionPrecedence) {
  Statement s = MustParse("SELECT a + b * 2 - 1 FROM t");
  const Expr* e = s.select->items[0].expr.get();
  // ((a + (b*2)) - 1)
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->op, "-");
  EXPECT_EQ(e->args[0]->op, "+");
  EXPECT_EQ(e->args[0]->args[1]->op, "*");
}

TEST(SqlParserTest, BooleanPrecedence) {
  Statement s = MustParse("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3");
  const Expr* w = s.select->where.get();
  EXPECT_EQ(w->op, "or");
  EXPECT_EQ(w->args[1]->op, "and");
}

TEST(SqlParserTest, IsNullForms) {
  Statement s = MustParse("SELECT 1 FROM t WHERE a IS NULL AND b IS NOT NULL");
  const Expr* w = s.select->where.get();
  EXPECT_EQ(w->args[0]->kind, ExprKind::kIsNull);
  EXPECT_FALSE(w->args[0]->is_not_null);
  EXPECT_TRUE(w->args[1]->is_not_null);
}

TEST(SqlParserTest, FunctionsAndAggregates) {
  Statement s = MustParse(
      "SELECT COUNT(*), COUNT(a), SUM(a), MIN(a), MAX(a), AVG(a), "
      "LEAST(a, b), GREATEST(a, b, 3), COALESCE(a, 0), ABS(a) FROM t");
  const auto& items = s.select->items;
  EXPECT_TRUE(items[0].expr->count_star);
  EXPECT_EQ(items[0].expr->kind, ExprKind::kAggregate);
  EXPECT_EQ(items[6].expr->kind, ExprKind::kFunction);
  EXPECT_EQ(items[7].expr->args.size(), 3u);
}

TEST(SqlParserTest, UnknownFunctionRejected) {
  EXPECT_FALSE(ParseStatement("SELECT FOO(a) FROM t").ok());
}

TEST(SqlParserTest, CreateTableAs) {
  Statement s = MustParse("CREATE TABLE out AS SELECT a FROM t");
  EXPECT_EQ(s.kind, Statement::Kind::kCreateTableAs);
  EXPECT_EQ(s.table, "out");
  EXPECT_NE(s.select, nullptr);
}

TEST(SqlParserTest, CreateTableWithColumns) {
  Statement s = MustParse("CREATE TABLE t (a, b, c)");
  EXPECT_EQ(s.kind, Statement::Kind::kCreateTable);
  EXPECT_EQ(s.columns, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SqlParserTest, DropTable) {
  Statement s = MustParse("DROP TABLE IF EXISTS t");
  EXPECT_EQ(s.kind, Statement::Kind::kDropTable);
  EXPECT_TRUE(s.if_exists);
  EXPECT_FALSE(MustParse("DROP TABLE t").if_exists);
}

TEST(SqlParserTest, InsertValues) {
  Statement s = MustParse("INSERT INTO t VALUES (1, 'a'), (2, NULL)");
  EXPECT_EQ(s.kind, Statement::Kind::kInsertValues);
  ASSERT_EQ(s.values.size(), 2u);
  EXPECT_EQ(s.values[0].size(), 2u);
}

TEST(SqlParserTest, InsertSelect) {
  Statement s = MustParse("INSERT INTO t SELECT a FROM u");
  EXPECT_EQ(s.kind, Statement::Kind::kInsertSelect);
}

TEST(SqlParserTest, ScriptSplitsOnSemicolons) {
  auto r = ParseScript("CREATE TABLE t (a); INSERT INTO t VALUES (1); SELECT a FROM t;");
  ASSERT_OK(r.status());
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(SqlParserTest, NegativeNumbersAndUnaryMinus) {
  Statement s = MustParse("SELECT -a, 3 - 4 FROM t WHERE a > -2");
  EXPECT_EQ(s.select->items[0].expr->kind, ExprKind::kUnary);
}

TEST(SqlParserTest, CommentsSkipped) {
  Statement s = MustParse("SELECT a FROM t -- trailing comment\n WHERE a = 1");
  EXPECT_NE(s.select->where, nullptr);
}

TEST(SqlParserTest, Errors) {
  EXPECT_FALSE(ParseStatement("").ok());
  EXPECT_FALSE(ParseStatement("SELECT").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM").ok());
  EXPECT_FALSE(ParseStatement("BANANA").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t; SELECT b FROM t").ok());  // Two stmts.
}

TEST(SqlParserTest, NotEqualSpellings) {
  Statement s = MustParse("SELECT 1 FROM t WHERE a != 1 AND b <> 2");
  EXPECT_EQ(s.select->where->args[0]->op, "!=");
  EXPECT_EQ(s.select->where->args[1]->op, "!=");
}

}  // namespace
}  // namespace htl::sql
