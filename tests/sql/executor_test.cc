#include "sql/executor.h"

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace htl::sql {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : exec_(&catalog_) {
    Table people({"id", "name", "age"});
    people.AddRow({Value(int64_t{1}), Value("ann"), Value(int64_t{30})});
    people.AddRow({Value(int64_t{2}), Value("bob"), Value(int64_t{25})});
    people.AddRow({Value(int64_t{3}), Value("cid"), Value(int64_t{35})});
    catalog_.CreateOrReplace("people", std::move(people));

    Table pets({"owner", "pet"});
    pets.AddRow({Value(int64_t{1}), Value("cat")});
    pets.AddRow({Value(int64_t{1}), Value("dog")});
    pets.AddRow({Value(int64_t{3}), Value("fish")});
    catalog_.CreateOrReplace("pets", std::move(pets));
  }

  Table Run(std::string_view sql) {
    auto r = exec_.ExecuteSql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << sql;
    return r.ok() ? std::move(r).value() : Table();
  }

  Catalog catalog_;
  Executor exec_;
};

TEST_F(ExecutorTest, SelectProjection) {
  Table t = Run("SELECT name FROM people");
  EXPECT_EQ(t.columns(), std::vector<std::string>{"name"});
  EXPECT_EQ(t.num_rows(), 3);
}

TEST_F(ExecutorTest, SelectStarExpands) {
  Table t = Run("SELECT * FROM people");
  EXPECT_EQ(t.columns(), (std::vector<std::string>{"id", "name", "age"}));
}

TEST_F(ExecutorTest, WhereFilters) {
  Table t = Run("SELECT id FROM people WHERE age >= 30");
  EXPECT_EQ(t.num_rows(), 2);
}

TEST_F(ExecutorTest, ArithmeticAndAliases) {
  Table t = Run("SELECT age * 2 AS dbl, age + 1 FROM people WHERE id = 1");
  EXPECT_EQ(t.columns()[0], "dbl");
  EXPECT_EQ(t.rows()[0][0], Value(int64_t{60}));
  EXPECT_EQ(t.rows()[0][1], Value(int64_t{31}));
}

TEST_F(ExecutorTest, HashJoin) {
  exec_.ResetStats();
  Table t = Run("SELECT p.name, q.pet FROM people p JOIN pets q ON q.owner = p.id");
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(exec_.stats().hash_joins, 1);
  EXPECT_EQ(exec_.stats().loop_joins, 0);
}

TEST_F(ExecutorTest, LeftJoinPadsNulls) {
  Table t = Run(
      "SELECT p.id, q.pet FROM people p LEFT JOIN pets q ON q.owner = p.id "
      "ORDER BY p.id");
  EXPECT_EQ(t.num_rows(), 4);  // bob has no pet -> one NULL row.
  bool bob_null = false;
  for (const Row& r : t.rows()) {
    if (r[0] == Value(int64_t{2})) bob_null = r[1].is_null();
  }
  EXPECT_TRUE(bob_null);
}

TEST_F(ExecutorTest, LeftJoinNullFilter) {
  Table t = Run(
      "SELECT p.id FROM people p LEFT JOIN pets q ON q.owner = p.id "
      "WHERE q.owner IS NULL");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.rows()[0][0], Value(int64_t{2}));
}

TEST_F(ExecutorTest, RangeJoinUsesSortedSeek) {
  // seq 1..10 joined on a range: the planner must choose the range join.
  Table seq({"id"});
  for (int64_t i = 1; i <= 10; ++i) seq.AddRow({Value(i)});
  catalog_.CreateOrReplace("seq", std::move(seq));
  Table iv({"beg", "end"});
  iv.AddRow({Value(int64_t{2}), Value(int64_t{4})});
  iv.AddRow({Value(int64_t{8}), Value(int64_t{9})});
  catalog_.CreateOrReplace("iv", std::move(iv));

  exec_.ResetStats();
  Table t = Run("SELECT s.id FROM iv a JOIN seq s ON s.id >= a.beg AND s.id <= a.end");
  EXPECT_EQ(t.num_rows(), 5);  // 2,3,4,8,9
  EXPECT_EQ(exec_.stats().range_joins, 1);
  EXPECT_EQ(exec_.stats().loop_joins, 0);
}

TEST_F(ExecutorTest, CrossJoinIsNestedLoop) {
  exec_.ResetStats();
  Table t = Run("SELECT p.id FROM people p, pets q");
  EXPECT_EQ(t.num_rows(), 9);
  EXPECT_EQ(exec_.stats().loop_joins, 1);
}

TEST_F(ExecutorTest, GroupByWithAggregates) {
  Table t = Run(
      "SELECT q.owner, COUNT(*) AS n, MIN(q.pet) AS first_pet "
      "FROM pets q GROUP BY q.owner ORDER BY q.owner");
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.rows()[0][1], Value(int64_t{2}));
  EXPECT_EQ(t.rows()[0][2], Value("cat"));
  EXPECT_EQ(t.rows()[1][1], Value(int64_t{1}));
}

TEST_F(ExecutorTest, GlobalAggregateOverEmptyInput) {
  Table t = Run("SELECT COUNT(*), SUM(age), MAX(age) FROM people WHERE age > 99");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.rows()[0][0], Value(int64_t{0}));
  EXPECT_TRUE(t.rows()[0][1].is_null());
  EXPECT_TRUE(t.rows()[0][2].is_null());
}

TEST_F(ExecutorTest, SumAvgKinds) {
  Table t = Run("SELECT SUM(age), AVG(age) FROM people");
  EXPECT_EQ(t.rows()[0][0], Value(int64_t{90}));
  EXPECT_EQ(t.rows()[0][1], Value(30.0));
}

TEST_F(ExecutorTest, HavingFiltersGroups) {
  Table t = Run(
      "SELECT q.owner FROM pets q GROUP BY q.owner HAVING COUNT(*) >= 2");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.rows()[0][0], Value(int64_t{1}));
}

TEST_F(ExecutorTest, OrderByDescAndLimit) {
  Table t = Run("SELECT id FROM people ORDER BY age DESC LIMIT 2");
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.rows()[0][0], Value(int64_t{3}));
  EXPECT_EQ(t.rows()[1][0], Value(int64_t{1}));
}

TEST_F(ExecutorTest, OrderByOutputAlias) {
  Table t = Run("SELECT age * 2 AS d FROM people ORDER BY d");
  EXPECT_EQ(t.rows()[0][0], Value(int64_t{50}));
}

TEST_F(ExecutorTest, UnionAllConcatenates) {
  Table t = Run("SELECT id FROM people UNION ALL SELECT owner FROM pets");
  EXPECT_EQ(t.num_rows(), 6);
}

TEST_F(ExecutorTest, UnionAllArityMismatch) {
  auto r = exec_.ExecuteSql("SELECT id FROM people UNION ALL SELECT owner, pet FROM pets");
  EXPECT_FALSE(r.ok());
}

TEST_F(ExecutorTest, FunctionsEvaluate) {
  Table t = Run(
      "SELECT LEAST(1, 2), GREATEST(1, 2, 3), COALESCE(NULL, 5), ABS(-4) FROM people "
      "LIMIT 1");
  EXPECT_EQ(t.rows()[0][0], Value(int64_t{1}));
  EXPECT_EQ(t.rows()[0][1], Value(int64_t{3}));
  EXPECT_EQ(t.rows()[0][2], Value(int64_t{5}));
  EXPECT_EQ(t.rows()[0][3], Value(int64_t{4}));
}

TEST_F(ExecutorTest, LeastPropagatesNull) {
  Table t = Run("SELECT LEAST(1, NULL) FROM people LIMIT 1");
  EXPECT_TRUE(t.rows()[0][0].is_null());
}

TEST_F(ExecutorTest, NullComparisonsFilterOut) {
  Table t = Run("SELECT 1 FROM people WHERE NULL = NULL");
  EXPECT_EQ(t.num_rows(), 0);
}

TEST_F(ExecutorTest, DivisionByZeroIsNull) {
  Table t = Run("SELECT 1 / 0 FROM people LIMIT 1");
  EXPECT_TRUE(t.rows()[0][0].is_null());
}

TEST_F(ExecutorTest, CreateInsertSelectRoundTrip) {
  ASSERT_OK(exec_.ExecuteSql("CREATE TABLE tmp (a, b)").status());
  ASSERT_OK(exec_.ExecuteSql("INSERT INTO tmp VALUES (1, 'x'), (2, 'y')").status());
  ASSERT_OK(exec_.ExecuteSql("INSERT INTO tmp SELECT id, name FROM people").status());
  Table t = Run("SELECT COUNT(*) FROM tmp");
  EXPECT_EQ(t.rows()[0][0], Value(int64_t{5}));
}

TEST_F(ExecutorTest, CreateTableAsMaterializes) {
  ASSERT_OK(exec_.ExecuteSql("CREATE TABLE olds AS SELECT id FROM people WHERE age >= 30")
                .status());
  Table t = Run("SELECT COUNT(*) FROM olds");
  EXPECT_EQ(t.rows()[0][0], Value(int64_t{2}));
}

TEST_F(ExecutorTest, ScriptReturnsLastSelect) {
  auto r = exec_.ExecuteScript(
      "DROP TABLE IF EXISTS z; CREATE TABLE z (v); INSERT INTO z VALUES (7); "
      "SELECT v FROM z;");
  ASSERT_OK(r.status());
  EXPECT_EQ(r.value().rows()[0][0], Value(int64_t{7}));
}

TEST_F(ExecutorTest, UnknownTableErrors) {
  EXPECT_EQ(exec_.ExecuteSql("SELECT a FROM nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ExecutorTest, UnknownColumnErrors) {
  EXPECT_FALSE(exec_.ExecuteSql("SELECT wat FROM people").ok());
}

TEST_F(ExecutorTest, AmbiguousColumnErrors) {
  EXPECT_FALSE(
      exec_.ExecuteSql("SELECT id FROM people a JOIN people b ON a.id = b.id").ok());
}

TEST_F(ExecutorTest, AggregateInWhereRejected) {
  EXPECT_FALSE(exec_.ExecuteSql("SELECT id FROM people WHERE COUNT(*) > 1").ok());
}

TEST_F(ExecutorTest, SelfJoinWithAliases) {
  Table t = Run(
      "SELECT a.id, b.id FROM people a JOIN people b ON b.id = a.id + 1 ORDER BY a.id");
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.rows()[0][0], Value(int64_t{1}));
  EXPECT_EQ(t.rows()[0][1], Value(int64_t{2}));
}

TEST_F(ExecutorTest, ResidualConditionOnHashJoin) {
  Table t = Run(
      "SELECT p.name, q.pet FROM people p JOIN pets q ON q.owner = p.id AND "
      "q.pet != 'dog'");
  EXPECT_EQ(t.num_rows(), 2);
}


TEST_F(ExecutorTest, Distinct) {
  Table dup({"v"});
  dup.AddRow({Value(int64_t{1})});
  dup.AddRow({Value(int64_t{2})});
  dup.AddRow({Value(int64_t{1})});
  dup.AddRow({Value()});
  dup.AddRow({Value()});
  catalog_.CreateOrReplace("dup", std::move(dup));
  Table t = Run("SELECT DISTINCT v FROM dup ORDER BY v");
  ASSERT_EQ(t.num_rows(), 3);  // NULL, 1, 2.
  EXPECT_TRUE(t.rows()[0][0].is_null());
  EXPECT_EQ(t.rows()[1][0], Value(int64_t{1}));
  EXPECT_EQ(t.rows()[2][0], Value(int64_t{2}));
}

TEST_F(ExecutorTest, Between) {
  Table t = Run("SELECT id FROM people WHERE age BETWEEN 25 AND 30 ORDER BY id");
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.rows()[0][0], Value(int64_t{1}));
  EXPECT_EQ(t.rows()[1][0], Value(int64_t{2}));
}

TEST_F(ExecutorTest, NotBetween) {
  Table t = Run("SELECT id FROM people WHERE age NOT BETWEEN 25 AND 30");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.rows()[0][0], Value(int64_t{3}));
}

TEST_F(ExecutorTest, InList) {
  Table t = Run("SELECT id FROM people WHERE name IN ('ann', 'cid') ORDER BY id");
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.rows()[0][0], Value(int64_t{1}));
  EXPECT_EQ(t.rows()[1][0], Value(int64_t{3}));
}

TEST_F(ExecutorTest, NotInList) {
  Table t = Run("SELECT id FROM people WHERE id NOT IN (1, 3)");
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.rows()[0][0], Value(int64_t{2}));
}

TEST_F(ExecutorTest, BetweenInsideJoinCondition) {
  Table seq({"id"});
  for (int64_t i = 1; i <= 10; ++i) seq.AddRow({Value(i)});
  catalog_.CreateOrReplace("seq", std::move(seq));
  Table iv({"beg", "end"});
  iv.AddRow({Value(int64_t{3}), Value(int64_t{5})});
  catalog_.CreateOrReplace("iv", std::move(iv));
  Table t = Run("SELECT s.id FROM iv a JOIN seq s ON s.id BETWEEN a.beg AND a.end");
  EXPECT_EQ(t.num_rows(), 3);
}

}  // namespace
}  // namespace htl::sql
