#include <gtest/gtest.h>

#include "sql/table.h"
#include "sql/value.h"
#include "testing/helpers.h"

namespace htl::sql {
namespace {

TEST(SqlValueTest, Kinds) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{1}).is_int());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(int64_t{1}).is_numeric());
}

TEST(SqlValueTest, Truthiness) {
  EXPECT_FALSE(Value().Truthy());
  EXPECT_FALSE(Value(int64_t{0}).Truthy());
  EXPECT_TRUE(Value(int64_t{1}).Truthy());
  EXPECT_TRUE(Value(-2.5).Truthy());
  EXPECT_FALSE(Value("yes").Truthy());  // Strings are not truthy.
}

TEST(SqlValueTest, EqualityNullNeverEqual) {
  EXPECT_FALSE(Value() == Value());
  EXPECT_TRUE(Value(int64_t{3}) == Value(3.0));
  EXPECT_TRUE(Value("a") == Value("a"));
  EXPECT_FALSE(Value("a") == Value(int64_t{1}));
}

TEST(SqlValueTest, CompareTotalOrder) {
  EXPECT_LT(Value::Compare(Value(), Value(int64_t{0})), 0);       // NULL first.
  EXPECT_LT(Value::Compare(Value(int64_t{5}), Value("a")), 0);    // Numbers < strings.
  EXPECT_EQ(Value::Compare(Value(int64_t{2}), Value(2.0)), 0);
  EXPECT_GT(Value::Compare(Value("b"), Value("a")), 0);
}

TEST(SqlValueTest, KeysDistinguishKinds) {
  EXPECT_NE(Value(int64_t{1}).Key(), Value("1").Key());
  EXPECT_EQ(Value(int64_t{1}).Key(), Value(1.0).Key());  // Numeric join keys.
  EXPECT_NE(Value().Key(), Value(int64_t{0}).Key());
}

TEST(SqlValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("a").ToString(), "'a'");
}

TEST(SqlTableTest, ColumnsAndRows) {
  Table t({"id", "act"});
  t.AddRow({Value(int64_t{1}), Value(2.5)});
  t.AddRow({Value(int64_t{2}), Value()});
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.ColumnIndex("id"), 0);
  EXPECT_EQ(t.ColumnIndex("ACT"), 1);  // Case-insensitive.
  EXPECT_EQ(t.ColumnIndex("nope"), -1);
}

TEST(SqlCatalogTest, CreateGetDrop) {
  Catalog cat;
  EXPECT_OK(cat.Create("t", Table({"a"})));
  EXPECT_TRUE(cat.Has("T"));
  EXPECT_EQ(cat.Create("t", Table({"a"})).code(), StatusCode::kAlreadyExists);
  ASSERT_OK_AND_ASSIGN(const Table* t, cat.Get("t"));
  EXPECT_EQ(t->columns().size(), 1u);
  EXPECT_OK(cat.Drop("t", false));
  EXPECT_FALSE(cat.Has("t"));
  EXPECT_EQ(cat.Drop("t", false).code(), StatusCode::kNotFound);
  EXPECT_OK(cat.Drop("t", true));  // IF EXISTS.
}

TEST(SqlCatalogTest, CreateOrReplace) {
  Catalog cat;
  cat.CreateOrReplace("t", Table({"a"}));
  cat.CreateOrReplace("t", Table({"a", "b"}));
  ASSERT_OK_AND_ASSIGN(const Table* t, cat.Get("t"));
  EXPECT_EQ(t->columns().size(), 2u);
}

TEST(SqlCatalogTest, TableNames) {
  Catalog cat;
  cat.CreateOrReplace("B", Table(std::vector<std::string>{}));
  cat.CreateOrReplace("a", Table(std::vector<std::string>{}));
  EXPECT_EQ(cat.TableNames(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace htl::sql
