// The type (2) SQL translation: named predicates with object-variable
// arguments, backed by similarity tables ("translations into SQL for
// computation of the similarity tables for any conjunctive formula",
// section 4). Verified against the direct engine's table algebra
// (JoinTables / MapLists / CollapseExists) on random inputs.
//
// Exact parity holds when every leaf uses the same variable tuple (then no
// NULL/wildcard bindings arise — see translator.h); the tests generate that
// class, plus targeted mixed-tuple cases checked as pointwise lower bounds.

#include <gtest/gtest.h>

#include "sim/list_ops.h"
#include "sim/table_ops.h"
#include "sql/bridge.h"
#include "sql/sql_system.h"
#include "testing/helpers.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/random_lists.h"

namespace htl {
namespace {

using testing::L;
using testing::ListsEqual;

constexpr int64_t kN = 120;
constexpr double kTau = 0.5;

// ---------------------------------------------------------------------------
// A mini direct evaluator over named similarity tables — exactly the table
// algebra DirectEngine::EvalTable uses, with leaves drawn from a map.

using TableInputs = std::map<std::string, sql::SqlSystem::TableInput>;

Result<SimilarityTable> DirectEval(const Formula& f, const TableInputs& inputs) {
  switch (f.kind) {
    case FormulaKind::kConstraint: {
      auto it = inputs.find(f.constraint.pred_name);
      if (it == inputs.end()) return Status::NotFound(f.constraint.pred_name);
      return it->second.table;
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kUntil: {
      HTL_ASSIGN_OR_RETURN(SimilarityTable lhs, DirectEval(*f.left, inputs));
      HTL_ASSIGN_OR_RETURN(SimilarityTable rhs, DirectEval(*f.right, inputs));
      auto max_of = [&](const Formula& g, const SimilarityTable& t) {
        if (g.kind == FormulaKind::kConstraint) {
          return inputs.at(g.constraint.pred_name).max;
        }
        return t.MaxSim(MaxSimilarity(g));
      };
      const double lm = max_of(*f.left, lhs);
      const double rm = max_of(*f.right, rhs);
      TableCombine op = f.kind == FormulaKind::kAnd   ? TableCombine::kAnd
                        : f.kind == FormulaKind::kOr  ? TableCombine::kOr
                                                      : TableCombine::kUntil;
      return JoinTables(lhs, lm, rhs, rm, op, kTau);
    }
    case FormulaKind::kNext: {
      HTL_ASSIGN_OR_RETURN(SimilarityTable t, DirectEval(*f.left, inputs));
      return MapLists(t, [](const SimilarityList& l) {
        return NextShift(l).Clip(Interval{1, kN});
      });
    }
    case FormulaKind::kEventually: {
      HTL_ASSIGN_OR_RETURN(SimilarityTable t, DirectEval(*f.left, inputs));
      return MapLists(t, [](const SimilarityList& l) { return Eventually(l); });
    }
    case FormulaKind::kExists: {
      HTL_ASSIGN_OR_RETURN(SimilarityTable t, DirectEval(*f.left, inputs));
      return CollapseExists(t, f.vars);
    }
    default:
      return Status::InvalidArgument(f.ToString());
  }
}

// A random similarity table over the given bindings.
SimilarityTable RandomTable(Rng& rng, const std::vector<std::string>& vars,
                            const std::vector<std::vector<ObjectId>>& bindings,
                            double max_sim) {
  SimilarityTable t(vars, {});
  RandomListOptions opts;
  opts.num_segments = kN;
  opts.coverage = 0.3;
  opts.mean_run = 3;
  opts.max_sim = max_sim;
  for (const auto& b : bindings) {
    SimilarityTable::Row row;
    row.objects = b;
    row.list = GenerateRandomList(rng, opts);
    t.AddRow(std::move(row));
  }
  return t;
}

// Random type (2) formula over predicates p0..p2 applied to the fixed
// variable tuple, prenex-quantified.
FormulaPtr RandomBody(Rng& rng, int depth, const std::vector<std::string>& tuple) {
  if (depth <= 0) {
    return MakePredicate(StrCat("p", rng.UniformInt(0, 2)), tuple);
  }
  switch (rng.UniformInt(0, 4)) {
    case 0:
      return MakeAnd(RandomBody(rng, depth - 1, tuple), RandomBody(rng, depth - 1, tuple));
    case 1:
      return MakeUntil(RandomBody(rng, depth - 1, tuple),
                       RandomBody(rng, depth - 1, tuple));
    case 2:
      return MakeEventually(RandomBody(rng, depth - 1, tuple));
    case 3:
      return MakeNext(RandomBody(rng, depth - 1, tuple));
    default:
      return MakeOr(RandomBody(rng, depth - 1, tuple), RandomBody(rng, depth - 1, tuple));
  }
}

class Type2SqlParityTest : public ::testing::TestWithParam<int> {};

TEST_P(Type2SqlParityTest, SqlMatchesTableAlgebraOnSharedTuples) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  const std::vector<std::string> tuple = {"x", "y"};
  const std::vector<std::vector<ObjectId>> bindings = {{1, 2}, {1, 3}, {2, 2}};

  TableInputs inputs;
  for (int i = 0; i < 3; ++i) {
    const double max = 8.0 + i;
    inputs[StrCat("p", i)] =
        sql::SqlSystem::TableInput{RandomTable(rng, tuple, bindings, max), max};
  }

  for (int trial = 0; trial < 3; ++trial) {
    FormulaPtr f = MakeExists(tuple, RandomBody(rng, 2, tuple));
    // Direct: table algebra, then exists collapse to a list.
    ASSERT_OK_AND_ASSIGN(SimilarityTable direct_table, DirectEval(*f, inputs));
    SimilarityList direct = direct_table.ToList(MaxSimilarity(*f));
    // SQL path.
    sql::SqlSystem sys;
    ASSERT_OK_AND_ASSIGN(SimilarityList via_sql, sys.EvaluateTables(*f, inputs, kN));
    EXPECT_TRUE(ListsEqual(via_sql, direct)) << f->ToString();
  }
}

TEST_P(Type2SqlParityTest, SingleVariableTuple) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 11);
  const std::vector<std::string> tuple = {"x"};
  const std::vector<std::vector<ObjectId>> bindings = {{1}, {2}, {3}, {4}};
  TableInputs inputs;
  for (int i = 0; i < 3; ++i) {
    inputs[StrCat("p", i)] =
        sql::SqlSystem::TableInput{RandomTable(rng, tuple, bindings, 10.0), 10.0};
  }
  FormulaPtr f = MakeExists({"x"}, RandomBody(rng, 2, tuple));
  ASSERT_OK_AND_ASSIGN(SimilarityTable direct_table, DirectEval(*f, inputs));
  SimilarityList direct = direct_table.ToList(MaxSimilarity(*f));
  sql::SqlSystem sys;
  ASSERT_OK_AND_ASSIGN(SimilarityList via_sql, sys.EvaluateTables(*f, inputs, kN));
  EXPECT_TRUE(ListsEqual(via_sql, direct)) << f->ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Type2SqlParityTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Targeted structural cases.

TEST(Type2SqlTest, PaperFormulaBShape) {
  // exists x, y (P1(x, y) and eventually (P2(x, y) and eventually P3(y))).
  // P3 uses only y: mixed tuples — SQL must be a pointwise lower bound of
  // the direct table algebra and exact where full bindings match.
  Rng rng(99);
  TableInputs inputs;
  inputs["p1"] = {RandomTable(rng, {"x", "y"}, {{1, 2}, {3, 4}}, 6.0), 6.0};
  inputs["p2"] = {RandomTable(rng, {"x", "y"}, {{1, 2}, {3, 9}}, 4.0), 4.0};
  inputs["p3"] = {RandomTable(rng, {"y"}, {{2}, {4}}, 2.0), 2.0};

  FormulaPtr f = MakeExists(
      {"x", "y"},
      MakeAnd(MakePredicate("p1", {"x", "y"}),
              MakeEventually(MakeAnd(MakePredicate("p2", {"x", "y"}),
                                     MakeEventually(MakePredicate("p3", {"y"}))))));
  ASSERT_OK_AND_ASSIGN(SimilarityTable direct_table, DirectEval(*f, inputs));
  SimilarityList direct = direct_table.ToList(MaxSimilarity(*f));
  sql::SqlSystem sys;
  ASSERT_OK_AND_ASSIGN(SimilarityList via_sql, sys.EvaluateTables(*f, inputs, kN));
  for (SegmentId id = 1; id <= kN; ++id) {
    EXPECT_LE(via_sql.ActualAt(id), direct.ActualAt(id) + 1e-9) << id;
  }
  // The fully matched binding (x=1, y=2) must contribute identically: where
  // direct achieves its max via that binding, SQL reaches it too.
  EXPECT_GT(via_sql.CoveredIds(), 0);
}

TEST(Type2SqlTest, ExistsCollapseMatchesMultiMax) {
  SimilarityTable t({"x"}, {});
  auto add = [&](ObjectId o, SimilarityList l) {
    SimilarityTable::Row row;
    row.objects = {o};
    row.list = std::move(l);
    t.AddRow(std::move(row));
  };
  add(1, L({{1, 5, 2.0}}, 4.0));
  add(2, L({{3, 8, 3.0}}, 4.0));
  TableInputs inputs;
  inputs["p0"] = {t, 4.0};
  FormulaPtr f = MakeExists({"x"}, MakePredicate("p0", {"x"}));
  sql::SqlSystem sys;
  ASSERT_OK_AND_ASSIGN(SimilarityList out, sys.EvaluateTables(*f, inputs, 10));
  EXPECT_TRUE(ListsEqual(out, L({{1, 2, 2.0}, {3, 8, 3.0}}, 4.0)));
}

TEST(Type2SqlTest, SharedVariableJoinIsPerBinding) {
  // Until with a shared variable: chains must not leak across bindings.
  SimilarityTable g({"x"}, {});
  SimilarityTable h({"x"}, {});
  auto add = [](SimilarityTable& t, ObjectId o, SimilarityList l) {
    SimilarityTable::Row row;
    row.objects = {o};
    row.list = std::move(l);
    t.AddRow(std::move(row));
  };
  add(g, 1, L({{1, 9, 8.0}}, 8.0));   // Binding 1: g run [1,9].
  add(h, 2, L({{10, 10, 5.0}}, 5.0)); // Binding 2: h at 10 — unreachable via x=1.
  add(h, 1, L({{6, 6, 3.0}}, 5.0));   // Binding 1: h at 6.
  TableInputs inputs;
  inputs["g"] = {g, 8.0};
  inputs["h"] = {h, 5.0};
  FormulaPtr f =
      MakeExists({"x"}, MakeUntil(MakePredicate("g", {"x"}), MakePredicate("h", {"x"})));
  sql::SqlSystem sys;
  ASSERT_OK_AND_ASSIGN(SimilarityList out, sys.EvaluateTables(*f, inputs, 12));
  // x=1 chain: reach h at 6 from ids 1..6 (value 3); x=2: h alone at 10.
  EXPECT_TRUE(ListsEqual(out, L({{1, 6, 3.0}, {10, 10, 5.0}}, 5.0)));
}

TEST(Type2SqlTest, RepeatedVariableRejected) {
  FormulaPtr f = MakeExists({"x"}, MakePredicate("p", {"x", "x"}));
  sql::SqlSystem sys;
  TableInputs inputs;
  inputs["p"] = {SimilarityTable({"x", "x"}, {}), 1.0};
  EXPECT_FALSE(sys.EvaluateTables(*f, inputs, 5).ok());
}

TEST(Type2SqlTest, UnsafeVariableNameRejected) {
  FormulaPtr f = MakeExists({"id"}, MakePredicate("p", {"id"}));
  sql::SqlSystem sys;
  TableInputs inputs;
  inputs["p"] = {SimilarityTable({"id"}, {}), 1.0};
  EXPECT_FALSE(sys.EvaluateTables(*f, inputs, 5).ok());
}

TEST(Type2SqlTest, OpenFormulaRejected) {
  FormulaPtr f = MakePredicate("p", {"x"});  // x never quantified.
  sql::SqlSystem sys;
  TableInputs inputs;
  inputs["p"] = {SimilarityTable({"x"}, {}), 1.0};
  EXPECT_EQ(sys.EvaluateTables(*f, inputs, 5).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace htl
