// The full conjunctive SQL translation: freeze quantifiers realized as
// relational value-table joins (section 3.3 in SQL — "any conjunctive
// formula", section 4). Cross-checked against the direct engine on the
// paper's formula (C) pattern, where attribute-variable constraints are
// one-sided (the case where the translation is exact).

#include <gtest/gtest.h>

#include "engine/direct_engine.h"
#include "htl/binder.h"
#include "htl/parser.h"
#include "picture/atomic.h"
#include "picture/picture_system.h"
#include "sql/bridge.h"
#include "sql/sql_system.h"
#include "testing/helpers.h"

namespace htl {
namespace {

using testing::L;
using testing::ListsEqual;

// A flat video with two airplanes whose heights change over 8 segments.
VideoTree MakeAltitudeVideo() {
  VideoTree v = VideoTree::Flat(8);
  const int64_t heights_a[] = {100, 200, 150, 400, 0, 0, 0, 0};   // 0 = absent.
  const int64_t heights_b[] = {0, 0, 900, 600, 600, 300, 0, 0};
  for (SegmentId s = 1; s <= 8; ++s) {
    if (heights_a[s - 1] > 0) {
      v.MutableMeta(2, s).AddObject({1,
                                     {{"type", AttrValue("airplane")},
                                      {"height", AttrValue(heights_a[s - 1])}}});
    }
    if (heights_b[s - 1] > 0) {
      v.MutableMeta(2, s).AddObject({2,
                                     {{"type", AttrValue("airplane")},
                                      {"height", AttrValue(heights_b[s - 1])}}});
    }
  }
  return v;
}

// Extracts the two atomic pieces of formula (C) as picture-system tables:
//   q1(z)    = present(z) and type(z) = 'airplane'
//   q2(z, h) = present(z) and height(z) > h
struct FormulaCInputs {
  std::map<std::string, sql::SqlSystem::TableInput> predicates;
  std::map<std::string, ValueTable> values;
};

FormulaCInputs ExtractInputs(PictureSystem& pictures, int level) {
  FormulaCInputs out;
  {
    auto parsed = ParseFormula("present(z) and type(z) = 'airplane'");
    auto atomic = ExtractAtomic(*parsed.value());
    auto table = pictures.Query(level, atomic.value());
    out.predicates["q1"] = {table.value(), atomic.value().MaxWeight()};
  }
  {
    // Build q2 by hand (h is an attribute variable).
    AtomicFormula atomic;
    Constraint present;
    present.kind = Constraint::Kind::kPresent;
    present.object_var = "z";
    Constraint higher;
    higher.kind = Constraint::Kind::kCompare;
    higher.lhs = AttrTerm::AttrOf("height", "z");
    higher.op = CompareOp::kGt;
    higher.rhs = AttrTerm::Variable("h");
    atomic.constraints = {present, higher};
    auto table = pictures.Query(level, atomic);
    out.predicates["q2"] = {table.value(), atomic.MaxWeight()};
  }
  out.values["height(z)"] =
      pictures.Values(level, AttrTerm::AttrOf("height", "z")).value();
  return out;
}

TEST(ConjunctiveSqlTest, FormulaCMatchesDirectEngine) {
  VideoTree v = MakeAltitudeVideo();
  PictureSystem pictures(&v);
  FormulaCInputs inputs = ExtractInputs(pictures, 2);

  // The named-predicate skeleton of formula (C).
  auto skeleton = ParseFormula(
      "exists z (q1(z) and [h <- height(z)] eventually q2(z))");
  ASSERT_OK(skeleton.status());
  sql::SqlSystem sys;
  ASSERT_OK_AND_ASSIGN(
      SimilarityList via_sql,
      sys.EvaluateConjunctive(*skeleton.value(), inputs.predicates, inputs.values,
                              v.NumSegments(2)));

  // The real formula (C) through the direct engine.
  auto real = ParseFormula(
      "exists z (present(z) and type(z) = 'airplane' and "
      "[h <- height(z)] eventually (present(z) and height(z) > h))");
  ASSERT_OK(real.status());
  ASSERT_OK(Bind(real.value().get()));
  DirectEngine engine(&v);
  ASSERT_OK_AND_ASSIGN(SimilarityList direct, engine.EvaluateList(2, *real.value()));

  EXPECT_TRUE(ListsEqual(via_sql, direct));
}

TEST(ConjunctiveSqlTest, FreezeOverSegmentAttribute) {
  // [d <- duration] eventually q(d): q's rows constrain d; exact match when
  // a later segment's score-table row admits the captured duration.
  VideoTree v = VideoTree::Flat(5);
  for (SegmentId s = 1; s <= 5; ++s) {
    v.MutableMeta(2, s).SetAttribute("duration", AttrValue(s * 10));
  }
  PictureSystem pictures(&v);
  // q = duration > d (segment attribute vs attribute variable).
  AtomicFormula atomic;
  Constraint c;
  c.kind = Constraint::Kind::kCompare;
  c.lhs = AttrTerm::SegmentAttr("duration");
  c.op = CompareOp::kGt;
  c.rhs = AttrTerm::Variable("d");
  atomic.constraints = {c};
  ASSERT_OK_AND_ASSIGN(SimilarityTable q_table, pictures.Query(2, atomic));
  ASSERT_OK_AND_ASSIGN(ValueTable values,
                       pictures.Values(2, AttrTerm::SegmentAttr("duration")));

  auto skeleton = ParseFormula("[d <- duration] eventually q()");
  ASSERT_OK(skeleton.status());
  sql::SqlSystem sys;
  ASSERT_OK_AND_ASSIGN(
      SimilarityList via_sql,
      sys.EvaluateConjunctive(*skeleton.value(), {{"q", {q_table, 1.0}}},
                              {{"duration", values}}, 5));

  auto real = ParseFormula("[d <- duration] eventually (duration > d)");
  ASSERT_OK(real.status());
  ASSERT_OK(Bind(real.value().get()));
  DirectEngine engine(&v);
  ASSERT_OK_AND_ASSIGN(SimilarityList direct, engine.EvaluateList(2, *real.value()));
  EXPECT_TRUE(ListsEqual(via_sql, direct));
  // Durations rise strictly, so every segment but the last sees a higher one.
  EXPECT_TRUE(ListsEqual(direct, L({{1, 4, 1.0}}, 1.0)));
}

TEST(ConjunctiveSqlTest, UntilOverAttrVarsRejected) {
  auto skeleton = ParseFormula("exists z ([h <- height(z)] (q2(z) until q2(z)))");
  ASSERT_OK(skeleton.status());
  sql::SqlSystem sys;
  SimilarityTable t({"z"}, {"h"});
  auto r = sys.EvaluateConjunctive(*skeleton.value(), {{"q2", {t, 2.0}}},
                                   {{"height(z)", ValueTable({"z"})}}, 5);
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST(ConjunctiveSqlTest, MissingValueTableIsNotFound) {
  auto skeleton = ParseFormula("exists z ([h <- height(z)] eventually q2(z))");
  ASSERT_OK(skeleton.status());
  sql::SqlSystem sys;
  SimilarityTable t({"z"}, {"h"});
  auto r = sys.EvaluateConjunctive(*skeleton.value(), {{"q2", {t, 2.0}}}, {}, 5);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ConjunctiveSqlTest, NonIntegerBoundsRejected) {
  SimilarityTable t({}, {"h"});
  SimilarityTable::Row row;
  row.ranges = {ValueRange::LessThan(AttrValue(2.5))};
  row.list = L({{1, 2, 1.0}}, 1.0);
  t.AddRow(std::move(row));
  auto relation = sql::TableFromSimilarityTable(t);
  EXPECT_EQ(relation.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConjunctiveSqlTest, OpenIntegerBoundsNormalize) {
  SimilarityTable t({}, {"h"});
  SimilarityTable::Row row;
  row.ranges = {ValueRange::GreaterThan(AttrValue(int64_t{4}))
                    .Intersect(ValueRange::LessThan(AttrValue(int64_t{9})))};
  row.list = L({{1, 2, 1.0}}, 1.0);
  t.AddRow(std::move(row));
  ASSERT_OK_AND_ASSIGN(sql::Table relation, sql::TableFromSimilarityTable(t));
  ASSERT_EQ(relation.num_rows(), 1);
  EXPECT_EQ(relation.rows()[0][relation.ColumnIndex("h_lo")], sql::Value(int64_t{5}));
  EXPECT_EQ(relation.rows()[0][relation.ColumnIndex("h_hi")], sql::Value(int64_t{8}));
}

TEST(ConjunctiveSqlTest, ValueTableRelationShape) {
  ValueTable vt({"z"});
  vt.AddRow({{7}, AttrValue(int64_t{3}), {Interval{1, 4}, Interval{6, 6}}});
  sql::Table relation = sql::TableFromValueTable(vt);
  EXPECT_EQ(relation.columns(),
            (std::vector<std::string>{"z", "val", "beg", "end"}));
  EXPECT_EQ(relation.num_rows(), 2);  // One row per interval.
}

}  // namespace
}  // namespace htl
