// Odds and ends of the SQL substrate: executor counters, printers, and the
// translation's script rendering.

#include <gtest/gtest.h>

#include "htl/parser.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/translator.h"
#include "testing/helpers.h"

namespace htl::sql {
namespace {

TEST(ExecutorStatsTest, CountsStatementsAndRows) {
  Catalog catalog;
  Executor exec(&catalog);
  ASSERT_OK(exec.ExecuteSql("CREATE TABLE t (a)").status());
  ASSERT_OK(exec.ExecuteSql("INSERT INTO t VALUES (1), (2), (3)").status());
  ASSERT_OK(exec.ExecuteSql("SELECT a FROM t WHERE a >= 2").status());
  EXPECT_EQ(exec.stats().statements, 3);
  EXPECT_GE(exec.stats().rows_materialized, 5);  // 3 inserted + 2 selected.
  exec.ResetStats();
  EXPECT_EQ(exec.stats().statements, 0);
}

TEST(ExecutorStatsTest, JoinStrategyCounters) {
  Catalog catalog;
  Table t({"a"});
  t.AddRow({Value(int64_t{1})});
  catalog.CreateOrReplace("t", std::move(t));
  Executor exec(&catalog);
  ASSERT_OK(exec.ExecuteSql("SELECT x.a FROM t x JOIN t y ON y.a = x.a").status());
  ASSERT_OK(
      exec.ExecuteSql("SELECT x.a FROM t x JOIN t y ON y.a >= x.a").status());
  ASSERT_OK(exec.ExecuteSql("SELECT x.a FROM t x, t y").status());
  EXPECT_EQ(exec.stats().hash_joins, 1);
  EXPECT_EQ(exec.stats().range_joins, 1);
  EXPECT_EQ(exec.stats().loop_joins, 1);
}

TEST(SqlTablePrinterTest, RendersRowsAndTruncates) {
  Table t({"a", "b"});
  for (int64_t i = 0; i < 5; ++i) t.AddRow({Value(i), Value("x")});
  const std::string full = t.ToString();
  EXPECT_NE(full.find("a | b"), std::string::npos);
  EXPECT_NE(full.find("4 | 'x'"), std::string::npos);
  const std::string cut = t.ToString(2);
  EXPECT_NE(cut.find("more rows"), std::string::npos);
  EXPECT_EQ(cut.find("4 | 'x'"), std::string::npos);
}

TEST(SqlExprPrinterTest, RendersOperatorsAndCalls) {
  auto stmt = ParseStatement(
      "SELECT COUNT(*), LEAST(a, 1) FROM t WHERE NOT (a + 1 = 2) AND b IS NOT NULL");
  ASSERT_OK(stmt.status());
  EXPECT_EQ(stmt.value().select->items[0].expr->ToString(), "count(*)");
  EXPECT_EQ(stmt.value().select->items[1].expr->ToString(), "least(a, 1)");
  const std::string where = stmt.value().select->where->ToString();
  EXPECT_NE(where.find("not (((a + 1) = 2))"), std::string::npos);
  EXPECT_NE(where.find("b is not null"), std::string::npos);
}

TEST(TranslationScriptTest, JoinsStatementsWithSemicolons) {
  auto f = ParseFormula("p() and q()");
  ASSERT_OK(f.status());
  ASSERT_OK_AND_ASSIGN(Translation tr,
                       TranslateToSql(*f.value(), {{"p", 1.0}, {"q", 1.0}}, "s"));
  const std::string script = tr.Script();
  EXPECT_NE(script.find("DROP TABLE IF EXISTS s_t1;"), std::string::npos);
  EXPECT_NE(script.find("CREATE TABLE"), std::string::npos);
  // Script statement count matches the statements vector.
  size_t semis = 0;
  for (char c : script) semis += c == ';';
  EXPECT_EQ(semis, tr.statements.size() - 1);
}

TEST(TranslationScriptTest, InputsRegisteredOnce) {
  auto f = ParseFormula("p() and (p() until p())");
  ASSERT_OK(f.status());
  ASSERT_OK_AND_ASSIGN(Translation tr, TranslateToSql(*f.value(), {{"p", 2.0}}, "s"));
  EXPECT_EQ(tr.inputs.size(), 1u);  // p registered once despite 3 uses.
}

}  // namespace
}  // namespace htl::sql
