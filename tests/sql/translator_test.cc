#include "sql/translator.h"

#include <gtest/gtest.h>

#include "htl/parser.h"
#include "sql/bridge.h"
#include "sql/parser.h"
#include "sim/list_ops.h"
#include "sql/sql_system.h"
#include "testing/helpers.h"
#include "workload/casablanca.h"

namespace htl::sql {
namespace {

using ::htl::testing::L;
using ::htl::testing::ListsEqual;

FormulaPtr Parse(std::string_view text) {
  auto r = ParseFormula(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

// ---------------------------------------------------------------------------
// Bridge round trips.

TEST(BridgeTest, IntervalTableRoundTrip) {
  SimilarityList list = L({{1, 4, 2.0}, {9, 9, 1.5}}, 5.0);
  Table t = TableFromList(list);
  EXPECT_EQ(t.num_rows(), 2);
  ASSERT_OK_AND_ASSIGN(SimilarityList back, ListFromIntervalTable(t, 5.0));
  EXPECT_TRUE(ListsEqual(back, list));
}

TEST(BridgeTest, ExpandedTableRoundTrip) {
  SimilarityList list = L({{1, 4, 2.0}, {9, 9, 1.5}}, 5.0);
  Table t = ExpandedTableFromList(list);
  EXPECT_EQ(t.num_rows(), 5);
  ASSERT_OK_AND_ASSIGN(SimilarityList back, ListFromExpandedTable(t, 5.0));
  EXPECT_TRUE(ListsEqual(back, list));
}

TEST(BridgeTest, ExpandedTableRejectsDuplicates) {
  Table t({"id", "act"});
  t.AddRow({Value(int64_t{1}), Value(1.0)});
  t.AddRow({Value(int64_t{1}), Value(2.0)});
  EXPECT_FALSE(ListFromExpandedTable(t, 5.0).ok());
}

TEST(BridgeTest, SeqTable) {
  Table t = MakeSeqTable(4);
  EXPECT_EQ(t.num_rows(), 4);
  EXPECT_EQ(t.columns(), std::vector<std::string>{"id"});
  EXPECT_EQ(t.rows()[3][0], Value(int64_t{4}));
}

// ---------------------------------------------------------------------------
// Translation structure.

TEST(TranslatorTest, LeafRegistersInput) {
  FormulaPtr f = Parse("p1()");
  ASSERT_OK_AND_ASSIGN(Translation tr, TranslateToSql(*f, {{"p1", 10.0}}, "q"));
  ASSERT_EQ(tr.inputs.size(), 1u);
  EXPECT_EQ(tr.inputs[0].first, "p1");
  EXPECT_EQ(tr.inputs[0].second, "q_in_p1");
  EXPECT_EQ(tr.result_max, 10.0);
  EXPECT_FALSE(tr.statements.empty());
}

TEST(TranslatorTest, MissingInputMaxFails) {
  FormulaPtr f = Parse("p1()");
  EXPECT_EQ(TranslateToSql(*f, {}, "q").status().code(), StatusCode::kNotFound);
}

TEST(TranslatorTest, NonType1Rejected) {
  FormulaPtr f = Parse("exists x (present(x) and eventually present(x))");
  EXPECT_FALSE(TranslateToSql(*f, {}, "q").ok());
  FormulaPtr g = Parse("duration > 3");
  EXPECT_FALSE(TranslateToSql(*g, {}, "q").ok());
}

TEST(TranslatorTest, AndMaxSums) {
  FormulaPtr f = Parse("p1() and p2()");
  ASSERT_OK_AND_ASSIGN(Translation tr,
                       TranslateToSql(*f, {{"p1", 10.0}, {"p2", 5.0}}, "q"));
  EXPECT_EQ(tr.result_max, 15.0);
  EXPECT_EQ(tr.inputs.size(), 2u);
}

TEST(TranslatorTest, UntilMaxIsRhs) {
  FormulaPtr f = Parse("p1() until p2()");
  ASSERT_OK_AND_ASSIGN(Translation tr,
                       TranslateToSql(*f, {{"p1", 10.0}, {"p2", 5.0}}, "q"));
  EXPECT_EQ(tr.result_max, 5.0);
}

TEST(TranslatorTest, ScriptIsParseable) {
  FormulaPtr f = Parse("p1() and next (p2() until p1())");
  ASSERT_OK_AND_ASSIGN(Translation tr,
                       TranslateToSql(*f, {{"p1", 10.0}, {"p2", 5.0}}, "q"));
  auto parsed = ParseScript(tr.Script());
  EXPECT_OK(parsed.status());
}

// ---------------------------------------------------------------------------
// End-to-end SQL evaluation vs the direct list algebra.

class SqlEvalTest : public ::testing::Test {
 protected:
  SimilarityList Eval(std::string_view formula,
                      std::map<std::string, SimilarityList> inputs, int64_t n) {
    FormulaPtr f = Parse(formula);
    SqlSystem sys;
    auto r = sys.Evaluate(*f, inputs, n);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : SimilarityList();
  }
};

TEST_F(SqlEvalTest, AtomicPassThrough) {
  SimilarityList p = L({{2, 5, 3.0}}, 10.0);
  EXPECT_TRUE(ListsEqual(Eval("p()", {{"p", p}}, 10), p));
}

TEST_F(SqlEvalTest, AndMatchesDirect) {
  SimilarityList a = L({{1, 10, 2.0}}, 5.0);
  SimilarityList b = L({{5, 15, 3.0}}, 5.0);
  EXPECT_TRUE(ListsEqual(Eval("a() and b()", {{"a", a}, {"b", b}}, 20),
                         L({{1, 4, 2.0}, {5, 10, 5.0}, {11, 15, 3.0}}, 10.0)));
}

TEST_F(SqlEvalTest, OrMatchesDirect) {
  SimilarityList a = L({{1, 10, 2.0}}, 5.0);
  SimilarityList b = L({{5, 15, 3.0}}, 5.0);
  EXPECT_TRUE(ListsEqual(Eval("a() or b()", {{"a", a}, {"b", b}}, 20),
                         L({{1, 4, 2.0}, {5, 15, 3.0}}, 5.0)));
}

TEST_F(SqlEvalTest, NextShifts) {
  SimilarityList a = L({{1, 3, 2.0}}, 5.0);
  EXPECT_TRUE(ListsEqual(Eval("next a()", {{"a", a}}, 10), L({{1, 2, 2.0}}, 5.0)));
}

TEST_F(SqlEvalTest, EventuallySuffixMax) {
  SimilarityList a = L({{5, 6, 2.0}, {9, 9, 4.0}}, 5.0);
  EXPECT_TRUE(
      ListsEqual(Eval("eventually a()", {{"a", a}}, 10), L({{1, 9, 4.0}}, 5.0)));
}

TEST_F(SqlEvalTest, UntilPaperFigure2) {
  SimilarityList g = L({{25, 100, 20.0}, {200, 250, 20.0}}, 20.0);
  SimilarityList h =
      L({{10, 50, 10.0}, {55, 60, 15.0}, {90, 110, 12.0}, {125, 175, 10.0}}, 20.0);
  EXPECT_TRUE(ListsEqual(
      Eval("g() until h()", {{"g", g}, {"h", h}}, 300),
      L({{10, 24, 10.0}, {25, 60, 15.0}, {61, 110, 12.0}, {125, 175, 10.0}}, 20.0)));
}

TEST_F(SqlEvalTest, UntilWithAdjacentGEntries) {
  // Adjacent thresholded g entries must coalesce into one run (the
  // pointer-doubling reach computation).
  SimilarityList g = L({{1, 3, 8.0}, {4, 9, 9.0}}, 10.0);
  SimilarityList h = L({{10, 10, 5.0}}, 5.0);
  EXPECT_TRUE(ListsEqual(Eval("g() until h()", {{"g", g}, {"h", h}}, 12),
                         L({{1, 10, 5.0}}, 5.0)));
}

TEST_F(SqlEvalTest, UntilThresholdFilters) {
  SimilarityList g = L({{1, 10, 2.0}}, 10.0);  // 0.2 < 0.5 threshold.
  SimilarityList h = L({{10, 10, 5.0}}, 5.0);
  EXPECT_TRUE(ListsEqual(Eval("g() until h()", {{"g", g}, {"h", h}}, 12),
                         L({{10, 10, 5.0}}, 5.0)));
}

TEST_F(SqlEvalTest, CasablancaQuery1MatchesPaperTable4) {
  SimilarityList result =
      Eval("man_woman() and eventually moving_train()", casablanca::NamedInputs(),
           casablanca::kNumShots);
  EXPECT_TRUE(ListsEqual(result, casablanca::Query1ResultTable()));
}

TEST_F(SqlEvalTest, ComposedFormula) {
  // The paper's formula (A) shape: m1 and next (m2 until m3).
  SimilarityList m1 = L({{1, 6, 4.0}}, 4.0);
  SimilarityList m2 = L({{3, 8, 3.0}}, 4.0);
  SimilarityList m3 = L({{9, 9, 2.0}}, 4.0);
  SimilarityList sql = Eval("m1() and next (m2() until m3())",
                            {{"m1", m1}, {"m2", m2}, {"m3", m3}}, 12);
  // Compare against the direct algebra.
  SimilarityList direct = AndMerge(m1, NextShift(UntilMerge(m2, m3, 0.5)));
  EXPECT_TRUE(ListsEqual(sql, direct));
}

}  // namespace
}  // namespace htl::sql
