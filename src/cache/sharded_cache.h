#ifndef HTL_CACHE_SHARDED_CACHE_H_
#define HTL_CACHE_SHARDED_CACHE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/cache_stats.h"
#include "engine/exec_context.h"
#include "htl/fingerprint.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace htl::cache {

/// A sharded, thread-safe LRU cache with a byte-denominated capacity.
///
/// Keys hash (FNV-1a fingerprint) to one of `num_shards` shards; each shard
/// is an unordered map of pointer-stable entries threaded on an intrusive
/// LRU list under one shard mutex, so concurrent queries on different keys
/// rarely contend. Values are handed out as `shared_ptr<const V>`: a hit
/// stays valid even if the entry is evicted a microsecond later, and
/// entries are immutable once published (the determinism contract —
/// DESIGN.md "Result and sub-formula caching").
///
/// Correctness under store mutation uses epoch stamping: every entry
/// records the store epoch it was computed at, and a lookup presenting a
/// newer epoch lazily evicts the stale entry and reports a miss. Eviction
/// is per shard from the LRU tail once the shard's slice of
/// `capacity_bytes` overflows.
///
/// GetOrCompute() adds a single-flight guard: concurrent callers of one
/// key run the compute once (the leader); waiters block on a per-key
/// flight, polling their own ExecContext so a waiter's deadline or
/// cancellation still aborts in bounded time. A leader whose compute fails
/// (deadline, cancel, injected fault) publishes nothing — the error never
/// poisons the cache — and its waiters retry, at most once becoming
/// leaders themselves.
///
/// Hit/miss/fill counters are relaxed atomics local to the cache and are
/// mirrored into obs::MetricsRegistry ("cache.<name>.hits", ...) when the
/// registry is enabled.
template <typename V>
class ShardedLruCache {
 public:
  using ValuePtr = std::shared_ptr<const V>;

  /// What a compute hands back to GetOrCompute: the value to return (and
  /// share with waiters), its byte cost, and whether it may be stored
  /// (`store = false` degrades to compute-without-caching — the fill-fault
  /// and partial-result paths).
  struct Fill {
    ValuePtr value;
    int64_t bytes = 0;
    bool store = true;
  };

  /// One probe's result; `value` is null on kMiss / kStale.
  struct Found {
    ValuePtr value;
    LookupOutcome outcome = LookupOutcome::kMiss;
  };

  /// `name` labels the registry metrics ("cache.<name>.hits", ...).
  ShardedLruCache(CacheConfig config, const std::string& name)
      : config_(config), shards_(ShardCount(config)) {
    per_shard_capacity_ = config_.capacity_bytes / static_cast<int64_t>(shards_.size());
    if (per_shard_capacity_ < 1) per_shard_capacity_ = 1;
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
    reg_hits_ = reg.GetCounter("cache." + name + ".hits");
    reg_misses_ = reg.GetCounter("cache." + name + ".misses");
    reg_stale_ = reg.GetCounter("cache." + name + ".stale");
    reg_fills_ = reg.GetCounter("cache." + name + ".fills");
    reg_evictions_ = reg.GetCounter("cache." + name + ".evictions");
    reg_shared_ = reg.GetCounter("cache." + name + ".shared_waits");
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Probes `key` at `epoch`. A present entry stamped with a different
  /// epoch is evicted here (lazy invalidation) and reported as kStale.
  Found Get(const std::string& key, uint64_t epoch) {
    Shard& shard = ShardFor(key);
    MutexLock lock(&shard.mu);
    return GetLocked(shard, key, epoch);
  }

  /// Publishes `value` for `key` at `epoch`, replacing any existing entry
  /// and evicting LRU tails while the shard overflows its capacity slice.
  void Put(const std::string& key, uint64_t epoch, ValuePtr value, int64_t bytes) {
    HTL_CHECK(value != nullptr);
    if (bytes < 1) bytes = 1;  // Every entry occupies at least one byte.
    Shard& shard = ShardFor(key);
    MutexLock lock(&shard.mu);
    auto [it, inserted] = shard.map.try_emplace(key);
    Entry& e = it->second;
    if (!inserted) {
      shard.bytes -= e.bytes;
      Unlink(&e);
    }
    e.epoch = epoch;
    e.value = std::move(value);
    e.bytes = bytes;
    e.key = &it->first;
    PushFront(shard, &e);
    shard.bytes += bytes;
    Count(fills_, reg_fills_);
    EvictOverflowLocked(shard);
  }

  /// The single-flight cached compute described in the class comment.
  /// `compute` is `Result<Fill>()`; it runs outside every cache lock, on
  /// the leader's thread and under the leader's own ExecContext (captured
  /// by the closure). Waiters poll `ctx` (null = wait without limits).
  template <typename Compute>
  Result<ValuePtr> GetOrCompute(const std::string& key, uint64_t epoch,
                                ExecContext* ctx, const Compute& compute) {
    Shard& shard = ShardFor(key);
    for (;;) {
      std::shared_ptr<Flight> flight;
      bool leader = false;
      {
        MutexLock lock(&shard.mu);
        // Double-check under the shard lock: a racing leader may have
        // published between the caller's probe and this call. The re-probe
        // is silent on miss (the caller's probe already counted it); only a
        // genuine late hit is counted.
        Found found = GetLocked(shard, key, epoch, /*count_miss=*/false);
        if (found.value != nullptr) return found.value;
        auto it = shard.flights.find(key);
        if (it != shard.flights.end()) {
          flight = it->second;
        } else {
          flight = std::make_shared<Flight>();
          shard.flights.emplace(key, flight);
          leader = true;
        }
      }
      if (leader) return Lead(shard, key, epoch, *flight, compute);

      // Waiter: block until the leader resolves. The coarse timed wait
      // bounds how late this thread notices its own deadline or a cancel
      // (the leader keeps computing under its own context either way).
      {
        Flight& f = *flight;  // One deref: the analysis tracks `f.mu`.
        MutexLock fl(&f.mu);
        while (!f.done) {
          if (ctx != nullptr) {
            Status s = ctx->Check();
            if (!s.ok()) return s;
          }
          f.cv.WaitFor(f.mu, std::chrono::milliseconds(1));
        }
        if (f.ok) {
          Count(shared_waits_, reg_shared_);
          return f.value;
        }
      }
      // The leader failed; its status must not leak to waiters whose own
      // contexts are healthy. Loop: re-probe (another leader may have
      // succeeded) or become the leader and compute under our own context.
    }
  }

  /// Drops every resident entry (flights in progress are unaffected; they
  /// publish into the emptied table when they finish).
  void Clear() {
    for (Shard& shard : shards_) {
      MutexLock lock(&shard.mu);
      shard.map.clear();
      shard.lru.prev = shard.lru.next = &shard.lru;
      shard.bytes = 0;
    }
  }

  /// Detached counter snapshot plus the current resident totals.
  CacheStats stats() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.stale = stale_.load(std::memory_order_relaxed);
    s.fills = fills_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.shared_waits = shared_waits_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
      MutexLock lock(&shard.mu);
      s.bytes += shard.bytes;
      s.entries += static_cast<int64_t>(shard.map.size());
    }
    return s;
  }

  const CacheConfig& config() const { return config_; }

 private:
  /// One resident entry. Lives in Shard::map (node-based, so the address
  /// is stable) and is threaded on the shard's intrusive LRU list; `key`
  /// points at the owning map node's key for tail eviction.
  struct Entry {
    uint64_t epoch = 0;
    ValuePtr value;
    int64_t bytes = 0;
    Entry* prev = nullptr;
    Entry* next = nullptr;
    const std::string* key = nullptr;
  };

  /// One in-progress single-flight compute; waiters block on `cv`.
  struct Flight {
    Mutex mu;
    CondVar cv;
    bool done HTL_GUARDED_BY(mu) = false;
    bool ok HTL_GUARDED_BY(mu) = false;
    ValuePtr value HTL_GUARDED_BY(mu);  // Shared with waiters even when not stored.
  };

  struct Shard {
    mutable Mutex mu;
    std::unordered_map<std::string, Entry> map HTL_GUARDED_BY(mu);
    // Sentinel: lru.next is most recent, lru.prev the tail.
    Entry lru HTL_GUARDED_BY(mu);
    int64_t bytes HTL_GUARDED_BY(mu) = 0;
    // In-flight computes by key; the flight's own mutex only guards its
    // done/value hand-off, never nested with this shard's `mu`.
    std::map<std::string, std::shared_ptr<Flight>> flights HTL_GUARDED_BY(mu);

    Shard() { lru.prev = lru.next = &lru; }
  };

  static size_t ShardCount(const CacheConfig& config) {
    return config.num_shards < 1 ? 1 : static_cast<size_t>(config.num_shards);
  }

  Shard& ShardFor(const std::string& key) {
    return shards_[FingerprintKey(key) % shards_.size()];
  }

  static void Unlink(Entry* e) {
    e->prev->next = e->next;
    e->next->prev = e->prev;
    e->prev = e->next = nullptr;
  }

  static void PushFront(Shard& shard, Entry* e) HTL_REQUIRES(shard.mu) {
    e->prev = &shard.lru;
    e->next = shard.lru.next;
    shard.lru.next->prev = e;
    shard.lru.next = e;
  }

  void Count(std::atomic<int64_t>& local, obs::Counter* mirror) {
    local.fetch_add(1, std::memory_order_relaxed);
    if (obs::MetricsRegistry::Enabled()) mirror->Increment();
  }

  /// `count_miss = false` makes a miss/stale outcome silent in the stats —
  /// used by GetOrCompute's internal double-check so one logical lookup
  /// (probe, then compute) is not counted as two misses.
  Found GetLocked(Shard& shard, const std::string& key, uint64_t epoch,
                  bool count_miss = true) HTL_REQUIRES(shard.mu) {
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      if (count_miss) Count(misses_, reg_misses_);
      return Found{nullptr, LookupOutcome::kMiss};
    }
    Entry& e = it->second;
    if (e.epoch != epoch) {
      shard.bytes -= e.bytes;
      Unlink(&e);
      shard.map.erase(it);
      if (count_miss) {
        Count(misses_, reg_misses_);
        Count(stale_, reg_stale_);
      }
      return Found{nullptr, LookupOutcome::kStale};
    }
    Unlink(&e);
    PushFront(shard, &e);
    Count(hits_, reg_hits_);
    return Found{e.value, LookupOutcome::kHit};
  }

  void EvictOverflowLocked(Shard& shard) HTL_REQUIRES(shard.mu) {
    while (shard.bytes > per_shard_capacity_ && shard.lru.prev != &shard.lru) {
      Entry* tail = shard.lru.prev;
      shard.bytes -= tail->bytes;
      Unlink(tail);
      Count(evictions_, reg_evictions_);
      // Copied: erasing through a reference into the node being destroyed
      // would have the map hash a key it is freeing.
      const std::string victim = *tail->key;
      shard.map.erase(victim);
    }
  }

  /// Runs the leader's side of one flight: compute (no locks held),
  /// publish on store-worthy success, then resolve the flight for the
  /// waiters. The flight is removed before waiters wake, so a failed
  /// compute lets the next arrival start a fresh flight immediately.
  template <typename Compute>
  Result<ValuePtr> Lead(Shard& shard, const std::string& key, uint64_t epoch,
                        Flight& flight, const Compute& compute)
      HTL_EXCLUDES(shard.mu, flight.mu) {
    Result<Fill> result = compute();
    ValuePtr out;
    if (result.ok()) {
      out = result.value().value;
      HTL_CHECK(out != nullptr) << "single-flight compute returned a null value";
      if (result.value().store) Put(key, epoch, out, result.value().bytes);
    }
    {
      MutexLock lock(&shard.mu);
      shard.flights.erase(key);
    }
    {
      MutexLock lock(&flight.mu);
      flight.done = true;
      flight.ok = result.ok();
      flight.value = out;
    }
    flight.cv.NotifyAll();
    if (!result.ok()) return result.status();
    return out;
  }

  CacheConfig config_;
  int64_t per_shard_capacity_ = 0;
  std::vector<Shard> shards_;

  // Local stats (see CacheStats) ...
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> stale_{0};
  std::atomic<int64_t> fills_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> shared_waits_{0};
  // ... and their process-registry mirrors (bumped only while enabled).
  obs::Counter* reg_hits_ = nullptr;
  obs::Counter* reg_misses_ = nullptr;
  obs::Counter* reg_stale_ = nullptr;
  obs::Counter* reg_fills_ = nullptr;
  obs::Counter* reg_evictions_ = nullptr;
  obs::Counter* reg_shared_ = nullptr;
};

}  // namespace htl::cache

#endif  // HTL_CACHE_SHARDED_CACHE_H_
