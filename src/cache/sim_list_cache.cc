#include "cache/sim_list_cache.h"

#include <utility>

#include "obs/metrics.h"
#include "util/fault_point.h"
#include "util/string_util.h"

namespace htl::cache {

SimListCache::SimListCache(CacheConfig config)
    : cache_(config, "simlist") {}

std::string SimListCache::MakeKey(int64_t video, int level,
                                  const std::string& formula_key) {
  return StrCat("v", video, "|l", level, "|", formula_key);
}

SimListCache::ListPtr SimListCache::Get(int64_t video, int level,
                                        const std::string& formula_key,
                                        uint64_t epoch) {
  // Handled by hand (not HTL_FAULT_POINT) because an injected fault must
  // degrade to a miss here, not propagate an error to the evaluation.
  if (FaultRegistry::Armed() &&
      !FaultRegistry::Instance().Hit("cache.lookup").ok()) {
    HTL_OBS_COUNT("cache.simlist.lookup_bypass", 1);
    return nullptr;
  }
  return cache_.Get(MakeKey(video, level, formula_key), epoch).value;
}

void SimListCache::Put(int64_t video, int level, const std::string& formula_key,
                       uint64_t epoch, SimilarityList list) {
  // A fill fault skips the store: the next query recomputes (bypass), and
  // no partial or corrupt entry is ever published.
  if (FaultRegistry::Armed() && !FaultRegistry::Instance().Hit("cache.fill").ok()) {
    HTL_OBS_COUNT("cache.simlist.fill_bypass", 1);
    return;
  }
  const int64_t bytes =
      static_cast<int64_t>(sizeof(SimilarityList)) +
      static_cast<int64_t>(list.entries().size() * sizeof(SimEntry));
  cache_.Put(MakeKey(video, level, formula_key), epoch,
             std::make_shared<const SimilarityList>(std::move(list)), bytes);
}

}  // namespace htl::cache
