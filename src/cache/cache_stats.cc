#include "cache/cache_stats.h"

#include "util/string_util.h"

namespace htl::cache {

std::string CacheStats::ToString() const {
  return StrCat("hits ", hits, ", misses ", misses, " (stale ", stale, "), fills ",
                fills, ", evictions ", evictions, ", shared-waits ", shared_waits,
                ", resident ", entries, " entries / ", bytes, " bytes");
}

std::string_view LookupOutcomeName(LookupOutcome outcome) {
  switch (outcome) {
    case LookupOutcome::kHit:
      return "hit";
    case LookupOutcome::kMiss:
      return "miss";
    case LookupOutcome::kStale:
      return "miss (stale epoch)";
  }
  return "unknown";
}

}  // namespace htl::cache
