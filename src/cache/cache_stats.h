#ifndef HTL_CACHE_CACHE_STATS_H_
#define HTL_CACHE_CACHE_STATS_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace htl::cache {

/// Sizing of one sharded cache. Capacity is counted in payload bytes (the
/// cost the client declares per entry), split evenly across the shards;
/// a shard evicts from its own LRU tail once its slice overflows.
struct CacheConfig {
  int64_t capacity_bytes = 8 * 1024 * 1024;
  int num_shards = 8;
};

/// Point-in-time counters of one cache. The live cells are relaxed atomics
/// local to the cache (mirrored into obs::MetricsRegistry when it is
/// enabled), so tests can assert on them without racing the registry's
/// ResetAll churn. `hits + misses` counts every lookup; `stale` is the
/// subset of misses evicted lazily because their epoch fell behind.
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t stale = 0;          // Epoch-invalidated entries evicted on lookup.
  int64_t fills = 0;
  int64_t evictions = 0;      // Capacity evictions (stale ones count above).
  int64_t shared_waits = 0;   // Single-flight waiters served by a leader.
  int64_t bytes = 0;          // Resident payload bytes right now.
  int64_t entries = 0;        // Resident entries right now.

  /// One-line human-readable summary for logs and benches.
  std::string ToString() const;
};

/// What one cache probe found — surfaced so clients can annotate profile
/// spans ("hit" / "miss" / "miss (stale epoch)").
enum class LookupOutcome {
  kHit,
  kMiss,
  kStale,  // Present but from an older store epoch; evicted, counts as miss.
};

/// Span/log note for an outcome.
std::string_view LookupOutcomeName(LookupOutcome outcome);

}  // namespace htl::cache

#endif  // HTL_CACHE_CACHE_STATS_H_
