#ifndef HTL_CACHE_SIM_LIST_CACHE_H_
#define HTL_CACHE_SIM_LIST_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "cache/cache_stats.h"
#include "cache/sharded_cache.h"
#include "sim/sim_list.h"

namespace htl::cache {

/// The cross-query similarity-list cache — client (a) of the tentpole:
/// DirectEngine consults it for every *closed* non-atomic sub-formula
/// evaluated over a full level, keyed by
/// `(video, level, canonical sub-formula key)` and stamped with the store
/// epoch, so repeated queries and shared sub-formulas across the four
/// formula classes reuse interval-coded lists instead of recomputing them
/// (the paper's §4-§5 reuse argument applied across queries).
///
/// Both accessors pass through the `cache.lookup` / `cache.fill` fault
/// points: an injected lookup fault degrades to a miss and a fill fault
/// skips the store, so a faulty cache can only cost recomputation — never
/// a wrong or poisoned entry.
class SimListCache {
 public:
  using ListPtr = std::shared_ptr<const SimilarityList>;

  explicit SimListCache(CacheConfig config);

  /// The cached list for the slot, or null (miss, stale epoch, or an
  /// injected lookup fault).
  ListPtr Get(int64_t video, int level, const std::string& formula_key,
              uint64_t epoch);

  /// Publishes `list` for the slot (byte cost: its interval entries).
  void Put(int64_t video, int level, const std::string& formula_key, uint64_t epoch,
           SimilarityList list);

  CacheStats stats() const { return cache_.stats(); }
  void Clear() { cache_.Clear(); }

 private:
  static std::string MakeKey(int64_t video, int level, const std::string& formula_key);

  ShardedLruCache<SimilarityList> cache_;
};

}  // namespace htl::cache

#endif  // HTL_CACHE_SIM_LIST_CACHE_H_
