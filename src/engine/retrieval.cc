#include "engine/retrieval.h"

#include <algorithm>

#include "engine/direct_engine.h"
#include "engine/reference_engine.h"
#include "htl/binder.h"
#include "htl/classifier.h"
#include "htl/parser.h"
#include "htl/rewriter.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace htl {

std::string RetrievalReport::ToString() const {
  std::string out = StrCat("evaluated ", videos_evaluated, ", failed ", videos_failed,
                           ", degraded-to-reference ", videos_degraded);
  for (const VideoFailure& f : failures) {
    out += StrCat("; video ", f.video, ": ", f.status.ToString());
  }
  for (const obs::QueryProfile::FaultTrip& trip : profile.fault_trips) {
    out += StrCat("; fault trip ", trip.point);
  }
  return out;
}

Retriever::Retriever(const MetadataStore* store, QueryOptions options)
    : store_(store), options_(options) {
  HTL_CHECK(store != nullptr);
}

Result<FormulaPtr> Retriever::Prepare(std::string_view query_text) const {
  HTL_ASSIGN_OR_RETURN(FormulaPtr f, ParseFormula(query_text));
  HTL_RETURN_IF_ERROR(Bind(f.get()));
  return Rewrite(std::move(f));
}

DirectEngine& Retriever::EngineFor(MetadataStore::VideoId video) {
  auto it = engines_.find(video);
  if (it == engines_.end()) {
    it = engines_
             .emplace(video,
                      std::make_unique<DirectEngine>(&store_->Video(video), options_))
             .first;
  }
  return *it->second;
}

Result<SimilarityList> Retriever::EvaluateList(MetadataStore::VideoId video_id, int level,
                                               const Formula& query, ExecContext* ctx,
                                               bool* degraded) {
  if (degraded != nullptr) *degraded = false;
  const VideoTree& video = store_->Video(video_id);
  if (level > video.num_levels()) {
    return SimilarityList(MaxSimilarity(query));  // No such level: no hits.
  }
  // The direct engine covers the extended conjunctive class plus the
  // disjunction and closed-negation extensions; only the constructs it
  // reports Unimplemented for (negation over free variables, two-variable
  // comparisons) drop to the exponential reference evaluator.
  DirectEngine& engine = EngineFor(video_id);
  engine.set_exec_context(ctx);
  Result<SimilarityList> direct = engine.EvaluateList(level, query);
  engine.set_exec_context(nullptr);
  if (direct.ok() || direct.status().code() != StatusCode::kUnimplemented) {
    return direct;
  }
  if (degraded != nullptr) *degraded = true;
  ReferenceEngine reference(&video, options_);
  reference.set_exec_context(ctx);
  return reference.EvaluateList(level, query);
}

namespace {

// Global ranking: descending fraction, ties by video then segment id.
void RankAndTrim(std::vector<SegmentHit>& all, int64_t k) {
  std::stable_sort(all.begin(), all.end(), [](const SegmentHit& a, const SegmentHit& b) {
    if (a.sim.fraction() != b.sim.fraction()) return a.sim.fraction() > b.sim.fraction();
    if (a.video != b.video) return a.video < b.video;
    return a.segment < b.segment;
  });
  if (static_cast<int64_t>(all.size()) > k) all.resize(static_cast<size_t>(k));
}

// Strict wrapper semantics: a degraded run surfaces its first per-video
// error; deadline/cancel already propagated as the call's own status.
Status FirstFailure(const RetrievalReport& report) {
  if (report.failures.empty()) return Status::OK();
  return report.failures.front().status;
}

// Shared plumbing behind the *Profiled entry points: attach a fresh trace
// to the effective context (a local unlimited one when the caller passed
// null), make it the thread's current trace so fault points report into it,
// run `body(ctx, trace)`, and move the finished profile into the result's
// report. The context's previous trace is restored on every path.
template <typename Body>
auto RunProfiled(ExecContext* ctx, const Body& body)
    -> decltype(body(ctx, static_cast<obs::QueryTrace*>(nullptr))) {
  ExecContext local;
  ExecContext* use = ctx != nullptr ? ctx : &local;
  obs::QueryTrace trace;
  obs::QueryTrace* saved = use->trace();
  use->set_trace(&trace);
  obs::ScopedTraceAttach attach(&trace);
  auto result = body(use, &trace);
  use->set_trace(saved);
  if (!result.ok()) return result.status();
  auto out = std::move(result).value();
  out.report.profile = trace.Finish();
  return out;
}

}  // namespace

template <typename ResolveLevel>
Result<SegmentRetrieval> Retriever::RunSegmentQuery(const Formula& query, int64_t k,
                                                    ExecContext* ctx,
                                                    const ResolveLevel& resolve_level) {
  SegmentRetrieval out;
  obs::QueryTrace* tr = ctx != nullptr ? ctx->trace() : nullptr;
  for (MetadataStore::VideoId v = 1; v <= store_->num_videos(); ++v) {
    HTL_CHECK_EXEC(ctx);  // Deadline/cancel abort the whole call.
    const int level = resolve_level(v);
    if (level < 0) continue;  // Named level absent: silently skipped.
    if (ctx != nullptr) ctx->BeginUnit();  // Budgets bound each video alone.
    // One span per video; the unit carries the video id (span names stay
    // static so the unprofiled path never allocates).
    HTL_OBS_SPAN(vspan, tr, "video");
    vspan.SetUnit(v);
    bool degraded = false;
    Result<SimilarityList> list = EvaluateList(v, level, query, ctx, &degraded);
    if (vspan.active() && ctx != nullptr) {
      vspan.AddRows(ctx->rows_used());
      vspan.AddTables(ctx->tables_used());
    }
    if (!list.ok()) {
      // A query-wide abort is not a per-video fault: propagate it.
      if (list.status().IsQueryAbort()) return list.status();
      vspan.SetNote(StrCat("failed: ", list.status().ToString()));
      ++out.report.videos_failed;
      out.report.failures.push_back(RetrievalReport::VideoFailure{v, list.status()});
      continue;
    }
    if (degraded) vspan.SetNote("degraded");
    ++out.report.videos_evaluated;
    if (degraded) ++out.report.videos_degraded;
    // Keep at most k per video before the global merge.
    for (const RankedSegment& rs : TopKSegments(list.value(), k)) {
      out.hits.push_back(SegmentHit{v, rs.id, rs.sim});
    }
  }
  RankAndTrim(out.hits, k);
  return out;
}

Result<SegmentRetrieval> Retriever::TopSegmentsWithReport(const Formula& query,
                                                          int level, int64_t k,
                                                          ExecContext* ctx) {
  return RunSegmentQuery(query, k, ctx,
                         [level](MetadataStore::VideoId) { return level; });
}

Result<SegmentRetrieval> Retriever::TopSegmentsWithReport(std::string_view query_text,
                                                          int level, int64_t k,
                                                          ExecContext* ctx) {
  HTL_ASSIGN_OR_RETURN(FormulaPtr f, Prepare(query_text));
  return TopSegmentsWithReport(*f, level, k, ctx);
}

Result<SegmentRetrieval> Retriever::TopSegmentsProfiled(const Formula& query, int level,
                                                        int64_t k, ExecContext* ctx) {
  return RunProfiled(ctx, [&](ExecContext* use, obs::QueryTrace* trace)
                              -> Result<SegmentRetrieval> {
    {
      HTL_OBS_SPAN(span, trace, "stage.classify");
      span.SetNote(std::string(FormulaClassName(Classify(query))));
    }
    HTL_OBS_SPAN(span, trace, "stage.execute");
    return TopSegmentsWithReport(query, level, k, use);
  });
}

Result<SegmentRetrieval> Retriever::TopSegmentsProfiled(std::string_view query_text,
                                                        int level, int64_t k,
                                                        ExecContext* ctx) {
  return RunProfiled(ctx, [&](ExecContext* use, obs::QueryTrace* trace)
                              -> Result<SegmentRetrieval> {
    FormulaPtr f;
    {
      HTL_OBS_SPAN(span, trace, "stage.parse");
      HTL_ASSIGN_OR_RETURN(f, ParseFormula(query_text));
    }
    {
      HTL_OBS_SPAN(span, trace, "stage.bind");
      HTL_RETURN_IF_ERROR(Bind(f.get()));
    }
    {
      HTL_OBS_SPAN(span, trace, "stage.rewrite");
      f = Rewrite(std::move(f));
    }
    {
      HTL_OBS_SPAN(span, trace, "stage.classify");
      span.SetNote(std::string(FormulaClassName(Classify(*f))));
    }
    HTL_OBS_SPAN(span, trace, "stage.execute");
    return TopSegmentsWithReport(*f, level, k, use);
  });
}

Result<std::vector<SegmentHit>> Retriever::TopSegments(const Formula& query, int level,
                                                       int64_t k, ExecContext* ctx) {
  HTL_ASSIGN_OR_RETURN(SegmentRetrieval r, TopSegmentsWithReport(query, level, k, ctx));
  HTL_RETURN_IF_ERROR(FirstFailure(r.report));
  return std::move(r.hits);
}

Result<std::vector<SegmentHit>> Retriever::TopSegments(std::string_view query_text,
                                                       int level, int64_t k,
                                                       ExecContext* ctx) {
  HTL_ASSIGN_OR_RETURN(FormulaPtr f, Prepare(query_text));
  return TopSegments(*f, level, k, ctx);
}

Result<SegmentRetrieval> Retriever::TopSegmentsAtNamedLevelWithReport(
    const Formula& query, const std::string& level_name, int64_t k, ExecContext* ctx) {
  return RunSegmentQuery(query, k, ctx, [this, &level_name](MetadataStore::VideoId v) {
    Result<int> level = store_->Video(v).LevelByName(level_name);
    return level.ok() ? level.value() : -1;
  });
}

Result<std::vector<SegmentHit>> Retriever::TopSegmentsAtNamedLevel(
    const Formula& query, const std::string& level_name, int64_t k, ExecContext* ctx) {
  HTL_ASSIGN_OR_RETURN(SegmentRetrieval r,
                       TopSegmentsAtNamedLevelWithReport(query, level_name, k, ctx));
  HTL_RETURN_IF_ERROR(FirstFailure(r.report));
  return std::move(r.hits);
}

Result<std::vector<SegmentHit>> Retriever::TopSegmentsAtNamedLevel(
    std::string_view query_text, const std::string& level_name, int64_t k,
    ExecContext* ctx) {
  HTL_ASSIGN_OR_RETURN(FormulaPtr f, Prepare(query_text));
  return TopSegmentsAtNamedLevel(*f, level_name, k, ctx);
}

Result<VideoRetrieval> Retriever::TopVideosWithReport(const Formula& query, int64_t k,
                                                      ExecContext* ctx) {
  VideoRetrieval out;
  obs::QueryTrace* tr = ctx != nullptr ? ctx->trace() : nullptr;
  for (MetadataStore::VideoId v = 1; v <= store_->num_videos(); ++v) {
    HTL_CHECK_EXEC(ctx);
    if (ctx != nullptr) ctx->BeginUnit();
    HTL_OBS_SPAN(vspan, tr, "video");
    vspan.SetUnit(v);
    const VideoTree& video = store_->Video(v);
    Sim sim;
    bool degraded = false;
    DirectEngine& engine = EngineFor(v);
    engine.set_exec_context(ctx);
    Result<Sim> direct = engine.EvaluateVideo(query);
    engine.set_exec_context(nullptr);
    Status video_error = Status::OK();
    if (direct.ok()) {
      sim = direct.value();
    } else if (direct.status().code() == StatusCode::kUnimplemented) {
      degraded = true;
      ReferenceEngine reference(&video, options_);
      reference.set_exec_context(ctx);
      Result<Sim> ref = reference.EvaluateVideo(query);
      if (ref.ok()) {
        sim = ref.value();
      } else {
        video_error = ref.status();
      }
    } else {
      video_error = direct.status();
    }
    if (vspan.active() && ctx != nullptr) {
      vspan.AddRows(ctx->rows_used());
      vspan.AddTables(ctx->tables_used());
    }
    if (!video_error.ok()) {
      if (video_error.IsQueryAbort()) return video_error;
      vspan.SetNote(StrCat("failed: ", video_error.ToString()));
      ++out.report.videos_failed;
      out.report.failures.push_back(RetrievalReport::VideoFailure{v, video_error});
      continue;
    }
    if (degraded) vspan.SetNote("degraded");
    ++out.report.videos_evaluated;
    if (degraded) ++out.report.videos_degraded;
    if (sim.actual > 0) out.hits.push_back(VideoHit{v, sim});
  }
  std::stable_sort(out.hits.begin(), out.hits.end(),
                   [](const VideoHit& a, const VideoHit& b) {
                     if (a.sim.fraction() != b.sim.fraction()) {
                       return a.sim.fraction() > b.sim.fraction();
                     }
                     return a.video < b.video;
                   });
  if (static_cast<int64_t>(out.hits.size()) > k) {
    out.hits.resize(static_cast<size_t>(k));
  }
  return out;
}

Result<VideoRetrieval> Retriever::TopVideosProfiled(const Formula& query, int64_t k,
                                                    ExecContext* ctx) {
  return RunProfiled(ctx, [&](ExecContext* use, obs::QueryTrace* trace)
                              -> Result<VideoRetrieval> {
    {
      HTL_OBS_SPAN(span, trace, "stage.classify");
      span.SetNote(std::string(FormulaClassName(Classify(query))));
    }
    HTL_OBS_SPAN(span, trace, "stage.execute");
    return TopVideosWithReport(query, k, use);
  });
}

Result<std::vector<VideoHit>> Retriever::TopVideos(const Formula& query, int64_t k,
                                                   ExecContext* ctx) {
  HTL_ASSIGN_OR_RETURN(VideoRetrieval r, TopVideosWithReport(query, k, ctx));
  HTL_RETURN_IF_ERROR(FirstFailure(r.report));
  return std::move(r.hits);
}

Result<std::vector<VideoHit>> Retriever::TopVideos(std::string_view query_text,
                                                   int64_t k, ExecContext* ctx) {
  HTL_ASSIGN_OR_RETURN(FormulaPtr f, Prepare(query_text));
  return TopVideos(*f, k, ctx);
}

}  // namespace htl
