#include "engine/retrieval.h"

#include <algorithm>

#include "engine/direct_engine.h"
#include "engine/reference_engine.h"
#include "htl/binder.h"
#include "htl/classifier.h"
#include "htl/parser.h"
#include "htl/rewriter.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace htl {

Retriever::Retriever(const MetadataStore* store, QueryOptions options)
    : store_(store), options_(options) {
  HTL_CHECK(store != nullptr);
}

Result<FormulaPtr> Retriever::Prepare(std::string_view query_text) const {
  HTL_ASSIGN_OR_RETURN(FormulaPtr f, ParseFormula(query_text));
  HTL_RETURN_IF_ERROR(Bind(f.get()));
  return Rewrite(std::move(f));
}

DirectEngine& Retriever::EngineFor(MetadataStore::VideoId video) {
  auto it = engines_.find(video);
  if (it == engines_.end()) {
    it = engines_
             .emplace(video,
                      std::make_unique<DirectEngine>(&store_->Video(video), options_))
             .first;
  }
  return *it->second;
}

Result<SimilarityList> Retriever::EvaluateList(MetadataStore::VideoId video_id, int level,
                                               const Formula& query) {
  const VideoTree& video = store_->Video(video_id);
  if (level > video.num_levels()) {
    return SimilarityList(MaxSimilarity(query));  // No such level: no hits.
  }
  // The direct engine covers the extended conjunctive class plus the
  // disjunction and closed-negation extensions; only the constructs it
  // reports Unimplemented for (negation over free variables, two-variable
  // comparisons) drop to the exponential reference evaluator.
  Result<SimilarityList> direct = EngineFor(video_id).EvaluateList(level, query);
  if (direct.ok() || direct.status().code() != StatusCode::kUnimplemented) {
    return direct;
  }
  ReferenceEngine reference(&video, options_);
  return reference.EvaluateList(level, query);
}

namespace {

// Global ranking: descending fraction, ties by video then segment id.
void RankAndTrim(std::vector<SegmentHit>& all, int64_t k) {
  std::stable_sort(all.begin(), all.end(), [](const SegmentHit& a, const SegmentHit& b) {
    if (a.sim.fraction() != b.sim.fraction()) return a.sim.fraction() > b.sim.fraction();
    if (a.video != b.video) return a.video < b.video;
    return a.segment < b.segment;
  });
  if (static_cast<int64_t>(all.size()) > k) all.resize(static_cast<size_t>(k));
}

}  // namespace

Result<std::vector<SegmentHit>> Retriever::TopSegments(const Formula& query, int level,
                                                       int64_t k) {
  std::vector<SegmentHit> all;
  for (MetadataStore::VideoId v = 1; v <= store_->num_videos(); ++v) {
    HTL_ASSIGN_OR_RETURN(SimilarityList list, EvaluateList(v, level, query));
    // Keep at most k per video before the global merge.
    for (const RankedSegment& rs : TopKSegments(list, k)) {
      all.push_back(SegmentHit{v, rs.id, rs.sim});
    }
  }
  RankAndTrim(all, k);
  return all;
}

Result<std::vector<SegmentHit>> Retriever::TopSegmentsAtNamedLevel(
    const Formula& query, const std::string& level_name, int64_t k) {
  std::vector<SegmentHit> all;
  for (MetadataStore::VideoId v = 1; v <= store_->num_videos(); ++v) {
    Result<int> level = store_->Video(v).LevelByName(level_name);
    if (!level.ok()) continue;  // This video has no such level.
    HTL_ASSIGN_OR_RETURN(SimilarityList list, EvaluateList(v, level.value(), query));
    for (const RankedSegment& rs : TopKSegments(list, k)) {
      all.push_back(SegmentHit{v, rs.id, rs.sim});
    }
  }
  RankAndTrim(all, k);
  return all;
}

Result<std::vector<SegmentHit>> Retriever::TopSegmentsAtNamedLevel(
    std::string_view query_text, const std::string& level_name, int64_t k) {
  HTL_ASSIGN_OR_RETURN(FormulaPtr f, Prepare(query_text));
  return TopSegmentsAtNamedLevel(*f, level_name, k);
}

Result<std::vector<SegmentHit>> Retriever::TopSegments(std::string_view query_text,
                                                       int level, int64_t k) {
  HTL_ASSIGN_OR_RETURN(FormulaPtr f, Prepare(query_text));
  return TopSegments(*f, level, k);
}

Result<std::vector<VideoHit>> Retriever::TopVideos(const Formula& query, int64_t k) {
  std::vector<VideoHit> all;
  for (MetadataStore::VideoId v = 1; v <= store_->num_videos(); ++v) {
    const VideoTree& video = store_->Video(v);
    Sim sim;
    Result<Sim> direct = EngineFor(v).EvaluateVideo(query);
    if (direct.ok()) {
      sim = direct.value();
    } else if (direct.status().code() == StatusCode::kUnimplemented) {
      ReferenceEngine reference(&video, options_);
      HTL_ASSIGN_OR_RETURN(sim, reference.EvaluateVideo(query));
    } else {
      return direct.status();
    }
    if (sim.actual > 0) all.push_back(VideoHit{v, sim});
  }
  std::stable_sort(all.begin(), all.end(), [](const VideoHit& a, const VideoHit& b) {
    if (a.sim.fraction() != b.sim.fraction()) return a.sim.fraction() > b.sim.fraction();
    return a.video < b.video;
  });
  if (static_cast<int64_t>(all.size()) > k) all.resize(static_cast<size_t>(k));
  return all;
}

Result<std::vector<VideoHit>> Retriever::TopVideos(std::string_view query_text,
                                                   int64_t k) {
  HTL_ASSIGN_OR_RETURN(FormulaPtr f, Prepare(query_text));
  return TopVideos(*f, k);
}

}  // namespace htl
