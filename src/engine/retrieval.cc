#include "engine/retrieval.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "cache/sim_list_cache.h"
#include "engine/direct_engine.h"
#include "engine/query_cache.h"
#include "engine/reference_engine.h"
#include "htl/binder.h"
#include "htl/bound.h"
#include "htl/classifier.h"
#include "htl/fingerprint.h"
#include "htl/parser.h"
#include "htl/rewriter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_point.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace htl {

std::string RetrievalReport::ToString() const {
  std::string out = StrCat("evaluated ", videos_evaluated, ", failed ", videos_failed,
                           ", degraded-to-reference ", videos_degraded, ", pruned ",
                           videos_pruned);
  for (const ShardFailure& sf : shard_failures) {
    out += StrCat("; shard ", sf.shard, " lost videos [", sf.first_video, ", ",
                  sf.last_video, "]: ", sf.status.ToString());
  }
  for (const VideoFailure& f : failures) {
    out += StrCat("; video ", f.video, ": ", f.status.ToString());
  }
  for (const obs::QueryProfile::FaultTrip& trip : profile.fault_trips) {
    out += StrCat("; fault trip ", trip.point);
  }
  return out;
}

Retriever::Retriever(const MetadataStore* store, QueryOptions options)
    : store_(store), options_(options) {
  HTL_CHECK(store != nullptr);
  if (options_.cache_mode != CacheMode::kOff) {
    caches_ = std::make_unique<QueryCaches>(options_);
    options_fp_ = OptionsFingerprint(options_);
  }
}

Retriever::~Retriever() = default;

Result<FormulaPtr> Retriever::Prepare(std::string_view query_text) const {
  HTL_ASSIGN_OR_RETURN(FormulaPtr f, ParseFormula(query_text));
  HTL_RETURN_IF_ERROR(Bind(f.get()));
  return Rewrite(std::move(f));
}

Retriever::VideoEngine& Retriever::EngineFor(MetadataStore::VideoId video) {
  MutexLock lock(&engines_mu_);
  auto it = engines_.find(video);
  if (it == engines_.end()) {
    it = engines_.emplace(video, std::make_unique<VideoEngine>()).first;
  }
  return *it->second;
}

DirectEngine& Retriever::EngineLocked(VideoEngine& slot, MetadataStore::VideoId video,
                                      uint64_t epoch) {
  if (slot.engine == nullptr || slot.built_epoch != epoch) {
    // Absent, or built against an older store generation: its VideoTree
    // pointer and per-formula caches may both be invalid. Rebuild.
    slot.engine = std::make_unique<DirectEngine>(&store_->Video(video), options_);
    slot.built_epoch = epoch;
    if (caches_ != nullptr) slot.engine->set_list_cache(&caches_->lists(), video);
  }
  slot.engine->set_cache_epoch(epoch);
  return *slot.engine;
}

int Retriever::EffectiveWorkers() const {
  int workers = options_.parallelism > 0 ? options_.parallelism
                                         : ThreadPool::DefaultParallelism();
  const int64_t num_videos = store_->num_videos();
  if (workers > num_videos) workers = static_cast<int>(num_videos);
  return workers < 1 ? 1 : workers;
}

std::shared_ptr<const VideoStats> Retriever::StatsFor(MetadataStore::VideoId video,
                                                      const VideoTree& tree,
                                                      uint64_t epoch) {
  VideoStatsSlot* slot;
  {
    MutexLock lock(&stats_mu_);
    auto it = stats_.find(video);
    if (it == stats_.end()) {
      it = stats_.emplace(video, std::make_unique<VideoStatsSlot>()).first;
    }
    slot = it->second.get();  // Map nodes are stable across later insertions.
  }
  MutexLock lock(&slot->mu);
  if (slot->stats == nullptr || slot->built_epoch != epoch) {
    slot->stats = std::make_shared<const VideoStats>(VideoStats::Build(tree));
    slot->built_epoch = epoch;
  }
  return slot->stats;
}

Result<double> Retriever::BoundForVideo(const Formula& query,
                                        MetadataStore::VideoId video,
                                        const VideoTree& tree, int level,
                                        uint64_t epoch) {
  // An injected failure (any code, even an abort-shaped one) degrades to
  // full evaluation at the caller: the bound is advisory, never load-bearing.
  HTL_FAULT_POINT("engine.bound_compute");
  HTL_OBS_COUNT("engine.prune.bound_checks", 1);
  // A level past this video's hierarchy evaluates to an empty list; return
  // the trivial bound so the video still evaluates and per-video counts
  // stay aligned with the unpruned run.
  if (level > tree.num_levels()) return 1.0;
  std::shared_ptr<const VideoStats> stats = StatsFor(video, tree, epoch);
  BoundOptions bound_options;
  bound_options.fuzzy_and = options_.and_semantics == AndSemantics::kFuzzyMin;
  const double ub = UpperBoundFraction(query, tree, *stats, level, bound_options);
  if (obs::MetricsRegistry::Enabled()) {
    static obs::Histogram* bound_hist =
        obs::MetricsRegistry::Instance().GetHistogram(
            "engine.prune.bound_permille", {0, 100, 250, 500, 750, 900, 1000});
    bound_hist->Observe(static_cast<int64_t>(ub * 1000.0));
  }
  return ub;
}

Result<SimilarityList> Retriever::EvaluateList(MetadataStore::VideoId video_id, int level,
                                               const Formula& query, ExecContext* ctx,
                                               bool* degraded) {
  if (degraded != nullptr) *degraded = false;
  const VideoTree& video = store_->Video(video_id);
  if (level > video.num_levels()) {
    return SimilarityList(MaxSimilarity(query));  // No such level: no hits.
  }
  // The direct engine covers the extended conjunctive class plus the
  // disjunction and closed-negation extensions; only the constructs it
  // reports Unimplemented for (negation over free variables, two-variable
  // comparisons) drop to the exponential reference evaluator.
  {
    VideoEngine& slot = EngineFor(video_id);
    MutexLock lock(&slot.mu);
    DirectEngine& engine = EngineLocked(slot, video_id, store_->epoch());
    engine.set_exec_context(ctx);
    Result<SimilarityList> direct = engine.EvaluateList(level, query);
    engine.set_exec_context(nullptr);
    if (direct.ok() || direct.status().code() != StatusCode::kUnimplemented) {
      return direct;
    }
  }
  if (degraded != nullptr) *degraded = true;
  ReferenceEngine reference(&video, options_);
  reference.set_exec_context(ctx);
  return reference.EvaluateList(level, query);
}

namespace {

// Global ranking: descending fraction, ties by video then segment id.
void RankAndTrim(std::vector<SegmentHit>& all, int64_t k) {
  std::stable_sort(all.begin(), all.end(), [](const SegmentHit& a, const SegmentHit& b) {
    if (a.sim.fraction() != b.sim.fraction()) return a.sim.fraction() > b.sim.fraction();
    if (a.video != b.video) return a.video < b.video;
    return a.segment < b.segment;
  });
  if (static_cast<int64_t>(all.size()) > k) all.resize(static_cast<size_t>(k));
}

// Strict wrapper semantics: a degraded run surfaces its first per-video
// error; deadline/cancel already propagated as the call's own status.
Status FirstFailure(const RetrievalReport& report) {
  if (report.failures.empty()) return Status::OK();
  return report.failures.front().status;
}

// Shared plumbing behind the *Profiled entry points: attach a fresh trace
// to the effective context (a local unlimited one when the caller passed
// null), make it the thread's current trace so fault points report into it,
// run `body(ctx, trace)`, and move the finished profile into the result's
// report. The context's previous trace is restored on every path.
template <typename Body>
auto RunProfiled(ExecContext* ctx, const Body& body)
    -> decltype(body(ctx, static_cast<obs::QueryTrace*>(nullptr))) {
  ExecContext local;
  ExecContext* use = ctx != nullptr ? ctx : &local;
  obs::QueryTrace trace;
  obs::QueryTrace* saved = use->trace();
  use->set_trace(&trace);
  obs::ScopedTraceAttach attach(&trace);
  auto result = body(use, &trace);
  use->set_trace(saved);
  if (!result.ok()) return result.status();
  auto out = std::move(result).value();
  out.report.profile = trace.Finish();
  return out;
}

// Folds one chunk's partial result into `out`. Chunks cover contiguous
// ascending video ranges and merge in chunk order, so the concatenated hit
// and failure sequences match the serial loop exactly.
template <typename Part>
void MergeChunk(Part& out, Part&& part) {
  out.report.videos_evaluated += part.report.videos_evaluated;
  out.report.videos_failed += part.report.videos_failed;
  out.report.videos_degraded += part.report.videos_degraded;
  out.report.videos_pruned += part.report.videos_pruned;
  for (RetrievalReport::VideoFailure& f : part.report.failures) {
    out.report.failures.push_back(std::move(f));
  }
  for (MetadataStore::VideoId v : part.report.pruned_videos) {
    out.report.pruned_videos.push_back(v);
  }
  for (RetrievalReport::ShardFailure& sf : part.report.shard_failures) {
    out.report.shard_failures.push_back(std::move(sf));
  }
  for (auto& hit : part.hits) out.hits.push_back(std::move(hit));
}

// Part types for ForEachVideo with pruning: the retrieval result plus the
// chunk/shard-local scratch — a min-heap of the best k hit fractions seen
// by this part. Once the heap is full its root is the part's k-th best,
// which is a valid lower bound on the global k-th best (the k-th largest of
// a subset never exceeds the k-th largest of the whole), so it can be
// published to the shared floor.
struct SegmentPart : SegmentRetrieval {
  std::vector<double> best;
};
struct VideoPart : VideoRetrieval {
  std::vector<double> best;
};

// Push one retained hit fraction into the local top-k min-heap.
void PushBest(std::vector<double>& best, int64_t k, double fraction) {
  if (static_cast<int64_t>(best.size()) < k) {
    best.push_back(fraction);
    std::push_heap(best.begin(), best.end(), std::greater<>());
    return;
  }
  if (fraction <= best.front()) return;
  std::pop_heap(best.begin(), best.end(), std::greater<>());
  best.back() = fraction;
  std::push_heap(best.begin(), best.end(), std::greater<>());
}

// The monotonically-rising top-k floor one query's chunks and shards share
// (CAS-max). Relaxed ordering is sound: a stale read only weakens pruning —
// a video evaluates that could have been skipped — never strengthens it,
// because published values are true lower bounds on the final k-th-best
// fraction regardless of when they are observed.
class PruneFloor {
 public:
  double Get() const { return floor_.load(std::memory_order_relaxed); }
  void Publish(double fraction) {
    double cur = floor_.load(std::memory_order_relaxed);
    while (cur < fraction &&
           !floor_.compare_exchange_weak(cur, fraction, std::memory_order_relaxed)) {
    }
    HTL_DCHECK(Get() >= fraction) << "prune floor moved backwards";
  }

 private:
  std::atomic<double> floor_{0.0};
};

// The store-wide per-video driver shared by the segment and whole-video
// entry points. `eval_one(v, ctx, trace, part)` evaluates video `v` into
// `part` and returns only query-abort errors; per-video failures are
// recorded in the part's report.
//
// Unsharded (`shards <= 1`), `workers <= 1` (or a 0/1-video store) runs the
// historical serial loop on the calling thread — bit for bit, including a
// possibly-null `ctx`. Otherwise the video range splits into contiguous
// pieces — corpus shards when `shards > 1`, else `workers` parallel chunks —
// scattered through ParallelFor (the caller participates; a sharded serial
// run keeps the pool null, so ParallelFor degrades to an in-order loop on
// the caller). Each piece runs under a child ExecContext chained to a
// per-call group context: children copy the caller's deadline and budgets,
// and the first aborting worker records its status and cancels the group,
// draining the other pieces at their next poll without touching the
// caller's own context. A sharded piece whose scatter dispatch faults
// ("engine.shard_dispatch") degrades to a truthful ShardFailure — its range
// goes unevaluated, the other shards are unaffected. Piece parts merge in
// piece order, so the gathered output is identical to the serial loop's;
// per-piece traces (when profiling) are stitched under the caller's
// innermost open span, also in piece order.
template <typename Part, typename EvalOne>
Status ForEachVideo(int64_t num_videos, ExecContext* ctx, int workers, int shards,
                    ThreadPool* pool, const EvalOne& eval_one, Part& out) {
  obs::QueryTrace* tr = ctx != nullptr ? ctx->trace() : nullptr;
  const bool sharded = shards > 1 && num_videos > 0;
  if (!sharded && (workers <= 1 || num_videos <= 1)) {
    for (MetadataStore::VideoId v = 1; v <= num_videos; ++v) {
      HTL_CHECK_EXEC(ctx);  // Deadline/cancel abort the whole call.
      HTL_RETURN_IF_ERROR(eval_one(v, ctx, tr, out));
    }
    return Status::OK();
  }
  // Resolved here, not by the caller, so a serial query (the parallelism=1
  // contract, and every query on a 1-CPU host) never instantiates the
  // shared pool's worker threads.
  if (workers > 1) {
    if (pool == nullptr) pool = ThreadPool::Shared();
  } else {
    pool = nullptr;  // Sharded serial: in-order shard loop on the caller.
  }

  const int64_t pieces = sharded ? std::min<int64_t>(shards, num_videos)
                                 : std::min<int64_t>(workers, num_videos);
  // Even contiguous partition: piece c covers [PieceBegin(c), PieceBegin(c+1)).
  const auto piece_begin = [num_videos, pieces](int64_t c) {
    return 1 + c * num_videos / pieces;
  };

  // The group context fans cancellation out to every worker child without
  // touching the caller's context (whose cancel flag stays the caller's to
  // set); children observe the group through the parent chain.
  ExecContext group(ctx);
  std::vector<Part> parts(static_cast<size_t>(pieces));
  // QueryTrace is neither copyable nor movable, hence the indirection.
  std::vector<std::unique_ptr<obs::QueryTrace>> worker_traces;
  if (tr != nullptr) {
    for (int64_t c = 0; c < pieces; ++c) {
      worker_traces.push_back(std::make_unique<obs::QueryTrace>());
    }
  }

  Mutex abort_mu;
  Status first_abort;  // Root-cause abort; guarded by abort_mu.
  std::atomic<bool> aborted{false};

  const Status loop_status = ParallelFor(
      pool, pieces, [&](int64_t c) -> Status {
        ExecContext child(&group);
        obs::QueryTrace* wtr =
            tr != nullptr ? worker_traces[static_cast<size_t>(c)].get() : nullptr;
        child.set_trace(wtr);
        // Fault trips under this worker land in its own trace (or nowhere
        // when unprofiled) — never in another thread's.
        obs::ScopedTraceAttach attach(wtr);
        HTL_OBS_SPAN(wspan, wtr, sharded ? "shard" : "worker");
        wspan.SetUnit(c);
        Part& part = parts[static_cast<size_t>(c)];
        if (sharded && FaultRegistry::Armed()) {
          // By hand rather than HTL_FAULT_POINT: a failed scatter degrades
          // to a truthful partial report (this shard's whole range skipped,
          // named in shard_failures), never a query failure.
          Status dispatch = FaultRegistry::Instance().Hit("engine.shard_dispatch");
          if (!dispatch.ok()) {
            wspan.SetNote(StrCat("shard dispatch failed: ", dispatch.ToString()));
            part.report.shard_failures.push_back(RetrievalReport::ShardFailure{
                static_cast<int>(c), piece_begin(c), piece_begin(c + 1) - 1,
                std::move(dispatch)});
            return Status::OK();
          }
        }
        for (int64_t v = piece_begin(c); v < piece_begin(c + 1); ++v) {
          // Drain once any worker aborted: the merged result is discarded,
          // so finishing the piece would be wasted work.
          if (aborted.load(std::memory_order_relaxed)) return Status::OK();
          Status s = child.Check();
          if (s.ok()) s = eval_one(v, &child, wtr, part);
          if (!s.ok()) {
            {
              MutexLock lock(&abort_mu);
              // Keep the root cause: workers drained by the fan-out fail
              // with the induced Cancelled, which must not mask e.g. the
              // DeadlineExceeded that started the abort.
              if (first_abort.ok()) first_abort = s;
            }
            aborted.store(true, std::memory_order_relaxed);
            group.Cancel();
            return s;
          }
        }
        return Status::OK();
      });

  {
    MutexLock lock(&abort_mu);
    if (!first_abort.ok()) return first_abort;
  }
  HTL_RETURN_IF_ERROR(loop_status);

  if (tr != nullptr) {
    for (std::unique_ptr<obs::QueryTrace>& wt : worker_traces) {
      tr->Adopt(wt->Finish());
    }
  }
  for (Part& part : parts) MergeChunk(out, std::move(part));
  return Status::OK();
}

}  // namespace

template <typename LevelTag, typename ResolveLevel>
Result<SegmentRetrieval> Retriever::RunSegmentQuery(const Formula& query, int64_t k,
                                                    ExecContext* ctx,
                                                    const LevelTag& level_tag,
                                                    const ResolveLevel& resolve_level) {
  if (caches_ == nullptr) return RunSegmentQueryCold(query, k, ctx, resolve_level);
  // One epoch sample governs the whole query: lookups validate against it
  // and the fill is stamped with it, so a mutation slipping in mid-query
  // (a contract violation) can only leave entries a later lookup evicts.
  const uint64_t epoch = store_->epoch();
  const std::string key = StrCat("seg|", level_tag(), "|k", k, "|", options_fp_, "|",
                                 CanonicalFormulaKey(query));
  obs::QueryTrace* tr = ctx != nullptr ? ctx->trace() : nullptr;
  HTL_ASSIGN_OR_RETURN(
      QueryCaches::ResultPtr cached,
      caches_->GetOrRun(key, epoch, ctx, tr, [&]() -> Result<CachedQueryResult> {
        HTL_ASSIGN_OR_RETURN(SegmentRetrieval r,
                             RunSegmentQueryCold(query, k, ctx, resolve_level));
        CachedQueryResult c;
        c.segment_hits = std::move(r.hits);
        c.report = std::move(r.report);
        return c;
      }));
  SegmentRetrieval out;
  out.hits = cached->segment_hits;
  out.report = cached->report;
  return out;
}

template <typename ResolveLevel>
Result<SegmentRetrieval> Retriever::RunSegmentQueryCold(
    const Formula& query, int64_t k, ExecContext* ctx,
    const ResolveLevel& resolve_level) {
  const bool prune = options_.prune && k > 0;
  PruneFloor floor;  // Shared by every chunk/shard of this query.
  SegmentPart out;
  const auto eval_one = [&](MetadataStore::VideoId v, ExecContext* ectx,
                            obs::QueryTrace* etr, SegmentPart& part) -> Status {
    const int level = resolve_level(v);
    if (level < 0) return Status::OK();  // Named level absent: silently skipped.
    if (prune && floor.Get() > 0.0) {
      // Before any budget or span: a pruned video is skipped outright. A
      // bound failure (e.g. the injected engine.bound_compute fault) falls
      // through to full evaluation — pruning only ever gets weaker.
      Result<double> ub =
          BoundForVideo(query, v, store_->Video(v), level, store_->epoch());
      if (ub.ok() && ub.value() < floor.Get() - kBoundSlack) {
        ++part.report.videos_pruned;
        part.report.pruned_videos.push_back(v);
        HTL_OBS_COUNT("engine.prune.videos_pruned", 1);
        return Status::OK();
      }
    }
    if (ectx != nullptr) ectx->BeginUnit();  // Budgets bound each video alone.
    // One span per video; the unit carries the video id (span names stay
    // static so the unprofiled path never allocates).
    HTL_OBS_SPAN(vspan, etr, "video");
    vspan.SetUnit(v);
    bool degraded = false;
    Result<SimilarityList> list = EvaluateList(v, level, query, ectx, &degraded);
    if (vspan.active() && ectx != nullptr) {
      vspan.AddRows(ectx->rows_used());
      vspan.AddTables(ectx->tables_used());
    }
    if (!list.ok()) {
      // A query-wide abort is not a per-video fault: propagate it.
      if (list.status().IsQueryAbort()) return list.status();
      vspan.SetNote(StrCat("failed: ", list.status().ToString()));
      ++part.report.videos_failed;
      part.report.failures.push_back(RetrievalReport::VideoFailure{v, list.status()});
      return Status::OK();
    }
    if (degraded) vspan.SetNote("degraded");
    ++part.report.videos_evaluated;
    if (degraded) ++part.report.videos_degraded;
    // Keep at most k per video before the global merge.
    for (const RankedSegment& rs : TopKSegments(list.value(), k)) {
      part.hits.push_back(SegmentHit{v, rs.id, rs.sim});
      if (prune) PushBest(part.best, k, rs.sim.fraction());
    }
    if (prune && static_cast<int64_t>(part.best.size()) >= k) {
      floor.Publish(part.best.front());
    }
    return Status::OK();
  };
  HTL_RETURN_IF_ERROR(ForEachVideo(store_->num_videos(), ctx, EffectiveWorkers(),
                                   options_.num_shards, options_.thread_pool,
                                   eval_one, out));
  RankAndTrim(out.hits, k);
  SegmentRetrieval result;
  result.hits = std::move(out.hits);
  result.report = std::move(out.report);
  return result;
}

Result<SegmentRetrieval> Retriever::TopSegmentsWithReport(const Formula& query,
                                                          int level, int64_t k,
                                                          ExecContext* ctx) {
  return RunSegmentQuery(query, k, ctx,
                         [level] { return StrCat("lvl", level); },
                         [level](MetadataStore::VideoId) { return level; });
}

Result<SegmentRetrieval> Retriever::TopSegmentsWithReport(std::string_view query_text,
                                                          int level, int64_t k,
                                                          ExecContext* ctx) {
  HTL_ASSIGN_OR_RETURN(FormulaPtr f, Prepare(query_text));
  return TopSegmentsWithReport(*f, level, k, ctx);
}

Result<SegmentRetrieval> Retriever::TopSegmentsProfiled(const Formula& query, int level,
                                                        int64_t k, ExecContext* ctx) {
  return RunProfiled(ctx, [&](ExecContext* use, obs::QueryTrace* trace)
                              -> Result<SegmentRetrieval> {
    {
      HTL_OBS_SPAN(span, trace, "stage.classify");
      span.SetNote(std::string(FormulaClassName(Classify(query))));
    }
    HTL_OBS_SPAN(span, trace, "stage.execute");
    return TopSegmentsWithReport(query, level, k, use);
  });
}

Result<SegmentRetrieval> Retriever::TopSegmentsProfiled(std::string_view query_text,
                                                        int level, int64_t k,
                                                        ExecContext* ctx) {
  return RunProfiled(ctx, [&](ExecContext* use, obs::QueryTrace* trace)
                              -> Result<SegmentRetrieval> {
    FormulaPtr f;
    {
      HTL_OBS_SPAN(span, trace, "stage.parse");
      HTL_ASSIGN_OR_RETURN(f, ParseFormula(query_text));
    }
    {
      HTL_OBS_SPAN(span, trace, "stage.bind");
      HTL_RETURN_IF_ERROR(Bind(f.get()));
    }
    {
      HTL_OBS_SPAN(span, trace, "stage.rewrite");
      f = Rewrite(std::move(f));
    }
    {
      HTL_OBS_SPAN(span, trace, "stage.classify");
      span.SetNote(std::string(FormulaClassName(Classify(*f))));
    }
    HTL_OBS_SPAN(span, trace, "stage.execute");
    return TopSegmentsWithReport(*f, level, k, use);
  });
}

Result<std::vector<SegmentHit>> Retriever::TopSegments(const Formula& query, int level,
                                                       int64_t k, ExecContext* ctx) {
  HTL_ASSIGN_OR_RETURN(SegmentRetrieval r, TopSegmentsWithReport(query, level, k, ctx));
  HTL_RETURN_IF_ERROR(FirstFailure(r.report));
  return std::move(r.hits);
}

Result<std::vector<SegmentHit>> Retriever::TopSegments(std::string_view query_text,
                                                       int level, int64_t k,
                                                       ExecContext* ctx) {
  HTL_ASSIGN_OR_RETURN(FormulaPtr f, Prepare(query_text));
  return TopSegments(*f, level, k, ctx);
}

Result<SegmentRetrieval> Retriever::TopSegmentsAtNamedLevelWithReport(
    const Formula& query, const std::string& level_name, int64_t k, ExecContext* ctx) {
  return RunSegmentQuery(query, k, ctx,
                         [&level_name] { return StrCat("name:", level_name); },
                         [this, &level_name](MetadataStore::VideoId v) {
                           Result<int> level = store_->Video(v).LevelByName(level_name);
                           return level.ok() ? level.value() : -1;
                         });
}

Result<std::vector<SegmentHit>> Retriever::TopSegmentsAtNamedLevel(
    const Formula& query, const std::string& level_name, int64_t k, ExecContext* ctx) {
  HTL_ASSIGN_OR_RETURN(SegmentRetrieval r,
                       TopSegmentsAtNamedLevelWithReport(query, level_name, k, ctx));
  HTL_RETURN_IF_ERROR(FirstFailure(r.report));
  return std::move(r.hits);
}

Result<std::vector<SegmentHit>> Retriever::TopSegmentsAtNamedLevel(
    std::string_view query_text, const std::string& level_name, int64_t k,
    ExecContext* ctx) {
  HTL_ASSIGN_OR_RETURN(FormulaPtr f, Prepare(query_text));
  return TopSegmentsAtNamedLevel(*f, level_name, k, ctx);
}

Result<VideoRetrieval> Retriever::TopVideosWithReport(const Formula& query, int64_t k,
                                                      ExecContext* ctx) {
  if (caches_ == nullptr) return RunVideoQueryCold(query, k, ctx);
  const uint64_t epoch = store_->epoch();
  const std::string key =
      StrCat("vid|k", k, "|", options_fp_, "|", CanonicalFormulaKey(query));
  obs::QueryTrace* tr = ctx != nullptr ? ctx->trace() : nullptr;
  HTL_ASSIGN_OR_RETURN(
      QueryCaches::ResultPtr cached,
      caches_->GetOrRun(key, epoch, ctx, tr, [&]() -> Result<CachedQueryResult> {
        HTL_ASSIGN_OR_RETURN(VideoRetrieval r, RunVideoQueryCold(query, k, ctx));
        CachedQueryResult c;
        c.video_hits = std::move(r.hits);
        c.report = std::move(r.report);
        return c;
      }));
  VideoRetrieval out;
  out.hits = cached->video_hits;
  out.report = cached->report;
  return out;
}

Result<VideoRetrieval> Retriever::RunVideoQueryCold(const Formula& query, int64_t k,
                                                    ExecContext* ctx) {
  const bool prune = options_.prune && k > 0;
  PruneFloor floor;  // Shared by every chunk/shard of this query.
  VideoPart out;
  const auto eval_one = [&](MetadataStore::VideoId v, ExecContext* ectx,
                            obs::QueryTrace* etr, VideoPart& part) -> Status {
    if (prune && floor.Get() > 0.0) {
      // Whole-video queries score the root, so the bound is taken at the
      // top level; a bound failure degrades to full evaluation.
      Result<double> ub = BoundForVideo(query, v, store_->Video(v), 1, store_->epoch());
      if (ub.ok() && ub.value() < floor.Get() - kBoundSlack) {
        ++part.report.videos_pruned;
        part.report.pruned_videos.push_back(v);
        HTL_OBS_COUNT("engine.prune.videos_pruned", 1);
        return Status::OK();
      }
    }
    if (ectx != nullptr) ectx->BeginUnit();
    HTL_OBS_SPAN(vspan, etr, "video");
    vspan.SetUnit(v);
    const VideoTree& video = store_->Video(v);
    Sim sim;
    bool degraded = false;
    Status video_error = Status::OK();
    {
      VideoEngine& slot = EngineFor(v);
      MutexLock lock(&slot.mu);
      DirectEngine& engine = EngineLocked(slot, v, store_->epoch());
      engine.set_exec_context(ectx);
      Result<Sim> direct = engine.EvaluateVideo(query);
      engine.set_exec_context(nullptr);
      if (direct.ok()) {
        sim = direct.value();
      } else if (direct.status().code() == StatusCode::kUnimplemented) {
        degraded = true;
      } else {
        video_error = direct.status();
      }
    }
    if (degraded) {
      ReferenceEngine reference(&video, options_);
      reference.set_exec_context(ectx);
      Result<Sim> ref = reference.EvaluateVideo(query);
      if (ref.ok()) {
        sim = ref.value();
      } else {
        video_error = ref.status();
      }
    }
    if (vspan.active() && ectx != nullptr) {
      vspan.AddRows(ectx->rows_used());
      vspan.AddTables(ectx->tables_used());
    }
    if (!video_error.ok()) {
      if (video_error.IsQueryAbort()) return video_error;
      vspan.SetNote(StrCat("failed: ", video_error.ToString()));
      ++part.report.videos_failed;
      part.report.failures.push_back(RetrievalReport::VideoFailure{v, video_error});
      return Status::OK();
    }
    if (degraded) vspan.SetNote("degraded");
    ++part.report.videos_evaluated;
    if (degraded) ++part.report.videos_degraded;
    if (sim.actual > 0) {
      part.hits.push_back(VideoHit{v, sim});
      if (prune) {
        PushBest(part.best, k, sim.fraction());
        if (static_cast<int64_t>(part.best.size()) >= k) {
          floor.Publish(part.best.front());
        }
      }
    }
    return Status::OK();
  };
  HTL_RETURN_IF_ERROR(ForEachVideo(store_->num_videos(), ctx, EffectiveWorkers(),
                                   options_.num_shards, options_.thread_pool,
                                   eval_one, out));
  std::stable_sort(out.hits.begin(), out.hits.end(),
                   [](const VideoHit& a, const VideoHit& b) {
                     if (a.sim.fraction() != b.sim.fraction()) {
                       return a.sim.fraction() > b.sim.fraction();
                     }
                     return a.video < b.video;
                   });
  if (static_cast<int64_t>(out.hits.size()) > k) {
    out.hits.resize(static_cast<size_t>(k));
  }
  VideoRetrieval result;
  result.hits = std::move(out.hits);
  result.report = std::move(out.report);
  return result;
}

Result<VideoRetrieval> Retriever::TopVideosProfiled(const Formula& query, int64_t k,
                                                    ExecContext* ctx) {
  return RunProfiled(ctx, [&](ExecContext* use, obs::QueryTrace* trace)
                              -> Result<VideoRetrieval> {
    {
      HTL_OBS_SPAN(span, trace, "stage.classify");
      span.SetNote(std::string(FormulaClassName(Classify(query))));
    }
    HTL_OBS_SPAN(span, trace, "stage.execute");
    return TopVideosWithReport(query, k, use);
  });
}

Result<std::vector<VideoHit>> Retriever::TopVideos(const Formula& query, int64_t k,
                                                   ExecContext* ctx) {
  HTL_ASSIGN_OR_RETURN(VideoRetrieval r, TopVideosWithReport(query, k, ctx));
  HTL_RETURN_IF_ERROR(FirstFailure(r.report));
  return std::move(r.hits);
}

Result<std::vector<VideoHit>> Retriever::TopVideos(std::string_view query_text,
                                                   int64_t k, ExecContext* ctx) {
  HTL_ASSIGN_OR_RETURN(FormulaPtr f, Prepare(query_text));
  return TopVideos(*f, k, ctx);
}

}  // namespace htl
