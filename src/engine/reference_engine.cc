#include "engine/reference_engine.h"

#include <algorithm>
#include <set>

#include "picture/atomic.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace htl {

namespace {

// The existential domain at one level: every object occurring there, plus
// one id occurring nowhere (the canonical "absent" binding — it makes
// negated presence and partial matches exact).
std::vector<ObjectId> ExistsDomain(const VideoTree& video, int level) {
  std::set<ObjectId> ids;
  ObjectId max_id = 0;
  const int64_t n = video.NumSegments(level);
  for (SegmentId s = 1; s <= n; ++s) {
    for (const ObjectAppearance& obj : video.Meta(level, s).objects()) {
      ids.insert(obj.id);
      max_id = std::max(max_id, obj.id);
    }
  }
  std::vector<ObjectId> out(ids.begin(), ids.end());
  out.push_back(max_id + 1);  // Absent representative.
  return out;
}

// True when the constraint mentions an attribute variable; those are "hard"
// within an atomic conjunction (see picture_system.h).
bool IsRangeConstraint(const Constraint& c) {
  if (c.kind != Constraint::Kind::kCompare) return false;
  return c.lhs.kind == AttrTerm::Kind::kVariable ||
         c.rhs.kind == AttrTerm::Kind::kVariable;
}

}  // namespace

ReferenceEngine::ReferenceEngine(const VideoTree* video, QueryOptions options)
    : video_(video), options_(options) {
  HTL_CHECK(video != nullptr);
}

Result<Sim> ReferenceEngine::Evaluate(int level, const Interval& bounds, SegmentId pos,
                                      const Formula& f, const EvalEnv& env) {
  HTL_ASSIGN_OR_RETURN(double a, Actual(level, bounds, pos, f, env));
  return Sim{a, MaxSimilarity(f)};
}

Result<SimilarityList> ReferenceEngine::EvaluateList(int level, const Formula& f) {
  if (level < 1 || level > video_->num_levels()) {
    return Status::OutOfRange(StrCat("level ", level, " out of range"));
  }
  const Interval bounds{1, video_->NumSegments(level)};
  std::vector<double> dense;
  dense.reserve(static_cast<size_t>(bounds.size()));
  EvalEnv env;
  for (SegmentId pos = bounds.begin; pos <= bounds.end; ++pos) {
    HTL_ASSIGN_OR_RETURN(double a, Actual(level, bounds, pos, f, env));
    dense.push_back(a);
  }
  return SimilarityList::FromDense(dense, MaxSimilarity(f), bounds.begin);
}

Result<Sim> ReferenceEngine::EvaluateVideo(const Formula& f) {
  EvalEnv env;
  return Evaluate(1, Interval{1, 1}, 1, f, env);
}

Result<double> ReferenceEngine::Actual(int level, const Interval& bounds, SegmentId pos,
                                       const Formula& f, const EvalEnv& env) {
  HTL_CHECK(bounds.Contains(pos));
  // Every (formula, position) recursion step polls the context: the
  // exponential evaluator must stay interruptible and depth-bounded.
  DepthScope depth(exec_);
  HTL_RETURN_IF_ERROR(depth.status());
  // Atomic conjunctions get the dedicated weighted-partial-match scoring
  // with hard attribute-variable constraints; this is the semantics the
  // picture system implements, applied at the maximal atomic subtree (a
  // lone constraint is the degenerate case).
  if (f.kind != FormulaKind::kConstraint && IsAtomicShape(f)) {
    HTL_ASSIGN_OR_RETURN(AtomicFormula atomic, ExtractAtomic(f));
    const SegmentMeta& meta = video_->Meta(level, pos);
    // Enumerate local existential bindings (odometer over the domain).
    const std::vector<ObjectId> domain = ExistsDomain(*video_, level);
    const size_t k = atomic.exists_vars.size();
    std::vector<size_t> odo(k, 0);
    double best = 0;
    while (true) {
      EvalEnv local = env;
      for (size_t i = 0; i < k; ++i) {
        local.objects[atomic.exists_vars[i]] = domain[odo[i]];
      }
      double score = 0;
      bool hard_fail = false;
      for (const Constraint& c : atomic.constraints) {
        const bool sat = ConstraintSatisfied(c, meta, local);
        if (sat) {
          score += c.weight;
        } else if (IsRangeConstraint(c)) {
          hard_fail = true;
          break;
        }
      }
      if (!hard_fail) best = std::max(best, score);
      size_t i = 0;
      for (; i < k; ++i) {
        if (++odo[i] < domain.size()) break;
        odo[i] = 0;
      }
      if (k == 0 || i == k) break;
    }
    return best;
  }

  switch (f.kind) {
    case FormulaKind::kTrue:
      return 1.0;
    case FormulaKind::kFalse:
      return 0.0;
    case FormulaKind::kConstraint: {
      const SegmentMeta& meta = video_->Meta(level, pos);
      return ConstraintSatisfied(f.constraint, meta, env) ? f.constraint.weight : 0.0;
    }
    case FormulaKind::kAnd: {
      HTL_ASSIGN_OR_RETURN(double a, Actual(level, bounds, pos, *f.left, env));
      HTL_ASSIGN_OR_RETURN(double b, Actual(level, bounds, pos, *f.right, env));
      if (options_.and_semantics == AndSemantics::kFuzzyMin) {
        const double mg = MaxSimilarity(*f.left);
        const double mh = MaxSimilarity(*f.right);
        const double frac_g = mg > 0 ? a / mg : 0.0;
        const double frac_h = mh > 0 ? b / mh : 0.0;
        return std::min(frac_g, frac_h) * (mg + mh);
      }
      return a + b;
    }
    case FormulaKind::kOr: {
      HTL_ASSIGN_OR_RETURN(double a, Actual(level, bounds, pos, *f.left, env));
      HTL_ASSIGN_OR_RETURN(double b, Actual(level, bounds, pos, *f.right, env));
      return std::max(a, b);
    }
    case FormulaKind::kNot: {
      HTL_ASSIGN_OR_RETURN(double a, Actual(level, bounds, pos, *f.left, env));
      return MaxSimilarity(*f.left) - a;
    }
    case FormulaKind::kNext: {
      if (pos + 1 > bounds.end) return 0.0;
      return Actual(level, bounds, pos + 1, *f.left, env);
    }
    case FormulaKind::kEventually: {
      double best = 0;
      for (SegmentId u = pos; u <= bounds.end; ++u) {
        HTL_ASSIGN_OR_RETURN(double a, Actual(level, bounds, u, *f.left, env));
        best = std::max(best, a);
      }
      return best;
    }
    case FormulaKind::kUntil: {
      const double g_max = MaxSimilarity(*f.left);
      double best = 0;
      for (SegmentId u = pos; u <= bounds.end; ++u) {
        HTL_ASSIGN_OR_RETURN(double h, Actual(level, bounds, u, *f.right, env));
        best = std::max(best, h);
        HTL_ASSIGN_OR_RETURN(double g, Actual(level, bounds, u, *f.left, env));
        const double frac = g_max > 0 ? g / g_max : 0.0;
        if (frac + 1e-12 < options_.until_threshold) break;
      }
      return best;
    }
    case FormulaKind::kExists: {
      const std::vector<ObjectId> domain = ExistsDomain(*video_, level);
      const size_t k = f.vars.size();
      std::vector<size_t> odo(k, 0);
      double best = 0;
      while (true) {
        EvalEnv local = env;
        for (size_t i = 0; i < k; ++i) local.objects[f.vars[i]] = domain[odo[i]];
        HTL_ASSIGN_OR_RETURN(double a, Actual(level, bounds, pos, *f.left, local));
        best = std::max(best, a);
        size_t i = 0;
        for (; i < k; ++i) {
          if (++odo[i] < domain.size()) break;
          odo[i] = 0;
        }
        if (k == 0 || i == k) break;
      }
      return best;
    }
    case FormulaKind::kFreeze: {
      const SegmentMeta& meta = video_->Meta(level, pos);
      EvalEnv local = env;
      local.attrs[f.freeze_var] = EvalTerm(f.freeze_term, meta, env);
      return Actual(level, bounds, pos, *f.left, local);
    }
    case FormulaKind::kLevel: {
      int target = 0;
      switch (f.level.kind) {
        case LevelSpec::Kind::kNextLevel:
          target = level + 1;
          break;
        case LevelSpec::Kind::kAbsolute:
          target = f.level.level;
          break;
        case LevelSpec::Kind::kNamed: {
          HTL_ASSIGN_OR_RETURN(target, video_->LevelByName(f.level.name));
          break;
        }
      }
      if (target <= level || target > video_->num_levels()) {
        if (f.level.kind == LevelSpec::Kind::kNextLevel &&
            target > video_->num_levels()) {
          return 0.0;  // Leaf segments have no children.
        }
        return Status::InvalidArgument(
            StrCat("level operator targets level ", target, " from level ", level));
      }
      const Interval seq = video_->DescendantsAtLevel(level, pos, target);
      if (seq.empty()) return 0.0;
      return Actual(target, seq, seq.begin, *f.left, env);
    }
  }
  return Status::Internal("unhandled formula kind");
}

}  // namespace htl
