#ifndef HTL_ENGINE_QUERY_OPTIONS_H_
#define HTL_ENGINE_QUERY_OPTIONS_H_

#include <cstdint>

#include "picture/picture_system.h"

namespace htl {

class ThreadPool;

/// Whether and how the retriever's caches participate in a query (see
/// DESIGN.md "Result and sub-formula caching"). Off is the default: the
/// historical recompute-everything path, bit for bit, with no cache
/// machinery constructed at all.
enum class CacheMode {
  kOff,        // No caches; no key derivation; zero overhead.
  kRead,       // Serve hits, never fill (warm-only readers).
  kReadWrite,  // Serve hits and publish fills (single-flighted).
};

/// How the `and` connective combines similarity values — the paper's
/// section 5 names "other similarity functions" as future work; both
/// engines implement two:
enum class AndSemantics {
  /// The paper's semantics (section 2.5): actuals and maxima add, so the
  /// fraction is the weighted average of the operands' fractions.
  kSum,
  /// Fuzzy conjunction: the fraction is the minimum of the operands'
  /// fractions (actual' = min(frac_g, frac_h) * (max_g + max_h), keeping
  /// max a function of the formula alone). Conjunctions *inside* atomic
  /// formulas always use weighted-sum partial matching — that is the
  /// picture system's scoring — regardless of this knob.
  kFuzzyMin,
};

/// Which executor evaluates formulas inside DirectEngine. Both produce
/// bit-identical results, statuses, operator trace spans and budget charges
/// (proven by tests/property/vm_differential_test.cc); they differ only in
/// speed. The compiled VM is the default; the tree-walk interpreter remains
/// as the executable specification and differential oracle.
enum class EngineMode {
  kInterpret,     // Tree-walk interpreter (the reference path).
  kVm,            // Compiled register bytecode over an arena (default).
  kDifferential,  // Run both, compare bit for bit, Internal on divergence.
};

/// Options shared by the direct and reference engines.
struct QueryOptions {
  /// The minimum fractional similarity the left operand of `until` must
  /// reach for the temporal chain to extend (section 2.5 defines `until`
  /// via such a threshold; the paper leaves its value a system parameter).
  double until_threshold = 0.5;

  /// Similarity function for non-atomic conjunctions.
  AndSemantics and_semantics = AndSemantics::kSum;

  /// Worker count for per-video parallel retrieval. `1` runs today's serial
  /// path bit-for-bit (same loop, same caller thread, zero pool overhead);
  /// `0` means ThreadPool::DefaultParallelism() (hardware concurrency).
  /// Parallel output is guaranteed identical to serial output — see
  /// DESIGN.md "Parallel execution" for the determinism contract.
  int parallelism = 0;

  /// Pool to run on when parallelism > 1; null means ThreadPool::Shared().
  /// Borrowed, not owned — must outlive queries issued with these options.
  ThreadPool* thread_pool = nullptr;

  /// Result / similarity-list caching (off by default). Cached output is
  /// bit-identical to the cold path — hits replay a complete prior result
  /// of the same store epoch; partial (failed-video) results are never
  /// cached. Hits do not re-charge per-video budgets.
  CacheMode cache_mode = CacheMode::kOff;

  /// Byte capacity of the whole-query result cache (Retriever client).
  int64_t result_cache_bytes = 4 * 1024 * 1024;

  /// Byte capacity of the per-video similarity-list cache (DirectEngine
  /// client, closed sub-formula lists).
  int64_t list_cache_bytes = 8 * 1024 * 1024;

  /// Shard count for both caches (values < 1 clamp to 1).
  int cache_shards = 8;

  /// Executor selection (see EngineMode). Part of the cache fingerprint so
  /// differently-executed results never share cache entries, even though
  /// they are proven identical.
  EngineMode engine_mode = EngineMode::kVm;

  /// Bound-based top-k pruning (off by default): derive a cheap per-video
  /// upper bound on the attainable fractional similarity (htl/bound.h over
  /// VideoStats) and skip whole videos whose bound falls below the running
  /// global top-k floor. Ranked output is bit-identical to the unpruned
  /// path (proven by tests/property/prune_differential_test.cc); skipped
  /// videos are reported in RetrievalReport::videos_pruned/pruned_videos.
  /// See DESIGN.md "Scale-out retrieval".
  bool prune = false;

  /// Corpus shard count for scatter-gather retrieval. Values <= 1 run the
  /// historical per-video loop byte for byte. With N > 1 the video range
  /// splits into N contiguous shards evaluated under child ExecContexts
  /// (serially in shard order when parallelism <= 1, otherwise scattered
  /// over the thread pool); shards share the pruning floor through a
  /// monotonic atomic, and a shard whose dispatch faults degrades to a
  /// truthful partial report (RetrievalReport::shard_failures) instead of
  /// failing the query. Gathered output is identical to the unsharded run.
  int num_shards = 1;

  /// Options forwarded to the picture-retrieval substrate.
  PictureOptions picture;
};

}  // namespace htl

#endif  // HTL_ENGINE_QUERY_OPTIONS_H_
