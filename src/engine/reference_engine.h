#ifndef HTL_ENGINE_REFERENCE_ENGINE_H_
#define HTL_ENGINE_REFERENCE_ENGINE_H_

#include "engine/exec_context.h"
#include "engine/query_options.h"
#include "htl/ast.h"
#include "model/video.h"
#include "picture/constraint_eval.h"
#include "sim/sim_list.h"
#include "util/result.h"

namespace htl {

/// Direct-from-definition evaluator of the similarity semantics of
/// section 2.5. It enumerates evaluations explicitly and recurses over the
/// formula and the sequence, with no similarity-list machinery — worst-case
/// exponential in the number of variables and quadratic in sequence length,
/// but straightforward enough to serve as the oracle that the optimized
/// engine is property-tested against. It also covers the constructs the
/// optimized classes exclude (negation, disjunction, arbitrary nesting).
///
/// Semantics implemented (identical to the optimized engine by design):
///   * constraint: (w, w) when satisfied, else (0, w);
///   * and: pairwise sum; or: max; not: (m - a, m) [extension];
///   * next: value at the successor, (0, m) at the sequence end;
///   * until: max over u'' >= u of act(h, u'') such that frac(g) clears
///     options.until_threshold on every segment in [u, u'');
///   * exists: max over bindings of the variables to objects occurring at
///     the current level, plus one "absent" object id (so that negated
///     presence is handled exactly);
///   * freeze: extends the environment with the attribute value at the
///     current segment (null when undefined);
///   * attribute-variable comparisons are *hard*: if any such constraint in
///     an atomic conjunction fails, that constraint scores 0 like any
///     other, but the value-range convention of the optimized engine is
///     honored by scoring the whole conjunction 0 — see
///     ConjunctionHardRangeNote in the implementation;
///   * level operators: value of the body at the first descendant of the
///     current segment at the target level, (0, m) when there is none.
class ReferenceEngine {
 public:
  /// `video` must outlive the engine.
  explicit ReferenceEngine(const VideoTree* video, QueryOptions options = {});

  /// Similarity of `f` at position `pos` of the proper sequence `bounds`
  /// (ids at `level`), under `env`.
  Result<Sim> Evaluate(int level, const Interval& bounds, SegmentId pos,
                       const Formula& f, const EvalEnv& env);

  /// Similarity list of `f` over the whole sequence of `level` (the proper
  /// sequence of the root's descendants at that level).
  Result<SimilarityList> EvaluateList(int level, const Formula& f);

  /// Similarity of `f` at the root, in the one-element root sequence —
  /// "satisfied by a video" (section 2.3).
  Result<Sim> EvaluateVideo(const Formula& f);

  /// Attaches a deadline/cancellation/budget context, polled on every
  /// recursive Actual() call — essential here, since the evaluator is
  /// worst-case exponential. Null (the default) disables all limits.
  void set_exec_context(ExecContext* ctx) { exec_ = ctx; }

 private:
  Result<double> Actual(int level, const Interval& bounds, SegmentId pos,
                        const Formula& f, const EvalEnv& env);

  const VideoTree* video_;
  QueryOptions options_;
  ExecContext* exec_ = nullptr;  // Not owned; null means unlimited.
};

}  // namespace htl

#endif  // HTL_ENGINE_REFERENCE_ENGINE_H_
