#ifndef HTL_ENGINE_RETRIEVAL_H_
#define HTL_ENGINE_RETRIEVAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/direct_engine.h"
#include "engine/exec_context.h"
#include "engine/query_options.h"
#include "htl/ast.h"
#include "model/video.h"
#include "model/video_stats.h"
#include "obs/profile.h"
#include "sim/topk.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace htl {

class QueryCaches;

/// One retrieved video segment across the whole database.
struct SegmentHit {
  MetadataStore::VideoId video = 0;
  SegmentId segment = kInvalidSegmentId;
  Sim sim;
};

/// One retrieved video (query evaluated at the root).
struct VideoHit {
  MetadataStore::VideoId video = 0;
  Sim sim;
};

/// What happened to each video during a store-wide retrieval — the truthful
/// companion of a partial result. A video that faults, times out its
/// per-video budget, or blows a resource budget is *skipped* (recorded
/// here), not allowed to abort the whole call.
struct RetrievalReport {
  /// One skipped video and the first error it produced.
  struct VideoFailure {
    MetadataStore::VideoId video = 0;
    Status status;
  };

  /// One shard whose scatter dispatch failed (QueryOptions::num_shards > 1):
  /// its contiguous video range was not evaluated at all. The gathered
  /// result truthfully covers only the healthy shards; complete() is false.
  struct ShardFailure {
    int shard = 0;                          // 0-based shard index.
    MetadataStore::VideoId first_video = 0;  // Inclusive range the shard owned.
    MetadataStore::VideoId last_video = 0;
    Status status;
  };

  int64_t videos_evaluated = 0;  // Contributed results (incl. degraded).
  int64_t videos_failed = 0;     // Skipped with an error (see failures).
  int64_t videos_degraded = 0;   // Fell back from DirectEngine to ReferenceEngine.
  int64_t videos_pruned = 0;     // Skipped by the top-k bound, unevaluated.
  std::vector<VideoFailure> failures;  // First error per failed video, in id order.

  /// Every video skipped by bound-based pruning (QueryOptions::prune), in
  /// id order per shard/chunk. Pruning is proven not to perturb the ranked
  /// output, so pruned ∩ top-k is always empty — the differential battery
  /// asserts it from this list. Sized by the corpus, not the result; only
  /// populated when pruning is on.
  std::vector<MetadataStore::VideoId> pruned_videos;

  /// Shards lost to dispatch failures, in shard order (empty when unsharded
  /// or healthy).
  std::vector<ShardFailure> shard_failures;

  /// Stage/operator/per-video profile with the fault points that fired —
  /// filled by the Retriever's *Profiled entry points, empty otherwise.
  obs::QueryProfile profile;

  /// True when every video contributed or was provably irrelevant (pruned):
  /// the result is exact, not partial.
  bool complete() const { return videos_failed == 0 && shard_failures.empty(); }

  /// Human-readable one-line summary for logs (names tripped fault points).
  std::string ToString() const;
};

/// Partial-tolerant retrieval result: ranked hits over the healthy videos
/// plus the report saying exactly which videos are missing and why.
struct SegmentRetrieval {
  std::vector<SegmentHit> hits;
  RetrievalReport report;
};

/// As SegmentRetrieval for whole-video (browsing) retrieval.
struct VideoRetrieval {
  std::vector<VideoHit> hits;
  RetrievalReport report;
};

/// The end-to-end retrieval façade of figure 1: parse → bind → classify →
/// evaluate per video → rank globally → return the top k. Conjunctive and
/// extended conjunctive queries run on the optimized DirectEngine;
/// constructs it reports Unimplemented for transparently fall back to the
/// ReferenceEngine.
///
/// Execution resilience: every entry point accepts an optional ExecContext
/// carrying a deadline, a cooperative cancellation flag, and per-video
/// resource budgets. Deadline expiry and cancellation abort the whole call
/// with Status::DeadlineExceeded / Cancelled; any *other* per-video error
/// (an injected fault, a blown budget, corrupt meta-data) is isolated — the
/// video is skipped, recorded in the RetrievalReport, and ranked results
/// over the healthy videos are still returned. The plain Top* methods keep
/// the strict historical contract (first per-video error fails the call);
/// the *WithReport variants implement graceful degradation.
///
/// Parallel execution: QueryOptions::parallelism splits the per-video loop
/// into contiguous chunks evaluated on a ThreadPool, each worker under a
/// child ExecContext sharing the caller's deadline and budgets. The ranked
/// output, the report, and every per-video decision are identical to the
/// serial run (`parallelism = 1`) — see DESIGN.md "Parallel execution" for
/// the determinism contract and the cancellation fan-out.
///
/// Scale-out (QueryOptions::prune / num_shards): pruning derives a cheap
/// per-video upper bound on the attainable similarity and skips videos that
/// provably cannot enter the current top k; sharding splits the corpus into
/// contiguous ranges scatter-gathered under child ExecContexts, sharing the
/// pruning floor through a monotonic atomic. Both are proven bit-identical
/// to the plain path by tests/property/prune_differential_test.cc — see
/// DESIGN.md "Scale-out retrieval".
///
/// The retriever keeps one DirectEngine per video, so atomic picture
/// queries and value tables are cached *across* queries. Each per-video
/// engine records the store epoch it was built at and is rebuilt on first
/// use after a mutation (MetadataStore::epoch()), so mutating the store
/// *between* queries is safe; mutations must still be serialized against
/// in-flight queries by the caller. Concurrent queries against one
/// Retriever are safe: the engine cache is mutex-guarded per video
/// (distinct videos never contend, so one query's parallel chunks run
/// lock-free).
///
/// Caching (QueryOptions::cache_mode, default off): with caching enabled
/// the retriever owns a whole-query result cache (keyed by the canonical
/// query fingerprint, the options fingerprint, k, and the level spec) and
/// a similarity-list cache lent to the per-video engines for closed
/// sub-formulas. Hits are bit-identical to cold recomputation at the same
/// store epoch; entries from older epochs are lazily evicted; concurrent
/// identical queries single-flight (one computes, the rest wait). See
/// DESIGN.md "Result and sub-formula caching".
class Retriever {
 public:
  /// `store` must outlive the retriever.
  explicit Retriever(const MetadataStore* store, QueryOptions options = {});
  ~Retriever();

  /// Parses and validates a query, returning the bound formula.
  Result<FormulaPtr> Prepare(std::string_view query_text) const;

  /// Top-k segments at `level` over all videos, ranked by fractional
  /// similarity (ties: lower video id, then lower segment id). Strict: the
  /// first per-video error fails the call.
  Result<std::vector<SegmentHit>> TopSegments(const Formula& query, int level,
                                              int64_t k, ExecContext* ctx = nullptr);
  Result<std::vector<SegmentHit>> TopSegments(std::string_view query_text, int level,
                                              int64_t k, ExecContext* ctx = nullptr);

  /// Degradation-tolerant TopSegments: faulting videos are skipped and
  /// recorded; the ranked partial result covers every healthy video. Only
  /// deadline expiry / cancellation (and Prepare errors for the text
  /// overload) fail the call itself.
  Result<SegmentRetrieval> TopSegmentsWithReport(const Formula& query, int level,
                                                 int64_t k, ExecContext* ctx = nullptr);
  Result<SegmentRetrieval> TopSegmentsWithReport(std::string_view query_text, int level,
                                                 int64_t k, ExecContext* ctx = nullptr);

  /// EXPLAIN/profile surface: as TopSegmentsWithReport, but runs the query
  /// under an obs::QueryTrace and attaches the finished QueryProfile —
  /// stage spans (classify/execute; the text overload adds parse, bind and
  /// rewrite), one span per video with rows/tables charged and the failure
  /// or degradation note, per-operator kernel spans underneath, and every
  /// fault point that fired — to the returned report
  /// (RetrievalReport::profile, rendered by QueryProfile::ToText()). The
  /// caller's ExecContext is used when given (its budgets and deadline
  /// apply; its previous trace is restored on return); null gets a local
  /// unlimited context.
  Result<SegmentRetrieval> TopSegmentsProfiled(const Formula& query, int level,
                                               int64_t k, ExecContext* ctx = nullptr);
  Result<SegmentRetrieval> TopSegmentsProfiled(std::string_view query_text, int level,
                                               int64_t k, ExecContext* ctx = nullptr);

  /// As TopSegments but addressing the level by its registered name (e.g.
  /// "shot"); each video resolves the name independently, so heterogeneous
  /// hierarchies mix correctly. Videos lacking the name are skipped (not
  /// counted as failures).
  Result<std::vector<SegmentHit>> TopSegmentsAtNamedLevel(const Formula& query,
                                                          const std::string& level_name,
                                                          int64_t k,
                                                          ExecContext* ctx = nullptr);
  Result<std::vector<SegmentHit>> TopSegmentsAtNamedLevel(std::string_view query_text,
                                                          const std::string& level_name,
                                                          int64_t k,
                                                          ExecContext* ctx = nullptr);
  Result<SegmentRetrieval> TopSegmentsAtNamedLevelWithReport(
      const Formula& query, const std::string& level_name, int64_t k,
      ExecContext* ctx = nullptr);

  /// Top-k videos with the query asserted at the root (browsing queries and
  /// whole-video matches). Strict, like TopSegments.
  Result<std::vector<VideoHit>> TopVideos(const Formula& query, int64_t k,
                                          ExecContext* ctx = nullptr);
  Result<std::vector<VideoHit>> TopVideos(std::string_view query_text, int64_t k,
                                          ExecContext* ctx = nullptr);

  /// Degradation-tolerant TopVideos.
  Result<VideoRetrieval> TopVideosWithReport(const Formula& query, int64_t k,
                                             ExecContext* ctx = nullptr);

  /// EXPLAIN/profile surface for whole-video retrieval; see
  /// TopSegmentsProfiled.
  Result<VideoRetrieval> TopVideosProfiled(const Formula& query, int64_t k,
                                           ExecContext* ctx = nullptr);

  /// The similarity list of `query` for one video's `level` — the
  /// single-video operation the paper's experiments report (Tables 3-6).
  /// Sets `degraded` (when non-null) to true if the direct engine declined
  /// and the reference engine produced the list.
  Result<SimilarityList> EvaluateList(MetadataStore::VideoId video, int level,
                                      const Formula& query, ExecContext* ctx = nullptr,
                                      bool* degraded = nullptr);

  /// The retriever's cache bundle — null when cache_mode == kOff. Exposed
  /// for stats assertions in tests and benches.
  QueryCaches* caches() { return caches_.get(); }

 private:
  /// One cached per-video engine slot. `mu` serializes queries touching
  /// the same video (the engine's exec-context slot is per-evaluation
  /// state); distinct videos never share an entry, so one parallel query's
  /// chunks take no contended lock. The engine itself is built lazily and
  /// rebuilt when the store epoch moves (its VideoTree pointer and caches
  /// are only valid for the epoch it was built at).
  struct VideoEngine {
    Mutex mu;
    std::unique_ptr<DirectEngine> engine HTL_GUARDED_BY(mu);
    uint64_t built_epoch HTL_GUARDED_BY(mu) = 0;
  };

  /// The cached per-video engine slot (created on first use).
  /// `engines_mu_` guards the map; the returned entry's own mutex guards
  /// evaluation. Map nodes are stable, so the reference survives later
  /// insertions.
  VideoEngine& EngineFor(MetadataStore::VideoId video);

  /// The slot's engine, (re)built for `epoch` if absent or stale. Requires
  /// the slot's `mu` to be held; attaches the list cache when enabled.
  DirectEngine& EngineLocked(VideoEngine& slot, MetadataStore::VideoId video,
                             uint64_t epoch) HTL_REQUIRES(slot.mu);

  /// One cached per-video statistics slot (bound-based pruning). Stats are
  /// immutable once built; the shared_ptr is copied out under the slot lock
  /// and used lock-free. Rebuilt lazily when the store epoch moves, like
  /// VideoEngine.
  struct VideoStatsSlot {
    Mutex mu;
    std::shared_ptr<const VideoStats> stats HTL_GUARDED_BY(mu);
    uint64_t built_epoch HTL_GUARDED_BY(mu) = 0;
  };

  /// The per-video stats, (re)built at `epoch` if absent or stale.
  std::shared_ptr<const VideoStats> StatsFor(MetadataStore::VideoId video,
                                             const VideoTree& tree, uint64_t epoch);

  /// Upper bound on the fractional similarity `query` can reach anywhere in
  /// `video` at `level` (htl/bound.h over cached VideoStats). Carries the
  /// "engine.bound_compute" fault point: an injected error returns non-ok
  /// and the caller falls back to full evaluation — pruning degrades, never
  /// the result.
  Result<double> BoundForVideo(const Formula& query, MetadataStore::VideoId video,
                               const VideoTree& tree, int level, uint64_t epoch);

  /// Worker count this query should use: options_.parallelism, with 0
  /// meaning ThreadPool::DefaultParallelism(), capped at the video count.
  int EffectiveWorkers() const;

  /// The shared per-video evaluation loop behind the segment entry points.
  /// `resolve_level` maps a video to the level to query (negative: skip the
  /// video silently, the named-level contract). `level_tag` is a callable
  /// producing the level-spec part of the result cache key ("lvl<i>" /
  /// "name:<s>"); it is a thunk, not a string, so the cache_mode=off path
  /// never pays the key formatting.
  template <typename LevelTag, typename ResolveLevel>
  Result<SegmentRetrieval> RunSegmentQuery(const Formula& query, int64_t k,
                                           ExecContext* ctx,
                                           const LevelTag& level_tag,
                                           const ResolveLevel& resolve_level);

  /// The uncached body of RunSegmentQuery (the cold path the result cache
  /// falls back to and differential tests compare against).
  template <typename ResolveLevel>
  Result<SegmentRetrieval> RunSegmentQueryCold(const Formula& query, int64_t k,
                                               ExecContext* ctx,
                                               const ResolveLevel& resolve_level);

  /// The uncached body of TopVideosWithReport.
  Result<VideoRetrieval> RunVideoQueryCold(const Formula& query, int64_t k,
                                           ExecContext* ctx);

  const MetadataStore* store_;
  QueryOptions options_;
  Mutex engines_mu_;  // Guards engines_ (map shape only; slots guard themselves).
  std::map<MetadataStore::VideoId, std::unique_ptr<VideoEngine>> engines_
      HTL_GUARDED_BY(engines_mu_);
  Mutex stats_mu_;  // Guards stats_ (map shape only; slots guard themselves).
  std::map<MetadataStore::VideoId, std::unique_ptr<VideoStatsSlot>> stats_
      HTL_GUARDED_BY(stats_mu_);
  std::unique_ptr<QueryCaches> caches_;  // Null when cache_mode == kOff.
  std::string options_fp_;               // Cached OptionsFingerprint(options_).
};

}  // namespace htl

#endif  // HTL_ENGINE_RETRIEVAL_H_
