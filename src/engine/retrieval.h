#ifndef HTL_ENGINE_RETRIEVAL_H_
#define HTL_ENGINE_RETRIEVAL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/direct_engine.h"
#include "engine/query_options.h"
#include "htl/ast.h"
#include "model/video.h"
#include "sim/topk.h"
#include "util/result.h"

namespace htl {

/// One retrieved video segment across the whole database.
struct SegmentHit {
  MetadataStore::VideoId video = 0;
  SegmentId segment = kInvalidSegmentId;
  Sim sim;
};

/// One retrieved video (query evaluated at the root).
struct VideoHit {
  MetadataStore::VideoId video = 0;
  Sim sim;
};

/// The end-to-end retrieval façade of figure 1: parse → bind → classify →
/// evaluate per video → rank globally → return the top k. Conjunctive and
/// extended conjunctive queries run on the optimized DirectEngine;
/// constructs it reports Unimplemented for transparently fall back to the
/// ReferenceEngine.
///
/// The retriever keeps one DirectEngine per video, so atomic picture
/// queries and value tables are cached *across* queries. The store must not
/// be mutated while a Retriever holds it — create a fresh Retriever after
/// changing meta-data.
class Retriever {
 public:
  /// `store` must outlive the retriever.
  explicit Retriever(const MetadataStore* store, QueryOptions options = {});

  /// Parses and validates a query, returning the bound formula.
  Result<FormulaPtr> Prepare(std::string_view query_text) const;

  /// Top-k segments at `level` over all videos, ranked by fractional
  /// similarity (ties: lower video id, then lower segment id).
  Result<std::vector<SegmentHit>> TopSegments(const Formula& query, int level,
                                              int64_t k);
  Result<std::vector<SegmentHit>> TopSegments(std::string_view query_text, int level,
                                              int64_t k);

  /// As TopSegments but addressing the level by its registered name (e.g.
  /// "shot"); each video resolves the name independently, so heterogeneous
  /// hierarchies mix correctly. Videos lacking the name are skipped.
  Result<std::vector<SegmentHit>> TopSegmentsAtNamedLevel(const Formula& query,
                                                          const std::string& level_name,
                                                          int64_t k);
  Result<std::vector<SegmentHit>> TopSegmentsAtNamedLevel(std::string_view query_text,
                                                          const std::string& level_name,
                                                          int64_t k);

  /// Top-k videos with the query asserted at the root (browsing queries and
  /// whole-video matches).
  Result<std::vector<VideoHit>> TopVideos(const Formula& query, int64_t k);
  Result<std::vector<VideoHit>> TopVideos(std::string_view query_text, int64_t k);

  /// The similarity list of `query` for one video's `level` — the
  /// single-video operation the paper's experiments report (Tables 3-6).
  Result<SimilarityList> EvaluateList(MetadataStore::VideoId video, int level,
                                      const Formula& query);

 private:
  /// The cached per-video engine (created on first use).
  DirectEngine& EngineFor(MetadataStore::VideoId video);

  const MetadataStore* store_;
  QueryOptions options_;
  std::map<MetadataStore::VideoId, std::unique_ptr<DirectEngine>> engines_;
};

}  // namespace htl

#endif  // HTL_ENGINE_RETRIEVAL_H_
