#include "engine/direct_engine.h"

#include <optional>
#include <string>
#include <utility>

#include "cache/sim_list_cache.h"
#include "engine/level_eval.h"
#include "htl/fingerprint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "picture/atomic.h"
#include "sim/list_ops.h"
#include "sim/table_ops.h"
#include "util/fault_point.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "vm/compiler.h"
#include "vm/vm.h"

namespace htl {

DirectEngine::DirectEngine(const VideoTree* video, QueryOptions options)
    : video_(video), options_(options), pictures_(video, options.picture) {
  HTL_CHECK(video != nullptr);
}

DirectEngine::~DirectEngine() = default;

void DirectEngine::ClearCache() {
  // Programs (programs_) survive: they depend only on the formula text and
  // the engine's options, not on video meta-data.
  atomic_cache_.clear();
  value_cache_.clear();
}

Result<SimilarityList> DirectEngine::EvaluateList(int level, const Formula& f) {
  switch (options_.engine_mode) {
    case EngineMode::kInterpret:
      return EvaluateListInterpreted(level, f);
    case EngineMode::kVm:
      return EvaluateListVm(level, f);
    case EngineMode::kDifferential:
      return EvaluateListDifferential(level, f);
  }
  return Status::Internal("unknown engine mode");
}

Result<Sim> DirectEngine::EvaluateVideo(const Formula& f) {
  switch (options_.engine_mode) {
    case EngineMode::kInterpret:
      return EvaluateVideoInterpreted(f);
    case EngineMode::kVm:
      return EvaluateVideoVm(f);
    case EngineMode::kDifferential:
      return EvaluateVideoDifferential(f);
  }
  return Status::Internal("unknown engine mode");
}

Result<SimilarityList> DirectEngine::EvaluateListInterpreted(int level,
                                                             const Formula& f) {
  if (level < 1 || level > video_->num_levels()) {
    return Status::OutOfRange(StrCat("level ", level, " out of range"));
  }
  const Interval bounds{1, video_->NumSegments(level)};
  HTL_ASSIGN_OR_RETURN(SimilarityTable table, EvalTable(level, bounds, f));
  HTL_DCHECK_OK(table.CheckInvariants());
  if (!table.object_vars().empty() || !table.attr_vars().empty()) {
    return Status::InvalidArgument(
        StrCat("formula has free variables (",
               StrJoin(table.object_vars(), ","), StrJoin(table.attr_vars(), ","),
               "); retrieval queries must be closed"));
  }
  return table.ToList(MaxSimilarity(f));
}

Result<Sim> DirectEngine::EvaluateVideoInterpreted(const Formula& f) {
  HTL_ASSIGN_OR_RETURN(SimilarityTable table, EvalTable(1, Interval{1, 1}, f));
  if (!table.object_vars().empty() || !table.attr_vars().empty()) {
    return Status::InvalidArgument("formula has free variables");
  }
  return table.ToList(MaxSimilarity(f)).ValueAt(1);
}

Result<const vm::Program*> DirectEngine::GetProgram(const Formula& f) {
  const std::string text = f.ToString();
  auto it = programs_.find(text);
  if (it == programs_.end()) {
    HTL_ASSIGN_OR_RETURN(vm::Program prog, vm::Compile(f, options_));
    it = programs_
             .emplace(text, std::make_unique<const vm::Program>(std::move(prog)))
             .first;
  }
  return it->second.get();
}

vm::ExecEnv DirectEngine::MakeVmEnv() {
  vm::ExecEnv env;
  env.video = video_;
  env.pictures = &pictures_;
  env.exec = exec_;
  env.trace = trace();
  env.until_threshold = options_.until_threshold;
  env.list_cache = list_cache_;
  env.cache_video_id = cache_video_id_;
  env.cache_epoch = cache_epoch_;
  env.cache_mode = options_.cache_mode;
  env.atomic_cache = &atomic_cache_;
  env.value_cache = &value_cache_;
  env.atomic_queries = &counters_.atomic_queries;
  env.atomic_cache_hits = &counters_.atomic_cache_hits;
  env.table_joins = &counters_.table_joins;
  env.exists_collapses = &counters_.exists_collapses;
  env.freeze_joins = &counters_.freeze_joins;
  env.level_evaluations = &counters_.level_evaluations;
  return env;
}

namespace {

// The interpreter's top-level closedness error, rebuilt from the runtime
// root table so the two executors produce byte-identical messages.
Status FreeVariableError(const SimilarityTable& table) {
  return Status::InvalidArgument(
      StrCat("formula has free variables (", StrJoin(table.object_vars(), ","),
             StrJoin(table.attr_vars(), ","), "); retrieval queries must be closed"));
}

}  // namespace

Result<SimilarityList> DirectEngine::EvaluateListVm(int level, const Formula& f) {
  if (level < 1 || level > video_->num_levels()) {
    return Status::OutOfRange(StrCat("level ", level, " out of range"));
  }
  HTL_ASSIGN_OR_RETURN(const vm::Program* prog, GetProgram(f));
  if (arena_ == nullptr) arena_ = std::make_unique<vm::Arena>();
  arena_->Reset();
  vm::Executor ex(*prog, MakeVmEnv(), arena_.get());
  HTL_RETURN_IF_ERROR(ex.Run(level, Interval{1, video_->NumSegments(level)}));
  const vm::RootView root = ex.Root();
  if (root.is_list) {
    return vm::Executor::MaterializeList(root, prog->root_max);
  }
  HTL_DCHECK_OK(root.table->CheckInvariants());
  if (!root.table->object_vars().empty() || !root.table->attr_vars().empty()) {
    return FreeVariableError(*root.table);
  }
  return root.table->ToList(prog->root_max);
}

Result<Sim> DirectEngine::EvaluateVideoVm(const Formula& f) {
  HTL_ASSIGN_OR_RETURN(const vm::Program* prog, GetProgram(f));
  if (arena_ == nullptr) arena_ = std::make_unique<vm::Arena>();
  arena_->Reset();
  vm::Executor ex(*prog, MakeVmEnv(), arena_.get());
  HTL_RETURN_IF_ERROR(ex.Run(1, Interval{1, 1}));
  const vm::RootView root = ex.Root();
  if (root.is_list) {
    return vm::Executor::MaterializeList(root, prog->root_max).ValueAt(1);
  }
  if (!root.table->object_vars().empty() || !root.table->attr_vars().empty()) {
    return Status::InvalidArgument("formula has free variables");
  }
  return root.table->ToList(prog->root_max).ValueAt(1);
}

namespace {

// Shared skeleton of the two differential entry points. Runs the interpreter
// then the VM from the same starting budget snapshot, verifies value and
// status bit-equality, and returns the interpreter's result (budget usage is
// left at the interpreter run's value, so downstream behaviour matches
// kInterpret exactly). Budget *charges* are not compared here: the two runs
// share this engine's caches, so the second run legitimately hits entries
// the first one filled and charges less. The property battery compares
// charges across two engines with identical fresh state instead.
template <typename T, typename InterpFn, typename VmFn>
Result<T> RunDifferential(ExecContext* exec, InterpFn interp, VmFn vm_run) {
  ExecContext::UnitUsage start;
  if (exec != nullptr) start = exec->unit_usage();
  Result<T> a = interp();
  ExecContext::UnitUsage after_interp;
  if (exec != nullptr) {
    after_interp = exec->unit_usage();
    exec->RestoreUnitUsage(start);
  }
  Result<T> b = vm_run();
  if (exec != nullptr) exec->RestoreUnitUsage(after_interp);
  // Deadline expiry and cancellation are time- and race-dependent, so the
  // two runs legitimately observe them at different points; propagate the
  // abort instead of calling it a divergence.
  if (a.status().IsQueryAbort() || b.status().IsQueryAbort()) {
    if (!a.ok()) return a;
    return b;
  }
  if (a.ok() != b.ok() || (!a.ok() && !(a.status() == b.status()))) {
    return Status::Internal(
        StrCat("engine divergence (status): interpreter=", a.status().ToString(),
               " vm=", b.status().ToString()));
  }
  if (!a.ok()) return a;
  if (!(a.value() == b.value())) {
    return Status::Internal("engine divergence (result bits)");
  }
  return a;
}

}  // namespace

Result<SimilarityList> DirectEngine::EvaluateListDifferential(int level,
                                                              const Formula& f) {
  return RunDifferential<SimilarityList>(
      exec_, [&] { return EvaluateListInterpreted(level, f); },
      [&] { return EvaluateListVm(level, f); });
}

Result<Sim> DirectEngine::EvaluateVideoDifferential(const Formula& f) {
  return RunDifferential<Sim>(
      exec_, [&] { return EvaluateVideoInterpreted(f); },
      [&] { return EvaluateVideoVm(f); });
}

Result<int> DirectEngine::ResolveLevel(int level, const LevelSpec& spec) const {
  int target = 0;
  switch (spec.kind) {
    case LevelSpec::Kind::kNextLevel:
      return level + 1;  // May exceed num_levels; the caller yields zeroes.
    case LevelSpec::Kind::kAbsolute:
      target = spec.level;
      break;
    case LevelSpec::Kind::kNamed: {
      HTL_ASSIGN_OR_RETURN(target, video_->LevelByName(spec.name));
      break;
    }
  }
  if (target <= level || target > video_->num_levels()) {
    return Status::InvalidArgument(
        StrCat("level operator targets level ", target, " from level ", level));
  }
  return target;
}

Result<SimilarityTable> DirectEngine::EvalLevelOp(int level, const Interval& bounds,
                                                  const Formula& f) {
  HTL_ASSIGN_OR_RETURN(int target, ResolveLevel(level, f.level));
  const double body_max = MaxSimilarity(*f.left);
  if (target > video_->num_levels()) {
    // at-next-level below the leaves: similarity zero everywhere.
    return SimilarityTable();
  }

  // Accumulate, per (objects, ranges) key, run-length entries over the
  // parent-level positions. LevelAccumulator is shared with the bytecode
  // VM's kLevelEval handler so the two executors stay bit-identical.
  LevelAccumulator acc;

  for (SegmentId pos = bounds.begin; pos <= bounds.end; ++pos) {
    HTL_CHECK_EXEC(exec_);
    const Interval seq = f.level.kind == LevelSpec::Kind::kNextLevel
                             ? video_->Children(level, pos)
                             : video_->DescendantsAtLevel(level, pos, target);
    if (seq.empty()) continue;
    counters_.level_evaluations.Increment();
    HTL_OBS_COUNT("engine.level_evaluations", 1);
    HTL_ASSIGN_OR_RETURN(SimilarityTable t, EvalTable(target, seq, *f.left));
    if (!acc.has_schema()) acc.SetSchema(t.object_vars(), t.attr_vars());
    for (const SimilarityTable::Row& row : t.rows()) {
      acc.Add(pos, row.list.ActualAt(seq.begin), row.objects, row.ranges);
    }
  }
  return acc.Finish(body_max);
}

Result<SimilarityTable> DirectEngine::EvalTable(int level, const Interval& bounds,
                                                const Formula& f) {
  // Every evaluation node is a loop boundary: poll deadline/cancellation
  // and bound the recursion depth (formula nesting) in one place.
  DepthScope depth(exec_);
  HTL_RETURN_IF_ERROR(depth.status());
  // Maximal atomic subtrees are single picture queries, evaluated once per
  // (subtree, level) over the whole level and clipped to the active bounds
  // (atomic similarity depends only on the segment, so clipping is exact).
  if (f.kind != FormulaKind::kTrue && f.kind != FormulaKind::kFalse &&
      IsAtomicShape(f)) {
    const auto key = std::make_pair(f.ToString(), level);
    auto it = atomic_cache_.find(key);
    if (it == atomic_cache_.end()) {
      counters_.atomic_queries.Increment();
      HTL_OBS_COUNT("engine.atomic_queries", 1);
      HTL_OBS_SPAN(span, trace(), "op.picture_query");
      HTL_ASSIGN_OR_RETURN(AtomicFormula atomic, ExtractAtomic(f));
      HTL_ASSIGN_OR_RETURN(SimilarityTable table, pictures_.Query(level, atomic));
      span.AddTables(1);
      span.AddRows(table.num_rows());
      if (exec_ != nullptr) {
        HTL_RETURN_IF_ERROR(exec_->ChargeTable());
        HTL_RETURN_IF_ERROR(exec_->ChargeRows(table.num_rows()));
      }
      it = atomic_cache_.emplace(key, std::move(table)).first;
    } else {
      counters_.atomic_cache_hits.Increment();
      HTL_OBS_COUNT("engine.atomic_cache_hits", 1);
    }
    return MapLists(it->second,
                    [&](const SimilarityList& l) { return l.Clip(bounds); });
  }

  // Cross-query similarity-list cache: closed non-atomic sub-formulas
  // evaluated over the full level are exactly the interval-coded
  // intermediates the paper makes reusable (§4-§5); serve them from the
  // retriever-shared cache when one is attached. Only ≤1-row closed tables
  // are published: for those, FromList(ToList(t)) reproduces the table the
  // cold path returns bit for bit, so a hit is indistinguishable from a
  // recompute.
  const bool cacheable =
      list_cache_ != nullptr && options_.cache_mode != CacheMode::kOff &&
      f.kind != FormulaKind::kTrue && f.kind != FormulaKind::kFalse &&
      bounds.begin == 1 && bounds.end == video_->NumSegments(level) &&
      FreeObjectVars(f).empty() && FreeAttrVars(f).empty();
  std::string cache_key;
  if (cacheable) {
    cache_key = CanonicalFormulaKey(f);
    if (cache::SimListCache::ListPtr hit =
            list_cache_->Get(cache_video_id_, level, cache_key, cache_epoch_)) {
      HTL_OBS_SPAN(span, trace(), "cache.list");
      span.SetNote("hit");
      span.AddIntervals(static_cast<int64_t>(hit->entries().size()));
      if (hit->empty()) return SimilarityTable();
      return SimilarityTable::FromList(*hit);
    }
  }
  HTL_ASSIGN_OR_RETURN(SimilarityTable table, EvalNode(level, bounds, f));
  if (cacheable && options_.cache_mode == CacheMode::kReadWrite &&
      table.num_rows() <= 1 && table.object_vars().empty() &&
      table.attr_vars().empty()) {
    list_cache_->Put(cache_video_id_, level, cache_key, cache_epoch_,
                     table.ToList(MaxSimilarity(f)));
  }
  return table;
}

Result<SimilarityTable> DirectEngine::EvalNode(int level, const Interval& bounds,
                                               const Formula& f) {
  switch (f.kind) {
    case FormulaKind::kTrue: {
      SimilarityList list =
          SimilarityList::FromEntriesOrDie({SimEntry{bounds, 1.0}}, 1.0);
      return SimilarityTable::FromList(std::move(list));
    }
    case FormulaKind::kFalse:
      return SimilarityTable();
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kUntil: {
      HTL_ASSIGN_OR_RETURN(SimilarityTable lhs, EvalTable(level, bounds, *f.left));
      HTL_ASSIGN_OR_RETURN(SimilarityTable rhs, EvalTable(level, bounds, *f.right));
      HTL_FAULT_POINT("engine.table_join");
      counters_.table_joins.Increment();
      HTL_OBS_COUNT("engine.table_joins", 1);
      // The span opens after the operands are evaluated, so it times the
      // join kernel alone (operand spans nest as siblings, not children).
      const char* join_name = f.kind == FormulaKind::kOr      ? "op.or_join"
                              : f.kind == FormulaKind::kUntil ? "op.until_join"
                                                              : "op.and_join";
      HTL_OBS_SPAN(span, trace(), join_name);
      span.AddTables(1);
      span.AddRows(lhs.num_rows() + rhs.num_rows());
      if (exec_ != nullptr) {
        HTL_RETURN_IF_ERROR(exec_->ChargeTable());
        HTL_RETURN_IF_ERROR(exec_->ChargeRows(lhs.num_rows() + rhs.num_rows()));
      }
      TableCombine op = f.kind == FormulaKind::kOr    ? TableCombine::kOr
                        : f.kind == FormulaKind::kUntil ? TableCombine::kUntil
                        : options_.and_semantics == AndSemantics::kFuzzyMin
                            ? TableCombine::kFuzzyAnd
                            : TableCombine::kAnd;
      return JoinTables(lhs, MaxSimilarity(*f.left), rhs, MaxSimilarity(*f.right), op,
                        options_.until_threshold);
    }
    case FormulaKind::kNext: {
      HTL_ASSIGN_OR_RETURN(SimilarityTable t, EvalTable(level, bounds, *f.left));
      HTL_OBS_SPAN(span, trace(), "op.next_shift");
      span.AddRows(t.num_rows());
      return MapLists(t, [&](const SimilarityList& l) {
        return NextShift(l).Clip(bounds);
      });
    }
    case FormulaKind::kEventually: {
      HTL_ASSIGN_OR_RETURN(SimilarityTable t, EvalTable(level, bounds, *f.left));
      HTL_OBS_SPAN(span, trace(), "op.eventually");
      span.AddRows(t.num_rows());
      return MapLists(t, [](const SimilarityList& l) { return Eventually(l); });
    }
    case FormulaKind::kExists: {
      counters_.exists_collapses.Increment();
      HTL_OBS_COUNT("engine.exists_collapses", 1);
      HTL_ASSIGN_OR_RETURN(SimilarityTable t, EvalTable(level, bounds, *f.left));
      HTL_OBS_SPAN(span, trace(), "op.exists_collapse");
      span.AddRows(t.num_rows());
      return CollapseExists(t, f.vars);
    }
    case FormulaKind::kFreeze: {
      HTL_ASSIGN_OR_RETURN(SimilarityTable t, EvalTable(level, bounds, *f.left));
      if (t.AttrColumn(f.freeze_var) < 0) return t;  // Variable unused.
      const auto key = std::make_pair(f.freeze_term.ToString(), level);
      auto it = value_cache_.find(key);
      if (it == value_cache_.end()) {
        HTL_OBS_SPAN(vspan, trace(), "op.value_table");
        HTL_FAULT_POINT("engine.value_table");
        HTL_ASSIGN_OR_RETURN(ValueTable vt, pictures_.Values(level, f.freeze_term));
        vspan.AddRows(vt.num_rows());
        vspan.AddTables(1);
        it = value_cache_.emplace(key, std::move(vt)).first;
      }
      counters_.freeze_joins.Increment();
      HTL_OBS_COUNT("engine.freeze_joins", 1);
      HTL_OBS_SPAN(span, trace(), "op.freeze_join");
      span.AddRows(t.num_rows());
      return FreezeJoin(t, f.freeze_var, it->second);
    }
    case FormulaKind::kLevel: {
      HTL_OBS_SPAN(span, trace(), "op.level_eval");
      return EvalLevelOp(level, bounds, f);
    }
    case FormulaKind::kNot: {
      // Extension: negation of a *closed* subformula complements its list
      // over the active bounds (actual' = max - actual). Negation over free
      // variables would need complemented tables with universal rows —
      // outside the paper's classes; the reference engine covers it.
      HTL_ASSIGN_OR_RETURN(SimilarityTable t, EvalTable(level, bounds, *f.left));
      if (!t.object_vars().empty() || !t.attr_vars().empty()) {
        return Status::Unimplemented(
            "negation over free variables is outside the extended conjunctive "
            "class (section 2.5); use ReferenceEngine for general formulas");
      }
      HTL_OBS_SPAN(span, trace(), "op.complement");
      span.AddRows(t.num_rows());
      return SimilarityTable::FromList(
          Complement(t.ToList(MaxSimilarity(*f.left)), bounds));
    }
    case FormulaKind::kConstraint:
      break;  // Handled by the atomic branch above.
  }
  return Status::Internal(StrCat("unhandled formula: ", f.ToString()));
}

Result<SimilarityList> EvaluateWithLists(
    const Formula& f, const std::map<std::string, SimilarityList>& inputs,
    const QueryOptions& options, obs::QueryTrace* trace) {
  switch (f.kind) {
    case FormulaKind::kConstraint: {
      if (f.constraint.kind != Constraint::Kind::kPredicate) {
        return Status::InvalidArgument(
            StrCat("list evaluation expects named predicates as leaves, got: ",
                   f.constraint.ToString()));
      }
      auto it = inputs.find(f.constraint.pred_name);
      if (it == inputs.end()) {
        return Status::NotFound(
            StrCat("no input similarity list for predicate '", f.constraint.pred_name,
                   "'"));
      }
      return it->second;
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kUntil: {
      HTL_ASSIGN_OR_RETURN(SimilarityList lhs,
                           EvaluateWithLists(*f.left, inputs, options, trace));
      HTL_ASSIGN_OR_RETURN(SimilarityList rhs,
                           EvaluateWithLists(*f.right, inputs, options, trace));
      const char* merge_name = f.kind == FormulaKind::kAnd     ? "op.and_merge"
                               : f.kind == FormulaKind::kOr    ? "op.or_merge"
                                                               : "op.until_merge";
      HTL_OBS_SPAN(span, trace, merge_name);
      span.AddRows(lhs.length() + rhs.length());
      SimilarityList out =
          f.kind == FormulaKind::kAnd
              ? (options.and_semantics == AndSemantics::kFuzzyMin
                     ? FuzzyMinAndMerge(lhs, rhs)
                     : AndMerge(lhs, rhs))
          : f.kind == FormulaKind::kOr ? OrMerge(lhs, rhs)
                                       : UntilMerge(lhs, rhs, options.until_threshold);
      span.AddIntervals(out.length());
      return out;
    }
    case FormulaKind::kNext: {
      HTL_ASSIGN_OR_RETURN(SimilarityList l,
                           EvaluateWithLists(*f.left, inputs, options, trace));
      HTL_OBS_SPAN(span, trace, "op.next_shift");
      span.AddRows(l.length());
      SimilarityList out = NextShift(l);
      span.AddIntervals(out.length());
      return out;
    }
    case FormulaKind::kEventually: {
      HTL_ASSIGN_OR_RETURN(SimilarityList l,
                           EvaluateWithLists(*f.left, inputs, options, trace));
      HTL_OBS_SPAN(span, trace, "op.eventually");
      span.AddRows(l.length());
      SimilarityList out = Eventually(l);
      span.AddIntervals(out.length());
      return out;
    }
    default:
      return Status::InvalidArgument(
          StrCat("not a list-evaluable (type (1)) formula: ", f.ToString()));
  }
}

}  // namespace htl
