#include "engine/level_eval.h"

#include <utility>

#include "util/string_util.h"

// htl-lint: allow(exec-context-polling) — the accumulator only folds rows
// the caller already evaluated and charged; both engines (direct_engine.cc,
// vm.cc) poll the ExecContext per descendant sequence around these calls.

namespace htl {

void LevelAccumulator::Add(SegmentId pos, double value,
                           const std::vector<ObjectId>& objects,
                           const std::vector<ValueRange>& ranges) {
  if (value <= 0) return;
  std::string key;
  for (ObjectId o : objects) key += StrCat(o, "|");
  for (const ValueRange& r : ranges) key += r.ToString() + "|";
  Accum& acc = accums_[key];
  if (acc.entries.empty()) {
    acc.objects = objects;
    acc.ranges = ranges;
  }
  if (!acc.entries.empty() && acc.entries.back().actual == value &&
      acc.entries.back().range.end + 1 == pos) {
    acc.entries.back().range.end = pos;
  } else {
    acc.entries.push_back(SimEntry{Interval{pos, pos}, value});
  }
}

Result<SimilarityTable> LevelAccumulator::Finish(double body_max) {
  if (!schema_.has_value()) return SimilarityTable();
  SimilarityTable out(schema_->object_vars(), schema_->attr_vars());
  for (auto& [key, acc] : accums_) {
    SimilarityTable::Row row;
    row.objects = std::move(acc.objects);
    row.ranges = std::move(acc.ranges);
    HTL_ASSIGN_OR_RETURN(row.list,
                         SimilarityList::FromEntries(std::move(acc.entries), body_max));
    out.AddRow(std::move(row));
  }
  return out;
}

}  // namespace htl
