#ifndef HTL_ENGINE_EXEC_CONTEXT_H_
#define HTL_ENGINE_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

#include "util/status.h"

namespace htl {

namespace obs {
class QueryTrace;
}  // namespace obs

/// Resource budgets for one query execution. The defaults are "unlimited"
/// (max int64), so a default-constructed ExecContext never trips a budget.
/// Budgets that are naturally per-video (rows, tables, depth) reset at each
/// Retriever video boundary via ExecContext::BeginUnit(), so one pathological
/// video cannot consume the allowance of the healthy ones.
struct ExecBudgets {
  /// Upper bound on similarity-list/table/SQL rows merged or materialized
  /// within one unit of work (one video evaluation, or one SQL statement).
  int64_t max_rows = std::numeric_limits<int64_t>::max();

  /// Upper bound on intermediate tables materialized within one unit
  /// (similarity tables built by the direct engine; working sets built by
  /// the SQL executor's FROM pipeline).
  int64_t max_tables = std::numeric_limits<int64_t>::max();

  /// Upper bound on evaluation recursion depth (formula nesting in the
  /// engines; SELECT nesting in the SQL executor).
  int64_t max_depth = std::numeric_limits<int64_t>::max();
};

/// Deadline-aware, cancellable execution context threaded through the whole
/// query path (Retriever -> DirectEngine / ReferenceEngine -> PictureSystem
/// seams, and sql::Executor). Engines poll it at loop boundaries and return
/// Status::DeadlineExceeded / Cancelled / ResourceExhausted instead of
/// running away.
///
/// Cost model: a default-constructed context has no deadline and unlimited
/// budgets, and CheckDeadline() amortizes the clock read (one steady_clock
/// call every kDeadlinePollStride polls), so threading a default context
/// through a query costs a few predictable branches per loop iteration —
/// bench_retrieval records the measured overhead in BENCH_retrieval.json.
///
/// Thread model: the cancellation flag may be set from any thread (it is an
/// atomic); everything else is owned by the querying thread. For parallel
/// per-video execution the Retriever gives each worker a *child* context
/// (see the parent constructor): the child copies the parent's budgets and
/// absolute deadline at construction and chains cancellation through the
/// parent's atomic flag, so the only cross-thread state is atomic reads.
class ExecContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline, unlimited budgets, not cancelled.
  ExecContext() = default;

  explicit ExecContext(ExecBudgets budgets) : budgets_(budgets) {}

  /// Child context for one worker of a parallel query. Copies the parent's
  /// budgets and absolute deadline (an already-expired or 0ms parent
  /// deadline fails the child's very first poll, like SetTimeout(0) on the
  /// parent itself), starts with fresh per-unit counters, and observes the
  /// parent's Cancel() — including one issued *before* this child was
  /// created — as well as its own. The parent (whole chain) must outlive
  /// the child; a null parent yields a plain default context.
  explicit ExecContext(const ExecContext* parent) {
    if (parent == nullptr) return;
    parent_ = parent;
    budgets_ = parent->budgets_;
    has_deadline_ = parent->has_deadline_;
    deadline_ = parent->deadline_;
    deadline_hit_ = parent->deadline_hit_;
    // As in SetTimeout: the first poll must read the clock, so a deadline
    // the parent already crossed fails immediately.
    polls_since_clock_read_ = kDeadlinePollStride - 1;
  }

  /// Sets the deadline `timeout` from now (monotonic clock). A zero or
  /// negative timeout is already expired: the first poll fails.
  void SetTimeout(std::chrono::nanoseconds timeout) {
    has_deadline_ = true;
    deadline_ = Clock::now() + timeout;
    // Force the first poll to read the clock, so an already-expired
    // deadline fails immediately instead of after one amortization stride.
    polls_since_clock_read_ = kDeadlinePollStride - 1;
  }

  /// Sets an absolute monotonic deadline.
  void SetDeadline(Clock::time_point deadline) {
    has_deadline_ = true;
    deadline_ = deadline;
    polls_since_clock_read_ = kDeadlinePollStride - 1;
  }

  /// Upper clamp for SetTimeoutMs: 24 hours. Anything longer is
  /// indistinguishable from "no deadline" for a query service, and bounding
  /// it here keeps the milliseconds -> nanoseconds conversion safely inside
  /// int64 for any wire value (INT64_MAX ms would overflow the duration).
  static constexpr int64_t kMaxTimeoutMs = 24 * 60 * 60 * 1000;

  /// Deadline from a relative timeout in *milliseconds* — the unit budgets
  /// travel in over the wire (net/protocol.h) — with explicit clamping:
  /// zero and negative values are already expired (the first poll fails,
  /// exactly like SetTimeout(0)); values above kMaxTimeoutMs clamp down to
  /// it. Call sites must use this instead of hand-rolled steady_clock
  /// arithmetic so the edge cases stay in one tested place.
  void SetTimeoutMs(int64_t timeout_ms) {
    if (timeout_ms > kMaxTimeoutMs) timeout_ms = kMaxTimeoutMs;
    if (timeout_ms <= 0) {
      SetTimeout(std::chrono::nanoseconds(0));
      return;
    }
    SetTimeout(std::chrono::milliseconds(timeout_ms));
  }

  bool has_deadline() const { return has_deadline_; }

  /// Requests cooperative cancellation; safe from any thread. The querying
  /// thread observes it at its next poll. Cancelling a parent cancels every
  /// (present and future) child chained to it; cancelling a child leaves
  /// the parent running.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    for (const ExecContext* c = this; c != nullptr; c = c->parent_) {
      if (c->cancelled_.load(std::memory_order_relaxed)) return true;
    }
    return false;
  }

  const ExecBudgets& budgets() const { return budgets_; }
  ExecBudgets& mutable_budgets() { return budgets_; }

  /// Resets the per-unit resource counters (rows, tables, depth) at a unit
  /// boundary — the Retriever calls this before each video so budgets bound
  /// each video independently; the SQL system calls it per statement.
  void BeginUnit() {
    rows_used_ = 0;
    tables_used_ = 0;
    depth_used_ = 0;
  }

  /// The cheap poll engines place at loop boundaries: cancellation
  /// (chained through any parents), then (amortized) deadline. Never fails
  /// on a default context.
  Status Check() {
    if (cancelled()) return Status::Cancelled("query cancelled");
    if (has_deadline_) return CheckDeadline();
    return Status::OK();
  }

  /// Charges `n` rows against the per-unit row budget, polling deadline and
  /// cancellation on the way (so row-charging loops need no separate
  /// Check()).
  Status ChargeRows(int64_t n) {
    rows_used_ += n;
    if (rows_used_ > budgets_.max_rows) {
      return Status::ResourceExhausted(RowsExhaustedMessage());
    }
    return Check();
  }

  /// Charges one materialized intermediate table.
  Status ChargeTable() {
    if (++tables_used_ > budgets_.max_tables) {
      return Status::ResourceExhausted(TablesExhaustedMessage());
    }
    return Check();
  }

  /// Enters one recursion level; must be paired with LeaveDepth(). Prefer
  /// the DepthScope RAII below.
  Status EnterDepth() {
    if (++depth_used_ > budgets_.max_depth) {
      --depth_used_;
      return Status::ResourceExhausted(DepthExhaustedMessage());
    }
    return Check();
  }
  void LeaveDepth() { --depth_used_; }

  int64_t rows_used() const { return rows_used_; }
  int64_t tables_used() const { return tables_used_; }
  int64_t depth_used() const { return depth_used_; }

  /// A snapshot of the per-unit usage counters. engine_mode=kDifferential
  /// uses this to run both executors from the same starting budget and to
  /// verify they charged identically; the differential test battery compares
  /// snapshots across engines.
  struct UnitUsage {
    int64_t rows = 0;
    int64_t tables = 0;
    int64_t depth = 0;
    friend bool operator==(const UnitUsage&, const UnitUsage&) = default;
  };
  UnitUsage unit_usage() const { return {rows_used_, tables_used_, depth_used_}; }
  void RestoreUnitUsage(const UnitUsage& u) {
    rows_used_ = u.rows;
    tables_used_ = u.tables;
    depth_used_ = u.depth;
  }

  /// The query trace riding on this context (null for unprofiled queries —
  /// the common case). Engines read it at the same seams where they poll the
  /// context, so profiling reuses the PR 2 threading instead of new plumbing.
  /// The trace is borrowed, not owned; the attacher keeps it alive.
  obs::QueryTrace* trace() const { return trace_; }
  void set_trace(obs::QueryTrace* trace) { trace_ = trace; }

 private:
  Status CheckDeadline();

  // Out-of-line so the hot Check() inline path stays small; these allocate.
  std::string RowsExhaustedMessage() const;
  std::string TablesExhaustedMessage() const;
  std::string DepthExhaustedMessage() const;

  /// Clock reads are amortized: only every kDeadlinePollStride-th poll pays
  /// a steady_clock::now(). Engine loop bodies are microseconds-scale, so
  /// the deadline is still honored well within a millisecond.
  static constexpr int32_t kDeadlinePollStride = 128;

  const ExecContext* parent_ = nullptr;  // Cancellation chain; see cancelled().
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  int32_t polls_since_clock_read_ = 0;
  bool deadline_hit_ = false;  // Latched: once missed, every poll fails.
  std::atomic<bool> cancelled_{false};

  ExecBudgets budgets_;
  int64_t rows_used_ = 0;
  int64_t tables_used_ = 0;
  int64_t depth_used_ = 0;

  obs::QueryTrace* trace_ = nullptr;  // Borrowed; see trace().
};

/// RAII depth guard: `HTL_RETURN_IF_ERROR(scope.status())` after
/// construction. Tolerates a null context (no-op).
class DepthScope {
 public:
  explicit DepthScope(ExecContext* ctx) : ctx_(ctx) {
    if (ctx_ != nullptr) status_ = ctx_->EnterDepth();
  }
  ~DepthScope() {
    if (ctx_ != nullptr && status_.ok()) ctx_->LeaveDepth();
  }
  DepthScope(const DepthScope&) = delete;
  DepthScope& operator=(const DepthScope&) = delete;

  const Status& status() const { return status_; }

 private:
  ExecContext* ctx_;
  Status status_;
};

}  // namespace htl

/// Polls a possibly-null ExecContext*; returns on deadline/cancel. The
/// standard loop-boundary idiom (CONTRIBUTING.md: every new loop over
/// segments or rows must poll its ExecContext).
#define HTL_CHECK_EXEC(ctx_ptr)                                  \
  do {                                                           \
    ::htl::ExecContext* htl_exec_tmp_ = (ctx_ptr);               \
    if (htl_exec_tmp_ != nullptr) {                              \
      HTL_RETURN_IF_ERROR(htl_exec_tmp_->Check());               \
    }                                                            \
  } while (0)

#endif  // HTL_ENGINE_EXEC_CONTEXT_H_
