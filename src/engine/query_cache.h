#ifndef HTL_ENGINE_QUERY_CACHE_H_
#define HTL_ENGINE_QUERY_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/cache_stats.h"
#include "cache/sharded_cache.h"
#include "cache/sim_list_cache.h"
#include "engine/exec_context.h"
#include "engine/query_options.h"
#include "engine/retrieval.h"
#include "obs/trace.h"
#include "util/result.h"

namespace htl {

/// One cached whole-query result: the ranked hits (segment or video form)
/// plus the report counters. The profile is intentionally left empty —
/// profiles describe the run that produced them; a hit's profile is its
/// own `cache.lookup` span. Only complete reports (no failed videos) are
/// ever stored, so replaying a hit is bit-identical to recomputing on a
/// healthy store at the same epoch.
struct CachedQueryResult {
  std::vector<SegmentHit> segment_hits;
  std::vector<VideoHit> video_hits;
  RetrievalReport report;

  /// Approximate resident cost charged against the cache capacity.
  int64_t ByteSize() const;
};

/// Fingerprint of every QueryOptions knob that can change result values
/// (until_threshold, and semantics, picture limits) — part of every result
/// cache key. Parallelism and cache sizing are excluded: outputs are
/// bit-identical across those by contract.
std::string OptionsFingerprint(const QueryOptions& options);

/// The per-Retriever cache bundle: the whole-query result cache (client
/// (b) of the tentpole) and the DirectEngine similarity-list cache it
/// lends to per-video engines (client (a)). Constructed only when
/// QueryOptions::cache_mode != kOff, so the off mode carries no cache
/// state at all.
class QueryCaches {
 public:
  using ResultPtr = std::shared_ptr<const CachedQueryResult>;

  explicit QueryCaches(const QueryOptions& options);

  /// The similarity-list cache shared by this retriever's video engines.
  cache::SimListCache& lists() { return lists_; }

  /// Cached execution of one whole query: probe (annotating a
  /// `cache.lookup` span with hit / miss / stale), then — in read-write
  /// mode — run `cold` under the single-flight guard and publish the
  /// result when it is complete (`cache.fill` span notes stored /
  /// skipped). An injected `cache.lookup` fault bypasses the cache for
  /// this call; a `cache.fill` fault skips only the store. `cold` is
  /// `Result<CachedQueryResult>()` and runs on the caller's (or flight
  /// leader's) thread under its own ExecContext; a failing leader
  /// publishes nothing and waiters recompute for themselves.
  template <typename Cold>
  Result<ResultPtr> GetOrRun(const std::string& key, uint64_t epoch, ExecContext* ctx,
                             obs::QueryTrace* trace, const Cold& cold) {
    {
      HTL_OBS_SPAN(span, trace, "cache.lookup");
      if (LookupFaulted()) {
        span.SetNote("bypass (lookup fault)");
        HTL_ASSIGN_OR_RETURN(CachedQueryResult r, cold());
        return std::make_shared<const CachedQueryResult>(std::move(r));
      }
      const auto found = results_.Get(key, epoch);
      span.SetNote(std::string(cache::LookupOutcomeName(found.outcome)));
      if (found.value != nullptr) return found.value;
    }
    if (mode_ != CacheMode::kReadWrite) {
      HTL_ASSIGN_OR_RETURN(CachedQueryResult r, cold());
      HTL_OBS_SPAN(span, trace, "cache.fill");
      span.SetNote("skipped (cache_mode=read)");
      return std::make_shared<const CachedQueryResult>(std::move(r));
    }
    using ResultLru = cache::ShardedLruCache<CachedQueryResult>;
    return results_.GetOrCompute(
        key, epoch, ctx, [&]() -> Result<ResultLru::Fill> {
          HTL_ASSIGN_OR_RETURN(CachedQueryResult r, cold());
          ResultLru::Fill fill;
          fill.bytes = r.ByteSize();
          const bool complete = r.report.complete();
          fill.value = std::make_shared<const CachedQueryResult>(std::move(r));
          HTL_OBS_SPAN(span, trace, "cache.fill");
          if (!complete) {
            fill.store = false;
            span.SetNote("skipped (partial result)");
          } else if (FillFaulted()) {
            fill.store = false;
            span.SetNote("skipped (fill fault)");
          } else {
            span.SetNote("stored");
          }
          return fill;
        });
  }

  cache::CacheStats result_stats() const { return results_.stats(); }
  cache::CacheStats list_stats() const { return lists_.stats(); }

  /// Drops everything resident in both caches.
  void Clear() {
    results_.Clear();
    lists_.Clear();
  }

 private:
  static bool LookupFaulted();
  static bool FillFaulted();

  CacheMode mode_;
  cache::ShardedLruCache<CachedQueryResult> results_;
  cache::SimListCache lists_;
};

}  // namespace htl

#endif  // HTL_ENGINE_QUERY_CACHE_H_
