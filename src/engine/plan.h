#ifndef HTL_ENGINE_PLAN_H_
#define HTL_ENGINE_PLAN_H_

#include <string>

#include "htl/ast.h"
#include "model/video.h"
#include "util/result.h"

namespace htl {

/// Renders the evaluation plan the direct engine would use for `f` over one
/// level of `video` — an EXPLAIN for HTL queries. Each line shows the
/// operator, the list algorithm it maps to, the static max similarity, and
/// for atomic leaves the picture query and its table columns, e.g.:
///
///   and                 [AndMerge, max=16.047]
///   ├─ atomic           [picture query, max=6.26] exists x, y (...)
///   └─ eventually       [suffix-max sweep, max=9.787]
///      └─ atomic        [picture query, max=9.787] exists t (...)
///
/// The formula must be bound; classification is included in the header.
Result<std::string> ExplainPlan(const VideoTree& video, int level, const Formula& f);

}  // namespace htl

#endif  // HTL_ENGINE_PLAN_H_
