#include "engine/plan.h"

#include "htl/classifier.h"
#include "picture/atomic.h"
#include "util/string_util.h"

namespace htl {

namespace {

struct PlanPrinter {
  std::string out;

  static std::string ChildPrefix(const std::string& prefix, bool last, bool root) {
    if (root) return "";
    return prefix + (last ? "   " : "│  ");
  }

  Status Visit(const Formula& f, const std::string& prefix, bool last, bool root) {
    const double max = MaxSimilarity(f);
    auto node = [&](const std::string& op, const std::string& algo,
                    const std::string& extra = "") {
      const std::string text = StrCat(op, "  [", algo, ", max=", max, "]",
                                      extra.empty() ? "" : " ", extra);
      if (root) {
        out += text + "\n";
      } else {
        out += prefix + (last ? "└─ " : "├─ ") + text + "\n";
      }
    };
    const std::string child_prefix = ChildPrefix(prefix, last, root);
    if (f.kind != FormulaKind::kTrue && f.kind != FormulaKind::kFalse &&
        IsAtomicShape(f)) {
      HTL_ASSIGN_OR_RETURN(AtomicFormula atomic, ExtractAtomic(f));
      std::string cols;
      const auto objs = atomic.FreeObjectVars();
      const auto attrs = atomic.FreeAttrVars();
      if (!objs.empty() || !attrs.empty()) {
        cols = StrCat(" columns=(", StrJoin(objs, ","),
                      attrs.empty() ? "" : StrCat("|", StrJoin(attrs, ",")), ")");
      }
      node("atomic", "picture query", StrCat(atomic.ToString(), cols));
      return Status::OK();
    }
    switch (f.kind) {
      case FormulaKind::kTrue:
        node("true", "constant list");
        return Status::OK();
      case FormulaKind::kFalse:
        node("false", "empty list");
        return Status::OK();
      case FormulaKind::kAnd:
        node("and", "AndMerge join");
        break;
      case FormulaKind::kOr:
        node("or", "OrMerge join");
        break;
      case FormulaKind::kUntil:
        node("until", "threshold + backward sweep join");
        break;
      case FormulaKind::kNext:
        node("next", "interval shift");
        break;
      case FormulaKind::kEventually:
        node("eventually", "suffix-max sweep");
        break;
      case FormulaKind::kNot:
        node("not", "list complement (closed extension)");
        break;
      case FormulaKind::kExists:
        node(StrCat("exists ", StrJoin(f.vars, ", ")), "m-way max collapse");
        break;
      case FormulaKind::kFreeze:
        node(StrCat("[", f.freeze_var, " <- ", f.freeze_term.ToString(), "]"),
             "value-table join");
        break;
      case FormulaKind::kLevel:
        node(f.level.ToString(), "per-parent subsequence evaluation");
        break;
      case FormulaKind::kConstraint:
        return Status::Internal("constraint outside atomic branch");
    }
    if (f.left && f.right) {
      HTL_RETURN_IF_ERROR(Visit(*f.left, child_prefix, /*last=*/false, false));
      return Visit(*f.right, child_prefix, /*last=*/true, false);
    }
    if (f.left) return Visit(*f.left, child_prefix, /*last=*/true, false);
    return Status::OK();
  }
};

}  // namespace

Result<std::string> ExplainPlan(const VideoTree& video, int level, const Formula& f) {
  if (level < 1 || level > video.num_levels()) {
    return Status::OutOfRange(StrCat("level ", level, " out of range"));
  }
  PlanPrinter printer;
  printer.out = StrCat("plan for level ", level, " (", video.NumSegments(level),
                       " segments), class ", FormulaClassName(Classify(f)), ":\n");
  HTL_RETURN_IF_ERROR(printer.Visit(f, "", /*last=*/true, /*root=*/true));
  return printer.out;
}

}  // namespace htl
