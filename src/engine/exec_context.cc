#include "engine/exec_context.h"

#include "util/string_util.h"

namespace htl {

Status ExecContext::CheckDeadline() {
  if (deadline_hit_) return Status::DeadlineExceeded("deadline exceeded");
  if (++polls_since_clock_read_ < kDeadlinePollStride) return Status::OK();
  polls_since_clock_read_ = 0;
  if (Clock::now() >= deadline_) {
    deadline_hit_ = true;
    return Status::DeadlineExceeded("deadline exceeded");
  }
  return Status::OK();
}

std::string ExecContext::RowsExhaustedMessage() const {
  return StrCat("row budget exhausted (", rows_used_, " > ", budgets_.max_rows,
                " rows merged/materialized)");
}

std::string ExecContext::TablesExhaustedMessage() const {
  return StrCat("table budget exhausted (", tables_used_, " > ",
                budgets_.max_tables, " intermediate tables)");
}

std::string ExecContext::DepthExhaustedMessage() const {
  return StrCat("depth budget exhausted (recursion deeper than ",
                budgets_.max_depth, ")");
}

}  // namespace htl
