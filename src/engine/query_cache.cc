#include "engine/query_cache.h"

#include "util/fault_point.h"
#include "util/string_util.h"

namespace htl {

int64_t CachedQueryResult::ByteSize() const {
  int64_t bytes = static_cast<int64_t>(sizeof(CachedQueryResult));
  bytes += static_cast<int64_t>(segment_hits.size() * sizeof(SegmentHit));
  bytes += static_cast<int64_t>(video_hits.size() * sizeof(VideoHit));
  // Failures are only resident transiently (partial results are never
  // stored, but the value is still shared with single-flight waiters).
  bytes += static_cast<int64_t>(report.failures.size() *
                                (sizeof(RetrievalReport::VideoFailure) + 64));
  // Pruned-video ids are corpus-sized, not result-sized: charge them so a
  // selective query over a large store pays its true cache footprint.
  bytes += static_cast<int64_t>(report.pruned_videos.size() *
                                sizeof(MetadataStore::VideoId));
  bytes += static_cast<int64_t>(report.shard_failures.size() *
                                (sizeof(RetrievalReport::ShardFailure) + 64));
  return bytes;
}

std::string OptionsFingerprint(const QueryOptions& options) {
  const char* engine = "v";
  switch (options.engine_mode) {
    case EngineMode::kInterpret: engine = "i"; break;
    case EngineMode::kVm: engine = "v"; break;
    case EngineMode::kDifferential: engine = "d"; break;
  }
  // prune and num_shards never change the ranked output (the differential
  // battery proves bit-identity), but the *reports* they cache differ
  // (videos_pruned, shard partitioning), so they key separately.
  return StrCat("u", options.until_threshold, "|a",
                options.and_semantics == AndSemantics::kFuzzyMin ? "min" : "sum",
                "|mb", options.picture.max_bindings, "|e", engine, "|p",
                options.prune ? 1 : 0, "|s", options.num_shards < 1 ? 1 : options.num_shards);
}

QueryCaches::QueryCaches(const QueryOptions& options)
    : mode_(options.cache_mode),
      results_(cache::CacheConfig{options.result_cache_bytes, options.cache_shards},
               "result"),
      lists_(cache::CacheConfig{options.list_cache_bytes, options.cache_shards}) {}

bool QueryCaches::LookupFaulted() {
  // By hand rather than HTL_FAULT_POINT: the injected error must degrade
  // to a cache bypass, not propagate out of the query.
  return FaultRegistry::Armed() &&
         !FaultRegistry::Instance().Hit("cache.lookup").ok();
}

bool QueryCaches::FillFaulted() {
  return FaultRegistry::Armed() && !FaultRegistry::Instance().Hit("cache.fill").ok();
}

}  // namespace htl
