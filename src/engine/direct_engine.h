#ifndef HTL_ENGINE_DIRECT_ENGINE_H_
#define HTL_ENGINE_DIRECT_ENGINE_H_

#include <map>
#include <string>

#include "engine/exec_context.h"
#include "engine/query_options.h"
#include "htl/ast.h"
#include "htl/classifier.h"
#include "model/video.h"
#include "picture/picture_system.h"
#include "sim/sim_table.h"
#include "util/result.h"

namespace htl {

/// Runtime counters for one DirectEngine — observability for the ablation
/// benches and for verifying cache behaviour.
struct EngineStats {
  int64_t atomic_queries = 0;      // Picture-system queries executed.
  int64_t atomic_cache_hits = 0;   // Atomic tables served from cache.
  int64_t table_joins = 0;         // and / or / until joins.
  int64_t exists_collapses = 0;
  int64_t freeze_joins = 0;
  int64_t level_evaluations = 0;   // Per-parent subsequence evaluations.
};

/// The optimized retrieval engine of section 3: evaluates extended
/// conjunctive HTL formulas bottom-up over similarity lists and similarity
/// tables.
///
/// Evaluation strategy per node:
///   * maximal atomic (non-temporal) subtrees become one picture-system
///     query each; the resulting table is cached per (subtree, level) and
///     clipped to the sequence bounds in effect;
///   * `and` / `until` are table joins whose row lists merge with the
///     linear-time algorithms of section 3.1 (AndMerge / UntilMerge);
///   * `next` shifts lists; `eventually` is the suffix-max sweep;
///   * prenex `exists` collapses the table by max-merging rows (the
///     modified m-way merge of section 3.2);
///   * freeze quantifiers join with attribute value tables (section 3.3);
///   * level modal operators evaluate their body over each node's
///     descendant subsequence and read the value at its first element
///     (the extension to multi-level videos sketched in section 3);
///   * `or` is supported as a max-merge extension, and `not` over *closed*
///     subformulas as a list complement; negation over free variables
///     reports Unimplemented — use ReferenceEngine for those.
class DirectEngine {
 public:
  /// `video` must outlive the engine.
  explicit DirectEngine(const VideoTree* video, QueryOptions options = {});

  /// Similarity list of the closed formula `f` over the segments of
  /// `level` (the proper sequence of the root's descendants there).
  /// This is the operation the paper's experiments time.
  Result<SimilarityList> EvaluateList(int level, const Formula& f);

  /// Similarity of `f` at the root of the video, in the one-element root
  /// sequence — "satisfied by a video" (section 2.3).
  Result<Sim> EvaluateVideo(const Formula& f);

  PictureSystem& pictures() { return pictures_; }

  /// Attaches a deadline/cancellation/budget context polled at every
  /// evaluation node and charged for merged rows and materialized tables.
  /// Null (the default) disables all limits. The context must outlive the
  /// evaluation calls it governs.
  void set_exec_context(ExecContext* ctx) { exec_ = ctx; }

  /// Drops the per-formula caches (needed when the video's meta-data
  /// changes or when timing cold runs).
  void ClearCache();

  const EngineStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EngineStats{}; }

 private:
  Result<SimilarityTable> EvalTable(int level, const Interval& bounds, const Formula& f);
  Result<SimilarityTable> EvalLevelOp(int level, const Interval& bounds,
                                      const Formula& f);
  Result<int> ResolveLevel(int level, const LevelSpec& spec) const;

  const VideoTree* video_;
  QueryOptions options_;
  PictureSystem pictures_;
  ExecContext* exec_ = nullptr;  // Not owned; null means unlimited.
  EngineStats stats_;
  // Full-level atomic tables keyed by (formula text, level). Text keys are
  // stable across formula lifetimes (pointer keys would alias when a freed
  // formula's address is reused by a later parse).
  std::map<std::pair<std::string, int>, SimilarityTable> atomic_cache_;
  // Value tables keyed by (term string, level).
  std::map<std::pair<std::string, int>, ValueTable> value_cache_;
};

/// Evaluates a list-only (type (1), plus the `or` extension) formula over
/// externally supplied similarity lists for its atomic predicates — the
/// §4.2 experimental setup, where "both systems take the similarity tables
/// associated with the atomic subformulas as input". Atomic leaves must be
/// nullary-shaped predicates: a kPredicate constraint whose name keys into
/// `inputs` (its arguments are ignored). kTrue is not allowed (it needs the
/// sequence length, which lists do not carry).
Result<SimilarityList> EvaluateWithLists(
    const Formula& f, const std::map<std::string, SimilarityList>& inputs,
    const QueryOptions& options = {});

}  // namespace htl

#endif  // HTL_ENGINE_DIRECT_ENGINE_H_
