#ifndef HTL_ENGINE_DIRECT_ENGINE_H_
#define HTL_ENGINE_DIRECT_ENGINE_H_

#include <map>
#include <memory>
#include <string>

#include "engine/exec_context.h"
#include "engine/query_options.h"
#include "htl/ast.h"
#include "htl/classifier.h"
#include "model/video.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "picture/picture_system.h"
#include "sim/sim_table.h"
#include "util/result.h"

namespace htl {
namespace cache {
class SimListCache;
}  // namespace cache
namespace vm {
class Arena;
struct ExecEnv;
struct Program;
}  // namespace vm

/// Point-in-time snapshot of one DirectEngine's runtime counters —
/// observability for the ablation benches and for verifying cache behaviour.
/// Returned by value from DirectEngine::stats(); the live counters are
/// relaxed atomics (obs::Counter), so snapshotting and ResetStats() are
/// race-free against a query running on another thread.
struct EngineStats {
  int64_t atomic_queries = 0;      // Picture-system queries executed.
  int64_t atomic_cache_hits = 0;   // Atomic tables served from cache.
  int64_t table_joins = 0;         // and / or / until joins.
  int64_t exists_collapses = 0;
  int64_t freeze_joins = 0;
  int64_t level_evaluations = 0;   // Per-parent subsequence evaluations.
};

/// The optimized retrieval engine of section 3: evaluates extended
/// conjunctive HTL formulas bottom-up over similarity lists and similarity
/// tables.
///
/// Evaluation strategy per node:
///   * maximal atomic (non-temporal) subtrees become one picture-system
///     query each; the resulting table is cached per (subtree, level) and
///     clipped to the sequence bounds in effect;
///   * `and` / `until` are table joins whose row lists merge with the
///     linear-time algorithms of section 3.1 (AndMerge / UntilMerge);
///   * `next` shifts lists; `eventually` is the suffix-max sweep;
///   * prenex `exists` collapses the table by max-merging rows (the
///     modified m-way merge of section 3.2);
///   * freeze quantifiers join with attribute value tables (section 3.3);
///   * level modal operators evaluate their body over each node's
///     descendant subsequence and read the value at its first element
///     (the extension to multi-level videos sketched in section 3);
///   * `or` is supported as a max-merge extension, and `not` over *closed*
///     subformulas as a list complement; negation over free variables
///     reports Unimplemented — use ReferenceEngine for those.
///
/// Two executors implement this strategy (QueryOptions::engine_mode): the
/// tree-walk interpreter above doubles as the executable specification, and
/// the register bytecode VM (src/vm/) compiles each formula once and runs it
/// per video over a bump-pointer arena. They are proven bit-identical —
/// results, statuses, trace spans, budget charges — by the differential
/// battery (tests/property/vm_differential_test.cc); kDifferential runs both
/// on every evaluation and returns Internal on any divergence.
class DirectEngine {
 public:
  /// `video` must outlive the engine.
  explicit DirectEngine(const VideoTree* video, QueryOptions options = {});
  ~DirectEngine();

  /// Similarity list of the closed formula `f` over the segments of
  /// `level` (the proper sequence of the root's descendants there).
  /// This is the operation the paper's experiments time.
  Result<SimilarityList> EvaluateList(int level, const Formula& f);

  /// Similarity of `f` at the root of the video, in the one-element root
  /// sequence — "satisfied by a video" (section 2.3).
  Result<Sim> EvaluateVideo(const Formula& f);

  PictureSystem& pictures() { return pictures_; }

  /// Attaches a deadline/cancellation/budget context polled at every
  /// evaluation node and charged for merged rows and materialized tables.
  /// Null (the default) disables all limits. The context must outlive the
  /// evaluation calls it governs.
  void set_exec_context(ExecContext* ctx) { exec_ = ctx; }

  /// Drops the per-formula caches (needed when the video's meta-data
  /// changes or when timing cold runs).
  void ClearCache();

  /// Lends the engine a cross-query similarity-list cache (borrowed, may
  /// be null = disabled; must outlive the engine's evaluations). When set
  /// and QueryOptions::cache_mode allows it, every *closed* non-atomic
  /// sub-formula evaluated over a full level is served from / published
  /// to the cache under `(video_id, level, canonical sub-formula key)`,
  /// stamped with the epoch from set_cache_epoch().
  void set_list_cache(cache::SimListCache* cache, int64_t video_id) {
    list_cache_ = cache;
    cache_video_id_ = video_id;
  }

  /// The store epoch stamped on (and required of) cache entries; the
  /// retriever samples it once per query before evaluation starts.
  void set_cache_epoch(uint64_t epoch) { cache_epoch_ = epoch; }

  /// Snapshot of the live counters. By value: the underlying counters are
  /// atomics shared with a possibly-running query, so callers get a coherent
  /// detached copy instead of a reference into mutating state.
  EngineStats stats() const {
    EngineStats s;
    s.atomic_queries = counters_.atomic_queries.Value();
    s.atomic_cache_hits = counters_.atomic_cache_hits.Value();
    s.table_joins = counters_.table_joins.Value();
    s.exists_collapses = counters_.exists_collapses.Value();
    s.freeze_joins = counters_.freeze_joins.Value();
    s.level_evaluations = counters_.level_evaluations.Value();
    return s;
  }
  void ResetStats() {
    counters_.atomic_queries.Reset();
    counters_.atomic_cache_hits.Reset();
    counters_.table_joins.Reset();
    counters_.exists_collapses.Reset();
    counters_.freeze_joins.Reset();
    counters_.level_evaluations.Reset();
  }

 private:
  /// Live per-engine counters behind EngineStats (PR 3 folded the plain-int
  /// EngineStats into the obs layer; this is the thin compat backing).
  struct EngineCounters {
    obs::Counter atomic_queries;
    obs::Counter atomic_cache_hits;
    obs::Counter table_joins;
    obs::Counter exists_collapses;
    obs::Counter freeze_joins;
    obs::Counter level_evaluations;
  };

  // Per-mode entry points behind EvaluateList / EvaluateVideo.
  Result<SimilarityList> EvaluateListInterpreted(int level, const Formula& f);
  Result<SimilarityList> EvaluateListVm(int level, const Formula& f);
  Result<SimilarityList> EvaluateListDifferential(int level, const Formula& f);
  Result<Sim> EvaluateVideoInterpreted(const Formula& f);
  Result<Sim> EvaluateVideoVm(const Formula& f);
  Result<Sim> EvaluateVideoDifferential(const Formula& f);

  /// The compiled program for `f`, compiling on first use. Programs depend
  /// only on (formula text, options), both fixed for the engine's lifetime,
  /// so ClearCache() leaves them alone.
  Result<const vm::Program*> GetProgram(const Formula& f);
  /// The VM's borrowed view of this engine's caches, counters and context.
  vm::ExecEnv MakeVmEnv();

  Result<SimilarityTable> EvalTable(int level, const Interval& bounds, const Formula& f);
  /// The operator switch behind EvalTable (which wraps it with the depth
  /// poll, the atomic-subtree cache, and the similarity-list cache).
  Result<SimilarityTable> EvalNode(int level, const Interval& bounds, const Formula& f);
  Result<SimilarityTable> EvalLevelOp(int level, const Interval& bounds,
                                      const Formula& f);
  Result<int> ResolveLevel(int level, const LevelSpec& spec) const;

  /// The trace riding on the attached ExecContext (null when unprofiled).
  obs::QueryTrace* trace() const {
    return exec_ != nullptr ? exec_->trace() : nullptr;
  }

  const VideoTree* video_;
  QueryOptions options_;
  PictureSystem pictures_;
  ExecContext* exec_ = nullptr;  // Not owned; null means unlimited.
  cache::SimListCache* list_cache_ = nullptr;  // Not owned; null disables.
  int64_t cache_video_id_ = 0;
  uint64_t cache_epoch_ = 0;
  EngineCounters counters_;
  // Full-level atomic tables keyed by (formula text, level). Text keys are
  // stable across formula lifetimes (pointer keys would alias when a freed
  // formula's address is reused by a later parse).
  std::map<std::pair<std::string, int>, SimilarityTable> atomic_cache_;
  // Value tables keyed by (term string, level).
  std::map<std::pair<std::string, int>, ValueTable> value_cache_;
  // Compiled programs keyed by formula text (see GetProgram).
  std::map<std::string, std::unique_ptr<const vm::Program>> programs_;
  // The per-evaluation bump arena the VM runs over; reset at every
  // evaluation, so peak footprint is the largest single evaluation.
  std::unique_ptr<vm::Arena> arena_;
};

/// Evaluates a list-only (type (1), plus the `or` extension) formula over
/// externally supplied similarity lists for its atomic predicates — the
/// §4.2 experimental setup, where "both systems take the similarity tables
/// associated with the atomic subformulas as input". Atomic leaves must be
/// nullary-shaped predicates: a kPredicate constraint whose name keys into
/// `inputs` (its arguments are ignored). kTrue is not allowed (it needs the
/// sequence length, which lists do not carry).
///
/// When `trace` is non-null, every merge operator opens a span on it with
/// the intervals it produced — the §4.2 benches print these as per-operator
/// profiles. Null (the default) costs one branch per node.
Result<SimilarityList> EvaluateWithLists(
    const Formula& f, const std::map<std::string, SimilarityList>& inputs,
    const QueryOptions& options = {}, obs::QueryTrace* trace = nullptr);

}  // namespace htl

#endif  // HTL_ENGINE_DIRECT_ENGINE_H_
