#ifndef HTL_ENGINE_LEVEL_EVAL_H_
#define HTL_ENGINE_LEVEL_EVAL_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "model/object.h"
#include "sim/sim_table.h"
#include "util/result.h"

namespace htl {

/// Per-position accumulator behind the level modal operators: collects, for
/// every (object bindings, value ranges) key, run-length-encoded entries
/// over the parent-level positions, then materializes the result table.
///
/// Shared verbatim by the tree-walk interpreter
/// (DirectEngine::EvalLevelOp) and the bytecode VM's kLevelEval handler
/// (src/vm/vm.cc), so both executors produce bit-identical level-operator
/// results by construction — do not fork this logic.
class LevelAccumulator {
 public:
  /// Captures the output schema from the first evaluated position's table
  /// (even an empty one — the schema is what matters).
  void SetSchema(const std::vector<std::string>& object_vars,
                 const std::vector<std::string>& attr_vars) {
    if (!schema_.has_value()) schema_ = SimilarityTable(object_vars, attr_vars);
  }
  bool has_schema() const { return schema_.has_value(); }

  /// Feeds one row's value at parent position `pos` (the body's similarity
  /// at the first element of the position's descendant sequence). Zero and
  /// negative values are dropped; equal values at adjacent positions extend
  /// the previous run.
  void Add(SegmentId pos, double value, const std::vector<ObjectId>& objects,
           const std::vector<ValueRange>& ranges);

  /// Builds the result table (empty when no position was fed a schema);
  /// every row's list gets `body_max` as its maximum.
  Result<SimilarityTable> Finish(double body_max);

 private:
  struct Accum {
    std::vector<ObjectId> objects;
    std::vector<ValueRange> ranges;
    std::vector<SimEntry> entries;
  };

  std::optional<SimilarityTable> schema_;
  std::map<std::string, Accum> accums_;
};

}  // namespace htl

#endif  // HTL_ENGINE_LEVEL_EVAL_H_
