#include "vm/vm.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "engine/level_eval.h"
#include "obs/metrics.h"
#include "sim/list_ops.h"
#include "sim/merge_kernels.h"
#include "sim/table_ops.h"
#include "util/fault_point.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace htl {
namespace vm {
namespace {

/// Merges adjacent equal-valued runs in place — the arena-side counterpart
/// of SimilarityList::Canonicalize. The kernels never emit empty ranges or
/// non-positive values, so coalescing is the only normalization left.
void CanonicalizeInPlace(ArenaVec<SimEntry>& v) {
  size_t w = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (w > 0 && v[w - 1].actual == v[i].actual && v[w - 1].range.Adjacent(v[i].range)) {
      v[w - 1].range.end = v[i].range.end;
    } else {
      v[w++] = v[i];
    }
  }
  v.erase(v.begin() + w, v.end());
}

/// SimilarityList::ActualAt over a raw run span.
double SpanActualAt(kernel::EntrySpan s, SegmentId id) {
  auto it = std::upper_bound(s.begin(), s.end(), id,
                             [](SegmentId v, const SimEntry& e) { return v < e.range.begin; });
  if (it == s.begin()) return 0.0;
  --it;
  return it->range.Contains(id) ? it->actual : 0.0;
}

}  // namespace

/// One register file: the main program's, or one per level-body
/// subprogram, reused across the sweep positions. Subframes own their
/// arena and reset it at every position: nothing arena-backed escapes a
/// frame (level results leave through LevelAccumulator's heap entries,
/// cache publishes are heap copies), so per-position reuse is safe and
/// keeps a long sweep's footprint at its widest position, not its sum.
struct Executor::Frame {
  struct RegSlot {
    const SimEntry* data = nullptr;  // List registers: arena/cache runs.
    size_t size = 0;
    double max = 0.0;
    SimilarityTable table;  // Table registers.
    bool computed = false;  // Written this Run (common-sub-plan skip bit).
  };

  const Program* prog = nullptr;
  Arena* arena = nullptr;
  std::unique_ptr<Arena> owned_arena;  // Subframes only.
  std::vector<RegSlot> regs;
  // Cache hits alias cache-owned entries; pin them for the execution.
  std::vector<cache::SimListCache::ListPtr> pins;
  std::vector<std::unique_ptr<Frame>> subframes;  // Parallel to prog->subprograms.

  Frame(const Program* p, Arena* a) : prog(p), arena(a) {
    regs.resize(p->registers.size());
    subframes.resize(p->subprograms.size());
  }

  kernel::EntrySpan Span(uint16_t reg) const {
    return kernel::EntrySpan{regs[reg].data, regs[reg].size};
  }

  void SetList(uint16_t reg, const SimEntry* data, size_t size, double max) {
    RegSlot& r = regs[reg];
    r.data = data;
    r.size = size;
    r.max = max;
    r.computed = true;
  }
};

Executor::Executor(const Program& program, const ExecEnv& env, Arena* arena)
    : program_(program), env_(env) {
  main_ = std::make_unique<Frame>(&program_, arena);
}

Executor::~Executor() = default;

Status Executor::Run(int level, Interval bounds) { return RunFrame(*main_, level, bounds); }

RootView Executor::Root() const {
  const Frame::RegSlot& r = main_->regs[program_.root_reg];
  RootView v;
  v.is_list = program_.registers[program_.root_reg].is_list;
  v.data = r.data;
  v.size = r.size;
  v.max = r.max;
  v.table = &r.table;
  return v;
}

SimilarityList Executor::MaterializeList(const RootView& view, double fallback_max) {
  HTL_CHECK(view.is_list);
  if (view.size == 0) return SimilarityList(fallback_max);
  // Via MultiMax like SimilarityTable::ToList, so the sim.* metric traffic
  // of a VM materialization matches the interpreter's.
  std::vector<SimilarityList> one;
  one.push_back(SimilarityList::FromEntriesOrDie(
      std::vector<SimEntry>(view.data, view.data + view.size), view.max));
  return MultiMax(std::move(one));
}

Status Executor::RunFrame(Frame& frame, int level, Interval bounds) {
  if (frame.owned_arena != nullptr) frame.owned_arena->Reset();
  for (Frame::RegSlot& r : frame.regs) r.computed = false;
  frame.pins.clear();
  int live_depth = 0;
  Status st = RunCode(frame, level, bounds, live_depth);
  if (!st.ok() && env_.exec != nullptr) {
    // Mirror the interpreter's DepthScope unwinding: every successful
    // EnterDepth leaves on the way out of an error.
    for (; live_depth > 0; --live_depth) env_.exec->LeaveDepth();
  }
  return st;
}

Status Executor::RunCode(Frame& frame, int level, Interval bounds, int& live_depth) {
  const Program& p = *frame.prog;
  Arena& arena = *frame.arena;
  const bool full_level =
      bounds.begin == 1 && bounds.end == env_.video->NumSegments(level);

  // Borrows a register as the interpreter's table shape without copying:
  // table registers come back by reference, closed (0/1-row) list
  // registers materialize into the caller's scratch slot.
  auto reg_as_table = [&](uint16_t reg,
                          SimilarityTable& scratch) -> const SimilarityTable& {
    const Frame::RegSlot& r = frame.regs[reg];
    if (!p.registers[reg].is_list) return r.table;
    if (r.size == 0) {
      scratch = SimilarityTable();
    } else {
      scratch = SimilarityTable::FromList(SimilarityList::FromEntriesOrDie(
          std::vector<SimEntry>(r.data, r.data + r.size), r.max));
    }
    return scratch;
  };
  auto reg_rows = [&](uint16_t reg) -> int64_t {
    return p.registers[reg].is_list ? (frame.regs[reg].size > 0 ? 1 : 0)
                                    : frame.regs[reg].table.num_rows();
  };
  // Copies a <=1-row var-free table into a list register (arena).
  auto table_to_list_reg = [&](const Instruction& ins, const SimilarityTable& t) {
    HTL_DCHECK(t.num_rows() <= 1);
    if (t.num_rows() == 0) {
      frame.SetList(ins.dst, nullptr, 0, ins.static_max);
      return;
    }
    const SimilarityList& l = t.rows()[0].list;
    SimEntry* copy = arena.Allocate<SimEntry>(l.entries().size());
    std::copy(l.entries().begin(), l.entries().end(), copy);
    frame.SetList(ins.dst, copy, l.entries().size(), ins.static_max);
  };
  // Publishes the freshly available register to the cross-query list cache
  // exactly when the interpreter's EvalTable would after EvalNode: the op
  // span is already closed, so a degraded cache.fill trip attaches to the
  // enclosing span (if any), never to the op's own span.
  auto maybe_publish = [&](const Instruction& ins) {
    if (ins.key < 0 || env_.list_cache == nullptr ||
        env_.cache_mode != CacheMode::kReadWrite || !full_level) {
      return;
    }
    const Frame::RegSlot& r = frame.regs[ins.dst];
    if (ins.is_list()) {
      RootView v;
      v.is_list = true;
      v.data = r.data;
      v.size = r.size;
      v.max = r.max;
      env_.list_cache->Put(env_.cache_video_id, level, p.keys[ins.key],
                           env_.cache_epoch, MaterializeList(v, ins.static_max));
    } else if (r.table.num_rows() <= 1 && r.table.object_vars().empty() &&
               r.table.attr_vars().empty()) {
      env_.list_cache->Put(env_.cache_video_id, level, p.keys[ins.key],
                           env_.cache_epoch, r.table.ToList(ins.static_max));
    }
  };
  auto leave_depth = [&] {
    if (env_.exec != nullptr) {
      env_.exec->LeaveDepth();
      --live_depth;
    }
  };
  // Whether this compute may skip its kernel (value already in the shared
  // register from the defining occurrence of the common sub-plan).
  auto skip_kernel = [&](const Instruction& ins) {
    return ins.may_skip() && frame.regs[ins.dst].computed;
  };

  for (size_t pc = 0; pc < p.code.size(); ++pc) {
    const Instruction& ins = p.code[pc];
    switch (ins.op) {
      case OpCode::kEnter: {
        if (env_.exec != nullptr) {
          HTL_RETURN_IF_ERROR(env_.exec->EnterDepth());
          ++live_depth;
        }
        if (ins.key >= 0 && env_.list_cache != nullptr &&
            env_.cache_mode != CacheMode::kOff && full_level) {
          if (cache::SimListCache::ListPtr hit =
                  env_.list_cache->Get(env_.cache_video_id, level, p.keys[ins.key],
                                       env_.cache_epoch)) {
            HTL_OBS_SPAN(span, env_.trace, "cache.list");
            span.SetNote("hit");
            span.AddIntervals(static_cast<int64_t>(hit->entries().size()));
            if (ins.is_list()) {
              frame.SetList(ins.dst, hit->entries().data(), hit->entries().size(),
                            hit->max());
              frame.pins.push_back(std::move(hit));
            } else {
              Frame::RegSlot& dst = frame.regs[ins.dst];
              dst.table = hit->empty() ? SimilarityTable()
                                       : SimilarityTable::FromList(*hit);
              dst.computed = true;
            }
            leave_depth();
            pc = static_cast<size_t>(ins.skip_to) - 1;  // -1: loop increment.
          }
        }
        break;
      }

      case OpCode::kLoadAtomic: {
        const AtomicSlot& slot = p.atomics[ins.aux];
        auto key = std::make_pair(slot.text, level);
        auto it = env_.atomic_cache->find(key);
        if (it == env_.atomic_cache->end()) {
          env_.atomic_queries->Increment();
          HTL_OBS_COUNT("engine.atomic_queries", 1);
          SimilarityTable table;
          {
            HTL_OBS_SPAN(span, env_.trace, "op.picture_query");
            HTL_ASSIGN_OR_RETURN(table, env_.pictures->Query(level, slot.atomic));
            span.AddTables(1);
            span.AddRows(table.num_rows());
            if (env_.exec != nullptr) {
              HTL_RETURN_IF_ERROR(env_.exec->ChargeTable());
              HTL_RETURN_IF_ERROR(env_.exec->ChargeRows(table.num_rows()));
            }
          }
          it = env_.atomic_cache->emplace(std::move(key), std::move(table)).first;
        } else {
          env_.atomic_cache_hits->Increment();
          HTL_OBS_COUNT("engine.atomic_cache_hits", 1);
        }
        if (!skip_kernel(ins)) {
          const SimilarityTable& cached = it->second;
          if (ins.is_list()) {
            HTL_DCHECK(cached.num_rows() <= 1);
            if (cached.num_rows() == 0) {
              frame.SetList(ins.dst, nullptr, 0, ins.static_max);
            } else {
              const SimilarityList& l = cached.rows()[0].list;
              if (full_level) {
                // Clip to full bounds is the identity; alias the cache
                // entry (the per-engine atomic cache is append-only, so
                // the runs stay valid for the whole execution).
                frame.SetList(ins.dst, l.entries().data(), l.entries().size(),
                              ins.static_max);
              } else {
                ArenaVec<SimEntry> out(&arena, l.entries().size());
                kernel::ClipInto(
                    kernel::EntrySpan{l.entries().data(), l.entries().size()}, bounds,
                    out);
                frame.SetList(ins.dst, out.data(), out.size(), ins.static_max);
              }
            }
          } else {
            frame.regs[ins.dst].table = MapLists(
                cached, [&](const SimilarityList& l) { return l.Clip(bounds); });
            frame.regs[ins.dst].computed = true;
          }
        }
        leave_depth();
        break;
      }

      case OpCode::kLoadTrue: {
        if (!skip_kernel(ins)) {
          HTL_CHECK(!bounds.empty()) << "kTrue over an empty sequence";
          SimEntry* e = arena.Allocate<SimEntry>(1);
          e[0] = SimEntry{bounds, 1.0};
          frame.SetList(ins.dst, e, 1, ins.static_max);
        }
        leave_depth();
        break;
      }

      case OpCode::kLoadFalse: {
        if (!skip_kernel(ins)) frame.SetList(ins.dst, nullptr, 0, ins.static_max);
        leave_depth();
        break;
      }

      case OpCode::kAndMerge:
      case OpCode::kOrMerge:
      case OpCode::kUntilMerge: {
        HTL_FAULT_POINT("engine.table_join");
        env_.table_joins->Increment();
        HTL_OBS_COUNT("engine.table_joins", 1);
        const char* join_name = ins.op == OpCode::kOrMerge      ? "op.or_join"
                                : ins.op == OpCode::kUntilMerge ? "op.until_join"
                                                                : "op.and_join";
        {
        HTL_OBS_SPAN(span, env_.trace, join_name);
        const int64_t rows_in = reg_rows(ins.lhs) + reg_rows(ins.rhs);
        span.AddTables(1);
        span.AddRows(rows_in);
        if (env_.exec != nullptr) {
          HTL_RETURN_IF_ERROR(env_.exec->ChargeTable());
          HTL_RETURN_IF_ERROR(env_.exec->ChargeRows(rows_in));
        }
        if (skip_kernel(ins)) {
          // Fall through to publish/leave below the span.
        } else if (ins.is_list()) {
          // Closed operands: one shared kernel call reproduces the whole
          // join + one-sided rows + dedup pipeline bit for bit (the
          // combined row dominates the one-sided rows pointwise; see
          // DESIGN.md "Compiled execution").
          kernel::EntrySpan a = frame.Span(ins.lhs);
          kernel::EntrySpan b = frame.Span(ins.rhs);
          if (ins.op == OpCode::kUntilMerge) {
            HTL_OBS_COUNT("sim.until_merge.calls", 1);
            HTL_OBS_COUNT("sim.until_merge.entries_in",
                          static_cast<int64_t>(a.size + b.size));
            ArenaVec<Interval> support(&arena, a.size + 1);
            kernel::ThresholdSupportInto(a, env_.until_threshold * ins.lhs_max,
                                         support);
            const size_t bound = 2 * (b.size + support.size()) + 1;
            ArenaVec<SegmentId> pts(&arena, bound);
            ArenaVec<SimEntry> out(&arena, bound);
            kernel::BackwardUntilSweepInto(
                kernel::IntervalSpan{support.data(), support.size()},
                /*g_always=*/false, b, pts, out);
            std::reverse(out.begin(), out.end());
            CanonicalizeInPlace(out);
            frame.SetList(ins.dst, out.data(), out.size(), ins.static_max);
          } else {
            const size_t bound = 2 * (a.size + b.size) + 1;
            ArenaVec<SegmentId> pts(&arena, bound);
            ArenaVec<SimEntry> out(&arena, bound);
            if (ins.op == OpCode::kOrMerge) {
              HTL_OBS_COUNT("sim.or_merge.calls", 1);
              HTL_OBS_COUNT("sim.or_merge.entries_in",
                            static_cast<int64_t>(a.size + b.size));
              kernel::ZipMergeInto(
                  a, b, [](double x, double y) { return std::max(x, y); }, pts, out);
            } else if (ins.fuzzy()) {
              HTL_OBS_COUNT("sim.fuzzy_and_merge.calls", 1);
              HTL_OBS_COUNT("sim.fuzzy_and_merge.entries_in",
                            static_cast<int64_t>(a.size + b.size));
              const double mg = ins.lhs_max;
              const double mh = ins.rhs_max;
              const double out_max = mg + mh;
              kernel::ZipMergeInto(
                  a, b,
                  [=](double x, double y) {
                    const double frac_g = mg > 0 ? x / mg : 0.0;
                    const double frac_h = mh > 0 ? y / mh : 0.0;
                    return std::min(frac_g, frac_h) * out_max;
                  },
                  pts, out);
            } else {
              HTL_OBS_COUNT("sim.and_merge.calls", 1);
              HTL_OBS_COUNT("sim.and_merge.entries_in",
                            static_cast<int64_t>(a.size + b.size));
              kernel::ZipMergeInto(a, b, [](double x, double y) { return x + y; },
                                   pts, out);
            }
            CanonicalizeInPlace(out);
            frame.SetList(ins.dst, out.data(), out.size(), ins.static_max);
          }
        } else {
          SimilarityTable lhs_scratch, rhs_scratch;
          const SimilarityTable& lhs_t = reg_as_table(ins.lhs, lhs_scratch);
          const SimilarityTable& rhs_t = reg_as_table(ins.rhs, rhs_scratch);
          TableCombine op = ins.op == OpCode::kOrMerge      ? TableCombine::kOr
                            : ins.op == OpCode::kUntilMerge ? TableCombine::kUntil
                            : ins.fuzzy()                   ? TableCombine::kFuzzyAnd
                                                            : TableCombine::kAnd;
          frame.regs[ins.dst].table = JoinTables(lhs_t, ins.lhs_max, rhs_t,
                                                 ins.rhs_max, op, env_.until_threshold);
          frame.regs[ins.dst].computed = true;
        }
        }
        maybe_publish(ins);
        leave_depth();
        break;
      }

      case OpCode::kNextShift:
      case OpCode::kEventually: {
        const char* span_name =
            ins.op == OpCode::kNextShift ? "op.next_shift" : "op.eventually";
        {
        HTL_OBS_SPAN(span, env_.trace, span_name);
        span.AddRows(reg_rows(ins.lhs));
        if (skip_kernel(ins)) {
          // Fall through to publish/leave below the span.
        } else if (ins.is_list()) {
          kernel::EntrySpan a = frame.Span(ins.lhs);
          if (ins.op == OpCode::kNextShift) {
            HTL_OBS_COUNT("sim.next_shift.calls", 1);
            ArenaVec<SimEntry> shifted(&arena, a.size + 1);
            kernel::NextShiftInto(a, shifted);
            CanonicalizeInPlace(shifted);
            ArenaVec<SimEntry> out(&arena, shifted.size() + 1);
            kernel::ClipInto(kernel::EntrySpan{shifted.data(), shifted.size()},
                             bounds, out);
            frame.SetList(ins.dst, out.data(), out.size(), ins.static_max);
          } else {
            HTL_OBS_COUNT("sim.eventually.calls", 1);
            HTL_OBS_COUNT("sim.eventually.entries_in", static_cast<int64_t>(a.size));
            const size_t bound = 2 * a.size + 2;
            ArenaVec<SegmentId> pts(&arena, bound);
            ArenaVec<SimEntry> out(&arena, bound);
            kernel::BackwardUntilSweepInto(kernel::IntervalSpan{nullptr, 0},
                                           /*g_always=*/true, a, pts, out);
            std::reverse(out.begin(), out.end());
            CanonicalizeInPlace(out);
            frame.SetList(ins.dst, out.data(), out.size(), ins.static_max);
          }
        } else {
          SimilarityTable scratch;
          const SimilarityTable& t = reg_as_table(ins.lhs, scratch);
          frame.regs[ins.dst].table =
              ins.op == OpCode::kNextShift
                  ? MapLists(t,
                             [&](const SimilarityList& l) {
                               return NextShift(l).Clip(bounds);
                             })
                  : MapLists(t, [](const SimilarityList& l) { return Eventually(l); });
          frame.regs[ins.dst].computed = true;
        }
        }
        maybe_publish(ins);
        leave_depth();
        break;
      }

      case OpCode::kExistsCollapse: {
        env_.exists_collapses->Increment();
        HTL_OBS_COUNT("engine.exists_collapses", 1);
        {
        HTL_OBS_SPAN(span, env_.trace, "op.exists_collapse");
        span.AddRows(reg_rows(ins.lhs));
        if (!skip_kernel(ins)) {
          if (ins.is_list() && p.registers[ins.lhs].is_list) {
            // Closed child: collapsing a 0/1-row var-free table is the
            // identity; alias the operand.
            const Frame::RegSlot& src = frame.regs[ins.lhs];
            frame.SetList(ins.dst, src.data, src.size, ins.static_max);
          } else {
            SimilarityTable scratch;
            SimilarityTable collapsed = CollapseExists(
                reg_as_table(ins.lhs, scratch), p.exists_sets[ins.aux]);
            if (ins.is_list()) {
              table_to_list_reg(ins, collapsed);
            } else {
              frame.regs[ins.dst].table = std::move(collapsed);
              frame.regs[ins.dst].computed = true;
            }
          }
        }
        }
        maybe_publish(ins);
        leave_depth();
        break;
      }

      case OpCode::kFreezeJoin: {
        const FreezeSlot& slot = p.freezes[ins.aux];
        if (p.registers[ins.lhs].is_list) {
          // The child never bound the variable (no attr columns at all):
          // the interpreter returns the child table untouched, before any
          // value-table or counter traffic.
          if (!skip_kernel(ins)) {
            const Frame::RegSlot& src = frame.regs[ins.lhs];
            frame.SetList(ins.dst, src.data, src.size, ins.static_max);
          }
          maybe_publish(ins);
          leave_depth();
          break;
        }
        const SimilarityTable& t = frame.regs[ins.lhs].table;
        if (t.AttrColumn(slot.var) < 0) {  // Variable unused at runtime.
          if (!skip_kernel(ins)) {
            if (ins.is_list()) {
              table_to_list_reg(ins, t);
            } else {
              frame.regs[ins.dst].table = t;
              frame.regs[ins.dst].computed = true;
            }
          }
          maybe_publish(ins);
          leave_depth();
          break;
        }
        auto key = std::make_pair(slot.term_text, level);
        auto it = env_.value_cache->find(key);
        if (it == env_.value_cache->end()) {
          HTL_OBS_SPAN(vspan, env_.trace, "op.value_table");
          HTL_FAULT_POINT("engine.value_table");
          HTL_ASSIGN_OR_RETURN(ValueTable vt, env_.pictures->Values(level, slot.term));
          vspan.AddRows(vt.num_rows());
          vspan.AddTables(1);
          it = env_.value_cache->emplace(std::move(key), std::move(vt)).first;
        }
        env_.freeze_joins->Increment();
        HTL_OBS_COUNT("engine.freeze_joins", 1);
        {
        HTL_OBS_SPAN(span, env_.trace, "op.freeze_join");
        span.AddRows(t.num_rows());
        if (!skip_kernel(ins)) {
          SimilarityTable joined = FreezeJoin(t, slot.var, it->second);
          if (ins.is_list()) {
            table_to_list_reg(ins, joined);
          } else {
            frame.regs[ins.dst].table = std::move(joined);
            frame.regs[ins.dst].computed = true;
          }
        }
        }
        maybe_publish(ins);
        leave_depth();
        break;
      }

      case OpCode::kNegate: {
        if (!p.registers[ins.lhs].is_list) {
          const SimilarityTable& t = frame.regs[ins.lhs].table;
          if (!t.object_vars().empty() || !t.attr_vars().empty()) {
            return Status::Unimplemented(
                "negation over free variables is outside the extended conjunctive "
                "class (section 2.5); use ReferenceEngine for general formulas");
          }
        }
        {
        HTL_OBS_SPAN(span, env_.trace, "op.complement");
        span.AddRows(reg_rows(ins.lhs));
        if (!skip_kernel(ins)) {
          if (ins.is_list() && p.registers[ins.lhs].is_list) {
            kernel::EntrySpan a = frame.Span(ins.lhs);
            ArenaVec<SimEntry> out(&arena, 2 * a.size + 1);
            kernel::ComplementInto(a, ins.lhs_max, bounds, out);
            CanonicalizeInPlace(out);
            frame.SetList(ins.dst, out.data(), out.size(), ins.static_max);
          } else {
            // Runtime-closed table operand: the interpreter's heap path.
            SimilarityTable scratch;
            SimilarityTable negated = SimilarityTable::FromList(Complement(
                reg_as_table(ins.lhs, scratch).ToList(ins.lhs_max), bounds));
            if (ins.is_list()) {
              table_to_list_reg(ins, negated);
            } else {
              frame.regs[ins.dst].table = std::move(negated);
              frame.regs[ins.dst].computed = true;
            }
          }
        }
        }
        maybe_publish(ins);
        leave_depth();
        break;
      }

      case OpCode::kLevelEval: {
        const LevelSlot& slot = p.levels[ins.aux];
        {
        HTL_OBS_SPAN(span, env_.trace, "op.level_eval");
        // ResolveLevel, inlined: kNextLevel may exceed num_levels (zeroes);
        // absolute/named targets must lie strictly below the current level.
        int target = 0;
        switch (slot.spec.kind) {
          case LevelSpec::Kind::kNextLevel:
            target = level + 1;
            break;
          case LevelSpec::Kind::kAbsolute:
            target = slot.spec.level;
            break;
          case LevelSpec::Kind::kNamed: {
            HTL_ASSIGN_OR_RETURN(target, env_.video->LevelByName(slot.spec.name));
            break;
          }
        }
        if (slot.spec.kind != LevelSpec::Kind::kNextLevel &&
            (target <= level || target > env_.video->num_levels())) {
          return Status::InvalidArgument(
              StrCat("level operator targets level ", target, " from level ", level));
        }
        if (target > env_.video->num_levels()) {
          // at-next-level below the leaves: similarity zero everywhere.
          if (ins.is_list()) {
            frame.SetList(ins.dst, nullptr, 0, ins.static_max);
          } else {
            frame.regs[ins.dst].table = SimilarityTable();
            frame.regs[ins.dst].computed = true;
          }
        } else {
        if (frame.subframes[slot.subprogram] == nullptr) {
          auto sub = std::make_unique<Frame>(&p.subprograms[slot.subprogram], nullptr);
          sub->owned_arena = std::make_unique<Arena>();
          sub->arena = sub->owned_arena.get();
          frame.subframes[slot.subprogram] = std::move(sub);
        }
        Frame& sub = *frame.subframes[slot.subprogram];
        const Program& sp = *sub.prog;
        const bool sub_is_list = sp.registers[sp.root_reg].is_list;
        LevelAccumulator acc;
        for (SegmentId pos = bounds.begin; pos <= bounds.end; ++pos) {
          HTL_CHECK_EXEC(env_.exec);
          const Interval seq = slot.spec.kind == LevelSpec::Kind::kNextLevel
                                   ? env_.video->Children(level, pos)
                                   : env_.video->DescendantsAtLevel(level, pos, target);
          if (seq.empty()) continue;
          env_.level_evaluations->Increment();
          HTL_OBS_COUNT("engine.level_evaluations", 1);
          HTL_RETURN_IF_ERROR(RunFrame(sub, target, seq));
          if (sub_is_list) {
            const Frame::RegSlot& root = sub.regs[sp.root_reg];
            if (!acc.has_schema()) acc.SetSchema({}, {});
            if (root.size > 0) {
              acc.Add(pos, SpanActualAt(kernel::EntrySpan{root.data, root.size},
                                        seq.begin),
                      {}, {});
            }
          } else {
            const SimilarityTable& t = sub.regs[sp.root_reg].table;
            if (!acc.has_schema()) acc.SetSchema(t.object_vars(), t.attr_vars());
            for (const SimilarityTable::Row& row : t.rows()) {
              acc.Add(pos, row.list.ActualAt(seq.begin), row.objects, row.ranges);
            }
          }
        }
        HTL_ASSIGN_OR_RETURN(SimilarityTable out, acc.Finish(slot.body_max));
        // Level subtrees are never common-sub-plan deduped (their bounds
        // differ per position), so no skip check here.
        if (ins.is_list()) {
          table_to_list_reg(ins, out);
        } else {
          frame.regs[ins.dst].table = std::move(out);
          frame.regs[ins.dst].computed = true;
        }
        }
        }
        maybe_publish(ins);
        leave_depth();
        break;
      }

      case OpCode::kEmit:
        return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace vm
}  // namespace htl
