#ifndef HTL_VM_ARENA_H_
#define HTL_VM_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace htl {
namespace vm {

/// Bump-pointer arena backing one program execution (one video evaluation).
/// Every VM register's similarity runs live here; Reset() reclaims the
/// whole execution's memory in O(chunks) without touching the allocator,
/// which is what removes the per-operator heap churn the interpreter pays
/// in src/sim/ (one or more std::vector allocations per evaluated node).
///
/// Layout: a chain of geometrically growing chunks. Allocations bump a
/// pointer within the current chunk; when a request does not fit, a new
/// chunk of max(2 * previous, request) bytes is appended. Requests larger
/// than kMaxChunkBytes get a dedicated exact-size chunk (the
/// "large-allocation fallback") so one huge register does not poison the
/// doubling sequence. Reset() keeps the chunks and rewinds the cursor, so
/// steady-state executions allocate nothing.
///
/// Under AddressSanitizer the unused tail of every chunk and all reclaimed
/// space after Reset() are poisoned, so a stale pointer into a previous
/// execution's registers faults immediately instead of silently reading
/// reused memory (tests/vm/arena_test.cc).
///
/// Not thread-safe: one arena belongs to one engine evaluation at a time
/// (DirectEngine serializes evaluations per video slot).
class Arena {
 public:
  /// Default first-chunk size; later chunks double up to kMaxChunkBytes.
  static constexpr size_t kMinChunkBytes = 4 * 1024;
  static constexpr size_t kMaxChunkBytes = 1 * 1024 * 1024;

  explicit Arena(size_t first_chunk_bytes = kMinChunkBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `n` bytes aligned to `align` (power of two, <= alignof(max_align_t)).
  void* AllocateBytes(size_t n, size_t align);

  /// Uninitialized storage for `n` objects of trivially-destructible T.
  /// (The arena never runs destructors — that is the point.)
  template <typename T>
  T* Allocate(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without destructors");
    return static_cast<T*>(AllocateBytes(n * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty, keeping every chunk for reuse (and re-poisoning the
  /// reclaimed space under ASan). O(number of chunks).
  void Reset();

  /// Total bytes handed out since the last Reset().
  size_t bytes_used() const { return bytes_used_; }
  /// Total capacity currently held (survives Reset()).
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t num_chunks() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  /// Makes the cursor chunk able to hold `n` bytes, appending a chunk if
  /// needed.
  void AddChunk(size_t min_bytes);

  std::vector<Chunk> chunks_;
  size_t cursor_chunk_ = 0;  // Chunk currently being bumped.
  size_t cursor_ = 0;        // Offset within it.
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
};

/// A minimal growable array on an Arena — the output container the shared
/// merge kernels (sim/merge_kernels.h) write into. Capacity is reserved up
/// front from the kernels' documented output bounds, so push_back never
/// relocates in the common case; if a bound is ever exceeded the storage
/// doubles with an arena copy (the old block is abandoned to the arena).
/// Satisfies the kernels' Vec concept: push_back / size / operator[] /
/// back / begin / end / erase(first, last).
template <typename T>
class ArenaVec {
 public:
  ArenaVec(Arena* arena, size_t capacity) : arena_(arena) { Reserve(capacity); }

  void push_back(const T& v) {
    if (size_ == capacity_) Grow();
    data_[size_++] = v;
  }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  void erase(T* first, T* last) {
    // Only the tail form `erase(it, end())` is used (sort+unique in the
    // kernels); a general erase would need element moves.
    if (last == data_ + size_) size_ = static_cast<size_t>(first - data_);
  }

  T* data() { return data_; }
  const T* data() const { return data_; }

 private:
  void Reserve(size_t capacity) {
    capacity_ = capacity > 0 ? capacity : 1;
    data_ = arena_->Allocate<T>(capacity_);
  }
  void Grow() {
    T* old = data_;
    size_t old_cap = capacity_;
    Reserve(old_cap * 2);
    for (size_t i = 0; i < size_; ++i) data_[i] = old[i];
    (void)old_cap;
  }

  Arena* arena_;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace vm
}  // namespace htl

#endif  // HTL_VM_ARENA_H_
