#include <cstdio>
#include <string>

#include "htl/classifier.h"
#include "util/string_util.h"
#include "vm/bytecode.h"

// Text renderer for compiled programs, snapshotted by the golden tests
// (tests/integration/golden_program_test.cc). Every field that affects
// execution appears here, so an unintended compiler change shows up as a
// golden diff. Keep the format deterministic: no pointers, no hashes.

namespace htl {
namespace vm {
namespace {

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string Pc(size_t pc) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04zu", pc);
  return buf;
}

void AppendProgram(const Program& p, const std::string& indent, std::string& out) {
  out += StrCat(indent, "program: ", p.formula_text, "\n");
  out += StrCat(indent, "class: ", FormulaClassName(p.formula_class), "\n");
  out += StrCat(indent, "root: r", p.root_reg, " max=", Num(p.root_max), "\n");
  out += StrCat(indent, "registers: ", p.registers.size(), "\n");
  for (size_t i = 0; i < p.registers.size(); ++i) {
    out += StrCat(indent, "  r", i, " ", p.registers[i].is_list ? "list" : "table",
                  " max=", Num(p.registers[i].static_max), "\n");
  }
  out += StrCat(indent, "code:\n");
  for (size_t pc = 0; pc < p.code.size(); ++pc) {
    const Instruction& ins = p.code[pc];
    std::string line = StrCat(indent, "  ", Pc(pc), " ", OpCodeName(ins.op));
    while (line.size() < indent.size() + 22) line += ' ';
    switch (ins.op) {
      case OpCode::kEnter:
        line += StrCat("dst=r", ins.dst, " skip=", Pc(static_cast<size_t>(ins.skip_to)));
        if (ins.key >= 0) line += StrCat(" key=k", ins.key);
        break;
      case OpCode::kLoadAtomic:
        line += StrCat("r", ins.dst, " <- atomic[", ins.aux, "]");
        break;
      case OpCode::kLoadTrue:
      case OpCode::kLoadFalse:
        line += StrCat("r", ins.dst);
        break;
      case OpCode::kAndMerge:
      case OpCode::kOrMerge:
      case OpCode::kUntilMerge:
        line += StrCat("r", ins.dst, " <- r", ins.lhs, ", r", ins.rhs,
                       " lmax=", Num(ins.lhs_max), " rmax=", Num(ins.rhs_max));
        if (ins.fuzzy()) line += " fuzzy";
        break;
      case OpCode::kNextShift:
      case OpCode::kEventually:
      case OpCode::kNegate:
        line += StrCat("r", ins.dst, " <- r", ins.lhs, " lmax=", Num(ins.lhs_max));
        break;
      case OpCode::kExistsCollapse:
        line += StrCat("r", ins.dst, " <- r", ins.lhs, " vars[", ins.aux, "]");
        break;
      case OpCode::kFreezeJoin:
        line += StrCat("r", ins.dst, " <- r", ins.lhs, " freeze[", ins.aux, "]");
        break;
      case OpCode::kLevelEval:
        line += StrCat("r", ins.dst, " <- level[", ins.aux, "]");
        break;
      case OpCode::kEmit:
        line += StrCat("r", ins.lhs);
        break;
    }
    if (ins.op != OpCode::kEnter) {
      line += StrCat(" max=", Num(ins.static_max));
      if (ins.key >= 0) line += StrCat(" key=k", ins.key);
      if (ins.may_skip()) line += " may_skip";
    }
    if (pc < p.node_text.size() && !p.node_text[pc].empty()) {
      line += StrCat("  ; ", p.node_text[pc]);
    }
    out += line + "\n";
  }
  for (size_t i = 0; i < p.atomics.size(); ++i) {
    out += StrCat(indent, "atomic[", i, "]: ", p.atomics[i].text, "\n");
  }
  for (size_t i = 0; i < p.exists_sets.size(); ++i) {
    out += StrCat(indent, "vars[", i, "]: {", StrJoin(p.exists_sets[i], ", "), "}\n");
  }
  for (size_t i = 0; i < p.freezes.size(); ++i) {
    out += StrCat(indent, "freeze[", i, "]: ", p.freezes[i].var, " <- ",
                  p.freezes[i].term_text, "\n");
  }
  for (size_t i = 0; i < p.levels.size(); ++i) {
    out += StrCat(indent, "level[", i, "]: ", p.levels[i].spec.ToString(), " sub=",
                  p.levels[i].subprogram, " body_max=", Num(p.levels[i].body_max), "\n");
  }
  for (size_t i = 0; i < p.keys.size(); ++i) {
    out += StrCat(indent, "k", i, ": ", p.keys[i], "\n");
  }
  for (size_t i = 0; i < p.subprograms.size(); ++i) {
    out += StrCat(indent, "subprogram ", i, ":\n");
    AppendProgram(p.subprograms[i], indent + "  ", out);
  }
}

}  // namespace

std::string Disassemble(const Program& program) {
  std::string out;
  AppendProgram(program, "", out);
  return out;
}

}  // namespace vm
}  // namespace htl
