#ifndef HTL_VM_BYTECODE_H_
#define HTL_VM_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "htl/ast.h"
#include "htl/classifier.h"
#include "picture/atomic.h"

namespace htl {
namespace vm {

/// One opcode per evaluation-node kind of the tree-walk interpreter
/// (engine/direct_engine.cc EvalNode), plus kEnter/kEmit framing. The
/// instruction stream is the interpreter's recursion linearized in
/// post-order: for every formula node the compiler emits one kEnter
/// (depth-budget poll + optional similarity-list-cache probe) followed by
/// the node's children and then its compute opcode — so depth charges,
/// row/table charges, fault points, cache traffic, and obs spans fire in
/// exactly the interpreter's order (the differential-proof contract,
/// DESIGN.md "Compiled execution").
///
/// tools/lint.py (`vm-opcode-coverage`) requires every enumerator here to
/// appear in the compiler (vm/compiler.cc), the dispatch switch (vm/vm.cc),
/// and the disassembler (vm/disasm.cc): no silent partial ops.
enum class OpCode : uint8_t {
  kEnter,           // Depth poll; cache probe when key >= 0 (hit jumps skip_to).
  kLoadAtomic,      // dst <- picture query (atomic-table cache), clipped to bounds.
  kLoadTrue,        // dst <- {bounds : 1.0}.
  kLoadFalse,       // dst <- empty.
  kAndMerge,        // dst <- lhs ∧ rhs (sum or fuzzy-min per kFlagFuzzy).
  kOrMerge,         // dst <- lhs ∨ rhs (max-merge).
  kUntilMerge,      // dst <- lhs U rhs (threshold sweep).
  kNextShift,       // dst <- next(lhs), clipped to bounds.
  kEventually,      // dst <- eventually(lhs).
  kExistsCollapse,  // dst <- lhs with quantified columns collapsed.
  kFreezeJoin,      // dst <- lhs joined with the value table of its term.
  kNegate,          // dst <- complement(lhs) over bounds (closed only).
  kLevelEval,       // dst <- body subprogram swept over descendant sequences.
  kEmit,            // Finish: the result is register lhs.
};

const char* OpCodeName(OpCode op);

/// Instruction flags.
enum : uint8_t {
  /// dst is a list register (closed subformula — the arena fast path);
  /// unset means dst is a SimilarityTable register (free variables).
  kFlagList = 1 << 0,
  /// kAndMerge combines with fuzzy-min semantics (QueryOptions baked in at
  /// compile time; the options fingerprint keys the caches).
  kFlagFuzzy = 1 << 1,
  /// Common-sub-plan duplicate (same canonical fingerprint as an earlier
  /// node): dst already holds the value when the defining occurrence ran,
  /// so the kernel may be skipped — but charges, fault points, counters and
  /// spans still fire so the event stream stays identical.
  kFlagMaySkip = 1 << 2,
};

struct Instruction {
  OpCode op = OpCode::kEnter;
  uint8_t flags = 0;
  uint16_t dst = 0;   // Result register.
  uint16_t lhs = 0;   // First operand register.
  uint16_t rhs = 0;   // Second operand register (joins only).
  int32_t aux = -1;   // Pool index: atomics / freezes / exists_sets / levels.
  int32_t key = -1;   // Index into keys (canonical fingerprint), -1 = uncacheable.
  int32_t skip_to = -1;  // kEnter probe hit: continue at this pc.
  double static_max = 0.0;   // MaxSimilarity of this node.
  double lhs_max = 0.0;      // MaxSimilarity of the left child (joins/negate).
  double rhs_max = 0.0;      // MaxSimilarity of the right child (joins).

  bool is_list() const { return (flags & kFlagList) != 0; }
  bool fuzzy() const { return (flags & kFlagFuzzy) != 0; }
  bool may_skip() const { return (flags & kFlagMaySkip) != 0; }
};

/// One maximal atomic subtree: the picture query payload plus the exact
/// text key the interpreter uses for its per-engine atomic-table cache
/// (so VM and interpreter share hits on the same engine).
struct AtomicSlot {
  AtomicFormula atomic;
  std::string text;  // f.ToString() of the subtree — the cache key.
};

/// One freeze join: variable, value term, and the term's cache text.
struct FreezeSlot {
  std::string var;
  AttrTerm term;
  std::string term_text;  // term.ToString() — the value-table cache key.
};

/// One level-modal operator: spec resolved per video at runtime, body
/// compiled as a subprogram executed per parent position.
struct LevelSlot {
  LevelSpec spec;
  int subprogram = -1;
  double body_max = 0.0;
};

/// Whether a register holds an arena list (closed node) or a
/// SimilarityTable (free variables) — fixed at compile time.
struct RegisterInfo {
  bool is_list = false;
  double static_max = 0.0;
};

/// A compiled formula: flat instruction stream plus the constant pools.
/// Compiled once per (engine, formula text); immutable afterwards, so one
/// program may be executed concurrently by readers (DirectEngine
/// serializes per video slot anyway). Owns deep copies of everything it
/// needs — no pointers into the source Formula survive compilation.
struct Program {
  std::vector<Instruction> code;
  std::vector<AtomicSlot> atomics;
  std::vector<FreezeSlot> freezes;
  std::vector<std::vector<std::string>> exists_sets;
  std::vector<LevelSlot> levels;
  std::vector<std::string> keys;  // Canonical fingerprints for cache probes.
  std::vector<Program> subprograms;  // Level-operator bodies.
  std::vector<RegisterInfo> registers;
  /// Node text per pc (empty for kEnter/kEmit) — disassembly labels only.
  std::vector<std::string> node_text;

  uint16_t root_reg = 0;
  double root_max = 0.0;          // MaxSimilarity of the whole formula.
  std::string formula_text;       // ToString() of the compiled formula.
  FormulaClass formula_class = FormulaClass::kType1;

  int num_registers() const { return static_cast<int>(registers.size()); }
};

/// Human-readable program listing for goldens (tests/integration/golden/):
/// registers, instruction stream with operands and maxima, constant pools,
/// and subprograms indented beneath their parent. Stable across runs.
std::string Disassemble(const Program& program);

}  // namespace vm
}  // namespace htl

#endif  // HTL_VM_BYTECODE_H_
