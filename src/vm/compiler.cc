#include "vm/compiler.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "htl/classifier.h"
#include "htl/fingerprint.h"
#include "picture/atomic.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace htl {
namespace vm {
namespace {

bool ContainsLevel(const Formula& f) {
  if (f.kind == FormulaKind::kLevel) return true;
  if (f.left != nullptr && ContainsLevel(*f.left)) return true;
  if (f.right != nullptr && ContainsLevel(*f.right)) return true;
  return false;
}

/// Static variable schema upper bound (see compiler.h): set semantics only —
/// column order is a runtime property of the tables themselves.
struct Schema {
  std::set<std::string> objects;
  std::set<std::string> attrs;
  bool empty() const { return objects.empty() && attrs.empty(); }
};

class Compiler {
 public:
  explicit Compiler(const QueryOptions& options) : options_(options) {}

  Result<Program> Run(const Formula& f) {
    prog_.formula_text = f.ToString();
    prog_.formula_class = Classify(f);
    prog_.root_max = MaxSimilarity(f);
    HTL_ASSIGN_OR_RETURN(Node root, CompileNode(f));
    prog_.root_reg = root.reg;
    Instruction emit;
    emit.op = OpCode::kEmit;
    emit.lhs = root.reg;
    emit.flags = prog_.registers[root.reg].is_list ? kFlagList : 0;
    emit.static_max = prog_.root_max;
    Push(emit, "");
    return std::move(prog_);
  }

 private:
  struct Node {
    uint16_t reg = 0;
    Schema schema;
  };

  size_t Push(const Instruction& ins, std::string text) {
    prog_.code.push_back(ins);
    prog_.node_text.push_back(std::move(text));
    return prog_.code.size() - 1;
  }

  /// Register for `f`'s result. Closed, level-free subtrees dedupe on the
  /// canonical fingerprint: a duplicate reuses the defining occurrence's
  /// register and its kernel may be skipped at runtime (kFlagMaySkip).
  struct RegAssign {
    uint16_t reg = 0;
    bool may_skip = false;
  };

  Result<RegAssign> AssignRegister(const Formula& f, const Schema& schema) {
    const bool is_list = schema.empty();
    const bool cse_ok = is_list && f.kind != FormulaKind::kTrue &&
                        f.kind != FormulaKind::kFalse && !ContainsLevel(f);
    std::string canonical;
    if (cse_ok) {
      canonical = CanonicalFormulaKey(f);
      auto it = cse_.find(canonical);
      if (it != cse_.end()) return RegAssign{it->second, /*may_skip=*/true};
    }
    if (prog_.registers.size() >= 0xFFFF) {
      return Status::ResourceExhausted(
          StrCat("formula needs more than 65535 registers: ", prog_.formula_text));
    }
    const auto reg = static_cast<uint16_t>(prog_.registers.size());
    prog_.registers.push_back(RegisterInfo{is_list, MaxSimilarity(f)});
    if (cse_ok) cse_.emplace(std::move(canonical), reg);
    return RegAssign{reg, /*may_skip=*/false};
  }

  /// Similarity-list cache key index for `f`'s probe, or -1. Mirrors the
  /// compile-time-decidable half of EvalTable's `cacheable` test; the
  /// runtime half (cache attached, full-level bounds) is the VM's.
  int CacheKeyIndex(const Formula& f) {
    if (options_.cache_mode == CacheMode::kOff) return -1;
    if (f.kind == FormulaKind::kTrue || f.kind == FormulaKind::kFalse) return -1;
    if (!FreeObjectVars(f).empty() || !FreeAttrVars(f).empty()) return -1;
    std::string key = CanonicalFormulaKey(f);
    auto it = key_pool_.find(key);
    if (it != key_pool_.end()) return it->second;
    const int index = static_cast<int>(prog_.keys.size());
    prog_.keys.push_back(key);
    key_pool_.emplace(std::move(key), index);
    return index;
  }

  /// Emits kEnter, compiles the children via `body`, then emits the compute
  /// instruction `ins` (dst/flags/key filled in here) and patches the
  /// enter's probe jump to the following pc. `body` must fill in ins.op,
  /// operand registers, maxima and aux, and return the node's schema.
  template <typename Body>
  Result<Node> EmitNode(const Formula& f, int key_index, Body body) {
    const size_t pc_enter = Push(Instruction{}, "");
    Instruction ins;
    HTL_ASSIGN_OR_RETURN(Schema schema, body(ins));
    HTL_ASSIGN_OR_RETURN(RegAssign r, AssignRegister(f, schema));
    ins.dst = r.reg;
    ins.key = key_index;
    ins.static_max = MaxSimilarity(f);
    if (prog_.registers[r.reg].is_list) ins.flags |= kFlagList;
    if (r.may_skip) ins.flags |= kFlagMaySkip;
    Push(ins, f.ToString());
    Instruction& enter = prog_.code[pc_enter];
    enter.op = OpCode::kEnter;
    enter.dst = ins.dst;
    enter.flags = ins.flags;
    enter.key = key_index;
    enter.static_max = ins.static_max;
    enter.skip_to = static_cast<int32_t>(prog_.code.size());
    return Node{r.reg, std::move(schema)};
  }

  Result<Node> CompileAtomic(const Formula& f) {
    // Never list-cached: the interpreter's atomic branch returns before the
    // cross-query cache logic (the per-engine atomic-table cache covers it).
    return EmitNode(f, /*key_index=*/-1, [&](Instruction& ins) -> Result<Schema> {
      HTL_ASSIGN_OR_RETURN(AtomicFormula atomic, ExtractAtomic(f));
      std::string text = f.ToString();
      auto it = atomic_pool_.find(text);
      int aux;
      if (it != atomic_pool_.end()) {
        aux = it->second;
      } else {
        aux = static_cast<int>(prog_.atomics.size());
        prog_.atomics.push_back(AtomicSlot{std::move(atomic), text});
        atomic_pool_.emplace(std::move(text), aux);
      }
      ins.op = OpCode::kLoadAtomic;
      ins.aux = aux;
      Schema s;
      for (std::string& v : FreeObjectVars(f)) s.objects.insert(std::move(v));
      for (std::string& v : FreeAttrVars(f)) s.attrs.insert(std::move(v));
      return s;
    });
  }

  Result<Node> CompileNode(const Formula& f) {
    // Maximal atomic subtrees compile to a single kLoadAtomic, mirroring
    // EvalTable's dispatch order (one depth poll, one picture query).
    if (f.kind != FormulaKind::kTrue && f.kind != FormulaKind::kFalse &&
        IsAtomicShape(f)) {
      return CompileAtomic(f);
    }
    const int key_index = CacheKeyIndex(f);
    switch (f.kind) {
      case FormulaKind::kTrue:
        return EmitNode(f, key_index, [&](Instruction& ins) -> Result<Schema> {
          ins.op = OpCode::kLoadTrue;
          return Schema{};
        });
      case FormulaKind::kFalse:
        return EmitNode(f, key_index, [&](Instruction& ins) -> Result<Schema> {
          ins.op = OpCode::kLoadFalse;
          return Schema{};
        });
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
      case FormulaKind::kUntil:
        return EmitNode(f, key_index, [&](Instruction& ins) -> Result<Schema> {
          HTL_ASSIGN_OR_RETURN(Node lhs, CompileNode(*f.left));
          HTL_ASSIGN_OR_RETURN(Node rhs, CompileNode(*f.right));
          ins.op = f.kind == FormulaKind::kAnd   ? OpCode::kAndMerge
                   : f.kind == FormulaKind::kOr  ? OpCode::kOrMerge
                                                 : OpCode::kUntilMerge;
          if (f.kind == FormulaKind::kAnd &&
              options_.and_semantics == AndSemantics::kFuzzyMin) {
            ins.flags |= kFlagFuzzy;
          }
          ins.lhs = lhs.reg;
          ins.rhs = rhs.reg;
          ins.lhs_max = MaxSimilarity(*f.left);
          ins.rhs_max = MaxSimilarity(*f.right);
          Schema s = std::move(lhs.schema);
          s.objects.insert(rhs.schema.objects.begin(), rhs.schema.objects.end());
          s.attrs.insert(rhs.schema.attrs.begin(), rhs.schema.attrs.end());
          return s;
        });
      case FormulaKind::kNext:
      case FormulaKind::kEventually:
        return EmitNode(f, key_index, [&](Instruction& ins) -> Result<Schema> {
          HTL_ASSIGN_OR_RETURN(Node child, CompileNode(*f.left));
          ins.op = f.kind == FormulaKind::kNext ? OpCode::kNextShift
                                                : OpCode::kEventually;
          ins.lhs = child.reg;
          ins.lhs_max = MaxSimilarity(*f.left);
          return std::move(child.schema);
        });
      case FormulaKind::kExists:
        return EmitNode(f, key_index, [&](Instruction& ins) -> Result<Schema> {
          HTL_ASSIGN_OR_RETURN(Node child, CompileNode(*f.left));
          ins.op = OpCode::kExistsCollapse;
          ins.lhs = child.reg;
          ins.lhs_max = MaxSimilarity(*f.left);
          ins.aux = static_cast<int>(prog_.exists_sets.size());
          prog_.exists_sets.push_back(f.vars);
          Schema s = std::move(child.schema);
          for (const std::string& v : f.vars) s.objects.erase(v);
          return s;
        });
      case FormulaKind::kFreeze:
        return EmitNode(f, key_index, [&](Instruction& ins) -> Result<Schema> {
          HTL_ASSIGN_OR_RETURN(Node child, CompileNode(*f.left));
          ins.op = OpCode::kFreezeJoin;
          ins.lhs = child.reg;
          ins.lhs_max = MaxSimilarity(*f.left);
          ins.aux = static_cast<int>(prog_.freezes.size());
          prog_.freezes.push_back(FreezeSlot{f.freeze_var, f.freeze_term,
                                             f.freeze_term.ToString()});
          Schema s = std::move(child.schema);
          s.attrs.erase(f.freeze_var);
          if (f.freeze_term.kind == AttrTerm::Kind::kAttrOfVar) {
            s.objects.insert(f.freeze_term.object_var);
          }
          return s;
        });
      case FormulaKind::kLevel:
        return EmitNode(f, key_index, [&](Instruction& ins) -> Result<Schema> {
          // The body runs as its own program (own frame, registers and
          // common-sub-plan scope: its bounds differ per parent position).
          HTL_ASSIGN_OR_RETURN(Program body, Compile(*f.left, options_));
          ins.op = OpCode::kLevelEval;
          ins.aux = static_cast<int>(prog_.levels.size());
          const int sub = static_cast<int>(prog_.subprograms.size());
          Schema s;
          for (std::string& v : FreeObjectVars(*f.left)) s.objects.insert(std::move(v));
          for (std::string& v : FreeAttrVars(*f.left)) s.attrs.insert(std::move(v));
          prog_.levels.push_back(LevelSlot{f.level, sub, MaxSimilarity(*f.left)});
          prog_.subprograms.push_back(std::move(body));
          return s;
        });
      case FormulaKind::kNot:
        return EmitNode(f, key_index, [&](Instruction& ins) -> Result<Schema> {
          HTL_ASSIGN_OR_RETURN(Node child, CompileNode(*f.left));
          ins.op = OpCode::kNegate;
          ins.lhs = child.reg;
          ins.lhs_max = MaxSimilarity(*f.left);
          // The closedness requirement (Unimplemented otherwise) is checked
          // at runtime on the runtime table, exactly like the interpreter:
          // the static schema can overestimate an actually-empty one.
          return std::move(child.schema);
        });
      case FormulaKind::kConstraint:
        break;  // Handled by the atomic branch above.
    }
    return Status::Internal(StrCat("unhandled formula: ", f.ToString()));
  }

  const QueryOptions& options_;
  Program prog_;
  std::map<std::string, uint16_t> cse_;
  std::map<std::string, int> key_pool_;
  std::map<std::string, int> atomic_pool_;
};

}  // namespace

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kEnter: return "enter";
    case OpCode::kLoadAtomic: return "load_atomic";
    case OpCode::kLoadTrue: return "load_true";
    case OpCode::kLoadFalse: return "load_false";
    case OpCode::kAndMerge: return "and_merge";
    case OpCode::kOrMerge: return "or_merge";
    case OpCode::kUntilMerge: return "until_merge";
    case OpCode::kNextShift: return "next_shift";
    case OpCode::kEventually: return "eventually";
    case OpCode::kExistsCollapse: return "exists_collapse";
    case OpCode::kFreezeJoin: return "freeze_join";
    case OpCode::kNegate: return "negate";
    case OpCode::kLevelEval: return "level_eval";
    case OpCode::kEmit: return "emit";
  }
  return "?";
}

Result<Program> Compile(const Formula& f, const QueryOptions& options) {
  return Compiler(options).Run(f);
}

}  // namespace vm
}  // namespace htl
