#include "vm/arena.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

// ASan manual poisoning: reclaimed arena space is marked unaddressable so
// stale pointers into a previous execution fault loudly. Compiles to
// nothing without ASan.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HTL_VM_ARENA_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define HTL_VM_ARENA_ASAN 1
#endif

#ifdef HTL_VM_ARENA_ASAN
#include <sanitizer/asan_interface.h>  // htl-lint: allow(include-order)
#define HTL_ARENA_POISON(ptr, n) ASAN_POISON_MEMORY_REGION(ptr, n)
#define HTL_ARENA_UNPOISON(ptr, n) ASAN_UNPOISON_MEMORY_REGION(ptr, n)
#else
#define HTL_ARENA_POISON(ptr, n) ((void)(ptr), (void)(n))
#define HTL_ARENA_UNPOISON(ptr, n) ((void)(ptr), (void)(n))
#endif

namespace htl {
namespace vm {

Arena::Arena(size_t first_chunk_bytes) {
  AddChunk(std::max(first_chunk_bytes, size_t{64}));
}

Arena::~Arena() {
  // Unpoison before handing the memory back so the allocator (and any
  // later reuse of the pages) is not reported as a use-after-poison.
  for (Chunk& c : chunks_) HTL_ARENA_UNPOISON(c.data.get(), c.size);
}

void Arena::AddChunk(size_t min_bytes) {
  size_t size;
  if (min_bytes > kMaxChunkBytes) {
    // Large-allocation fallback: a dedicated exact-size chunk, so one
    // outsized register does not inflate the doubling sequence forever.
    size = min_bytes;
  } else if (chunks_.empty()) {
    // The constructor's first chunk is taken literally (tests shrink it to
    // exercise growth; the engine default is kMinChunkBytes).
    size = min_bytes;
  } else {
    const size_t prev = chunks_.back().size;
    size = std::max(min_bytes, std::min(std::max(2 * prev, kMinChunkBytes), kMaxChunkBytes));
  }
  Chunk c;
  c.data.reset(new char[size]);
  c.size = size;
  HTL_ARENA_POISON(c.data.get(), c.size);
  bytes_reserved_ += size;
  chunks_.push_back(std::move(c));
  cursor_chunk_ = chunks_.size() - 1;
  cursor_ = 0;
}

void* Arena::AllocateBytes(size_t n, size_t align) {
  HTL_DCHECK(align > 0 && (align & (align - 1)) == 0) << "alignment must be a power of two";
  if (n == 0) n = 1;  // Distinct non-null pointers for empty arrays.
  while (true) {
    Chunk& c = chunks_[cursor_chunk_];
    const size_t aligned = (cursor_ + (align - 1)) & ~(align - 1);
    if (aligned + n <= c.size) {
      void* p = c.data.get() + aligned;
      HTL_ARENA_UNPOISON(p, n);
      cursor_ = aligned + n;
      bytes_used_ += n;
      return p;
    }
    // Try the next retained chunk (after Reset) before growing.
    if (cursor_chunk_ + 1 < chunks_.size() && n <= chunks_[cursor_chunk_ + 1].size) {
      ++cursor_chunk_;
      cursor_ = 0;
      continue;
    }
    AddChunk(n + align);
  }
}

void Arena::Reset() {
  for (Chunk& c : chunks_) HTL_ARENA_POISON(c.data.get(), c.size);
  cursor_chunk_ = 0;
  cursor_ = 0;
  bytes_used_ = 0;
}

}  // namespace vm
}  // namespace htl
