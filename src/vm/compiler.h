#ifndef HTL_VM_COMPILER_H_
#define HTL_VM_COMPILER_H_

#include "engine/query_options.h"
#include "htl/ast.h"
#include "util/result.h"
#include "vm/bytecode.h"

namespace htl {
namespace vm {

/// Compiles a bound, rewritten formula into a register program for the
/// bytecode VM (vm/vm.h). Compilation happens once per (engine, formula
/// text); execution per video then runs the flat instruction stream.
///
/// What the compiler bakes in:
///   - Register typing: a register is an arena similarity list iff the
///     node's *static* variable schema is empty, a SimilarityTable
///     otherwise. Runtime schemas can only shrink below the static set
///     (an unused freeze variable passes through; a level body can come
///     back column-free), so the static set is a sound upper bound — a
///     table register may carry a var-free table, never the reverse.
///     Schema-sensitive behavior (the kNegate closedness check, the
///     top-level free-variable error) therefore stays at runtime, on the
///     runtime table, exactly like the interpreter.
///   - Static maxima: MaxSimilarity() of every node and its children,
///     because the engine invariant (sim/sim_table.h CheckInvariants)
///     guarantees runtime list maxima equal the static values.
///   - Options: and-semantics (kFlagFuzzy) and cache eligibility; the
///     options fingerprint keys the result caches, so one program serves
///     one option set.
///   - Common sub-plans: closed, level-free duplicate subtrees (equal
///     PR-5 canonical fingerprints) share destination registers; the
///     duplicate's instructions carry kFlagMaySkip, which skips the kernel
///     when the value is already computed while still firing the
///     interpreter's charges, counters, spans and fault points.
///
/// Fails only on formulas the interpreter would also reject structurally;
/// per-video errors (budgets, level resolution, open negation) surface at
/// execution time with the interpreter's exact status.
Result<Program> Compile(const Formula& f, const QueryOptions& options);

}  // namespace vm
}  // namespace htl

#endif  // HTL_VM_COMPILER_H_
