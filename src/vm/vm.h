#ifndef HTL_VM_VM_H_
#define HTL_VM_VM_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/sim_list_cache.h"
#include "engine/exec_context.h"
#include "engine/query_options.h"
#include "model/video.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "picture/picture_system.h"
#include "sim/sim_table.h"
#include "util/result.h"
#include "vm/arena.h"
#include "vm/bytecode.h"

namespace htl {
namespace vm {

/// Everything one program execution borrows from its engine. The VM shares
/// the engine's caches and counters so interpret and vm modes on the same
/// DirectEngine are indistinguishable from the outside: atomic tables and
/// value tables cached by one executor are served to the other, the
/// EngineStats counters aggregate across modes, and the cross-query
/// similarity-list cache sees the same probe/publish traffic.
/// All borrowed; everything must outlive the executor's Run calls.
struct ExecEnv {
  const VideoTree* video = nullptr;
  PictureSystem* pictures = nullptr;
  ExecContext* exec = nullptr;        // Null = unlimited.
  obs::QueryTrace* trace = nullptr;   // Null = unprofiled.

  double until_threshold = 0.5;  // QueryOptions::until_threshold.

  cache::SimListCache* list_cache = nullptr;  // Null disables probes.
  int64_t cache_video_id = 0;
  uint64_t cache_epoch = 0;
  CacheMode cache_mode = CacheMode::kOff;

  std::map<std::pair<std::string, int>, SimilarityTable>* atomic_cache = nullptr;
  std::map<std::pair<std::string, int>, ValueTable>* value_cache = nullptr;

  // The engine's live counters (EngineStats backing); all required.
  obs::Counter* atomic_queries = nullptr;
  obs::Counter* atomic_cache_hits = nullptr;
  obs::Counter* table_joins = nullptr;
  obs::Counter* exists_collapses = nullptr;
  obs::Counter* freeze_joins = nullptr;
  obs::Counter* level_evaluations = nullptr;
};

/// The result register after a successful Run: either an arena-backed run
/// span (closed formulas — valid until the next Run or arena reset) or a
/// borrowed table (open formulas).
struct RootView {
  bool is_list = false;
  const SimEntry* data = nullptr;  // List form.
  size_t size = 0;
  double max = 0.0;
  const SimilarityTable* table = nullptr;  // Table form.
};

/// Executes one compiled Program (vm/compiler.h) over one video. A small
/// switch-dispatch loop over the flat instruction stream: closed
/// subformulas run the shared merge kernels (sim/merge_kernels.h) straight
/// into the arena — zero heap traffic; open subformulas fall back to the
/// heap table kernels in sim/table_ops.cc, exactly the interpreter's code.
///
/// The executor owns a register frame per program (and one per level-body
/// subprogram, reused across the sweep positions) but borrows the arena:
/// the engine resets it once per evaluation. Not thread-safe; one executor
/// serves one evaluation at a time, but distinct executors may run the
/// same immutable Program concurrently.
class Executor {
 public:
  /// `program`, `env` contents and `arena` must outlive the executor.
  Executor(const Program& program, const ExecEnv& env, Arena* arena);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Runs the program for the segment sequence `bounds` at `level`. On
  /// error, depth budget acquired so far is released (mirroring the
  /// interpreter's scope unwinding). The caller resets the arena between
  /// runs; results are valid until then.
  Status Run(int level, Interval bounds);

  /// The root register after a successful Run.
  RootView Root() const;

  /// Heap materialization of a view, firing the same sim.* traffic the
  /// interpreter's SimilarityTable::ToList would (MultiMax on nonempty).
  static SimilarityList MaterializeList(const RootView& view, double fallback_max);

 private:
  struct Frame;

  Status RunFrame(Frame& frame, int level, Interval bounds);
  Status RunCode(Frame& frame, int level, Interval bounds, int& live_depth);

  const Program& program_;
  ExecEnv env_;
  std::unique_ptr<Frame> main_;
};

}  // namespace vm
}  // namespace htl

#endif  // HTL_VM_VM_H_
