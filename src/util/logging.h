#ifndef HTL_UTIL_LOGGING_H_
#define HTL_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace htl {
namespace internal_logging {

/// Severity for the minimal logging facility. kFatal aborts after emitting.
enum class Severity { kInfo, kWarning, kError, kFatal };

/// Accumulates one log line via operator<< and emits it (with severity tag)
/// to stderr on destruction. Used only through the HTL_LOG / HTL_CHECK
/// macros below.
class LogMessage {
 public:
  LogMessage(Severity severity, const char* file, int line) : severity_(severity) {
    stream_ << "[" << Tag(severity) << " " << Basename(file) << ":" << line << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
    if (severity_ == Severity::kFatal) {
      std::cerr.flush();
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* Tag(Severity s) {
    switch (s) {
      case Severity::kInfo:
        return "INFO";
      case Severity::kWarning:
        return "WARN";
      case Severity::kError:
        return "ERROR";
      case Severity::kFatal:
        return "FATAL";
    }
    return "?";
  }
  static const char* Basename(const char* file) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  Severity severity_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression; used for the disabled branch of checks.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Allows `cond ? (void)0 : Voidify() & stream` in macro expansions.
struct Voidify {
  void operator&(std::ostream&) {}
};

/// Renders a Status or a Result<T> for a check-failure message without this
/// header depending on status.h/result.h (both include logging.h).
template <typename StatusLike>
std::string StatusLikeToString(const StatusLike& s) {
  if constexpr (requires { s.status().ToString(); }) {
    return s.status().ToString();
  } else {
    return s.ToString();
  }
}

}  // namespace internal_logging
}  // namespace htl

#define HTL_LOG(severity)                                                        \
  ::htl::internal_logging::LogMessage(                                           \
      ::htl::internal_logging::Severity::k##severity, __FILE__, __LINE__)        \
      .stream()

/// Aborts with a message when `cond` is false. Active in all build modes:
/// these guard library invariants whose violation means memory-unsafe or
/// semantically wrong results downstream.
#define HTL_CHECK(cond)                              \
  (cond) ? (void)0                                   \
         : ::htl::internal_logging::Voidify() &      \
               HTL_LOG(Fatal) << "Check failed: " #cond " "

#define HTL_CHECK_EQ(a, b) HTL_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define HTL_CHECK_NE(a, b) HTL_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define HTL_CHECK_LE(a, b) HTL_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define HTL_CHECK_LT(a, b) HTL_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define HTL_CHECK_GE(a, b) HTL_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define HTL_CHECK_GT(a, b) HTL_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "

/// Aborts when `expr` (a Status or Result<T> expression) is not OK. Active
/// in all build modes; use for must-succeed calls whose failure leaves the
/// process in an undefined state.
#define HTL_CHECK_OK(expr)                                               \
  do {                                                                   \
    const auto& htl_check_ok_tmp_ = (expr);                              \
    HTL_CHECK(htl_check_ok_tmp_.ok())                                    \
        << ::htl::internal_logging::StatusLikeToString(htl_check_ok_tmp_) << " "; \
  } while (0)

/// Debug-only invariant checks. HTL_DCHECK* compile to nothing under NDEBUG
/// (Release) so they may guard O(n)-and-worse structural walks — e.g. the
/// CheckInvariants() validators on SimilarityList / SimilarityTable / the
/// video segment tree — without taxing production binaries. The condition is
/// NOT evaluated when disabled, so it must be side-effect free.
#ifndef NDEBUG
#define HTL_DCHECK_IS_ON() 1
#define HTL_DCHECK(cond) HTL_CHECK(cond)
#define HTL_DCHECK_EQ(a, b) HTL_CHECK_EQ(a, b)
#define HTL_DCHECK_NE(a, b) HTL_CHECK_NE(a, b)
#define HTL_DCHECK_LE(a, b) HTL_CHECK_LE(a, b)
#define HTL_DCHECK_LT(a, b) HTL_CHECK_LT(a, b)
#define HTL_DCHECK_GE(a, b) HTL_CHECK_GE(a, b)
#define HTL_DCHECK_GT(a, b) HTL_CHECK_GT(a, b)
#define HTL_DCHECK_OK(expr) HTL_CHECK_OK(expr)
#else
#define HTL_DCHECK_IS_ON() 0
#define HTL_DCHECK(cond) \
  while (false) ::htl::internal_logging::NullStream() << !(cond)
#define HTL_DCHECK_EQ(a, b) HTL_DCHECK((a) == (b))
#define HTL_DCHECK_NE(a, b) HTL_DCHECK((a) != (b))
#define HTL_DCHECK_LE(a, b) HTL_DCHECK((a) <= (b))
#define HTL_DCHECK_LT(a, b) HTL_DCHECK((a) < (b))
#define HTL_DCHECK_GE(a, b) HTL_DCHECK((a) >= (b))
#define HTL_DCHECK_GT(a, b) HTL_DCHECK((a) > (b))
#define HTL_DCHECK_OK(expr) \
  do {                      \
  } while (false)
#endif

#endif  // HTL_UTIL_LOGGING_H_
