#ifndef HTL_UTIL_LOGGING_H_
#define HTL_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace htl {
namespace internal_logging {

/// Severity for the minimal logging facility. kFatal aborts after emitting.
enum class Severity { kInfo, kWarning, kError, kFatal };

/// Accumulates one log line via operator<< and emits it (with severity tag)
/// to stderr on destruction. Used only through the HTL_LOG / HTL_CHECK
/// macros below.
class LogMessage {
 public:
  LogMessage(Severity severity, const char* file, int line) : severity_(severity) {
    stream_ << "[" << Tag(severity) << " " << Basename(file) << ":" << line << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
    if (severity_ == Severity::kFatal) {
      std::cerr.flush();
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* Tag(Severity s) {
    switch (s) {
      case Severity::kInfo:
        return "INFO";
      case Severity::kWarning:
        return "WARN";
      case Severity::kError:
        return "ERROR";
      case Severity::kFatal:
        return "FATAL";
    }
    return "?";
  }
  static const char* Basename(const char* file) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  Severity severity_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression; used for the disabled branch of checks.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Allows `cond ? (void)0 : Voidify() & stream` in macro expansions.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace htl

#define HTL_LOG(severity)                                                        \
  ::htl::internal_logging::LogMessage(                                           \
      ::htl::internal_logging::Severity::k##severity, __FILE__, __LINE__)        \
      .stream()

/// Aborts with a message when `cond` is false. Active in all build modes:
/// these guard library invariants whose violation means memory-unsafe or
/// semantically wrong results downstream.
#define HTL_CHECK(cond)                              \
  (cond) ? (void)0                                   \
         : ::htl::internal_logging::Voidify() &      \
               HTL_LOG(Fatal) << "Check failed: " #cond " "

#define HTL_CHECK_EQ(a, b) HTL_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define HTL_CHECK_NE(a, b) HTL_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define HTL_CHECK_LE(a, b) HTL_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define HTL_CHECK_LT(a, b) HTL_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define HTL_CHECK_GE(a, b) HTL_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define HTL_CHECK_GT(a, b) HTL_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // HTL_UTIL_LOGGING_H_
