#ifndef HTL_UTIL_STRING_UTIL_H_
#define HTL_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace htl {

namespace internal_strings {
inline void AppendPieces(std::ostringstream&) {}
template <typename T, typename... Rest>
void AppendPieces(std::ostringstream& os, const T& head, const Rest&... rest) {
  os << head;
  AppendPieces(os, rest...);
}
}  // namespace internal_strings

/// Concatenates the streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal_strings::AppendPieces(os, args...);
  return os.str();
}

/// Splits on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// ASCII lowercase copy.
std::string AsciiToLower(std::string_view text);

/// True when `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Joins streamable elements with `sep`.
template <typename Container>
std::string StrJoin(const Container& parts, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) os << sep;
    os << p;
    first = false;
  }
  return os.str();
}

/// Formats a double the way the paper's tables print similarity values
/// (fixed, `digits` decimals).
std::string FormatFixed(double v, int digits);

/// Appends `s` to `*out` escaped for use inside a JSON string literal
/// (quotes, backslashes, and control characters; everything else verbatim —
/// the telemetry plane emits UTF-8 pass-through).
void AppendJsonEscaped(std::string* out, std::string_view s);

/// AppendJsonEscaped into a fresh string (no surrounding quotes).
std::string JsonEscaped(std::string_view s);

}  // namespace htl

#endif  // HTL_UTIL_STRING_UTIL_H_
