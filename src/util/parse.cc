#include "util/parse.h"

#include <charconv>

namespace htl {

namespace {

template <typename T>
bool ParseWhole(std::string_view text, T* out) {
  if (text.empty()) return false;
  T value{};
  const char* first = text.data();
  const char* last = text.data() + text.size();
  // std::from_chars accepts no leading '+' but does accept '-'; tolerate an
  // explicit '+' for symmetry with the std::sto* family this replaces.
  if (*first == '+') {
    ++first;
    if (first == last || *first == '-') return false;
  }
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return false;
  *out = value;
  return true;
}

}  // namespace

bool ParseInt64(std::string_view text, int64_t* out) { return ParseWhole(text, out); }

bool ParseInt32(std::string_view text, int32_t* out) { return ParseWhole(text, out); }

bool ParseDouble(std::string_view text, double* out) { return ParseWhole(text, out); }

}  // namespace htl
