#include "util/fault_point.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/string_util.h"

namespace htl {

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry* registry = new FaultRegistry();  // Leaked singleton.
  return *registry;
}

const std::vector<std::string_view>& FaultRegistry::KnownPoints() {
  // One entry per HTL_FAULT_POINT site in src/. Hit() DCHECKs membership,
  // so a planted point missing here fails fast in debug test runs.
  static const std::vector<std::string_view>* points =
      new std::vector<std::string_view>{
          "cache.fill",          // Cache store (result + similarity-list).
          "cache.lookup",        // Cache probe (degrades to a bypass/miss).
          "engine.bound_compute",   // Retriever prune-bound derivation
                                    // (degrades to unpruned evaluation).
          "engine.shard_dispatch",  // Retriever shard scatter (degrades to
                                    // a truthful partial report).
          "engine.table_join",   // DirectEngine and/or/until join.
          "engine.value_table",  // DirectEngine freeze value-table build.
          "net.accept",          // QueryServer accept loop, post-accept.
          "net.admin.accept",    // Admin listener accept, post-accept.
          "net.admin.read_frame",   // Admin inbound frame read.
          "net.admin.write_frame",  // Admin outbound response write.
          "net.read_frame",      // QueryServer inbound frame read.
          "net.session",         // QueryServer session body, pre-evaluate.
          "net.write_frame",     // QueryServer outbound response write.
          "picture.query",       // PictureSystem atomic picture query.
          "sql.scan",            // sql::Executor FROM-pipeline table scan.
      };
  return *points;
}

void FaultRegistry::Enable(std::string_view point, FaultSpec spec) {
  HTL_CHECK(spec.code != StatusCode::kOk) << "fault spec must carry an error code";
  MutexLock lock(&mu_);
  PointState& state = points_[std::string(point)];
  state.spec = spec;
  state.hits = 0;
  state.enabled = true;
  UpdateArmed();
}

void FaultRegistry::Disable(std::string_view point) {
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  if (it != points_.end()) it->second.enabled = false;
  UpdateArmed();
}

void FaultRegistry::DisableAll() {
  MutexLock lock(&mu_);
  points_.clear();
  tracing_ = false;
  trace_hits_.clear();
  UpdateArmed();
}

void FaultRegistry::StartTrace() {
  MutexLock lock(&mu_);
  tracing_ = true;
  trace_hits_.clear();
  UpdateArmed();
}

std::map<std::string, int64_t> FaultRegistry::TraceHits() {
  MutexLock lock(&mu_);
  return trace_hits_;
}

void FaultRegistry::Seed(uint64_t seed) {
  MutexLock lock(&mu_);
  rng_state_ = seed | 1;  // Never zero.
}

void FaultRegistry::UpdateArmed() {
  bool armed = tracing_;
  for (const auto& [name, state] : points_) armed = armed || state.enabled;
  armed_.store(armed, std::memory_order_relaxed);
}

Status FaultRegistry::Hit(std::string_view point) {
  const auto& known = KnownPoints();
  HTL_DCHECK(std::find(known.begin(), known.end(), point) != known.end())
      << "fault point '" << point << "' missing from FaultRegistry::KnownPoints()";
  MutexLock lock(&mu_);
  if (tracing_) ++trace_hits_[std::string(point)];
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.enabled) return Status::OK();
  PointState& state = it->second;
  ++state.hits;
  bool fire = false;
  if (state.spec.probability > 0.0 && state.spec.probability < 1.0) {
    // xorshift64*: cheap, deterministic under Seed().
    rng_state_ ^= rng_state_ >> 12;
    rng_state_ ^= rng_state_ << 25;
    rng_state_ ^= rng_state_ >> 27;
    const double u = static_cast<double>((rng_state_ * 0x2545F4914F6CDD1Dull) >> 11) *
                     (1.0 / 9007199254740992.0);  // [0, 1) from 53 bits.
    fire = u < state.spec.probability;
  } else if (state.spec.fire_on_hit <= 0) {
    fire = true;
  } else if (state.spec.sticky) {
    fire = state.hits >= state.spec.fire_on_hit;
  } else {
    fire = state.hits == state.spec.fire_on_hit;
  }
  if (!fire) return Status::OK();
  Status injected(state.spec.code,
                  StrCat("injected fault at '", point, "' (hit ", state.hits, ")"));
  // Surface the trip into the query's trace (if one is attached to this
  // thread) so RetrievalReport profiles name the fault point that caused a
  // per-video failure — not just the Status text that bubbled up.
  if (obs::QueryTrace* trace = obs::QueryTrace::Current(); trace != nullptr) {
    trace->RecordFault(point, injected);
  }
  return injected;
}

}  // namespace htl
