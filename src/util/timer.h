#ifndef HTL_UTIL_TIMER_H_
#define HTL_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace htl {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
///
/// The clock is steady_clock — the same clock obs::QueryTrace spans and
/// ExecContext deadlines use — so bench timings, profiles, and deadlines are
/// mutually comparable and can never go backwards (the static_assert makes
/// the monotonicity requirement a compile-time fact, not a hope).
class WallTimer {
 public:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "WallTimer and trace spans require a monotonic clock");

  WallTimer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds elapsed since construction or the last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_)
        .count();
  }

 private:
  Clock::time_point start_;
};

}  // namespace htl

#endif  // HTL_UTIL_TIMER_H_
