#ifndef HTL_UTIL_TIMER_H_
#define HTL_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace htl {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds elapsed since construction or the last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace htl

#endif  // HTL_UTIL_TIMER_H_
