#ifndef HTL_UTIL_MUTEX_H_
#define HTL_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace htl {

class CondVar;

/// The library's mutex: std::mutex carrying the CAPABILITY annotation so
/// Clang Thread Safety Analysis can prove the lock discipline at compile
/// time (see util/thread_annotations.h and DESIGN.md "Lock discipline").
///
/// Bare std::mutex / std::lock_guard / std::condition_variable are banned
/// in src/ outside this file (tools/lint.py `no-raw-mutex`): a raw mutex is
/// invisible to the analysis, so members it guards and functions that
/// require it cannot be machine-checked. Prefer MutexLock over manual
/// Lock()/Unlock() pairs.
class HTL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HTL_ACQUIRE() { mu_.lock(); }
  void Unlock() HTL_RELEASE() { mu_.unlock(); }

  /// Non-blocking acquire; true means the caller now holds the mutex.
  bool TryLock() HTL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // Wait() needs the native handle to park on.

  std::mutex mu_;
};

/// RAII lock for a Mutex — the annotated replacement for std::lock_guard /
/// std::unique_lock. Acquires in the constructor, releases in the
/// destructor; the analysis tracks the critical section as the object's
/// scope.
class HTL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) HTL_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() HTL_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with htl::Mutex. Wait/WaitFor require the
/// mutex held (HTL_REQUIRES) and return with it re-held, so the analysis —
/// which cannot see the release/re-acquire inside the park — correctly
/// treats guarded members as protected across the call. Spurious wakeups
/// are possible: every wait belongs in a `while (!predicate)` loop
/// (clang-tidy bugprone-spuriously-wake-up-functions enforces this at call
/// sites).
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, parks until notified (or spuriously woken),
  /// and re-acquires `mu` before returning.
  void Wait(Mutex& mu) HTL_REQUIRES(mu) {
    // Adopt the caller-held lock for the wait, then release the guard
    // object without unlocking: ownership returns to the caller's scope.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);  // NOLINT(bugprone-spuriously-wake-up-functions)
    lock.release();
  }

  /// As Wait, but also wakes after `timeout`; the caller re-checks its
  /// predicate either way, so the return value is advisory.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      HTL_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, timeout);  // NOLINT(bugprone-spuriously-wake-up-functions)
    lock.release();
    return status;
  }

  /// Wakes one / every waiter. Callers may hold the associated mutex or
  /// not; the wait loop's predicate re-check makes both orders correct.
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace htl

#endif  // HTL_UTIL_MUTEX_H_
