#include "util/interval.h"

#include "util/string_util.h"

namespace htl {

std::string Interval::ToString() const {
  if (empty()) return "[]";
  return StrCat("[", begin, ",", end, "]");
}

bool IsDisjointSorted(const std::vector<Interval>& intervals) {
  for (size_t i = 0; i < intervals.size(); ++i) {
    if (intervals[i].empty()) return false;
    if (i > 0 && intervals[i - 1].end >= intervals[i].begin) return false;
  }
  return true;
}

std::vector<Interval> CoalesceAdjacent(const std::vector<Interval>& intervals) {
  std::vector<Interval> out;
  out.reserve(intervals.size());
  for (const Interval& iv : intervals) {
    if (!out.empty() && out.back().Adjacent(iv)) {
      out.back().end = iv.end;
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

int64_t TotalCovered(const std::vector<Interval>& intervals) {
  int64_t n = 0;
  for (const Interval& iv : intervals) n += iv.size();
  return n;
}

}  // namespace htl
