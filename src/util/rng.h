#ifndef HTL_UTIL_RNG_H_
#define HTL_UTIL_RNG_H_

#include <cstdint>

namespace htl {

/// Deterministic, seedable pseudo-random generator (xoshiro256**), used by
/// the synthetic workload generators so every experiment is reproducible
/// from its seed. Not cryptographic.
class Rng {
 public:
  /// Seeds the state via SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
};

}  // namespace htl

#endif  // HTL_UTIL_RNG_H_
