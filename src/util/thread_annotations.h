#ifndef HTL_UTIL_THREAD_ANNOTATIONS_H_
#define HTL_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations — the compile-time half of the
/// lock discipline (DESIGN.md "Lock discipline").
///
/// Every mutex in src/ is an htl::Mutex (util/mutex.h), every guarded member
/// carries HTL_GUARDED_BY, and every function with a locking precondition
/// carries HTL_REQUIRES / HTL_EXCLUDES. Under Clang with
/// `-Wthread-safety -Werror=thread-safety` (the `tsa` CMake preset, enforced
/// in CI) a missing lock is a build error, not a comment; under other
/// compilers every macro expands to nothing, so GCC builds are unaffected.
///
/// The macro set mirrors the capability vocabulary of the analysis:
///
///   HTL_CAPABILITY(x)        — the annotated class is a capability (a lock).
///   HTL_SCOPED_CAPABILITY    — RAII object acquiring/releasing a capability.
///   HTL_GUARDED_BY(x)        — member readable/writable only while holding x.
///   HTL_PT_GUARDED_BY(x)     — as above for the pointee of a pointer member.
///   HTL_REQUIRES(...)        — caller must hold the listed capabilities.
///   HTL_REQUIRES_SHARED(...) — caller must hold them at least shared.
///   HTL_ACQUIRE(...)         — function acquires and does not release.
///   HTL_RELEASE(...)         — function releases a held capability.
///   HTL_TRY_ACQUIRE(b, ...)  — conditional acquire; returns b on success.
///   HTL_EXCLUDES(...)        — caller must NOT hold (deadlock guard).
///   HTL_ASSERT_CAPABILITY(x) — runtime assertion that x is held.
///   HTL_RETURN_CAPABILITY(x) — function returns a reference to capability x.
///   HTL_ACQUIRED_BEFORE/AFTER(...) — declared lock ordering between mutexes.
///   HTL_NO_THREAD_SAFETY_ANALYSIS  — opt one function out. Reserved for the
///     wrapper internals in util/mutex.h; anywhere else it is a review error
///     (the acceptance bar is zero escapes outside the wrappers).

#if defined(__clang__) && !defined(SWIG)
#define HTL_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define HTL_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

#define HTL_CAPABILITY(x) HTL_THREAD_ANNOTATION__(capability(x))

#define HTL_SCOPED_CAPABILITY HTL_THREAD_ANNOTATION__(scoped_lockable)

#define HTL_GUARDED_BY(x) HTL_THREAD_ANNOTATION__(guarded_by(x))

#define HTL_PT_GUARDED_BY(x) HTL_THREAD_ANNOTATION__(pt_guarded_by(x))

#define HTL_ACQUIRED_BEFORE(...) HTL_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

#define HTL_ACQUIRED_AFTER(...) HTL_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

#define HTL_REQUIRES(...) \
  HTL_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

#define HTL_REQUIRES_SHARED(...) \
  HTL_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

#define HTL_ACQUIRE(...) HTL_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

#define HTL_ACQUIRE_SHARED(...) \
  HTL_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

#define HTL_RELEASE(...) HTL_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

#define HTL_RELEASE_SHARED(...) \
  HTL_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

#define HTL_RELEASE_GENERIC(...) \
  HTL_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

#define HTL_TRY_ACQUIRE(...) \
  HTL_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

#define HTL_TRY_ACQUIRE_SHARED(...) \
  HTL_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

#define HTL_EXCLUDES(...) HTL_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

#define HTL_ASSERT_CAPABILITY(x) HTL_THREAD_ANNOTATION__(assert_capability(x))

#define HTL_ASSERT_SHARED_CAPABILITY(x) \
  HTL_THREAD_ANNOTATION__(assert_shared_capability(x))

#define HTL_RETURN_CAPABILITY(x) HTL_THREAD_ANNOTATION__(lock_returned(x))

#define HTL_NO_THREAD_SAFETY_ANALYSIS \
  HTL_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // HTL_UTIL_THREAD_ANNOTATIONS_H_
