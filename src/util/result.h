#ifndef HTL_UTIL_RESULT_H_
#define HTL_UTIL_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "util/logging.h"
#include "util/status.h"

namespace htl {

/// Result<T> holds either a value of type T or a non-OK Status, in the style
/// of absl::StatusOr / arrow::Result. Accessing the value of an errored
/// Result aborts the process (library code must check ok() first or use the
/// HTL_ASSIGN_OR_RETURN macro).
/// The class is [[nodiscard]] for the same reason as Status: discarding a
/// Result<T> silently drops both the computed value and any error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: `return MakeThing();`.
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  /// Implicit from error status: `return Status::InvalidArgument(...)`.
  /// Constructing from an OK status is a caller bug and aborts.
  Result(Status status) : data_(std::in_place_index<1>, std::move(status)) {
    HTL_CHECK(!std::get<1>(data_).ok()) << "Result constructed from OK status";
  }

  bool ok() const { return data_.index() == 0; }

  /// The error status; OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<1>(data_);
  }

  const T& value() const& {
    HTL_CHECK(ok()) << "Result::value() on error: " << std::get<1>(data_).ToString();
    return std::get<0>(data_);
  }
  T& value() & {
    HTL_CHECK(ok()) << "Result::value() on error: " << std::get<1>(data_).ToString();
    return std::get<0>(data_);
  }
  T&& value() && {
    HTL_CHECK(ok()) << "Result::value() on error: " << std::get<1>(data_).ToString();
    return std::move(std::get<0>(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when errored.
  T value_or(T fallback) const {
    if (ok()) return std::get<0>(data_);
    return fallback;
  }

  /// Explicitly drops the result (value or error); see Status::IgnoreError.
  void IgnoreError() const {}

 private:
  std::variant<T, Status> data_;
};

}  // namespace htl

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status
/// from the enclosing function, otherwise assigns the value to `lhs`.
#define HTL_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  HTL_ASSIGN_OR_RETURN_IMPL_(                                 \
      HTL_RESULT_CONCAT_(htl_result_tmp_, __LINE__), lhs, rexpr)

#define HTL_RESULT_CONCAT_INNER_(a, b) a##b
#define HTL_RESULT_CONCAT_(a, b) HTL_RESULT_CONCAT_INNER_(a, b)
#define HTL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // HTL_UTIL_RESULT_H_
