#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace htl {

namespace {

// Process-wide pool telemetry cells, resolved once (stable pointers,
// lock-free to bump). Shared by every pool in the process — the aggregate
// view is what a saturation probe wants (DESIGN.md "Telemetry plane").
obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* const g =
      obs::MetricsRegistry::Instance().GetGauge("pool.queue_depth");
  return g;
}

obs::Gauge* WorkersBusyGauge() {
  static obs::Gauge* const g =
      obs::MetricsRegistry::Instance().GetGauge("pool.workers_busy");
  return g;
}

obs::Histogram* TaskWaitHistogram() {
  static obs::Histogram* const h =
      obs::MetricsRegistry::Instance().GetHistogram(
          "pool.task_wait_us", obs::Histogram::ExponentialBounds(10, 2.0, 18));
  return h;
}

}  // namespace

ThreadPool::ThreadPool() : ThreadPool(Options{}) {}

ThreadPool::ThreadPool(Options options) {
  int threads = options.num_threads > 0 ? options.num_threads : DefaultParallelism();
  queue_capacity_ = options.queue_capacity > 0
                        ? options.queue_capacity
                        : std::max<int64_t>(16, 4 * static_cast<int64_t>(threads));
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  task_ready_.NotifyAll();
  queue_space_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  // Joined workers establish happens-before; the lock keeps the check
  // honest under the analysis (destructors are exempt, but cheap is cheap).
  MutexLock lock(&mu_);
  HTL_CHECK(queue_.empty()) << "worker exited with tasks still queued";
}

void ThreadPool::Schedule(std::function<void()> fn) {
  HTL_CHECK(fn != nullptr);
  Task task{std::move(fn), {}, false};
  if (obs::MetricsRegistry::Enabled()) {
    task.enqueued = std::chrono::steady_clock::now();
    task.timed = true;
  }
  const bool timed = task.timed;
  {
    MutexLock lock(&mu_);
    while (!stopping_ && static_cast<int64_t>(queue_.size()) >= queue_capacity_) {
      queue_space_.Wait(mu_);
    }
    HTL_CHECK(!stopping_) << "Schedule() on a ThreadPool being destroyed";
    queue_.push_back(std::move(task));
    if (timed) {
      QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  task_ready_.NotifyOne();
}

int64_t ThreadPool::queue_depth() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(queue_.size());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) task_ready_.Wait(mu_);
      // Drain-on-shutdown: exit only once the queue is empty, so every task
      // scheduled before destruction still runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      if (task.timed) {
        QueueDepthGauge()->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    queue_space_.NotifyOne();
    if (task.timed) {
      // Only tasks stamped at enqueue time are measured, so the wait is
      // never computed from a default-constructed epoch.
      TaskWaitHistogram()->Observe(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - task.enqueued)
              .count());
      WorkersBusyGauge()->Add(1);
      task.fn();
      WorkersBusyGauge()->Add(-1);
    } else {
      task.fn();
    }
  }
}

int ThreadPool::DefaultParallelism() {
  // hardware_concurrency() is a syscall on the query path for every caller
  // with parallelism=0 (the default); probe once.
  static const int cached = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return cached;
}

ThreadPool* ThreadPool::Shared() {
  // Never destroyed: worker threads must outlive every static-destruction
  // order dependency a tear-down could race with.
  static ThreadPool* const pool = new ThreadPool();
  return pool;
}

namespace {

/// Shared control block of one ParallelFor call. Lives on the caller's
/// stack; the caller joins every driver before returning, so references from
/// pool tasks never dangle.
struct ParallelForState {
  const std::function<Status(int64_t)>& fn;
  const int64_t n;

  std::atomic<int64_t> next{0};
  std::atomic<bool> abort{false};

  Mutex mu;
  CondVar done;
  int pending_drivers HTL_GUARDED_BY(mu);      // Pool-side drivers not yet finished.
  int64_t error_index HTL_GUARDED_BY(mu);      // Lowest failed index seen (n = none).
  Status error HTL_GUARDED_BY(mu);

  ParallelForState(const std::function<Status(int64_t)>& fn_in, int64_t n_in,
                   int pool_drivers)
      : fn(fn_in), n(n_in), pending_drivers(pool_drivers), error_index(n_in) {}

  /// Claims and runs iterations until the range is exhausted or aborted.
  void Drive() {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      Status s = fn(i);
      if (!s.ok()) {
        {
          MutexLock lock(&mu);
          if (i < error_index) {
            error_index = i;
            error = std::move(s);
          }
        }
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
};

}  // namespace

Status ParallelFor(ThreadPool* pool, int64_t n,
                   const std::function<Status(int64_t)>& fn) {
  if (n <= 0) return Status::OK();
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    for (int64_t i = 0; i < n; ++i) HTL_RETURN_IF_ERROR(fn(i));
    return Status::OK();
  }

  // The caller is one driver; the pool contributes up to num_threads more,
  // never more drivers than iterations.
  const int pool_drivers = static_cast<int>(
      std::min<int64_t>(n - 1, static_cast<int64_t>(pool->num_threads())));
  ParallelForState state(fn, n, pool_drivers);
  for (int d = 0; d < pool_drivers; ++d) {
    pool->Schedule([&state] {
      state.Drive();
      MutexLock lock(&state.mu);
      if (--state.pending_drivers == 0) state.done.NotifyAll();
    });
  }
  state.Drive();
  MutexLock lock(&state.mu);
  while (state.pending_drivers != 0) state.done.Wait(state.mu);
  return state.error_index < n ? state.error : Status::OK();
}

}  // namespace htl
