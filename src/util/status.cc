#include "util/status.h"

namespace htl {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace htl
