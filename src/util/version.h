#ifndef HTL_UTIL_VERSION_H_
#define HTL_UTIL_VERSION_H_

namespace htl {

/// Library version, bumped on releases (semver).
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace htl

#endif  // HTL_UTIL_VERSION_H_
