#include "util/string_util.h"

#include <cctype>
#include <iomanip>

namespace htl {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t b = 0;
  while (b < text.size() && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  size_t e = text.size();
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string FormatFixed(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          *out += "\\u00";
          out->push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
          out->push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string JsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(&out, s);
  return out;
}

}  // namespace htl
