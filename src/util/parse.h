#ifndef HTL_UTIL_PARSE_H_
#define HTL_UTIL_PARSE_H_

#include <cstdint>
#include <string_view>

namespace htl {

/// Non-throwing numeric parsers (std::from_chars wrappers). The house rule
/// forbids exceptions in src/ (see CONTRIBUTING.md), so parsing code uses
/// these instead of std::stoll / std::stod. All of them require the WHOLE
/// text to be consumed: "12x" and "" fail, surrounding whitespace is not
/// skipped. On failure `*out` is left untouched.
bool ParseInt64(std::string_view text, int64_t* out);
bool ParseInt32(std::string_view text, int32_t* out);
bool ParseDouble(std::string_view text, double* out);

}  // namespace htl

#endif  // HTL_UTIL_PARSE_H_
