#ifndef HTL_UTIL_STATUS_H_
#define HTL_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace htl {

/// Error categories used across the library. Mirrors the usual storage-engine
/// convention (LevelDB/RocksDB): library functions that can fail return a
/// Status (or Result<T>, see result.h) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kFailedPrecondition = 7,
  kParseError = 8,
  kDeadlineExceeded = 9,
  kCancelled = 10,
  kResourceExhausted = 11,
  kUnavailable = 12,
};

/// Returns a stable human-readable name for `code` ("OK", "ParseError", ...).
std::string_view StatusCodeName(StatusCode code);

/// A cheap value type carrying success or an (code, message) error.
///
/// The OK status carries no allocation. Statuses are copyable and movable.
/// The class is [[nodiscard]]: a Status-returning call whose result is
/// ignored fails to compile (under -Werror=unused-result; it warns
/// otherwise). Callers must propagate (HTL_RETURN_IF_ERROR), assert
/// (HTL_CHECK_OK / HTL_DCHECK_OK), or explicitly discard via IgnoreError().
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A kOk code with a
  /// non-empty message is normalized to plain OK.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// The service cannot take this request *right now* (overload shedding,
  /// draining for shutdown, connection refused/reset). Retryable with
  /// backoff, unlike every other code — net::QueryClient keys its retry
  /// policy on exactly this predicate.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }

  /// Predicates for the execution-resilience codes (exec_context.h,
  /// fault_point.h). A query-wide abort (deadline/cancel) must propagate out
  /// of Retriever::TopSegments*, while any other error is isolated per video
  /// — IsQueryAbort() is that dispatch in one place.
  bool IsDeadlineExceeded() const { return code_ == StatusCode::kDeadlineExceeded; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsResourceExhausted() const { return code_ == StatusCode::kResourceExhausted; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsQueryAbort() const { return IsDeadlineExceeded() || IsCancelled(); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Explicitly drops an error. The only sanctioned way to ignore a Status:
  /// it documents at the call site that failure is acceptable there, and it
  /// keeps grep-ability (`tools/lint.py` forbids `(void)` casts of
  /// statuses).
  void IgnoreError() const {}

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace htl

/// Evaluates `expr` (a Status expression); on error, returns it from the
/// enclosing function. The enclosing function must return Status or a type
/// constructible from Status (e.g. Result<T>).
#define HTL_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::htl::Status htl_status_tmp_ = (expr);        \
    if (!htl_status_tmp_.ok()) return htl_status_tmp_; \
  } while (0)

#endif  // HTL_UTIL_STATUS_H_
