#include "util/rng.h"

#include "util/logging.h"

namespace htl {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  HTL_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // Full 64-bit range.
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return lo + static_cast<int64_t>(v % span);
}

double Rng::UniformDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return UniformDouble() < p;
}

}  // namespace htl
