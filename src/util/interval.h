#ifndef HTL_UTIL_INTERVAL_H_
#define HTL_UTIL_INTERVAL_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace htl {

/// Id of a video segment within one proper sequence. The paper numbers
/// segments sequentially starting from 1; id 0 is reserved as "invalid".
using SegmentId = int64_t;

inline constexpr SegmentId kInvalidSegmentId = 0;

/// A closed integer interval [begin, end] of segment ids. Empty iff
/// begin > end.
struct Interval {
  SegmentId begin = 1;
  SegmentId end = 0;  // Default-constructed interval is empty.

  bool empty() const { return begin > end; }
  /// Number of ids covered; 0 when empty.
  int64_t size() const { return empty() ? 0 : end - begin + 1; }
  bool Contains(SegmentId id) const { return begin <= id && id <= end; }
  bool Overlaps(const Interval& o) const {
    return !empty() && !o.empty() && begin <= o.end && o.begin <= end;
  }
  /// True when `o` starts exactly one past this interval's end.
  bool Adjacent(const Interval& o) const { return !empty() && !o.empty() && end + 1 == o.begin; }

  /// Intersection; empty when disjoint.
  Interval Intersect(const Interval& o) const {
    return Interval{std::max(begin, o.begin), std::min(end, o.end)};
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.begin == b.begin && a.end == b.end;
  }

  std::string ToString() const;
};

/// True when `intervals` is sorted by begin, non-empty element-wise, and
/// pairwise disjoint — the invariant of similarity-list interval columns.
bool IsDisjointSorted(const std::vector<Interval>& intervals);

/// Coalesces a sorted disjoint sequence, merging adjacent intervals
/// ([1,3],[4,9] -> [1,9]). Input must satisfy IsDisjointSorted.
std::vector<Interval> CoalesceAdjacent(const std::vector<Interval>& intervals);

/// Total number of ids covered by a disjoint interval set.
int64_t TotalCovered(const std::vector<Interval>& intervals);

}  // namespace htl

#endif  // HTL_UTIL_INTERVAL_H_
