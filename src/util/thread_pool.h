#ifndef HTL_UTIL_THREAD_POOL_H_
#define HTL_UTIL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace htl {

/// A fixed-size worker pool with a bounded task queue — the one sanctioned
/// home for threads in src/ (tools/lint.py rejects raw std::thread anywhere
/// else; route concurrency through the pool so shutdown, backpressure, and
/// TSan coverage stay in one place).
///
/// Semantics:
///   * `Schedule` enqueues a task; when the queue is at capacity it BLOCKS
///     until a worker drains an entry (backpressure, never an unbounded
///     buffer). Tasks must not throw (the library is exception-free) and
///     must not block on this same pool's queue.
///   * Destruction drains: already-scheduled tasks all run to completion,
///     then workers join. Scheduling during/after destruction is a
///     programming error (checked).
///   * The pool is content-agnostic: Status propagation and early abort are
///     layered on top by ParallelFor below.
///
/// Thread model: all members are internally synchronized; Schedule may be
/// called from any thread, including from inside a task (as long as the
/// caller tolerates the blocking backpressure).
///
/// Telemetry: while obs::MetricsRegistry is enabled, every pool feeds the
/// process-wide `pool.queue_depth` / `pool.workers_busy` gauges and the
/// `pool.task_wait_us` histogram (enqueue -> dequeue latency; only tasks
/// enqueued while metrics were on are timed). The names are shared by all
/// pools in the process — the aggregate is what a saturation probe wants.
/// Disarmed cost per Schedule/dequeue: one relaxed atomic load and a branch.
class ThreadPool {
 public:
  struct Options {
    /// Worker count; 0 means DefaultParallelism().
    int num_threads = 0;

    /// Bound on queued-but-not-started tasks; 0 means 4x the worker count
    /// (at least 16). Schedule blocks while the queue holds this many.
    int64_t queue_capacity = 0;
  };

  /// Default options: DefaultParallelism() workers, default queue bound.
  ThreadPool();
  explicit ThreadPool(Options options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn`; blocks while the queue is at capacity. `fn` runs on some
  /// worker thread at most once; it must not throw. Calling Schedule on a
  /// pool whose destructor has begun is a checked programming error — tasks
  /// may schedule follow-up work onto their own pool, but the caller must
  /// then quiesce the chain before destroying the pool.
  void Schedule(std::function<void()> fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }
  int64_t queue_capacity() const { return queue_capacity_; }

  /// Tasks enqueued and not yet picked up by a worker (tests, metrics).
  int64_t queue_depth() const;

  /// The hardware parallelism this process should assume: hardware
  /// concurrency, with 1 as the floor when the runtime reports 0.
  static int DefaultParallelism();

  /// Process-wide shared pool, sized to DefaultParallelism(), created on
  /// first use and alive for the process lifetime. Query execution uses this
  /// unless QueryOptions names another pool.
  static ThreadPool* Shared();

 private:
  /// One queued task plus its telemetry stamp. `timed` is set only when the
  /// task was enqueued with metrics enabled, so a mid-run SetEnabled flip
  /// never observes a wait measured from an unstamped epoch.
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
    bool timed = false;
  };

  void WorkerLoop();

  mutable Mutex mu_;
  CondVar task_ready_;   // Signals workers: task or stop.
  CondVar queue_space_;  // Signals producers: queue below cap.
  std::deque<Task> queue_ HTL_GUARDED_BY(mu_);
  bool stopping_ HTL_GUARDED_BY(mu_) = false;
  int64_t queue_capacity_ = 0;  // Set once at construction, then read-only.
  std::vector<std::thread> workers_;
};

/// Runs `fn(0) .. fn(n-1)` across `pool`, propagating Status: the first
/// iteration to return an error aborts the loop — iterations not yet started
/// never run (exception-free early abort), in-flight ones finish — and the
/// call returns the error of the lowest-numbered failed iteration. The
/// calling thread participates as a worker, so progress is guaranteed even
/// when the pool is saturated by other callers; a null pool (or n <= 1, or a
/// single-thread pool) degrades to a plain serial loop on the caller.
///
/// `fn` is invoked for each index at most once, from the caller or a pool
/// thread; it must be safe to run concurrently with itself on distinct
/// indices. Completion of every started iteration happens-before the return.
Status ParallelFor(ThreadPool* pool, int64_t n,
                   const std::function<Status(int64_t)>& fn);

}  // namespace htl

#endif  // HTL_UTIL_THREAD_POOL_H_
