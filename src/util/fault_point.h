#ifndef HTL_UTIL_FAULT_POINT_H_
#define HTL_UTIL_FAULT_POINT_H_

#include <atomic>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace htl {

/// How an armed fault point fires.
struct FaultSpec {
  /// The status code the point returns when it fires. kOk is invalid.
  StatusCode code = StatusCode::kInternal;

  /// Fire on hit number `fire_on_hit` (1-based) and every hit after it when
  /// `sticky`; 0 means "every hit from the first".
  int64_t fire_on_hit = 0;
  bool sticky = true;

  /// When in (0, 1), fire probabilistically with this rate instead of by
  /// count (deterministic given the registry seed — see Seed()).
  double probability = 0.0;
};

/// Process-wide registry of named fault points, in the style of RocksDB's
/// SyncPoint: production code plants `HTL_FAULT_POINT("area.seam")` at
/// I/O-shaped seams; tests arm individual points with FaultSpecs and assert
/// that the error surfaces as a clean Status with truthful partial results.
///
/// Cost when idle: HTL_FAULT_POINT compiles in always (no build flag), but
/// reduces to one relaxed atomic load and a predictable branch while the
/// registry is disarmed — the registry mutex is only touched when armed.
///
/// Point names are "area.seam" (e.g. "picture.query", "sql.scan"); the full
/// set is compiled into KnownPoints() so tests can enumerate coverage, and a
/// debug check rejects hits on unregistered names (catching drift between
/// the list and the planted macros).
class FaultRegistry {
 public:
  static FaultRegistry& Instance();

  /// Every fault point planted in the library, sorted. Keep in sync with
  /// the HTL_FAULT_POINT sites (fault_point.cc asserts membership on hit in
  /// debug builds).
  static const std::vector<std::string_view>& KnownPoints();

  /// True when any point is armed or tracing is on (the macro's fast-path
  /// gate).
  static bool Armed() {
    return Instance().armed_.load(std::memory_order_relaxed);
  }

  /// Arms `point` with `spec`. Resets the point's hit counter.
  void Enable(std::string_view point, FaultSpec spec);

  /// Disarms one point / all points. DisableAll also stops tracing and
  /// clears trace hits.
  void Disable(std::string_view point);
  void DisableAll();

  /// Trace mode: record every hit (without injecting faults) so tests can
  /// prove a workload reaches a seam. Armed points still fire while
  /// tracing.
  void StartTrace();
  /// Hit counts per point name observed since StartTrace().
  std::map<std::string, int64_t> TraceHits();

  /// Reseeds the RNG used for probabilistic specs (deterministic runs).
  void Seed(uint64_t seed);

  /// Called by HTL_FAULT_POINT when armed. Returns the injected error when
  /// the point fires, OK otherwise.
  Status Hit(std::string_view point);

 private:
  FaultRegistry() = default;

  struct PointState {
    FaultSpec spec;
    int64_t hits = 0;
    bool enabled = false;
  };

  void UpdateArmed() HTL_REQUIRES(mu_);

  std::atomic<bool> armed_{false};
  Mutex mu_;
  std::map<std::string, PointState, std::less<>> points_ HTL_GUARDED_BY(mu_);
  bool tracing_ HTL_GUARDED_BY(mu_) = false;
  std::map<std::string, int64_t> trace_hits_ HTL_GUARDED_BY(mu_);
  uint64_t rng_state_ HTL_GUARDED_BY(mu_) = 0x9E3779B97F4A7C15ull;
};

}  // namespace htl

/// Plants a named fault point. In a function returning Status or Result<T>:
/// when the registry has armed this point and it fires, the injected error
/// returns from the enclosing function; otherwise execution continues.
#define HTL_FAULT_POINT(name)                                            \
  do {                                                                   \
    if (::htl::FaultRegistry::Armed()) {                                 \
      HTL_RETURN_IF_ERROR(::htl::FaultRegistry::Instance().Hit(name));   \
    }                                                                    \
  } while (0)

#endif  // HTL_UTIL_FAULT_POINT_H_
