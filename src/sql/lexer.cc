#include "sql/lexer.h"

#include <cctype>

#include "util/parse.h"
#include "util/string_util.h"

namespace htl::sql {

Result<std::vector<Tok>> TokenizeSql(std::string_view text) {
  std::vector<Tok> out;
  size_t i = 0;
  const size_t n = text.size();
  auto push_symbol = [&](std::string sym, size_t offset) {
    Tok t;
    t.kind = TokKind::kSymbol;
    t.text = std::move(sym);
    t.offset = offset;
    out.push_back(std::move(t));
  };
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && text[i + 1] == '-') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      ++i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) || text[i] == '_')) {
        ++i;
      }
      Tok t;
      t.kind = TokKind::kIdent;
      t.text = std::string(text.substr(start, i - start));
      t.offset = start;
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      ++i;
      bool is_float = false;
      while (i < n &&
             (std::isdigit(static_cast<unsigned char>(text[i])) ||
              (!is_float && text[i] == '.' && i + 1 < n &&
               std::isdigit(static_cast<unsigned char>(text[i + 1]))))) {
        if (text[i] == '.') is_float = true;
        ++i;
      }
      const std::string num(text.substr(start, i - start));
      Tok t;
      t.kind = is_float ? TokKind::kFloat : TokKind::kInt;
      if (is_float) {
        double d = 0;
        if (!ParseDouble(num, &d)) {
          return Status::ParseError(StrCat("bad numeric literal '", num, "'"));
        }
        t.number = Value(d);
      } else {
        int64_t v = 0;
        if (!ParseInt64(num, &v)) {
          return Status::ParseError(StrCat("integer literal out of range '", num, "'"));
        }
        t.number = Value(v);
      }
      t.offset = start;
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (text[i] == '\'') {
          if (i + 1 < n && text[i + 1] == '\'') {
            value += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value += text[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError(StrCat("unterminated string at offset ", start));
      }
      Tok t;
      t.kind = TokKind::kString;
      t.string = std::move(value);
      t.offset = start;
      out.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '(':
      case ')':
      case ',':
      case '.':
      case '*':
      case '+':
      case '-':
      case '/':
      case ';':
      case '=':
        push_symbol(std::string(1, c), start);
        ++i;
        continue;
      case '!':
        if (i + 1 < n && text[i + 1] == '=') {
          push_symbol("!=", start);
          i += 2;
          continue;
        }
        return Status::ParseError(StrCat("unexpected '!' at offset ", start));
      case '<':
        if (i + 1 < n && text[i + 1] == '=') {
          push_symbol("<=", start);
          i += 2;
        } else if (i + 1 < n && text[i + 1] == '>') {
          push_symbol("!=", start);
          i += 2;
        } else {
          push_symbol("<", start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && text[i + 1] == '=') {
          push_symbol(">=", start);
          i += 2;
        } else {
          push_symbol(">", start);
          ++i;
        }
        continue;
      default:
        return Status::ParseError(
            StrCat("unexpected character '", std::string(1, c), "' at offset ", start));
    }
  }
  Tok end;
  end.kind = TokKind::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace htl::sql
