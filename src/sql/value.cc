#include "sql/value.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace htl::sql {

int64_t Value::AsInt() const {
  if (is_double()) return static_cast<int64_t>(std::get<double>(data_));
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(data_));
  return std::get<double>(data_);
}

const std::string& Value::AsString() const { return std::get<std::string>(data_); }

bool Value::Truthy() const {
  if (is_int()) return AsInt() != 0;
  if (is_double()) return AsDouble() != 0.0;
  return false;
}

bool operator==(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return false;
  if (a.is_numeric() && b.is_numeric()) return a.AsDouble() == b.AsDouble();
  if (a.is_string() && b.is_string()) return a.AsString() == b.AsString();
  return false;
}

int Value::Compare(const Value& a, const Value& b) {
  auto rank = [](const Value& v) { return v.is_null() ? 0 : (v.is_numeric() ? 1 : 2); };
  if (rank(a) != rank(b)) return rank(a) < rank(b) ? -1 : 1;
  if (a.is_null()) return 0;
  if (a.is_numeric()) {
    const double x = a.AsDouble(), y = b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  return a.AsString().compare(b.AsString()) < 0
             ? -1
             : (a.AsString() == b.AsString() ? 0 : 1);
}

std::string Value::Key() const {
  if (is_null()) return "\x01";
  if (is_numeric()) return StrCat("n", AsDouble());
  return StrCat("s", AsString());
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return StrCat(AsInt());
  if (is_double()) return StrCat(AsDouble());
  return StrCat("'", AsString(), "'");
}

}  // namespace htl::sql
