#include "sql/executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/parser.h"
#include "util/fault_point.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace htl::sql {

namespace {

// ---------------------------------------------------------------------------
// Schema of an intermediate working set: qualified columns.

struct SchemaCol {
  std::string alias;   // Table alias (lower-cased).
  std::string column;  // Column name (lower-cased).
};

struct Schema {
  std::vector<SchemaCol> cols;

  Result<int> Resolve(const std::string& alias, const std::string& column) const {
    const std::string a = AsciiToLower(alias);
    const std::string c = AsciiToLower(column);
    int found = -1;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (!a.empty() && cols[i].alias != a) continue;
      if (cols[i].column != c) continue;
      if (found >= 0) {
        return Status::InvalidArgument(StrCat("ambiguous column '", column, "'"));
      }
      found = static_cast<int>(i);
    }
    if (found < 0) {
      return Status::InvalidArgument(
          StrCat("unknown column '", alias.empty() ? column : alias + "." + column, "'"));
    }
    return found;
  }
};

// ---------------------------------------------------------------------------
// Bound (column-resolved) expressions.

enum class BKind { kLiteral, kColumn, kUnary, kBinary, kFunction, kIsNull, kAggSlot };

struct BoundExpr {
  BKind kind = BKind::kLiteral;
  Value literal;
  int index = -1;  // kColumn: row index; kAggSlot: aggregate slot.
  std::string op;
  std::string fn;
  bool is_not_null = false;
  std::vector<BoundExpr> args;
};

// An aggregate call discovered in a select/having expression.
struct AggSpec {
  std::string fn;       // count/sum/min/max/avg
  bool count_star = false;
  BoundExpr arg;        // Valid unless count_star.
};

struct BindContext {
  const Schema* schema = nullptr;
  // When non-null, aggregate calls are allowed and collected here.
  std::vector<AggSpec>* aggs = nullptr;
};

Result<BoundExpr> BindExpr(const Expr& e, const BindContext& ctx) {
  BoundExpr b;
  switch (e.kind) {
    case ExprKind::kLiteral:
      b.kind = BKind::kLiteral;
      b.literal = e.literal;
      return b;
    case ExprKind::kColumn: {
      b.kind = BKind::kColumn;
      HTL_ASSIGN_OR_RETURN(b.index, ctx.schema->Resolve(e.table_alias, e.column));
      return b;
    }
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is only valid as a whole select item");
    case ExprKind::kUnary: {
      b.kind = BKind::kUnary;
      b.op = e.op;
      HTL_ASSIGN_OR_RETURN(BoundExpr a, BindExpr(*e.args[0], ctx));
      b.args.push_back(std::move(a));
      return b;
    }
    case ExprKind::kBinary: {
      b.kind = BKind::kBinary;
      b.op = e.op;
      for (const auto& arg : e.args) {
        HTL_ASSIGN_OR_RETURN(BoundExpr a, BindExpr(*arg, ctx));
        b.args.push_back(std::move(a));
      }
      return b;
    }
    case ExprKind::kFunction: {
      b.kind = BKind::kFunction;
      b.fn = e.fn;
      for (const auto& arg : e.args) {
        HTL_ASSIGN_OR_RETURN(BoundExpr a, BindExpr(*arg, ctx));
        b.args.push_back(std::move(a));
      }
      return b;
    }
    case ExprKind::kAggregate: {
      if (ctx.aggs == nullptr) {
        return Status::InvalidArgument(
            StrCat("aggregate ", e.fn, "() not allowed in this clause"));
      }
      AggSpec spec;
      spec.fn = e.fn;
      spec.count_star = e.count_star;
      if (!e.count_star) {
        if (e.args.size() != 1) {
          return Status::InvalidArgument(StrCat(e.fn, "() takes one argument"));
        }
        BindContext inner = ctx;
        inner.aggs = nullptr;  // No nested aggregates.
        HTL_ASSIGN_OR_RETURN(spec.arg, BindExpr(*e.args[0], inner));
      }
      b.kind = BKind::kAggSlot;
      b.index = static_cast<int>(ctx.aggs->size());
      ctx.aggs->push_back(std::move(spec));
      return b;
    }
    case ExprKind::kIsNull: {
      b.kind = BKind::kIsNull;
      b.is_not_null = e.is_not_null;
      HTL_ASSIGN_OR_RETURN(BoundExpr a, BindExpr(*e.args[0], ctx));
      b.args.push_back(std::move(a));
      return b;
    }
  }
  return Status::Internal("unhandled expression kind");
}

Value EvalBound(const BoundExpr& e, const Row& row, const std::vector<Value>* aggs) {
  switch (e.kind) {
    case BKind::kLiteral:
      return e.literal;
    case BKind::kColumn:
      return row[static_cast<size_t>(e.index)];
    case BKind::kAggSlot:
      HTL_CHECK(aggs != nullptr);
      return (*aggs)[static_cast<size_t>(e.index)];
    case BKind::kUnary: {
      Value v = EvalBound(e.args[0], row, aggs);
      if (e.op == "not") return Value::FromBool(!v.Truthy());
      if (v.is_null()) return Value::Null();
      if (v.is_int()) return Value(-v.AsInt());
      if (v.is_double()) return Value(-v.AsDouble());
      return Value::Null();
    }
    case BKind::kIsNull: {
      const bool isnull = EvalBound(e.args[0], row, aggs).is_null();
      return Value::FromBool(e.is_not_null ? !isnull : isnull);
    }
    case BKind::kFunction: {
      if (e.fn == "coalesce") {
        for (const BoundExpr& a : e.args) {
          Value v = EvalBound(a, row, aggs);
          if (!v.is_null()) return v;
        }
        return Value::Null();
      }
      if (e.fn == "abs") {
        Value v = EvalBound(e.args[0], row, aggs);
        if (v.is_int()) return Value(std::abs(v.AsInt()));
        if (v.is_double()) return Value(std::fabs(v.AsDouble()));
        return Value::Null();
      }
      // least / greatest: NULL if any argument is NULL (SQL semantics).
      Value best;
      bool first = true;
      for (const BoundExpr& a : e.args) {
        Value v = EvalBound(a, row, aggs);
        if (v.is_null()) return Value::Null();
        if (first) {
          best = v;
          first = false;
          continue;
        }
        const int cmp = Value::Compare(v, best);
        if ((e.fn == "least" && cmp < 0) || (e.fn == "greatest" && cmp > 0)) best = v;
      }
      return best;
    }
    case BKind::kBinary: {
      if (e.op == "and") {
        return Value::FromBool(EvalBound(e.args[0], row, aggs).Truthy() &&
                               EvalBound(e.args[1], row, aggs).Truthy());
      }
      if (e.op == "or") {
        return Value::FromBool(EvalBound(e.args[0], row, aggs).Truthy() ||
                               EvalBound(e.args[1], row, aggs).Truthy());
      }
      Value l = EvalBound(e.args[0], row, aggs);
      Value r = EvalBound(e.args[1], row, aggs);
      if (l.is_null() || r.is_null()) return Value::Null();
      if (e.op == "=") return Value::FromBool(l == r);
      if (e.op == "!=") return Value::FromBool(!(l == r));
      if (e.op == "<") return Value::FromBool(Value::Compare(l, r) < 0);
      if (e.op == "<=") return Value::FromBool(Value::Compare(l, r) <= 0);
      if (e.op == ">") return Value::FromBool(Value::Compare(l, r) > 0);
      if (e.op == ">=") return Value::FromBool(Value::Compare(l, r) >= 0);
      // Arithmetic.
      if (!l.is_numeric() || !r.is_numeric()) return Value::Null();
      if (e.op == "/") {
        const double d = r.AsDouble();
        if (d == 0) return Value::Null();
        return Value(l.AsDouble() / d);
      }
      if (l.is_int() && r.is_int()) {
        if (e.op == "+") return Value(l.AsInt() + r.AsInt());
        if (e.op == "-") return Value(l.AsInt() - r.AsInt());
        if (e.op == "*") return Value(l.AsInt() * r.AsInt());
      } else {
        if (e.op == "+") return Value(l.AsDouble() + r.AsDouble());
        if (e.op == "-") return Value(l.AsDouble() - r.AsDouble());
        if (e.op == "*") return Value(l.AsDouble() * r.AsDouble());
      }
      return Value::Null();
    }
  }
  return Value::Null();
}

// True when the bound expression only reads columns with index in
// [lo, hi) (aggregates/agg slots disqualify).
bool ReadsOnly(const BoundExpr& e, int lo, int hi) {
  if (e.kind == BKind::kColumn) return e.index >= lo && e.index < hi;
  if (e.kind == BKind::kAggSlot) return false;
  for (const BoundExpr& a : e.args) {
    if (!ReadsOnly(a, lo, hi)) return false;
  }
  return true;
}

void SplitConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kBinary && e.op == "and") {
    SplitConjuncts(*e.args[0], out);
    SplitConjuncts(*e.args[1], out);
    return;
  }
  out->push_back(&e);
}

// Rebases a bound expression that reads only inner columns [w, w+inner_width)
// to read [0, inner_width) instead — for evaluating on a bare inner row.
BoundExpr Rebase(const BoundExpr& e, int w) {
  BoundExpr out = e;
  if (out.kind == BKind::kColumn) out.index -= w;
  for (BoundExpr& a : out.args) a = Rebase(a, w);
  return out;
}

struct Aggregator {
  int64_t count = 0;
  double sum = 0;
  bool sum_is_int = true;
  int64_t sum_int = 0;
  Value min, max;

  void Add(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.is_numeric()) {
      sum += v.AsDouble();
      if (v.is_int()) {
        sum_int += v.AsInt();
      } else {
        sum_is_int = false;
      }
    } else {
      sum_is_int = false;
    }
    if (min.is_null() || Value::Compare(v, min) < 0) min = v;
    if (max.is_null() || Value::Compare(v, max) > 0) max = v;
  }

  Value Finish(const std::string& fn) const {
    if (fn == "count") return Value(count);
    if (count == 0) return Value::Null();
    if (fn == "sum") return sum_is_int ? Value(sum_int) : Value(sum);
    if (fn == "avg") return Value(sum / static_cast<double>(count));
    if (fn == "min") return min;
    if (fn == "max") return max;
    return Value::Null();
  }
};

}  // namespace

Result<Table> Executor::ExecuteSql(std::string_view text) {
  HTL_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(text));
  return Execute(stmt);
}

Result<Table> Executor::ExecuteScript(std::string_view text) {
  HTL_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseScript(text));
  Table last;
  for (const Statement& s : stmts) {
    HTL_ASSIGN_OR_RETURN(Table t, Execute(s));
    if (s.kind == Statement::Kind::kSelect) last = std::move(t);
  }
  return last;
}

Status Executor::ChargeRows(int64_t n) {
  if (exec_ == nullptr) return Status::OK();
  return exec_->ChargeRows(n);
}

Result<Table> Executor::Execute(const Statement& stmt) {
  counters_.statements.Increment();
  HTL_OBS_COUNT("sql.statements", 1);
  HTL_OBS_SPAN(span, trace(), "sql.statement");
  // Statement boundary: poll deadline/cancel and reset the per-unit
  // budgets, so each statement of a translated script is bounded alone.
  if (exec_ != nullptr) {
    exec_->BeginUnit();
    HTL_RETURN_IF_ERROR(exec_->Check());
  }
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return ExecuteSelect(*stmt.select);
    case Statement::Kind::kCreateTableAs: {
      HTL_ASSIGN_OR_RETURN(Table t, ExecuteSelect(*stmt.select));
      HTL_RETURN_IF_ERROR(catalog_->Create(stmt.table, std::move(t)));
      return Table();
    }
    case Statement::Kind::kCreateTable: {
      HTL_RETURN_IF_ERROR(catalog_->Create(stmt.table, Table(stmt.columns)));
      return Table();
    }
    case Statement::Kind::kDropTable: {
      HTL_RETURN_IF_ERROR(catalog_->Drop(stmt.table, stmt.if_exists));
      return Table();
    }
    case Statement::Kind::kInsertValues: {
      HTL_ASSIGN_OR_RETURN(const Table* target, catalog_->Get(stmt.table));
      Table copy = *target;
      Schema empty_schema;
      BindContext ctx{&empty_schema, nullptr};
      for (const auto& row_exprs : stmt.values) {
        if (row_exprs.size() != copy.columns().size()) {
          return Status::InvalidArgument(
              StrCat("INSERT arity mismatch for table '", stmt.table, "'"));
        }
        Row row;
        row.reserve(row_exprs.size());
        for (const auto& e : row_exprs) {
          HTL_ASSIGN_OR_RETURN(BoundExpr b, BindExpr(*e, ctx));
          row.push_back(EvalBound(b, {}, nullptr));
        }
        copy.AddRow(std::move(row));
      }
      counters_.rows_materialized.Add(static_cast<int64_t>(stmt.values.size()));
      HTL_OBS_COUNT("sql.rows_materialized", static_cast<int64_t>(stmt.values.size()));
      catalog_->CreateOrReplace(stmt.table, std::move(copy));
      return Table();
    }
    case Statement::Kind::kInsertSelect: {
      HTL_ASSIGN_OR_RETURN(Table produced, ExecuteSelect(*stmt.select));
      HTL_ASSIGN_OR_RETURN(const Table* target, catalog_->Get(stmt.table));
      if (produced.columns().size() != target->columns().size()) {
        return Status::InvalidArgument(
            StrCat("INSERT SELECT arity mismatch for table '", stmt.table, "'"));
      }
      Table copy = *target;
      for (Row& r : produced.mutable_rows()) copy.AddRow(std::move(r));
      catalog_->CreateOrReplace(stmt.table, std::move(copy));
      return Table();
    }
  }
  return Status::Internal("unhandled statement kind");
}

Result<Table> Executor::ExecuteSelect(const SelectStmt& stmt) {
  // SELECT nesting (UNION ALL chains, CREATE TABLE AS) is bounded by the
  // context's depth budget.
  DepthScope depth(exec_);
  HTL_RETURN_IF_ERROR(depth.status());
  // ---- FROM: left-deep materialized join pipeline ------------------------
  Schema schema;
  std::vector<Row> work;
  bool first_table = true;
  for (const TableRef& ref : stmt.from) {
    // The base-table scan: in the paper's setup this is Sybase reading a
    // stored relation.
    const Table* t = nullptr;
    {
      HTL_OBS_SPAN(scan_span, trace(), "sql.scan");
      HTL_FAULT_POINT("sql.scan");
      if (exec_ != nullptr) HTL_RETURN_IF_ERROR(exec_->ChargeTable());
      HTL_ASSIGN_OR_RETURN(t, catalog_->Get(ref.table));
      scan_span.AddTables(1);
      scan_span.AddRows(t->num_rows());
    }
    const std::string alias = AsciiToLower(ref.alias);
    Schema inner_schema;
    for (const std::string& c : t->columns()) {
      inner_schema.cols.push_back(SchemaCol{alias, AsciiToLower(c)});
    }
    if (first_table) {
      schema = inner_schema;
      work = t->rows();
      first_table = false;
      continue;
    }
    const int w = static_cast<int>(schema.cols.size());
    const int iw = static_cast<int>(inner_schema.cols.size());
    Schema combined = schema;
    combined.cols.insert(combined.cols.end(), inner_schema.cols.begin(),
                         inner_schema.cols.end());

    // Classify ON conjuncts.
    std::vector<const Expr*> conjuncts;
    if (ref.on) SplitConjuncts(*ref.on, &conjuncts);
    BindContext cctx{&combined, nullptr};
    struct EquiPair {
      BoundExpr outer;  // Evaluated on the outer row.
      BoundExpr inner;  // Rebased to the inner row.
    };
    std::vector<EquiPair> equis;
    struct RangeBound {
      BoundExpr outer;  // Bound value from the outer row.
      bool is_lower;    // inner >= / > outer  vs  inner <= / < outer.
      bool strict;
      BoundExpr full;   // The whole conjunct, for residual demotion.
    };
    int range_col = -1;  // Inner column index (rebased) for range bounds.
    std::vector<RangeBound> ranges;
    std::vector<BoundExpr> residual;
    for (const Expr* c : conjuncts) {
      HTL_ASSIGN_OR_RETURN(BoundExpr b, BindExpr(*c, cctx));
      bool handled = false;
      if (b.kind == BKind::kBinary &&
          (b.op == "=" || b.op == "<" || b.op == "<=" || b.op == ">" || b.op == ">=")) {
        const BoundExpr* lhs = &b.args[0];
        const BoundExpr* rhs = &b.args[1];
        std::string op = b.op;
        // Normalize to inner OP outer.
        if (ReadsOnly(*lhs, 0, w) && ReadsOnly(*rhs, w, w + iw)) {
          std::swap(lhs, rhs);
          if (op == "<") op = ">";
          else if (op == "<=") op = ">=";
          else if (op == ">") op = "<";
          else if (op == ">=") op = "<=";
        }
        if (ReadsOnly(*lhs, w, w + iw) && ReadsOnly(*rhs, 0, w)) {
          if (op == "=") {
            equis.push_back(EquiPair{*rhs, Rebase(*lhs, w)});
            handled = true;
          } else if (lhs->kind == BKind::kColumn) {
            const int col = lhs->index - w;
            if (range_col < 0 || range_col == col) {
              range_col = col;
              ranges.push_back(RangeBound{*rhs, op == ">" || op == ">=",
                                          op == ">" || op == "<", b});
              handled = true;
            }
          }
        }
      }
      if (!handled) residual.push_back(std::move(b));
    }
    // Strategy selection: a hash join wins whenever an equality is present;
    // range conjuncts then demote to residual filters (they were collected
    // for a sort-seek join that will not run).
    if (!equis.empty()) {
      for (RangeBound& rb : ranges) residual.push_back(std::move(rb.full));
      ranges.clear();
      range_col = -1;
    }

    std::vector<Row> next;
    auto emit = [&](const Row& outer, const Row* inner) -> bool {
      Row combined_row = outer;
      if (inner != nullptr) {
        combined_row.insert(combined_row.end(), inner->begin(), inner->end());
      } else {
        combined_row.resize(static_cast<size_t>(w + iw));  // NULL padding.
      }
      if (inner != nullptr) {
        for (const BoundExpr& r : residual) {
          if (!EvalBound(r, combined_row, nullptr).Truthy()) return false;
        }
      }
      next.push_back(std::move(combined_row));
      return true;
    };

    if (!equis.empty()) {
      counters_.hash_joins.Increment();
      HTL_OBS_COUNT("sql.hash_joins", 1);
      HTL_OBS_SPAN(span, trace(), "sql.hash_join");
      span.AddRows(static_cast<int64_t>(work.size()) + t->num_rows());
      std::unordered_map<std::string, std::vector<const Row*>> ht;
      ht.reserve(t->rows().size() * 2);
      for (const Row& ir : t->rows()) {
        std::string key;
        for (const EquiPair& ep : equis) key += EvalBound(ep.inner, ir, nullptr).Key() + "|";
        ht[key].push_back(&ir);
      }
      for (const Row& outer : work) {
        HTL_CHECK_EXEC(exec_);
        std::string key;
        for (const EquiPair& ep : equis) key += EvalBound(ep.outer, outer, nullptr).Key() + "|";
        bool matched = false;
        auto it = ht.find(key);
        if (it != ht.end()) {
          for (const Row* ir : it->second) matched |= emit(outer, ir);
        }
        if (!matched && ref.join == JoinType::kLeft) emit(outer, nullptr);
      }
    } else if (range_col >= 0) {
      counters_.range_joins.Increment();
      HTL_OBS_COUNT("sql.range_joins", 1);
      HTL_OBS_SPAN(span, trace(), "sql.range_join");
      span.AddRows(static_cast<int64_t>(work.size()) + t->num_rows());
      // Sort inner row pointers by the range column.
      std::vector<const Row*> sorted;
      sorted.reserve(t->rows().size());
      for (const Row& ir : t->rows()) sorted.push_back(&ir);
      std::sort(sorted.begin(), sorted.end(), [&](const Row* a, const Row* b) {
        return Value::Compare((*a)[static_cast<size_t>(range_col)],
                              (*b)[static_cast<size_t>(range_col)]) < 0;
      });
      for (const Row& outer : work) {
        HTL_CHECK_EXEC(exec_);
        // Effective bounds for this outer row.
        Value lo, hi;
        bool lo_strict = false, hi_strict = false, empty = false;
        for (const RangeBound& rb : ranges) {
          Value v = EvalBound(rb.outer, outer, nullptr);
          if (v.is_null()) {
            empty = true;
            break;
          }
          if (rb.is_lower) {
            if (lo.is_null() || Value::Compare(v, lo) > 0 ||
                (Value::Compare(v, lo) == 0 && rb.strict)) {
              lo = v;
              lo_strict = rb.strict;
            }
          } else {
            if (hi.is_null() || Value::Compare(v, hi) < 0 ||
                (Value::Compare(v, hi) == 0 && rb.strict)) {
              hi = v;
              hi_strict = rb.strict;
            }
          }
        }
        bool matched = false;
        if (!empty) {
          size_t start = 0;
          if (!lo.is_null()) {
            start = static_cast<size_t>(
                std::lower_bound(sorted.begin(), sorted.end(), lo,
                                 [&](const Row* r, const Value& v) {
                                   const int cmp = Value::Compare(
                                       (*r)[static_cast<size_t>(range_col)], v);
                                   return lo_strict ? cmp <= 0 : cmp < 0;
                                 }) -
                sorted.begin());
          }
          for (size_t i = start; i < sorted.size(); ++i) {
            const Value& v = (*sorted[i])[static_cast<size_t>(range_col)];
            if (v.is_null()) continue;
            if (!hi.is_null()) {
              const int cmp = Value::Compare(v, hi);
              if (cmp > 0 || (cmp == 0 && hi_strict)) break;
            }
            matched |= emit(outer, sorted[i]);
          }
        }
        if (!matched && ref.join == JoinType::kLeft) emit(outer, nullptr);
      }
    } else {
      counters_.loop_joins.Increment();
      HTL_OBS_COUNT("sql.loop_joins", 1);
      HTL_OBS_SPAN(span, trace(), "sql.loop_join");
      span.AddRows(static_cast<int64_t>(work.size()) + t->num_rows());
      for (const Row& outer : work) {
        HTL_CHECK_EXEC(exec_);
        bool matched = false;
        for (const Row& ir : t->rows()) matched |= emit(outer, &ir);
        if (!matched && ref.join == JoinType::kLeft) emit(outer, nullptr);
      }
    }
    schema = std::move(combined);
    work = std::move(next);
    counters_.rows_materialized.Add(static_cast<int64_t>(work.size()));
    HTL_OBS_COUNT("sql.rows_materialized", static_cast<int64_t>(work.size()));
    HTL_RETURN_IF_ERROR(ChargeRows(static_cast<int64_t>(work.size())));
  }

  // ---- WHERE --------------------------------------------------------------
  if (stmt.where) {
    BindContext ctx{&schema, nullptr};
    HTL_ASSIGN_OR_RETURN(BoundExpr w, BindExpr(*stmt.where, ctx));
    std::vector<Row> filtered;
    filtered.reserve(work.size());
    for (Row& r : work) {
      HTL_CHECK_EXEC(exec_);
      if (EvalBound(w, r, nullptr).Truthy()) filtered.push_back(std::move(r));
    }
    work = std::move(filtered);
  }

  // ---- Select list / aggregation -----------------------------------------
  // Expand '*' items. Expanded items are owned by `owned`; the rest alias
  // the statement's expressions.
  std::vector<ExprPtr> owned;
  std::vector<std::pair<const Expr*, std::string>> items;  // (expr, alias)
  for (const SelectItem& item : stmt.items) {
    if (item.expr->kind == ExprKind::kStar) {
      for (const SchemaCol& sc : schema.cols) {
        owned.push_back(MakeColumn(sc.alias, sc.column));
        items.emplace_back(owned.back().get(), sc.column);
      }
    } else {
      items.emplace_back(item.expr.get(), item.alias);
    }
  }

  auto output_name = [&](const std::pair<const Expr*, std::string>& si,
                         size_t i) -> std::string {
    if (!si.second.empty()) return AsciiToLower(si.second);
    if (si.first->kind == ExprKind::kColumn) return AsciiToLower(si.first->column);
    return StrCat("col", i + 1);
  };

  std::vector<std::string> out_cols;
  for (size_t i = 0; i < items.size(); ++i) out_cols.push_back(output_name(items[i], i));
  Table out(out_cols);

  std::vector<AggSpec> aggs;
  BindContext agg_ctx{&schema, &aggs};
  std::vector<BoundExpr> bound_items;
  for (const auto& si : items) {
    HTL_ASSIGN_OR_RETURN(BoundExpr b, BindExpr(*si.first, agg_ctx));
    bound_items.push_back(std::move(b));
  }
  BoundExpr bound_having;
  bool has_having = false;
  if (stmt.having) {
    HTL_ASSIGN_OR_RETURN(bound_having, BindExpr(*stmt.having, agg_ctx));
    has_having = true;
  }

  // Input rows (or group representatives) kept parallel to the output rows
  // so ORDER BY can reference non-projected input columns.
  std::vector<Row> order_inputs;

  const bool aggregate_query = !aggs.empty() || !stmt.group_by.empty();
  if (aggregate_query) {
    BindContext plain{&schema, nullptr};
    std::vector<BoundExpr> keys;
    for (const auto& g : stmt.group_by) {
      HTL_ASSIGN_OR_RETURN(BoundExpr b, BindExpr(*g, plain));
      keys.push_back(std::move(b));
    }
    struct Group {
      Row representative;
      std::vector<Aggregator> accs;
    };
    std::map<std::string, Group> groups;
    for (const Row& r : work) {
      HTL_CHECK_EXEC(exec_);
      std::string key;
      for (const BoundExpr& k : keys) key += EvalBound(k, r, nullptr).Key() + "|";
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) {
        it->second.representative = r;
        it->second.accs.resize(aggs.size());
      }
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (aggs[i].count_star) {
          it->second.accs[i].Add(Value(1));
        } else {
          it->second.accs[i].Add(EvalBound(aggs[i].arg, r, nullptr));
        }
      }
    }
    // A global aggregate over zero rows still yields one group.
    if (groups.empty() && stmt.group_by.empty()) {
      Group g;
      g.representative.resize(schema.cols.size());
      g.accs.resize(aggs.size());
      groups.emplace("", std::move(g));
    }
    for (const auto& [key, g] : groups) {
      std::vector<Value> agg_values;
      agg_values.reserve(aggs.size());
      for (size_t i = 0; i < aggs.size(); ++i) {
        agg_values.push_back(g.accs[i].Finish(aggs[i].fn));
      }
      if (has_having &&
          !EvalBound(bound_having, g.representative, &agg_values).Truthy()) {
        continue;
      }
      Row out_row;
      out_row.reserve(bound_items.size());
      for (const BoundExpr& b : bound_items) {
        out_row.push_back(EvalBound(b, g.representative, &agg_values));
      }
      out.AddRow(std::move(out_row));
      order_inputs.push_back(g.representative);
    }
  } else {
    for (const Row& r : work) {
      Row out_row;
      out_row.reserve(bound_items.size());
      for (const BoundExpr& b : bound_items) out_row.push_back(EvalBound(b, r, nullptr));
      out.AddRow(std::move(out_row));
      order_inputs.push_back(r);
    }
  }
  counters_.rows_materialized.Add(out.num_rows());
  HTL_OBS_COUNT("sql.rows_materialized", out.num_rows());
  HTL_RETURN_IF_ERROR(ChargeRows(out.num_rows()));

  // ---- DISTINCT -------------------------------------------------------------
  if (stmt.distinct) {
    std::unordered_map<std::string, bool> seen;
    std::vector<Row> rows;
    std::vector<Row> inputs;
    for (size_t i = 0; i < out.rows().size(); ++i) {
      std::string key;
      for (const Value& v : out.rows()[i]) key += v.Key() + "|";
      if (seen.emplace(std::move(key), true).second) {
        rows.push_back(std::move(out.mutable_rows()[i]));
        inputs.push_back(std::move(order_inputs[i]));
      }
    }
    out.mutable_rows() = std::move(rows);
    order_inputs = std::move(inputs);
  }

  // ---- ORDER BY / LIMIT ----------------------------------------------------
  if (!stmt.order_by.empty()) {
    // Each order item binds against the output columns when possible
    // (unqualified aliases), otherwise against the input schema — so
    // "ORDER BY age" works without projecting age, and "ORDER BY p.id"
    // works with qualified names.
    Schema out_schema;
    for (const std::string& c : out.columns()) {
      out_schema.cols.push_back(SchemaCol{"", c});
    }
    BindContext octx{&out_schema, nullptr};
    BindContext ictx{&schema, nullptr};
    struct OrderKey {
      BoundExpr expr;
      bool from_input = false;
      bool desc = false;
    };
    std::vector<OrderKey> order;
    for (const OrderItem& oi : stmt.order_by) {
      Result<BoundExpr> b = BindExpr(*oi.expr, octx);
      if (b.ok()) {
        order.push_back(OrderKey{std::move(b).value(), false, oi.desc});
        continue;
      }
      HTL_ASSIGN_OR_RETURN(BoundExpr ib, BindExpr(*oi.expr, ictx));
      order.push_back(OrderKey{std::move(ib), true, oi.desc});
    }
    HTL_CHECK_EQ(order_inputs.size(), out.rows().size());
    std::vector<size_t> perm(out.rows().size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
      for (const OrderKey& k : order) {
        const Row& ra = k.from_input ? order_inputs[a] : out.rows()[a];
        const Row& rb = k.from_input ? order_inputs[b] : out.rows()[b];
        const int cmp = Value::Compare(EvalBound(k.expr, ra, nullptr),
                                       EvalBound(k.expr, rb, nullptr));
        if (cmp != 0) return k.desc ? cmp > 0 : cmp < 0;
      }
      return false;
    });
    std::vector<Row> sorted;
    sorted.reserve(perm.size());
    for (size_t i : perm) sorted.push_back(std::move(out.mutable_rows()[i]));
    out.mutable_rows() = std::move(sorted);
  }
  if (stmt.limit.has_value() &&
      out.num_rows() > *stmt.limit) {
    out.mutable_rows().resize(static_cast<size_t>(*stmt.limit));
  }

  // ---- UNION ALL ------------------------------------------------------------
  if (stmt.union_all) {
    HTL_ASSIGN_OR_RETURN(Table rest, ExecuteSelect(*stmt.union_all));
    if (rest.columns().size() != out.columns().size()) {
      return Status::InvalidArgument("UNION ALL arity mismatch");
    }
    for (Row& r : rest.mutable_rows()) out.AddRow(std::move(r));
  }
  return out;
}

}  // namespace htl::sql
