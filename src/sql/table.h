#ifndef HTL_SQL_TABLE_H_
#define HTL_SQL_TABLE_H_

#include <map>
#include <string>
#include <vector>

#include "sql/value.h"
#include "util/result.h"

namespace htl::sql {

using Row = std::vector<Value>;

/// An in-memory relation: named columns and a row vector. Rows are
/// positionally aligned with `columns()`.
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }

  /// Index of `name` (case-insensitive), or -1.
  int ColumnIndex(const std::string& name) const;

  /// Appends a row; arity-checked.
  void AddRow(Row row);

  /// Pretty multi-line rendering (for examples and debugging).
  std::string ToString(int64_t max_rows = 50) const;

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

/// The database catalog: named tables. Names are case-insensitive.
class Catalog {
 public:
  /// Creates a table; AlreadyExists if present.
  Status Create(const std::string& name, Table table);

  /// Creates or replaces.
  void CreateOrReplace(const std::string& name, Table table);

  /// Drops; NotFound unless if_exists.
  Status Drop(const std::string& name, bool if_exists);

  Result<const Table*> Get(const std::string& name) const;

  bool Has(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, Table> tables_;  // Keyed by lower-cased name.
};

}  // namespace htl::sql

#endif  // HTL_SQL_TABLE_H_
