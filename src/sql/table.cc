#include "sql/table.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace htl::sql {

int Table::ColumnIndex(const std::string& name) const {
  const std::string lower = AsciiToLower(name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (AsciiToLower(columns_[i]) == lower) return static_cast<int>(i);
  }
  return -1;
}

void Table::AddRow(Row row) {
  HTL_CHECK_EQ(row.size(), columns_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToString(int64_t max_rows) const {
  std::string out = StrJoin(columns_, " | ") + "\n";
  int64_t shown = 0;
  for (const Row& r : rows_) {
    if (shown++ >= max_rows) {
      out += StrCat("... (", num_rows() - max_rows, " more rows)\n");
      break;
    }
    for (size_t i = 0; i < r.size(); ++i) {
      if (i) out += " | ";
      out += r[i].ToString();
    }
    out += "\n";
  }
  return out;
}

Status Catalog::Create(const std::string& name, Table table) {
  const std::string key = AsciiToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists(StrCat("table '", name, "' already exists"));
  }
  tables_.emplace(key, std::move(table));
  return Status::OK();
}

void Catalog::CreateOrReplace(const std::string& name, Table table) {
  tables_[AsciiToLower(name)] = std::move(table);
}

Status Catalog::Drop(const std::string& name, bool if_exists) {
  const std::string key = AsciiToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    if (if_exists) return Status::OK();
    return Status::NotFound(StrCat("table '", name, "' does not exist"));
  }
  tables_.erase(it);
  return Status::OK();
}

Result<const Table*> Catalog::Get(const std::string& name) const {
  auto it = tables_.find(AsciiToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound(StrCat("table '", name, "' does not exist"));
  }
  return &it->second;
}

bool Catalog::Has(const std::string& name) const {
  return tables_.count(AsciiToLower(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [k, v] : tables_) names.push_back(k);
  return names;
}

}  // namespace htl::sql
