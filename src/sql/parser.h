#ifndef HTL_SQL_PARSER_H_
#define HTL_SQL_PARSER_H_

#include <string>
#include <vector>

#include "sql/ast.h"
#include "util/result.h"

namespace htl::sql {

/// Parses one statement (a trailing ';' is allowed).
Result<Statement> ParseStatement(std::string_view text);

/// Parses a ';'-separated script.
Result<std::vector<Statement>> ParseScript(std::string_view text);

}  // namespace htl::sql

#endif  // HTL_SQL_PARSER_H_
