#include "sql/translator.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "util/string_util.h"

namespace htl::sql {

namespace {

bool IsSafeIdentifier(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  // Reserved relation column names and keywords that would collide.
  static const std::set<std::string>& reserved = *new std::set<std::string>{
      "id",  "act",   "beg",   "end",  "val",  "reach", "select", "from", "where",
      "and", "or",    "not",   "join", "on",   "group", "by",     "union",
      "all", "limit", "order", "as",   "in",   "between"};
  return reserved.count(AsciiToLower(name)) == 0;
}

std::string Lo(const std::string& v) { return v + "_lo"; }
std::string Hi(const std::string& v) { return v + "_hi"; }

std::vector<std::string> SortedUnion(const std::vector<std::string>& a,
                                     const std::vector<std::string>& b) {
  std::vector<std::string> out = a;
  for (const std::string& v : b) {
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> Common(const std::vector<std::string>& a,
                                const std::vector<std::string>& b) {
  std::vector<std::string> out;
  for (const std::string& v : a) {
    if (std::find(b.begin(), b.end(), v) != b.end()) out.push_back(v);
  }
  return out;
}

bool Contains(const std::vector<std::string>& vs, const std::string& v) {
  return std::find(vs.begin(), vs.end(), v) != vs.end();
}

class Translator {
 public:
  Translator(const ConjunctiveSpec& spec, std::string prefix,
             const TranslateOptions& options)
      : spec_(spec), prefix_(std::move(prefix)), options_(options) {}

  Result<Translation> Run(const Formula& f) {
    HTL_ASSIGN_OR_RETURN(NodeResult root, Visit(f));
    if (!root.vars.empty() || !root.attr_vars.empty()) {
      return Status::InvalidArgument(
          StrCat("formula has unquantified variables (",
                 StrJoin(root.vars, ","), " ", StrJoin(root.attr_vars, ","),
                 "); SQL translation requires a closed formula"));
    }
    out_.result_table = root.table;
    out_.result_max = root.max;
    return std::move(out_);
  }

 private:
  struct NodeResult {
    std::string table;  // Relation (<vars>..., [<y>_lo, <y>_hi]..., id, act).
    double max = 0;
    std::vector<std::string> vars;       // Sorted object-variable columns.
    std::vector<std::string> attr_vars;  // Sorted attribute-variable columns.
  };

  std::string NewTable() { return StrCat(prefix_, "_t", ++counter_); }

  void Emit(std::string stmt) { out_.statements.push_back(std::move(stmt)); }

  // DROP + CREATE TABLE <name> AS <select>.
  std::string Materialize(const std::string& select) {
    std::string name = NewTable();
    Emit(StrCat("DROP TABLE IF EXISTS ", name));
    Emit(StrCat("CREATE TABLE ", name, " AS ", select));
    return name;
  }

  // "a.x AS x, " for owned columns, "NULL AS x, " otherwise; attr vars
  // expand to their _lo/_hi pair.
  static std::string ProjectCols(const std::vector<std::string>& out_vars,
                                 const std::vector<std::string>& out_attrs,
                                 const std::vector<std::string>& have_vars,
                                 const std::vector<std::string>& have_attrs,
                                 const std::string& alias) {
    std::string cols;
    for (const std::string& v : out_vars) {
      cols += Contains(have_vars, v) ? StrCat(alias, ".", v, " AS ", v, ", ")
                                     : StrCat("NULL AS ", v, ", ");
    }
    for (const std::string& y : out_attrs) {
      if (Contains(have_attrs, y)) {
        cols += StrCat(alias, ".", Lo(y), " AS ", Lo(y), ", ", alias, ".", Hi(y),
                       " AS ", Hi(y), ", ");
      } else {
        cols += StrCat("NULL AS ", Lo(y), ", NULL AS ", Hi(y), ", ");
      }
    }
    return cols;
  }

  // Bare "x, x_lo, x_hi, " column list (same relation).
  static std::string PlainCols(const std::vector<std::string>& vars,
                               const std::vector<std::string>& attrs,
                               const std::string& alias = "") {
    std::string cols;
    const std::string dot = alias.empty() ? "" : alias + ".";
    for (const std::string& v : vars) cols += StrCat(dot, v, ", ");
    for (const std::string& y : attrs) cols += StrCat(dot, Lo(y), ", ", dot, Hi(y), ", ");
    return cols;
  }

  // " AND r.x = l.x ..." over common object variables.
  static std::string VarEqualities(const std::vector<std::string>& common,
                                   const std::string& left, const std::string& right) {
    std::string cond;
    for (const std::string& v : common) {
      cond += StrCat(" AND ", right, ".", v, " = ", left, ".", v);
    }
    return cond;
  }

  // " AND (a.y_lo IS NULL OR b.y_hi IS NULL OR a.y_lo <= b.y_hi) AND ..."
  // — ranges must intersect, over common attribute variables.
  static std::string RangeCompat(const std::vector<std::string>& common,
                                 const std::string& a, const std::string& b) {
    std::string cond;
    for (const std::string& y : common) {
      cond += StrCat(" AND (", a, ".", Lo(y), " IS NULL OR ", b, ".", Hi(y),
                     " IS NULL OR ", a, ".", Lo(y), " <= ", b, ".", Hi(y), ")");
      cond += StrCat(" AND (", b, ".", Lo(y), " IS NULL OR ", a, ".", Hi(y),
                     " IS NULL OR ", b, ".", Lo(y), " <= ", a, ".", Hi(y), ")");
    }
    return cond;
  }

  // The three-branch outer combination shared by AND and OR, now with
  // attribute-variable range columns: matched pairs intersect ranges.
  Result<NodeResult> OuterCombine(const NodeResult& l, const NodeResult& r,
                                  const std::string& matched_act, double out_max) {
    const std::vector<std::string> out_vars = SortedUnion(l.vars, r.vars);
    const std::vector<std::string> out_attrs = SortedUnion(l.attr_vars, r.attr_vars);
    const std::vector<std::string> common_v = Common(l.vars, r.vars);
    const std::vector<std::string> common_a = Common(l.attr_vars, r.attr_vars);
    const std::string on = StrCat("b.id = a.id", VarEqualities(common_v, "a", "b"),
                                  RangeCompat(common_a, "a", "b"));
    // Matched branch columns.
    std::string matched_cols;
    for (const std::string& v : out_vars) {
      matched_cols += StrCat(Contains(l.vars, v) ? "a." : "b.", v, " AS ", v, ", ");
    }
    for (const std::string& y : out_attrs) {
      const bool in_l = Contains(l.attr_vars, y);
      const bool in_r = Contains(r.attr_vars, y);
      if (in_l && in_r) {
        // Intersection with NULL = unbounded: GREATEST/LEAST return NULL if
        // any argument is NULL, so fall back through COALESCE.
        matched_cols += StrCat("COALESCE(GREATEST(a.", Lo(y), ", b.", Lo(y), "), a.",
                               Lo(y), ", b.", Lo(y), ") AS ", Lo(y), ", ");
        matched_cols += StrCat("COALESCE(LEAST(a.", Hi(y), ", b.", Hi(y), "), a.",
                               Hi(y), ", b.", Hi(y), ") AS ", Hi(y), ", ");
      } else {
        const char* side = in_l ? "a." : "b.";
        matched_cols += StrCat(side, Lo(y), " AS ", Lo(y), ", ", side, Hi(y), " AS ",
                               Hi(y), ", ");
      }
    }
    std::string t = Materialize(StrCat(
        "SELECT ", matched_cols, "a.id AS id, ", matched_act, " AS act FROM ", l.table,
        " a JOIN ", r.table, " b ON ", on,
        " UNION ALL SELECT ",
        ProjectCols(out_vars, out_attrs, l.vars, l.attr_vars, "a"),
        "a.id AS id, a.act AS act FROM ", l.table, " a LEFT JOIN ", r.table, " b ON ",
        on, " WHERE b.id IS NULL",
        " UNION ALL SELECT ",
        ProjectCols(out_vars, out_attrs, r.vars, r.attr_vars, "b"),
        "b.id AS id, b.act AS act FROM ", r.table, " b LEFT JOIN ", l.table, " a ON ",
        StrCat("a.id = b.id", VarEqualities(common_v, "b", "a"),
               RangeCompat(common_a, "b", "a")),
        " WHERE a.id IS NULL"));
    return NodeResult{t, out_max, out_vars, out_attrs};
  }

  Result<NodeResult> Visit(const Formula& f) {
    switch (f.kind) {
      case FormulaKind::kConstraint:
        return VisitLeaf(f);
      case FormulaKind::kAnd: {
        HTL_ASSIGN_OR_RETURN(NodeResult l, Visit(*f.left));
        HTL_ASSIGN_OR_RETURN(NodeResult r, Visit(*f.right));
        return OuterCombine(l, r, "a.act + b.act", l.max + r.max);
      }
      case FormulaKind::kOr: {
        HTL_ASSIGN_OR_RETURN(NodeResult l, Visit(*f.left));
        HTL_ASSIGN_OR_RETURN(NodeResult r, Visit(*f.right));
        return OuterCombine(l, r, "GREATEST(a.act, b.act)", std::max(l.max, r.max));
      }
      case FormulaKind::kNext: {
        HTL_ASSIGN_OR_RETURN(NodeResult l, Visit(*f.left));
        std::string t = Materialize(StrCat("SELECT ", PlainCols(l.vars, l.attr_vars),
                                           "id - 1 AS id, act FROM ", l.table,
                                           " WHERE id >= 2"));
        return NodeResult{t, l.max, l.vars, l.attr_vars};
      }
      case FormulaKind::kEventually: {
        HTL_ASSIGN_OR_RETURN(NodeResult l, Visit(*f.left));
        // Per (binding, range) suffix max — matches the direct engine's
        // per-row Eventually.
        const std::string group = PlainCols(l.vars, l.attr_vars, "f");
        std::string cols;
        for (const std::string& v : l.vars) cols += StrCat("f.", v, " AS ", v, ", ");
        for (const std::string& y : l.attr_vars) {
          cols += StrCat("f.", Lo(y), " AS ", Lo(y), ", f.", Hi(y), " AS ", Hi(y), ", ");
        }
        std::string t = Materialize(StrCat(
            "SELECT ", cols, "s.id AS id, MAX(f.act) AS act FROM ", l.table,
            " f JOIN seq s ON s.id <= f.id GROUP BY ", group, "s.id"));
        return NodeResult{t, l.max, l.vars, l.attr_vars};
      }
      case FormulaKind::kUntil:
        return VisitUntil(f);
      case FormulaKind::kExists: {
        HTL_ASSIGN_OR_RETURN(NodeResult l, Visit(*f.left));
        std::vector<std::string> kept;
        for (const std::string& v : l.vars) {
          if (!Contains(f.vars, v)) kept.push_back(v);
        }
        const std::string cols = PlainCols(kept, l.attr_vars);
        std::string t = Materialize(StrCat("SELECT ", cols, "id, MAX(act) AS act FROM ",
                                           l.table, " GROUP BY ", cols, "id"));
        return NodeResult{t, l.max, kept, l.attr_vars};
      }
      case FormulaKind::kFreeze:
        return VisitFreeze(f);
      default:
        return Status::InvalidArgument(
            StrCat("not SQL-translatable (conjunctive named-predicate formulas): ",
                   f.ToString()));
    }
  }

  Result<NodeResult> VisitLeaf(const Formula& f) {
    if (f.constraint.kind != Constraint::Kind::kPredicate) {
      return Status::InvalidArgument(
          StrCat("SQL translation expects named predicates as leaves, got: ",
                 f.constraint.ToString()));
    }
    const std::string& name = f.constraint.pred_name;
    auto it = spec_.leaves.find(name);
    if (it == spec_.leaves.end()) {
      return Status::NotFound(
          StrCat("no input spec registered for predicate '", name, "'"));
    }
    std::vector<std::string> vars = f.constraint.pred_args;
    std::sort(vars.begin(), vars.end());
    if (std::adjacent_find(vars.begin(), vars.end()) != vars.end()) {
      return Status::InvalidArgument(
          StrCat("repeated variable in predicate ", name, "(...)"));
    }
    std::vector<std::string> attrs = it->second.attr_vars;
    std::sort(attrs.begin(), attrs.end());
    for (const std::string& v : vars) {
      if (!IsSafeIdentifier(v)) {
        return Status::InvalidArgument(
            StrCat("variable '", v, "' is not usable as a SQL column"));
      }
    }
    for (const std::string& y : attrs) {
      if (!IsSafeIdentifier(y)) {
        return Status::InvalidArgument(
            StrCat("attribute variable '", y, "' is not usable as a SQL column"));
      }
    }
    const std::string input = StrCat(prefix_, "_in_", name);
    bool known = false;
    for (const auto& [pred, table] : out_.inputs) known |= pred == name;
    if (!known) out_.inputs.emplace_back(name, input);
    std::string t = Materialize(StrCat("SELECT ", PlainCols(vars, attrs, "a"),
                                       "s.id AS id, a.act AS act FROM ", input,
                                       " a JOIN seq s ON s.id >= a.beg AND s.id <= "
                                       "a.end"));
    return NodeResult{t, it->second.max, std::move(vars), std::move(attrs)};
  }

  Result<NodeResult> VisitUntil(const Formula& f) {
    HTL_ASSIGN_OR_RETURN(NodeResult g, Visit(*f.left));
    HTL_ASSIGN_OR_RETURN(NodeResult h, Visit(*f.right));
    if (!g.attr_vars.empty() || !h.attr_vars.empty()) {
      return Status::Unimplemented(
          "until over attribute-variable operands is not SQL-translatable "
          "(the per-value chain computation does not decompose into joins)");
    }
    const double cutoff = options_.until_threshold * g.max;
    const std::vector<std::string> out_vars = SortedUnion(g.vars, h.vars);
    const std::vector<std::string> common = Common(g.vars, h.vars);
    const std::string gcols = PlainCols(g.vars, {});
    // 1. Ids (per binding) where g clears the threshold.
    std::string gth = Materialize(StrCat("SELECT DISTINCT ", gcols, "id FROM ", g.table,
                                         " WHERE act >= ", FormatFixed(cutoff, 12)));
    // 2. reach(binding, id) by pointer doubling within each binding.
    std::string reach = Materialize(StrCat("SELECT ", gcols, "id, id AS reach FROM ",
                                           gth));
    for (int round = 0; round < options_.coalesce_rounds; ++round) {
      std::string acols;
      for (const std::string& v : g.vars) acols += StrCat("a.", v, " AS ", v, ", ");
      reach = Materialize(StrCat(
          "SELECT ", acols, "a.id AS id, COALESCE(b.reach, a.reach) AS reach FROM ",
          reach, " a LEFT JOIN ", reach, " b ON b.id = a.reach + 1",
          VarEqualities(g.vars, "a", "b")));
    }
    // 3. Best h reachable within the run extended by one.
    std::string sel_cols, group_cols;
    for (const std::string& v : out_vars) {
      const char* side = Contains(g.vars, v) ? "g." : "h.";
      sel_cols += StrCat(side, v, " AS ", v, ", ");
      group_cols += StrCat(side, v, ", ");
    }
    std::string contrib = Materialize(StrCat(
        "SELECT ", sel_cols, "g.id AS id, MAX(h.act) AS act FROM ", reach, " g JOIN ",
        h.table, " h ON h.id >= g.id AND h.id <= g.reach + 1",
        VarEqualities(common, "g", "h"), " GROUP BY ", group_cols, "g.id"));
    // 4. Plus h alone (the u'' == u case), max-merged per (binding, id).
    std::string unioned = Materialize(StrCat(
        "SELECT ", PlainCols(out_vars, {}, "c"), "c.id AS id, c.act AS act FROM ",
        contrib, " c UNION ALL SELECT ", ProjectCols(out_vars, {}, h.vars, {}, "h"),
        "h.id AS id, h.act AS act FROM ", h.table, " h"));
    const std::string plain = PlainCols(out_vars, {});
    std::string t = Materialize(StrCat("SELECT ", plain, "id, MAX(act) AS act FROM ",
                                       unioned, " GROUP BY ", plain, "id"));
    return NodeResult{t, h.max, out_vars, {}};
  }

  Result<NodeResult> VisitFreeze(const Formula& f) {
    HTL_ASSIGN_OR_RETURN(NodeResult body, Visit(*f.left));
    const std::string& y = f.freeze_var;
    if (!Contains(body.attr_vars, y)) return body;  // Variable unused.
    const std::string term_key = f.freeze_term.ToString();
    auto vit = spec_.value_vars.find(term_key);
    if (vit == spec_.value_vars.end()) {
      return Status::NotFound(
          StrCat("no value table registered for freeze term '", term_key, "'"));
    }
    std::vector<std::string> vvars = vit->second;
    std::sort(vvars.begin(), vvars.end());
    for (const std::string& v : vvars) {
      if (!IsSafeIdentifier(v)) {
        return Status::InvalidArgument(
            StrCat("value-table variable '", v, "' is not usable as a SQL column"));
      }
    }
    // Register and expand the value relation over the id domain.
    const std::string vin = StrCat(prefix_, "_val", ++value_counter_);
    out_.value_inputs.emplace_back(term_key, vin);
    std::string vexp = Materialize(StrCat(
        "SELECT ", PlainCols(vvars, {}, "r"), "r.val AS val, s.id AS id FROM ", vin,
        " r JOIN seq s ON s.id >= r.beg AND s.id <= r.end"));

    const std::vector<std::string> out_vars = SortedUnion(body.vars, vvars);
    std::vector<std::string> out_attrs;
    for (const std::string& a : body.attr_vars) {
      if (a != y) out_attrs.push_back(a);
    }
    const std::vector<std::string> common_v = Common(body.vars, vvars);

    // Bounded rows join the value table at their own id ("the value of q at
    // u"); rows with both bounds NULL are unconstrained and pass through
    // (the value of q, defined or not, is irrelevant).
    std::string join_cols;
    for (const std::string& v : out_vars) {
      join_cols += StrCat(Contains(body.vars, v) ? "t." : "v.", v, " AS ", v, ", ");
    }
    for (const std::string& a : out_attrs) {
      join_cols += StrCat("t.", Lo(a), " AS ", Lo(a), ", t.", Hi(a), " AS ", Hi(a),
                          ", ");
    }
    std::string joined = Materialize(StrCat(
        "SELECT ", join_cols, "t.id AS id, t.act AS act FROM ", body.table,
        " t JOIN ", vexp, " v ON v.id = t.id", VarEqualities(common_v, "t", "v"),
        " AND (t.", Lo(y), " IS NULL OR v.val >= t.", Lo(y), ")",
        " AND (t.", Hi(y), " IS NULL OR v.val <= t.", Hi(y), ")",
        " WHERE t.", Lo(y), " IS NOT NULL OR t.", Hi(y), " IS NOT NULL",
        " UNION ALL SELECT ",
        ProjectCols(out_vars, out_attrs, body.vars, out_attrs, "t"),
        "t.id AS id, t.act AS act FROM ", body.table, " t WHERE t.", Lo(y),
        " IS NULL AND t.", Hi(y), " IS NULL"));
    // Dedup: several values of q may land in a row's range.
    const std::string plain = PlainCols(out_vars, out_attrs);
    std::string t = Materialize(StrCat("SELECT ", plain, "id, MAX(act) AS act FROM ",
                                       joined, " GROUP BY ", plain, "id"));
    return NodeResult{t, body.max, out_vars, out_attrs};
  }

  const ConjunctiveSpec& spec_;
  const std::string prefix_;
  const TranslateOptions options_;
  Translation out_;
  int counter_ = 0;
  int value_counter_ = 0;
};

}  // namespace

std::string Translation::Script() const { return StrJoin(statements, ";\n"); }

Result<Translation> TranslateToSql(const Formula& f,
                                   const std::map<std::string, double>& input_max,
                                   const std::string& prefix,
                                   const TranslateOptions& options) {
  ConjunctiveSpec spec;
  for (const auto& [name, max] : input_max) {
    spec.leaves[name] = ConjunctiveSpec::Leaf{max, {}};
  }
  Translator t(spec, prefix, options);
  return t.Run(f);
}

Result<Translation> TranslateConjunctiveToSql(const Formula& f,
                                              const ConjunctiveSpec& spec,
                                              const std::string& prefix,
                                              const TranslateOptions& options) {
  Translator t(spec, prefix, options);
  return t.Run(f);
}

}  // namespace htl::sql
