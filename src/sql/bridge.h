#ifndef HTL_SQL_BRIDGE_H_
#define HTL_SQL_BRIDGE_H_

#include "sim/sim_list.h"
#include "sim/sim_table.h"
#include "sim/value_table.h"
#include "sql/table.h"
#include "util/result.h"

namespace htl::sql {

/// Conversions between the retrieval engine's similarity lists and the SQL
/// engine's relations — the loading step of the paper's SQL-based system
/// (similarity tables of atomic subformulas are fed in as relations).

/// Interval-form relation (beg, end, act) from a similarity list.
Table TableFromList(const SimilarityList& list);

/// Interval-form relation (<var1>, ..., <vark>[, <attr>_lo, <attr>_hi]...,
/// beg, end, act) from a similarity table — one row per (binding[, range],
/// interval entry); wildcard bindings become SQL NULL. Attribute-variable
/// range columns encode *closed integer* bounds with NULL for unbounded
/// (open integer bounds normalize by ±1; section 3.3 restricts attribute-
/// variable predicates to integer attributes — non-integer bounds are
/// InvalidArgument).
Result<Table> TableFromSimilarityTable(const SimilarityTable& table);

/// Relation (<var1>, ..., <vark>, val, beg, end) from a value table — one
/// row per (binding, value, interval), the section 3.3 value table in
/// relational form for the freeze-quantifier join.
Table TableFromValueTable(const ValueTable& values);

/// Expanded-form relation (id, act): one row per covered segment id.
Table ExpandedTableFromList(const SimilarityList& list);

/// The id domain relation seq(id) = {1..n} used by the translator to expand
/// interval tables (stands in for the RDBMS's sequence/numbers table).
Table MakeSeqTable(int64_t n);

/// Rebuilds a similarity list from an expanded (id, act) relation; rows may
/// be unordered and must not repeat ids. `max` is the formula's static
/// maximum (relations do not carry it).
Result<SimilarityList> ListFromExpandedTable(const Table& table, double max);

/// Rebuilds a similarity list from an interval-form (beg, end, act)
/// relation with disjoint intervals.
Result<SimilarityList> ListFromIntervalTable(const Table& table, double max);

}  // namespace htl::sql

#endif  // HTL_SQL_BRIDGE_H_
