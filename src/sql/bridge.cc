#include "sql/bridge.h"

#include <algorithm>

#include "util/string_util.h"

namespace htl::sql {

Table TableFromList(const SimilarityList& list) {
  Table t({"beg", "end", "act"});
  for (const SimEntry& e : list.entries()) {
    t.AddRow({Value(e.range.begin), Value(e.range.end), Value(e.actual)});
  }
  return t;
}

namespace {

// Converts one ValueRange bound to a closed integer SQL value (NULL when
// unbounded); open integer bounds normalize by +-1.
Result<Value> ClosedIntBound(bool present, const AttrValue& bound, bool open,
                             int64_t open_shift) {
  if (!present) return Value::Null();
  if (!bound.is_int()) {
    return Status::InvalidArgument(
        "SQL translation supports integer attribute-variable bounds only "
        "(section 3.3)");
  }
  return Value(bound.AsInt() + (open ? open_shift : 0));
}

}  // namespace

Result<Table> TableFromSimilarityTable(const SimilarityTable& table) {
  std::vector<std::string> columns = table.object_vars();
  for (const std::string& y : table.attr_vars()) {
    columns.push_back(y + "_lo");
    columns.push_back(y + "_hi");
  }
  columns.push_back("beg");
  columns.push_back("end");
  columns.push_back("act");
  Table out(columns);
  for (const SimilarityTable::Row& row : table.rows()) {
    std::vector<Value> binding;
    for (ObjectId o : row.objects) {
      binding.push_back(o == SimilarityTable::kAnyObject ? Value::Null() : Value(o));
    }
    for (const ValueRange& range : row.ranges) {
      HTL_ASSIGN_OR_RETURN(
          Value lo, ClosedIntBound(range.has_lower(),
                                   range.has_lower() ? range.lower() : AttrValue(),
                                   range.lower_open(), +1));
      HTL_ASSIGN_OR_RETURN(
          Value hi, ClosedIntBound(range.has_upper(),
                                   range.has_upper() ? range.upper() : AttrValue(),
                                   range.upper_open(), -1));
      binding.push_back(std::move(lo));
      binding.push_back(std::move(hi));
    }
    for (const SimEntry& e : row.list.entries()) {
      Row r = binding;
      r.push_back(Value(e.range.begin));
      r.push_back(Value(e.range.end));
      r.push_back(Value(e.actual));
      out.AddRow(std::move(r));
    }
  }
  return out;
}

namespace {

Value SqlValueFromAttr(const AttrValue& v) {
  if (v.is_int()) return Value(v.AsInt());
  if (v.is_double()) return Value(v.AsDouble());
  if (v.is_string()) return Value(v.AsString());
  return Value::Null();
}

}  // namespace

Table TableFromValueTable(const ValueTable& values) {
  std::vector<std::string> columns = values.object_vars();
  columns.push_back("val");
  columns.push_back("beg");
  columns.push_back("end");
  Table out(columns);
  for (const ValueTable::Row& row : values.rows()) {
    const Value val = SqlValueFromAttr(row.value);
    for (const Interval& where : row.where) {
      Row r;
      r.reserve(columns.size());
      for (ObjectId o : row.objects) r.push_back(Value(o));
      r.push_back(val);
      r.push_back(Value(where.begin));
      r.push_back(Value(where.end));
      out.AddRow(std::move(r));
    }
  }
  return out;
}

Table ExpandedTableFromList(const SimilarityList& list) {
  Table t({"id", "act"});
  for (const SimEntry& e : list.entries()) {
    for (SegmentId id = e.range.begin; id <= e.range.end; ++id) {
      t.AddRow({Value(id), Value(e.actual)});
    }
  }
  return t;
}

Table MakeSeqTable(int64_t n) {
  Table t({"id"});
  for (int64_t i = 1; i <= n; ++i) t.AddRow({Value(i)});
  return t;
}

Result<SimilarityList> ListFromExpandedTable(const Table& table, double max) {
  const int id_col = table.ColumnIndex("id");
  const int act_col = table.ColumnIndex("act");
  if (id_col < 0 || act_col < 0) {
    return Status::InvalidArgument("expected columns (id, act)");
  }
  std::vector<std::pair<SegmentId, double>> cells;
  cells.reserve(table.rows().size());
  for (const Row& r : table.rows()) {
    const Value& id = r[static_cast<size_t>(id_col)];
    const Value& act = r[static_cast<size_t>(act_col)];
    if (id.is_null() || act.is_null()) {
      return Status::InvalidArgument("NULL in expanded similarity relation");
    }
    cells.emplace_back(id.AsInt(), act.AsDouble());
  }
  std::sort(cells.begin(), cells.end());
  std::vector<SimEntry> entries;
  for (const auto& [id, act] : cells) {
    if (!entries.empty() && entries.back().range.end == id) {
      return Status::InvalidArgument(StrCat("duplicate id ", id, " in relation"));
    }
    entries.push_back(SimEntry{Interval{id, id}, act});
  }
  return SimilarityList::FromEntries(std::move(entries), max);
}

Result<SimilarityList> ListFromIntervalTable(const Table& table, double max) {
  const int beg_col = table.ColumnIndex("beg");
  const int end_col = table.ColumnIndex("end");
  const int act_col = table.ColumnIndex("act");
  if (beg_col < 0 || end_col < 0 || act_col < 0) {
    return Status::InvalidArgument("expected columns (beg, end, act)");
  }
  std::vector<SimEntry> entries;
  entries.reserve(table.rows().size());
  for (const Row& r : table.rows()) {
    entries.push_back(SimEntry{Interval{r[static_cast<size_t>(beg_col)].AsInt(),
                                        r[static_cast<size_t>(end_col)].AsInt()},
                               r[static_cast<size_t>(act_col)].AsDouble()});
  }
  std::sort(entries.begin(), entries.end(),
            [](const SimEntry& a, const SimEntry& b) {
              return a.range.begin < b.range.begin;
            });
  return SimilarityList::FromEntries(std::move(entries), max);
}

}  // namespace htl::sql
