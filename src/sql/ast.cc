#include "sql/ast.h"

#include "util/string_util.h"

namespace htl::sql {

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kColumn:
      return table_alias.empty() ? column : StrCat(table_alias, ".", column);
    case ExprKind::kStar:
      return "*";
    case ExprKind::kUnary:
      return StrCat(op, " (", args[0]->ToString(), ")");
    case ExprKind::kBinary:
      return StrCat("(", args[0]->ToString(), " ", op, " ", args[1]->ToString(), ")");
    case ExprKind::kFunction:
    case ExprKind::kAggregate: {
      if (count_star) return "count(*)";
      std::string inner;
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) inner += ", ";
        inner += args[i]->ToString();
      }
      return StrCat(fn, "(", inner, ")");
    }
    case ExprKind::kIsNull:
      return StrCat(args[0]->ToString(), is_not_null ? " is not null" : " is null");
  }
  return "?";
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumn(std::string table_alias, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumn;
  e->table_alias = std::move(table_alias);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = std::move(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

}  // namespace htl::sql
