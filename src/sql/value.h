#ifndef HTL_SQL_VALUE_H_
#define HTL_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace htl::sql {

/// A dynamically typed SQL value: NULL, INTEGER, REAL, or TEXT. The mini
/// relational engine is dynamically typed (like SQLite): columns carry no
/// declared type and any cell can hold any value.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  Value(int64_t v) : data_(v) {}                  // NOLINT(runtime/explicit)
  Value(int v) : data_(static_cast<int64_t>(v)) {}  // NOLINT(runtime/explicit)
  Value(double v) : data_(v) {}                   // NOLINT(runtime/explicit)
  Value(std::string v) : data_(std::move(v)) {}   // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit)
  Value(bool) = delete;  // Booleans are tri-state in SQL; use FromBool.

  static Value Null() { return Value(); }
  static Value FromBool(bool b) { return Value(static_cast<int64_t>(b ? 1 : 0)); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// SQL truthiness: non-zero numerics are true; NULL and strings are false.
  bool Truthy() const;

  /// SQL equality (NULL never equals anything — callers handle three-valued
  /// logic; this returns plain boolean with NULLs unequal).
  friend bool operator==(const Value& a, const Value& b);

  /// Total ordering for ORDER BY / sorting: NULL < numerics < strings.
  static int Compare(const Value& a, const Value& b);

  /// Key string for hash joins and GROUP BY.
  std::string Key() const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace htl::sql

#endif  // HTL_SQL_VALUE_H_
