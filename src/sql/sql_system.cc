#include "sql/sql_system.h"

#include "sql/bridge.h"
#include "util/string_util.h"

namespace htl::sql {

Status SqlSystem::LoadInputs(const Translation& translation,
                             const std::map<std::string, SimilarityList>& inputs,
                             int64_t n) {
  for (const auto& [pred, table] : translation.inputs) {
    auto it = inputs.find(pred);
    if (it == inputs.end()) {
      return Status::NotFound(StrCat("no input list for predicate '", pred, "'"));
    }
    catalog_.CreateOrReplace(table, TableFromList(it->second));
  }
  catalog_.CreateOrReplace("seq", MakeSeqTable(n));
  return Status::OK();
}

Result<SimilarityList> SqlSystem::Run(const Translation& translation) {
  for (const std::string& stmt : translation.statements) {
    HTL_RETURN_IF_ERROR(executor_.ExecuteSql(stmt).status());
  }
  HTL_ASSIGN_OR_RETURN(const Table* result, catalog_.Get(translation.result_table));
  return ListFromExpandedTable(*result, translation.result_max);
}

Status SqlSystem::LoadTableInputs(const Translation& translation,
                                  const std::map<std::string, TableInput>& inputs,
                                  int64_t n) {
  for (const auto& [pred, table] : translation.inputs) {
    auto it = inputs.find(pred);
    if (it == inputs.end()) {
      return Status::NotFound(StrCat("no input table for predicate '", pred, "'"));
    }
    HTL_ASSIGN_OR_RETURN(Table relation, TableFromSimilarityTable(it->second.table));
    catalog_.CreateOrReplace(table, std::move(relation));
  }
  catalog_.CreateOrReplace("seq", MakeSeqTable(n));
  return Status::OK();
}

Result<SimilarityList> SqlSystem::EvaluateTables(
    const Formula& f, const std::map<std::string, TableInput>& inputs, int64_t n,
    const TranslateOptions& options) {
  std::map<std::string, double> input_max;
  for (const auto& [name, input] : inputs) input_max[name] = input.max;
  HTL_ASSIGN_OR_RETURN(Translation translation,
                       TranslateToSql(f, input_max, "q", options));
  HTL_RETURN_IF_ERROR(LoadTableInputs(translation, inputs, n));
  return Run(translation);
}

Result<SimilarityList> SqlSystem::EvaluateConjunctive(
    const Formula& f, const std::map<std::string, TableInput>& inputs,
    const std::map<std::string, ValueTable>& values, int64_t n,
    const TranslateOptions& options) {
  ConjunctiveSpec spec;
  for (const auto& [name, input] : inputs) {
    spec.leaves[name] = ConjunctiveSpec::Leaf{input.max, input.table.attr_vars()};
  }
  for (const auto& [key, table] : values) {
    spec.value_vars[key] = table.object_vars();
  }
  HTL_ASSIGN_OR_RETURN(Translation translation,
                       TranslateConjunctiveToSql(f, spec, "q", options));
  HTL_RETURN_IF_ERROR(LoadTableInputs(translation, inputs, n));
  for (const auto& [key, table_name] : translation.value_inputs) {
    auto it = values.find(key);
    if (it == values.end()) {
      return Status::NotFound(StrCat("no value table for freeze term '", key, "'"));
    }
    catalog_.CreateOrReplace(table_name, TableFromValueTable(it->second));
  }
  return Run(translation);
}

Result<SimilarityList> SqlSystem::Evaluate(
    const Formula& f, const std::map<std::string, SimilarityList>& inputs, int64_t n,
    const TranslateOptions& options) {
  std::map<std::string, double> input_max;
  for (const auto& [name, list] : inputs) input_max[name] = list.max();
  HTL_ASSIGN_OR_RETURN(Translation translation, TranslateToSql(f, input_max, "q", options));
  HTL_RETURN_IF_ERROR(LoadInputs(translation, inputs, n));
  return Run(translation);
}

}  // namespace htl::sql
