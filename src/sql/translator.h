#ifndef HTL_SQL_TRANSLATOR_H_
#define HTL_SQL_TRANSLATOR_H_

#include <map>
#include <string>
#include <vector>

#include "htl/ast.h"
#include "util/result.h"

namespace htl::sql {

/// Tuning for the HTL → SQL translation.
struct TranslateOptions {
  /// Fractional threshold for the left operand of `until` (must match the
  /// direct engine's QueryOptions::until_threshold for result parity).
  double until_threshold = 0.5;

  /// Rounds of pointer-doubling used to compute contiguous-run reach inside
  /// the `until` translation. Round r extends reach to runs of length 2^r,
  /// so the default handles runs up to 2^20 ids — far beyond any practical
  /// sequence; raise it for adversarial inputs. (Plain 1990s SQL has no
  /// recursion, so bounded unrolling is the honest translation.)
  int coalesce_rounds = 20;
};

/// The result of translating one formula: an ordered SQL script computing
/// the similarity relation of the formula from input relations.
struct Translation {
  /// Input relations the caller must load before running: (predicate name,
  /// table name). A predicate with k argument variables loads as a relation
  /// with columns (<var1>, ..., <vark>[, <attr>_lo, <attr>_hi]..., beg,
  /// end, act) — one row per (binding[, range], interval entry); a 0-ary
  /// predicate without attribute variables is the plain interval relation
  /// (beg, end, act). The id domain relation `seq(id)` = {1..n} must be
  /// loaded too.
  std::vector<std::pair<std::string, std::string>> inputs;

  /// Value-table relations required by freeze quantifiers: (freeze-term
  /// key, table name), columns (<var>..., val, beg, end) — see
  /// TableFromValueTable.
  std::vector<std::pair<std::string, std::string>> value_inputs;

  /// Statements to execute in order (includes DROP TABLE IF EXISTS cleanup
  /// so a script can be re-run).
  std::vector<std::string> statements;

  /// Name of the final relation, columns (id, act): one row per segment
  /// with non-zero similarity — the expanded form of the similarity list.
  std::string result_table;

  /// Static max similarity of the whole formula (for list reconstruction).
  double result_max = 0;

  /// All statements joined with ";\n" (convenient for Executor::ExecuteScript).
  std::string Script() const;
};

/// Translates a type (2) formula — named-predicate leaves with object-
/// variable arguments, combined by and/or/next/eventually/until, with
/// existential quantifiers over the variables — into SQL, mirroring the
/// paper's SQL-based system ("it uses translations into SQL for computation
/// of the similarity tables for any conjunctive formula", section 4).
/// Type (1) formulas (0-ary predicates, no variables) are the special case
/// with no variable columns.
///
/// `input_max` gives each predicate's max similarity (thresholds and
/// per-operator maxima derive from it). `prefix` namespaces the generated
/// table names. The formula must be closed: every variable bound by an
/// exists.
///
/// Representation: every operator materializes an *expanded* relation
/// (<vars>..., id, act) — one row per (binding, covered segment). This is
/// what makes the translation expressible in plain SQL and why "the
/// intermediate relations may become quite large" (section 4).
///
/// Semantics note: one-sided rows of a join carry SQL NULL in the columns
/// of variables the contributing side does not bind; NULL never matches a
/// later equality join (the direct engine's wildcard rows, by contrast,
/// match anything). The two systems agree exactly whenever every leaf of
/// the formula uses the same variable tuple — in particular on all
/// variable-free (type (1)) formulas; for mixed-tuple formulas the SQL
/// result is a pointwise lower bound that drops only partially matched
/// cross-binding combinations.
Result<Translation> TranslateToSql(const Formula& f,
                                   const std::map<std::string, double>& input_max,
                                   const std::string& prefix,
                                   const TranslateOptions& options = {});

/// Schema information for the full conjunctive translation.
struct ConjunctiveSpec {
  struct Leaf {
    double max = 0;
    /// Attribute variables the leaf's similarity table constrains; its
    /// relation carries <v>_lo / <v>_hi columns for each (closed integer
    /// bounds, NULL for unbounded — section 3.3 restricts attribute-
    /// variable predicates to integer attributes).
    std::vector<std::string> attr_vars;
  };
  /// Per predicate name.
  std::map<std::string, Leaf> leaves;
  /// Object variables of each freeze term's value table, keyed by the
  /// term's ToString() (e.g. "height(z)" -> {"z"}).
  std::map<std::string, std::vector<std::string>> value_vars;
};

/// Translates a *conjunctive* formula — type (2) plus freeze quantifiers —
/// into SQL, realizing section 3.3's value-table join relationally
/// ("translations into SQL for computation of the similarity tables for any
/// conjunctive formula", section 4). Restrictions, reported as errors:
/// `until` operands must be free of attribute variables (a per-value chain
/// computation does not decompose into plain joins), and range bounds must
/// be integers. Range joins use the paper's inner intersection semantics;
/// the exactness caveats of TranslateToSql apply.
Result<Translation> TranslateConjunctiveToSql(const Formula& f,
                                              const ConjunctiveSpec& spec,
                                              const std::string& prefix,
                                              const TranslateOptions& options = {});

}  // namespace htl::sql

#endif  // HTL_SQL_TRANSLATOR_H_
