#ifndef HTL_SQL_LEXER_H_
#define HTL_SQL_LEXER_H_

#include <string>
#include <vector>

#include "sql/value.h"
#include "util/result.h"

namespace htl::sql {

enum class TokKind {
  kIdent,    // identifiers and keywords (keywords matched case-insensitively)
  kInt,
  kFloat,
  kString,   // single-quoted, '' escapes
  kSymbol,   // ( ) , . * + - / ; = != < <= > >=
  kEnd,
};

struct Tok {
  TokKind kind = TokKind::kEnd;
  std::string text;    // Identifier (original case) or symbol spelling.
  Value number;        // kInt/kFloat.
  std::string string;  // kString contents.
  size_t offset = 0;
};

/// Tokenizes SQL text. Comments: -- to end of line.
Result<std::vector<Tok>> TokenizeSql(std::string_view text);

}  // namespace htl::sql

#endif  // HTL_SQL_LEXER_H_
