#ifndef HTL_SQL_AST_H_
#define HTL_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sql/value.h"

namespace htl::sql {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kLiteral,    // 42, 3.5, 'abc', NULL
  kColumn,     // col or alias.col
  kStar,       // * (select list only)
  kUnary,      // -x, NOT x
  kBinary,     // arithmetic, comparison, AND, OR
  kFunction,   // LEAST, GREATEST, COALESCE, ABS
  kAggregate,  // COUNT, SUM, MIN, MAX, AVG
  kIsNull,     // x IS [NOT] NULL
};

/// A SQL scalar expression tree.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  Value literal;                 // kLiteral
  std::string table_alias;       // kColumn (may be empty)
  std::string column;            // kColumn
  std::string op;                // kUnary/kBinary: "-","not","+","*","/","=","!=",
                                 // "<","<=",">",">=","and","or"
  std::string fn;                // kFunction/kAggregate name, lower-cased
  bool count_star = false;       // COUNT(*)
  bool is_not_null = false;      // kIsNull: IS NOT NULL
  std::vector<ExprPtr> args;

  std::string ToString() const;
};

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumn(std::string table_alias, std::string column);
ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs);

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // Output column name; derived when empty.
};

enum class JoinType { kCross, kInner, kLeft };

struct TableRef {
  std::string table;
  std::string alias;  // Defaults to the table name.
  JoinType join = JoinType::kCross;
  ExprPtr on;  // Null for kCross.
};

struct OrderItem {
  ExprPtr expr;  // Resolved against the output columns.
  bool desc = false;
};

/// SELECT [DISTINCT] ... FROM ... [WHERE] [GROUP BY] [HAVING] [ORDER BY]
/// [LIMIT] [UNION ALL SELECT ...]. BETWEEN and IN are desugared by the
/// parser into comparison/boolean trees.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;  // Empty FROM allowed (SELECT 1).
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
  std::unique_ptr<SelectStmt> union_all;  // Chained UNION ALL branch.
};

/// One SQL statement of the supported subset.
struct Statement {
  enum class Kind {
    kSelect,         // SELECT ...
    kCreateTableAs,  // CREATE TABLE t AS SELECT ...
    kCreateTable,    // CREATE TABLE t (c1, c2, ...)
    kDropTable,      // DROP TABLE [IF EXISTS] t
    kInsertValues,   // INSERT INTO t VALUES (...), (...)
    kInsertSelect,   // INSERT INTO t SELECT ...
  };

  Kind kind = Kind::kSelect;
  std::string table;                        // Target for create/drop/insert.
  std::vector<std::string> columns;         // kCreateTable column names.
  std::vector<std::vector<ExprPtr>> values; // kInsertValues rows.
  std::unique_ptr<SelectStmt> select;       // Select-bearing kinds.
  bool if_exists = false;                   // DROP TABLE IF EXISTS.
};

}  // namespace htl::sql

#endif  // HTL_SQL_AST_H_
