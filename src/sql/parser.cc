#include "sql/parser.h"

#include <optional>

#include "sql/lexer.h"
#include "util/string_util.h"

namespace htl::sql {

namespace {

bool IsFunctionName(const std::string& lower) {
  return lower == "least" || lower == "greatest" || lower == "coalesce" ||
         lower == "abs";
}

bool IsAggregateName(const std::string& lower) {
  return lower == "count" || lower == "sum" || lower == "min" || lower == "max" ||
         lower == "avg";
}

class Parser {
 public:
  explicit Parser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<std::vector<Statement>> ParseScript() {
    std::vector<Statement> out;
    while (true) {
      while (PeekSymbol(";")) ++pos_;
      if (Peek().kind == TokKind::kEnd) break;
      HTL_ASSIGN_OR_RETURN(Statement s, ParseStatement());
      out.push_back(std::move(s));
      if (!PeekSymbol(";") && Peek().kind != TokKind::kEnd) {
        return Error("expected ';' between statements");
      }
    }
    return out;
  }

  Result<Statement> ParseOne() {
    HTL_ASSIGN_OR_RETURN(Statement s, ParseStatement());
    while (PeekSymbol(";")) ++pos_;
    if (Peek().kind != TokKind::kEnd) return Error("unexpected trailing tokens");
    return s;
  }

 private:
  const Tok& Peek(size_t ahead = 0) const {
    return toks_[std::min(pos_ + ahead, toks_.size() - 1)];
  }
  Tok Take() { return toks_[std::min(pos_++, toks_.size() - 1)]; }
  bool PeekKeyword(std::string_view kw) const {
    return Peek().kind == TokKind::kIdent && AsciiToLower(Peek().text) == kw;
  }
  bool TakeKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  bool PeekSymbol(std::string_view sym) const {
    return Peek().kind == TokKind::kSymbol && Peek().text == sym;
  }
  bool TakeSymbol(std::string_view sym) {
    if (!PeekSymbol(sym)) return false;
    ++pos_;
    return true;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(StrCat(msg, " at offset ", Peek().offset));
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!TakeKeyword(kw)) return Error(StrCat("expected ", kw));
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!TakeSymbol(sym)) return Error(StrCat("expected '", sym, "'"));
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) return Error("expected identifier");
    return Take().text;
  }

  Result<Statement> ParseStatement() {
    if (PeekKeyword("select")) {
      Statement s;
      s.kind = Statement::Kind::kSelect;
      HTL_ASSIGN_OR_RETURN(s.select, ParseSelect());
      return s;
    }
    if (TakeKeyword("create")) {
      HTL_RETURN_IF_ERROR(ExpectKeyword("table"));
      Statement s;
      HTL_ASSIGN_OR_RETURN(s.table, ExpectIdent());
      if (TakeKeyword("as")) {
        s.kind = Statement::Kind::kCreateTableAs;
        HTL_ASSIGN_OR_RETURN(s.select, ParseSelect());
        return s;
      }
      HTL_RETURN_IF_ERROR(ExpectSymbol("("));
      s.kind = Statement::Kind::kCreateTable;
      while (true) {
        HTL_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        s.columns.push_back(std::move(col));
        if (TakeSymbol(",")) continue;
        break;
      }
      HTL_RETURN_IF_ERROR(ExpectSymbol(")"));
      return s;
    }
    if (TakeKeyword("drop")) {
      HTL_RETURN_IF_ERROR(ExpectKeyword("table"));
      Statement s;
      s.kind = Statement::Kind::kDropTable;
      if (TakeKeyword("if")) {
        HTL_RETURN_IF_ERROR(ExpectKeyword("exists"));
        s.if_exists = true;
      }
      HTL_ASSIGN_OR_RETURN(s.table, ExpectIdent());
      return s;
    }
    if (TakeKeyword("insert")) {
      HTL_RETURN_IF_ERROR(ExpectKeyword("into"));
      Statement s;
      HTL_ASSIGN_OR_RETURN(s.table, ExpectIdent());
      if (TakeKeyword("values")) {
        s.kind = Statement::Kind::kInsertValues;
        while (true) {
          HTL_RETURN_IF_ERROR(ExpectSymbol("("));
          std::vector<ExprPtr> row;
          while (true) {
            HTL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
            row.push_back(std::move(e));
            if (TakeSymbol(",")) continue;
            break;
          }
          HTL_RETURN_IF_ERROR(ExpectSymbol(")"));
          s.values.push_back(std::move(row));
          if (TakeSymbol(",")) continue;
          break;
        }
        return s;
      }
      s.kind = Statement::Kind::kInsertSelect;
      HTL_ASSIGN_OR_RETURN(s.select, ParseSelect());
      return s;
    }
    return Error("expected SELECT, CREATE, DROP, or INSERT");
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    HTL_RETURN_IF_ERROR(ExpectKeyword("select"));
    auto stmt = std::make_unique<SelectStmt>();
    if (TakeKeyword("distinct")) stmt->distinct = true;
    while (true) {
      SelectItem item;
      if (TakeSymbol("*")) {
        item.expr = std::make_unique<Expr>();
        item.expr->kind = ExprKind::kStar;
      } else {
        HTL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (TakeKeyword("as")) {
          HTL_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
        } else if (Peek().kind == TokKind::kIdent && !IsClauseKeyword()) {
          item.alias = Take().text;
        }
      }
      stmt->items.push_back(std::move(item));
      if (TakeSymbol(",")) continue;
      break;
    }
    if (TakeKeyword("from")) {
      HTL_ASSIGN_OR_RETURN(TableRef first, ParseTableRef(JoinType::kCross));
      stmt->from.push_back(std::move(first));
      while (true) {
        if (TakeSymbol(",")) {
          HTL_ASSIGN_OR_RETURN(TableRef t, ParseTableRef(JoinType::kCross));
          stmt->from.push_back(std::move(t));
          continue;
        }
        JoinType jt;
        if (TakeKeyword("left")) {
          TakeKeyword("outer");
          HTL_RETURN_IF_ERROR(ExpectKeyword("join"));
          jt = JoinType::kLeft;
        } else if (TakeKeyword("inner")) {
          HTL_RETURN_IF_ERROR(ExpectKeyword("join"));
          jt = JoinType::kInner;
        } else if (TakeKeyword("join")) {
          jt = JoinType::kInner;
        } else {
          break;
        }
        HTL_ASSIGN_OR_RETURN(TableRef t, ParseTableRef(jt));
        HTL_RETURN_IF_ERROR(ExpectKeyword("on"));
        HTL_ASSIGN_OR_RETURN(t.on, ParseExpr());
        stmt->from.push_back(std::move(t));
      }
    }
    if (TakeKeyword("where")) {
      HTL_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (TakeKeyword("group")) {
      HTL_RETURN_IF_ERROR(ExpectKeyword("by"));
      while (true) {
        HTL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
        if (TakeSymbol(",")) continue;
        break;
      }
    }
    if (TakeKeyword("having")) {
      HTL_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (TakeKeyword("order")) {
      HTL_RETURN_IF_ERROR(ExpectKeyword("by"));
      while (true) {
        OrderItem item;
        HTL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (TakeKeyword("desc")) {
          item.desc = true;
        } else {
          TakeKeyword("asc");
        }
        stmt->order_by.push_back(std::move(item));
        if (TakeSymbol(",")) continue;
        break;
      }
    }
    if (TakeKeyword("limit")) {
      if (Peek().kind != TokKind::kInt) return Error("expected integer after LIMIT");
      stmt->limit = Take().number.AsInt();
    }
    if (TakeKeyword("union")) {
      HTL_RETURN_IF_ERROR(ExpectKeyword("all"));
      HTL_ASSIGN_OR_RETURN(stmt->union_all, ParseSelect());
    }
    return stmt;
  }

  bool IsClauseKeyword() const {
    static constexpr std::string_view kClauses[] = {
        "from", "where", "group", "having", "order", "limit",
        "union", "on",    "left",  "inner",  "join",  "as"};
    const std::string lower = AsciiToLower(Peek().text);
    for (std::string_view kw : kClauses) {
      if (lower == kw) return true;
    }
    return false;
  }

  Result<TableRef> ParseTableRef(JoinType jt) {
    TableRef ref;
    ref.join = jt;
    HTL_ASSIGN_OR_RETURN(ref.table, ExpectIdent());
    ref.alias = ref.table;
    if (TakeKeyword("as")) {
      HTL_ASSIGN_OR_RETURN(ref.alias, ExpectIdent());
    } else if (Peek().kind == TokKind::kIdent && !IsClauseKeyword()) {
      ref.alias = Take().text;
    }
    return ref;
  }

  // ---- Expressions -------------------------------------------------------

  /// Hard bound on expression recursion depth: `(((((...` / `NOT NOT ...`
  /// token soup returns ParseError instead of risking a stack overflow.
  /// One syntactic nesting level costs one tracked frame (counted at
  /// ParseExpr and the self-recursing unary productions).
  static constexpr int kMaxExprDepth = 256;

  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    int* depth_;
  };

  Result<ExprPtr> ParseExpr() {
    DepthGuard guard(&expr_depth_);
    if (expr_depth_ > kMaxExprDepth) return Error("expression nesting too deep");
    return ParseOr();
  }

  Result<ExprPtr> ParseOr() {
    HTL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (TakeKeyword("or")) {
      HTL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary("or", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    HTL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (TakeKeyword("and")) {
      HTL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary("and", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    DepthGuard guard(&expr_depth_);
    if (expr_depth_ > kMaxExprDepth) return Error("expression nesting too deep");
    if (TakeKeyword("not")) {
      HTL_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->op = "not";
      e->args.push_back(std::move(inner));
      return ExprPtr(std::move(e));
    }
    return ParseComparison();
  }

  // Deep copy (needed to desugar BETWEEN / IN, whose operand is reused).
  static ExprPtr CloneExpr(const Expr& e) {
    auto out = std::make_unique<Expr>();
    out->kind = e.kind;
    out->literal = e.literal;
    out->table_alias = e.table_alias;
    out->column = e.column;
    out->op = e.op;
    out->fn = e.fn;
    out->count_star = e.count_star;
    out->is_not_null = e.is_not_null;
    for (const auto& a : e.args) out->args.push_back(CloneExpr(*a));
    return out;
  }

  static ExprPtr Negate(ExprPtr e) {
    auto out = std::make_unique<Expr>();
    out->kind = ExprKind::kUnary;
    out->op = "not";
    out->args.push_back(std::move(e));
    return out;
  }

  Result<ExprPtr> ParseComparison() {
    HTL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdd());
    if (TakeKeyword("is")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      if (TakeKeyword("not")) e->is_not_null = true;
      HTL_RETURN_IF_ERROR(ExpectKeyword("null"));
      e->args.push_back(std::move(lhs));
      return ExprPtr(std::move(e));
    }
    // [NOT] BETWEEN a AND b  /  [NOT] IN (v, ...): desugared.
    bool negated = false;
    if (PeekKeyword("not") &&
        (AsciiToLower(Peek(1).text) == "between" || AsciiToLower(Peek(1).text) == "in")) {
      TakeKeyword("not");
      negated = true;
    }
    if (TakeKeyword("between")) {
      HTL_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdd());
      HTL_RETURN_IF_ERROR(ExpectKeyword("and"));
      HTL_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdd());
      ExprPtr lhs_copy = CloneExpr(*lhs);  // Before moving lhs below.
      ExprPtr lower = MakeBinary(">=", std::move(lhs_copy), std::move(lo));
      ExprPtr upper = MakeBinary("<=", std::move(lhs), std::move(hi));
      ExprPtr range = MakeBinary("and", std::move(lower), std::move(upper));
      return negated ? Negate(std::move(range)) : std::move(range);
    }
    if (TakeKeyword("in")) {
      HTL_RETURN_IF_ERROR(ExpectSymbol("("));
      ExprPtr any;
      while (true) {
        HTL_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
        ExprPtr lhs_copy = CloneExpr(*lhs);
        ExprPtr eq = MakeBinary("=", std::move(lhs_copy), std::move(v));
        any = any ? MakeBinary("or", std::move(any), std::move(eq)) : std::move(eq);
        if (TakeSymbol(",")) continue;
        break;
      }
      HTL_RETURN_IF_ERROR(ExpectSymbol(")"));
      return negated ? Negate(std::move(any)) : std::move(any);
    }
    if (negated) return Error("expected BETWEEN or IN after NOT");
    for (std::string_view op : {"=", "!=", "<=", ">=", "<", ">"}) {
      if (PeekSymbol(op)) {
        ++pos_;
        HTL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdd());
        return MakeBinary(std::string(op), std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdd() {
    HTL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMul());
    while (PeekSymbol("+") || PeekSymbol("-")) {
      std::string op = Take().text;
      HTL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMul());
      lhs = MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMul() {
    HTL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (PeekSymbol("*") || PeekSymbol("/")) {
      std::string op = Take().text;
      HTL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    DepthGuard guard(&expr_depth_);
    if (expr_depth_ > kMaxExprDepth) return Error("expression nesting too deep");
    if (TakeSymbol("-")) {
      HTL_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->op = "-";
      e->args.push_back(std::move(inner));
      return ExprPtr(std::move(e));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Tok& t = Peek();
    if (t.kind == TokKind::kInt || t.kind == TokKind::kFloat) {
      return MakeLiteral(Take().number);
    }
    if (t.kind == TokKind::kString) {
      return MakeLiteral(Value(Take().string));
    }
    if (TakeSymbol("(")) {
      HTL_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      HTL_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (t.kind == TokKind::kIdent) {
      const std::string lower = AsciiToLower(t.text);
      if (lower == "null") {
        ++pos_;
        return MakeLiteral(Value::Null());
      }
      std::string name = Take().text;
      if (PeekSymbol("(")) {
        ++pos_;
        auto e = std::make_unique<Expr>();
        const std::string fn = AsciiToLower(name);
        if (IsAggregateName(fn)) {
          e->kind = ExprKind::kAggregate;
        } else if (IsFunctionName(fn)) {
          e->kind = ExprKind::kFunction;
        } else {
          return Error(StrCat("unknown function '", name, "'"));
        }
        e->fn = fn;
        if (fn == "count" && TakeSymbol("*")) {
          e->count_star = true;
          HTL_RETURN_IF_ERROR(ExpectSymbol(")"));
          return ExprPtr(std::move(e));
        }
        while (true) {
          HTL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          e->args.push_back(std::move(arg));
          if (TakeSymbol(",")) continue;
          break;
        }
        HTL_RETURN_IF_ERROR(ExpectSymbol(")"));
        return ExprPtr(std::move(e));
      }
      if (TakeSymbol(".")) {
        HTL_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        return MakeColumn(std::move(name), std::move(col));
      }
      return MakeColumn("", std::move(name));
    }
    return Error("expected an expression");
  }

  std::vector<Tok> toks_;
  size_t pos_ = 0;
  int expr_depth_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view text) {
  HTL_ASSIGN_OR_RETURN(std::vector<Tok> toks, TokenizeSql(text));
  Parser p(std::move(toks));
  return p.ParseOne();
}

Result<std::vector<Statement>> ParseScript(std::string_view text) {
  HTL_ASSIGN_OR_RETURN(std::vector<Tok> toks, TokenizeSql(text));
  Parser p(std::move(toks));
  return p.ParseScript();
}

}  // namespace htl::sql
