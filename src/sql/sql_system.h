#ifndef HTL_SQL_SQL_SYSTEM_H_
#define HTL_SQL_SQL_SYSTEM_H_

#include <map>
#include <string>

#include "sim/sim_list.h"
#include "sim/sim_table.h"
#include "sim/value_table.h"
#include "sql/executor.h"
#include "sql/translator.h"
#include "util/result.h"

namespace htl::sql {

/// The paper's "second system" (section 4): evaluates HTL formulas by
/// translating them to SQL and running the statements on the relational
/// engine. Loading (inputs + id domain) is split from execution so the
/// benchmark can time exactly what the paper timed — "the time for
/// executing the sequence of SQL queries".
class SqlSystem {
 public:
  SqlSystem() = default;

  Catalog& catalog() { return catalog_; }
  Executor& executor() { return executor_; }

  /// Loads the input interval relations named by `translation.inputs` from
  /// `inputs`, and the id domain relation seq(id) = {1..n}. Replaces any
  /// previous contents.
  Status LoadInputs(const Translation& translation,
                    const std::map<std::string, SimilarityList>& inputs, int64_t n);

  /// Executes the translation's statements in order and reads back the
  /// result relation as a similarity list.
  Result<SimilarityList> Run(const Translation& translation);

  /// Convenience: translate + load + run in one call (type (1): 0-ary
  /// predicate leaves keyed into `inputs`).
  Result<SimilarityList> Evaluate(const Formula& f,
                                  const std::map<std::string, SimilarityList>& inputs,
                                  int64_t n, const TranslateOptions& options = {});

  /// One named similarity-table input for the type (2) path.
  struct TableInput {
    SimilarityTable table;
    double max = 0;  // Static max of the atomic predicate.
  };

  /// Loads similarity-table inputs (relations with variable columns).
  Status LoadTableInputs(const Translation& translation,
                         const std::map<std::string, TableInput>& inputs, int64_t n);

  /// Convenience for type (2): predicates with object-variable arguments,
  /// backed by similarity tables.
  Result<SimilarityList> EvaluateTables(const Formula& f,
                                        const std::map<std::string, TableInput>& inputs,
                                        int64_t n, const TranslateOptions& options = {});

  /// Convenience for the full conjunctive class: similarity-table leaves
  /// (which may carry attribute-variable range columns) plus the value
  /// tables consumed by the formula's freeze quantifiers, keyed by the
  /// freeze term's ToString() (e.g. "height(z)").
  Result<SimilarityList> EvaluateConjunctive(
      const Formula& f, const std::map<std::string, TableInput>& inputs,
      const std::map<std::string, ValueTable>& values, int64_t n,
      const TranslateOptions& options = {});

 private:
  Catalog catalog_;
  Executor executor_{&catalog_};
};

}  // namespace htl::sql

#endif  // HTL_SQL_SQL_SYSTEM_H_
