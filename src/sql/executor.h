#ifndef HTL_SQL_EXECUTOR_H_
#define HTL_SQL_EXECUTOR_H_

#include <cstdint>

#include "engine/exec_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/ast.h"
#include "sql/table.h"
#include "util/result.h"

namespace htl::sql {

/// Point-in-time counter snapshot exposed for the benchmark harness and
/// ablations. Returned by value from Executor::stats(); the live counters
/// are relaxed atomics, so stats() and ResetStats() are race-free against a
/// statement running on another thread.
struct ExecStats {
  int64_t statements = 0;
  int64_t rows_materialized = 0;  // Rows written into intermediate results.
  int64_t hash_joins = 0;
  int64_t range_joins = 0;  // Sorted-seek (index-nested-loop-style) joins.
  int64_t loop_joins = 0;   // Plain nested-loop joins.
};

/// Executes parsed statements against a catalog. The execution model is the
/// classic materializing interpreter: every SELECT fully materializes its
/// FROM pipeline (left-deep joins), then filters, aggregates, sorts — the
/// per-query overhead and large intermediates are exactly what the paper's
/// SQL-based approach pays on a commercial RDBMS.
///
/// Join strategy per JOIN ... ON:
///   * hash join when some conjunct is `inner_expr = outer_expr` with each
///     side touching only its own table(s);
///   * sorted-seek join when some conjuncts bound a single bare inner column
///     by outer-side expressions (plays the role of the RDBMS index);
///   * nested loop otherwise.
/// Remaining conjuncts run as residual filters.
class Executor {
 public:
  /// `catalog` must outlive the executor.
  explicit Executor(Catalog* catalog) : catalog_(catalog) {}

  /// Runs one statement. SELECT returns its result table; DDL/DML return an
  /// empty table.
  Result<Table> Execute(const Statement& stmt);

  /// Parses and runs one statement.
  Result<Table> ExecuteSql(std::string_view text);

  /// Parses and runs a script; returns the last SELECT's result (or an
  /// empty table when the script has none).
  Result<Table> ExecuteScript(std::string_view text);

  /// Snapshot of the live counters (by value; see ExecStats).
  ExecStats stats() const {
    ExecStats s;
    s.statements = counters_.statements.Value();
    s.rows_materialized = counters_.rows_materialized.Value();
    s.hash_joins = counters_.hash_joins.Value();
    s.range_joins = counters_.range_joins.Value();
    s.loop_joins = counters_.loop_joins.Value();
    return s;
  }
  void ResetStats() {
    counters_.statements.Reset();
    counters_.rows_materialized.Reset();
    counters_.hash_joins.Reset();
    counters_.range_joins.Reset();
    counters_.loop_joins.Reset();
  }

  /// Attaches a deadline/cancellation/budget context. Join and filter loops
  /// poll it per outer row; every materialized intermediate charges the row
  /// budget, and each FROM pipeline charges one table per joined input.
  /// Budget counters reset per statement (ExecContext::BeginUnit). Null
  /// (the default) disables all limits.
  void set_exec_context(ExecContext* ctx) { exec_ = ctx; }

 private:
  /// Live counters behind ExecStats (folded into the obs layer in PR 3).
  struct ExecCounters {
    obs::Counter statements;
    obs::Counter rows_materialized;
    obs::Counter hash_joins;
    obs::Counter range_joins;
    obs::Counter loop_joins;
  };

  Result<Table> ExecuteSelect(const SelectStmt& stmt);

  /// Poll + row-budget charge for one materialization step.
  Status ChargeRows(int64_t n);

  /// The trace riding on the attached ExecContext (null when unprofiled).
  obs::QueryTrace* trace() const {
    return exec_ != nullptr ? exec_->trace() : nullptr;
  }

  Catalog* catalog_;
  ExecCounters counters_;
  ExecContext* exec_ = nullptr;  // Not owned; null means unlimited.
};

}  // namespace htl::sql

#endif  // HTL_SQL_EXECUTOR_H_
