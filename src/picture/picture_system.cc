#include "picture/picture_system.h"

#include <algorithm>
#include <optional>

#include "obs/metrics.h"
#include "picture/constraint_eval.h"
#include "sim/table_ops.h"
#include "util/fault_point.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace htl {

namespace {

// True when the constraint mentions an attribute variable (range mode).
bool HasAttrVar(const Constraint& c) {
  if (c.kind != Constraint::Kind::kCompare) return false;
  return c.lhs.kind == AttrTerm::Kind::kVariable ||
         c.rhs.kind == AttrTerm::Kind::kVariable;
}

// Object variables a constraint mentions.
std::vector<std::string> ConstraintObjectVars(const Constraint& c) {
  std::vector<std::string> vars;
  auto add = [&](const std::string& v) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) vars.push_back(v);
  };
  switch (c.kind) {
    case Constraint::Kind::kPresent:
      add(c.object_var);
      break;
    case Constraint::Kind::kPredicate:
      for (const std::string& a : c.pred_args) add(a);
      break;
    case Constraint::Kind::kCompare:
      for (const AttrTerm* t : {&c.lhs, &c.rhs}) {
        if (t->kind == AttrTerm::Kind::kAttrOfVar) add(t->object_var);
      }
      break;
  }
  return vars;
}

// Merge of sorted id vectors.
std::vector<SegmentId> UnionSorted(std::vector<const std::vector<SegmentId>*> inputs) {
  std::vector<SegmentId> out;
  for (const auto* v : inputs) out.insert(out.end(), v->begin(), v->end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

PictureSystem::PictureSystem(const VideoTree* video, PictureOptions options)
    : video_(video), options_(options) {
  HTL_CHECK(video != nullptr);
}

const LevelIndex& PictureSystem::Index(int level) {
  auto it = indices_.find(level);
  if (it == indices_.end()) {
    it = indices_.emplace(level, std::make_unique<LevelIndex>(*video_, level)).first;
  }
  return *it->second;
}

Result<SimilarityTable> PictureSystem::Query(int level, const AtomicFormula& atomic) {
  // The I/O-shaped seam of figure 1: in the paper's architecture this call
  // crosses into the external picture retrieval system.
  HTL_OBS_COUNT("picture.queries", 1);
  HTL_FAULT_POINT("picture.query");
  if (level < 1 || level > video_->num_levels()) {
    return Status::OutOfRange(StrCat("level ", level, " out of range"));
  }
  for (const Constraint& c : atomic.constraints) {
    // Reject two-attribute-variable comparisons up front.
    HTL_RETURN_IF_ERROR(ComparisonAttrVar(c).status());
  }
  const LevelIndex& index = Index(level);
  const int64_t n = index.num_segments();
  const std::vector<std::string> all_vars = atomic.AllObjectVars();
  const std::vector<std::string> free_vars = atomic.FreeObjectVars();
  const std::vector<std::string> attr_vars = atomic.FreeAttrVars();
  const double max_weight = atomic.MaxWeight();

  // --- Candidate objects per variable -----------------------------------
  // C(v) must contain every object that can satisfy at least one
  // v-mentioning constraint in some segment; objects outside C(v) are
  // covered by the wildcard binding (they satisfy nothing). Equality on an
  // object attribute and fact membership prune via the index; any other
  // v-constraint (present, inequality, attr-var ranges) admits all objects.
  std::map<std::string, std::vector<ObjectId>> candidates;
  for (const std::string& v : all_vars) candidates[v];  // ensure keys
  std::map<std::string, bool> needs_all;
  for (const std::string& v : all_vars) needs_all[v] = false;
  for (const Constraint& c : atomic.constraints) {
    for (const std::string& v : ConstraintObjectVars(c)) {
      switch (c.kind) {
        case Constraint::Kind::kPresent:
          needs_all[v] = true;
          break;
        case Constraint::Kind::kPredicate: {
          for (size_t pos = 0; pos < c.pred_args.size(); ++pos) {
            if (c.pred_args[pos] != v) continue;
            const auto& objs = index.ObjectsInFactPosition(c.pred_name, pos);
            candidates[v].insert(candidates[v].end(), objs.begin(), objs.end());
          }
          break;
        }
        case Constraint::Kind::kCompare: {
          // attr(v) = literal prunes through the index; anything else
          // (inequalities, attribute variables, attr-to-attr) cannot.
          const bool lhs_of_v = c.lhs.kind == AttrTerm::Kind::kAttrOfVar &&
                                c.lhs.object_var == v;
          const AttrTerm& self = lhs_of_v ? c.lhs : c.rhs;
          const AttrTerm& other = lhs_of_v ? c.rhs : c.lhs;
          if (c.op == CompareOp::kEq && self.kind == AttrTerm::Kind::kAttrOfVar &&
              other.kind == AttrTerm::Kind::kLiteral) {
            const auto& objs = index.ObjectsWithAttrValue(self.name, other.literal);
            candidates[v].insert(candidates[v].end(), objs.begin(), objs.end());
          } else {
            needs_all[v] = true;
          }
          break;
        }
      }
    }
  }
  int64_t binding_count = 1;
  for (const std::string& v : all_vars) {
    if (needs_all[v]) candidates[v] = index.all_objects();
    auto& c = candidates[v];
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    binding_count *= static_cast<int64_t>(c.size()) + 1;  // +1: wildcard.
    if (binding_count > options_.max_bindings) {
      return Status::FailedPrecondition(
          StrCat("atomic query would enumerate more than ", options_.max_bindings,
                 " bindings: ", atomic.ToString()));
    }
  }

  // --- Var-free base score ----------------------------------------------
  // Constraints mentioning no object variable contribute the same score to
  // every binding; evaluate them once per segment. Range-mode var-free
  // constraints (e.g. h > 5 or duration > h) are folded into the per-
  // segment range computation below instead.
  std::vector<const Constraint*> boolean_constraints;  // no attr var
  std::vector<const Constraint*> range_constraints;    // one attr var
  for (const Constraint& c : atomic.constraints) {
    (HasAttrVar(c) ? range_constraints : boolean_constraints).push_back(&c);
  }
  const bool scan_all = std::any_of(
      atomic.constraints.begin(), atomic.constraints.end(),
      [](const Constraint& c) { return ConstraintObjectVars(c).empty(); });

  // --- Enumerate bindings -------------------------------------------------
  // Odometer over (C(v) ∪ {wildcard}) per variable.
  const size_t k = all_vars.size();
  std::vector<size_t> odo(k, 0);  // 0 = wildcard, i>0 = candidates[v][i-1].
  SimilarityTable full(all_vars, attr_vars);

  while (true) {
    EvalEnv env;
    std::vector<ObjectId> binding(k, SimilarityTable::kAnyObject);
    std::vector<const std::vector<SegmentId>*> postings;
    for (size_t i = 0; i < k; ++i) {
      if (odo[i] == 0) continue;
      binding[i] = candidates[all_vars[i]][odo[i] - 1];
      env.objects[all_vars[i]] = binding[i];
      postings.push_back(&index.Posting(binding[i]));
    }
    // Segments that can score nonzero for this binding.
    std::vector<SegmentId> segments;
    if (scan_all) {
      segments.resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) segments[static_cast<size_t>(i)] = i + 1;
    } else {
      segments = UnionSorted(postings);
    }

    // Rows keyed by the attribute-variable range tuple.
    std::map<std::string, std::pair<std::vector<ValueRange>, std::vector<SimEntry>>> rows;
    for (SegmentId s : segments) {
      const SegmentMeta& meta = video_->Meta(level, s);
      double score = 0;
      for (const Constraint* c : boolean_constraints) {
        if (ConstraintSatisfied(*c, meta, env)) score += c->weight;
      }
      // Attribute-variable constraints are hard: all must be jointly
      // satisfiable; their weights count inside the resulting range.
      std::vector<ValueRange> ranges(attr_vars.size(), ValueRange::All());
      bool feasible = true;
      for (const Constraint* c : range_constraints) {
        Result<AttrVarRange> r = CompareToRange(*c, meta, env);
        if (!r.ok()) return r.status();
        auto it = std::find(attr_vars.begin(), attr_vars.end(), r.value().var);
        HTL_CHECK(it != attr_vars.end());
        size_t idx = static_cast<size_t>(it - attr_vars.begin());
        ranges[idx] = ranges[idx].Intersect(r.value().range);
        if (ranges[idx].IsEmpty()) {
          feasible = false;
          break;
        }
        score += c->weight;
      }
      if (!feasible || score <= 0) continue;
      std::string key;
      for (const ValueRange& r : ranges) key += r.ToString() + "|";
      auto& row = rows[key];
      row.first = ranges;
      if (!row.second.empty() && row.second.back().actual == score &&
          row.second.back().range.end + 1 == s) {
        row.second.back().range.end = s;
      } else {
        row.second.push_back(SimEntry{Interval{s, s}, score});
      }
    }
    for (auto& [key, ranges_and_entries] : rows) {
      SimilarityTable::Row row;
      row.objects = binding;
      row.ranges = std::move(ranges_and_entries.first);
      HTL_ASSIGN_OR_RETURN(
          row.list,
          SimilarityList::FromEntries(std::move(ranges_and_entries.second), max_weight));
      full.AddRow(std::move(row));
    }

    // Advance the odometer.
    size_t i = 0;
    for (; i < k; ++i) {
      if (++odo[i] <= candidates[all_vars[i]].size()) break;
      odo[i] = 0;
    }
    if (k == 0 || i == k) break;
  }

  if (atomic.exists_vars.empty()) return full;
  return CollapseExists(full, atomic.exists_vars);
}

Result<SimilarityList> PictureSystem::QueryClosed(int level, const AtomicFormula& atomic) {
  if (!atomic.FreeObjectVars().empty() || !atomic.FreeAttrVars().empty()) {
    return Status::InvalidArgument(
        StrCat("atomic formula is not closed: ", atomic.ToString()));
  }
  HTL_ASSIGN_OR_RETURN(SimilarityTable table, Query(level, atomic));
  return table.ToList(atomic.MaxWeight());
}

Result<ValueTable> PictureSystem::Values(int level, const AttrTerm& q) {
  HTL_OBS_COUNT("picture.value_queries", 1);
  if (level < 1 || level > video_->num_levels()) {
    return Status::OutOfRange(StrCat("level ", level, " out of range"));
  }
  const int64_t n = video_->NumSegments(level);
  if (q.kind == AttrTerm::Kind::kSegmentAttr) {
    ValueTable out{std::vector<std::string>{}};
    // Group segments by the attribute's value.
    std::map<std::string, std::pair<AttrValue, std::vector<Interval>>> groups;
    for (SegmentId s = 1; s <= n; ++s) {
      AttrValue v = video_->Meta(level, s).Attribute(q.name);
      if (v.is_null()) continue;
      auto& g = groups[v.ToString()];
      g.first = v;
      if (!g.second.empty() && g.second.back().end + 1 == s) {
        g.second.back().end = s;
      } else {
        g.second.push_back(Interval{s, s});
      }
    }
    for (auto& [key, g] : groups) {
      out.AddRow(ValueTable::Row{{}, std::move(g.first), std::move(g.second)});
    }
    return out;
  }
  if (q.kind == AttrTerm::Kind::kAttrOfVar) {
    ValueTable out({q.object_var});
    std::map<std::pair<ObjectId, std::string>,
             std::pair<AttrValue, std::vector<Interval>>>
        groups;
    for (SegmentId s = 1; s <= n; ++s) {
      const SegmentMeta& meta = video_->Meta(level, s);
      for (const ObjectAppearance& obj : meta.objects()) {
        AttrValue v = obj.Attribute(q.name);
        if (v.is_null()) continue;
        auto& g = groups[{obj.id, v.ToString()}];
        g.first = v;
        if (!g.second.empty() && g.second.back().end + 1 == s) {
          g.second.back().end = s;
        } else {
          g.second.push_back(Interval{s, s});
        }
      }
    }
    for (auto& [key, g] : groups) {
      out.AddRow(ValueTable::Row{{key.first}, std::move(g.first), std::move(g.second)});
    }
    return out;
  }
  return Status::InvalidArgument(
      "value tables exist for attribute functions and segment attributes only");
}

}  // namespace htl
