#ifndef HTL_PICTURE_CONSTRAINT_EVAL_H_
#define HTL_PICTURE_CONSTRAINT_EVAL_H_

#include <map>
#include <string>

#include "htl/ast.h"
#include "model/segment.h"
#include "sim/value_range.h"
#include "util/result.h"

namespace htl {

/// An evaluation (the paper's ρ): bindings for object variables and, in the
/// reference engine, concrete values for attribute variables.
struct EvalEnv {
  std::map<std::string, ObjectId> objects;
  std::map<std::string, AttrValue> attrs;

  ObjectId ObjectOf(const std::string& var) const {
    auto it = objects.find(var);
    return it == objects.end() ? kInvalidObjectId : it->second;
  }
  AttrValue AttrOf(const std::string& var) const {
    auto it = attrs.find(var);
    return it == attrs.end() ? AttrValue() : it->second;
  }
};

/// Evaluates an attribute term in one segment under `env`. Missing objects,
/// missing attributes, and unbound variables yield the null value.
AttrValue EvalTerm(const AttrTerm& term, const SegmentMeta& meta, const EvalEnv& env);

/// Applies a comparison operator; any null operand compares false (except
/// nothing — null is never equal, less, or greater).
bool Compare(const AttrValue& lhs, CompareOp op, const AttrValue& rhs);

/// True when `c` is satisfied in `meta` under `env`. Attribute variables
/// are looked up in env.attrs (the reference-engine mode). Unbound object
/// variables make present/predicate/attribute constraints false.
bool ConstraintSatisfied(const Constraint& c, const SegmentMeta& meta, const EvalEnv& env);

/// Range-mode evaluation of a comparison that mentions exactly one
/// attribute variable (the picture-system mode of section 3.3): returns the
/// variable name and the range of its values satisfying the comparison in
/// this segment under `env`. The range may be empty (e.g. the compared
/// attribute is null: no value of the variable can satisfy it).
struct AttrVarRange {
  std::string var;
  ValueRange range;
};
Result<AttrVarRange> CompareToRange(const Constraint& c, const SegmentMeta& meta,
                                    const EvalEnv& env);

/// Which attribute variable a comparison constraint mentions ("" for none;
/// an error for two — those formulas are class kGeneral).
Result<std::string> ComparisonAttrVar(const Constraint& c);

}  // namespace htl

#endif  // HTL_PICTURE_CONSTRAINT_EVAL_H_
