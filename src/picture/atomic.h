#ifndef HTL_PICTURE_ATOMIC_H_
#define HTL_PICTURE_ATOMIC_H_

#include <string>
#include <vector>

#include "htl/ast.h"
#include "util/result.h"

namespace htl {

/// A maximal non-temporal subformula in the shape the picture-retrieval
/// system consumes: a conjunction of atomic constraints, possibly under
/// local existential quantifiers (the paper's "atomic subformulas ... that
/// do not have any temporal operators in them", section 4).
struct AtomicFormula {
  std::vector<Constraint> constraints;
  /// Object variables quantified inside the atomic formula itself; they are
  /// maxed out per segment rather than becoming table columns.
  std::vector<std::string> exists_vars;

  /// Static maximum similarity: the sum of constraint weights.
  double MaxWeight() const;

  /// Object variables free in the atomic formula (excluding exists_vars),
  /// in first-occurrence order — the table's object columns.
  std::vector<std::string> FreeObjectVars() const;

  /// Attribute variables occurring in comparisons — the table's range
  /// columns (they are always free here; freeze operators live above the
  /// atomic level).
  std::vector<std::string> FreeAttrVars() const;

  /// All object variables (free + locally quantified).
  std::vector<std::string> AllObjectVars() const;

  std::string ToString() const;
};

/// Converts a non-temporal Formula subtree (kConstraint / kAnd / kExists
/// over those) into an AtomicFormula. Returns InvalidArgument for subtrees
/// containing temporal, level, negation, disjunction, freeze, or constant
/// nodes — the engine keeps those as separate evaluation nodes.
Result<AtomicFormula> ExtractAtomic(const Formula& f);

/// True when ExtractAtomic would succeed — the engine's test for "this
/// subtree is one picture query".
bool IsAtomicShape(const Formula& f);

}  // namespace htl

#endif  // HTL_PICTURE_ATOMIC_H_
